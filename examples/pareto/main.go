// Pareto: sweep every PAF form, estimate encrypted ReLU latency with the
// calibrated cost model, and print the latency/accuracy trade-off table that
// underlies Fig. 1 — without any model training (accuracy is the PAF's
// standalone operator fidelity on a reference distribution).
package main

import (
	"fmt"
	"math"
	"os"
	"time"

	"github.com/efficientfhe/smartpaf/internal/ckks"
	"github.com/efficientfhe/smartpaf/internal/hepoly"
	"github.com/efficientfhe/smartpaf/internal/paf"
)

func main() {
	// Calibrate the analytic cost model on a small real context once.
	lit := ckks.ParametersLiteral{LogN: 11, LogQ: []int{50, 40, 40}, LogP: 55, LogScale: 40}
	params, err := ckks.NewParameters(lit)
	check(err)
	kg := ckks.NewKeyGenerator(params, 3)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	eval := ckks.NewEvaluator(params, rlk)
	cm, err := hepoly.Calibrate(eval, ckks.NewEncoder(params), ckks.NewEncryptor(params, pk, 4), 4)
	check(err)
	fmt.Printf("calibrated per-op costs (N=%d): ct-mult %s, const-mult %s, add %s\n\n",
		params.N(), cm.CtMult.Round(time.Microsecond), cm.ConstMult.Round(time.Microsecond), cm.Add.Round(time.Microsecond))

	fmt.Println("form       degree  depth  est. ReLU latency  level-weighted (L=12)  relu fidelity (mean err, |x|<=1)")
	var baseline time.Duration
	for _, form := range paf.AllFormsWithBaseline {
		c := paf.MustNew(form)
		flat := cm.EstimateReLU(c)
		lw := cm.EstimateReLUAtLevel(c, 12)
		if form == paf.FormAlpha10 {
			baseline = lw
		}
		// Mean absolute ReLU error over a uniform grid.
		var sum float64
		const grid = 1000
		for i := 0; i <= grid; i++ {
			x := -1 + 2*float64(i)/grid
			sum += math.Abs(c.ReLU(x) - math.Max(0, x))
		}
		fmt.Printf("%-10s %-7d %-6d %-18s %-22s %.4f\n",
			form, c.Degree(), c.Depth(),
			flat.Round(time.Microsecond), lw.Round(time.Microsecond), sum/(grid+1))
	}
	fmt.Printf("\nspeedup of each form vs the 27-degree baseline (level-weighted):\n")
	for _, form := range paf.AllForms {
		lw := cm.EstimateReLUAtLevel(paf.MustNew(form), 12)
		fmt.Printf("  %-10s %.2fx\n", form, float64(baseline)/float64(lw))
	}
	fmt.Println("\nRun `go run ./cmd/experiments -id fig1` for the full measured Pareto")
	fmt.Println("frontier including trained model accuracies.")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pareto:", err)
		os.Exit(1)
	}
}
