// Encrypted ReLU: evaluate a PAF-approximated ReLU on CKKS-encrypted data
// and compare against the plaintext result, reporting precision, levels
// consumed and wall-clock latency for each PAF form of Table 2.
package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"github.com/efficientfhe/smartpaf/internal/ckks"
	"github.com/efficientfhe/smartpaf/internal/hepoly"
	"github.com/efficientfhe/smartpaf/internal/paf"
)

func main() {
	// A development-scale ring with enough levels for the deepest form
	// (alpha10 ReLU: 11 levels). LogN 12 keeps this quick on a laptop;
	// swap in ckks.PN15Paper for the paper's N=32768/881-bit setup.
	lit := ckks.ParametersLiteral{
		LogN: 12,
		LogQ: []int{55, 45, 45, 45, 45, 45, 45, 45, 45, 45, 45, 45},
		LogP: 55, LogScale: 45,
	}
	params, err := ckks.NewParameters(lit)
	check(err)
	fmt.Printf("CKKS: N=%d, %d levels, %.0f-bit modulus, %d slots\n\n",
		params.N(), params.MaxLevel(), params.TotalLogQP(), params.Slots())

	kg := ckks.NewKeyGenerator(params, 7)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewEncryptor(params, pk, 8)
	decryptor := ckks.NewDecryptor(params, sk)
	he := hepoly.NewEvaluator(ckks.NewEvaluator(params, rlk))

	// One ciphertext holds N/2 activations — a whole feature map at once.
	rng := rand.New(rand.NewSource(9))
	vals := make([]float64, params.Slots())
	for i := range vals {
		vals[i] = rng.Float64()*2 - 1
	}

	fmt.Println("form       depth  levels used  latency      max |enc - plain PAF|  max |enc - true relu|")
	for _, form := range []string{paf.FormF1G2, paf.FormF2G2, paf.FormF2G3, paf.FormAlpha7, paf.FormF1F1G1G1, paf.FormAlpha10} {
		c := paf.MustNew(form)
		pt, err := enc.EncodeReals(vals, params.MaxLevel(), params.DefaultScale())
		check(err)
		ct := encryptor.Encrypt(pt)

		start := time.Now()
		out, err := he.ReLU(c, ct)
		check(err)
		lat := time.Since(start)

		got := enc.DecodeReals(decryptor.Decrypt(out))
		var vsPAF, vsTrue float64
		for i, v := range vals {
			if d := math.Abs(got[i] - c.ReLU(v)); d > vsPAF {
				vsPAF = d
			}
			if d := math.Abs(got[i] - math.Max(0, v)); d > vsTrue {
				vsTrue = d
			}
		}
		fmt.Printf("%-10s %-6d %-12d %-12s %-22.2e %.3f\n",
			form, c.DepthReLU(), params.MaxLevel()-out.Level, lat.Round(time.Millisecond), vsPAF, vsTrue)
	}
	fmt.Println("\nThe 'enc vs plain PAF' column is CKKS noise (tiny); the 'vs true relu'")
	fmt.Println("column is the polynomial approximation error that SMART-PAF's training")
	fmt.Println("recovers at the model level.")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "encrypted_relu:", err)
		os.Exit(1)
	}
}
