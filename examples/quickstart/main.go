// Quickstart: approximate ReLU with a low-degree PAF, tune its coefficients
// to an input distribution, and compare the approximation error before and
// after — the essence of SMART-PAF in ~60 lines.
package main

import (
	"fmt"
	"math"

	"github.com/efficientfhe/smartpaf/internal/paf"
	"github.com/efficientfhe/smartpaf/internal/smartpaf"
)

func main() {
	// 1. Pick a PAF form from Table 2. f1∘g2 is the cheapest (depth 5);
	//    the 27-degree α=10 is the accurate-but-slow prior-work baseline.
	cheap := paf.MustNew(paf.FormF1G2)
	baseline := paf.MustNew(paf.FormAlpha10)
	fmt.Printf("cheap PAF:    %s\n", cheap)
	fmt.Printf("baseline PAF: %s\n", baseline)
	fmt.Printf("ReLU depth: %d vs %d -> every ReLU costs ~%.1fx fewer levels\n\n",
		cheap.DepthReLU(), baseline.DepthReLU(),
		float64(baseline.DepthReLU())/float64(cheap.DepthReLU()))

	// 2. Model an input distribution: activations concentrated around ±0.25
	//    (a typical post-batchnorm shape after max-normalization).
	prof := &smartpaf.Profile{Bins: make([]float64, 64), Max: 1}
	for i := range prof.Bins {
		x := prof.BinCenter(i)
		prof.Bins[i] = math.Exp(-(x*x)/(2*0.25*0.25)) + 0.002
	}

	// 3. Coefficient Tuning: refit the cheap PAF to that distribution.
	tuned := smartpaf.CoefficientTuning(cheap, prof, smartpaf.DefaultCTOptions())

	// 4. Compare weighted ReLU error (the quantity CT minimizes).
	before := smartpaf.WeightedReLUError(cheap, prof)
	after := smartpaf.WeightedReLUError(tuned, prof)
	ref := smartpaf.WeightedReLUError(baseline, prof)
	fmt.Printf("weighted ReLU error over the profiled distribution:\n")
	fmt.Printf("  f1∘g2 untuned:  %.6f\n", before)
	fmt.Printf("  f1∘g2 post-CT:  %.6f  (%.1fx better)\n", after, before/after)
	fmt.Printf("  27-degree:      %.6f\n\n", ref)

	// 5. Spot-check the actual curves.
	fmt.Println("      x     relu(x)   f1∘g2     post-CT   27-degree")
	for _, x := range []float64{-0.8, -0.4, -0.1, 0.1, 0.25, 0.5, 0.9} {
		fmt.Printf("  %+.2f   %+.4f   %+.4f   %+.4f   %+.4f\n",
			x, math.Max(0, x), cheap.ReLU(x), tuned.ReLU(x), baseline.ReLU(x))
	}
}
