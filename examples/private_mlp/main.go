// private_mlp is the complete private-inference story of the paper's Fig. 2:
//
//  1. train an MLP classifier in the clear,
//  2. replace its ReLUs with a low-degree PAF and recover accuracy with the
//     SMART-PAF pipeline (CT + PA + AT + DS),
//  3. freeze Static Scaling and verify FHE compatibility,
//  4. encrypt validation images under CKKS and classify them without ever
//     decrypting intermediate activations,
//  5. compare encrypted predictions against the plaintext model.
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/efficientfhe/smartpaf/internal/ckks"
	"github.com/efficientfhe/smartpaf/internal/data"
	"github.com/efficientfhe/smartpaf/internal/henn"
	"github.com/efficientfhe/smartpaf/internal/nn"
	"github.com/efficientfhe/smartpaf/internal/paf"
	"github.com/efficientfhe/smartpaf/internal/smartpaf"
)

func main() {
	// 1. Train a small MLP on the tiny synthetic task.
	dcfg := data.Tiny()
	dcfg.Channels = 1
	dcfg.Size = 8 // 64 inputs
	dcfg.Train, dcfg.Val = 400, 100
	train, val := data.Generate(dcfg)
	model := nn.MLP([]int{64, 24, dcfg.Classes}, 5)
	fmt.Print("training plaintext MLP... ")
	smartpaf.Pretrain(model, train, 12, 32, 3e-3, 1)
	fmt.Println("done")

	// 2. SMART-PAF: replace ReLUs with the cheap f1∘g2 PAF and fine-tune.
	cfg := smartpaf.DefaultConfig(paf.FormF1G2)
	cfg.Epochs, cfg.MaxGroupsPerStep = 2, 1
	pipe, err := smartpaf.NewPipeline(model, train, val, cfg)
	check(err)
	res, err := pipe.Run()
	check(err)
	fmt.Printf("accuracy: original %.1f%% -> post-replacement %.1f%% -> fine-tuned %.1f%% (SS: %.1f%%)\n",
		res.OriginalAcc*100, res.InitialAcc*100, res.FinalAccDS*100, res.FinalAccSS*100)

	// 3. Deploy: static scales, FHE-compatible.
	check(model.Deploy())
	model.SetScaleMode(nn.ScaleStatic)
	mlp, err := henn.FromModel(model)
	check(err)

	// 4. CKKS context sized exactly for the inference depth: a base prime
	// plus one rescaling prime per required level, no slack to hide drift.
	levels := mlp.LevelsRequired()
	logQ := make([]int, levels+1)
	logQ[0] = 55
	for i := 1; i <= levels; i++ {
		logQ[i] = 45
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{LogN: 12, LogQ: logQ, LogP: 55, LogScale: 45})
	check(err)
	kg := ckks.NewKeyGenerator(params, 7)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	// Baby-step/giant-step rotation keys: O(√slots) instead of one key per
	// non-zero matrix diagonal.
	rotations := mlp.RequiredRotationsBSGS(params.Slots())
	fmt.Printf("deployed MLP: %d levels, %d rotation keys (BSGS; naive diagonal method would need %d)\n",
		mlp.LevelsRequired(), len(rotations), len(mlp.RequiredRotations(params.Slots())))
	rks := kg.GenRotationKeys(sk, rotations, false)
	eval := ckks.NewEvaluator(params, rlk).WithRotationKeys(rks)
	ctx := henn.NewContext(params, ckks.NewEncoder(params), eval)
	encryptor := ckks.NewEncryptor(params, pk, 8)
	decryptor := ckks.NewDecryptor(params, sk)
	fmt.Printf("CKKS: N=%d, %d levels, %.0f-bit modulus\n", params.N(), params.MaxLevel(), params.TotalLogQP())

	// 5. Classify encrypted validation images.
	const trials = 3
	agree, correct := 0, 0
	var totalLat time.Duration
	for i := 0; i < trials; i++ {
		x, label := val.Sample(i)
		vec := make([]float64, params.Slots())
		copy(vec, x.Data)
		pt, err := ctx.Enc.EncodeReals(vec, params.MaxLevel(), params.DefaultScale())
		check(err)
		ct := encryptor.Encrypt(pt)

		start := time.Now()
		out, err := ctx.InferBSGS(mlp, ct)
		check(err)
		totalLat += time.Since(start)

		logits := ctx.Enc.DecodeReals(decryptor.Decrypt(out))[:dcfg.Classes]
		plain := mlp.InferPlain(x.Data)[:dcfg.Classes]
		encPred, plainPred := argmax(logits), argmax(plain)
		if encPred == plainPred {
			agree++
		}
		if encPred == label {
			correct++
		}
		fmt.Printf("  image %d: encrypted pred %d, plaintext pred %d, true %d\n", i, encPred, plainPred, label)
	}
	fmt.Printf("\nencrypted/plaintext agreement: %d/%d; encrypted correct: %d/%d\n", agree, trials, correct, trials)
	fmt.Printf("mean encrypted inference latency: %s\n", (totalLat / trials).Round(time.Millisecond))
}

func argmax(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "private_mlp:", err)
		os.Exit(1)
	}
}
