// remote_mlp is the client side of the private-inference deployment story:
//
//  1. fetch the server's model catalog and pick a model — each entry carries
//     its prescribed CKKS parameters and required rotation steps,
//  2. generate a key set locally and register the public half (public key,
//     relinearization key, rotation keys) over HTTP, bound to that model,
//  3. encrypt inputs, POST the ciphertexts, decrypt the returned
//     predictions — the server never sees a plaintext or the secret key,
//  4. fire a burst of concurrent requests to show the server coalescing
//     them into batches on its shared evaluator,
//  5. run a second session against a different model of the same server —
//     one worker budget serves the whole catalog.
//
// With no flags it spins up an in-process hennserve with two demo models on
// a loopback port (so the demo is self-contained and can verify predictions
// against each model's plaintext reference); point -addr at a running
// hennserve to go remote.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"github.com/efficientfhe/smartpaf/internal/registry"
	"github.com/efficientfhe/smartpaf/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "", "hennserve base URL (empty: start an in-process server)")
		modelName = flag.String("model", "", "model to bind to (empty: first catalog entry)")
		seed      = flag.Int64("seed", 42, "client key seed")
		logN      = flag.Int("logn", 10, "ring degree log2 for the in-process server")
		burst     = flag.Int("burst", 8, "concurrent requests in the batching demo")
	)
	flag.Parse()
	ctx := context.Background()

	base := *addr
	local := map[string]*registry.Model{} // name -> plaintext reference
	if base == "" {
		alpha, err := registry.DemoModel(7, *logN)
		check(err)
		alpha.Name = "demo-alpha"
		beta, err := registry.DemoModel(8, *logN)
		check(err)
		beta.Name = "demo-beta"
		local[alpha.Name], local[beta.Name] = alpha, beta
		srv, err := server.New(server.Options{Workers: -1}, alpha, beta)
		check(err)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		check(err)
		go func() { _ = http.Serve(ln, srv.Handler()) }()
		base = "http://" + ln.Addr().String()
		fmt.Printf("in-process hennserve on %s serving %d models\n", base, srv.Registry().Len())
	}

	client := server.NewClient(base, nil)
	catalog, err := client.Models(ctx)
	check(err)
	if len(catalog) == 0 {
		check(fmt.Errorf("server has no models deployed"))
	}
	fmt.Println("catalog:")
	for _, info := range catalog {
		fmt.Printf("  %q: %d -> %d, %d levels, %d rotation keys required\n",
			info.Name, info.InputDim, info.OutputDim, info.Levels, len(info.Rotations))
	}
	name := *modelName
	if name == "" {
		name = catalog[0].Name
	}

	start := time.Now()
	sess, err := client.NewSessionFor(ctx, name, *seed)
	check(err)
	info := sess.Model()
	fmt.Printf("session %s... bound to %q in %s (keygen + upload)\n",
		sess.ID()[:8], info.Name, time.Since(start).Round(time.Millisecond))

	// Encrypted predictions, checked against the plaintext reference when
	// the model is local.
	rng := rand.New(rand.NewSource(3))
	agree := 0
	const trials = 3
	ref := local[info.Name]
	for trial := 0; trial < trials; trial++ {
		x := make([]float64, info.InputDim)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		start := time.Now()
		logits, err := sess.Infer(ctx, x)
		check(err)
		lat := time.Since(start)
		if ref != nil {
			plain := ref.MLP.InferPlain(x)[:info.OutputDim]
			match := argmax(logits) == argmax(plain)
			if match {
				agree++
			}
			fmt.Printf("  input %d: encrypted pred %d, plaintext pred %d, match=%v (%s)\n",
				trial, argmax(logits), argmax(plain), match, lat.Round(time.Millisecond))
		} else {
			fmt.Printf("  input %d: encrypted pred %d (%s)\n", trial, argmax(logits), lat.Round(time.Millisecond))
		}
	}
	if ref != nil {
		fmt.Printf("encrypted/plaintext agreement: %d/%d\n", agree, trials)
		if agree != trials {
			fmt.Fprintln(os.Stderr, "remote_mlp: encrypted predictions diverged from the plaintext reference")
			os.Exit(1)
		}
	}

	// Batching demo: a burst of concurrent requests against one session.
	fmt.Printf("\nfiring %d concurrent requests (server batches them onto the shared evaluator)...\n", *burst)
	x := make([]float64, info.InputDim)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	var wg sync.WaitGroup
	start = time.Now()
	errs := make(chan error, *burst)
	for c := 0; c < *burst; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sess.Infer(ctx, x); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		check(err)
	}
	wall := time.Since(start)
	fmt.Printf("%d concurrent requests in %s (%.2f req/s)\n", *burst, wall.Round(time.Millisecond),
		float64(*burst)/wall.Seconds())

	// Multi-model: bind a second session to another catalog entry — the
	// same server, scheduler and worker budget serve both models.
	if len(catalog) > 1 {
		other := catalog[0].Name
		if other == info.Name {
			other = catalog[1].Name
		}
		fmt.Printf("\nbinding a second session to %q on the same server...\n", other)
		sess2, err := client.NewSessionFor(ctx, other, *seed+1)
		check(err)
		x2 := make([]float64, sess2.Model().InputDim)
		for i := range x2 {
			x2[i] = rng.Float64()*2 - 1
		}
		logits, err := sess2.Infer(ctx, x2)
		check(err)
		if ref2 := local[other]; ref2 != nil {
			plain := ref2.MLP.InferPlain(x2)[:sess2.Model().OutputDim]
			if argmax(logits) != argmax(plain) {
				fmt.Fprintln(os.Stderr, "remote_mlp: second model's encrypted prediction diverged")
				os.Exit(1)
			}
			fmt.Printf("  %q encrypted pred %d matches its plaintext reference\n", other, argmax(logits))
		} else {
			fmt.Printf("  %q encrypted pred %d\n", other, argmax(logits))
		}
	}

	// Versioned rollout (in-process only — it needs the plaintext reference
	// for both versions): supersede the bound model with a v2. The session
	// registered above keeps serving v1 until it disconnects; a fresh
	// session resolves the bare name to v2.
	if len(local) > 0 && local[info.Name] != nil {
		fmt.Printf("\nsuperseding %q with a v2 (old sessions drain on v1, new ones bind v2)...\n", info.Name)
		v2, err := registry.DemoModel(*seed+77, *logN)
		check(err)
		v2.Name = info.Name
		v2info, err := client.Supersede(ctx, v2)
		check(err)
		old := local[info.Name]
		logits, err := sess.Infer(ctx, x) // the v1 session still serves
		check(err)
		if argmax(logits) != argmax(old.MLP.InferPlain(x)[:info.OutputDim]) {
			check(fmt.Errorf("draining v1 session diverged from the v1 reference"))
		}
		sess2, err := client.NewSessionFor(ctx, info.Name, *seed+2)
		check(err)
		if got := sess2.Model().Version; got != v2info.Version {
			check(fmt.Errorf("new session bound version %d, want %d", got, v2info.Version))
		}
		logits2, err := sess2.Infer(ctx, x)
		check(err)
		if argmax(logits2) != argmax(v2.MLP.InferPlain(x)[:v2info.OutputDim]) {
			check(fmt.Errorf("v2 session diverged from the v2 reference"))
		}
		fmt.Printf("  old session answered from %s@%d, new session from %s@%d — zero dropped requests\n",
			info.Name, info.Version, v2info.Name, v2info.Version)
	}
}

func argmax(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "remote_mlp:", err)
		os.Exit(1)
	}
}
