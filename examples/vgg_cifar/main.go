// vgg_cifar runs the complete SMART-PAF pipeline on VGG-19 over the
// cifar-like synthetic dataset: pretrain → profile → CT → progressive
// replacement of all 18 ReLU and 5 MaxPool operators → alternate training →
// static-scaling deployment → FHE-compatibility verification. This is the
// end-to-end workflow a private-inference deployment would follow.
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/efficientfhe/smartpaf/internal/data"
	"github.com/efficientfhe/smartpaf/internal/nn"
	"github.com/efficientfhe/smartpaf/internal/paf"
	"github.com/efficientfhe/smartpaf/internal/smartpaf"
)

func main() {
	// Laptop-scale setup: thin VGG-19 on a 6-class 32×32 task.
	dcfg := data.CIFARLike()
	dcfg.Size = 32
	dcfg.Classes = 6
	dcfg.Train = 500
	dcfg.Val = 120
	train, val := data.Generate(dcfg)
	model := nn.VGG19(1, dcfg.Classes, dcfg.Channels, dcfg.Size, dcfg.Size, 42)

	relus, pools := 0, 0
	for _, s := range model.Slots() {
		if s.Kind == nn.SlotReLU {
			relus++
		} else {
			pools++
		}
	}
	fmt.Printf("VGG-19: %d ReLU + %d MaxPool non-polynomial operators\n", relus, pools)

	fmt.Print("pretraining with exact operators... ")
	start := time.Now()
	smartpaf.Pretrain(model, train, 12, 32, 1e-3, 42)
	fmt.Printf("done in %s\n", time.Since(start).Round(time.Second))

	cfg := smartpaf.DefaultConfig(paf.FormF1F1G1G1)
	cfg.Epochs = 1
	cfg.MaxGroupsPerStep = 1
	pipe, err := smartpaf.NewPipeline(model, train, val, cfg)
	check(err)

	fmt.Printf("running %s with %s...\n", cfg.TechniquesLabel(), cfg.Form)
	start = time.Now()
	res, err := pipe.Run()
	check(err)
	fmt.Printf("pipeline done in %s (%d fine-tuning epochs)\n\n", time.Since(start).Round(time.Second), len(res.Curve))

	fmt.Printf("original accuracy:                        %.1f%%\n", res.OriginalAcc*100)
	fmt.Printf("post-replacement (no fine-tune, with CT): %.1f%%\n", res.InitialAcc*100)
	fmt.Printf("fine-tuned, Dynamic Scaling:              %.1f%%\n", res.FinalAccDS*100)
	fmt.Printf("FHE-deployable, Static Scaling:           %.1f%%\n", res.FinalAccSS*100)

	check(model.CheckFHECompatible())
	fmt.Println("\nmodel is FHE-compatible: every operator polynomial, every scale static")

	// What would inference cost under CKKS? Report the per-ReLU level budget.
	c := paf.MustNew(cfg.Form)
	fmt.Printf("each %s ReLU consumes %d levels (the 27-degree baseline needs %d)\n",
		cfg.Form, c.DepthReLU(), paf.MustNew(paf.FormAlpha10).DepthReLU())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "vgg_cifar:", err)
		os.Exit(1)
	}
}
