// Command ckksinfo inspects the CKKS parameter presets and the per-PAF
// minimal parameter sets used by the latency evaluation: prime chains,
// total modulus bits, slot counts, and the depth requirements of every PAF
// form in Table 2.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/efficientfhe/smartpaf/internal/ckks"
	"github.com/efficientfhe/smartpaf/internal/experiments"
	"github.com/efficientfhe/smartpaf/internal/hepoly"
	"github.com/efficientfhe/smartpaf/internal/paf"
)

func main() {
	showPrimes := flag.Bool("primes", false, "print the concrete prime chains")
	flag.Parse()

	presets := []struct {
		name string
		lit  ckks.ParametersLiteral
	}{
		{"PN11", ckks.PN11},
		{"PN12", ckks.PN12},
		{"PN13", ckks.PN13},
		{"PN14", ckks.PN14},
		{"PN15Paper", ckks.PN15Paper},
	}
	fmt.Println("CKKS parameter presets")
	fmt.Println("preset      N      slots   levels  logQP   scale")
	for _, p := range presets {
		params, err := ckks.NewParameters(p.lit)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ckksinfo: %s: %v\n", p.name, err)
			os.Exit(1)
		}
		fmt.Printf("%-10s  %-6d %-7d %-7d %-7.1f 2^%d\n",
			p.name, params.N(), params.Slots(), params.MaxLevel(), params.TotalLogQP(), p.lit.LogScale)
		if *showPrimes {
			fmt.Printf("  Q = %v\n  P = %d\n", params.Q(), params.P())
		}
	}

	fmt.Println("\nPer-PAF ReLU requirements and minimal standard-compliant parameters")
	fmt.Println("form        degree  depth  ReLU levels (+scaling)  minimal ring")
	for _, form := range paf.AllFormsWithBaseline {
		c := paf.MustNew(form)
		lit, err := experiments.ParamsForPAF(c, false)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ckksinfo: %s: %v\n", form, err)
			os.Exit(1)
		}
		fmt.Printf("%-11s %-7d %-6d %-23d 2^%d\n",
			form, c.Degree(), c.Depth(), hepoly.RequiredLevels(c, true), lit.LogN)
	}
}
