// Command smartpaf runs the end-to-end SMART-PAF pipeline on a chosen model
// and synthetic dataset: pretrain with exact operators, replace every
// non-polynomial operator with the selected PAF under the configured
// techniques, fine-tune, convert to Static Scaling and report the
// FHE-deployable accuracy.
//
// Example:
//
//	smartpaf -model resnet18 -dataset imagenet-like -form f1f1_g1g1 -ct -pa -at
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/efficientfhe/smartpaf/internal/data"
	"github.com/efficientfhe/smartpaf/internal/nn"
	"github.com/efficientfhe/smartpaf/internal/paf"
	"github.com/efficientfhe/smartpaf/internal/smartpaf"
)

func main() {
	var (
		model    = flag.String("model", "cnn7", "model: cnn7 | resnet18 | vgg19")
		dataset  = flag.String("dataset", "cifar-like", "dataset: tiny | cifar-like | imagenet-like")
		form     = flag.String("form", paf.FormF1F1G1G1, fmt.Sprintf("PAF form %v", paf.AllFormsWithBaseline))
		ct       = flag.Bool("ct", true, "enable Coefficient Tuning")
		pa       = flag.Bool("pa", true, "enable Progressive Approximation")
		at       = flag.Bool("at", true, "enable Alternate Training")
		maxpool  = flag.Bool("maxpool", true, "also replace MaxPooling (not only ReLU)")
		width    = flag.Int("width", 2, "model width multiplier")
		pretrain = flag.Int("pretrain", 10, "pretraining epochs with exact operators")
		epochs   = flag.Int("epochs", 2, "epochs per training group (paper E)")
		groups   = flag.Int("groups", 2, "max training groups per step")
		seed     = flag.Int64("seed", 42, "random seed")
		parallel = flag.Int("parallel", 0, "workers for batch-parallel stages such as per-slot CT (0/1 serial, <0 all cores)")
	)
	flag.Parse()

	dcfg, err := datasetConfig(*dataset)
	if err != nil {
		fatal(err)
	}
	train, val := data.Generate(dcfg)

	var m *nn.Model
	switch *model {
	case "cnn7":
		m = nn.CNN7(*width, dcfg.Classes, dcfg.Channels, dcfg.Size, dcfg.Size, *seed)
	case "resnet18":
		m = nn.ResNet18(*width, dcfg.Classes, dcfg.Channels, dcfg.Size, dcfg.Size, *seed)
	case "vgg19":
		if dcfg.Size < 32 {
			fatal(fmt.Errorf("vgg19 needs at least 32x32 inputs; use -dataset cifar-like"))
		}
		m = nn.VGG19(*width, dcfg.Classes, dcfg.Channels, dcfg.Size, dcfg.Size, *seed)
	default:
		fatal(fmt.Errorf("unknown model %q", *model))
	}

	fmt.Printf("pretraining %s on %s (%d classes, %dx%d, %d train / %d val)...\n",
		*model, *dataset, dcfg.Classes, dcfg.Size, dcfg.Size, dcfg.Train, dcfg.Val)
	start := time.Now()
	smartpaf.Pretrain(m, train, *pretrain, 32, 3e-3, *seed)
	fmt.Printf("pretrained in %s\n", time.Since(start).Round(time.Millisecond))

	cfg := smartpaf.DefaultConfig(*form)
	cfg.CT, cfg.PA, cfg.AT = *ct, *pa, *at
	cfg.ReplaceMaxPool = *maxpool
	cfg.Epochs = *epochs
	cfg.MaxGroupsPerStep = *groups
	cfg.Seed = *seed
	cfg.Parallel = *parallel

	pipe, err := smartpaf.NewPipeline(m, train, val, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("running %s with %s (%d non-polynomial slots)...\n",
		cfg.TechniquesLabel(), *form, len(m.Slots()))
	start = time.Now()
	res, err := pipe.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("pipeline finished in %s (%d epochs)\n\n", time.Since(start).Round(time.Millisecond), len(res.Curve))
	fmt.Printf("original accuracy (exact operators):      %.2f%%\n", res.OriginalAcc*100)
	fmt.Printf("post-replacement accuracy (no fine-tune): %.2f%%\n", res.InitialAcc*100)
	fmt.Printf("fine-tuned accuracy (Dynamic Scaling):    %.2f%%\n", res.FinalAccDS*100)
	fmt.Printf("FHE-deployable accuracy (Static Scaling): %.2f%%\n", res.FinalAccSS*100)
	if *maxpool {
		// The pipeline leaves the model in dynamic mode for further tuning;
		// freeze static scales for deployment before the compatibility check.
		if err := m.Deploy(); err != nil {
			fatal(err)
		}
		m.SetScaleMode(nn.ScaleStatic)
		if err := m.CheckFHECompatible(); err != nil {
			fatal(err)
		}
		fmt.Println("model verified FHE-compatible (all operators polynomial, static scales)")
	}
}

func datasetConfig(name string) (data.Config, error) {
	switch name {
	case "tiny":
		return data.Tiny(), nil
	case "cifar-like":
		cfg := data.CIFARLike()
		cfg.Size = 32
		return cfg, nil
	case "imagenet-like":
		return data.ImageNetLike(), nil
	}
	return data.Config{}, fmt.Errorf("unknown dataset %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smartpaf:", err)
	os.Exit(1)
}
