// Command hennlint runs the repository's custom invariant analyzers
// (internal/lint) over the given package patterns and exits non-zero on
// any finding. It is the `make lint` workhorse and a CI gate.
//
// Usage:
//
//	hennlint [packages...]        # defaults to ./...
//	hennlint -list                # print the analyzer suite and exit
//	hennlint -json [packages...]  # machine-readable findings on stdout
//
// With -json, findings are emitted as a JSON array of objects with the
// fields file, line, col, analyzer and message (an empty tree prints
// "[]"). The exit status is unchanged: 1 when there are findings, 2 on
// load or analysis errors, 0 otherwise — so CI can both gate on the
// status and archive the structured report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/efficientfhe/smartpaf/internal/lint"
)

// finding is the -json wire shape for one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hennlint [-list] [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hennlint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "hennlint:", err)
		os.Exit(2)
	}
	if *asJSON {
		findings := make([]finding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, finding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		out, err := json.MarshalIndent(findings, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "hennlint:", err)
			os.Exit(2)
		}
		fmt.Println(string(out))
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hennlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
