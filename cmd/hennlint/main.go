// Command hennlint runs the repository's custom invariant analyzers
// (internal/lint) over the given package patterns and exits non-zero on
// any finding. It is the `make lint` workhorse and a CI gate.
//
// Usage:
//
//	hennlint [packages...]           # defaults to ./...
//	hennlint -list                   # print the analyzer suite and exit
//	hennlint -json [packages...]     # machine-readable findings on stdout
//	hennlint -lockgraph [packages..] # emit the lock-order graph as DOT
//
// With -json, findings are emitted as a JSON array of objects with the
// fields file, line, col, analyzer and message (an empty tree prints
// "[]"). The exit status is unchanged: 1 when there are findings, 2 on
// load or analysis errors, 0 otherwise — so CI can both gate on the
// status and archive the structured report.
//
// With -lockgraph, no analyzers run: the lockorder engine's global
// acquires-while-holding graph (including pinned orders, drawn dashed)
// is printed as Graphviz DOT and the exit status is 0. CI archives this
// next to the JSON report so the canonical lock order is reviewable per
// commit.
//
// -timing prints each analyzer's wall time to stderr after the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/efficientfhe/smartpaf/internal/lint"
)

// finding is the -json wire shape for one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	lockgraph := flag.Bool("lockgraph", false, "emit the lock-order graph as Graphviz DOT and exit")
	timing := flag.Bool("timing", false, "print per-analyzer wall time to stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hennlint [-list] [-json] [-lockgraph] [-timing] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hennlint:", err)
		os.Exit(2)
	}

	if *lockgraph {
		fmt.Print(lint.LockGraphDOT(pkgs))
		return
	}

	var diags []lint.Diagnostic
	if *timing {
		// One analyzer per Run call so each gets its own clock. The
		// whole-program analyzers each rebuild the shared call graph
		// here, so their times are upper bounds on the combined run.
		for _, a := range lint.All() {
			start := time.Now()
			ds, err := lint.Run(pkgs, []*lint.Analyzer{a})
			if err != nil {
				fmt.Fprintln(os.Stderr, "hennlint:", err)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "hennlint: %-13s %v\n", a.Name, time.Since(start).Round(time.Millisecond))
			diags = append(diags, ds...)
		}
	} else {
		diags, err = lint.Run(pkgs, lint.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, "hennlint:", err)
			os.Exit(2)
		}
	}
	if *asJSON {
		findings := make([]finding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, finding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		out, err := json.MarshalIndent(findings, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "hennlint:", err)
			os.Exit(2)
		}
		fmt.Println(string(out))
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hennlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
