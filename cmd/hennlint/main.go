// Command hennlint runs the repository's custom invariant analyzers
// (internal/lint) over the given package patterns and exits non-zero on
// any finding. It is the `make lint` workhorse and a CI gate.
//
// Usage:
//
//	hennlint [packages...]        # defaults to ./...
//	hennlint -list                # print the analyzer suite and exit
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/efficientfhe/smartpaf/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hennlint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hennlint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "hennlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hennlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
