// Command hennserve is the encrypted-inference serving front end: it loads
// (or trains) a deployed MLP and serves the internal/server HTTP protocol —
// clients register a session with their public evaluation keys, POST
// marshaled CKKS ciphertexts and decrypt the returned predictions locally.
//
// Usage:
//
//	hennserve                   # serve the synthetic demo model on :8555
//	hennserve -train            # train a SMART-PAF MLP first, then serve it
//	hennserve -addr :9000 -logn 12 -batch 32 -workers -1 -policy fair
//
// See README.md for the protocol and a client walkthrough.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"github.com/efficientfhe/smartpaf/internal/data"
	"github.com/efficientfhe/smartpaf/internal/henn"
	"github.com/efficientfhe/smartpaf/internal/nn"
	"github.com/efficientfhe/smartpaf/internal/paf"
	"github.com/efficientfhe/smartpaf/internal/server"
	"github.com/efficientfhe/smartpaf/internal/smartpaf"
)

func main() {
	var (
		addr    = flag.String("addr", ":8555", "listen address")
		logN    = flag.Int("logn", 11, "ring degree log2 (demo sizes; production wants >= 14)")
		seed    = flag.Int64("seed", 7, "model seed")
		train   = flag.Bool("train", false, "train a SMART-PAF MLP instead of serving the synthetic demo model")
		batch   = flag.Int("batch", 16, "fair-scheduling quantum: jobs claimed per session turn")
		workers = flag.Int("workers", -1, "server-wide inference worker budget shared by all sessions (0/1 one worker, <0 all cores)")
		window  = flag.Duration("window", 0, "how long a newly active session waits for its quantum to fill (0 dispatches immediately; fair policy only)")
		policy  = flag.String("policy", server.PolicyFair, "cross-session scheduling policy: fair (round-robin quanta) or fifo (arrival order)")
		ttl     = flag.Duration("ttl", 0, "idle-session eviction TTL (0 keeps the 30m default, <0 disables eviction)")
		queue   = flag.Int("queue", 0, "per-session request queue depth (0 keeps the 1024 default)")
	)
	flag.Parse()

	model, err := buildModel(*train, *seed, *logN)
	if err != nil {
		fail(err)
	}
	srv, err := server.New(model, server.Options{
		MaxBatch:    *batch,
		Workers:     *workers,
		BatchWindow: *window,
		Policy:      *policy,
		SessionTTL:  *ttl,
		QueueDepth:  *queue,
	})
	if err != nil {
		fail(err)
	}
	info := srv.Info()
	fmt.Printf("hennserve: model %q (%d -> %d, %d levels), N=%d, %d rotation keys per session\n",
		info.Name, info.InputDim, info.OutputDim, info.Levels, 1<<*logN, len(info.Rotations))
	fmt.Printf("hennserve: %q scheduling over a %d-worker shared budget\n",
		*policy, srv.Stats().Workers)
	fmt.Printf("hennserve: listening on %s\n", *addr)
	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Registration bodies are large (rotation-key sets), so the read
		// timeout is generous — but bounded, so slow-POST connections
		// cannot pile up indefinitely.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	if err := httpSrv.ListenAndServe(); err != nil {
		fail(err)
	}
}

// buildModel returns either the synthetic demo model or a SMART-PAF-trained
// MLP (the condensed private_mlp pipeline: pretrain, replace ReLUs with the
// f1∘g2 PAF, fine-tune, freeze static scaling).
func buildModel(train bool, seed int64, logN int) (*server.Model, error) {
	if !train {
		return server.DemoModel(seed, logN)
	}
	dcfg := data.Tiny()
	dcfg.Channels = 1
	dcfg.Size = 8
	dcfg.Train, dcfg.Val = 400, 100
	trainSet, valSet := data.Generate(dcfg)
	model := nn.MLP([]int{64, 24, dcfg.Classes}, seed)
	fmt.Print("hennserve: pretraining MLP... ")
	start := time.Now()
	smartpaf.Pretrain(model, trainSet, 12, 32, 3e-3, 1)
	cfg := smartpaf.DefaultConfig(paf.FormF1G2)
	cfg.Epochs, cfg.MaxGroupsPerStep = 2, 1
	pipe, err := smartpaf.NewPipeline(model, trainSet, valSet, cfg)
	if err != nil {
		return nil, err
	}
	res, err := pipe.Run()
	if err != nil {
		return nil, err
	}
	fmt.Printf("done in %s (accuracy %.1f%% -> %.1f%% after SS)\n",
		time.Since(start).Round(time.Second), res.OriginalAcc*100, res.FinalAccSS*100)
	if err := model.Deploy(); err != nil {
		return nil, err
	}
	model.SetScaleMode(nn.ScaleStatic)
	mlp, err := henn.FromModel(model)
	if err != nil {
		return nil, err
	}
	lit, err := server.ParamsForMLP(mlp, logN)
	if err != nil {
		return nil, err
	}
	return &server.Model{
		Name:      "smartpaf-mlp-64x24",
		MLP:       mlp,
		Params:    lit,
		InputDim:  64,
		OutputDim: dcfg.Classes,
	}, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hennserve:", err)
	os.Exit(1)
}
