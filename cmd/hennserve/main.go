// Command hennserve is the encrypted-inference serving front end: it loads
// (or trains) one or more deployed MLPs into a model registry and serves the
// internal/server HTTP protocol — clients pick a model from the catalog,
// register a session with their public evaluation keys, POST marshaled CKKS
// ciphertexts and decrypt the returned predictions locally. Models can also
// be hot-deployed (POST /v1/models) and retired (DELETE /v1/models/{name})
// while the server runs.
//
// Usage:
//
//	hennserve                               # the synthetic demo model on :8555
//	hennserve -train                        # a SMART-PAF-trained MLP
//	hennserve -demo alpha -demo beta:13     # several demo models (name[:seed])
//	hennserve -models ./deployed            # every *.hemodel bundle in a dir
//	hennserve -train -demo alpha -export ./deployed   # save bundles, then serve
//	hennserve -addr :9000 -logn 12 -batch 32 -workers -1 -policy fair
//	hennserve -state ./state -admin-token s3cret      # durable versioned catalog
//	hennserve -log-requests -metrics-addr 127.0.0.1:8556  # access log + pprof/metrics plane
//
// With -state, every deployed bundle (startup and hot-deployed alike)
// persists as <name>@<version>.hemodel and a restarted server reloads the
// exact catalog — versions included — before serving; a first start with an
// empty state directory and no model flags begins with an empty catalog and
// has models hot-deployed over HTTP. With -admin-token, the deploy/retire
// endpoints demand "Authorization: Bearer <token>". A model upgrade is
// POST /v1/models?supersede=true: the new version serves new sessions while
// the old one drains behind it.
//
// SIGINT/SIGTERM drain gracefully: the HTTP listener stops accepting, in-
// flight inferences finish, then the scheduler and worker pool shut down.
// See README.md for the protocol and a client walkthrough.
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/efficientfhe/smartpaf/internal/data"
	"github.com/efficientfhe/smartpaf/internal/henn"
	"github.com/efficientfhe/smartpaf/internal/nn"
	"github.com/efficientfhe/smartpaf/internal/paf"
	"github.com/efficientfhe/smartpaf/internal/registry"
	"github.com/efficientfhe/smartpaf/internal/server"
	"github.com/efficientfhe/smartpaf/internal/smartpaf"
)

func main() {
	var (
		addr      = flag.String("addr", ":8555", "listen address")
		logN      = flag.Int("logn", 11, "ring degree log2 (demo sizes; production wants >= 14)")
		seed      = flag.Int64("seed", 7, "default model seed")
		train     = flag.Bool("train", false, "add a SMART-PAF-trained MLP to the catalog")
		modelsDir = flag.String("models", "", "directory of *.hemodel bundles to deploy")
		export    = flag.String("export", "", "write every loaded model as a .hemodel bundle to this directory before serving")
		batch     = flag.Int("batch", 16, "fair-scheduling quantum: jobs claimed per weight-1 session turn")
		workers   = flag.Int("workers", -1, "server-wide inference worker budget shared by all sessions and models (0/1 one worker, <0 all cores)")
		window    = flag.Duration("window", 0, "how long a newly active session waits for its quantum to fill (0 dispatches immediately; fair policy only)")
		policy    = flag.String("policy", server.PolicyFair, "cross-session scheduling policy: fair (round-robin quanta) or fifo (arrival order)")
		ttl       = flag.Duration("ttl", 0, "idle-session eviction TTL (0 keeps the 30m default, <0 disables eviction)")
		queue     = flag.Int("queue", 0, "per-session request queue depth (0 keeps the 1024 default)")
		state     = flag.String("state", "", "state directory: every deployed bundle persists as <name>@<version>.hemodel and the catalog reloads on restart")
		adminTok  = flag.String("admin-token", "", "bearer token required on the admin endpoints (POST/DELETE /v1/models*); empty leaves them open")
		perModel  = flag.Int("max-sessions-per-model", 0, "cap on live sessions per model name across its versions (0: no per-model cap)")
		logReqs   = flag.Bool("log-requests", false, "emit one structured access-log line per HTTP request (method, path, session, model, status, bytes, duration, trace id)")
		debugAddr = flag.String("metrics-addr", "", "separate debug listen address serving /metrics and /debug/pprof/* (e.g. 127.0.0.1:8556); empty disables — /metrics stays on the API listener either way")
	)
	var demos []string
	flag.Func("demo", "add a synthetic demo model, name[:seed] (repeatable)", func(v string) error {
		demos = append(demos, v)
		return nil
	})
	flag.Parse()

	models, err := buildModels(demos, *train, *modelsDir, *seed, *logN, *state)
	if err != nil {
		fail(err)
	}
	if *export != "" {
		if err := exportModels(*export, models); err != nil {
			fail(err)
		}
	}
	var accessLog *slog.Logger
	if *logReqs {
		accessLog = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	srv, err := server.New(server.Options{
		MaxBatch:            *batch,
		Workers:             *workers,
		BatchWindow:         *window,
		Policy:              *policy,
		SessionTTL:          *ttl,
		QueueDepth:          *queue,
		MaxSessionsPerModel: *perModel,
		StateDir:            *state,
		AdminToken:          *adminTok,
		AccessLog:           accessLog,
	}, models...)
	if err != nil {
		fail(err)
	}
	for _, d := range srv.Registry().List() {
		m := d.Model()
		fmt.Printf("hennserve: model %s (%d -> %d, %d levels), N=%d, %d rotation keys per session\n",
			d.Ref(), m.InputDim, m.OutputDim, d.Levels(), 2*d.Params().Slots(), len(d.Rotations()))
	}
	fmt.Printf("hennserve: %d model version(s), %q scheduling over a %d-worker shared budget\n",
		srv.Registry().Len(), *policy, srv.Stats().Workers)
	if *state != "" {
		fmt.Printf("hennserve: catalog persists under %s (reloaded on restart)\n", *state)
	}
	if *adminTok != "" {
		fmt.Println("hennserve: admin endpoints require the bearer token")
	}
	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           debugMux(srv),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "hennserve: debug listener:", err)
			}
		}()
		fmt.Printf("hennserve: telemetry on %s (/metrics, /debug/pprof/)\n", *debugAddr)
	}
	fmt.Printf("hennserve: listening on %s\n", *addr)
	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Registration bodies are large (rotation-key sets), so the read
		// timeout is generous — but bounded, so slow-POST connections
		// cannot pile up indefinitely.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	// Serve until SIGINT/SIGTERM, then drain: Shutdown stops the listener
	// and waits for in-flight HTTP exchanges (inference responses included),
	// then Server.Close stops the scheduler and worker pool.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		if debugSrv != nil {
			_ = debugSrv.Close()
		}
		srv.Close()
		fail(err)
	case <-ctx.Done():
		stop()
		fmt.Println("\nhennserve: draining (in-flight inferences finish; press Ctrl-C again to force)")
		shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			fmt.Fprintln(os.Stderr, "hennserve: shutdown:", err)
		}
		if debugSrv != nil {
			_ = debugSrv.Close()
		}
		srv.Close()
		fmt.Println("hennserve: bye")
	}
}

// debugMux is the operator-only telemetry plane: the Prometheus exposition
// plus the pprof profile handlers, mounted explicitly so nothing rides the
// DefaultServeMux onto a public listener.
func debugMux(srv *server.Server) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", srv.MetricsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// buildModels assembles the startup catalog: every -demo occurrence, the
// -train model, and every bundle in -models. With no model flags at all it
// falls back to the single synthetic demo model — unless a -state directory
// is configured, whose reloaded catalog then stands on its own (a restarted
// server must come back with exactly what it persisted, not a demo extra).
func buildModels(demos []string, train bool, modelsDir string, seed int64, logN int, stateDir string) ([]*registry.Model, error) {
	var models []*registry.Model
	for _, spec := range demos {
		m, err := demoModel(spec, seed, logN)
		if err != nil {
			return nil, err
		}
		models = append(models, m)
	}
	if train {
		m, err := trainedModel(seed, logN)
		if err != nil {
			return nil, err
		}
		models = append(models, m)
	}
	if modelsDir != "" {
		loaded, err := loadBundles(modelsDir)
		if err != nil {
			return nil, err
		}
		models = append(models, loaded...)
	}
	if len(models) == 0 && stateDir == "" {
		m, err := registry.DemoModel(seed, logN)
		if err != nil {
			return nil, err
		}
		models = append(models, m)
	}
	return models, nil
}

// demoModel parses one -demo spec ("name" or "name:seed") into a synthetic
// model.
func demoModel(spec string, defaultSeed int64, logN int) (*registry.Model, error) {
	name, seedStr, hasSeed := strings.Cut(spec, ":")
	// Distinct default weights per name: hash the name so -demo foo -demo
	// bar get different models without an explicit :seed.
	h := fnv.New32a()
	_, _ = h.Write([]byte(name))
	seed := defaultSeed + int64(h.Sum32())
	if hasSeed {
		v, err := strconv.ParseInt(seedStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-demo %q: bad seed: %v", spec, err)
		}
		seed = v
	}
	m, err := registry.DemoModel(seed, logN)
	if err != nil {
		return nil, err
	}
	if name != "" {
		m.Name = name
	}
	return m, nil
}

// loadBundles deploys every *.hemodel wire bundle in dir.
func loadBundles(dir string) ([]*registry.Model, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var models []*registry.Model
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".hemodel") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		m := new(registry.Model)
		if err := m.UnmarshalBinary(data); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		models = append(models, m)
	}
	if len(models) == 0 {
		return nil, fmt.Errorf("no *.hemodel bundles in %s", dir)
	}
	return models, nil
}

// exportModels writes each model as <dir>/<name>.hemodel, the same bytes
// POST /v1/models accepts.
func exportModels(dir string, models []*registry.Model) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, m := range models {
		data, err := m.MarshalBinary()
		if err != nil {
			return err
		}
		path := filepath.Join(dir, m.Name+".hemodel")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("hennserve: exported %s (%d bytes)\n", path, len(data))
	}
	return nil
}

// trainedModel runs the condensed private_mlp pipeline: pretrain, replace
// ReLUs with the f1∘g2 PAF, fine-tune, freeze static scaling.
func trainedModel(seed int64, logN int) (*registry.Model, error) {
	dcfg := data.Tiny()
	dcfg.Channels = 1
	dcfg.Size = 8
	dcfg.Train, dcfg.Val = 400, 100
	trainSet, valSet := data.Generate(dcfg)
	model := nn.MLP([]int{64, 24, dcfg.Classes}, seed)
	fmt.Print("hennserve: pretraining MLP... ")
	start := time.Now()
	smartpaf.Pretrain(model, trainSet, 12, 32, 3e-3, 1)
	cfg := smartpaf.DefaultConfig(paf.FormF1G2)
	cfg.Epochs, cfg.MaxGroupsPerStep = 2, 1
	pipe, err := smartpaf.NewPipeline(model, trainSet, valSet, cfg)
	if err != nil {
		return nil, err
	}
	res, err := pipe.Run()
	if err != nil {
		return nil, err
	}
	fmt.Printf("done in %s (accuracy %.1f%% -> %.1f%% after SS)\n",
		time.Since(start).Round(time.Second), res.OriginalAcc*100, res.FinalAccSS*100)
	if err := model.Deploy(); err != nil {
		return nil, err
	}
	model.SetScaleMode(nn.ScaleStatic)
	mlp, err := henn.FromModel(model)
	if err != nil {
		return nil, err
	}
	lit, err := registry.ParamsForMLP(mlp, logN)
	if err != nil {
		return nil, err
	}
	return &registry.Model{
		Name:      "smartpaf-mlp-64x24",
		MLP:       mlp,
		Params:    lit,
		InputDim:  64,
		OutputDim: dcfg.Classes,
	}, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hennserve:", err)
	os.Exit(1)
}
