// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -id tab2
//	experiments -id tab3 -full
//	experiments -all
//
// Fast mode (the default) shrinks datasets, model widths and ring degrees so
// the whole suite finishes on a laptop CPU; -full approaches the paper's
// budgets (hours). See EXPERIMENTS.md for paper-vs-measured notes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/efficientfhe/smartpaf/internal/experiments"
)

func main() {
	var (
		id       = flag.String("id", "", "experiment id to run (see -list)")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiment ids")
		full     = flag.Bool("full", false, "full scale (paper budgets) instead of fast mode")
		seed     = flag.Int64("seed", 42, "random seed")
		parallel = flag.Int("parallel", 0, "workers for batch-parallel stages (0/1 serial, <0 all cores; parlat's parallel column defaults to all cores)")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	opt := experiments.Options{Fast: !*full, Seed: *seed, W: os.Stdout, Parallel: *parallel}
	ids := []string{*id}
	if *all {
		ids = experiments.IDs()
	} else if *id == "" {
		fmt.Fprintln(os.Stderr, "experiments: need -id, -all or -list")
		flag.Usage()
		os.Exit(2)
	}
	for _, exp := range ids {
		start := time.Now()
		if err := experiments.Run(exp, opt); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", exp, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stdout, "\n[%s completed in %s]\n", exp, time.Since(start).Round(time.Millisecond))
	}
}
