// Package smartpaf_bench holds the top-level benchmark harness: one
// testing.B benchmark per paper table/figure (regenerating its data at
// reduced scale) plus micro-benchmarks for the substrates that dominate
// latency (NTT, CKKS multiply, encrypted PAF ReLU). Run with
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured discussion.
package smartpaf_bench

import (
	"io"
	"testing"
	"time"

	"github.com/efficientfhe/smartpaf/internal/ckks"
	"github.com/efficientfhe/smartpaf/internal/data"
	"github.com/efficientfhe/smartpaf/internal/experiments"
	"github.com/efficientfhe/smartpaf/internal/henn"
	"github.com/efficientfhe/smartpaf/internal/hepoly"
	"github.com/efficientfhe/smartpaf/internal/nn"
	"github.com/efficientfhe/smartpaf/internal/paf"
	"github.com/efficientfhe/smartpaf/internal/parallel"
	"github.com/efficientfhe/smartpaf/internal/ring"
	"github.com/efficientfhe/smartpaf/internal/smartpaf"
	"github.com/efficientfhe/smartpaf/internal/telemetry"
)

// --- substrate micro-benchmarks ---------------------------------------------

func BenchmarkNTT(b *testing.B) {
	q, err := ring.GenPrime(45, 4096, nil)
	if err != nil {
		b.Fatal(err)
	}
	m, err := ring.NewModulus(q, 4096)
	if err != nil {
		b.Fatal(err)
	}
	a := make([]uint64, 4096)
	for i := range a {
		a[i] = uint64(i) * 12345 % q
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.NTT(a)
	}
}

// --- concurrency layer: serial vs parallel substrate -------------------------

// newNTTBenchRing builds the acceptance-point ring of the concurrency PR:
// N=8192 with a full 8-limb chain.
func newNTTBenchRing(b *testing.B) (*ring.Ring, *ring.Poly) {
	b.Helper()
	const n, limbs = 8192, 8
	primes, err := ring.GenPrimes(45, n, limbs, nil)
	if err != nil {
		b.Fatal(err)
	}
	rq, err := ring.NewRing(n, primes)
	if err != nil {
		b.Fatal(err)
	}
	return rq, ring.NewSampler(rq, 3).Uniform(limbs - 1)
}

// BenchmarkNTTSerial and BenchmarkNTTParallel compare the full-chain
// forward+inverse transform with the RNS-limb worker pool off and on; the
// ratio is the PR's headline speedup on multicore machines.
func BenchmarkNTTSerial(b *testing.B) {
	rq, p := newNTTBenchRing(b)
	ring.SetParallelism(1)
	defer ring.SetParallelism(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rq.NTT(p)
		rq.INTT(p)
	}
}

func BenchmarkNTTParallel(b *testing.B) {
	rq, p := newNTTBenchRing(b)
	ring.SetParallelism(0) // default: fan across GOMAXPROCS
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rq.NTT(p)
		rq.INTT(p)
	}
}

// BenchmarkEvaluatorShared drives one shared evaluator from b.RunParallel
// goroutines (4 per core), the serving shape the thread-safe evaluator
// enables; compare per-op time against BenchmarkCKKSMulRelinRescale.
func BenchmarkEvaluatorShared(b *testing.B) {
	bc := newBenchContext(b, 12, 6)
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := bc.eval.MulRelinRescale(bc.ct, bc.ct); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// --- hoisted rotations: the BSGS hot-path lever ------------------------------

// newRotationBench builds an evaluator with rotation keys for one BSGS
// baby-step block's worth of steps at serving-scale parameters.
func newRotationBench(b *testing.B) (*ckks.Evaluator, *ckks.Ciphertext, []int) {
	b.Helper()
	bc := newBenchContext(b, 12, 6)
	steps := []int{1, 2, 3, 4, 5, 6, 7, 8}
	kg := ckks.NewKeyGenerator(bc.params, 1)
	sk := kg.GenSecretKey()
	// The bench context's ciphertext was made under its own keys; re-encrypt
	// under this secret so the rotation keys match.
	pk := kg.GenPublicKey(sk)
	rks := kg.GenRotationKeys(sk, steps, false)
	bc.eval.WithRotationKeys(rks)
	vals := make([]float64, bc.params.Slots())
	for i := range vals {
		vals[i] = 0.25 * float64(i%16-8) / 8
	}
	pt, err := bc.enc.EncodeReals(vals, bc.params.MaxLevel(), bc.params.DefaultScale())
	if err != nil {
		b.Fatal(err)
	}
	return bc.eval, ckks.NewEncryptor(bc.params, pk, 2).Encrypt(pt), steps
}

// BenchmarkRotatePlain and BenchmarkRotateHoisted rotate one ciphertext by
// a full baby-step set, key-switching per rotation vs amortizing one hoisted
// decomposition across the set — the per-layer work ApplyLinearBSGS does.
// Run with -benchmem: the plain path also pins the allocation drop from
// routing applyGalois's temporaries through the ring pool.
func BenchmarkRotatePlain(b *testing.B) {
	eval, ct, steps := newRotationBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range steps {
			if _, err := eval.Rotate(ct, s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkRotateHoisted(b *testing.B) {
	eval, ct, steps := newRotationBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := eval.DecomposeHoisted(ct)
		for _, s := range steps {
			if _, err := eval.RotateHoisted(dec, s); err != nil {
				b.Fatal(err)
			}
		}
		dec.Release()
	}
}

// newBatchInferenceBench builds a deployed-MLP inference batch over one
// shared context.
func newBatchInferenceBench(b *testing.B, batch int) (*henn.Context, *henn.MLP, []*ckks.Ciphertext) {
	b.Helper()
	ctx, ct, lin := newLinearBench(b)
	mlp := &henn.MLP{Layers: []any{lin}}
	cts := make([]*ckks.Ciphertext, batch)
	for i := range cts {
		cts[i] = ct
	}
	return ctx, mlp, cts
}

// BenchmarkBatchInferenceSerial and BenchmarkBatchInference compare a batch
// of encrypted MLP inferences run as a serial loop vs fanned across all
// cores over the shared evaluator.
func BenchmarkBatchInferenceSerial(b *testing.B) {
	ctx, mlp, cts := newBatchInferenceBench(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.InferBatch(mlp, cts, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchInference(b *testing.B) {
	ctx, mlp, cts := newBatchInferenceBench(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.InferBatch(mlp, cts, -1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchInferenceTelemetry re-runs the fanned batch with the full
// telemetry plane live — a CKKS stage observer feeding a labeled histogram
// and a fresh trace attached to every unit, the serving path's hot-path
// cost. Compare against BenchmarkBatchInference, whose disabled path pays
// one atomic pointer load per stage; the gap is the enabled-telemetry tax.
func BenchmarkBatchInferenceTelemetry(b *testing.B) {
	ctx, mlp, cts := newBatchInferenceBench(b, 8)
	stageLat := telemetry.NewRegistry().NewHistogramVec(
		"bench_ckks_stage_seconds", "per-stage latency under benchmark load", "stage")
	ckks.SetStageObserver(func(stage string, d time.Duration) {
		stageLat.With(stage).Record(d)
	})
	defer ckks.SetStageObserver(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := parallel.For(len(cts), parallel.Workers(-1), func(j int) error {
			tr := telemetry.NewTrace(telemetry.NewTraceID())
			_, err := henn.Unit{Ctx: ctx, MLP: mlp, CT: cts[j], Trace: tr}.Run()
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

type benchContext struct {
	params *ckks.Parameters
	enc    *ckks.Encoder
	encr   *ckks.Encryptor
	eval   *ckks.Evaluator
	he     *hepoly.Evaluator
	ct     *ckks.Ciphertext
}

func newBenchContext(b *testing.B, logN int, levels int) *benchContext {
	b.Helper()
	logQ := make([]int, levels+1)
	logQ[0] = 55
	for i := 1; i <= levels; i++ {
		logQ[i] = 45
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{LogN: logN, LogQ: logQ, LogP: 55, LogScale: 45})
	if err != nil {
		b.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	enc := ckks.NewEncoder(params)
	encr := ckks.NewEncryptor(params, pk, 2)
	eval := ckks.NewEvaluator(params, rlk)
	vals := make([]float64, params.Slots())
	for i := range vals {
		vals[i] = 0.5 * float64(i%8-4) / 4
	}
	pt, err := enc.EncodeReals(vals, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		b.Fatal(err)
	}
	return &benchContext{
		params: params, enc: enc, encr: encr, eval: eval,
		he: hepoly.NewEvaluator(eval),
		ct: encr.Encrypt(pt),
	}
}

func BenchmarkCKKSMulRelinRescale(b *testing.B) {
	bc := newBenchContext(b, 12, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bc.eval.MulRelinRescale(bc.ct, bc.ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCKKSEncode(b *testing.B) {
	bc := newBenchContext(b, 12, 6)
	vals := make([]float64, bc.params.Slots())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bc.enc.EncodeReals(vals, bc.params.MaxLevel(), bc.params.DefaultScale()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 2: depth accounting (and the PAF plaintext hot path) -------------

func BenchmarkTable2Depth(b *testing.B) {
	forms := paf.AllFormsWithBaseline
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range forms {
			c := paf.MustNew(name)
			_ = c.Depth()
			_ = c.OpsReLU()
		}
	}
}

func BenchmarkPAFReLUPlaintext(b *testing.B) {
	c := paf.MustNew(paf.FormF1F1G1G1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.ReLU(0.37)
	}
}

// --- Table 4 / Fig. 1: encrypted ReLU latency per PAF form ------------------

// benchEncryptedReLU measures one PAF's encrypted ReLU at a fixed ring so
// relative latencies across forms reproduce the Table 4 ordering.
func benchEncryptedReLU(b *testing.B, form string) {
	c := paf.MustNew(form)
	bc := newBenchContext(b, 11, hepoly.RequiredLevels(c, false))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bc.he.ReLU(c, bc.ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4ReLU_f1_g2(b *testing.B)     { benchEncryptedReLU(b, paf.FormF1G2) }
func BenchmarkTable4ReLU_f2_g2(b *testing.B)     { benchEncryptedReLU(b, paf.FormF2G2) }
func BenchmarkTable4ReLU_f2_g3(b *testing.B)     { benchEncryptedReLU(b, paf.FormF2G3) }
func BenchmarkTable4ReLU_alpha7(b *testing.B)    { benchEncryptedReLU(b, paf.FormAlpha7) }
func BenchmarkTable4ReLU_f1f1_g1g1(b *testing.B) { benchEncryptedReLU(b, paf.FormF1F1G1G1) }
func BenchmarkTable4ReLU_alpha10(b *testing.B)   { benchEncryptedReLU(b, paf.FormAlpha10) }

// --- Fig. 7: Coefficient Tuning ---------------------------------------------

func BenchmarkFig7CT(b *testing.B) {
	prof := &smartpaf.Profile{Bins: make([]float64, 64), Max: 1}
	for i := range prof.Bins {
		x := prof.BinCenter(i)
		prof.Bins[i] = 1 / (1 + 25*x*x)
	}
	c := paf.MustNew(paf.FormF1G2)
	opt := smartpaf.DefaultCTOptions()
	opt.Iterations = 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = smartpaf.CoefficientTuning(c, prof, opt)
	}
}

// --- Fig. 8 / Fig. 9 / Table 3: the training pipeline ------------------------

// benchPipeline runs one full SMART-PAF pipeline on the tiny task; it is the
// unit of work behind Table 3 cells, Fig. 8 bars and Fig. 9 curves.
func benchPipeline(b *testing.B, ct, pa, at bool) {
	dcfg := data.Tiny()
	train, val := data.Generate(dcfg)
	base := nn.CNN7(2, dcfg.Classes, dcfg.Channels, dcfg.Size, dcfg.Size, 7)
	smartpaf.Pretrain(base, train, 3, 32, 3e-3, 1)
	snap := base.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := nn.CNN7(2, dcfg.Classes, dcfg.Channels, dcfg.Size, dcfg.Size, 7)
		if err := m.Restore(snap); err != nil {
			b.Fatal(err)
		}
		cfg := smartpaf.DefaultConfig(paf.FormF1G2)
		cfg.CT, cfg.PA, cfg.AT = ct, pa, at
		cfg.Epochs, cfg.MaxGroupsPerStep, cfg.ProfileBatches = 1, 1, 1
		p, err := smartpaf.NewPipeline(m, train, val, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Baseline(b *testing.B) { benchPipeline(b, false, false, false) }
func BenchmarkTable3SmartPAF(b *testing.B) { benchPipeline(b, true, true, true) }

// --- static experiments end-to-end -------------------------------------------

func BenchmarkStaticExperiments(b *testing.B) {
	opt := experiments.Options{Fast: true, Seed: 1, W: io.Discard}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, id := range []string{"tab2", "tab5", "tab8", "appendixB"} {
			if err := experiments.Run(id, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- nn training step (the unit of every fine-tuning epoch) -----------------

func BenchmarkResNet18TrainStep(b *testing.B) {
	dcfg := data.Tiny()
	train, _ := data.Generate(dcfg)
	m := nn.ResNet18(2, dcfg.Classes, dcfg.Channels, dcfg.Size, dcfg.Size, 7)
	batch := train.Batches(16, nil)[0]
	opt := nn.NewAdam(1e-3, 1e-4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.TrainStep(m, nn.Batch{X: batch.X, Y: batch.Y}, nil, opt)
	}
}

// --- ablation benches for DESIGN.md design choices ---------------------------

// BenchmarkAblationLinearNaive vs BenchmarkAblationLinearBSGS quantify the
// baby-step/giant-step optimization of encrypted matrix-vector products.
func newLinearBench(b *testing.B) (*henn.Context, *ckks.Ciphertext, *henn.Linear) {
	b.Helper()
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN: 10, LogQ: []int{55, 45, 45}, LogP: 55, LogScale: 45})
	if err != nil {
		b.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)

	lin := &henn.Linear{In: 64, Out: 32, B: make([]float64, 32)}
	lin.W = make([][]float64, 32)
	for i := range lin.W {
		lin.W[i] = make([]float64, 64)
		for j := range lin.W[i] {
			lin.W[i][j] = float64((i+j)%7) * 0.1
		}
	}
	mlp := &henn.MLP{Layers: []any{lin}}
	steps := append(mlp.RequiredRotations(params.Slots()), mlp.RequiredRotationsBSGS(params.Slots())...)
	rks := kg.GenRotationKeys(sk, steps, false)
	eval := ckks.NewEvaluator(params, rlk).WithRotationKeys(rks)
	ctx := henn.NewContext(params, ckks.NewEncoder(params), eval)

	vec := make([]float64, params.Slots())
	for i := 0; i < 64; i++ {
		vec[i] = 0.01 * float64(i)
	}
	pt, err := ctx.Enc.EncodeReals(vec, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		b.Fatal(err)
	}
	return ctx, ckks.NewEncryptor(params, pk, 2).Encrypt(pt), lin
}

func BenchmarkAblationLinearNaive(b *testing.B) {
	ctx, ct, lin := newLinearBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.ApplyLinear(lin, ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLinearBSGS(b *testing.B) {
	ctx, ct, lin := newLinearBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.ApplyLinearBSGS(lin, ct); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEncoderFast vs Naive quantifies the special-FFT encoder
// against the O(n²) canonical-embedding oracle.
func BenchmarkAblationEncoderFast(b *testing.B) {
	bc := newBenchContext(b, 10, 2)
	vals := make([]complex128, bc.params.Slots())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bc.enc.Encode(vals, 1, bc.params.DefaultScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEncoderNaive(b *testing.B) {
	bc := newBenchContext(b, 10, 2)
	vals := make([]complex128, bc.params.Slots())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bc.enc.EncodeNaive(vals, 1, bc.params.DefaultScale()); err != nil {
			b.Fatal(err)
		}
	}
}
