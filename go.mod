module github.com/efficientfhe/smartpaf

go 1.22
