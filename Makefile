GO ?= go

.PHONY: all build vet fmt-check lint test test-fast bench bench-smoke bench-hotpath fuzz clean-testcache serve-demo upgrade-demo

all: test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: go vet plus hennlint, the repo's own invariant
# analyzers (pool acquire/release pairing, registry refcount balance,
# math/rand scoping, constant-time secret comparison, wire-format magic
# and length bounds). See internal/lint and `go run ./cmd/hennlint -list`.
lint: vet
	$(GO) run ./cmd/hennlint ./...

fmt-check:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi

# Clear the cache before the suite (lattigo idiom) so the race detector
# really re-runs every package, then gofmt gate + vet + full race suite.
# The suite includes the serving lifecycle e2e: the restart round trip
# (internal/server TestRestartRoundTrip) and the live v1→v2 rollout
# (internal/experiments TestUpgradeRolloutEndToEnd) both run under -race.
test: clean-testcache fmt-check vet
	$(GO) test -race ./...

# Fast iteration loop: cached, no race detector.
test-fast:
	$(GO) test ./...

clean-testcache:
	$(GO) clean -testcache

bench:
	$(GO) test -bench . -benchmem -run XXX .

# One iteration of every benchmark in the repo: not a measurement, a compile-
# and-run smoke so perf paths (scheduler, batch inference, NTT fan-out)
# cannot silently rot. CI runs this after the test suite and uploads the
# output file as a build artifact. The redirect-then-cat dance keeps the
# go test exit code (a `| tee` would swallow it under plain sh).
bench-smoke:
	@$(GO) test -run '^$$' -bench . -benchtime 1x ./... > bench-smoke.txt 2>&1; \
	status=$$?; cat bench-smoke.txt; exit $$status

# The serving hot path at measurement iteration counts: hoisted vs plain
# rotations, BSGS vs naive linear layers, batched inference — with -benchmem
# so the rotation-layer allocation behavior is pinned alongside latency.
# CI uploads bench-hotpath.txt as a build artifact; EXPERIMENTS.md records
# the reference numbers.
bench-hotpath:
	@$(GO) test -run '^$$' \
		-bench 'BenchmarkRotatePlain|BenchmarkRotateHoisted|BenchmarkBatchInference|BenchmarkAblationLinear' \
		-benchmem -benchtime 3x . > bench-hotpath.txt 2>&1; \
	status=$$?; cat bench-hotpath.txt; exit $$status

# End-to-end remote encrypted inference: spins up an in-process hennserve on
# a loopback port, registers a session over HTTP, classifies encrypted
# inputs and checks them against the plaintext reference.
serve-demo:
	$(GO) run ./examples/remote_mlp

# Live model upgrade end to end: a v1→v2 supersede under concurrent
# encrypted traffic (old sessions finish on v1, new ones bind v2, zero
# failed requests), drain verification, and a restart that rebuilds the
# catalog from the state directory.
upgrade-demo:
	$(GO) run ./cmd/experiments -id upgrade

# Short fuzz pass over the modular-arithmetic primitives and the three
# wire decoders an endpoint exposes (one target per invocation is a
# `go test` restriction).
fuzz:
	$(GO) test -run XXX -fuzz FuzzAddSubMod -fuzztime 10s ./internal/ring/
	$(GO) test -run XXX -fuzz FuzzMulModShoup -fuzztime 10s ./internal/ring/
	$(GO) test -run XXX -fuzz FuzzPowMod -fuzztime 10s ./internal/ring/
	$(GO) test -run XXX -fuzz FuzzCiphertextUnmarshal -fuzztime 10s ./internal/ckks/
	$(GO) test -run XXX -fuzz FuzzMLPUnmarshal -fuzztime 10s ./internal/henn/
	$(GO) test -run XXX -fuzz FuzzModelBundleUnmarshal -fuzztime 10s ./internal/registry/
