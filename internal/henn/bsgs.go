package henn

import (
	"fmt"
	"math"
	"sort"

	"github.com/efficientfhe/smartpaf/internal/ckks"
)

// The Halevi–Shoup baby-step/giant-step (BSGS) evaluation of the diagonal
// method: writing each diagonal index d = g·n1 + b,
//
//	Wx = Σ_g rot( Σ_b rot^{-g·n1}(u_{g·n1+b}) ⊙ rot(x, b), g·n1 )
//
// needs only the baby rotations b ∈ [1, n1) and giant rotations g·n1 —
// O(√slots) keys and key switches instead of one per non-zero diagonal.
// Plaintext diagonals are rotated for free.

// bsgsSplit returns the baby-step size for the slot count.
func bsgsSplit(slots int) int {
	n1 := int(math.Ceil(math.Sqrt(float64(slots))))
	if n1 < 1 {
		n1 = 1
	}
	return n1
}

// RequiredRotationsBSGS lists the rotation steps ApplyLinearBSGS needs for
// every linear layer of the MLP: baby steps and the giant steps actually
// used by non-zero diagonal blocks.
func (mlp *MLP) RequiredRotationsBSGS(slots int) []int {
	n1 := bsgsSplit(slots)
	seen := map[int]bool{}
	for _, l := range mlp.Layers {
		lin, ok := l.(*Linear)
		if !ok {
			continue
		}
		babies, giants := lin.bsgsBlocks(slots, n1)
		for b := range babies {
			if b != 0 {
				seen[b] = true
			}
		}
		for g := range giants {
			if g != 0 {
				seen[g*n1] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// PreferBSGS reports whether the BSGS method needs fewer rotation keys than
// the naive diagonal method for this model at the given slot count. The
// serving stack keys its path choice off this one predicate: the registry
// advertises the matching rotation set, clients generate keys for it, and
// Unit.Run / InferBatch evaluate with the same method — they must agree, or
// inference fails on a missing key.
func (mlp *MLP) PreferBSGS(slots int) bool {
	return len(mlp.RequiredRotationsBSGS(slots)) < len(mlp.RequiredRotations(slots))
}

// ServingRotations returns the rotation-step set of the evaluation path the
// serving stack takes for this model (see PreferBSGS).
func (mlp *MLP) ServingRotations(slots int) []int {
	if mlp.PreferBSGS(slots) {
		return mlp.RequiredRotationsBSGS(slots)
	}
	return mlp.RequiredRotations(slots)
}

// bsgsBlocks returns the baby indices and giant block indices with any
// non-zero diagonal.
func (l *Linear) bsgsBlocks(slots, n1 int) (babies, giants map[int]bool) {
	babies = map[int]bool{}
	giants = map[int]bool{}
	for _, d := range l.diagonals(slots) {
		babies[d%n1] = true
		giants[d/n1] = true
	}
	return babies, giants
}

// ApplyLinearBSGS computes Wx + b with the BSGS diagonal method; output and
// level accounting are identical to ApplyLinear (one level consumed).
func (ctx *Context) ApplyLinearBSGS(l *Linear, ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	slots := ctx.Params.Slots()
	if l.In > slots || l.Out > slots {
		return nil, fmt.Errorf("henn: layer %dx%d exceeds %d slots", l.Out, l.In, slots)
	}
	if ct.Level < 1 {
		return nil, fmt.Errorf("henn: no level left for linear layer")
	}
	n1 := bsgsSplit(slots)
	targetScale := ct.Scale
	constScale := float64(ctx.Params.Q()[ct.Level]) // lands back on targetScale after rescale

	plan := l.diagonalPlan(slots)
	if len(plan.diags) == 0 {
		return nil, fmt.Errorf("henn: all-zero weight matrix")
	}

	// Baby rotations, computed lazily against one hoisted decomposition of
	// the input: every baby step shares the digit decomposition of ct's c1,
	// so each rotation after the first costs only the permuted key
	// multiply-accumulate. The giant rotations act on per-block inner sums —
	// all distinct ciphertexts — so they stay on the plain path.
	tr := ctx.trace
	mark := tr.StageStart()
	dec := ctx.Eval.DecomposeHoisted(ct)
	tr.StageEnd("decompose_hoisted", mark)
	defer dec.Release()
	babyCache := map[int]*ckks.Ciphertext{0: ct}
	baby := func(b int) (*ckks.Ciphertext, error) {
		if r, ok := babyCache[b]; ok {
			return r, nil
		}
		mark := tr.StageStart()
		r, err := ctx.Eval.RotateHoisted(dec, b)
		tr.StageEnd("rotate_hoisted", mark)
		if err != nil {
			return nil, err
		}
		babyCache[b] = r
		return r, nil
	}

	var acc *ckks.Ciphertext
	for g := 0; g*n1 < slots; g++ {
		// Inner sum over baby steps for this giant block.
		var inner *ckks.Ciphertext
		for b := 0; b < n1; b++ {
			d := g*n1 + b
			diag := plan.vec[d]
			if diag == nil {
				continue
			}
			rb, err := baby(b)
			if err != nil {
				return nil, fmt.Errorf("henn: baby rotation %d: %w", b, err)
			}
			mark := tr.StageStart()
			pt, err := l.encodedPlaintext(
				ptKey{enc: ctx.Enc, d: d, bsgs: true, level: rb.Level, scale: constScale},
				func() []float64 {
					// Plaintext rotation by -g·n1 (free).
					rotated := make([]float64, slots)
					shift := g * n1
					for i := range diag {
						rotated[(i+shift)%slots] = diag[i]
					}
					return rotated
				})
			tr.StageEnd("encode", mark)
			if err != nil {
				return nil, err
			}
			mark = tr.StageStart()
			term := ctx.Eval.MulPlain(rb, pt)
			if inner == nil {
				inner = term
				tr.StageEnd("mul_plain", mark)
				continue
			}
			inner, err = ctx.Eval.Add(inner, term)
			tr.StageEnd("mul_plain", mark)
			if err != nil {
				return nil, err
			}
		}
		if inner == nil {
			continue
		}
		mark := tr.StageStart()
		rotated, err := ctx.Eval.Rotate(inner, g*n1)
		tr.StageEnd("rotate", mark)
		if err != nil {
			return nil, fmt.Errorf("henn: giant rotation %d: %w", g*n1, err)
		}
		if acc == nil {
			acc = rotated
			continue
		}
		if acc, err = ctx.Eval.Add(acc, rotated); err != nil {
			return nil, err
		}
	}

	mark = tr.StageStart()
	out, err := ctx.Eval.Rescale(acc)
	tr.StageEnd("rescale", mark)
	if err != nil {
		return nil, err
	}
	out.Scale = targetScale
	if out, err = l.addBias(ctx, out); err != nil {
		return nil, err
	}
	return out, nil
}

// InferBSGS runs the MLP using BSGS linear layers.
func (ctx *Context) InferBSGS(mlp *MLP, ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	var err error
	for i, l := range mlp.Layers {
		switch v := l.(type) {
		case *Linear:
			ct, err = ctx.ApplyLinearBSGS(v, ct)
		case *Activation:
			ct, err = ctx.ApplyActivation(v, ct)
		default:
			err = fmt.Errorf("henn: unknown layer type %T", l)
		}
		if err != nil {
			return nil, fmt.Errorf("henn: layer %d: %w", i, err)
		}
	}
	return ct, nil
}
