// Package henn runs neural-network inference directly on CKKS ciphertexts:
// plaintext-weight linear layers via the Halevi–Shoup diagonal method
// (rotations + plaintext multiplications) and PAF activations via
// internal/hepoly, with Static Scaling folded in for free. Together with the
// SMART-PAF training pipeline this closes the loop of Fig. 2: a model whose
// non-polynomial operators were replaced and fine-tuned in the clear is
// evaluated end-to-end under encryption.
package henn

import (
	"fmt"
	"sort"

	"github.com/efficientfhe/smartpaf/internal/ckks"
	"github.com/efficientfhe/smartpaf/internal/hepoly"
	"github.com/efficientfhe/smartpaf/internal/nn"
	"github.com/efficientfhe/smartpaf/internal/paf"
)

// Linear is a plaintext-weight fully connected layer applied to an encrypted
// activation vector laid out in the first In slots.
type Linear struct {
	In, Out int
	W       [][]float64 // W[i][j]: weight from input j to output i
	B       []float64
}

// Activation is a deployed PAF activation: out = Scale·relu_p(x/Scale).
type Activation struct {
	PAF   *paf.Composite
	Scale float64
}

// MLP is a sequence of Linear and Activation layers.
type MLP struct {
	Layers []any
}

// FromModel extracts an encrypted-inference MLP from a trained nn.Model.
// The model must be MLP-shaped (Flatten/Linear/PAF-activation layers only)
// and deployed (static scaling); anything else is an error.
func FromModel(m *nn.Model) (*MLP, error) {
	if err := m.CheckFHECompatible(); err != nil {
		return nil, fmt.Errorf("henn: %w", err)
	}
	out := &MLP{}
	for _, s := range m.Slots() {
		if s.Kind != nn.SlotReLU {
			return nil, fmt.Errorf("henn: slot %d is %s; only MLPs (ReLU slots) are supported", s.Index, s.Kind)
		}
	}
	params := m.Params()
	slotIdx := 0
	slots := m.Slots()
	// Walk parameters: nn.Linear contributes (w, b) pairs in order; PAF
	// activations contribute their stage params which we skip here (the
	// composite is taken from the slot).
	for i := 0; i < len(params); i++ {
		p := params[i]
		if p.Group != nn.GroupLinear {
			continue
		}
		// Expect weight then bias.
		if i+1 >= len(params) || params[i+1].Group != nn.GroupLinear {
			return nil, fmt.Errorf("henn: unpaired linear parameter %q", p.Name)
		}
		w, b := p, params[i+1]
		i++
		in := len(w.Data) / len(b.Data)
		outDim := len(b.Data)
		lin := &Linear{In: in, Out: outDim, B: append([]float64(nil), b.Data...)}
		lin.W = make([][]float64, outDim)
		for r := 0; r < outDim; r++ {
			lin.W[r] = make([]float64, in)
			for c := 0; c < in; c++ {
				// nn.Linear stores W[in][out] row-major.
				lin.W[r][c] = w.Data[c*outDim+r]
			}
		}
		out.Layers = append(out.Layers, lin)
		// One activation follows each hidden linear layer.
		if slotIdx < len(slots) {
			act := slots[slotIdx].PAFLayer().(*nn.PAFAct)
			out.Layers = append(out.Layers, &Activation{PAF: act.PAF.Clone(), Scale: act.Scale})
			slotIdx++
		}
	}
	if slotIdx != len(slots) {
		return nil, fmt.Errorf("henn: %d activations matched for %d slots", slotIdx, len(slots))
	}
	return out, nil
}

// RequiredRotations returns the sorted rotation steps every linear layer
// needs under the diagonal method at the given slot count.
func (mlp *MLP) RequiredRotations(slots int) []int {
	seen := map[int]bool{}
	for _, l := range mlp.Layers {
		lin, ok := l.(*Linear)
		if !ok {
			continue
		}
		for _, d := range lin.diagonals(slots) {
			if d != 0 {
				seen[d] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// LevelsRequired returns the multiplicative levels one inference consumes:
// one per linear layer (diagonal plaintext product) plus DepthReLU+1 per
// activation (the +1 is the 1/Scale input normalization).
func (mlp *MLP) LevelsRequired() int {
	total := 0
	for _, l := range mlp.Layers {
		switch v := l.(type) {
		case *Linear:
			total++
		case *Activation:
			total += v.PAF.DepthReLU() + 1
		}
	}
	return total
}

// diagonals lists the generalized diagonals d with any nonzero entry:
// u_d[i] = W[i][(i+d) mod slots].
func (l *Linear) diagonals(slots int) []int {
	var out []int
	for d := 0; d < slots; d++ {
		nonzero := false
		for i := 0; i < l.Out; i++ {
			j := (i + d) % slots
			if j < l.In && l.W[i][j] != 0 {
				nonzero = true
				break
			}
		}
		if nonzero {
			out = append(out, d)
		}
	}
	return out
}

// Context bundles the machinery for encrypted inference.
type Context struct {
	Params *ckks.Parameters
	Enc    *ckks.Encoder
	Eval   *ckks.Evaluator // must hold relinearization + rotation keys
	HE     *hepoly.Evaluator
}

// NewContext wires a context from an evaluator with keys attached.
func NewContext(params *ckks.Parameters, enc *ckks.Encoder, eval *ckks.Evaluator) *Context {
	return &Context{Params: params, Enc: enc, Eval: eval, HE: hepoly.NewEvaluator(eval)}
}

// ApplyLinear computes Wx + b on the encrypted vector via the diagonal
// method, consuming one level. The result keeps the input's scale.
func (ctx *Context) ApplyLinear(l *Linear, ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	slots := ctx.Params.Slots()
	if l.In > slots || l.Out > slots {
		return nil, fmt.Errorf("henn: layer %dx%d exceeds %d slots", l.Out, l.In, slots)
	}
	if ct.Level < 1 {
		return nil, fmt.Errorf("henn: no level left for linear layer")
	}
	targetScale := ct.Scale
	ql := float64(ctx.Params.Q()[ct.Level])
	constScale := targetScale * ql / ct.Scale // = ql: lands back on targetScale

	var acc *ckks.Ciphertext
	for _, d := range l.diagonals(slots) {
		rot, err := ctx.Eval.Rotate(ct, d)
		if err != nil {
			return nil, fmt.Errorf("henn: diagonal %d: %w", d, err)
		}
		diag := make([]float64, slots)
		for i := 0; i < l.Out; i++ {
			j := (i + d) % slots
			if j < l.In {
				diag[i] = l.W[i][j]
			}
		}
		pt, err := ctx.Enc.EncodeReals(diag, rot.Level, constScale)
		if err != nil {
			return nil, err
		}
		term := ctx.Eval.MulPlain(rot, pt)
		if acc == nil {
			acc = term
			continue
		}
		if acc, err = ctx.Eval.Add(acc, term); err != nil {
			return nil, err
		}
	}
	if acc == nil {
		return nil, fmt.Errorf("henn: all-zero weight matrix")
	}
	out, err := ctx.Eval.Rescale(acc)
	if err != nil {
		return nil, err
	}
	out.Scale = targetScale
	// Bias.
	if l.B != nil {
		bias := make([]float64, slots)
		copy(bias, l.B)
		pt, err := ctx.Enc.EncodeReals(bias, out.Level, out.Scale)
		if err != nil {
			return nil, err
		}
		if out, err = ctx.Eval.AddPlain(out, pt); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ApplyActivation computes Scale·relu_p(x/Scale): one constant level for the
// input normalization, then the folded-scale PAF ReLU.
func (ctx *Context) ApplyActivation(a *Activation, ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	u, err := ctx.Eval.MulConstTargetScale(ct, 1/a.Scale, ct.Scale)
	if err != nil {
		return nil, err
	}
	return ctx.HE.ReLUScaled(a.PAF, u, a.Scale)
}

// Infer runs the full MLP on an encrypted input vector.
func (ctx *Context) Infer(mlp *MLP, ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	var err error
	for i, l := range mlp.Layers {
		switch v := l.(type) {
		case *Linear:
			ct, err = ctx.ApplyLinear(v, ct)
		case *Activation:
			ct, err = ctx.ApplyActivation(v, ct)
		default:
			err = fmt.Errorf("henn: unknown layer type %T", l)
		}
		if err != nil {
			return nil, fmt.Errorf("henn: layer %d: %w", i, err)
		}
	}
	return ct, nil
}

// InferPlain evaluates the same MLP on a plaintext vector (the reference for
// precision tests and the demo).
func (mlp *MLP) InferPlain(x []float64) []float64 {
	cur := append([]float64(nil), x...)
	for _, l := range mlp.Layers {
		switch v := l.(type) {
		case *Linear:
			next := make([]float64, v.Out)
			for i := 0; i < v.Out; i++ {
				s := v.B[i]
				for j := 0; j < v.In && j < len(cur); j++ {
					s += v.W[i][j] * cur[j]
				}
				next[i] = s
			}
			cur = next
		case *Activation:
			for i := range cur {
				cur[i] = v.Scale * v.PAF.ReLU(cur[i]/v.Scale)
			}
		}
	}
	return cur
}
