// Package henn runs neural-network inference directly on CKKS ciphertexts:
// plaintext-weight linear layers via the Halevi–Shoup diagonal method
// (rotations + plaintext multiplications) and PAF activations via
// internal/hepoly, with Static Scaling folded in for free. Together with the
// SMART-PAF training pipeline this closes the loop of Fig. 2: a model whose
// non-polynomial operators were replaced and fine-tuned in the clear is
// evaluated end-to-end under encryption.
package henn

import (
	"fmt"
	"sort"
	"sync"

	"github.com/efficientfhe/smartpaf/internal/ckks"
	"github.com/efficientfhe/smartpaf/internal/hepoly"
	"github.com/efficientfhe/smartpaf/internal/nn"
	"github.com/efficientfhe/smartpaf/internal/paf"
	"github.com/efficientfhe/smartpaf/internal/telemetry"
)

// Linear is a plaintext-weight fully connected layer applied to an encrypted
// activation vector laid out in the first In slots. Weights are static once
// the layer is built (deployment freezes them), so the diagonal decomposition
// is computed once per slot count and cached — the serving hot path must not
// re-derive an O(slots·Out) structure on every inference.
type Linear struct {
	In, Out int
	W       [][]float64 // W[i][j]: weight from input j to output i
	B       []float64

	planMu sync.Mutex
	plan   *diagPlan //hennlint:guarded-by(planMu)

	ptMu sync.RWMutex
	pts  map[ptKey]*ckks.Plaintext //hennlint:guarded-by(ptMu)
}

// ptKey identifies one cached encoding of a static slot vector. The encoder
// pointer scopes the cache to a parameter set, so one Linear reused under
// different parameters (tests do this) cannot alias encodings.
type ptKey struct {
	enc   *ckks.Encoder
	d     int  // diagonal index; -1 is the bias vector
	bsgs  bool // the BSGS path stores giant-step-rotated diagonals
	level int
	scale float64
}

// encodedPlaintext memoizes the encoding of a static slot vector. Plaintexts
// are read-only to the evaluator, so every request and session can share
// them; this takes per-diagonal encoding off the serving hot path (vec is
// only called on a miss).
func (l *Linear) encodedPlaintext(key ptKey, vec func() []float64) (*ckks.Plaintext, error) {
	l.ptMu.RLock()
	pt, ok := l.pts[key]
	l.ptMu.RUnlock()
	if ok {
		return pt, nil
	}
	pt, err := key.enc.EncodeReals(vec(), key.level, key.scale)
	if err != nil {
		return nil, err
	}
	l.ptMu.Lock()
	if l.pts == nil {
		l.pts = map[ptKey]*ckks.Plaintext{}
	}
	// Bound level/scale churn by evicting single arbitrary entries. The cap
	// comfortably exceeds one inference's working set (≤ In+Out-1 diagonals
	// plus the bias per (level, scale)), so the steady-state serving path
	// never evicts what it is about to reuse.
	for limit := 2*(l.In+l.Out) + 16; len(l.pts) >= limit; {
		for k := range l.pts {
			delete(l.pts, k)
			break
		}
	}
	l.pts[key] = pt
	l.ptMu.Unlock()
	return pt, nil
}

// diagPlan is the cached diagonal decomposition of W at one slot count:
// the generalized diagonals with any nonzero entry and, for each, the
// ready-to-encode slot vector u_d[i] = W[i][(i+d) mod slots].
type diagPlan struct {
	slots int
	diags []int
	vec   map[int][]float64
}

// diagonalPlan returns the cached plan for the slot count, building it on
// first use. Safe for concurrent callers (batched serving hits one Linear
// from many goroutines).
func (l *Linear) diagonalPlan(slots int) *diagPlan {
	l.planMu.Lock()
	defer l.planMu.Unlock()
	if l.plan != nil && l.plan.slots == slots {
		return l.plan
	}
	// Out is clamped to the slot count: rows beyond it cannot appear in a
	// slot vector (such a layer fails ApplyLinear's dimension check anyway;
	// the plan must still not panic for callers like RequiredRotations).
	rows := min(l.Out, slots)
	p := &diagPlan{slots: slots, vec: map[int][]float64{}}
	for d := 0; d < slots; d++ {
		var u []float64
		for i := 0; i < rows; i++ {
			j := (i + d) % slots
			if j < l.In && l.W[i][j] != 0 {
				if u == nil {
					u = make([]float64, slots)
				}
				u[i] = l.W[i][j]
			}
		}
		if u != nil {
			p.diags = append(p.diags, d)
			p.vec[d] = u
		}
	}
	l.plan = p
	return p
}

// Activation is a deployed PAF activation: out = Scale·relu_p(x/Scale).
type Activation struct {
	PAF   *paf.Composite
	Scale float64
}

// MLP is a sequence of Linear and Activation layers.
type MLP struct {
	Layers []any
}

// FromModel extracts an encrypted-inference MLP from a trained nn.Model.
// The model must be MLP-shaped (Flatten/Linear/PAF-activation layers only)
// and deployed (static scaling); anything else is an error.
func FromModel(m *nn.Model) (*MLP, error) {
	if err := m.CheckFHECompatible(); err != nil {
		return nil, fmt.Errorf("henn: %w", err)
	}
	out := &MLP{}
	for _, s := range m.Slots() {
		if s.Kind != nn.SlotReLU {
			return nil, fmt.Errorf("henn: slot %d is %s; only MLPs (ReLU slots) are supported", s.Index, s.Kind)
		}
	}
	params := m.Params()
	slotIdx := 0
	slots := m.Slots()
	// Walk parameters: nn.Linear contributes (w, b) pairs in order; PAF
	// activations contribute their stage params which we skip here (the
	// composite is taken from the slot).
	for i := 0; i < len(params); i++ {
		p := params[i]
		if p.Group != nn.GroupLinear {
			continue
		}
		// Expect weight then bias.
		if i+1 >= len(params) || params[i+1].Group != nn.GroupLinear {
			return nil, fmt.Errorf("henn: unpaired linear parameter %q", p.Name)
		}
		w, b := p, params[i+1]
		i++
		if len(b.Data) == 0 {
			return nil, fmt.Errorf("henn: linear parameter %q has an empty bias", w.Name)
		}
		if len(w.Data)%len(b.Data) != 0 {
			return nil, fmt.Errorf("henn: linear parameter %q has %d weights, not divisible by %d bias entries",
				w.Name, len(w.Data), len(b.Data))
		}
		in := len(w.Data) / len(b.Data)
		outDim := len(b.Data)
		lin := &Linear{In: in, Out: outDim, B: append([]float64(nil), b.Data...)}
		lin.W = make([][]float64, outDim)
		for r := 0; r < outDim; r++ {
			lin.W[r] = make([]float64, in)
			for c := 0; c < in; c++ {
				// nn.Linear stores W[in][out] row-major.
				lin.W[r][c] = w.Data[c*outDim+r]
			}
		}
		out.Layers = append(out.Layers, lin)
		// One activation follows each hidden linear layer.
		if slotIdx < len(slots) {
			act := slots[slotIdx].PAFLayer().(*nn.PAFAct)
			out.Layers = append(out.Layers, &Activation{PAF: act.PAF.Clone(), Scale: act.Scale})
			slotIdx++
		}
	}
	if slotIdx != len(slots) {
		return nil, fmt.Errorf("henn: %d activations matched for %d slots", slotIdx, len(slots))
	}
	return out, nil
}

// DropCaches releases every linear layer's cached diagonal plan and encoded
// plaintexts. A model registry calls this when a retired model finishes
// draining, so a hot-deployed-then-retired network cannot pin slot-sized
// caches for the life of the process.
func (mlp *MLP) DropCaches() {
	for _, l := range mlp.Layers {
		lin, ok := l.(*Linear)
		if !ok {
			continue
		}
		lin.planMu.Lock()
		lin.plan = nil
		lin.planMu.Unlock()
		lin.ptMu.Lock()
		lin.pts = nil
		lin.ptMu.Unlock()
	}
}

// RequiredRotations returns the sorted rotation steps every linear layer
// needs under the diagonal method at the given slot count.
func (mlp *MLP) RequiredRotations(slots int) []int {
	seen := map[int]bool{}
	for _, l := range mlp.Layers {
		lin, ok := l.(*Linear)
		if !ok {
			continue
		}
		for _, d := range lin.diagonals(slots) {
			if d != 0 {
				seen[d] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// LevelsRequired returns the multiplicative levels one inference consumes:
// one per linear layer (diagonal plaintext product) plus DepthReLU+1 per
// activation (the +1 is the 1/Scale input normalization).
func (mlp *MLP) LevelsRequired() int {
	total := 0
	for _, l := range mlp.Layers {
		switch v := l.(type) {
		case *Linear:
			total++
		case *Activation:
			total += v.PAF.DepthReLU() + 1
		}
	}
	return total
}

// diagonals lists the generalized diagonals d with any nonzero entry:
// u_d[i] = W[i][(i+d) mod slots].
func (l *Linear) diagonals(slots int) []int {
	return l.diagonalPlan(slots).diags
}

// Context bundles the machinery for encrypted inference.
type Context struct {
	Params *ckks.Parameters
	Enc    *ckks.Encoder
	Eval   *ckks.Evaluator // must hold relinearization + rotation keys
	HE     *hepoly.Evaluator

	// trace receives per-stage timing for one request; nil (the default)
	// disables recording at the cost of a pointer test per stage. Set via
	// WithTrace, never mutated on a shared Context.
	trace *telemetry.Trace
}

// NewContext wires a context from an evaluator with keys attached.
func NewContext(params *ckks.Parameters, enc *ckks.Encoder, eval *ckks.Evaluator) *Context {
	return &Context{Params: params, Enc: enc, Eval: eval, HE: hepoly.NewEvaluator(eval)}
}

// WithTrace returns a Context recording per-stage timings into tr. A
// session's Context is shared by every in-flight unit, so the trace rides
// on a per-request shallow copy — all heavy state (parameters, keys, layer
// caches) stays shared; only the trace pointer differs. A nil tr returns
// the receiver unchanged.
func (ctx *Context) WithTrace(tr *telemetry.Trace) *Context {
	if tr == nil {
		return ctx
	}
	c := *ctx
	c.trace = tr
	return &c
}

// ApplyLinear computes Wx + b on the encrypted vector via the diagonal
// method, consuming one level. The result keeps the input's scale.
func (ctx *Context) ApplyLinear(l *Linear, ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	slots := ctx.Params.Slots()
	if l.In > slots || l.Out > slots {
		return nil, fmt.Errorf("henn: layer %dx%d exceeds %d slots", l.Out, l.In, slots)
	}
	if ct.Level < 1 {
		return nil, fmt.Errorf("henn: no level left for linear layer")
	}
	targetScale := ct.Scale
	ql := float64(ctx.Params.Q()[ct.Level])
	constScale := targetScale * ql / ct.Scale // = ql: lands back on targetScale

	plan := l.diagonalPlan(slots)
	tr := ctx.trace
	var acc *ckks.Ciphertext
	for _, d := range plan.diags {
		mark := tr.StageStart()
		rot, err := ctx.Eval.Rotate(ct, d)
		tr.StageEnd("rotate", mark)
		if err != nil {
			return nil, fmt.Errorf("henn: diagonal %d: %w", d, err)
		}
		mark = tr.StageStart()
		pt, err := l.encodedPlaintext(
			ptKey{enc: ctx.Enc, d: d, level: rot.Level, scale: constScale},
			func() []float64 { return plan.vec[d] })
		tr.StageEnd("encode", mark)
		if err != nil {
			return nil, err
		}
		mark = tr.StageStart()
		term := ctx.Eval.MulPlain(rot, pt)
		if acc == nil {
			acc = term
			tr.StageEnd("mul_plain", mark)
			continue
		}
		acc, err = ctx.Eval.Add(acc, term)
		tr.StageEnd("mul_plain", mark)
		if err != nil {
			return nil, err
		}
	}
	if acc == nil {
		return nil, fmt.Errorf("henn: all-zero weight matrix")
	}
	mark := tr.StageStart()
	out, err := ctx.Eval.Rescale(acc)
	tr.StageEnd("rescale", mark)
	if err != nil {
		return nil, err
	}
	out.Scale = targetScale
	if out, err = l.addBias(ctx, out); err != nil {
		return nil, err
	}
	return out, nil
}

// addBias adds the (cached) encoded bias vector, if any.
func (l *Linear) addBias(ctx *Context, out *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	if l.B == nil {
		return out, nil
	}
	slots := ctx.Params.Slots()
	tr := ctx.trace
	mark := tr.StageStart()
	pt, err := l.encodedPlaintext(
		ptKey{enc: ctx.Enc, d: -1, level: out.Level, scale: out.Scale},
		func() []float64 {
			bias := make([]float64, slots)
			copy(bias, l.B)
			return bias
		})
	tr.StageEnd("encode", mark)
	if err != nil {
		return nil, err
	}
	mark = tr.StageStart()
	res, err := ctx.Eval.AddPlain(out, pt)
	tr.StageEnd("add_plain", mark)
	return res, err
}

// ApplyActivation computes Scale·relu_p(x/Scale): one constant level for the
// input normalization, then the folded-scale PAF ReLU.
func (ctx *Context) ApplyActivation(a *Activation, ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	tr := ctx.trace
	mark := tr.StageStart()
	u, err := ctx.Eval.MulConstTargetScale(ct, 1/a.Scale, ct.Scale)
	tr.StageEnd("mul_const", mark)
	if err != nil {
		return nil, err
	}
	mark = tr.StageStart()
	out, err := ctx.HE.ReLUScaled(a.PAF, u, a.Scale)
	tr.StageEnd("paf_eval", mark)
	return out, err
}

// Infer runs the full MLP on an encrypted input vector.
func (ctx *Context) Infer(mlp *MLP, ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	var err error
	for i, l := range mlp.Layers {
		switch v := l.(type) {
		case *Linear:
			ct, err = ctx.ApplyLinear(v, ct)
		case *Activation:
			ct, err = ctx.ApplyActivation(v, ct)
		default:
			err = fmt.Errorf("henn: unknown layer type %T", l)
		}
		if err != nil {
			return nil, fmt.Errorf("henn: layer %d: %w", i, err)
		}
	}
	return ct, nil
}

// InferPlain evaluates the same MLP on a plaintext vector (the reference for
// precision tests and the demo).
func (mlp *MLP) InferPlain(x []float64) []float64 {
	cur := append([]float64(nil), x...)
	for _, l := range mlp.Layers {
		switch v := l.(type) {
		case *Linear:
			next := make([]float64, v.Out)
			for i := 0; i < v.Out; i++ {
				// A nil bias is a valid deployed layer (addBias skips it on
				// the encrypted path); the reference must agree.
				s := 0.0
				if v.B != nil {
					s = v.B[i]
				}
				for j := 0; j < v.In && j < len(cur); j++ {
					s += v.W[i][j] * cur[j]
				}
				next[i] = s
			}
			cur = next
		case *Activation:
			for i := range cur {
				cur[i] = v.Scale * v.PAF.ReLU(cur[i]/v.Scale)
			}
		}
	}
	return cur
}
