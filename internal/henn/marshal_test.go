package henn

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/efficientfhe/smartpaf/internal/paf"
)

// testMLP builds a deterministic two-layer MLP with a PAF activation, the
// shape a registry deploys.
func testMLP(seed int64) *MLP {
	rng := rand.New(rand.NewSource(seed))
	newLinear := func(in, out int, bias bool) *Linear {
		l := &Linear{In: in, Out: out, W: make([][]float64, out)}
		if bias {
			l.B = make([]float64, out)
		}
		for i := range l.W {
			l.W[i] = make([]float64, in)
			for j := range l.W[i] {
				l.W[i][j] = rng.NormFloat64()
			}
			if bias {
				l.B[i] = rng.NormFloat64() * 0.1
			}
		}
		return l
	}
	return &MLP{Layers: []any{
		newLinear(16, 8, true),
		&Activation{PAF: paf.MustNew(paf.FormF1G2), Scale: 4},
		newLinear(8, 4, false), // exercise the no-bias path
	}}
}

// TestMLPMarshalRoundTrip: the decoded network is structurally identical and
// computes identical plaintext inferences.
func TestMLPMarshalRoundTrip(t *testing.T) {
	mlp := testMLP(5)
	data, err := mlp.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got := new(MLP)
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if len(got.Layers) != len(mlp.Layers) {
		t.Fatalf("round trip kept %d layers, want %d", len(got.Layers), len(mlp.Layers))
	}
	for i, l := range mlp.Layers {
		switch v := l.(type) {
		case *Linear:
			g, ok := got.Layers[i].(*Linear)
			if !ok {
				t.Fatalf("layer %d: got %T, want *Linear", i, got.Layers[i])
			}
			if g.In != v.In || g.Out != v.Out || !reflect.DeepEqual(g.W, v.W) || !reflect.DeepEqual(g.B, v.B) {
				t.Fatalf("layer %d linear mismatch", i)
			}
		case *Activation:
			g, ok := got.Layers[i].(*Activation)
			if !ok {
				t.Fatalf("layer %d: got %T, want *Activation", i, got.Layers[i])
			}
			if g.Scale != v.Scale || g.PAF.Name != v.PAF.Name || g.PAF.Label != v.PAF.Label {
				t.Fatalf("layer %d activation metadata mismatch", i)
			}
			if len(g.PAF.Stages) != len(v.PAF.Stages) {
				t.Fatalf("layer %d: %d PAF stages, want %d", i, len(g.PAF.Stages), len(v.PAF.Stages))
			}
			for s := range v.PAF.Stages {
				if !reflect.DeepEqual(g.PAF.Stages[s].Coeffs, v.PAF.Stages[s].Coeffs) {
					t.Fatalf("layer %d stage %d coefficients mismatch", i, s)
				}
			}
		}
	}
	x := make([]float64, 16)
	for i := range x {
		x[i] = float64(i%5)/5 - 0.4
	}
	want, gotOut := mlp.InferPlain(x), got.InferPlain(x)
	for i := range want {
		if want[i] != gotOut[i] {
			t.Fatalf("InferPlain diverged at %d: %g vs %g", i, gotOut[i], want[i])
		}
	}
	if got.LevelsRequired() != mlp.LevelsRequired() {
		t.Fatalf("LevelsRequired %d, want %d", got.LevelsRequired(), mlp.LevelsRequired())
	}
}

// TestMLPUnmarshalTruncations: every prefix of a valid payload must error
// cleanly, never panic — the deploy endpoint feeds this parser hostile bytes.
func TestMLPUnmarshalTruncations(t *testing.T) {
	data, err := testMLP(7).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		if err := new(MLP).UnmarshalBinary(data[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes unmarshaled cleanly", n, len(data))
		}
	}
	// Trailing garbage is also rejected: the artifact is exactly one MLP.
	if err := new(MLP).UnmarshalBinary(append(append([]byte{}, data...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestMLPUnmarshalHostile covers the header-hardening paths.
func TestMLPUnmarshalHostile(t *testing.T) {
	valid, err := testMLP(9).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	badMagic := append([]byte{}, valid...)
	badMagic[0] ^= 0xff
	if err := new(MLP).UnmarshalBinary(badMagic); err == nil {
		t.Fatal("bad magic accepted")
	}

	hdr := func(vals ...uint32) []byte {
		var buf bytes.Buffer
		for _, v := range vals {
			_ = binary.Write(&buf, binary.LittleEndian, v)
		}
		return buf.Bytes()
	}
	// Implausible layer count.
	if err := new(MLP).UnmarshalBinary(hdr(mlpMagic, maxLayers+1)); err == nil {
		t.Fatal("implausible layer count accepted")
	}
	// Implausible linear dimensions: a hostile header must not force a huge
	// allocation before the bounds check.
	if err := new(MLP).UnmarshalBinary(hdr(mlpMagic, 1, layerKindLinear, 1<<31, 4, 0)); err == nil {
		t.Fatal("implausible linear dimension accepted")
	}
	// Unknown layer kind.
	if err := new(MLP).UnmarshalBinary(hdr(mlpMagic, 1, 99)); err == nil {
		t.Fatal("unknown layer kind accepted")
	}
}

// TestMLPUnmarshalRejectsNonFinite: NaN weights or activation scales would
// silently corrupt every inference; they must fail at the boundary.
func TestMLPUnmarshalRejectsNonFinite(t *testing.T) {
	mlp := testMLP(11)
	mlp.Layers[0].(*Linear).W[2][3] = math.NaN()
	if _, err := mlp.MarshalBinary(); err != nil {
		// Marshal does not re-check weights; only the wire boundary does.
		t.Fatalf("marshal with NaN weight: %v", err)
	}
	data, _ := mlp.MarshalBinary()
	if err := new(MLP).UnmarshalBinary(data); err == nil {
		t.Fatal("NaN weight accepted")
	}

	bad := testMLP(11)
	bad.Layers[1].(*Activation).Scale = math.Inf(1)
	if _, err := bad.MarshalBinary(); err == nil {
		t.Fatal("marshal accepted an infinite activation scale")
	}
}

// TestMLPMarshalRejectsUnserializable: only deployed layer types cross the
// wire.
func TestMLPMarshalRejectsUnserializable(t *testing.T) {
	if _, err := (&MLP{}).MarshalBinary(); err == nil {
		t.Fatal("empty MLP marshaled")
	}
	if _, err := (&MLP{Layers: []any{"nope"}}).MarshalBinary(); err == nil {
		t.Fatal("unknown layer type marshaled")
	}
}

// TestDropCaches: after a drop, plans rebuild on demand (same diagonals) and
// nothing panics.
func TestDropCaches(t *testing.T) {
	mlp := testMLP(13)
	before := mlp.RequiredRotations(64)
	mlp.DropCaches()
	after := mlp.RequiredRotations(64)
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("rotations changed across DropCaches: %v vs %v", after, before)
	}
}
