package henn

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/efficientfhe/smartpaf/internal/paf"
)

// Binary serialization for the deployed model artifact. A frozen MLP is what
// a registry hot-deploys over the network, so it gets the same wire-format
// discipline as the internal/ckks key material: a leading magic, explicit
// bounds on every count before allocation, and finiteness checks on every
// float — a hostile payload must fail at the boundary, never panic (or NaN-
// poison) the inference loop.
//
// Layout (little-endian):
//
//	u32 magic | u32 layerCount
//	per layer: u32 kind
//	  kind 1 (Linear):     u32 In | u32 Out | u32 biasFlag |
//	                       Out×In f64 weights (row-major) | [Out f64 bias]
//	  kind 2 (Activation): f64 scale | composite:
//	                       u32 nameLen | name | u32 labelLen | label |
//	                       u32 stageCount | per stage: u32 nCoeffs | f64 coeffs

const (
	mlpMagic = uint32(0x5AF7CC07) // next in the repo's 0x5AF7CCxx magic sequence

	layerKindLinear     = uint32(1)
	layerKindActivation = uint32(2)

	// maxLayerDim bounds Linear.In/Out: generous for any MLP this stack can
	// serve (slot counts top out at 2^19 for N ≤ 2^20) while keeping a
	// hostile header from forcing a huge allocation.
	maxLayerDim = 1 << 16
	maxLayers   = 256
	maxStages   = 16
	maxCoeffs   = 64
	maxNameLen  = 128
)

func writeU32(w io.Writer, v uint32) error { return binary.Write(w, binary.LittleEndian, v) }
func readU32(r io.Reader) (uint32, error) {
	var v uint32
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

func writeF64s(w io.Writer, vs []float64) error {
	return binary.Write(w, binary.LittleEndian, vs)
}

// readF64s reads n floats, rejecting NaN/Inf: non-finite weights would not
// crash inference, they would silently corrupt every result that flows
// through the layer.
func readF64s(r io.Reader, n int, what string) ([]float64, error) {
	vs := make([]float64, n)
	if err := binary.Read(r, binary.LittleEndian, vs); err != nil {
		return nil, err
	}
	for i, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("henn: non-finite %s value %g at index %d", what, v, i)
		}
	}
	return vs, nil
}

func writeString(w io.Writer, s string) error {
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func readString(r io.Reader, what string) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > maxNameLen {
		return "", fmt.Errorf("henn: implausible %s length %d", what, n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (mlp *MLP) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := writeU32(&buf, mlpMagic); err != nil {
		return nil, err
	}
	if len(mlp.Layers) == 0 || len(mlp.Layers) > maxLayers {
		return nil, fmt.Errorf("henn: cannot marshal an MLP with %d layers", len(mlp.Layers))
	}
	if err := writeU32(&buf, uint32(len(mlp.Layers))); err != nil {
		return nil, err
	}
	for i, l := range mlp.Layers {
		switch v := l.(type) {
		case *Linear:
			if err := writeLinear(&buf, v); err != nil {
				return nil, fmt.Errorf("henn: layer %d: %w", i, err)
			}
		case *Activation:
			if err := writeActivation(&buf, v); err != nil {
				return nil, fmt.Errorf("henn: layer %d: %w", i, err)
			}
		default:
			return nil, fmt.Errorf("henn: layer %d has unserializable type %T", i, l)
		}
	}
	return buf.Bytes(), nil
}

func writeLinear(w io.Writer, l *Linear) error {
	if l.In <= 0 || l.In > maxLayerDim || l.Out <= 0 || l.Out > maxLayerDim {
		return fmt.Errorf("linear layer dimensions %dx%d out of range", l.Out, l.In)
	}
	if len(l.W) != l.Out {
		return fmt.Errorf("linear layer has %d weight rows for Out=%d", len(l.W), l.Out)
	}
	if l.B != nil && len(l.B) != l.Out {
		return fmt.Errorf("linear layer has %d bias entries for Out=%d", len(l.B), l.Out)
	}
	bias := uint32(0)
	if l.B != nil {
		bias = 1
	}
	for _, v := range []uint32{layerKindLinear, uint32(l.In), uint32(l.Out), bias} {
		if err := writeU32(w, v); err != nil {
			return err
		}
	}
	for _, row := range l.W {
		if len(row) != l.In {
			return fmt.Errorf("linear layer weight row has %d entries for In=%d", len(row), l.In)
		}
		if err := writeF64s(w, row); err != nil {
			return err
		}
	}
	if l.B != nil {
		return writeF64s(w, l.B)
	}
	return nil
}

func readLinear(r io.Reader) (*Linear, error) {
	var hdr [3]uint32 // In, Out, biasFlag
	for i := range hdr {
		v, err := readU32(r)
		if err != nil {
			return nil, err
		}
		hdr[i] = v
	}
	in, out, bias := int(hdr[0]), int(hdr[1]), hdr[2]
	if in <= 0 || in > maxLayerDim || out <= 0 || out > maxLayerDim {
		return nil, fmt.Errorf("henn: implausible linear dimensions %dx%d", out, in)
	}
	if bias > 1 {
		return nil, fmt.Errorf("henn: implausible bias flag %d", bias)
	}
	l := &Linear{In: in, Out: out, W: make([][]float64, out)}
	for i := range l.W {
		row, err := readF64s(r, in, "weight")
		if err != nil {
			return nil, err
		}
		l.W[i] = row
	}
	if bias == 1 {
		b, err := readF64s(r, out, "bias")
		if err != nil {
			return nil, err
		}
		l.B = b
	}
	return l, nil
}

func writeActivation(w io.Writer, a *Activation) error {
	if a.PAF == nil || len(a.PAF.Stages) == 0 {
		return fmt.Errorf("activation has no PAF stages")
	}
	if len(a.PAF.Stages) > maxStages {
		return fmt.Errorf("activation has %d PAF stages (max %d)", len(a.PAF.Stages), maxStages)
	}
	if math.IsNaN(a.Scale) || math.IsInf(a.Scale, 0) || a.Scale <= 0 {
		return fmt.Errorf("activation has implausible scale %g", a.Scale)
	}
	if err := writeU32(w, layerKindActivation); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, a.Scale); err != nil {
		return err
	}
	if err := writeString(w, a.PAF.Name); err != nil {
		return err
	}
	if err := writeString(w, a.PAF.Label); err != nil {
		return err
	}
	if err := writeU32(w, uint32(len(a.PAF.Stages))); err != nil {
		return err
	}
	for _, s := range a.PAF.Stages {
		if len(s.Coeffs) == 0 || len(s.Coeffs) > maxCoeffs {
			return fmt.Errorf("PAF stage has %d coefficients (max %d)", len(s.Coeffs), maxCoeffs)
		}
		if err := writeU32(w, uint32(len(s.Coeffs))); err != nil {
			return err
		}
		if err := writeF64s(w, s.Coeffs); err != nil {
			return err
		}
	}
	return nil
}

func readActivation(r io.Reader) (*Activation, error) {
	var scale float64
	if err := binary.Read(r, binary.LittleEndian, &scale); err != nil {
		return nil, err
	}
	if math.IsNaN(scale) || math.IsInf(scale, 0) || scale <= 0 {
		return nil, fmt.Errorf("henn: implausible activation scale %g", scale)
	}
	name, err := readString(r, "PAF name")
	if err != nil {
		return nil, err
	}
	label, err := readString(r, "PAF label")
	if err != nil {
		return nil, err
	}
	nStages, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if nStages == 0 || nStages > maxStages {
		return nil, fmt.Errorf("henn: implausible PAF stage count %d", nStages)
	}
	c := &paf.Composite{Name: name, Label: label, Stages: make([]*paf.OddPoly, nStages)}
	for i := range c.Stages {
		nc, err := readU32(r)
		if err != nil {
			return nil, err
		}
		if nc == 0 || nc > maxCoeffs {
			return nil, fmt.Errorf("henn: implausible PAF coefficient count %d", nc)
		}
		coeffs, err := readF64s(r, int(nc), "PAF coefficient")
		if err != nil {
			return nil, err
		}
		c.Stages[i] = paf.NewOddPoly(coeffs)
	}
	return &Activation{PAF: c, Scale: scale}, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The decoded MLP has
// cold caches; a registry deploy warms them before serving traffic.
func (mlp *MLP) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	magic, err := readU32(r)
	if err != nil {
		return err
	}
	if magic != mlpMagic {
		return fmt.Errorf("henn: bad MLP magic %#x", magic)
	}
	n, err := readU32(r)
	if err != nil {
		return err
	}
	if n == 0 || n > maxLayers {
		return fmt.Errorf("henn: implausible layer count %d", n)
	}
	layers := make([]any, 0, n)
	for i := uint32(0); i < n; i++ {
		kind, err := readU32(r)
		if err != nil {
			return err
		}
		switch kind {
		case layerKindLinear:
			l, err := readLinear(r)
			if err != nil {
				return err
			}
			layers = append(layers, l)
		case layerKindActivation:
			a, err := readActivation(r)
			if err != nil {
				return err
			}
			layers = append(layers, a)
		default:
			return fmt.Errorf("henn: unknown layer kind %d", kind)
		}
	}
	if r.Len() != 0 {
		return fmt.Errorf("henn: %d trailing bytes after MLP payload", r.Len())
	}
	mlp.Layers = layers
	return nil
}
