package henn

import (
	"testing"

	"github.com/efficientfhe/smartpaf/internal/telemetry"
)

// TestUnitTraceStages runs one Unit with a trace attached and checks the
// stage breakdown: the CKKS primitive stages the serving path executes all
// appear, and their total accounts for the bulk of the unit's wall time —
// the property the /v1/traces endpoint's breakdown rests on.
func TestUnitTraceStages(t *testing.T) {
	ctx, mlp, encryptor, _ := batchTestMLP(t)
	vec := make([]float64, ctx.Params.Slots())
	for j := 0; j < 8; j++ {
		vec[j] = 0.1 * float64(j)
	}
	pt, err := ctx.Enc.EncodeReals(vec, ctx.Params.MaxLevel(), ctx.Params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct := encryptor.Encrypt(pt)

	tr := telemetry.NewTrace("unit-test")
	sp := tr.StartSpan("unit")
	if _, err := (Unit{Ctx: ctx, MLP: mlp, CT: ct, Trace: tr}).Run(); err != nil {
		t.Fatal(err)
	}
	sp.End()

	snap := tr.Snapshot()
	stages := map[string]telemetry.StageSnapshot{}
	var stageTotalUs int64
	for _, s := range snap.Stages {
		stages[s.Name] = s
		stageTotalUs += s.TotalUs
	}
	// The test MLP prefers the BSGS path (batchTestMLP generates its
	// rotation keys), so the hoisted stages plus the shared ones must all
	// be present.
	for _, want := range []string{"mul_plain", "encode", "rescale", "mul_const", "paf_eval", "add_plain"} {
		if stages[want].Count == 0 {
			t.Errorf("stage %q missing from trace; got %+v", want, snap.Stages)
		}
	}
	if stages["decompose_hoisted"].Count == 0 && stages["rotate"].Count == 0 {
		t.Errorf("neither hoisted nor plain rotations recorded: %+v", snap.Stages)
	}
	if len(snap.Spans) != 1 {
		t.Fatalf("spans = %+v, want the single unit span", snap.Spans)
	}
	unitUs := snap.Spans[0].DurUs
	if stageTotalUs > unitUs {
		t.Fatalf("stage total %dµs exceeds unit wall time %dµs", stageTotalUs, unitUs)
	}
	if stageTotalUs*2 < unitUs {
		t.Fatalf("stage total %dµs covers under half of unit wall time %dµs — instrumentation gap", stageTotalUs, unitUs)
	}

	// A traced run must not leave a trace behind on the shared context.
	if ctx.trace != nil {
		t.Fatal("shared Context mutated by WithTrace")
	}
}

// TestUnitNoTrace: the untraced path records nothing and still works.
func TestUnitNoTrace(t *testing.T) {
	ctx, mlp, encryptor, _ := batchTestMLP(t)
	vec := make([]float64, ctx.Params.Slots())
	pt, err := ctx.Enc.EncodeReals(vec, ctx.Params.MaxLevel(), ctx.Params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Unit{Ctx: ctx, MLP: mlp, CT: encryptor.Encrypt(pt)}).Run(); err != nil {
		t.Fatal(err)
	}
}
