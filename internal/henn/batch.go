package henn

import (
	"fmt"

	"github.com/efficientfhe/smartpaf/internal/ckks"
	"github.com/efficientfhe/smartpaf/internal/parallel"
)

// InferBatch runs the MLP on a batch of independent encrypted inputs,
// evaluating up to workers ciphertexts concurrently over the shared context
// (the ckks.Evaluator is safe for concurrent use, so one set of keys serves
// the whole batch). The workers knob follows the repo-wide convention:
// 0 or 1 is the serial path, negative uses all cores. Results are returned
// in input order; the first error stops the remaining work and is returned.
func (ctx *Context) InferBatch(mlp *MLP, cts []*ckks.Ciphertext, workers int) ([]*ckks.Ciphertext, error) {
	out := make([]*ckks.Ciphertext, len(cts))
	err := parallel.For(len(cts), parallel.Workers(workers), func(i int) error {
		res, err := ctx.Infer(mlp, cts[i])
		if err != nil {
			return fmt.Errorf("henn: batch item %d: %w", i, err)
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// InferBatchEach is InferBatch with per-item failure isolation: every input
// gets its own result or error, and one bad input cannot discard its
// batch-mates' work. Serving batchers use this; InferBatch's all-or-nothing
// contract suits experiment harnesses.
func (ctx *Context) InferBatchEach(mlp *MLP, cts []*ckks.Ciphertext, workers int) ([]*ckks.Ciphertext, []error) {
	out := make([]*ckks.Ciphertext, len(cts))
	errs := make([]error, len(cts))
	_ = parallel.For(len(cts), parallel.Workers(workers), func(i int) error {
		out[i], errs[i] = ctx.Infer(mlp, cts[i])
		return nil
	})
	return out, errs
}
