package henn

import (
	"fmt"

	"github.com/efficientfhe/smartpaf/internal/ckks"
	"github.com/efficientfhe/smartpaf/internal/parallel"
	"github.com/efficientfhe/smartpaf/internal/telemetry"
)

// InferBatch runs the MLP on a batch of independent encrypted inputs,
// evaluating up to workers ciphertexts concurrently over the shared context
// (the ckks.Evaluator is safe for concurrent use, so one set of keys serves
// the whole batch). The workers knob follows the repo-wide convention:
// 0 or 1 is the serial path, negative uses all cores. Results are returned
// in input order; the first error stops the remaining work and is returned.
func (ctx *Context) InferBatch(mlp *MLP, cts []*ckks.Ciphertext, workers int) ([]*ckks.Ciphertext, error) {
	infer := ctx.inferPath(mlp)
	out := make([]*ckks.Ciphertext, len(cts))
	err := parallel.For(len(cts), parallel.Workers(workers), func(i int) error {
		res, err := infer(mlp, cts[i])
		if err != nil {
			return fmt.Errorf("henn: batch item %d: %w", i, err)
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Unit is one independent encrypted inference: a ciphertext bound to the
// Context holding the keys that can evaluate it. Schedulers dispatch Units
// from many sessions onto one shared worker budget — the Context travels
// with the item, so a single pool serves any number of key sets, and each
// unit fails on its own (one bad input cannot discard its batch-mates'
// work; InferBatch's all-or-nothing contract suits experiment harnesses
// instead).
type Unit struct {
	Ctx *Context
	MLP *MLP
	CT  *ckks.Ciphertext

	// Trace, when non-nil, receives the unit's per-stage timing breakdown
	// (rotations, key switches, rescales, encodes, PAF evaluation). The
	// scheduler sets it from the request's trace; batch harnesses leave it
	// nil and pay only a pointer test per stage.
	Trace *telemetry.Trace
}

// Run executes the unit on the model's serving path (see MLP.PreferBSGS):
// the session's rotation keys were generated for exactly that path's steps.
func (u Unit) Run() (*ckks.Ciphertext, error) {
	ctx := u.Ctx.WithTrace(u.Trace)
	return ctx.inferPath(u.MLP)(u.MLP, u.CT)
}

// inferPath picks the evaluation method matching the model's advertised
// rotation set — BSGS with hoisted baby rotations when it needs fewer keys,
// the naive diagonal method otherwise.
func (ctx *Context) inferPath(mlp *MLP) func(*MLP, *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	if mlp.PreferBSGS(ctx.Params.Slots()) {
		return ctx.InferBSGS
	}
	return ctx.Infer
}
