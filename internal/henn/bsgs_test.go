package henn

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/efficientfhe/smartpaf/internal/ckks"
	"github.com/efficientfhe/smartpaf/internal/paf"
)

func randomLinear(rng *rand.Rand, in, out int) *Linear {
	l := &Linear{In: in, Out: out, B: make([]float64, out)}
	l.W = make([][]float64, out)
	for i := range l.W {
		l.W[i] = make([]float64, in)
		for j := range l.W[i] {
			l.W[i][j] = rng.NormFloat64() * 0.5
		}
		l.B[i] = rng.NormFloat64() * 0.1
	}
	return l
}

func TestBSGSMatchesNaiveDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	lin := randomLinear(rng, 20, 12)
	mlp := &MLP{Layers: []any{lin}}
	slots := 128
	// Union of both methods' rotation needs.
	steps := append(mlp.RequiredRotations(slots), mlp.RequiredRotationsBSGS(slots)...)
	ctx, encryptor, decryptor := newHEContext(t, 2, steps)

	x := make([]float64, 20)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	vec := make([]float64, ctx.Params.Slots())
	copy(vec, x)
	pt, err := ctx.Enc.EncodeReals(vec, ctx.Params.MaxLevel(), ctx.Params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct := encryptor.Encrypt(pt)

	naive, err := ctx.ApplyLinear(lin, ct)
	if err != nil {
		t.Fatal(err)
	}
	bsgs, err := ctx.ApplyLinearBSGS(lin, ct)
	if err != nil {
		t.Fatal(err)
	}
	gn := ctx.Enc.DecodeReals(decryptor.Decrypt(naive))
	gb := ctx.Enc.DecodeReals(decryptor.Decrypt(bsgs))
	want := mlp.InferPlain(x)
	for i := 0; i < lin.Out; i++ {
		if d := math.Abs(gn[i] - want[i]); d > 1e-4 {
			t.Fatalf("naive output %d off by %g", i, d)
		}
		if d := math.Abs(gb[i] - want[i]); d > 1e-4 {
			t.Fatalf("bsgs output %d off by %g", i, d)
		}
	}
	if bsgs.Level != naive.Level || bsgs.Scale != naive.Scale {
		t.Fatalf("bsgs level/scale (%d, %g) differ from naive (%d, %g)",
			bsgs.Level, bsgs.Scale, naive.Level, naive.Scale)
	}
}

func TestBSGSNeedsFewerRotations(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// A dense wide layer: the regime BSGS exists for.
	lin := randomLinear(rng, 100, 64)
	mlp := &MLP{Layers: []any{lin}}
	slots := 128
	naive := len(mlp.RequiredRotations(slots))
	bsgs := len(mlp.RequiredRotationsBSGS(slots))
	if bsgs >= naive {
		t.Fatalf("BSGS needs %d rotations, naive %d — no saving", bsgs, naive)
	}
	// Asymptotically ~2√slots vs ~in+out.
	if bsgs > 4*int(math.Sqrt(float64(slots))) {
		t.Fatalf("BSGS rotation count %d far above O(√slots)", bsgs)
	}
}

// TestHoistedRotationEquivalenceOnModelRotationSet is the serving-path
// equivalence suite: for every rotation step a deployed model's BSGS plan
// prescribes — plus negative and wrapped variants — the hoisted rotation
// must agree with plain Rotate within the precision harness bound, with
// many goroutines sharing one evaluator and one read-only decomposition
// (run under -race via `make test`).
func TestHoistedRotationEquivalenceOnModelRotationSet(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	mlp := &MLP{Layers: []any{
		randomLinear(rng, 20, 12),
		&Activation{PAF: paf.MustNew(paf.FormF1G2), Scale: 4},
		randomLinear(rng, 12, 6),
	}}
	slots := 128
	prescribed := mlp.RequiredRotationsBSGS(slots)
	if len(prescribed) == 0 {
		t.Fatal("model prescribes no rotations")
	}
	// Negative and wrapped variants normalize onto the same key set.
	steps := append([]int(nil), prescribed...)
	steps = append(steps, prescribed[0]-slots, prescribed[len(prescribed)-1]+slots)
	ctx, encryptor, decryptor := newHEContext(t, 2, prescribed)

	values := make([]float64, slots)
	for i := range values {
		values[i] = rng.Float64()*2 - 1
	}
	pt, err := ctx.Enc.EncodeReals(values, ctx.Params.MaxLevel(), ctx.Params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct := encryptor.Encrypt(pt)

	dec := ctx.Eval.DecomposeHoisted(ct)
	defer dec.Release()
	check := func(step int) error {
		hoisted, err := ctx.Eval.RotateHoisted(dec, step)
		if err != nil {
			return err
		}
		plain, err := ctx.Eval.Rotate(ct, step)
		if err != nil {
			return err
		}
		gh := ctx.Enc.DecodeReals(decryptor.Decrypt(hoisted))
		gp := ctx.Enc.DecodeReals(decryptor.Decrypt(plain))
		for i := 0; i < slots; i++ {
			want := values[((i+step)%slots+slots)%slots]
			if d := math.Abs(gh[i] - want); d > 1e-4 {
				t.Errorf("step %d slot %d: hoisted off plaintext by %g", step, i, d)
				return nil
			}
			if d := math.Abs(gh[i] - gp[i]); d > 1e-4 {
				t.Errorf("step %d slot %d: hoisted differs from plain by %g", step, i, d)
				return nil
			}
		}
		return nil
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, step := range steps {
				if err := check(step); err != nil {
					t.Errorf("step %d: %v", step, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestApplyLinearBSGSConcurrent runs the hoisted BSGS layer from many
// goroutines over one shared context, checking each result against the
// plaintext reference — the batched-serving shape, under -race.
func TestApplyLinearBSGSConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	lin := randomLinear(rng, 24, 16)
	mlp := &MLP{Layers: []any{lin}}
	slots := 128
	ctx, encryptor, decryptor := newHEContext(t, 2, mlp.RequiredRotationsBSGS(slots))

	const workers = 4
	inputs := make([][]float64, workers)
	cts := make([]*ckks.Ciphertext, workers)
	for g := range cts {
		x := make([]float64, 24)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		inputs[g] = x
		vec := make([]float64, ctx.Params.Slots())
		copy(vec, x)
		pt, err := ctx.Enc.EncodeReals(vec, ctx.Params.MaxLevel(), ctx.Params.DefaultScale())
		if err != nil {
			t.Fatal(err)
		}
		cts[g] = encryptor.Encrypt(pt)
	}

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out, err := ctx.ApplyLinearBSGS(lin, cts[g])
			if err != nil {
				t.Errorf("worker %d: %v", g, err)
				return
			}
			got := ctx.Enc.DecodeReals(decryptor.Decrypt(out))
			want := mlp.InferPlain(inputs[g])
			for i := 0; i < lin.Out; i++ {
				if d := math.Abs(got[i] - want[i]); d > 1e-4 {
					t.Errorf("worker %d output %d off by %g", g, i, d)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestInferBSGSEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mlp := &MLP{Layers: []any{
		randomLinear(rng, 16, 10),
		&Activation{PAF: paf.MustNew(paf.FormF1G2), Scale: 4},
		randomLinear(rng, 10, 4),
	}}
	ctx, encryptor, decryptor := newHEContext(t, mlp.LevelsRequired()+1, mlp.RequiredRotationsBSGS(128))

	x := make([]float64, 16)
	for i := range x {
		x[i] = rng.Float64() - 0.5
	}
	vec := make([]float64, ctx.Params.Slots())
	copy(vec, x)
	pt, err := ctx.Enc.EncodeReals(vec, ctx.Params.MaxLevel(), ctx.Params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctx.InferBSGS(mlp, encryptor.Encrypt(pt))
	if err != nil {
		t.Fatal(err)
	}
	got := ctx.Enc.DecodeReals(decryptor.Decrypt(out))
	want := mlp.InferPlain(x)
	for i := 0; i < 4; i++ {
		if d := math.Abs(got[i] - want[i]); d > 1e-2*(1+math.Abs(want[i])) {
			t.Fatalf("logit %d: encrypted %g plaintext %g", i, got[i], want[i])
		}
	}
}
