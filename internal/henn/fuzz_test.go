package henn

import "testing"

// FuzzMLPUnmarshal throws arbitrary bytes at the network wire decoder:
// garbage must error (never panic, never allocate unboundedly from a
// hostile layer count or dimension), and any accepted network must
// survive a re-marshal round trip.
func FuzzMLPUnmarshal(f *testing.F) {
	seed, err := testMLP(5).MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/3])
	f.Add([]byte{})
	corrupt := append([]byte(nil), seed...)
	corrupt[len(corrupt)/2] ^= 0xFF
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		mlp := new(MLP)
		if err := mlp.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := mlp.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted network fails to re-marshal: %v", err)
		}
		again := new(MLP)
		if err := again.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-marshaled network rejected: %v", err)
		}
	})
}
