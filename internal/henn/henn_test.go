package henn

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/efficientfhe/smartpaf/internal/ckks"
	"github.com/efficientfhe/smartpaf/internal/data"
	"github.com/efficientfhe/smartpaf/internal/nn"
	"github.com/efficientfhe/smartpaf/internal/paf"
	"github.com/efficientfhe/smartpaf/internal/smartpaf"
)

// newHEContext builds a small context with rotation keys for the MLP.
func newHEContext(t testing.TB, levels int, rotations []int) (*Context, *ckks.Encryptor, *ckks.Decryptor) {
	t.Helper()
	logQ := make([]int, levels+1)
	logQ[0] = 55
	for i := 1; i <= levels; i++ {
		logQ[i] = 45
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{LogN: 8, LogQ: logQ, LogP: 55, LogScale: 45})
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params, 31)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	rks := kg.GenRotationKeys(sk, rotations, false)
	eval := ckks.NewEvaluator(params, rlk).WithRotationKeys(rks)
	return NewContext(params, ckks.NewEncoder(params), eval),
		ckks.NewEncryptor(params, pk, 32),
		ckks.NewDecryptor(params, sk)
}

func TestApplyLinearMatchesPlaintext(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lin := &Linear{In: 6, Out: 4, B: make([]float64, 4)}
	lin.W = make([][]float64, 4)
	for i := range lin.W {
		lin.W[i] = make([]float64, 6)
		for j := range lin.W[i] {
			lin.W[i][j] = rng.NormFloat64()
		}
		lin.B[i] = rng.NormFloat64() * 0.1
	}
	mlp := &MLP{Layers: []any{lin}}
	ctx, encryptor, decryptor := newHEContext(t, 2, mlp.RequiredRotations(128))

	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	vec := make([]float64, ctx.Params.Slots())
	copy(vec, x)
	pt, err := ctx.Enc.EncodeReals(vec, ctx.Params.MaxLevel(), ctx.Params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct := encryptor.Encrypt(pt)
	out, err := ctx.ApplyLinear(lin, ct)
	if err != nil {
		t.Fatal(err)
	}
	got := ctx.Enc.DecodeReals(decryptor.Decrypt(out))
	want := mlp.InferPlain(x)
	for i := 0; i < lin.Out; i++ {
		if d := math.Abs(got[i] - want[i]); d > 1e-4 {
			t.Fatalf("output %d: got %g want %g", i, got[i], want[i])
		}
	}
	if out.Level != ct.Level-1 {
		t.Fatalf("linear should consume exactly one level, got %d -> %d", ct.Level, out.Level)
	}
}

func TestRequiredRotationsAndLevels(t *testing.T) {
	lin := &Linear{In: 3, Out: 2, B: []float64{0, 0},
		W: [][]float64{{1, 0, 0}, {0, 0, 2}}}
	mlp := &MLP{Layers: []any{
		lin,
		&Activation{PAF: paf.MustNew(paf.FormF1G2), Scale: 1},
	}}
	rots := mlp.RequiredRotations(8)
	// Nonzero diagonals of W over 8 slots: d=0 (W[0][0]) and d=2 (W[1][3]?
	// no: W[1][(1+d)%8] nonzero at (1+d)=2 -> d=1).
	want := map[int]bool{1: true}
	for _, r := range rots {
		if !want[r] {
			t.Fatalf("unexpected rotation %d (all: %v)", r, rots)
		}
		delete(want, r)
	}
	if len(want) != 0 {
		t.Fatalf("missing rotations: %v", want)
	}
	// Levels: 1 (linear) + depth(5)+1+1 (activation) = 8.
	if got := mlp.LevelsRequired(); got != 8 {
		t.Fatalf("LevelsRequired = %d want 8", got)
	}
}

// TestEndToEndPrivateInference trains a small MLP with the SMART-PAF
// pipeline, converts it for encrypted inference, and verifies encrypted
// logits match the plaintext deployed model.
func TestEndToEndPrivateInference(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	dcfg := data.Tiny()
	dcfg.Channels = 1
	dcfg.Size = 6 // 36 inputs ≤ 128 slots
	dcfg.Train, dcfg.Val = 200, 80
	train, val := data.Generate(dcfg)
	m := nn.MLP([]int{36, 16, dcfg.Classes}, 5)
	smartpaf.Pretrain(m, train, 8, 32, 3e-3, 1)

	cfg := smartpaf.DefaultConfig(paf.FormF1G2)
	cfg.Epochs, cfg.MaxGroupsPerStep, cfg.ProfileBatches = 1, 1, 2
	pipe, err := smartpaf.NewPipeline(m, train, val, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Run(); err != nil {
		t.Fatal(err)
	}
	// Pipeline leaves the model in dynamic mode for further tuning; deploy.
	if err := m.Deploy(); err != nil {
		t.Fatal(err)
	}
	m.SetScaleMode(nn.ScaleStatic)

	mlp, err := FromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	levels := mlp.LevelsRequired()
	ctx, encryptor, decryptor := newHEContext(t, levels+1, mlp.RequiredRotations(128))

	// Encrypt one validation image and infer.
	x, label := val.Sample(0)
	vec := make([]float64, ctx.Params.Slots())
	copy(vec, x.Data)
	pt, err := ctx.Enc.EncodeReals(vec, ctx.Params.MaxLevel(), ctx.Params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct := encryptor.Encrypt(pt)
	out, err := ctx.Infer(mlp, ct)
	if err != nil {
		t.Fatal(err)
	}
	encLogits := ctx.Enc.DecodeReals(decryptor.Decrypt(out))[:dcfg.Classes]
	plainLogits := mlp.InferPlain(x.Data)[:dcfg.Classes]
	for i := range plainLogits {
		if d := math.Abs(encLogits[i] - plainLogits[i]); d > 1e-2*(1+math.Abs(plainLogits[i])) {
			t.Fatalf("logit %d: encrypted %g plaintext %g", i, encLogits[i], plainLogits[i])
		}
	}
	// The plaintext deployed model and the nn.Model must agree too.
	logitsNN := m.Forward(x, false)
	for i := range plainLogits {
		if d := math.Abs(plainLogits[i] - logitsNN.Data[i]); d > 1e-9 {
			t.Fatalf("henn/nn disagreement at logit %d: %g vs %g", i, plainLogits[i], logitsNN.Data[i])
		}
	}
	_ = label
}

func TestFromModelRejectsUndeployed(t *testing.T) {
	m := nn.MLP([]int{4, 3, 2}, 1)
	if _, err := FromModel(m); err == nil {
		t.Fatal("expected rejection of exact-operator model")
	}
	m.Slots()[0].ReplaceWithPAF(paf.MustNew(paf.FormF1G2))
	if _, err := FromModel(m); err == nil {
		t.Fatal("expected rejection of dynamically scaled model")
	}
}

func TestFromModelRejectsCNN(t *testing.T) {
	m := nn.CNN7(1, 4, 1, 8, 8, 1)
	for _, s := range m.Slots() {
		s.ReplaceWithPAF(paf.MustNew(paf.FormF1G2))
	}
	x := data.Batch{}
	_ = x
	// Give running maxes so Deploy works, then FromModel must still reject
	// the maxpool slots.
	tr, _ := data.Generate(data.Tiny())
	b := tr.Batches(8, nil)[0]
	m.Forward(b.X, true)
	if err := m.Deploy(); err != nil {
		t.Fatal(err)
	}
	if _, err := FromModel(m); err == nil {
		t.Fatal("expected rejection of CNN (maxpool slots)")
	}
}

// TestFromModelRejectsEmptyBias: a zero-length bias parameter must come
// back as an error, not a divide-by-zero panic in the weight-shape
// inference (regression: FromModel computed len(w)/len(b) unguarded).
func TestFromModelRejectsEmptyBias(t *testing.T) {
	dcfg := data.Tiny()
	dcfg.Size = 4 // 16 inputs
	dcfg.Train, dcfg.Val = 32, 8
	train, _ := data.Generate(dcfg)
	m := nn.MLP([]int{16, 8, dcfg.Classes}, 1)
	for _, s := range m.Slots() {
		s.ReplaceWithPAF(paf.MustNew(paf.FormF1G2))
	}
	// One training-mode forward pass gives the PAF layers the running
	// maxima Deploy freezes into static scales.
	m.Forward(train.Batches(8, nil)[0].X, true)
	if err := m.Deploy(); err != nil {
		t.Fatal(err)
	}
	m.SetScaleMode(nn.ScaleStatic)
	if _, err := FromModel(m); err != nil {
		t.Fatalf("intact model must convert: %v", err)
	}

	for _, p := range m.Params() {
		if p.Group == nn.GroupLinear && strings.HasSuffix(p.Name, ".b") {
			p.Data = nil
			break
		}
	}
	if _, err := FromModel(m); err == nil {
		t.Fatal("expected an error for an empty bias parameter")
	}
}
