package henn

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/efficientfhe/smartpaf/internal/ckks"
	"github.com/efficientfhe/smartpaf/internal/paf"
)

// batchTestMLP builds a small linear+activation MLP and a matching context.
func batchTestMLP(t testing.TB) (*Context, *MLP, *ckks.Encryptor, *ckks.Decryptor) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	lin := &Linear{In: 8, Out: 8, B: make([]float64, 8)}
	lin.W = make([][]float64, 8)
	for i := range lin.W {
		lin.W[i] = make([]float64, 8)
		for j := range lin.W[i] {
			lin.W[i][j] = rng.NormFloat64() * 0.3
		}
	}
	act := &Activation{PAF: paf.MustNew(paf.FormF1G2), Scale: 2}
	mlp := &MLP{Layers: []any{lin, act}}
	// ServingRotations: InferBatch takes the same path the scheduler does
	// (BSGS with hoisting when it needs fewer keys), so generate that set.
	ctx, encryptor, decryptor := newHEContext(t, mlp.LevelsRequired()+1, mlp.ServingRotations(128))
	return ctx, mlp, encryptor, decryptor
}

// TestInferBatchMatchesSerial checks that batch-parallel inference over one
// shared evaluator returns bit-identical ciphertexts to the serial loop,
// in input order, at every worker count.
func TestInferBatchMatchesSerial(t *testing.T) {
	ctx, mlp, encryptor, _ := batchTestMLP(t)
	rng := rand.New(rand.NewSource(11))

	const batch = 6
	cts := make([]*ckks.Ciphertext, batch)
	for i := range cts {
		vec := make([]float64, ctx.Params.Slots())
		for j := 0; j < 8; j++ {
			vec[j] = rng.Float64()*1.2 - 0.6
		}
		pt, err := ctx.Enc.EncodeReals(vec, ctx.Params.MaxLevel(), ctx.Params.DefaultScale())
		if err != nil {
			t.Fatal(err)
		}
		cts[i] = encryptor.Encrypt(pt)
	}

	want, err := ctx.InferBatch(mlp, cts, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16, -1} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got, err := ctx.InferBatch(mlp, cts, workers)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i].Level != want[i].Level || got[i].Scale != want[i].Scale ||
					!got[i].C0.Equal(want[i].C0) || !got[i].C1.Equal(want[i].C1) {
					t.Fatalf("batch item %d differs from serial result", i)
				}
			}
		})
	}
}

// TestInferBatchPropagatesError verifies the first failure aborts the batch.
func TestInferBatchPropagatesError(t *testing.T) {
	ctx, mlp, encryptor, _ := batchTestMLP(t)
	vec := make([]float64, ctx.Params.Slots())
	// Encode at level 0: no headroom for the linear layer's rescale.
	pt, err := ctx.Enc.EncodeReals(vec, 0, ctx.Params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	cts := []*ckks.Ciphertext{encryptor.Encrypt(pt), encryptor.Encrypt(pt)}
	if _, err := ctx.InferBatch(mlp, cts, 2); err == nil {
		t.Fatal("expected error from level-0 inputs, got nil")
	}
}
