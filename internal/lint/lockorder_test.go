package lint_test

import (
	"strings"
	"testing"

	"github.com/efficientfhe/smartpaf/internal/lint"
	"github.com/efficientfhe/smartpaf/internal/lint/linttest"
)

func TestLockorder(t *testing.T) {
	linttest.Run(t, lint.Lockorder, "lockorder")
}

// TestLockorderMalformedPins drives the lockorderbad fixture by hand:
// its diagnostics land on the directive comments' own lines, which a
// line comment cannot share with a want marker.
func TestLockorderMalformedPins(t *testing.T) {
	pkg, err := lint.LoadDir("testdata/src/lockorderbad", "test/lockorderbad")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.Lockorder})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3: %v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "malformed") {
			t.Errorf("diagnostic is not a malformed-pin report: %s", d)
		}
	}
}

// TestLockGraphDOT checks the -lockgraph emitter over the cycle fixture:
// every class and both directions of the seeded cycle must appear, and
// the pinned poolA < poolB edge must be drawn dashed.
func TestLockGraphDOT(t *testing.T) {
	pkg, err := lint.LoadDir("testdata/src/lockorder", "test/lockorder")
	if err != nil {
		t.Fatal(err)
	}
	dot := lint.LockGraphDOT([]*lint.Package{pkg})
	for _, snippet := range []string{
		"digraph lockorder {",
		`"lockorder.catalog.mu" -> "lockorder.stack.mu"`,
		`"lockorder.stack.mu" -> "lockorder.catalog.mu"`,
		`"lockorder.poolA.mu" -> "lockorder.poolB.mu"`,
		"style=dashed",
	} {
		if !strings.Contains(dot, snippet) {
			t.Errorf("DOT output missing %q:\n%s", snippet, dot)
		}
	}
	if strings.Contains(dot, `"lockorder.seqA.mu" -> "lockorder.seqB.mu"`) {
		t.Errorf("sequential locks must not produce an edge:\n%s", dot)
	}
}
