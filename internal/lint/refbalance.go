package lint

import (
	"go/ast"
	"go/types"
)

// Refbalance checks that every registry reference taken with
// (*registry.Deployed).Retain is dropped with a matching
// (*registry.Deployed).Release on every path. An unbalanced Retain keeps
// a retired or superseded model version from ever draining — its warmed
// caches stay resident forever and the rollout machinery reports the
// version as still serving.
//
// Unlike polypool, the tracked resource is the *receiver* of the acquire
// call (Retain returns nothing): the engine keys on the receiver path
// (e.g. sess.dep), so a Release on the same receiver along the path —
// including one deferred inside a closure the function hands to a worker
// pool — balances it. A function that intentionally returns with the
// reference held (transferring the obligation to its caller) must be
// annotated //hennlint:transfers-ownership.
var Refbalance = &Analyzer{
	Name: "refbalance",
	Doc:  "registry Deployed.Retain must be balanced by Release on every path",
	Run:  runRefbalance,
}

func runRefbalance(p *Pass) error {
	spec := &pairSpec{
		annotation: "transfers-ownership",
		resultType: func(t types.Type) bool { return namedTypeName(t) == "Deployed" },
		acquireRecv: func(p *Pass, call *ast.CallExpr) (ast.Expr, string, bool) {
			recv, ok := methodCall(p.Info, call, "Deployed", "Retain")
			if !ok {
				return nil, "", false
			}
			return recv, "model reference", true
		},
		release: func(p *Pass, call *ast.CallExpr) (ast.Expr, bool) {
			recv, ok := methodCall(p.Info, call, "Deployed", "Release")
			if !ok {
				return nil, false
			}
			return recv, true
		},
	}
	runPairing(p, spec)
	return nil
}
