// Package lint implements hennlint, a suite of custom static analyzers
// that mechanically enforce the correctness contracts of this serving
// stack which the compiler cannot see:
//
//   - polypool: every pooled polynomial or scratch buffer drawn from an
//     internal/ring pool (GetPoly, GetPolyRaw, GetScratch) or hoisted
//     decomposition must be returned (PutPoly, PutScratch, Release) on
//     every path, or explicitly handed to the caller via a
//     //hennlint:transfers-ownership annotation.
//   - refbalance: registry Deployed.Retain must be balanced by a
//     Deployed.Release on every path, so retired models actually drain.
//   - cryptorand: math/rand must not leak into the crypto packages
//     (internal/ckks, internal/ring) outside tests, unless a file
//     carries a //hennlint:deterministic-sampling annotation explaining
//     why deterministic sampling is intended.
//   - ctcompare: secrets and tokens must be compared in constant time
//     (crypto/subtle), never with == or bytes.Equal.
//   - wiremagic: every UnmarshalBinary must check a magic constant and
//     bound every length it reads from the wire before allocating.
//   - lockguard: struct fields annotated `// guarded by mu` (or
//     //hennlint:guarded-by(mu)) may only be read or written while that
//     mutex is held, tracked flow-sensitively through Lock/Unlock/RLock/
//     RUnlock and deferred unlocks; writes need the exclusive lock.
//   - secretflow: secret material (ckks.SecretKey, key generators,
//     samplers, crypto seeds) must never reach a serialization, logging
//     or network sink, unless the sink is audited with
//     //hennlint:secret-sink-ok.
//   - levelbudget: the per-layer CKKS level consumption of the henn
//     Apply* implementations must match what LevelsRequired budgets, and
//     no caller may size or gate with LevelsRequired() ± k arithmetic —
//     the budget is exact by construction.
//   - lockorder: whole-program deadlock detection — every
//     acquires-while-holding pair (computed transitively over the shared
//     call graph) feeds a global lock-order graph which must stay
//     acyclic; //hennlint:lock-order(a<b) pins the canonical order and
//     //hennlint:lock-order-ok audits a deliberate site away.
//   - obsdiscipline: telemetry discipline — StageStart/StageEnd marks
//     and trace spans must pair on every path, unbounded values
//     (request paths, trace ids, user input) must not become metric
//     label values, and functions annotated //hennlint:read-path
//     (scrape/stats handlers) must never reach the series-creating
//     With, only Find.
//   - errsink: wire-decode and I/O errors must not be discarded — an
//     ignored error from binary.Read/Write, an (Un)MarshalBinary-family
//     method, or any helper that transitively performs wire I/O
//     (readU32 and friends) is a finding unless audited with
//     //hennlint:err-ok.
//
// The suite runs as `make lint` (via cmd/hennlint) and is enforced in CI.
// It is built directly on go/ast and go/types — the module vendors no
// dependencies, so the go/analysis framework is intentionally not used;
// lint.Analyzer mirrors its shape closely enough that porting later is
// mechanical.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Run sees one package at a time;
// RunProgram (either may be nil, at least one must be set) sees every
// analyzed package at once through the shared call-graph engine
// (callgraph.go) — the whole-program analyzers (lockorder, errsink,
// obsdiscipline's read-path check) live there.
type Analyzer struct {
	Name       string
	Doc        string
	Run        func(*Pass) error
	RunProgram func(*ProgramPass) error
}

// All returns the full hennlint suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Polypool, Refbalance, Cryptorand, Ctcompare, Wiremagic, Lockguard, Secretflow, Levelbudget, Lockorder, Obsdiscipline, Errsink}
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Path     string // import path (or test-harness package name)
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// ProgramPass carries one analyzer's whole-program view: every analyzed
// package plus the shared call graph.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies the analyzers to every package and returns the combined
// diagnostics sorted by position. Per-package Run hooks see each package
// in turn; RunProgram hooks run once over the shared call graph of the
// whole package set.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Path:     pkg.Path,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report:   report,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	var prog *Program
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		if prog == nil {
			prog = NewProgram(pkgs)
		}
		pp := &ProgramPass{Analyzer: a, Prog: prog, report: report}
		if err := a.RunProgram(pp); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// directivePrefix introduces hennlint annotations. Annotations are
// directive comments (no space after //, invisible to go doc), e.g.
// //hennlint:transfers-ownership — optionally followed by a rationale on
// the same line.
const directivePrefix = "//hennlint:"

// hasDirective reports whether the comment group carries the named
// hennlint annotation.
func hasDirective(cg *ast.CommentGroup, name string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		rest, ok := strings.CutPrefix(c.Text, directivePrefix)
		if !ok {
			continue
		}
		if rest == name || strings.HasPrefix(rest, name+" ") {
			return true
		}
	}
	return false
}

// directiveArg extracts the parenthesized argument of an annotation of
// the form //hennlint:name(arg), e.g. //hennlint:guarded-by(mu). It
// returns ok=false when the comment group carries no such annotation.
func directiveArg(cg *ast.CommentGroup, name string) (arg string, ok bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		rest, found := strings.CutPrefix(c.Text, directivePrefix)
		if !found || !strings.HasPrefix(rest, name+"(") {
			continue
		}
		rest = rest[len(name)+1:]
		if i := strings.IndexByte(rest, ')'); i >= 0 {
			return strings.TrimSpace(rest[:i]), true
		}
	}
	return "", false
}

// fileHasDirective reports whether any comment in the file carries the
// named annotation. File-level annotations (cryptorand's
// deterministic-sampling) may sit anywhere in the file, conventionally
// next to the import they justify.
func fileHasDirective(f *ast.File, name string) bool {
	for _, cg := range f.Comments {
		if hasDirective(cg, name) {
			return true
		}
	}
	return false
}

// directiveLines returns the lines carrying the named directive in f,
// plus the line directly below each — the audited-escape convention: the
// directive suppresses a finding on its own line or, as a standalone
// comment, on the line it annotates below it.
func directiveLines(fset *token.FileSet, f *ast.File, name string) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			if rest == name || strings.HasPrefix(rest, name+" ") {
				line := fset.Position(c.Pos()).Line
				lines[line] = true
				lines[line+1] = true
			}
		}
	}
	return lines
}

// calleeFunc resolves the *types.Func a call invokes, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// methodCall matches a call of the form expr.method(...) where the
// method's receiver is the named type typeName (possibly behind a
// pointer), in any package — matching by type name keeps analyzer test
// fixtures self-contained. It returns the receiver expression.
func methodCall(info *types.Info, call *ast.CallExpr, typeName, method string) (recv ast.Expr, ok bool) {
	sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOK || sel.Sel.Name != method {
		return nil, false
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil, false
	}
	sig, sigOK := fn.Type().(*types.Signature)
	if !sigOK || sig.Recv() == nil {
		return nil, false
	}
	if namedTypeName(sig.Recv().Type()) != typeName {
		return nil, false
	}
	return sel.X, true
}

// namedTypeName returns the name of t's named type, looking through
// pointers; "" if t is not named.
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// exprKey returns a stable key identifying the resource an expression
// names: the defining object for plain identifiers (robust under
// shadowing), the printed selector path otherwise ("sess.dep").
func exprKey(info *types.Info, e ast.Expr) string {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.ObjectOf(id); obj != nil {
			return fmt.Sprintf("obj:%p", obj)
		}
		return "name:" + id.Name
	}
	return "expr:" + types.ExprString(e)
}
