package lint

import (
	"path"
	"strconv"
	"strings"
)

// Cryptorand forbids math/rand (and math/rand/v2) imports in the
// non-test files of the crypto packages — any package whose import path
// ends in "ckks" or "ring". Sampling secrets from a seedable,
// non-cryptographic generator is the kind of mistake that survives every
// functional test; where it is intentional (this repository trades
// crypto/rand for reproducible experiments), the importing file must
// carry a //hennlint:deterministic-sampling annotation whose trailing
// text documents the rationale.
var Cryptorand = &Analyzer{
	Name: "cryptorand",
	Doc:  "math/rand must not leak into internal/ckks or internal/ring without a deterministic-sampling annotation",
	Run:  runCryptorand,
}

const deterministicSampling = "deterministic-sampling"

func runCryptorand(p *Pass) error {
	switch path.Base(p.Path) {
	case "ckks", "ring":
	default:
		return nil
	}
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, imp := range f.Imports {
			ipath, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if ipath != "math/rand" && ipath != "math/rand/v2" {
				continue
			}
			if fileHasDirective(f, deterministicSampling) {
				continue
			}
			p.Reportf(imp.Pos(), "%s imported in a crypto package; use crypto/rand, or annotate this file with %s%s <why deterministic sampling is sound here>",
				ipath, directivePrefix, deterministicSampling)
		}
	}
	return nil
}
