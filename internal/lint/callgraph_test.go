package lint_test

import (
	"go/types"
	"sort"
	"testing"

	"github.com/efficientfhe/smartpaf/internal/lint"
)

// loadCallgraph builds the Program over the callgraph fixture.
func loadCallgraph(t *testing.T) *lint.Program {
	t.Helper()
	pkg, err := lint.LoadDir("testdata/src/callgraph", "test/callgraph")
	if err != nil {
		t.Fatal(err)
	}
	return lint.NewProgram([]*lint.Package{pkg})
}

// nodeByName finds the fixture function with the given name.
func nodeByName(t *testing.T, prog *lint.Program, name string) *lint.FuncNode {
	t.Helper()
	for _, n := range prog.Funcs() {
		if n.Fn.Name() == name {
			return n
		}
	}
	t.Fatalf("no node named %s", name)
	return nil
}

// calleeNames flattens a node's resolved call targets.
func calleeNames(n *lint.FuncNode) []string {
	var out []string
	for _, site := range n.Calls {
		for _, fn := range site.Callees {
			out = append(out, fn.Name())
		}
	}
	sort.Strings(out)
	return out
}

func TestCallgraphDirectAndRecursive(t *testing.T) {
	prog := loadCallgraph(t)
	if got := calleeNames(nodeByName(t, prog, "direct")); len(got) != 1 || got[0] != "leaf" {
		t.Errorf("direct callees = %v, want [leaf]", got)
	}
	if got := calleeNames(nodeByName(t, prog, "fact")); len(got) != 1 || got[0] != "fact" {
		t.Errorf("fact callees = %v, want the self edge [fact]", got)
	}
	if got := calleeNames(nodeByName(t, prog, "mutualA")); len(got) != 1 || got[0] != "mutualB" {
		t.Errorf("mutualA callees = %v, want [mutualB]", got)
	}
}

func TestCallgraphSiteContexts(t *testing.T) {
	prog := loadCallgraph(t)
	n := nodeByName(t, prog, "contexts")
	flags := map[string]*lint.CallSite{}
	for _, site := range n.Calls {
		for _, fn := range site.Callees {
			flags[fn.Name()] = site
		}
	}
	for name, want := range map[string]struct{ goCtx, deferCtx, closure bool }{
		"leaf":   {false, false, false},
		"stop":   {false, true, false},
		"run":    {true, false, false},
		"direct": {false, false, false}, // invoked literal splices inline
		"fact":   {false, false, true},  // stored literal
	} {
		site, ok := flags[name]
		if !ok {
			t.Errorf("no call site for %s", name)
			continue
		}
		if site.Go != want.goCtx || site.Defer != want.deferCtx || site.InClosure != want.closure {
			t.Errorf("%s: go=%v defer=%v closure=%v, want go=%v defer=%v closure=%v",
				name, site.Go, site.Defer, site.InClosure, want.goCtx, want.deferCtx, want.closure)
		}
	}
}

func TestCallgraphRefs(t *testing.T) {
	prog := loadCallgraph(t)
	n := nodeByName(t, prog, "references")
	var refs []string
	for _, r := range n.Refs {
		refs = append(refs, r.Fn.Name())
	}
	sort.Strings(refs)
	if len(refs) != 2 || refs[0] != "leaf" || refs[1] != "run" {
		t.Errorf("references refs = %v, want [leaf run]", refs)
	}
	if len(n.Calls) != 0 {
		t.Errorf("references has %d call sites, want 0", len(n.Calls))
	}
}

func TestCallgraphInterfaceDispatch(t *testing.T) {
	prog := loadCallgraph(t)
	n := nodeByName(t, prog, "dispatch")
	var callees []string
	recvs := map[string]bool{}
	for _, site := range n.Calls {
		for _, fn := range site.Callees {
			callees = append(callees, fn.Name())
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				recvs[types.TypeString(sig.Recv().Type(), func(*types.Package) string { return "" })] = true
			}
		}
	}
	if len(callees) != 2 {
		t.Fatalf("dispatch resolves to %v, want the two closer implementations", callees)
	}
	if !recvs["fileConn"] || !recvs["*netConn"] {
		t.Errorf("dispatch receivers = %v, want fileConn and *netConn", recvs)
	}
	for r := range recvs {
		if r == "notAcloser" {
			t.Errorf("notAcloser does not implement closer but was resolved")
		}
	}
}

// TestCallgraphFixpoint checks convergence over recursion: a transitive
// may-call summary must reach a fixed point and include the recursive
// closure of callees.
func TestCallgraphFixpoint(t *testing.T) {
	prog := loadCallgraph(t)
	may := map[*types.Func]map[string]bool{}
	prog.Fixpoint(func(n *lint.FuncNode) bool {
		sum := may[n.Fn]
		if sum == nil {
			sum = map[string]bool{}
			may[n.Fn] = sum
		}
		changed := false
		for _, site := range n.Calls {
			for _, callee := range site.Callees {
				if !sum[callee.Name()] {
					sum[callee.Name()] = true
					changed = true
				}
				for name := range may[callee] {
					if !sum[name] {
						sum[name] = true
						changed = true
					}
				}
			}
		}
		return changed
	})
	a := may[nodeByName(t, prog, "mutualA").Fn]
	if !a["mutualA"] || !a["mutualB"] {
		t.Errorf("mutualA transitive callees = %v, want itself and mutualB", a)
	}
}
