package lint

import (
	"go/ast"
	"go/types"
	"path"
	"strings"
)

// Secretflow is a taint analysis that proves key material never leaves
// the process. Sources are values of the secret-bearing types —
// SecretKey, KeyGenerator, Sampler (matched by type name, like the rest
// of the suite, so fixtures stay self-contained) — plus integer
// variables with seed-like names inside the crypto packages (ckks,
// ring), where a seed fully determines the secret key. Taint propagates
// through selections, indexing, dereference, composite literals,
// conversions, arithmetic (seed mixing) and local assignment chains; it
// deliberately stops at ordinary call boundaries, so a Decryptor's
// *output* — which callers legitimately print — is not tainted by the
// secret key the Decryptor holds.
//
// Sinks are the ways bytes leave the process or land somewhere
// inspectable: fmt/log/slog formatting, MarshalBinary-family methods,
// encoding/json//gob/binary serialization, writes to an
// http.ResponseWriter, telemetry span attributes (Span.SetAttr,
// Trace.AddSpan — traces are served back at /v1/traces) and metric
// label values (CounterVec/HistogramVec With and Find — labels are
// rendered at /metrics). A sink call reached by a tainted value is
// reported unless the line (or the line above it) carries
// //hennlint:secret-sink-ok, the audited escape hatch.
var Secretflow = &Analyzer{
	Name: "secretflow",
	Doc:  "secret key material must never reach serialization, logging or network sinks",
	Run:  runSecretflow,
}

// secretTypeNames are the named types whose values are secret material
// wherever they appear.
var secretTypeNames = map[string]bool{
	"SecretKey":    true,
	"KeyGenerator": true,
	"Sampler":      true,
}

// marshalSinkMethods serialize their receiver.
var marshalSinkMethods = map[string]bool{
	"MarshalBinary": true,
	"MarshalText":   true,
	"MarshalJSON":   true,
	"AppendBinary":  true,
	"GobEncode":     true,
}

func runSecretflow(p *Pass) error {
	seedScoped := false
	switch path.Base(p.Path) {
	case "ckks", "ring":
		seedScoped = true
	}
	for _, f := range p.Files {
		okLines := secretOKLines(p, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || hasDirective(fd.Doc, "secret-sink-ok") {
				continue
			}
			s := &secretflowPass{p: p, seedScoped: seedScoped, okLines: okLines, tainted: map[types.Object]bool{}}
			s.propagate(fd.Body)
			s.checkSinks(fd.Body)
		}
	}
	return nil
}

// secretOKLines collects the lines whose sink reports the file audits
// away: the directive suppresses a sink on its own line or on the line
// directly below (the conventional spot for a standalone directive).
func secretOKLines(p *Pass, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			if rest == "secret-sink-ok" || strings.HasPrefix(rest, "secret-sink-ok ") {
				line := p.Fset.Position(c.Pos()).Line
				lines[line] = true
				lines[line+1] = true
			}
		}
	}
	return lines
}

type secretflowPass struct {
	p          *Pass
	seedScoped bool
	okLines    map[int]bool
	tainted    map[types.Object]bool
}

// propagate runs local assignments to a fixpoint so taint follows
// chains like sk := kg.GenSecretKey(); q := sk.Q; raw := q.Coeffs.
// Closure bodies are included: captured secrets stay secret.
func (s *secretflowPass) propagate(body *ast.BlockStmt) {
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						grew = s.bind(n.Lhs[i], n.Rhs[i]) || grew
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						grew = s.bind(n.Names[i], n.Values[i]) || grew
					}
				}
			case *ast.RangeStmt:
				// for _, v := range tainted: the element is tainted.
				if n.Value != nil && s.taintedExpr(n.X) {
					grew = s.markIdent(n.Value) || grew
				}
				if n.Key != nil && s.taintedExpr(n.X) {
					grew = s.markIdent(n.Key) || grew
				}
			}
			return true
		})
		if !grew {
			return
		}
	}
}

func (s *secretflowPass) bind(lhs, rhs ast.Expr) bool {
	if !s.taintedExpr(rhs) {
		return false
	}
	return s.markIdent(lhs)
}

func (s *secretflowPass) markIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := s.p.Info.ObjectOf(id)
	if obj == nil || s.tainted[obj] {
		return false
	}
	s.tainted[obj] = true
	return true
}

// taintedExpr reports whether e carries secret material.
func (s *secretflowPass) taintedExpr(e ast.Expr) bool {
	e = ast.Unparen(e)
	if e == nil {
		return false
	}
	if secretType(s.p.Info.TypeOf(e)) {
		return true
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := s.p.Info.ObjectOf(e); obj != nil {
			if s.tainted[obj] {
				return true
			}
			if s.seedScoped {
				if v, ok := obj.(*types.Var); ok && seedName(e.Name) && isIntegerVar(v) {
					return true
				}
			}
		}
	case *ast.SelectorExpr:
		return s.taintedExpr(e.X)
	case *ast.IndexExpr:
		return s.taintedExpr(e.X)
	case *ast.SliceExpr:
		return s.taintedExpr(e.X)
	case *ast.StarExpr:
		return s.taintedExpr(e.X)
	case *ast.UnaryExpr:
		return s.taintedExpr(e.X)
	case *ast.BinaryExpr:
		// Seed mixing (seed ^ salt) stays tainted on either side.
		return s.taintedExpr(e.X) || s.taintedExpr(e.Y)
	case *ast.TypeAssertExpr:
		return s.taintedExpr(e.X)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if s.taintedExpr(elt) {
				return true
			}
		}
	case *ast.CallExpr:
		// Conversions propagate ([]byte(raw)); ordinary calls cut the
		// flow — a function's result is a fresh value (decryption
		// outputs are public by design).
		if tv, ok := s.p.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return s.taintedExpr(e.Args[0])
		}
	}
	return false
}

// secretType reports whether t is (or wraps, through pointers, slices,
// arrays and maps) one of the secret-bearing named types.
func secretType(t types.Type) bool {
	for i := 0; i < 8 && t != nil; i++ {
		if secretTypeNames[namedTypeName(t)] {
			return true
		}
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Named:
			t = u.Underlying()
		default:
			return false
		}
	}
	return false
}

func seedName(name string) bool {
	return name == "seed" || strings.HasSuffix(name, "Seed") || strings.HasSuffix(name, "seed")
}

func isIntegerVar(v *types.Var) bool {
	b, ok := v.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// checkSinks walks every call in the function and reports tainted
// values reaching a sink.
func (s *secretflowPass) checkSinks(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		s.checkSinkCall(call)
		return true
	})
}

func (s *secretflowPass) checkSinkCall(call *ast.CallExpr) {
	fn := calleeFunc(s.p.Info, call)
	if fn == nil {
		return
	}
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)

	switch pkgPath {
	case "fmt", "log", "log/slog":
		// Every formatting/printing argument is a sink; %p-style
		// laundering is still a leak of pointer identity, so no verb
		// analysis — any tainted argument reports.
		for _, arg := range call.Args {
			s.reportIfTainted(call, arg, pkgPath+"."+fn.Name())
		}
		return
	case "encoding/json", "encoding/gob", "encoding/binary", "encoding/base64", "encoding/hex":
		for _, arg := range call.Args {
			s.reportIfTainted(call, arg, pkgPath+"."+fn.Name())
		}
		return
	}

	if sig != nil && sig.Recv() != nil {
		selExpr, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		// sk.MarshalBinary() and friends serialize their receiver.
		if marshalSinkMethods[fn.Name()] && s.taintedExpr(selExpr.X) {
			s.report(call, types.ExprString(selExpr.X), fn.Name())
			return
		}
		// enc.Encode(sk) on a gob/json encoder.
		if fn.Name() == "Encode" && namedTypeName(sig.Recv().Type()) == "Encoder" {
			for _, arg := range call.Args {
				s.reportIfTainted(call, arg, "Encoder.Encode")
			}
			return
		}
		// w.Write(raw) / io.WriteString-style writes on a network
		// response writer.
		if (fn.Name() == "Write" || fn.Name() == "WriteString") && namedTypeName(sig.Recv().Type()) == "ResponseWriter" {
			for _, arg := range call.Args {
				s.reportIfTainted(call, arg, "ResponseWriter."+fn.Name())
			}
			return
		}
		// Telemetry attributes land in trace snapshots served at
		// /v1/traces, and metric label values render at /metrics — both
		// inspectable over the network.
		recv := namedTypeName(sig.Recv().Type())
		spanSink := (fn.Name() == "SetAttr" && recv == "Span") ||
			(fn.Name() == "AddSpan" && recv == "Trace")
		labelSink := (fn.Name() == "With" || fn.Name() == "Find") &&
			(recv == "CounterVec" || recv == "HistogramVec")
		if spanSink || labelSink {
			for _, arg := range call.Args {
				s.reportIfTainted(call, arg, recv+"."+fn.Name())
			}
			return
		}
	}
}

func (s *secretflowPass) reportIfTainted(call *ast.CallExpr, arg ast.Expr, sink string) {
	if s.taintedExpr(arg) {
		s.report(call, types.ExprString(arg), sink)
	}
}

func (s *secretflowPass) report(call *ast.CallExpr, what, sink string) {
	if s.okLines[s.p.Fset.Position(call.Pos()).Line] {
		return
	}
	s.p.Reportf(call.Pos(), "secret material %s reaches sink %s; key material must never leave the process (audit with %ssecret-sink-ok if intended)",
		what, sink, directivePrefix)
}
