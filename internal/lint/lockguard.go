package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// Lockguard enforces the repo's mutex discipline: a struct field
// annotated with `// guarded by mu` or //hennlint:guarded-by(mu) may
// only be read while mu is held (shared or exclusive) and only written
// while mu is held exclusively. The guard is a sibling mutex field by
// default; //hennlint:guarded-by(Type.mu) names an external guard — the
// mutex field mu of some other struct Type (the scheduler's lock guards
// per-session turn state, the Registry's lock guards family state).
//
// Lock state is tracked flow-sensitively per function, in the style of
// the pairing engine: Lock/RLock add the mutex to the held set
// (exclusive/shared), Unlock/RUnlock remove it, a deferred unlock keeps
// it held through every return, and control-flow joins widen
// disagreeing states to "maybe held", which is deliberately not
// reported — the analyzer under-approximates so it stays silent on
// correct code and only reports provable violations. Function literals
// are analyzed as separate scopes: locks held where a closure is
// created demote to "maybe" inside it (the closure may run later,
// under or outside the lock).
//
// //hennlint:holds(mu) (or holds(Type.mu), comma-separated) on a
// function documents and assumes a lock the caller must already hold —
// the convention for *Locked helper methods. The analyzer also flags a
// function that provably returns while still holding a lock it
// acquired with no deferred unlock, the early-return-while-locked bug.
var Lockguard = &Analyzer{
	Name: "lockguard",
	Doc:  "annotated mutex-guarded fields must only be accessed with their lock held",
	Run:  runLockguard,
}

// guardRef names a mutex: the field `field` of the enclosing struct
// (typeName == ""), or of any value of the named struct type.
type guardRef struct {
	typeName string
	field    string
}

func (g guardRef) String() string {
	if g.typeName == "" {
		return g.field
	}
	return g.typeName + "." + g.field
}

// mutexTypeNames are the receiver type names that carry Lock/Unlock
// methods with locking semantics. Matching by name keeps fixtures
// self-contained, mirroring methodCall.
func isMutexTypeName(name string) bool {
	return name == "Mutex" || name == "RWMutex"
}

type lockMode int8

const (
	lockExcl lockMode = iota
	lockShared
	lockMaybe // held on some paths only, or demoted at a closure boundary
)

// heldLock is one mutex in the held set.
type heldLock struct {
	mode     lockMode
	deferred bool   // an unlock is deferred; held through every return
	annot    bool   // assumed via //hennlint:holds, not acquired here
	typeName string // named type of the mutex's owner ("" if none)
	field    string // mutex field or variable name
	name     string // display form of the lock expression, for messages
	pos      token.Pos
}

// lockFlow maps lock keys (exprKey of the owner + field name) to state.
type lockFlow map[string]*heldLock

func (st lockFlow) clone() lockFlow {
	out := make(lockFlow, len(st))
	for k, v := range st {
		c := *v
		out[k] = &c
	}
	return out
}

// merge joins two branch states in place into st. A lock held on only
// one arm, or with different modes, widens to maybe — definitely-held
// and definitely-unheld are the only states the checks act on.
func (st lockFlow) merge(other lockFlow) {
	for k, h := range st {
		o, ok := other[k]
		if !ok {
			h.mode = lockMaybe
			continue
		}
		if o.mode != h.mode {
			h.mode = lockMaybe
		}
		h.deferred = h.deferred || o.deferred
	}
	for k, o := range other {
		if _, ok := st[k]; !ok {
			c := *o
			c.mode = lockMaybe
			st[k] = &c
		}
	}
}

func replaceLocks(dst, src lockFlow) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// demote returns a copy of st with every lock widened to maybe: the
// state handed to a closure body, which may run under the lock (a
// locked-region helper) or long after it was released (a pool task).
func (st lockFlow) demote() lockFlow {
	out := st.clone()
	for _, h := range out {
		h.mode = lockMaybe
	}
	return out
}

func runLockguard(p *Pass) error {
	g := &lockguardPass{
		p:        p,
		guarded:  map[*types.Var]guardRef{},
		reported: map[string]bool{},
	}
	g.collectGuardedFields()
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				g.analyzeFunc(d)
			case *ast.GenDecl:
				// Package-level function literals (var hooks).
				ast.Inspect(d, func(n ast.Node) bool {
					if fl, ok := n.(*ast.FuncLit); ok {
						g.analyzeBody(fl.Body, lockFlow{})
						return false
					}
					return true
				})
			}
		}
	}
	return nil
}

type lockguardPass struct {
	p       *Pass
	guarded map[*types.Var]guardRef
	// reported dedups diagnostics per file:line:field so one statement
	// touching a field on both sides of `=` reports once.
	reported map[string]bool
}

// collectGuardedFields scans every struct declaration for guarded-field
// annotations, in either form, and validates that the named guard
// resolves to a mutex.
func (g *lockguardPass) collectGuardedFields() {
	for _, f := range g.p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				ref, ok := g.fieldGuard(field)
				if !ok {
					continue
				}
				if !g.validateGuard(st, ref, field.Pos()) {
					continue
				}
				for _, name := range field.Names {
					if v, ok := g.p.Info.Defs[name].(*types.Var); ok {
						g.guarded[v] = ref
					}
				}
			}
			return true
		})
	}
}

// fieldGuard extracts a guard annotation from a struct field's doc or
// trailing comment: //hennlint:guarded-by(ref) or a comment containing
// the phrase "guarded by ref".
func (g *lockguardPass) fieldGuard(field *ast.Field) (guardRef, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if arg, ok := directiveArg(cg, "guarded-by"); ok {
			ref, err := parseGuardRef(arg)
			if err != "" {
				g.p.Reportf(field.Pos(), "malformed guarded-by annotation %q: %s", arg, err)
				continue
			}
			return ref, true
		}
		for _, c := range cg.List {
			text := c.Text
			i := strings.Index(text, "guarded by ")
			if i < 0 {
				continue
			}
			word := text[i+len("guarded by "):]
			if j := strings.IndexAny(word, " \t,;"); j >= 0 {
				word = word[:j]
			}
			word = strings.TrimRight(word, ".")
			ref, err := parseGuardRef(word)
			if err != "" {
				g.p.Reportf(field.Pos(), "malformed `guarded by` comment: %q %s (write `guarded by mu` or `guarded by Type.mu`)", word, err)
				continue
			}
			return ref, true
		}
	}
	return guardRef{}, false
}

// parseGuardRef parses "mu" or "Type.mu"; err is "" on success.
func parseGuardRef(s string) (guardRef, string) {
	parts := strings.Split(s, ".")
	switch {
	case len(parts) == 1 && validGoIdent(parts[0]):
		return guardRef{field: parts[0]}, ""
	case len(parts) == 2 && validGoIdent(parts[0]) && validGoIdent(parts[1]):
		return guardRef{typeName: parts[0], field: parts[1]}, ""
	}
	return guardRef{}, "is not an identifier or Type.field pair"
}

func validGoIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// validateGuard checks that the referenced guard exists and is a mutex:
// a sibling field of the annotated struct, or a field of the named
// same-package type.
func (g *lockguardPass) validateGuard(st *ast.StructType, ref guardRef, pos token.Pos) bool {
	if ref.typeName == "" {
		for _, f := range st.Fields.List {
			for _, name := range f.Names {
				if name.Name != ref.field {
					continue
				}
				if v, ok := g.p.Info.Defs[name].(*types.Var); ok && isMutexTypeName(namedTypeName(v.Type())) {
					return true
				}
				g.p.Reportf(pos, "guard %s is not a sync.Mutex or sync.RWMutex field", ref)
				return false
			}
		}
		g.p.Reportf(pos, "guard %s does not name a sibling field of this struct", ref)
		return false
	}
	obj := g.p.Pkg.Scope().Lookup(ref.typeName)
	if obj == nil {
		g.p.Reportf(pos, "guard %s: type %s is not declared in this package", ref, ref.typeName)
		return false
	}
	strct, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		g.p.Reportf(pos, "guard %s: %s is not a struct type", ref, ref.typeName)
		return false
	}
	for i := 0; i < strct.NumFields(); i++ {
		f := strct.Field(i)
		if f.Name() == ref.field {
			if isMutexTypeName(namedTypeName(f.Type())) {
				return true
			}
			g.p.Reportf(pos, "guard %s is not a sync.Mutex or sync.RWMutex field", ref)
			return false
		}
	}
	g.p.Reportf(pos, "guard %s: %s has no field %s", ref, ref.typeName, ref.field)
	return false
}

// analyzeFunc analyzes one declared function, seeding the held set from
// any //hennlint:holds annotation.
func (g *lockguardPass) analyzeFunc(fd *ast.FuncDecl) {
	st := lockFlow{}
	if arg, ok := directiveArg(fd.Doc, "holds"); ok {
		for _, part := range strings.Split(arg, ",") {
			ref, err := parseGuardRef(strings.TrimSpace(part))
			if err != "" {
				g.p.Reportf(fd.Pos(), "malformed holds annotation %q: %s", part, err)
				continue
			}
			g.assumeHeld(fd, ref, st)
		}
	}
	g.analyzeBody(fd.Body, st)
}

// assumeHeld seeds st with an annotation-asserted lock. A sibling-form
// ref binds to the receiver; Type.field form matches any owner of that
// type, so it also works for free functions (scheduler's eligible).
func (g *lockguardPass) assumeHeld(fd *ast.FuncDecl, ref guardRef, st lockFlow) {
	h := &heldLock{mode: lockExcl, annot: true, field: ref.field, name: ref.String(), pos: fd.Pos()}
	if ref.typeName != "" {
		h.typeName = ref.typeName
		st["annot:"+ref.String()] = h
		return
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		g.p.Reportf(fd.Pos(), "holds(%s) needs a named receiver; use holds(Type.%s) on a function", ref, ref.field)
		return
	}
	recv := fd.Recv.List[0].Names[0]
	h.typeName = namedTypeName(g.p.Info.TypeOf(recv))
	h.name = recv.Name + "." + ref.field
	st[exprKey(g.p.Info, recv)+"."+ref.field] = h
}

func (g *lockguardPass) analyzeBody(body *ast.BlockStmt, st lockFlow) {
	terminated := g.walkStmts(body.List, st)
	if !terminated {
		g.checkReturn(st, body.End())
	}
}

func (g *lockguardPass) walkStmts(stmts []ast.Stmt, st lockFlow) bool {
	for _, s := range stmts {
		if g.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (g *lockguardPass) walkStmt(s ast.Stmt, st lockFlow) (terminated bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return g.walkStmts(s.List, st)

	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			g.scanRead(r, st)
		}
		for _, l := range s.Lhs {
			g.handleWrite(l, st)
		}

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						g.scanRead(v, st)
					}
				}
			}
		}

	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if isPanicCall(g.p.Info, call) {
				for _, arg := range call.Args {
					g.scanRead(arg, st)
				}
				return true // panicking while holding a lock is not a leak
			}
			g.handleCall(call, st)
			return false
		}
		g.scanRead(s.X, st)

	case *ast.DeferStmt:
		g.handleDefer(s.Call, st)

	case *ast.GoStmt:
		// The call runs later on another goroutine: evaluate the
		// arguments now, analyze a literal body as a detached scope.
		for _, arg := range s.Call.Args {
			g.scanRead(arg, st)
		}
		g.scanRead(s.Call.Fun, st)

	case *ast.SendStmt:
		g.scanRead(s.Chan, st)
		g.scanRead(s.Value, st)

	case *ast.IncDecStmt:
		g.handleWrite(s.X, st)

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			g.scanRead(r, st)
		}
		g.checkReturn(st, s.Pos())
		return true

	case *ast.BranchStmt:
		// break/continue/goto: leave this path conservatively.
		return true

	case *ast.IfStmt:
		if s.Init != nil {
			g.walkStmt(s.Init, st)
		}
		g.scanRead(s.Cond, st)
		thenSt := st.clone()
		thenTerm := g.walkStmt(s.Body, thenSt)
		if s.Else != nil {
			elseSt := st.clone()
			elseTerm := g.walkStmt(s.Else, elseSt)
			switch {
			case thenTerm && elseTerm:
				return true
			case thenTerm:
				replaceLocks(st, elseSt)
			case elseTerm:
				replaceLocks(st, thenSt)
			default:
				replaceLocks(st, thenSt)
				st.merge(elseSt)
			}
			return false
		}
		if !thenTerm {
			st.merge(thenSt)
		}

	case *ast.ForStmt:
		if s.Init != nil {
			g.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			g.scanRead(s.Cond, st)
		}
		bodySt := st.clone()
		bodyTerm := g.walkStmt(s.Body, bodySt)
		if s.Post != nil {
			g.walkStmt(s.Post, bodySt)
		}
		if !bodyTerm {
			st.merge(bodySt)
		}

	case *ast.RangeStmt:
		g.scanRead(s.X, st)
		bodySt := st.clone()
		bodyTerm := g.walkStmt(s.Body, bodySt)
		if !bodyTerm {
			st.merge(bodySt)
		}

	case *ast.SwitchStmt:
		if s.Init != nil {
			g.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			g.scanRead(s.Tag, st)
		}
		g.walkCases(s.Body, st)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			g.walkStmt(s.Init, st)
		}
		g.walkCases(s.Body, st)

	case *ast.SelectStmt:
		g.walkCases(s.Body, st)

	case *ast.LabeledStmt:
		return g.walkStmt(s.Stmt, st)

	case *ast.EmptyStmt:
	}
	return false
}

// walkCases mirrors the pairing engine: every clause runs on a copy of
// the incoming state, survivors merge (plus the fall-past path when no
// default exists).
func (g *lockguardPass) walkCases(body *ast.BlockStmt, st lockFlow) {
	var out []lockFlow
	hasDefault := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				g.scanRead(e, st)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			stmts = c.Body
		}
		caseSt := st.clone()
		if c, ok := c.(*ast.CommClause); ok && c.Comm != nil {
			g.walkStmt(c.Comm, caseSt)
		}
		if !g.walkStmts(stmts, caseSt) {
			out = append(out, caseSt)
		}
	}
	if len(out) == 0 {
		return
	}
	first := out[0]
	for _, o := range out[1:] {
		first.merge(o)
	}
	if !hasDefault {
		first.merge(st)
	}
	replaceLocks(st, first)
}

// handleCall applies a statement-level call's lock effects, or scans it
// for guarded accesses.
func (g *lockguardPass) handleCall(call *ast.CallExpr, st lockFlow) {
	if eff, ok := g.lockEffect(call); ok {
		switch eff.method {
		case "Lock":
			st[eff.key] = &heldLock{mode: lockExcl, typeName: eff.typeName, field: eff.field, name: eff.name, pos: call.Pos()}
		case "RLock":
			st[eff.key] = &heldLock{mode: lockShared, typeName: eff.typeName, field: eff.field, name: eff.name, pos: call.Pos()}
		case "Unlock", "RUnlock":
			delete(st, eff.key)
		}
		return
	}
	// delete(x.f, k) and close(x.f) mutate the container: writes.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && len(call.Args) > 0 {
		if _, isBuiltin := g.p.Info.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "delete" || id.Name == "close") {
			g.handleWrite(call.Args[0], st)
			for _, arg := range call.Args[1:] {
				g.scanRead(arg, st)
			}
			return
		}
	}
	g.scanRead(call, st)
}

// handleDefer registers deferred unlocks: a deferred unlock keeps its
// lock held through every return, which is the correct discipline, so
// the lock is exempt from the return-while-locked check.
func (g *lockguardPass) handleDefer(call *ast.CallExpr, st lockFlow) {
	if eff, ok := g.lockEffect(call); ok {
		if eff.method == "Unlock" || eff.method == "RUnlock" {
			if h := st[eff.key]; h != nil {
				h.deferred = true
			}
		}
		return
	}
	if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// defer func() { ... mu.Unlock() ... }(): the closure owns the
		// unlock; mark the locks it releases as deferred, then analyze
		// its body as a demoted scope.
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if eff, ok := g.lockEffect(inner); ok && (eff.method == "Unlock" || eff.method == "RUnlock") {
				if h := st[eff.key]; h != nil {
					h.deferred = true
				}
			}
			return true
		})
		g.analyzeBody(fl.Body, st.demote())
		return
	}
	for _, arg := range call.Args {
		g.scanRead(arg, st)
	}
	g.scanRead(call.Fun, st)
}

// lockEffectInfo describes one mutex method call.
type lockEffectInfo struct {
	key      string
	method   string
	typeName string // named type of the mutex's owner
	field    string
	name     string
}

// lockEffect matches mu.Lock()/Unlock()/RLock()/RUnlock() where mu is a
// field selector (owner.mu) or a plain mutex variable, and the method's
// receiver type is named Mutex or RWMutex.
func (g *lockguardPass) lockEffect(call *ast.CallExpr) (lockEffectInfo, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockEffectInfo{}, false
	}
	method := sel.Sel.Name
	switch method {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return lockEffectInfo{}, false
	}
	fn := calleeFunc(g.p.Info, call)
	if fn == nil {
		return lockEffectInfo{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isMutexTypeName(namedTypeName(sig.Recv().Type())) {
		return lockEffectInfo{}, false
	}
	eff := lockEffectInfo{method: method, name: types.ExprString(sel.X)}
	switch mu := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		eff.key = exprKey(g.p.Info, mu.X) + "." + mu.Sel.Name
		eff.field = mu.Sel.Name
		eff.typeName = namedTypeName(g.p.Info.TypeOf(mu.X))
	default:
		eff.key = exprKey(g.p.Info, sel.X)
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			eff.field = id.Name
		}
	}
	return eff, true
}

// handleWrite checks the target of an assignment, ++/--, delete or
// close: the root field selector (through indexing and dereferences) is
// a write; everything nested under it is read.
func (g *lockguardPass) handleWrite(l ast.Expr, st lockFlow) {
	e := ast.Unparen(l)
	for {
		switch v := e.(type) {
		case *ast.IndexExpr:
			g.scanRead(v.Index, st)
			e = ast.Unparen(v.X)
			continue
		case *ast.StarExpr:
			e = ast.Unparen(v.X)
			continue
		}
		break
	}
	if sel, ok := e.(*ast.SelectorExpr); ok {
		g.checkAccess(sel, st, true)
		g.scanRead(sel.X, st)
		return
	}
	if _, ok := e.(*ast.Ident); ok {
		return
	}
	g.scanRead(e, st)
}

// scanRead checks every guarded-field selection inside e as a read.
// Closure bodies are analyzed as separate scopes with all locks demoted
// to maybe; taking a guarded field's address counts as a write.
func (g *lockguardPass) scanRead(e ast.Expr, st lockFlow) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			g.analyzeBody(n.Body, st.demote())
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
					g.checkAccess(sel, st, true)
					g.scanRead(sel.X, st)
					return false
				}
			}
		case *ast.SelectorExpr:
			g.checkAccess(n, st, false)
		}
		return true
	})
}

// checkAccess reports a guarded-field access whose guard is provably
// not held (or only read-held, for writes).
func (g *lockguardPass) checkAccess(s *ast.SelectorExpr, st lockFlow, write bool) {
	v, ok := g.p.Info.Uses[s.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return
	}
	ref, guarded := g.guarded[v]
	if !guarded {
		return
	}
	h := g.findHeld(s, ref, st)
	pos := g.p.Fset.Position(s.Sel.Pos())
	dedup := pos.Filename + ":" + strconv.Itoa(pos.Line) + ":" + v.Name()
	if h == nil {
		if g.reported[dedup] {
			return
		}
		g.reported[dedup] = true
		g.p.Reportf(s.Sel.Pos(), "%s is guarded by %s but accessed without holding it", types.ExprString(s), ref)
		return
	}
	if write && h.mode == lockShared {
		if g.reported[dedup] {
			return
		}
		g.reported[dedup] = true
		g.p.Reportf(s.Sel.Pos(), "write to %s needs %s held exclusively, but only the read lock is held (RLock at %s)",
			types.ExprString(s), ref, g.p.Fset.Position(h.pos))
	}
}

// findHeld looks for a held lock satisfying ref for the access base: an
// exact owner match for sibling guards, otherwise any held lock on the
// right owner type with the right field — the type-level fallback keeps
// aliased owners (sched := s.sched) from false-positive reporting.
func (g *lockguardPass) findHeld(s *ast.SelectorExpr, ref guardRef, st lockFlow) *heldLock {
	wantType := ref.typeName
	if wantType == "" {
		if h := st[exprKey(g.p.Info, s.X)+"."+ref.field]; h != nil {
			return h
		}
		wantType = namedTypeName(g.p.Info.TypeOf(s.X))
		if wantType == "" {
			return nil
		}
	}
	var best *heldLock
	for _, h := range st {
		if h.typeName != wantType || h.field != ref.field {
			continue
		}
		if best == nil || h.mode < best.mode { // excl < shared < maybe
			best = h
		}
	}
	return best
}

// checkReturn reports locks provably still held at a return (or at the
// end of the function body) that were acquired in this function with no
// deferred unlock: the early-return-while-locked bug.
func (g *lockguardPass) checkReturn(st lockFlow, pos token.Pos) {
	for _, h := range st {
		if h.mode == lockMaybe || h.deferred || h.annot {
			continue
		}
		g.p.Reportf(pos, "returns while %s (locked at %s) is still held and no unlock is deferred",
			h.name, g.p.Fset.Position(h.pos))
	}
}

func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
