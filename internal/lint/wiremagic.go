package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Wiremagic hardens the binary wire formats. Every UnmarshalBinary
// method must:
//
//  1. check a magic constant — the function body (not its helpers) must
//     compare something named like a magic against the payload, so a
//     mis-routed or truncated payload fails at the front door instead of
//     deep inside a length-prefixed structure; and
//  2. bound every length it reads from the wire before allocating —
//     tracked as a taint analysis: integers produced by the package's
//     wire readers (readU32/readU64 results, binary.Read destinations)
//     must flow through a relational comparison before they reach a
//     make() size argument. The taint check runs over every function in
//     the package, so length-reading helpers (readPoly, readDigits,
//     readBytes) are held to the same standard as the methods that call
//     them.
//
// Without these checks a single hostile u32 can demand a multi-gigabyte
// allocation before any validation runs.
var Wiremagic = &Analyzer{
	Name: "wiremagic",
	Doc:  "UnmarshalBinary must check a magic constant and bound wire lengths before allocating",
	Run:  runWiremagic,
}

func runWiremagic(p *Pass) error {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name == "UnmarshalBinary" && fd.Recv != nil {
				checkMagic(p, fd)
			}
			checkBoundedLengths(p, fd)
		}
	}
	return nil
}

// checkMagic requires an equality comparison against something named
// like a magic constant somewhere in the UnmarshalBinary body, or a call
// to a magic-checking helper (readMagic, checkMagic, ...) — identified
// by a callee name that itself mentions "magic".
func checkMagic(p *Pass, fd *ast.FuncDecl) {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if (n.Op == token.EQL || n.Op == token.NEQ) && (mentionsMagic(n.X) || mentionsMagic(n.Y)) {
				found = true
				return false
			}
		case *ast.CallExpr:
			if mentionsMagic(n.Fun) {
				found = true
				return false
			}
		}
		return true
	})
	if !found {
		p.Reportf(fd.Name.Pos(), "UnmarshalBinary does not check a magic constant; every wire format must reject mis-routed payloads up front")
	}
}

func mentionsMagic(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(e.Name), "magic")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(e.Sel.Name), "magic")
	}
	return false
}

// checkBoundedLengths is the taint walk: wire-read integers must pass a
// relational bound before sizing an allocation. The walk is lexical
// (statements in source order), which matches the guard-then-allocate
// shape this repository's unmarshalers use.
func checkBoundedLengths(p *Pass, fd *ast.FuncDecl) {
	tainted := map[string]token.Pos{} // exprKey -> position of the tainting read

	taint := func(e ast.Expr, at token.Pos) {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			if e.Name != "_" {
				tainted[exprKey(p.Info, e)] = at
			}
		case *ast.IndexExpr:
			// hdr[i] = readU32(...) taints the whole array.
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
				tainted[exprKey(p.Info, id)] = at
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				// binary.Read(r, order, &v) writes through the pointer.
				if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
					tainted[exprKey(p.Info, id)] = at
				}
			}
		}
	}
	taintedExpr := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if _, bad := tainted[exprKey(p.Info, id)]; bad {
					found = true
				}
			}
			return true
		})
		return found
	}
	sanitize := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				for _, side := range []ast.Expr{be.X, be.Y} {
					ast.Inspect(side, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok {
							delete(tainted, exprKey(p.Info, id))
						}
						return true
					})
				}
			}
			return true
		})
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				if call, ok := ast.Unparen(r).(*ast.CallExpr); ok && isWireRead(p, call) {
					for _, l := range n.Lhs {
						taint(l, call.Pos())
					}
				}
			}
		case *ast.CallExpr:
			if isBinaryRead(p, n) && len(n.Args) == 3 {
				taint(n.Args[2], n.Pos())
			}
			if isMake(p.Info, n) {
				for _, size := range n.Args[1:] {
					if taintedExpr(size) {
						p.Reportf(n.Pos(), "allocation sized by unvalidated wire length %q; bound it before allocating", exprText(size))
					}
				}
			}
		case *ast.IfStmt:
			sanitize(n.Cond)
		case *ast.ForStmt:
			if n.Cond != nil {
				sanitize(n.Cond)
			}
		}
		return true
	})
}

// isWireRead matches calls to the package's little-endian header
// readers. Matching by name keeps fixtures self-contained and catches
// every readU32/readU64 clone across the marshal files.
func isWireRead(p *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(p.Info, call)
	if fn == nil {
		return false
	}
	switch fn.Name() {
	case "readU32", "readU64":
		return true
	}
	return false
}

// isBinaryRead matches encoding/binary.Read.
func isBinaryRead(p *Pass, call *ast.CallExpr) bool {
	return isPkgFuncCall(p.Info, call, "binary", "Read")
}

// isMake matches the builtin make.
func isMake(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "make"
}

func exprText(e ast.Expr) string {
	return types.ExprString(e)
}
