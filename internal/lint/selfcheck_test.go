package lint_test

import (
	"testing"

	"github.com/efficientfhe/smartpaf/internal/lint"
)

// TestSelfCheck pins `hennlint ./...` green on the repository itself: the
// full analyzer suite runs over the whole module and must report nothing.
// It is the programmatic twin of the CI `make lint` gate — a regressed
// guard annotation, secret taint path or level budget fails the ordinary
// test run immediately instead of waiting for the lint job.
func TestSelfCheck(t *testing.T) {
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(pkgs, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("finding on clean tree: %s", d)
	}
}
