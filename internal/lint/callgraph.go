package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The shared whole-program engine. NewProgram builds a CHA-style call
// graph over every package a Run invocation analyzes (the offline
// `go list -deps -export` loader hands us fully type-checked packages,
// so resolution is purely types-based): static calls resolve through
// types.Info.Uses, interface method calls resolve class-hierarchy style
// to every concrete method in the analyzed packages whose receiver
// implements the interface, and method values / function references are
// recorded as Ref edges so analyzers can choose whether "may be called
// later" counts. Call sites carry their lexical context (go, defer,
// inside a non-invoked closure) because the whole-program analyzers
// weigh them differently: a goroutine does not run on its spawner's
// stack, so lockorder must not thread the held-set through it, while
// errsink cares about every call wherever it appears.
//
// On top of the graph, Program offers a cycle-aware bottom-up fixpoint
// (Fixpoint) for per-function effect summaries — recursion simply
// iterates until the summaries stop growing. Analyzers reconstruct
// witness call chains from the steps their summaries record.

// Program is the whole-program view handed to RunProgram analyzers.
type Program struct {
	Pkgs []*Package
	Fset *token.FileSet

	nodes map[*types.Func]*FuncNode
	// concrete named types of the analyzed packages, for CHA interface
	// resolution.
	named []types.Type
	// cache of interface-method → concrete implementations.
	chaCache map[*types.Func][]*types.Func
}

// FuncNode is one declared function or method with a body.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	Calls []*CallSite
	// Refs are function values taken without being called at that point
	// (method values, `go s.run` spelled as a bare reference, funcs
	// stored in tables). Over-approximating analyzers may treat them as
	// potential calls; under-approximating ones ignore them.
	Refs []*FuncRef
}

// CallSite is one resolved call expression inside a function body.
type CallSite struct {
	Call *ast.CallExpr
	// Callees lists the possible static targets: exactly one for direct
	// calls, every CHA-compatible concrete method for interface calls,
	// empty for unresolvable dynamic calls (function values).
	Callees []*types.Func
	Go      bool // spawned with `go`: runs on another stack
	Defer   bool // deferred: runs at function exit, same stack
	// InClosure marks calls inside a function literal that is NOT
	// invoked where it is written — whether and when it runs is unknown.
	// Immediately-invoked literals (func(){...}()) splice into their
	// enclosing function and are not marked.
	InClosure bool
}

// FuncRef is a reference to a function or method without a call.
type FuncRef struct {
	Pos token.Pos
	Fn  *types.Func
}

// NewProgram builds the call graph for pkgs.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:     pkgs,
		nodes:    map[*types.Func]*FuncNode{},
		chaCache: map[*types.Func][]*types.Func{},
	}
	if len(pkgs) > 0 {
		prog.Fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				if _, isIface := tn.Type().Underlying().(*types.Interface); !isIface {
					prog.named = append(prog.named, tn.Type())
				}
			}
		}
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
				prog.nodes[fn] = node
			}
		}
	}
	for _, node := range prog.nodes {
		prog.collect(node)
	}
	return prog
}

// Node returns the graph node for fn, or nil when fn has no body in the
// analyzed packages (stdlib, interface methods, external deps).
func (prog *Program) Node(fn *types.Func) *FuncNode { return prog.nodes[fn] }

// Funcs returns every node in a stable (position) order.
func (prog *Program) Funcs() []*FuncNode {
	out := make([]*FuncNode, 0, len(prog.nodes))
	for _, n := range prog.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// collect walks node's body resolving every call and reference.
func (prog *Program) collect(node *FuncNode) {
	info := node.Pkg.Info
	var walk func(n ast.Node, goCtx, deferCtx, closure bool)
	// walkCall records one call site and descends into its parts: an
	// immediately-invoked literal's body splices into the enclosing
	// context (stays closure=false), a method call's receiver expression
	// and every argument keep the current context.
	walkCall := func(call *ast.CallExpr, goCtx, deferCtx, closure bool) {
		prog.addCall(node, info, call, goCtx, deferCtx, closure)
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.FuncLit:
			walk(fun.Body, goCtx, deferCtx, closure)
		case *ast.SelectorExpr:
			walk(fun.X, goCtx, deferCtx, closure)
		}
		for _, arg := range call.Args {
			walk(arg, goCtx, deferCtx, closure)
		}
	}
	walk = func(n ast.Node, goCtx, deferCtx, closure bool) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				walkCall(n.Call, true, false, closure)
				return false
			case *ast.DeferStmt:
				walkCall(n.Call, false, true, closure)
				return false
			case *ast.CallExpr:
				walkCall(n, goCtx, deferCtx, closure)
				return false
			case *ast.FuncLit:
				// A literal reached here is not invoked where it is
				// written: whether and when it runs is unknown.
				walk(n.Body, goCtx, deferCtx, true)
				return false
			case *ast.SelectorExpr:
				// A method or function referenced without a call (the
				// call case above never descends into its own Fun).
				if fn, ok := info.Uses[n.Sel].(*types.Func); ok {
					node.Refs = append(node.Refs, &FuncRef{Pos: n.Pos(), Fn: fn})
				}
				walk(n.X, goCtx, deferCtx, closure)
				return false
			case *ast.Ident:
				if fn, ok := info.Uses[n].(*types.Func); ok {
					node.Refs = append(node.Refs, &FuncRef{Pos: n.Pos(), Fn: fn})
				}
				return false
			}
			return true
		})
	}
	walk(node.Decl.Body, false, false, false)
}

// addCall resolves and records one call site.
func (prog *Program) addCall(node *FuncNode, info *types.Info, call *ast.CallExpr, goCtx, deferCtx, closure bool) {
	callees, isCall := prog.resolveCall(info, call)
	if !isCall {
		return // conversion or immediately-invoked literal
	}
	node.Calls = append(node.Calls, &CallSite{
		Call: call, Callees: callees, Go: goCtx, Defer: deferCtx, InClosure: closure,
	})
}

// resolveCall returns the possible static targets of a call: exactly one
// for direct calls, every CHA-compatible concrete method for interface
// calls, nil for dynamic calls through function values. isCall is false
// for type conversions and immediately-invoked function literals.
func (prog *Program) resolveCall(info *types.Info, call *ast.CallExpr) (callees []*types.Func, isCall bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return []*types.Func{fn}, true
		}
		if _, isType := info.Uses[fun].(*types.TypeName); isType {
			return nil, false // conversion, not a call
		}
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			if _, isType := info.Uses[fun.Sel].(*types.TypeName); isType {
				return nil, false // qualified conversion
			}
			return nil, true
		}
		if isInterfaceMethod(fn) {
			return prog.implementations(fn), true
		}
		return []*types.Func{fn}, true
	case *ast.FuncLit:
		// Immediately invoked: the body splices into the enclosing
		// context; no edge needed.
		return nil, false
	}
	return nil, true
}

// isInterfaceMethod reports whether fn is declared on an interface.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ok = sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}

// implementations resolves an interface method CHA-style: every method
// of the same name on an analyzed concrete type that implements the
// interface.
func (prog *Program) implementations(fn *types.Func) []*types.Func {
	if impls, ok := prog.chaCache[fn]; ok {
		return impls
	}
	iface, _ := fn.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	var impls []*types.Func
	if iface != nil {
		for _, t := range prog.named {
			var recv types.Type = t
			if !types.Implements(t, iface) {
				pt := types.NewPointer(t)
				if !types.Implements(pt, iface) {
					continue
				}
				recv = pt
			}
			obj, _, _ := types.LookupFieldOrMethod(recv, true, fn.Pkg(), fn.Name())
			if m, ok := obj.(*types.Func); ok {
				impls = append(impls, m)
			}
		}
	}
	sort.Slice(impls, func(i, j int) bool { return impls[i].Pos() < impls[j].Pos() })
	prog.chaCache[fn] = impls
	return impls
}

// Fixpoint computes a bottom-up summary for every node, iterating until
// no summary changes — recursion and mutual recursion converge because
// update must be monotone (only ever grow its summary). update returns
// whether the node's summary changed this round.
func (prog *Program) Fixpoint(update func(n *FuncNode) bool) {
	for {
		changed := false
		for _, n := range prog.Funcs() {
			if update(n) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}
