package lint_test

import (
	"testing"

	"github.com/efficientfhe/smartpaf/internal/lint"
	"github.com/efficientfhe/smartpaf/internal/lint/linttest"
)

func TestSecretflow(t *testing.T) {
	linttest.Run(t, lint.Secretflow, "secretflow")
}

// TestSecretflowSeeds runs the fixture whose directory name places it
// in the crypto-package scope, where seed-named integers are tainted.
func TestSecretflowSeeds(t *testing.T) {
	linttest.Run(t, lint.Secretflow, "ckks")
}
