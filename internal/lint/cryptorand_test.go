package lint_test

import (
	"testing"

	"github.com/efficientfhe/smartpaf/internal/lint"
	"github.com/efficientfhe/smartpaf/internal/lint/linttest"
)

// TestCryptorand covers the in-scope fixture (directory named "ring",
// with one violating file and one carrying the deterministic-sampling
// annotation).
func TestCryptorand(t *testing.T) {
	linttest.Run(t, lint.Cryptorand, "ring")
}

// TestCryptorandOutOfScope: math/rand outside the crypto packages is
// not the analyzer's business.
func TestCryptorandOutOfScope(t *testing.T) {
	linttest.Run(t, lint.Cryptorand, "mathok")
}
