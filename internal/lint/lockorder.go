package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockorder is the whole-program deadlock detector. Every mutex is
// abstracted to its lock class — the named type and field that hold it
// (registry.Registry.mu), a package-level variable, or a function-local
// name — and every acquires-while-holding pair observed anywhere in the
// program becomes a directed edge in one global lock-order graph:
// flow-sensitive tracking of the held set inside each function (Lock /
// RLock acquire, Unlock / RUnlock release, deferred unlocks hold to
// function end) combined with per-function transitive may-acquire
// summaries over the shared call graph, computed to a cycle-aware
// fixpoint, so an edge forms when lock B is taken while A is held even
// when the acquisition is buried several calls deep. A cycle in the
// graph is a potential deadlock and is reported once with the full
// witness path — which function holds what, where, and through which
// call chain the inner acquisition happens.
//
// //hennlint:lock-order(A.mu < B.mu) pins the canonical order: the pin
// adds its edge to the graph (so a contradicting observation completes
// a reportable cycle even before a second thread exists in the code)
// and any observed B-held-acquiring-A pair is reported directly as a
// pin violation. //hennlint:lock-order-ok on (or above) an acquire or
// call line audits that site out of the graph.
//
// Deliberate under-approximations, so the analyzer stays silent on
// correct code: goroutine spawns do not thread the spawner's held set
// (a `go` call runs on its own stack), function literals that are not
// invoked where they are written are analyzed with an empty held set,
// and same-class pairs (two instances of one type locked together) are
// skipped — class-level analysis cannot order instances.
var Lockorder = &Analyzer{
	Name:       "lockorder",
	Doc:        "the global mutex acquisition order must stay acyclic (potential deadlocks)",
	RunProgram: runLockorder,
}

// lockClass names one mutex class: "pkg.Type.field" for a mutex field
// of a named type, "pkg.var" for a package-level mutex variable,
// "pkg.Func.name" for function-local mutexes.
type lockClass = string

// transStep records how a function comes to acquire a class: directly
// at pos (via == nil), or by calling via at pos.
type transStep struct {
	pos token.Pos
	via *types.Func
}

// lockOrderEdge is one observed or pinned from-before-to pair.
type lockOrderEdge struct {
	from, to lockClass
	pos      token.Pos // acquire or call site (pin comment for pinned edges)
	witness  string    // human-readable justification
	pinned   bool
}

// lockOrderState is the per-run builder shared by the analyzer and the
// -lockgraph DOT emitter.
type lockOrderState struct {
	prog      *Program
	summaries map[*types.Func]map[lockClass]transStep
	edges     map[[2]string]*lockOrderEdge // first witness wins
	pins      []*lockOrderEdge
	malformed []lockOrderDiag
}

type lockOrderDiag struct {
	pos token.Pos
	msg string
}

func runLockorder(pp *ProgramPass) error {
	st := buildLockOrder(pp.Prog)
	for _, d := range st.malformed {
		pp.Reportf(d.pos, "%s", d.msg)
	}
	// Pin violations: an observed edge opposite to a pinned order.
	pinned := map[[2]string]*lockOrderEdge{}
	for _, p := range st.pins {
		pinned[[2]string{p.from, p.to}] = p
	}
	violated := map[[2]string]bool{}
	for key, e := range st.edges {
		if e.pinned {
			continue
		}
		if p, ok := pinned[[2]string{e.to, e.from}]; ok {
			pp.Reportf(e.pos, "%s is acquired while %s is held (%s), but the pinned lock order is %s < %s (%s)",
				e.to, e.from, e.witness, p.from, p.to, st.prog.Fset.Position(p.pos))
			violated[key] = true
		}
	}
	// Cycle detection over the remaining graph (pins included: two
	// contradicting pins, or a pin plus an observed edge, still cycle).
	adj := map[string][]*lockOrderEdge{}
	for key, e := range st.edges {
		if violated[key] {
			continue
		}
		adj[e.from] = append(adj[e.from], e)
	}
	for _, out := range adj {
		sort.Slice(out, func(i, j int) bool { return out[i].to < out[j].to })
	}
	for _, cycle := range findLockCycles(adj) {
		pos := cycle[0].pos
		var names, wits []string
		for _, e := range cycle {
			if e.pos < pos {
				pos = e.pos
			}
			names = append(names, e.from)
			wits = append(wits, fmt.Sprintf("%s -> %s: %s", e.from, e.to, e.witness))
		}
		names = append(names, cycle[0].from)
		pp.Reportf(pos, "lock-order cycle (potential deadlock): %s; %s (break the cycle, pin an order with %slock-order(a<b), or audit a site with %slock-order-ok)",
			strings.Join(names, " -> "), strings.Join(wits, "; "), directivePrefix, directivePrefix)
	}
	return nil
}

// buildLockOrder computes summaries, scans pins and escapes, and
// assembles the global edge set.
func buildLockOrder(prog *Program) *lockOrderState {
	st := &lockOrderState{
		prog:      prog,
		summaries: map[*types.Func]map[lockClass]transStep{},
		edges:     map[[2]string]*lockOrderEdge{},
	}
	// Per-function transitive may-acquire summaries, to a fixpoint so
	// recursion converges.
	prog.Fixpoint(func(n *FuncNode) bool {
		sum := st.summaries[n.Fn]
		if sum == nil {
			sum = map[lockClass]transStep{}
			st.summaries[n.Fn] = sum
		}
		changed := false
		for _, site := range n.Calls {
			if site.Go || site.InClosure {
				continue
			}
			if op, ok := lockOp(n.Pkg, funcDisplayName(n.Decl), site.Call); ok {
				if op.acquire {
					if _, have := sum[op.class]; !have {
						sum[op.class] = transStep{pos: site.Call.Pos()}
						changed = true
					}
				}
				continue
			}
			for _, callee := range site.Callees {
				for c := range st.summaries[callee] {
					if _, have := sum[c]; !have {
						sum[c] = transStep{pos: site.Call.Pos(), via: callee}
						changed = true
					}
				}
			}
		}
		return changed
	})
	st.scanPins()
	for _, n := range prog.Funcs() {
		w := &lockOrderWalk{st: st, node: n, fnName: funcDisplayName(n.Decl), okLines: lockOrderOKLines(n.Pkg, n.Decl)}
		w.stmts(n.Decl.Body.List, heldSet{})
	}
	return st
}

// funcDisplayName renders "Recv.Name" or "Name" for witnesses.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if s, ok := t.(*ast.StarExpr); ok {
			t = s.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}

// scanPins collects //hennlint:lock-order(a<b) pins from every file.
// Unqualified names (Type.field or var) resolve in the declaring file's
// package; a fully qualified pkg.Type.field passes through.
func (st *lockOrderState) scanPins() {
	for _, pkg := range st.prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, directivePrefix+"lock-order(")
					if !ok {
						continue
					}
					i := strings.IndexByte(rest, ')')
					if i < 0 {
						st.malformed = append(st.malformed, lockOrderDiag{c.Pos(),
							fmt.Sprintf("malformed %slock-order directive: missing ')'", directivePrefix)})
						continue
					}
					arg := rest[:i]
					parts := strings.Split(arg, "<")
					if len(parts) != 2 {
						st.malformed = append(st.malformed, lockOrderDiag{c.Pos(),
							fmt.Sprintf("malformed %slock-order argument %q: want \"a < b\"", directivePrefix, arg)})
						continue
					}
					from := qualifyPinName(strings.TrimSpace(parts[0]), pkg.Types.Name())
					to := qualifyPinName(strings.TrimSpace(parts[1]), pkg.Types.Name())
					if from == "" || to == "" || from == to {
						st.malformed = append(st.malformed, lockOrderDiag{c.Pos(),
							fmt.Sprintf("malformed %slock-order argument %q: names must be distinct Type.field, var, or pkg.Type.field", directivePrefix, arg)})
						continue
					}
					pinPos := pkg.Fset.Position(c.Pos())
					e := &lockOrderEdge{from: from, to: to, pos: c.Pos(), pinned: true,
						witness: fmt.Sprintf("pinned at %s:%d", shortFilename(pinPos.Filename), pinPos.Line)}
					st.pins = append(st.pins, e)
					if _, have := st.edges[[2]string{from, to}]; !have {
						st.edges[[2]string{from, to}] = e
					}
				}
			}
		}
	}
}

// qualifyPinName turns a pin operand into a lock class, prefixing the
// declaring package's name when the operand is not already qualified.
func qualifyPinName(s, pkgName string) string {
	if s == "" {
		return ""
	}
	switch strings.Count(s, ".") {
	case 0, 1: // "mu" or "Type.mu"
		return pkgName + "." + s
	case 2: // "pkg.Type.mu"
		return s
	}
	return ""
}

// lockOrderOKLines collects the //hennlint:lock-order-ok lines of the
// file containing fd (suppression is line-keyed, so the file scan is
// what matters).
func lockOrderOKLines(pkg *Package, fd *ast.FuncDecl) map[int]bool {
	for _, f := range pkg.Files {
		if f.Pos() <= fd.Pos() && fd.End() <= f.End() {
			return directiveLines(pkg.Fset, f, "lock-order-ok")
		}
	}
	return nil
}

// addEdge records one observed pair unless the site is audited away.
func (st *lockOrderState) addEdge(from, to lockClass, pos token.Pos, witness string, okLines map[int]bool) {
	if from == to {
		return
	}
	if okLines[st.prog.Fset.Position(pos).Line] {
		return
	}
	key := [2]string{from, to}
	prev, have := st.edges[key]
	if !have {
		st.edges[key] = &lockOrderEdge{from: from, to: to, pos: pos, witness: witness}
		return
	}
	// An observation along a pinned order upgrades the pin placeholder's
	// witness (it stays dashed in the DOT: the pin is still the source of
	// truth); between observations the first witness wins.
	if prev.pinned && strings.HasPrefix(prev.witness, "pinned at ") {
		prev.witness = witness
	}
}

// chain renders the call path by which fn comes to acquire class.
func (st *lockOrderState) chain(fn *types.Func, class lockClass) string {
	var hops []string
	seen := map[*types.Func]bool{}
	for fn != nil && !seen[fn] {
		seen[fn] = true
		hops = append(hops, fn.Name())
		step, ok := st.summaries[fn][class]
		if !ok {
			break
		}
		if step.via == nil {
			return fmt.Sprintf("%s locks it at %s", strings.Join(hops, " -> "), st.prog.Fset.Position(step.pos))
		}
		fn = step.via
	}
	return strings.Join(hops, " -> ")
}

// heldSet maps held lock classes to their acquisition site.
type heldSet map[lockClass]token.Pos

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// union merges other into h, keeping the earliest acquisition site —
// path-exists semantics: a lock held on either arm of a branch is held
// on some path through the join.
func (h heldSet) union(other heldSet) {
	for k, v := range other {
		if cur, ok := h[k]; !ok || v < cur {
			h[k] = v
		}
	}
}

// lockOrderWalk is the flow-sensitive held-set walk over one function.
type lockOrderWalk struct {
	st      *lockOrderState
	node    *FuncNode
	fnName  string
	okLines map[int]bool
}

func (w *lockOrderWalk) stmts(list []ast.Stmt, held heldSet) bool {
	for _, s := range list {
		if w.stmt(s, held) {
			return true
		}
	}
	return false
}

func (w *lockOrderWalk) stmt(s ast.Stmt, held heldSet) (terminated bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.ExprStmt:
		w.expr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held)
					}
				}
			}
		}
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held through the rest of the
		// body (that is the point); any other deferred call is treated
		// as running with the current held set.
		if op, ok := lockOp(w.node.Pkg, w.fnName, s.Call); ok && !op.acquire {
			break
		}
		w.expr(s.Call, held)
	case *ast.GoStmt:
		// The spawned call runs on its own stack: arguments are
		// evaluated here, the call itself is not.
		for _, arg := range s.Call.Args {
			w.expr(arg, held)
		}
		if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.stmts(fl.Body.List, heldSet{})
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, held)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		thenSt := held.clone()
		thenTerm := w.stmt(s.Body, thenSt)
		if s.Else != nil {
			elseSt := held.clone()
			elseTerm := w.stmt(s.Else, elseSt)
			switch {
			case thenTerm && elseTerm:
				return true
			case thenTerm:
				replaceHeld(held, elseSt)
			case elseTerm:
				replaceHeld(held, thenSt)
			default:
				replaceHeld(held, thenSt)
				held.union(elseSt)
			}
			return false
		}
		if !thenTerm {
			held.union(thenSt)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		bodySt := held.clone()
		bodyTerm := w.stmt(s.Body, bodySt)
		if s.Post != nil {
			w.stmt(s.Post, bodySt)
		}
		if !bodyTerm {
			held.union(bodySt)
		}
	case *ast.RangeStmt:
		w.expr(s.X, held)
		bodySt := held.clone()
		if !w.stmt(s.Body, bodySt) {
			held.union(bodySt)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		w.cases(s.Body, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.cases(s.Body, held)
	case *ast.SelectStmt:
		w.cases(s.Body, held)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	}
	return false
}

func replaceHeld(dst, src heldSet) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

func (w *lockOrderWalk) cases(body *ast.BlockStmt, held heldSet) {
	var out []heldSet
	for _, c := range body.List {
		var stmts []ast.Stmt
		caseSt := held.clone()
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.expr(e, held)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.stmt(c.Comm, caseSt)
			}
			stmts = c.Body
		}
		if !w.stmts(stmts, caseSt) {
			out = append(out, caseSt)
		}
	}
	for _, o := range out {
		held.union(o)
	}
}

// expr processes every call inside e against the current held set.
func (w *lockOrderWalk) expr(e ast.Expr, held heldSet) {
	if e == nil {
		return
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		w.call(e, held)
	case *ast.FuncLit:
		// Not invoked here: the body runs with an unknown held set;
		// analyze it with an empty one (under-approximation).
		w.stmts(e.Body.List, heldSet{})
	case *ast.SelectorExpr:
		w.expr(e.X, held)
	case *ast.BinaryExpr:
		w.expr(e.X, held)
		w.expr(e.Y, held)
	case *ast.UnaryExpr:
		w.expr(e.X, held)
	case *ast.StarExpr:
		w.expr(e.X, held)
	case *ast.IndexExpr:
		w.expr(e.X, held)
		w.expr(e.Index, held)
	case *ast.SliceExpr:
		w.expr(e.X, held)
		w.expr(e.Low, held)
		w.expr(e.High, held)
		w.expr(e.Max, held)
	case *ast.TypeAssertExpr:
		w.expr(e.X, held)
	case *ast.KeyValueExpr:
		w.expr(e.Key, held)
		w.expr(e.Value, held)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			w.expr(elt, held)
		}
	}
}

// call handles one call: a lock acquire forms edges from everything
// held and joins the held set, a release leaves it, and any other call
// forms edges from everything held to everything the callee may
// transitively acquire.
func (w *lockOrderWalk) call(call *ast.CallExpr, held heldSet) {
	// Arguments and receiver run first, under the current held set.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.expr(sel.X, held)
	}
	if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Immediately invoked: the body runs right here.
		for _, arg := range call.Args {
			w.expr(arg, held)
		}
		w.stmts(fl.Body.List, held)
		return
	}
	for _, arg := range call.Args {
		w.expr(arg, held)
	}
	if op, ok := lockOp(w.node.Pkg, w.fnName, call); ok {
		if !op.acquire {
			delete(held, op.class)
			return
		}
		for from, fpos := range held {
			w.st.addEdge(from, op.class, call.Pos(),
				fmt.Sprintf("%s locks %s at %s while holding %s (since %s)",
					w.fnName, op.class, w.pos(call.Pos()), from, w.pos(fpos)),
				w.okLines)
		}
		if _, have := held[op.class]; !have {
			held[op.class] = call.Pos()
		}
		return
	}
	if len(held) == 0 {
		return
	}
	callees, _ := w.st.prog.resolveCall(w.node.Pkg.Info, call)
	for _, callee := range callees {
		for class := range w.st.summaries[callee] {
			for from, fpos := range held {
				w.st.addEdge(from, class, call.Pos(),
					fmt.Sprintf("%s holds %s (since %s) and calls %s at %s; %s",
						w.fnName, from, w.pos(fpos), callee.Name(), w.pos(call.Pos()),
						w.st.chain(callee, class)),
					w.okLines)
			}
		}
	}
}

func (w *lockOrderWalk) pos(p token.Pos) string {
	pos := w.st.prog.Fset.Position(p)
	return fmt.Sprintf("%s:%d", shortFilename(pos.Filename), pos.Line)
}

// shortFilename trims the path down to its last two elements so witness
// strings stay readable.
func shortFilename(name string) string {
	parts := strings.Split(name, "/")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return strings.Join(parts, "/")
}

// LockGraphDOT builds the whole-program lock-order graph over pkgs and
// renders it as a Graphviz DOT document: one node per lock class, one
// edge per observed acquires-while-holding pair (labeled with its
// witness), pinned edges dashed. Backs `hennlint -lockgraph`.
func LockGraphDOT(pkgs []*Package) string {
	st := buildLockOrder(NewProgram(pkgs))
	keys := make([][2]string, 0, len(st.edges))
	for k := range st.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	classes := map[string]bool{}
	for _, k := range keys {
		classes[k[0]] = true
		classes[k[1]] = true
	}
	names := make([]string, 0, len(classes))
	for c := range classes {
		names = append(names, c)
	}
	sort.Strings(names)

	var b strings.Builder
	b.WriteString("digraph lockorder {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	for _, n := range names {
		fmt.Fprintf(&b, "  %q;\n", n)
	}
	for _, k := range keys {
		e := st.edges[k]
		attrs := fmt.Sprintf("label=%q", shortWitness(e.witness))
		if e.pinned {
			attrs += ", style=dashed"
		}
		fmt.Fprintf(&b, "  %q -> %q [%s];\n", e.from, e.to, attrs)
	}
	b.WriteString("}\n")
	return b.String()
}

// shortWitness keeps DOT edge labels to the locating core of a witness.
func shortWitness(w string) string {
	if i := strings.Index(w, " while holding"); i > 0 {
		return w[:i]
	}
	if i := strings.Index(w, " and calls "); i > 0 {
		rest := w[i+len(" and calls "):]
		if j := strings.Index(rest, ";"); j > 0 {
			rest = rest[:j]
		}
		return "via " + rest
	}
	return w
}

// lockOpInfo describes one mutex Lock/Unlock-family call.
type lockOpInfo struct {
	class   lockClass
	acquire bool
}

// lockOp matches mu.Lock()/Unlock()/RLock()/RUnlock() (receiver type
// named Mutex or RWMutex, matching lockguard) and computes the lock
// class. fnName scopes function-local mutexes.
func lockOp(pkg *Package, fnName string, call *ast.CallExpr) (lockOpInfo, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOpInfo{}, false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return lockOpInfo{}, false
	}
	fn := calleeFunc(pkg.Info, call)
	if fn == nil {
		return lockOpInfo{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isMutexTypeName(namedTypeName(sig.Recv().Type())) {
		return lockOpInfo{}, false
	}
	pkgName := pkg.Types.Name()
	owner := ast.Unparen(sel.X)
	// t.Lock() on a type embedding the mutex: the owner expression's
	// type is the embedding struct, not the mutex itself.
	if tn := namedTypeName(pkg.Info.TypeOf(owner)); tn != "" && !isMutexTypeName(tn) {
		return lockOpInfo{class: pkgName + "." + tn + "." + namedTypeName(sig.Recv().Type()), acquire: acquire}, true
	}
	switch mu := owner.(type) {
	case *ast.SelectorExpr:
		if tn := namedTypeName(pkg.Info.TypeOf(mu.X)); tn != "" {
			return lockOpInfo{class: pkgName + "." + tn + "." + mu.Sel.Name, acquire: acquire}, true
		}
		return lockOpInfo{class: pkgName + "." + fnName + "." + types.ExprString(owner), acquire: acquire}, true
	case *ast.Ident:
		if obj := pkg.Info.ObjectOf(mu); obj != nil && obj.Parent() == pkg.Types.Scope() {
			return lockOpInfo{class: pkgName + "." + mu.Name, acquire: acquire}, true
		}
		return lockOpInfo{class: pkgName + "." + fnName + "." + mu.Name, acquire: acquire}, true
	}
	return lockOpInfo{class: pkgName + "." + fnName + "." + types.ExprString(owner), acquire: acquire}, true
}

// findLockCycles returns one representative cycle (as its edge list)
// per strongly connected component with a cycle. Deterministic: nodes
// and out-edges are visited in sorted order.
func findLockCycles(adj map[string][]*lockOrderEdge) [][]*lockOrderEdge {
	// Tarjan SCC, iterative enough for our graph sizes via recursion.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var counter int
	comp := map[string]int{} // node -> SCC id
	var compCount int

	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	for _, es := range adj {
		for _, e := range es {
			if _, ok := adj[e.to]; !ok {
				nodes = append(nodes, e.to)
				adj[e.to] = nil
			}
		}
	}
	sort.Strings(nodes)

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, e := range adj[v] {
			w := e.to
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				n := len(stack) - 1
				w := stack[n]
				stack = stack[:n]
				onStack[w] = false
				comp[w] = compCount
				if w == v {
					break
				}
			}
			compCount++
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}

	// For each SCC with more than one node, walk a cycle from its
	// smallest member using only intra-SCC edges.
	members := map[int][]string{}
	for n, c := range comp {
		members[c] = append(members[c], n)
	}
	compIDs := make([]int, 0, len(members))
	for c := range members {
		compIDs = append(compIDs, c)
	}
	sort.Ints(compIDs)
	var cycles [][]*lockOrderEdge
	for _, c := range compIDs {
		ms := members[c]
		if len(ms) < 2 {
			continue
		}
		sort.Strings(ms)
		start := ms[0]
		// Shortest cycle through start: BFS over intra-SCC edges back
		// to start, recording the edge that first reached each node.
		parent := map[string]*lockOrderEdge{}
		queue := []string{start}
		var closing *lockOrderEdge
	bfs:
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, e := range adj[cur] {
				if comp[e.to] != c {
					continue
				}
				if e.to == start {
					closing = e
					break bfs
				}
				if _, seen := parent[e.to]; !seen {
					parent[e.to] = e
					queue = append(queue, e.to)
				}
			}
		}
		if closing == nil {
			continue
		}
		path := []*lockOrderEdge{closing}
		for cur := closing.from; cur != start; {
			e := parent[cur]
			path = append([]*lockOrderEdge{e}, path...)
			cur = e.from
		}
		cycles = append(cycles, path)
	}
	return cycles
}
