package lint_test

import (
	"testing"

	"github.com/efficientfhe/smartpaf/internal/lint"
	"github.com/efficientfhe/smartpaf/internal/lint/linttest"
)

func TestErrsink(t *testing.T) {
	linttest.Run(t, lint.Errsink, "errsink")
}
