// Package linttest is the test harness for the hennlint analyzers. It
// mirrors golang.org/x/tools/go/analysis/analysistest: a fixture package
// under testdata/src/<name> is loaded and analyzed, and every expected
// diagnostic is declared in the fixture itself with a trailing marker
//
//	r.GetPoly(3) // want "is not released"
//
// where the quoted string is a regexp matched against the diagnostic
// message. Several markers may share one line (`// want "a" "b"`). The
// check is strict in both directions: a diagnostic with no matching
// marker fails the test, and so does a marker no diagnostic matched.
package linttest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/efficientfhe/smartpaf/internal/lint"
)

// want is one expected-diagnostic marker.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantQuoted = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// Run loads testdata/src/<fixture> relative to the caller's directory,
// applies the analyzer, and enforces the fixture's want markers. The
// fixture is type-checked under the import path test/<fixture>, so its
// directory name is what scope-sensitive analyzers (cryptorand) see.
func Run(t *testing.T, a *lint.Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := lint.LoadDir(dir, "test/"+fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, fixture, err)
	}

	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range diags {
		if !matchWant(wants, d) {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched marker %q", w.file, w.line, w.re)
		}
	}
}

// collectWants extracts every want marker from the fixture's comments.
func collectWants(pkg *lint.Package) ([]*want, error) {
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := wantQuoted.FindAllString(text, -1)
				if len(quoted) == 0 {
					return nil, fmt.Errorf("%s: malformed want marker %q", pos, c.Text)
				}
				for _, q := range quoted {
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s: unquoting %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: compiling %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// matchWant consumes the first unmatched marker on the diagnostic's line
// whose regexp matches the message.
func matchWant(wants []*want, d lint.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
