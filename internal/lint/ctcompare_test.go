package lint_test

import (
	"testing"

	"github.com/efficientfhe/smartpaf/internal/lint"
	"github.com/efficientfhe/smartpaf/internal/lint/linttest"
)

func TestCtcompare(t *testing.T) {
	linttest.Run(t, lint.Ctcompare, "ctcompare")
}
