package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Obsdiscipline enforces the telemetry plane's three usage contracts.
//
// Lifecycles: a stage mark obtained from Trace.StageStart must reach a
// Trace.StageEnd on every path, and a span obtained from StartSpan must
// be ended with Span.End — both run on the PR 7 pairing engine, so
// deferred ends, ownership-transferring stores and the
// //hennlint:transfers-ownership annotation all behave exactly like the
// pool and refcount analyzers. A dropped StageEnd is not just a missing
// datapoint: the stage histogram silently under-reports the exact code
// path that was interesting enough to instrument.
//
// Label cardinality: a taint pass flags unbounded values — request
// paths and query strings (URL fields), mux path values and form/header
// inputs, trace ids (Trace.ID, NewTraceID), hex digests — flowing into
// CounterVec/HistogramVec With label arguments, where each distinct
// value mints a new series and an attacker-controlled input becomes an
// unbounded-memory bug. Taint follows assignment chains, string
// concatenation and the fmt/strings/strconv shaping helpers;
// //hennlint:label-ok on the sink line audits a deliberate site.
//
// Read paths: functions annotated //hennlint:read-path (stats and
// scrape handlers) must never reach the series-creating With — a scrape
// must observe, not allocate; Find is the read-side accessor. The check
// is transitive over the shared call graph and reports the call chain.
var Obsdiscipline = &Analyzer{
	Name:       "obsdiscipline",
	Doc:        "telemetry lifecycles must pair, metric labels stay bounded, read paths never create series",
	Run:        runObsdiscipline,
	RunProgram: runObsdisciplineProgram,
}

// spanPairSpec tracks StartSpan results to their Span.End.
var spanPairSpec = &pairSpec{
	acquire: func(p *Pass, call *ast.CallExpr) (string, bool) {
		fn := calleeFunc(p.Info, call)
		if fn == nil || fn.Name() != "StartSpan" {
			return "", false
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Results().Len() >= 1 &&
			namedTypeName(sig.Results().At(0).Type()) == "Span" {
			return "trace span", true
		}
		return "", false
	},
	release: func(p *Pass, call *ast.CallExpr) (ast.Expr, bool) {
		return methodCall(p.Info, call, "Span", "End")
	},
	annotation: "transfers-ownership",
	resultType: func(t types.Type) bool { return namedTypeName(t) == "Span" },
}

// stagePairSpec tracks Trace.StageStart marks to their Trace.StageEnd.
var stagePairSpec = &pairSpec{
	acquire: func(p *Pass, call *ast.CallExpr) (string, bool) {
		if _, ok := methodCall(p.Info, call, "Trace", "StageStart"); ok {
			return "stage mark", true
		}
		return "", false
	},
	release: func(p *Pass, call *ast.CallExpr) (ast.Expr, bool) {
		if _, ok := methodCall(p.Info, call, "Trace", "StageEnd"); ok && len(call.Args) >= 2 {
			return call.Args[1], true
		}
		return nil, false
	},
	annotation: "transfers-ownership",
	resultType: func(t types.Type) bool { return namedTypeName(t) == "Time" },
}

func runObsdiscipline(p *Pass) error {
	runPairing(p, spanPairSpec)
	runPairing(p, stagePairSpec)
	for _, f := range p.Files {
		ok := directiveLines(p.Fset, f, "label-ok")
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			t := &labelTaint{p: p, okLines: ok, tainted: map[types.Object]bool{}}
			t.propagate(fd.Body)
			t.checkSinks(fd.Body)
		}
	}
	return nil
}

// labelTaint is the per-function unbounded-label taint pass. It mirrors
// secretflow's local fixpoint but with cardinality sources and the
// series-creating With as its only sink.
type labelTaint struct {
	p       *Pass
	okLines map[int]bool
	tainted map[types.Object]bool
}

func (t *labelTaint) propagate(body *ast.BlockStmt) {
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						grew = t.bind(n.Lhs[i], n.Rhs[i]) || grew
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						grew = t.bind(n.Names[i], n.Values[i]) || grew
					}
				}
			}
			return true
		})
		if !grew {
			return
		}
	}
}

func (t *labelTaint) bind(lhs, rhs ast.Expr) bool {
	if !t.taintedExpr(rhs) {
		return false
	}
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := t.p.Info.ObjectOf(id)
	if obj == nil || t.tainted[obj] {
		return false
	}
	t.tainted[obj] = true
	return true
}

// urlUnboundedFields are the URL parts whose value space is the client's
// to choose.
var urlUnboundedFields = map[string]bool{
	"Path": true, "RawPath": true, "RawQuery": true, "Opaque": true, "RequestURI": true,
}

// taintedExpr reports whether e carries an unbounded (client- or
// id-derived) string.
func (t *labelTaint) taintedExpr(e ast.Expr) bool {
	e = ast.Unparen(e)
	if e == nil {
		return false
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := t.p.Info.ObjectOf(e); obj != nil && t.tainted[obj] {
			return true
		}
	case *ast.SelectorExpr:
		owner := namedTypeName(t.p.Info.TypeOf(e.X))
		if urlUnboundedFields[e.Sel.Name] && (owner == "URL" || owner == "Request") {
			return true
		}
		return t.taintedExpr(e.X)
	case *ast.IndexExpr:
		return t.taintedExpr(e.X)
	case *ast.SliceExpr:
		return t.taintedExpr(e.X)
	case *ast.StarExpr:
		return t.taintedExpr(e.X)
	case *ast.BinaryExpr:
		// Concatenation keeps the unbounded part unbounded.
		return t.taintedExpr(e.X) || t.taintedExpr(e.Y)
	case *ast.CallExpr:
		return t.taintedCall(e)
	}
	return false
}

// taintedCall classifies call results: unbounded sources are tainted
// outright, string-shaping helpers propagate their arguments' taint,
// conversions pass through, and every other call yields a fresh
// (untainted) value.
func (t *labelTaint) taintedCall(call *ast.CallExpr) bool {
	// Conversions: string(b), MyString(s).
	if tv, ok := t.p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return t.taintedExpr(call.Args[0])
	}
	fn := calleeFunc(t.p.Info, call)
	if fn == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := namedTypeName(sig.Recv().Type())
		switch fn.Name() {
		case "PathValue", "FormValue", "PostFormValue":
			return true // mux wildcards and form fields are client input
		case "Get":
			if recv == "Header" || recv == "Values" {
				return true
			}
		case "ID":
			if recv == "Trace" || recv == "Span" {
				return true // trace ids are unique per request
			}
		case "String":
			if recv == "URL" {
				return true
			}
			return t.taintedExpr(ast.Unparen(call.Fun).(*ast.SelectorExpr).X)
		}
		return false
	}
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	switch pkgPath {
	case "fmt", "strings", "strconv", "path", "path/filepath":
		// Shaping helpers: Sprintf, ToLower, Itoa... the result is as
		// bounded as the inputs.
		for _, arg := range call.Args {
			if t.taintedExpr(arg) {
				return true
			}
		}
		return false
	case "encoding/hex", "encoding/base64":
		return true // digest/id rendering: unbounded by construction
	}
	if fn.Name() == "NewTraceID" {
		return true
	}
	return false
}

func (t *labelTaint) checkSinks(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, recv := vecMethod(t.p.Info, call)
		if fn == nil || fn.Name() != "With" {
			return true
		}
		for _, arg := range call.Args {
			if t.taintedExpr(arg) {
				if t.okLines[t.p.Fset.Position(call.Pos()).Line] {
					return true
				}
				t.p.Reportf(call.Pos(), "unbounded value %s becomes a %s.With label: every distinct value mints a new series (bound it, or audit with %slabel-ok)",
					types.ExprString(arg), recv, directivePrefix)
				return true
			}
		}
		return true
	})
}

// vecMethod matches a method call on CounterVec/HistogramVec and
// returns the callee and receiver type name.
func vecMethod(info *types.Info, call *ast.CallExpr) (*types.Func, string) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, ""
	}
	recv := namedTypeName(sig.Recv().Type())
	if recv != "CounterVec" && recv != "HistogramVec" {
		return nil, ""
	}
	return fn, recv
}

// runObsdisciplineProgram is the With-on-read-path check: no function
// annotated //hennlint:read-path may transitively reach a vec With.
func runObsdisciplineProgram(pp *ProgramPass) error {
	prog := pp.Prog
	// withStep records how a function comes to call With: directly at
	// pos, or through callee via at pos.
	type withStep struct {
		pos  token.Pos
		recv string
		via  *types.Func
	}
	reaches := map[*types.Func]*withStep{}
	prog.Fixpoint(func(n *FuncNode) bool {
		if reaches[n.Fn] != nil {
			return false
		}
		for _, site := range n.Calls {
			if site.Go || site.InClosure {
				continue
			}
			if fn, recv := vecMethod(n.Pkg.Info, site.Call); fn != nil && fn.Name() == "With" {
				reaches[n.Fn] = &withStep{pos: site.Call.Pos(), recv: recv}
				return true
			}
			for _, callee := range site.Callees {
				if s := reaches[callee]; s != nil {
					reaches[n.Fn] = &withStep{pos: site.Call.Pos(), recv: s.recv, via: callee}
					return true
				}
			}
		}
		return false
	})
	for _, n := range prog.Funcs() {
		if !hasDirective(n.Decl.Doc, "read-path") {
			continue
		}
		s := reaches[n.Fn]
		if s == nil {
			continue
		}
		chain := []string{funcDisplayName(n.Decl)}
		seen := map[*types.Func]bool{}
		for via := s.via; via != nil && !seen[via]; {
			seen[via] = true
			chain = append(chain, via.Name())
			next := reaches[via]
			if next == nil {
				break
			}
			via = next.via
		}
		pp.Reportf(s.pos, "read-path function %s reaches %s.With (call path %s): a scrape or stats read must not create series; use Find",
			chain[0], s.recv, strings.Join(chain, " -> "))
	}
	return nil
}
