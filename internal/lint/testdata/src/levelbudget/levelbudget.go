// Package levelbudget is the levelbudget analyzer's test fixture: a
// miniature henn whose shapes mirror the real package by name only. It
// seeds both bug classes — an Apply implementation that consumes more
// levels than LevelsRequired budgets, and a call site sizing its chain
// with a LevelsRequired()+1 margin (the PR 3 off-by-one).
package levelbudget

type Ciphertext struct {
	Level int
	Scale float64
}

type Evaluator struct{}

func (e *Evaluator) Rescale(ct *Ciphertext) (*Ciphertext, error) { return ct, nil }
func (e *Evaluator) MulPlain(ct *Ciphertext, diag []float64) (*Ciphertext, error) {
	return ct, nil
}
func (e *Evaluator) MulConstTargetScale(ct *Ciphertext, c, scale float64) (*Ciphertext, error) {
	return ct, nil
}
func (e *Evaluator) Rotate(ct *Ciphertext, k int) (*Ciphertext, error) { return ct, nil }
func (e *Evaluator) Add(a, b *Ciphertext) (*Ciphertext, error)         { return a, nil }

type PAF struct{ depth int }

func (p *PAF) DepthReLU() int { return p.depth }

type HEEval struct{}

func (h *HEEval) ReLUScaled(p *PAF, ct *Ciphertext, scale float64) (*Ciphertext, error) {
	return ct, nil
}

type Linear struct {
	W [][]float64
	B []float64
}

type Activation struct {
	PAF   *PAF
	Scale float64
}

type MLP struct{ Layers []any }

// LevelsRequired is the budget the Apply implementations are checked
// against: one level per linear layer, DepthReLU+1 per activation.
func (mlp *MLP) LevelsRequired() int {
	total := 0
	for _, l := range mlp.Layers {
		switch v := l.(type) {
		case *Linear:
			total++
		case *Activation:
			total += v.PAF.DepthReLU() + 1
		}
	}
	return total
}

type Context struct {
	Eval *Evaluator
	HE   *HEEval
}

// ApplyLinear drifted: a second rescale consumes two levels against the
// budgeted one.
func (ctx *Context) ApplyLinear(l *Linear, ct *Ciphertext) (*Ciphertext, error) { // want "ApplyLinear consumes 2 level\\(s\\) but LevelsRequired budgets 1"
	out, err := ctx.Eval.MulPlain(ct, l.W[0])
	if err != nil {
		return nil, err
	}
	out, err = ctx.Eval.Rescale(out)
	if err != nil {
		return nil, err
	}
	return ctx.Eval.Rescale(out)
}

// ApplyLinearBSGS matches the budget: rotations and plaintext products
// are level-neutral; the single rescale is the one budgeted level.
func (ctx *Context) ApplyLinearBSGS(l *Linear, ct *Ciphertext) (*Ciphertext, error) {
	rot, err := ctx.Eval.Rotate(ct, 1)
	if err != nil {
		return nil, err
	}
	out, err := ctx.Eval.MulPlain(rot, l.W[0])
	if err != nil {
		return nil, err
	}
	out, err = ctx.Eval.Add(out, rot)
	if err != nil {
		return nil, err
	}
	return ctx.Eval.Rescale(out)
}

// ApplyActivation matches: one normalization level plus ReLUScaled's
// DepthReLU contract equals the budgeted DepthReLU+1.
func (ctx *Context) ApplyActivation(a *Activation, ct *Ciphertext) (*Ciphertext, error) {
	u, err := ctx.Eval.MulConstTargetScale(ct, 1/a.Scale, ct.Scale)
	if err != nil {
		return nil, err
	}
	return ctx.HE.ReLUScaled(a.PAF, u, a.Scale)
}

// ChainLength seeds the PR 3 off-by-one: a +1 margin on the exact
// budget at a sizing call site.
func ChainLength(mlp *MLP) int {
	return mlp.LevelsRequired() + 1 // want "arithmetic on LevelsRequired"
}

// GateDepth seeds the subtraction flavor of the same bug.
func GateDepth(mlp *MLP, maxLevel int) bool {
	return maxLevel-mlp.LevelsRequired() >= 0 // want "arithmetic on LevelsRequired"
}

// ChainLengthExact derives the prime-chain length from a named budget
// variable: allowed, and the idiom the fix uses.
func ChainLengthExact(mlp *MLP) []int {
	levels := mlp.LevelsRequired()
	return make([]int, levels+1)
}
