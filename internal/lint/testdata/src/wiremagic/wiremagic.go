// Package wiremagic is the wiremagic analyzer's test fixture: wire
// readers, unmarshalers with and without magic checks, and allocations
// with and without length bounds.
package wiremagic

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
)

const blobMagic = uint32(0xB10B)

var (
	errBadMagic = errors.New("bad magic")
	errTooBig   = errors.New("implausible length")
)

func readU32(r io.Reader) (uint32, error) {
	var v uint32
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

// Blob checks its magic and bounds its length: fully compliant.
type Blob struct{ words []uint64 }

func (b *Blob) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	magic, err := readU32(r)
	if err != nil {
		return err
	}
	if magic != blobMagic {
		return errBadMagic
	}
	n, err := readU32(r)
	if err != nil {
		return err
	}
	if n > 1<<16 {
		return errTooBig
	}
	b.words = make([]uint64, n)
	return binary.Read(r, binary.LittleEndian, b.words)
}

// Naked never checks a magic constant.
type Naked struct{ words []uint64 }

func (nk *Naked) UnmarshalBinary(data []byte) error { // want "does not check a magic constant"
	r := bytes.NewReader(data)
	count, err := readU32(r)
	if err != nil {
		return err
	}
	if count > 1<<10 {
		return errTooBig
	}
	nk.words = make([]uint64, count)
	return binary.Read(r, binary.LittleEndian, nk.words)
}

// Greedy checks its magic but allocates from an unvalidated length.
type Greedy struct{ words []uint64 }

func (g *Greedy) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	magic, err := readU32(r)
	if err != nil {
		return err
	}
	if magic != blobMagic {
		return errBadMagic
	}
	count, err := readU32(r)
	if err != nil {
		return err
	}
	g.words = make([]uint64, count) // want "unvalidated wire length"
	return binary.Read(r, binary.LittleEndian, g.words)
}

// readWords is a helper, not an UnmarshalBinary method — helpers are
// held to the same length-bounding standard.
func readWords(r io.Reader) ([]uint64, error) {
	count, err := readU32(r)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, count) // want "unvalidated wire length"
	err = binary.Read(r, binary.LittleEndian, out)
	return out, err
}

// readWordsBounded is the compliant helper shape.
func readWordsBounded(r io.Reader) ([]uint64, error) {
	count, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if count > 1<<12 {
		return nil, errTooBig
	}
	out := make([]uint64, count)
	err = binary.Read(r, binary.LittleEndian, out)
	return out, err
}

type header struct {
	Count uint32
}

// readPayload taints through a binary.Read destination struct.
func readPayload(r io.Reader) ([]byte, error) {
	var h header
	if err := binary.Read(r, binary.LittleEndian, &h); err != nil {
		return nil, err
	}
	out := make([]byte, h.Count) // want "unvalidated wire length"
	_, err := io.ReadFull(r, out)
	return out, err
}
