// Package secretflow is the secretflow analyzer's test fixture. The
// types mirror internal/ckks by name only (SecretKey, KeyGenerator,
// Decryptor); the analyzer matches type names, so the fixture stays
// self-contained. Seed-name taint is scoped to the crypto packages and
// exercised by the ckks fixture, not here.
package secretflow

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
)

type Poly struct{ Coeffs []uint64 }

type SecretKey struct {
	Q, P *Poly
	ID   string // key fingerprint: still secret material by containing type
}

func (sk *SecretKey) MarshalBinary() ([]byte, error) { return nil, nil }

type PublicKey struct{ P *Poly }

func (pk *PublicKey) MarshalBinary() ([]byte, error) { return nil, nil }

type KeyGenerator struct{ seed int64 }

func (kg *KeyGenerator) GenSecretKey() *SecretKey { return &SecretKey{} }
func (kg *KeyGenerator) GenPublicKey() *PublicKey { return &PublicKey{} }

type Decryptor struct{ sk *SecretKey }

func NewDecryptor(sk *SecretKey) *Decryptor { return &Decryptor{sk: sk} }

func (d *Decryptor) Decrypt(ct []uint64) []float64 { return nil }

// badLogKey logs the whole secret key.
func badLogKey(kg *KeyGenerator) {
	sk := kg.GenSecretKey()
	log.Printf("sk=%v", sk) // want "secret material sk reaches sink log.Printf"
}

// badPrintPoly leaks through a selection chain: sk → Q → Coeffs.
func badPrintPoly(sk *SecretKey) {
	q := sk.Q
	fmt.Println(q.Coeffs) // want "reaches sink fmt.Println"
}

// badMarshal serializes the key itself.
func badMarshal(sk *SecretKey) ([]byte, error) {
	return sk.MarshalBinary() // want "secret material sk reaches sink MarshalBinary"
}

// badJSON leaks via encoding/json; the raw bytes themselves come back
// from an ordinary call, so only the Marshal line reports.
func badJSON(w http.ResponseWriter, sk *SecretKey) {
	raw, _ := json.Marshal(sk) // want "reaches sink encoding/json.Marshal"
	w.Write(raw)
}

// badResponseWriter leaks through a conversion onto the network.
func badResponseWriter(w http.ResponseWriter, sk *SecretKey) {
	blob := []uint64(sk.Q.Coeffs)
	_ = blob
	fmt.Fprintln(w, blob) // want "reaches sink fmt.Fprintln"
}

// goodAudited is the escape hatch: an audited sink, suppressed by the
// directive on the line above.
func goodAudited(sk *SecretKey) {
	//hennlint:secret-sink-ok audited: debug fingerprint behind a build tag
	fmt.Println(sk.Q)
}

// goodOutput: decrypted values are public by design — the ordinary call
// boundary cuts the decryptor's taint, so printing results stays legal.
func goodOutput(d *Decryptor, ct []uint64) {
	vals := d.Decrypt(ct)
	fmt.Println(vals)
}

// goodPublicKey: the public key is not secret material.
func goodPublicKey(kg *KeyGenerator) ([]byte, error) {
	pk := kg.GenPublicKey()
	return pk.MarshalBinary()
}

// goodSeedOutsideCrypto: seed-named integers are only tainted inside
// the crypto packages; this package is not one (model-weight seeds are
// printable).
func goodSeedOutsideCrypto(seed int64) {
	fmt.Println("demo weights seed", seed)
}

// The telemetry shapes mirror internal/telemetry by name only, like the
// crypto types above: spans and traces are served back over HTTP at
// /v1/traces, metric label values render at /metrics, so attribute and
// label arguments are sinks.

type Span struct{}

func (sp *Span) SetAttr(k, v string) {}

type Trace struct{}

func (tr *Trace) AddSpan(name string, attrs ...string) {}

type Histogram struct{}

type HistogramVec struct{}

func (v *HistogramVec) With(values ...string) *Histogram { return nil }

// badSpanAttr attaches key bytes to a span that /v1/traces serves.
func badSpanAttr(sp *Span, sk *SecretKey) {
	sp.SetAttr("key", sk.ID) // want "reaches sink Span.SetAttr"
}

// badTraceSpan leaks through a span attribute at trace level.
func badTraceSpan(tr *Trace, sk *SecretKey) {
	tr.AddSpan("keygen", sk.ID) // want "reaches sink Trace.AddSpan"
}

// badMetricLabel turns key material into a /metrics label value.
func badMetricLabel(vec *HistogramVec, sk *SecretKey) {
	vec.With(sk.ID) // want "reaches sink HistogramVec.With"
}

// goodSpanAttr: public attributes (model refs, routes) stay legal.
func goodSpanAttr(sp *Span, tr *Trace) {
	sp.SetAttr("model", "demo@1")
	tr.AddSpan("request", "code", "200")
}
