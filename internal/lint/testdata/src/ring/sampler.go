// Package ring is the cryptorand fixture: its directory name places it
// in the analyzer's scope, like the real internal/ring.
package ring

import "math/rand" // want "math/rand imported in a crypto package"

func uniform(seed int64) uint64 {
	return rand.New(rand.NewSource(seed)).Uint64()
}
