package ring

//hennlint:deterministic-sampling fixture for the annotation escape hatch
import "math/rand"

func noise(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).NormFloat64()
}
