// Package mathok imports math/rand outside the crypto packages; the
// cryptorand analyzer must stay silent here.
package mathok

import "math/rand"

func shuffle(n int) []int {
	return rand.Perm(n)
}
