// Package ctcompare is the ctcompare analyzer's test fixture.
package ctcompare

import (
	"bytes"
	"crypto/subtle"
)

type config struct {
	AdminToken string
	secretKey  []byte
}

func eqString(c *config, presented string) bool {
	return c.AdminToken == presented // want "compared with =="
}

func neqString(c *config, presented string) bool {
	return presented != c.AdminToken // want "compared with !="
}

func eqBytes(c *config, presented []byte) bool {
	return bytes.Equal(c.secretKey, presented) // want "compared with bytes.Equal"
}

func eqConverted(userToken string, presented []byte) bool {
	return bytes.Equal([]byte(userToken), presented) // want "compared with bytes.Equal"
}

func localPassword(password, input string) bool {
	return input == password // want "compared with =="
}

// presence checks reveal only whether a secret is configured, not its
// contents — allowed.
func presence(c *config) bool {
	return c.AdminToken != ""
}

// constantTime is the required pattern and must not be flagged.
func constantTime(c *config, presented string) bool {
	return subtle.ConstantTimeCompare([]byte(c.AdminToken), []byte(presented)) == 1
}

// plainCompare has no secret-named operand.
func plainCompare(name, other string) bool {
	return name == other
}
