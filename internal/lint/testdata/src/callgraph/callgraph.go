// Package callgraph is the shared engine's test fixture: direct calls,
// recursion, method values, closures (invoked and stored), go/defer
// context, and interface dispatch.
package callgraph

func leaf() {}

func direct() {
	leaf()
}

// fact is self-recursive: the graph must carry the self edge and the
// fixpoint must still converge.
func fact(n int) int {
	if n <= 1 {
		return 1
	}
	return n * fact(n-1)
}

// mutualA/mutualB are mutually recursive.
func mutualA(n int) {
	if n > 0 {
		mutualB(n - 1)
	}
}

func mutualB(n int) {
	mutualA(n)
}

type worker struct{}

func (w *worker) run()  {}
func (w *worker) stop() {}

// contexts exercises the site flags: a plain call, a deferred call, a
// spawned call, and calls inside invoked and stored literals.
func contexts(w *worker) {
	leaf()
	defer w.stop()
	go w.run()
	func() {
		direct() // immediately invoked: splices into contexts
	}()
	cb := func() {
		fact(3) // stored literal: runs who-knows-when
	}
	_ = cb
}

// references takes function values without calling them: the graph
// records Refs, not Calls.
func references(w *worker) func() {
	h := w.run
	_ = leaf
	return h
}

// closer is the interface for CHA dispatch.
type closer interface {
	Close() error
}

type fileConn struct{}

func (fileConn) Close() error { return nil }

type netConn struct{}

func (*netConn) Close() error { return nil }

// notAcloser has a Close with the wrong shape and must not resolve.
type notAcloser struct{}

func (notAcloser) Close() {}

// dispatch calls through the interface: CHA resolves to every analyzed
// concrete implementation.
func dispatch(c closer) {
	_ = c.Close()
}
