// Package errsink is the errsink analyzer's test fixture: helpers in
// this repo's readU32 idiom, a wire type with the (Un)MarshalBinary
// family, and every way an error can be silently dropped.
package errsink

import (
	"encoding/binary"
	"io"
)

// readU32 is the repo's wire-helper idiom: errsink marks it as a wire
// sink transitively, because it has an error result and calls
// binary.Read.
func readU32(r io.Reader) (uint32, error) {
	var v uint32
	if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
		return 0, err
	}
	return v, nil
}

// loadHeader stacks on readU32: wire-ness reaches it at the fixpoint's
// second round.
func loadHeader(r io.Reader) (uint32, uint32, error) {
	a, err := readU32(r)
	if err != nil {
		return 0, 0, err
	}
	b, err := readU32(r)
	return a, b, err
}

type blob struct{ data []byte }

func (b *blob) UnmarshalBinary(p []byte) error {
	b.data = append(b.data[:0], p...)
	return nil
}

func (b *blob) MarshalBinary() ([]byte, error) {
	return b.data, nil
}

type Encoder struct{ w io.Writer }

func (e *Encoder) Encode(v []byte) error {
	_, err := e.w.Write(v)
	return err
}

func badTupleBlank(r io.Reader) uint32 {
	n, _ := readU32(r) // want "error from errsink.readU32 is assigned to _"
	return n
}

func badTransitive(r io.Reader) (uint32, uint32) {
	a, b, _ := loadHeader(r) // want "error from errsink.loadHeader is assigned to _"
	return a, b
}

func badExprStmt(b *blob, p []byte) {
	b.UnmarshalBinary(p) // want "error from blob.UnmarshalBinary is discarded .results unused."
}

func badBlankAssign(b *blob, p []byte) {
	_ = b.UnmarshalBinary(p) // want "error from blob.UnmarshalBinary is assigned to _"
}

func badMarshal(b *blob) []byte {
	data, _ := b.MarshalBinary() // want "error from blob.MarshalBinary is assigned to _"
	return data
}

func badDefer(e *Encoder, v []byte) {
	defer e.Encode(v) // want "error from Encoder.Encode is discarded by defer"
}

func badGo(e *Encoder, v []byte) {
	go e.Encode(v) // want "error from Encoder.Encode is discarded by go statement"
}

func badDecl(r io.Reader) uint32 {
	var n, _ = readU32(r) // want "error from errsink.readU32 is assigned to _"
	return n
}

// good checks every error it gets.
func good(r io.Reader, b *blob, p []byte) (uint32, error) {
	n, err := readU32(r)
	if err != nil {
		return 0, err
	}
	if err := b.UnmarshalBinary(p); err != nil {
		return 0, err
	}
	return n, nil
}

// mustReadU32 panics instead of returning the error: it has no error
// result, so it is not a wire sink and its callers owe nothing.
func mustReadU32(r io.Reader) uint32 {
	v, err := readU32(r)
	if err != nil {
		panic(err)
	}
	return v
}

func goodMust(r io.Reader) uint32 {
	return mustReadU32(r)
}

// audited is a best-effort path with a written-down justification.
func audited(b *blob, p []byte) {
	//hennlint:err-ok best-effort cache warm: a short read only means a cold start
	_ = b.UnmarshalBinary(p)
}
