// Package lockorderbad carries deliberately malformed lock-order pins;
// the analyzer must diagnose the directives themselves rather than
// guess. Tested by TestLockorderMalformedPins, not via want markers —
// the diagnostics land on the directive comments' own lines, which line
// comments cannot share with a marker.
package lockorderbad

//hennlint:lock-order(a < b < c)

//hennlint:lock-order(missing

//hennlint:lock-order(x.y.z.w < a)

var placeholder int
