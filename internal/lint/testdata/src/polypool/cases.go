package polypool

func balanced(r *Ring) {
	p := r.GetPoly(3)
	use(p)
	r.PutPoly(p)
}

func deferredRelease(r *Ring) {
	p := r.GetPolyRaw(2)
	defer r.PutPoly(p)
	use(p)
}

func earlyReturnLeak(r *Ring, fail bool) error {
	p := r.GetPoly(1)
	if fail {
		return errBad // want "pooled poly p .* is not released on this return path"
	}
	r.PutPoly(p)
	return nil
}

func loopLeak(r *Ring, n int) {
	for i := 0; i < n; i++ {
		p := r.GetPoly(i) // want "acquired in a loop body but not released"
		use(p)
	}
}

func loopBalanced(r *Ring, n int) {
	for i := 0; i < n; i++ {
		p := r.GetPoly(i)
		use(p)
		r.PutPoly(p)
	}
}

func discarded(r *Ring) {
	r.GetPoly(0) // want "is discarded and can never be released"
}

func reassigned(r *Ring) {
	p := r.GetPoly(0)
	p = r.GetPoly(1) // want "reassigned while the previous value"
	r.PutPoly(p)
}

// escapes hands its poly out inside a result slice: ownership moves to
// the caller's structure, not a leak the engine can see.
func escapes(r *Ring) []*Poly {
	p := r.GetPoly(4)
	return []*Poly{p}
}

type accumulator struct{ p *Poly }

func storesField(r *Ring, acc *accumulator) {
	p := r.GetPoly(2)
	acc.p = p
}

// closureRelease hands the release obligation to a worker-pool closure —
// the repo's Submit idiom.
func closureRelease(r *Ring, submit func(func())) {
	p := r.GetPoly(5)
	submit(func() {
		use(p)
		r.PutPoly(p)
	})
}

//hennlint:transfers-ownership the caller owns both returned polys
func freshPair(r *Ring) (*Poly, *Poly) {
	a := r.GetPoly(1)
	b := r.GetPoly(1)
	return a, b
}

func pairedCaller(r *Ring) {
	a, b := freshPair(r)
	use(a)
	use(b)
	r.PutPoly(a)
	r.PutPoly(b)
}

func leakyCaller(r *Ring) {
	a, b := freshPair(r)
	use(a)
	use(b)
	r.PutPoly(a)
} // want "owned result of freshPair b .* is not released"

func returnsUnannotated(r *Ring) *Poly {
	p := r.GetPoly(3)
	return p // want "escapes via return; release it before returning or annotate"
}

func scratchBalanced(r *Ring) uint64 {
	buf := r.GetScratch()
	v := buf[0]
	r.PutScratch(buf)
	return v
}

func scratchLeak(r *Ring, fail bool) error {
	buf := r.GetScratch()
	use(&Poly{level: int(buf[0])})
	if fail {
		return errBad // want "pooled scratch buffer buf .* is not released"
	}
	r.PutScratch(buf)
	return nil
}

func hoistedBalanced(ev *Evaluator, r *Ring) {
	p := r.GetPoly(2)
	h := ev.DecomposeHoisted(p)
	use(p)
	h.Release()
	r.PutPoly(p)
}

func hoistedLeak(ev *Evaluator, r *Ring, fail bool) error {
	p := r.GetPoly(2)
	h := ev.DecomposeHoisted(p)
	use(p)
	if fail {
		r.PutPoly(p)
		return errBad // want "hoisted decomposition h .* is not released"
	}
	h.Release()
	r.PutPoly(p)
	return nil
}
