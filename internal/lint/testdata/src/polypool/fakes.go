// Package polypool is the polypool analyzer's test fixture. The types
// mirror the real internal/ring and internal/ckks shapes by name only —
// the analyzer matches receiver type names, so the fixture stays
// self-contained.
package polypool

import "errors"

type Poly struct{ level int }

type Ring struct{ polys []*Poly }

func (r *Ring) GetPoly(level int) *Poly    { return &Poly{level: level} }
func (r *Ring) GetPolyRaw(level int) *Poly { return &Poly{level: level} }
func (r *Ring) GetScratch() []uint64       { return make([]uint64, 8) }
func (r *Ring) PutPoly(p *Poly)            {}
func (r *Ring) PutScratch(buf []uint64)    {}

type HoistedDecomposition struct{ digits int }

func (h *HoistedDecomposition) Release() {}

type Evaluator struct{ r *Ring }

func (ev *Evaluator) DecomposeHoisted(p *Poly) *HoistedDecomposition {
	return &HoistedDecomposition{digits: p.level}
}

func use(p *Poly) {}

var errBad = errors.New("bad input")
