package lockguard

// dispatch reintroduces the exact PR 7 stats-accounting race: the
// dispatcher claims work under its lock, then the submitted worker
// closure increments the units counter with no lock held at all.
func (d *scheduler) dispatch(p *pool, s *session) {
	d.mu.Lock()
	d.ring = append(d.ring, 1)
	s.inRing = false
	d.mu.Unlock()
	p.Submit(func() {
		d.unitsRun++ // want "unitsRun is guarded by mu but accessed without holding it"
	})
}

// badDirect touches guarded state with no locking anywhere.
func (d *scheduler) badDirect(s *session) {
	d.ring = append(d.ring, 1) // want "ring is guarded by mu but accessed without holding it"
	s.inRing = true            // want "inRing is guarded by scheduler.mu but accessed without holding it"
}

// badAfterUnlock releases too early: the second read is outside the
// critical section.
func (d *scheduler) badAfterUnlock() int {
	d.mu.Lock()
	n := len(d.ring)
	d.mu.Unlock()
	return n + len(d.fifo) // want "fifo is guarded by mu but accessed without holding it"
}

// badWriteUnderRLock holds only the read lock across a map store.
func (t *table) badWriteUnderRLock(k string) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.entries[k] = 1 // want "needs mu held exclusively"
}

// badDelete mutates the guarded map with no lock (delete is a write).
func (t *table) badDelete(k string) {
	delete(t.entries, k) // want "entries is guarded by mu but accessed without holding it"
}

// badEarlyReturn exits a provably locked region with no deferred
// unlock — the early-return-while-locked bug.
func (d *scheduler) badEarlyReturn(n int) int {
	d.mu.Lock()
	if n > len(d.ring) {
		return -1 // want "still held and no unlock is deferred"
	}
	d.mu.Unlock()
	return n
}

// badAnnot declares a guard that does not exist.
type badAnnot struct {
	//hennlint:guarded-by(nope)
	count int // want "guard nope does not name a sibling field"
}
