// Package lockguard is the lockguard analyzer's test fixture. The types
// mirror the real scheduler/session/registry shapes by name only — the
// analyzer matches mutex method receivers and guard annotations, so the
// fixture stays self-contained.
package lockguard

import "sync"

// pool mirrors parallel.Pool's Submit rendezvous shape.
type pool struct{}

func (p *pool) Submit(task func()) bool {
	task()
	return true
}

// scheduler mirrors the dispatcher: a mutex guarding the dispatch
// queues and counters, annotated in all three supported spellings.
type scheduler struct {
	mu sync.Mutex

	// ring is the round-robin dispatch order, guarded by mu.
	ring []int
	//hennlint:guarded-by(mu)
	unitsRun int64
	fifo     []int //hennlint:guarded-by(mu)
}

// session mirrors per-session turn state owned by the scheduler's lock:
// an external guard, named Type.field style.
type session struct {
	//hennlint:guarded-by(scheduler.mu)
	inRing   bool
	windowAt int64 // turn deadline, guarded by scheduler.mu
	jobs     chan int
}

// table mirrors the registry's RWMutex-guarded maps.
type table struct {
	mu sync.RWMutex
	//hennlint:guarded-by(mu)
	entries map[string]int
}
