package lockguard

// This file must stay silent: every access below follows the lock
// discipline, including the paths the flow walker finds hard — defer
// unlocks, RLock/RUnlock asymmetry, one-armed locking at joins,
// closures created inside critical sections, and holds-annotated
// helpers.

// goodLocked is the plain critical-section read-modify-write; holding
// the scheduler's exclusive lock also satisfies the session's external
// scheduler.mu guard.
func (d *scheduler) goodLocked(s *session) {
	d.mu.Lock()
	d.ring = append(d.ring, 1)
	d.unitsRun++
	s.inRing = true
	s.windowAt = 0
	d.mu.Unlock()
}

// goodDefer holds through every return via the deferred unlock.
func (d *scheduler) goodDefer(n int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n > 0 {
		return len(d.ring)
	}
	d.fifo = nil
	return len(d.fifo)
}

// goodShared reads under the read lock only.
func (t *table) goodShared(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.entries[k]
}

// goodUpgrade is the check-then-lock idiom: an RLock/RUnlock probe,
// then an exclusive retry — asymmetric pairs, both correct.
func (t *table) goodUpgrade(k string) {
	t.mu.RLock()
	_, ok := t.entries[k]
	t.mu.RUnlock()
	if !ok {
		t.mu.Lock()
		t.entries[k] = 1
		t.mu.Unlock()
	}
}

// goodMaybe locks on one arm only: the join widens to maybe-held, which
// the analyzer deliberately does not report.
func (d *scheduler) goodMaybe(cond bool) {
	if cond {
		d.mu.Lock()
	}
	d.ring = nil
	if cond {
		d.mu.Unlock()
	}
}

// goodClosureUnderLock creates a closure inside the critical section:
// the closure may run under the lock or long after, so its accesses
// demote to maybe and stay silent.
func (d *scheduler) goodClosureUnderLock() {
	d.mu.Lock()
	snapshot := func() int { return len(d.ring) }
	_ = snapshot()
	d.mu.Unlock()
}

// goodDeferClosure wraps the unlock in a deferred literal, the
// multi-step-teardown idiom.
func (d *scheduler) goodDeferClosure() int {
	d.mu.Lock()
	defer func() {
		d.mu.Unlock()
	}()
	return len(d.ring)
}

// drainLocked assumes the caller's lock, the *Locked helper convention.
//
//hennlint:holds(mu)
func (d *scheduler) drainLocked() {
	d.ring = d.ring[:0]
	d.fifo = nil
}

// eligibleLocked mirrors the scheduler's free-function helper: the
// assumed guard is named by type for functions without a receiver.
//
//hennlint:holds(scheduler.mu)
func eligibleLocked(s *session) bool {
	return s.inRing || s.windowAt == 0
}

// goodCaller exercises both annotated helpers under the real lock.
func (d *scheduler) goodCaller(s *session) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if eligibleLocked(s) {
		d.drainLocked()
	}
}

// goodUnguarded touches only unguarded state with no lock: channels and
// locals are outside the discipline.
func (d *scheduler) goodUnguarded(s *session) {
	select {
	case v := <-s.jobs:
		_ = v
	default:
	}
}
