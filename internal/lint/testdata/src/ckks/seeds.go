// Package ckks is the secretflow analyzer's seed-scope fixture: its
// directory name puts it inside the crypto-package scope (like the real
// internal/ckks), where an integer named seed fully determines the
// secret key and is itself secret material.
package ckks

import "fmt"

type Sampler struct{ state uint64 }

func NewSampler(seed int64) *Sampler { return &Sampler{state: uint64(seed)} }

// badSeedLog leaks a key seed through arithmetic mixing.
func badSeedLog(seed int64) {
	mixed := seed ^ 0x5eed
	fmt.Printf("sampler seed %d\n", mixed) // want "secret material mixed reaches sink fmt.Printf"
}

// badDerivedSeed leaks a derived per-rotation seed.
func badDerivedSeed(baseSeed int64, step int) {
	rotSeed := baseSeed + int64(step)
	fmt.Println(rotSeed) // want "reaches sink fmt.Println"
}

// badSampler prints the sampler state, which is seed-equivalent.
func badSampler(s *Sampler) {
	fmt.Println(s) // want "secret material s reaches sink fmt.Println"
}

// goodCounter: a non-seed integer is not secret, even here.
func goodCounter(n int64) {
	fmt.Println("processed", n)
}
