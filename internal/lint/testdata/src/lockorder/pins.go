package lockorder

import "sync"

// poolA/poolB carry a pinned canonical order; acquiring against it is a
// direct finding even though no second thread exists in the fixture yet.
type poolA struct{ mu sync.Mutex }
type poolB struct{ mu sync.Mutex }

//hennlint:lock-order(poolA.mu < poolB.mu)

func rightWay(a *poolA, b *poolB) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

func wrongWay(a *poolA, b *poolB) {
	b.mu.Lock()
	a.mu.Lock() // want "lockorder.poolA.mu is acquired while lockorder.poolB.mu is held .*pinned lock order is lockorder.poolA.mu < lockorder.poolB.mu"
	a.mu.Unlock()
	b.mu.Unlock()
}

// escA/escB nest both ways, but one direction is audited away, so no
// cycle remains.
type escA struct{ mu sync.Mutex }
type escB struct{ mu sync.Mutex }

func auditedNesting(a *escA, b *escB) {
	a.mu.Lock()
	//hennlint:lock-order-ok init-time wiring: runs before any goroutine starts
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

func reverseNesting(a *escA, b *escB) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}
