package lockorder

import "sync"

// seqA/seqB are only ever locked sequentially — no edges, no findings.
type seqA struct{ mu sync.Mutex }
type seqB struct{ mu sync.Mutex }

func sequential(a *seqA, b *seqB) {
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

// unlockBeforeCall mirrors registry's Deployed.free: the inner lock is
// released before calling into code that takes the other one.
func unlockBeforeCall(a *seqA, b *seqB) {
	a.mu.Lock()
	done := true
	a.mu.Unlock()
	if done {
		lockB(b)
	}
}

func lockB(b *seqB) {
	b.mu.Lock()
	b.mu.Unlock()
}

func lockA(a *seqA) {
	a.mu.Lock()
	a.mu.Unlock()
}

// spawned goroutines run on their own stack: the reverse nesting below
// never happens on one stack, so no seqB -> seqA edge forms.
func spawner(a *seqA, b *seqB) {
	b.mu.Lock()
	go lockA(a)
	go func() {
		lockA(a)
	}()
	b.mu.Unlock()
}

// twoInstances locks two instances of one class: class-level analysis
// cannot order instances, so the self-pair is skipped.
func twoInstances(x, y *seqA) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

// branches converge: each arm pairs its own lock correctly and the held
// set at the join is the union of survivors.
func branchy(a *seqA, b *seqB, cond bool) {
	if cond {
		a.mu.Lock()
		defer a.mu.Unlock()
	} else {
		b.mu.Lock()
		defer b.mu.Unlock()
	}
}

// rw is read-locked sequentially with the others: RLock shares its
// class with Lock and stays silent here too.
type rw struct{ mu sync.RWMutex }

func readers(r *rw, b *seqB) {
	r.mu.RLock()
	r.mu.RUnlock()
	b.mu.Lock()
	b.mu.Unlock()
}
