// Package lockorder is the lockorder analyzer's test fixture. The
// catalog/stack pair reintroduces the classic registry deadlock: the
// deploy path drains stacks while holding the catalog lock, and the
// release path calls back into the catalog while holding a stack lock.
package lockorder

import "sync"

type catalog struct {
	mu     sync.Mutex
	models map[string]*stack
}

type stack struct {
	mu   sync.Mutex
	refs int
}

// deploy holds the catalog lock while draining the superseded stack —
// the stack lock is taken two calls deep, so the edge needs the
// transitive summaries.
func (c *catalog) deploy(s *stack) {
	c.mu.Lock()
	defer c.mu.Unlock()
	drain(s) // want "lock-order cycle .potential deadlock.: lockorder.catalog.mu -> lockorder.stack.mu -> lockorder.catalog.mu"
}

func drain(s *stack) {
	s.retire()
}

func (s *stack) retire() {
	s.mu.Lock()
	s.refs = 0
	s.mu.Unlock()
}

// release holds the stack lock and, on the last reference, calls back
// into the catalog: the opposite nesting, completing the cycle.
func (s *stack) release(c *catalog) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refs--
	if s.refs == 0 {
		c.delist()
	}
}

func (c *catalog) delist() {
	c.mu.Lock()
	delete(c.models, "x")
	c.mu.Unlock()
}
