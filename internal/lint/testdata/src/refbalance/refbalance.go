// Package refbalance is the refbalance analyzer's test fixture: a fake
// Deployed with the registry's Retain/Release reference discipline.
package refbalance

import "errors"

type Deployed struct{ refs int }

func (d *Deployed) Retain()  { d.refs++ }
func (d *Deployed) Release() { d.refs-- }

type session struct{ dep *Deployed }

func work(d *Deployed) {}

var errClosed = errors.New("closed")

func balanced(d *Deployed) {
	d.Retain()
	work(d)
	d.Release()
}

func deferBalanced(d *Deployed) {
	d.Retain()
	defer d.Release()
	work(d)
}

func earlyReturnLeak(d *Deployed, fail bool) error {
	d.Retain()
	if fail {
		return errClosed // want "model reference d .* is not released on this return path"
	}
	d.Release()
	return nil
}

// sessionLeak tracks the reference through a selector path, the shape
// the server's scheduler uses (sess.dep.Retain / sess.dep.Release).
func sessionLeak(sess *session, fail bool) error {
	sess.dep.Retain()
	if fail {
		return errClosed // want "model reference sess.dep"
	}
	sess.dep.Release()
	return nil
}

// closureRelease hands the release to a worker-pool closure; the closure
// owns the obligation.
func closureRelease(sess *session, submit func(func())) {
	sess.dep.Retain()
	submit(func() {
		work(sess.dep)
		sess.dep.Release()
	})
}

//hennlint:transfers-ownership the caller inherits the retained reference
func retained(d *Deployed) *Deployed {
	d.Retain()
	return d
}

func transferCaller(d *Deployed) {
	ref := retained(d)
	work(ref)
	ref.Release()
}

func transferLeak(d *Deployed, fail bool) error {
	ref := retained(d)
	work(ref)
	if fail {
		return errClosed // want "owned result of retained ref"
	}
	ref.Release()
	return nil
}
