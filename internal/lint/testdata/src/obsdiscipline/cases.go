package obsdiscipline

import (
	"fmt"
	"strconv"
)

// --- lifecycle pairing: stage marks ---

// leakStage drops the mark on the error path: the encode stage
// histogram silently loses exactly the failing requests.
func leakStage(tr *Trace, fail bool) {
	mark := tr.StageStart()
	if fail {
		return // want "stage mark mark .acquired at .* is not released on this return path"
	}
	tr.StageEnd("encode", mark)
}

// discardStage never keeps the mark at all.
func discardStage(tr *Trace) {
	tr.StageStart() // want "result of this call .stage mark. is discarded and can never be released"
}

// goodStage is the repo's idiom, including mark reuse across stages.
func goodStage(tr *Trace) {
	mark := tr.StageStart()
	tr.StageEnd("encode", mark)
	mark = tr.StageStart()
	tr.StageEnd("rotate", mark)
}

// --- lifecycle pairing: spans ---

func leakSpan(tr *Trace, cond bool) {
	sp := StartSpan(tr, "apply")
	if cond {
		return // want "trace span sp .acquired at .* is not released on this return path"
	}
	sp.End()
}

func goodSpan(tr *Trace) {
	sp := StartSpan(tr, "apply")
	defer sp.End()
}

// handoff returns the span to its caller under the annotation.
//
//hennlint:transfers-ownership
func handoff(tr *Trace) *Span {
	return StartSpan(tr, "apply")
}

func goodHandoffCaller(tr *Trace) {
	sp := handoff(tr)
	sp.End()
}

// --- label cardinality ---

func badPathLabel(v *CounterVec, r *Request) {
	v.With(r.URL.Path).Inc() // want "unbounded value r.URL.Path becomes a CounterVec.With label"
}

func badPathValue(v *CounterVec, r *Request) {
	model := r.PathValue("model")
	v.With("model", model).Inc() // want "unbounded value model becomes a CounterVec.With label"
}

func badLaundered(h *HistogramVec, r *Request) {
	key := fmt.Sprintf("q-%s", r.FormValue("q"))
	h.With(key).Observe(1) // want "unbounded value key becomes a HistogramVec.With label"
}

func badTraceID(v *CounterVec, tr *Trace) {
	v.With(tr.ID()).Inc() // want "unbounded value tr.ID.. becomes a CounterVec.With label"
}

func badHeader(v *CounterVec, r *Request) {
	v.With(r.Header.Get("X-Session")).Inc() // want "becomes a CounterVec.With label"
}

func goodLabels(v *CounterVec, h *HistogramVec, status int) {
	v.With("route", "encode").Inc()
	v.With("code", strconv.Itoa(status)).Inc()
	h.With("stage").Observe(2)
}

// goodFind is the read-side accessor: unbounded input cannot create a
// series through Find, so it stays legal.
func goodFind(v *CounterVec, r *Request) {
	if c := v.Find(r.URL.Path); c != nil {
		c.Inc()
	}
}

// auditedLabel is deliberately per-model: the deploy allowlist bounds it.
func auditedLabel(v *CounterVec, r *Request) {
	//hennlint:label-ok model names come from the deploy allowlist, bounded by ops
	v.With(r.PathValue("model")).Inc()
}

// --- With on read paths ---

// statsRead is a read path but reaches With two calls deep.
//
//hennlint:read-path
func statsRead(v *CounterVec) int {
	return peek(v) // want "read-path function statsRead reaches CounterVec.With .call path statsRead -> peek."
}

func peek(v *CounterVec) int {
	v.With("route", "stats").Inc()
	return 0
}

// scrapeRead only uses Find: clean.
//
//hennlint:read-path
func scrapeRead(v *CounterVec) {
	_ = v.Find("route", "stats")
}
