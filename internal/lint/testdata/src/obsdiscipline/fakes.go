// Package obsdiscipline is the obsdiscipline analyzer's test fixture.
// The types mirror internal/telemetry and net/http by name only — the
// analyzer matches receiver and result type names, so the fixture stays
// self-contained.
package obsdiscipline

// Time mirrors time.Time closely enough for the stage-mark pairing.
type Time struct{ ns int64 }

// Trace mirrors telemetry.Trace: stage marks and a per-request id.
type Trace struct{ id string }

func (t *Trace) StageStart() Time             { return Time{} }
func (t *Trace) StageEnd(name string, m Time) { _ = name; _ = m }
func (t *Trace) ID() string                   { return t.id }

// Span mirrors telemetry.Span.
type Span struct{ name string }

func (s *Span) End() {}

func StartSpan(t *Trace, name string) *Span { return &Span{name: name} }

// CounterVec/HistogramVec mirror the telemetry vec API: With creates
// the series on first use, Find only looks it up.
type CounterVec struct{}

func (v *CounterVec) With(labels ...string) *Counter { return &Counter{} }
func (v *CounterVec) Find(labels ...string) *Counter { return nil }

type Counter struct{}

func (c *Counter) Inc() {}

type HistogramVec struct{}

func (v *HistogramVec) With(labels ...string) *Histogram { return &Histogram{} }
func (v *HistogramVec) Find(labels ...string) *Histogram { return nil }

type Histogram struct{}

func (h *Histogram) Observe(x float64) {}

// Request/URL/Header mirror net/http's unbounded client inputs.
type Header map[string][]string

func (h Header) Get(k string) string { return "" }

type URL struct {
	Path     string
	RawQuery string
}

type Request struct {
	URL    *URL
	Header Header
}

func (r *Request) PathValue(k string) string { return "" }
func (r *Request) FormValue(k string) string { return "" }
