package lint

import (
	"go/ast"
	"go/types"
)

// Polypool checks that every pooled polynomial or scratch buffer drawn
// from an internal/ring pool is returned on every path.
//
// Acquire/release pairs:
//
//	(*ring.Ring).GetPoly / GetPolyRaw  →  (*ring.Ring).PutPoly
//	(*ring.Ring).GetScratch            →  (*ring.Ring).PutScratch
//	(*ckks.Evaluator).DecomposeHoisted →  (*ckks.HoistedDecomposition).Release
//
// A function may hand an acquired resource to its caller through a
// return value only when annotated //hennlint:transfers-ownership; calls
// to such annotated functions are themselves treated as acquires in the
// caller. Matching is by receiver type name (Ring, Evaluator,
// HoistedDecomposition), which keeps the analyzer's test fixtures
// self-contained.
var Polypool = &Analyzer{
	Name: "polypool",
	Doc:  "pooled ring polynomials and scratch buffers must be released on every path",
	Run:  runPolypool,
}

var polypoolAcquires = []struct {
	recv, method, what string
}{
	{"Ring", "GetPoly", "pooled poly"},
	{"Ring", "GetPolyRaw", "pooled poly"},
	{"Ring", "GetScratch", "pooled scratch buffer"},
	{"Evaluator", "DecomposeHoisted", "hoisted decomposition"},
}

func runPolypool(p *Pass) error {
	spec := &pairSpec{
		annotation: "transfers-ownership",
		resultType: isPoolResource,
		acquire: func(p *Pass, call *ast.CallExpr) (string, bool) {
			for _, m := range polypoolAcquires {
				if _, ok := methodCall(p.Info, call, m.recv, m.method); ok {
					return m.what, true
				}
			}
			return "", false
		},
		release: func(p *Pass, call *ast.CallExpr) (ast.Expr, bool) {
			if _, ok := methodCall(p.Info, call, "Ring", "PutPoly"); ok && len(call.Args) == 1 {
				return call.Args[0], true
			}
			if _, ok := methodCall(p.Info, call, "Ring", "PutScratch"); ok && len(call.Args) == 1 {
				return call.Args[0], true
			}
			if recv, ok := methodCall(p.Info, call, "HoistedDecomposition", "Release"); ok {
				return recv, true
			}
			return nil, false
		},
	}
	runPairing(p, spec)
	return nil
}

// isPoolResource matches the types polypool tracks: pooled polynomials,
// hoisted decompositions, and []uint64 scratch buffers.
func isPoolResource(t types.Type) bool {
	switch namedTypeName(t) {
	case "Poly", "HoistedDecomposition":
		return true
	}
	if s, ok := t.Underlying().(*types.Slice); ok {
		if b, ok := s.Elem().(*types.Basic); ok && b.Kind() == types.Uint64 {
			return true
		}
	}
	return false
}
