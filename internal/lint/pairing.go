package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The acquire/release pairing engine shared by polypool and refbalance.
//
// It is a forward abstract interpretation over the AST of each function
// body (declared functions and function literals are analyzed as
// independent scopes). A resource enters the tracked set when an acquire
// call's result is bound to a local identifier; it leaves it when a
// matching release call runs, when a matching release is deferred (defers
// run on every return and on panic, so a deferred release covers the rest
// of the function), or when ownership demonstrably leaves the function —
// stored into a field, slice, map or composite literal, sent on a
// channel, captured by a closure that releases it, or returned by a
// function annotated //hennlint:transfers-ownership.
//
// At every return (explicit or fall-off-the-end) and at control-flow
// joins, the engine checks the tracked set: a resource that is live on
// the path being checked is a leak. Joins widen disagreeing states to
// "maybe released", which is deliberately not reported — the engine
// under-approximates at merges so it can stay silent on correct code; a
// resource released on only one arm of a branch will still be caught on
// any path that reaches a return while it is provably live.

// pairSpec configures one acquire/release discipline.
type pairSpec struct {
	// acquire reports whether call hands its caller a resource (as its
	// result) that must be released, and a human noun for it
	// ("pooled poly"). May be nil.
	acquire func(p *Pass, call *ast.CallExpr) (what string, ok bool)
	// acquireRecv matches acquire calls whose tracked resource is the
	// call's receiver rather than its result (registry Retain). May be
	// nil.
	acquireRecv func(p *Pass, call *ast.CallExpr) (recv ast.Expr, what string, ok bool)
	// release reports the expression whose resource call releases.
	release func(p *Pass, call *ast.CallExpr) (released ast.Expr, ok bool)
	// annotation names the hennlint directive that lets a function
	// transfer an acquired resource to its caller via a return value.
	annotation string
	// resultType reports whether a value of type t is a resource under
	// this spec. It scopes the shared transfers-ownership annotation: an
	// annotated function only acts as an acquirer for the specs whose
	// resource types it returns (keySwitch hands out pooled polys, not
	// model references), and binding a multi-result acquire only tracks
	// the results that are resources (not the trailing error).
	resultType func(t types.Type) bool
}

type resState int8

const (
	stLive resState = iota
	stMaybe
	stReleased
)

type resource struct {
	name  string // identifier or receiver path, for messages
	what  string // noun from the acquire matcher
	state resState
	pos   token.Pos // acquire site
}

// flowState maps resource keys (see exprKey) to their current state.
type flowState map[string]*resource

func (st flowState) clone() flowState {
	out := make(flowState, len(st))
	for k, v := range st {
		c := *v
		out[k] = &c
	}
	return out
}

// merge joins two branch states in place into st.
func (st flowState) merge(other flowState) {
	for k, o := range other {
		cur, ok := st[k]
		if !ok {
			c := *o
			st[k] = &c
			continue
		}
		if cur.state != o.state {
			// live ⊔ released = maybe; anything ⊔ maybe = maybe.
			cur.state = stMaybe
		}
	}
	// Keys only in st keep their state: a resource acquired on one arm
	// stays live into the join (the other arm never knew it).
}

// runPairing applies spec to every function-shaped body in the package.
func runPairing(p *Pass, spec *pairSpec) {
	// Same-package functions annotated transfers-ownership also act as
	// acquirers: their callers own the returned resources.
	annotated := map[*types.Func]bool{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasDirective(fd.Doc, spec.annotation) {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if spec.resultType != nil && !returnsResource(fn, spec.resultType) {
				continue
			}
			annotated[fn] = true
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					a := &pairAnalysis{
						pass: p, spec: spec, annotated: annotated,
						fnPos: fn.Pos(), fnEnd: fn.End(),
						transfers: hasDirective(fn.Doc, spec.annotation),
					}
					a.run(fn.Body)
				}
			case *ast.FuncLit:
				// Literals cannot carry doc annotations; a literal that
				// needs to hand resources out should assign them to
				// captured state, which the engine treats as an escape.
				a := &pairAnalysis{
					pass: p, spec: spec, annotated: annotated,
					fnPos: fn.Pos(), fnEnd: fn.End(),
				}
				a.run(fn.Body)
			}
			return true
		})
	}
}

type pairAnalysis struct {
	pass      *Pass
	spec      *pairSpec
	annotated map[*types.Func]bool
	fnPos     token.Pos
	fnEnd     token.Pos
	transfers bool // function is annotated transfers-ownership
}

func (a *pairAnalysis) run(body *ast.BlockStmt) {
	st := flowState{}
	terminated := a.walkStmts(body.List, st)
	if !terminated {
		a.checkExit(st, body.End(), nil)
	}
}

// isAcquire matches direct acquire calls and calls to same-package
// annotated functions.
func (a *pairAnalysis) isAcquire(call *ast.CallExpr) (string, bool) {
	if a.spec.acquire != nil {
		if what, ok := a.spec.acquire(a.pass, call); ok {
			return what, true
		}
	}
	if fn := calleeFunc(a.pass.Info, call); fn != nil && a.annotated[fn] {
		return "owned result of " + fn.Name(), true
	}
	return "", false
}

// walkStmts runs the statement list, returning whether every path
// through it terminates (returns, panics, or branches away).
func (a *pairAnalysis) walkStmts(stmts []ast.Stmt, st flowState) bool {
	for _, s := range stmts {
		if a.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (a *pairAnalysis) walkStmt(s ast.Stmt, st flowState) (terminated bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return a.walkStmts(s.List, st)

	case *ast.AssignStmt:
		a.handleAssign(s, st)

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				a.handleBind(identsAsExprs(vs.Names), vs.Values, token.DEFINE, st)
			}
		}

	case *ast.ExprStmt:
		a.handleExpr(s.X, st, false)

	case *ast.DeferStmt:
		a.handleCall(s.Call, st, true)

	case *ast.GoStmt:
		a.handleCall(s.Call, st, true)

	case *ast.SendStmt:
		// Sending a tracked resource on a channel transfers ownership.
		a.escapeIdents(s.Value, st)
		a.scanExpr(s.Chan, st)

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			a.scanExpr(r, st)
		}
		a.checkExit(st, s.Pos(), s.Results)
		return true

	case *ast.BranchStmt:
		// break/continue/goto: stop tracking this path conservatively.
		return true

	case *ast.IfStmt:
		if s.Init != nil {
			a.walkStmt(s.Init, st)
		}
		a.scanExpr(s.Cond, st)
		thenSt := st.clone()
		thenTerm := a.walkStmt(s.Body, thenSt)
		if s.Else != nil {
			elseSt := st.clone()
			elseTerm := a.walkStmt(s.Else, elseSt)
			switch {
			case thenTerm && elseTerm:
				return true
			case thenTerm:
				replace(st, elseSt)
			case elseTerm:
				replace(st, thenSt)
			default:
				replace(st, thenSt)
				st.merge(elseSt)
			}
			return false
		}
		if !thenTerm {
			st.merge(thenSt)
		}

	case *ast.ForStmt:
		if s.Init != nil {
			a.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			a.scanExpr(s.Cond, st)
		}
		bodySt := st.clone()
		bodyTerm := a.walkStmt(s.Body, bodySt)
		if s.Post != nil {
			a.walkStmt(s.Post, bodySt)
		}
		a.checkLoopBody(st, bodySt, s.Body)
		if !bodyTerm {
			st.merge(bodySt)
		}

	case *ast.RangeStmt:
		a.scanExpr(s.X, st)
		bodySt := st.clone()
		bodyTerm := a.walkStmt(s.Body, bodySt)
		a.checkLoopBody(st, bodySt, s.Body)
		if !bodyTerm {
			st.merge(bodySt)
		}

	case *ast.SwitchStmt:
		if s.Init != nil {
			a.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			a.scanExpr(s.Tag, st)
		}
		a.walkCases(s.Body, st)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			a.walkStmt(s.Init, st)
		}
		a.walkCases(s.Body, st)

	case *ast.SelectStmt:
		a.walkCases(s.Body, st)

	case *ast.LabeledStmt:
		return a.walkStmt(s.Stmt, st)

	case *ast.IncDecStmt, *ast.EmptyStmt:
		// no resource effects
	}
	return false
}

// replace overwrites dst's contents with src's.
func replace(dst, src flowState) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// walkCases handles switch/type-switch/select bodies: every clause runs
// on a copy of the incoming state and the survivors merge, together with
// the fall-past path when no default clause exists.
func (a *pairAnalysis) walkCases(body *ast.BlockStmt, st flowState) {
	var out []flowState
	hasDefault := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				a.scanExpr(e, st)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			stmts = c.Body
		}
		caseSt := st.clone()
		if c, ok := c.(*ast.CommClause); ok && c.Comm != nil {
			a.walkStmt(c.Comm, caseSt)
		}
		if !a.walkStmts(stmts, caseSt) {
			out = append(out, caseSt)
		}
	}
	if len(out) == 0 {
		// Every clause terminated. Without a default the zero-case path
		// still falls through with the incoming state unchanged; with
		// one, code after the switch is unreachable either way.
		return
	}
	first := out[0]
	for _, o := range out[1:] {
		first.merge(o)
	}
	if !hasDefault {
		first.merge(st)
	}
	replace(st, first)
}

// checkLoopBody reports resources acquired inside a loop body that are
// still provably live when the iteration ends — they leak once per
// iteration and cannot be released after the loop (their scope is gone).
func (a *pairAnalysis) checkLoopBody(pre, post flowState, body *ast.BlockStmt) {
	for k, r := range post {
		if _, existed := pre[k]; existed || r.state != stLive {
			continue
		}
		// Only flag resources bound to identifiers declared inside the
		// body; anything else already escaped tracking.
		if r.pos >= body.Pos() && r.pos < body.End() {
			a.pass.Reportf(r.pos, "%s %s is acquired in a loop body but not released by the end of the iteration", r.what, r.name)
			r.state = stReleased // one report per resource
		}
	}
}

// checkExit reports every provably-live resource at a return site (or at
// the end of a function body). A resource referenced by the return
// values is an ownership transfer when the function carries the
// annotation, a diagnostic otherwise.
func (a *pairAnalysis) checkExit(st flowState, pos token.Pos, results []ast.Expr) {
	returned := map[string]bool{}
	for _, r := range results {
		ast.Inspect(r, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				returned[exprKey(a.pass.Info, id)] = true
			}
			return true
		})
	}
	for k, r := range st {
		if r.state != stLive {
			continue
		}
		if returned[k] {
			if a.transfers {
				r.state = stReleased
				continue
			}
			a.pass.Reportf(pos, "%s %s escapes via return; release it before returning or annotate the function with %s%s",
				r.what, r.name, directivePrefix, a.spec.annotation)
			r.state = stReleased
			continue
		}
		a.pass.Reportf(pos, "%s %s (acquired at %s) is not released on this return path",
			r.what, r.name, a.pass.Fset.Position(r.pos))
		r.state = stReleased
	}
}

// handleAssign processes acquires bound to identifiers, escapes through
// stores, and release-bearing closures on the right-hand side.
func (a *pairAnalysis) handleAssign(s *ast.AssignStmt, st flowState) {
	a.handleBind(s.Lhs, s.Rhs, s.Tok, st)
}

func (a *pairAnalysis) handleBind(lhs, rhs []ast.Expr, tok token.Token, st flowState) {
	// v, w := acquire() — one multi-result acquire call.
	if len(rhs) == 1 && len(lhs) >= 1 {
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			if what, ok := a.isAcquire(call); ok {
				for _, l := range lhs {
					a.bindAcquire(l, what, call.Pos(), tok, st)
				}
				a.scanCallArgs(call, st)
				return
			}
		}
	}
	if len(lhs) == len(rhs) {
		for i := range lhs {
			if call, ok := ast.Unparen(rhs[i]).(*ast.CallExpr); ok {
				if what, ok := a.isAcquire(call); ok {
					a.bindAcquire(lhs[i], what, call.Pos(), tok, st)
					a.scanCallArgs(call, st)
					continue
				}
			}
			a.storeInto(lhs[i], rhs[i], st)
			a.scanExpr(rhs[i], st)
		}
		return
	}
	for _, r := range rhs {
		a.scanExpr(r, st)
	}
	for i := range lhs {
		a.storeInto(lhs[i], nil, st)
	}
}

// returnsResource reports whether any of fn's results is a resource
// under the spec's type predicate.
func returnsResource(fn *types.Func, isResource func(types.Type) bool) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isResource(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// bindAcquire starts tracking an acquire result bound to l.
func (a *pairAnalysis) bindAcquire(l ast.Expr, what string, pos token.Pos, tok token.Token, st flowState) {
	id, ok := ast.Unparen(l).(*ast.Ident)
	if !ok || id.Name == "_" {
		// Stored straight into a field, index or map slot: ownership
		// moves to that structure; the engine stops tracking.
		return
	}
	if a.spec.resultType != nil {
		// Only track the results that are resources (skip the error of a
		// (resource, error) acquire).
		obj := a.pass.Info.ObjectOf(id)
		if obj == nil || !a.spec.resultType(obj.Type()) {
			return
		}
	}
	if tok == token.ASSIGN {
		// Plain `=` to a variable declared outside this function (a
		// captured or package-level variable) moves ownership out.
		if obj := a.pass.Info.ObjectOf(id); obj != nil && (obj.Pos() < a.fnPos || obj.Pos() >= a.fnEnd) {
			return
		}
	}
	key := exprKey(a.pass.Info, id)
	if prev, ok := st[key]; ok && prev.state == stLive {
		a.pass.Reportf(pos, "%s %s is reassigned while the previous value (acquired at %s) is unreleased",
			what, id.Name, a.pass.Fset.Position(prev.pos))
	}
	st[key] = &resource{name: id.Name, what: what, state: stLive, pos: pos}
}

// storeInto handles the left side of an assignment: writing a tracked
// resource into anything but a plain local identifier is an escape, and
// overwriting a live tracked identifier is a leak of the old value.
func (a *pairAnalysis) storeInto(l, r ast.Expr, st flowState) {
	if r != nil {
		if id, ok := ast.Unparen(r).(*ast.Ident); ok {
			key := exprKey(a.pass.Info, id)
			if res, tracked := st[key]; tracked && res.state == stLive {
				if _, lhsIdent := ast.Unparen(l).(*ast.Ident); !lhsIdent {
					res.state = stReleased // escaped into a structure
				}
			}
		}
	}
	if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name != "_" {
		key := exprKey(a.pass.Info, id)
		if res, tracked := st[key]; tracked && res.state == stLive && r != nil {
			// Only report when the overwrite is a fresh value, not a
			// self-update (v = append-style rebinding of same resource).
			if rid, ok := ast.Unparen(r).(*ast.Ident); !ok || exprKey(a.pass.Info, rid) != key {
				a.pass.Reportf(l.Pos(), "%s %s (acquired at %s) is overwritten while unreleased",
					res.what, res.name, a.pass.Fset.Position(res.pos))
				res.state = stReleased
			}
		}
	}
}

// handleExpr processes a statement-level expression.
func (a *pairAnalysis) handleExpr(e ast.Expr, st flowState, deferred bool) {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		a.handleCall(call, st, deferred)
		return
	}
	a.scanExpr(e, st)
}

// handleCall processes a statement-level (or deferred) call: a release
// updates state, a bare acquire is an immediate leak, and anything else
// is scanned for escapes and release-bearing closures.
func (a *pairAnalysis) handleCall(call *ast.CallExpr, st flowState, deferred bool) {
	if released, ok := a.spec.release(a.pass, call); ok {
		key := exprKey(a.pass.Info, released)
		if res, tracked := st[key]; tracked {
			res.state = stReleased
		}
		return
	}
	if a.spec.acquireRecv != nil && !deferred {
		if recv, what, ok := a.spec.acquireRecv(a.pass, call); ok {
			key := exprKey(a.pass.Info, recv)
			// A re-Retain on an already-live receiver folds into one
			// obligation; the engine does not count references.
			st[key] = &resource{name: types.ExprString(recv), what: what, state: stLive, pos: call.Pos()}
			a.scanCallArgs(call, st)
			return
		}
	}
	if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// defer func() { ... release(v) ... }() and friends.
		a.scanClosure(fl, st)
		a.scanCallArgs(call, st)
		return
	}
	if what, ok := a.isAcquire(call); ok && !deferred {
		a.pass.Reportf(call.Pos(), "result of this call (%s) is discarded and can never be released", what)
		return
	}
	a.scanCallArgs(call, st)
}

func (a *pairAnalysis) scanCallArgs(call *ast.CallExpr, st flowState) {
	for _, arg := range call.Args {
		a.scanExpr(arg, st)
	}
}

// scanExpr looks inside an expression for ownership transfers the flow
// walk would otherwise miss: tracked resources placed in composite
// literals, addresses of tracked resources, and closures that release a
// tracked resource (the closure now owns the release obligation —
// passing it to a worker pool or deferring it are the repo's idioms).
// Plain call arguments are borrows and do not untrack.
func (a *pairAnalysis) scanExpr(e ast.Expr, st flowState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			a.scanClosure(n, st)
			return false
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				a.escapeIdents(elt, st)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				a.escapeIdents(n.X, st)
			}
		}
		return true
	})
}

// escapeIdents marks a tracked identifier appearing directly in e as
// ownership-transferred.
func (a *pairAnalysis) escapeIdents(e ast.Expr, st flowState) {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if res, tracked := st[exprKey(a.pass.Info, id)]; tracked && res.state == stLive {
			res.state = stReleased
		}
		return
	}
	// Nested composites (e.g. a slice literal of structs).
	if cl, ok := ast.Unparen(e).(*ast.CompositeLit); ok {
		for _, elt := range cl.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			a.escapeIdents(elt, st)
		}
	}
}

// scanClosure marks every outer tracked resource the closure releases as
// released: once the closure exists, it owns those release obligations
// (the repo passes such closures to worker pools or defers them).
func (a *pairAnalysis) scanClosure(fl *ast.FuncLit, st flowState) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if released, ok := a.spec.release(a.pass, call); ok {
			if res, tracked := st[exprKey(a.pass.Info, released)]; tracked {
				res.state = stReleased
			}
		}
		return true
	})
}

func identsAsExprs(ids []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(ids))
	for i, id := range ids {
		out[i] = id
	}
	return out
}
