package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` in dir over the given
// patterns, returning every listed package (targets and dependencies).
// The -export flag makes the go tool compile dependencies into the build
// cache and report their export-data files, which is what lets the
// type-checker resolve imports entirely offline.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-deps", "-export", "-e",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errs bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errs
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, errs.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter satisfies go/types importing by reading the compiler
// export data `go list -export` reported for each dependency.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Load lists the patterns from dir with the go tool, then parses and
// type-checks every matched package (dependencies are resolved from
// compiled export data, so no network or vendored tooling is needed).
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		exports[p.ImportPath] = p.Export
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)

	var pkgs []*Package
	for _, p := range listed {
		if p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  p.ImportPath,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses and type-checks the .go files of one directory that is
// not part of the module build (an analyzer test fixture under testdata).
// asPath becomes the package's import path for scope-sensitive analyzers.
// The fixture may import standard-library packages; their export data is
// resolved through `go list` exactly like Load does.
func LoadDir(dir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil {
				importSet[path] = true
			}
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		patterns := make([]string, 0, len(importSet))
		for path := range importSet {
			patterns = append(patterns, path)
		}
		sort.Strings(patterns)
		listed, err := goList(dir, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			exports[p.ImportPath] = p.Export
		}
	}
	info := newInfo()
	conf := types.Config{Importer: exportImporter(fset, exports)}
	tpkg, err := conf.Check(asPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", dir, err)
	}
	return &Package{Path: asPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
