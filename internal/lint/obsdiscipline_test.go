package lint_test

import (
	"testing"

	"github.com/efficientfhe/smartpaf/internal/lint"
	"github.com/efficientfhe/smartpaf/internal/lint/linttest"
)

func TestObsdiscipline(t *testing.T) {
	linttest.Run(t, lint.Obsdiscipline, "obsdiscipline")
}
