package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Errsink finds discarded wire-decode and wire-I/O errors: a truncated
// read that is ignored becomes a zero length, a silently failed write
// becomes a corrupt artifact, and both bypass every bound wiremagic
// proves. The base sink set is encoding/binary.Read/Write, io.ReadFull,
// the (Un)MarshalBinary/Gob method family, and Encoder.Encode /
// Decoder.Decode; on top of that, the shared call graph propagates
// wire-ness through this repo's helper idiom — a function with an error
// result that transitively performs wire I/O (readU32, writeU32,
// writePoly and friends) is itself a sink, computed to a fixpoint so
// helpers stacked on helpers still count. A call whose error result is
// ignored — `_ =`, a blank in the tuple position, a bare expression
// statement, or a defer/go that drops the results — is reported unless
// the line (or the line above) carries //hennlint:err-ok with a
// justification.
var Errsink = &Analyzer{
	Name:       "errsink",
	Doc:        "wire-decode and wire-I/O errors must not be silently discarded",
	RunProgram: runErrsink,
}

// errsinkMethodFamily are method names that serialize or deserialize
// their receiver over the wire.
var errsinkMethodFamily = map[string]bool{
	"UnmarshalBinary": true,
	"MarshalBinary":   true,
	"AppendBinary":    true,
	"GobEncode":       true,
	"GobDecode":       true,
}

func runErrsink(pp *ProgramPass) error {
	prog := pp.Prog
	// wire marks analyzed functions that transitively perform wire I/O
	// and surface an error result.
	wire := map[*types.Func]bool{}
	prog.Fixpoint(func(n *FuncNode) bool {
		if wire[n.Fn] || !hasErrorResult(n.Fn) {
			return false
		}
		for _, site := range n.Calls {
			if site.Go || site.InClosure {
				continue
			}
			for _, callee := range site.Callees {
				if isWireBase(callee) || wire[callee] {
					wire[n.Fn] = true
					return true
				}
			}
		}
		return false
	})

	isWire := func(call *ast.CallExpr, info *types.Info) (*types.Func, bool) {
		fn := calleeFunc(info, call)
		if fn == nil || !hasErrorResult(fn) {
			return nil, false
		}
		if isWireBase(fn) || wire[fn] {
			return fn, true
		}
		return nil, false
	}

	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			if strings.HasSuffix(prog.Fset.Position(f.Pos()).Filename, "_test.go") {
				continue
			}
			ok := directiveLines(prog.Fset, f, "err-ok")
			report := func(call *ast.CallExpr, fn *types.Func, how string) {
				if ok[prog.Fset.Position(call.Pos()).Line] {
					return
				}
				pp.Reportf(call.Pos(), "error from %s is %s; wire-decode and I/O errors must be handled (audit with %serr-ok if discarding is intended)",
					wireCallName(fn), how, directivePrefix)
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, isCall := ast.Unparen(n.X).(*ast.CallExpr); isCall {
						if fn, w := isWire(call, pkg.Info); w {
							report(call, fn, "discarded (results unused)")
						}
					}
				case *ast.DeferStmt:
					if fn, w := isWire(n.Call, pkg.Info); w {
						report(n.Call, fn, "discarded by defer")
					}
				case *ast.GoStmt:
					if fn, w := isWire(n.Call, pkg.Info); w {
						report(n.Call, fn, "discarded by go statement")
					}
				case *ast.AssignStmt:
					checkErrsinkAssign(pkg.Info, n.Lhs, n.Rhs, isWire, report)
				case *ast.DeclStmt:
					if gd, isGen := n.Decl.(*ast.GenDecl); isGen {
						for _, spec := range gd.Specs {
							if vs, isVal := spec.(*ast.ValueSpec); isVal && len(vs.Values) > 0 {
								checkErrsinkAssign(pkg.Info, identsAsExprs(vs.Names), vs.Values, isWire, report)
							}
						}
					}
				}
				return true
			})
		}
	}
	return nil
}

// checkErrsinkAssign reports wire calls whose error-typed results land
// in blank identifiers.
func checkErrsinkAssign(info *types.Info, lhs, rhs []ast.Expr,
	isWire func(*ast.CallExpr, *types.Info) (*types.Func, bool),
	report func(*ast.CallExpr, *types.Func, string)) {
	// v, _ := call() — one multi-result call.
	if len(rhs) == 1 && len(lhs) > 1 {
		call, isCall := ast.Unparen(rhs[0]).(*ast.CallExpr)
		if !isCall {
			return
		}
		fn, w := isWire(call, info)
		if !w {
			return
		}
		sig, isSig := fn.Type().(*types.Signature)
		if !isSig || sig.Results().Len() != len(lhs) {
			return
		}
		for i := 0; i < len(lhs); i++ {
			if isErrorType(sig.Results().At(i).Type()) && isBlank(lhs[i]) {
				report(call, fn, "assigned to _")
				return
			}
		}
		return
	}
	if len(lhs) != len(rhs) {
		return
	}
	for i := range rhs {
		call, isCall := ast.Unparen(rhs[i]).(*ast.CallExpr)
		if !isCall || !isBlank(lhs[i]) {
			continue
		}
		fn, w := isWire(call, info)
		if !w {
			continue
		}
		sig, isSig := fn.Type().(*types.Signature)
		if isSig && sig.Results().Len() == 1 && isErrorType(sig.Results().At(0).Type()) {
			report(call, fn, "assigned to _")
		}
	}
}

// isWireBase matches the built-in wire sink set.
func isWireBase(fn *types.Func) bool {
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	switch {
	case pkgPath == "encoding/binary" && (fn.Name() == "Read" || fn.Name() == "Write"):
		return true
	case pkgPath == "io" && fn.Name() == "ReadFull":
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if errsinkMethodFamily[fn.Name()] {
		return true
	}
	recv := namedTypeName(sig.Recv().Type())
	return (fn.Name() == "Encode" && recv == "Encoder") || (fn.Name() == "Decode" && recv == "Decoder")
}

// wireCallName renders Type.Method or pkg.Func for messages.
func wireCallName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if tn := namedTypeName(sig.Recv().Type()); tn != "" {
			return tn + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil && fn.Pkg().Name() != "" {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

func hasErrorResult(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}
