package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// Levelbudget checks CKKS level accounting statically, so the PR 3
// class of bug — the serving layer demanding LevelsRequired()+1 levels
// while the pipeline consumes exactly LevelsRequired() — is a lint
// error instead of an e2e discovery. It has two rules:
//
// Rule 1 (every package): no arithmetic directly on a LevelsRequired()
// call result. The budget is exact by construction; adding or
// subtracting a margin at a call site either wastes a prime in the
// modulus chain or rejects valid ciphertexts at the serving boundary.
// Derived quantities (chain length = budget+1 primes) must go through a
// named intermediate, which both documents the derivation and keeps the
// boundary comparisons exact.
//
// Rule 2 (packages declaring LevelsRequired): abstract interpretation
// of level effects over the layer implementations. The analyzer reads
// the per-layer-kind budget out of LevelsRequired's type switch
// (total++ → 1 level, total += v.PAF.DepthReLU() + 1 → symbolic
// DepthReLU + 1), then sums the level consumption of every
// Apply<Kind>* function body under the evaluator's cost model —
// Rescale, MulRelinRescale and MulConstTargetScale each consume one
// level; MulPlain, MulConst, MulRelin, Add, rotations and hoisted
// rotations are level-neutral (scale growth only); ReLUScaled consumes
// DepthReLU levels by contract — and reports any kind whose
// implementation disagrees with its budget.
var Levelbudget = &Analyzer{
	Name: "levelbudget",
	Doc:  "CKKS level consumption must match the LevelsRequired budget exactly",
	Run:  runLevelbudget,
}

// levelCost is an abstract level count: a constant plus symbolic terms
// (multiples of named depth calls like DepthReLU).
type levelCost struct {
	c   int
	sym map[string]int
}

func (lc *levelCost) add(o levelCost) {
	lc.c += o.c
	for k, v := range o.sym {
		if lc.sym == nil {
			lc.sym = map[string]int{}
		}
		lc.sym[k] += v
	}
}

func (lc levelCost) equal(o levelCost) bool {
	if lc.c != o.c {
		return false
	}
	keys := map[string]bool{}
	for k := range lc.sym {
		keys[k] = true
	}
	for k := range o.sym {
		keys[k] = true
	}
	for k := range keys {
		if lc.sym[k] != o.sym[k] {
			return false
		}
	}
	return true
}

func (lc levelCost) String() string {
	terms := make([]string, 0, len(lc.sym)+1)
	for k, v := range lc.sym {
		switch {
		case v == 1:
			terms = append(terms, k)
		case v != 0:
			terms = append(terms, strconv.Itoa(v)+"·"+k)
		}
	}
	sort.Strings(terms)
	if lc.c != 0 || len(terms) == 0 {
		terms = append(terms, strconv.Itoa(lc.c))
	}
	return strings.Join(terms, "+")
}

// levelConsumers maps evaluator method names to the levels one call
// consumes. Everything absent is level-neutral (additions, plaintext
// and relinearized products before rescaling, rotations, hoisted
// decompositions, DropLevel bookkeeping).
var levelConsumers = map[string]levelCost{
	"Rescale":             {c: 1},
	"MulRelinRescale":     {c: 1},
	"MulConstTargetScale": {c: 1},
}

// symbolicConsumers consume a symbolic number of levels: ReLUScaled's
// contract is DepthReLU() levels total (the composite sign chain plus
// the folded x·sign product).
var symbolicConsumers = map[string]string{
	"ReLUScaled": "DepthReLU",
	"ReLU":       "DepthReLU",
}

func runLevelbudget(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.ADD && be.Op != token.SUB) {
				return true
			}
			for _, side := range []ast.Expr{be.X, be.Y} {
				if isLevelsRequiredCall(side) {
					p.Reportf(be.Pos(), "arithmetic on LevelsRequired(): the level budget is exact — a ±k margin reintroduces the serving-boundary off-by-one; bind the budget to a named variable and derive from that")
					break
				}
			}
			return true
		})
	}

	budget := collectLayerBudget(p)
	if len(budget) == 0 {
		return nil
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !strings.HasPrefix(fd.Name.Name, "Apply") {
				continue
			}
			kind := matchKind(fd.Name.Name, budget)
			if kind == "" {
				continue
			}
			got := consumedLevels(fd.Body)
			want := budget[kind]
			if !got.equal(want) {
				p.Reportf(fd.Name.Pos(), "%s consumes %s level(s) but LevelsRequired budgets %s for %s layers — level-budget drift (the PR 3 off-by-one class)",
					fd.Name.Name, got.String(), want.String(), kind)
			}
		}
	}
	return nil
}

func isLevelsRequiredCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name == "LevelsRequired"
	case *ast.Ident:
		return fun.Name == "LevelsRequired"
	}
	return false
}

// collectLayerBudget extracts the per-layer-kind budget from the
// package's LevelsRequired method: each type-switch case contributes
// the cost its body accumulates. A case whose accumulation the
// analyzer cannot model drops out (never reported) rather than
// guessing.
func collectLayerBudget(p *Pass) map[string]levelCost {
	budget := map[string]levelCost{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "LevelsRequired" || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSwitchStmt)
				if !ok {
					return true
				}
				for _, c := range ts.Body.List {
					cc, ok := c.(*ast.CaseClause)
					if !ok || cc.List == nil {
						continue
					}
					cost, ok := caseBudget(cc.Body)
					if !ok {
						continue
					}
					for _, te := range cc.List {
						if name := typeExprName(te); name != "" {
							budget[name] = cost
						}
					}
				}
				return false
			})
		}
	}
	return budget
}

// caseBudget models one case body: total++ adds one, total += expr adds
// the parsed expression. Anything else makes the case unmodelable.
func caseBudget(body []ast.Stmt) (levelCost, bool) {
	var cost levelCost
	for _, s := range body {
		switch s := s.(type) {
		case *ast.IncDecStmt:
			if s.Tok != token.INC {
				return levelCost{}, false
			}
			cost.add(levelCost{c: 1})
		case *ast.AssignStmt:
			if s.Tok != token.ADD_ASSIGN || len(s.Rhs) != 1 {
				return levelCost{}, false
			}
			rhs, ok := parseBudgetExpr(s.Rhs[0])
			if !ok {
				return levelCost{}, false
			}
			cost.add(rhs)
		default:
			return levelCost{}, false
		}
	}
	return cost, true
}

// parseBudgetExpr models constant ints, depth-method calls
// (v.PAF.DepthReLU() → symbolic DepthReLU) and sums of those.
func parseBudgetExpr(e ast.Expr) (levelCost, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		if e.Kind != token.INT {
			return levelCost{}, false
		}
		n, err := strconv.Atoi(e.Value)
		if err != nil {
			return levelCost{}, false
		}
		return levelCost{c: n}, true
	case *ast.BinaryExpr:
		if e.Op != token.ADD {
			return levelCost{}, false
		}
		x, okX := parseBudgetExpr(e.X)
		y, okY := parseBudgetExpr(e.Y)
		if !okX || !okY {
			return levelCost{}, false
		}
		x.add(y)
		return x, true
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			return levelCost{sym: map[string]int{sel.Sel.Name: 1}}, true
		}
	}
	return levelCost{}, false
}

func typeExprName(e ast.Expr) string {
	e = ast.Unparen(e)
	if star, ok := e.(*ast.StarExpr); ok {
		e = ast.Unparen(star.X)
	}
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// matchKind maps an Apply* function to the budgeted kind whose name is
// the longest prefix match (ApplyLinearBSGS → Linear).
func matchKind(fname string, budget map[string]levelCost) string {
	best := ""
	for kind := range budget {
		if strings.HasPrefix(fname, "Apply"+kind) && len(kind) > len(best) {
			best = kind
		}
	}
	return best
}

// consumedLevels lexically sums the level cost of every evaluator call
// in the body, closures included — a level consumed inside a helper
// literal is still consumed once per layer application in this tree's
// idiom (loops only repeat level-neutral operations).
func consumedLevels(body *ast.BlockStmt) levelCost {
	var total levelCost
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if cost, ok := levelConsumers[sel.Sel.Name]; ok {
			total.add(cost)
		} else if sym, ok := symbolicConsumers[sel.Sel.Name]; ok {
			total.add(levelCost{sym: map[string]int{sym: 1}})
		}
		return true
	})
	return total
}
