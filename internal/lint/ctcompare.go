package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// Ctcompare flags equality comparisons (== / != / bytes.Equal) where an
// operand is named like a secret — token, secret, password, credential —
// and typed string or []byte. Such comparisons short-circuit on the
// first differing byte, letting an attacker recover the secret byte by
// byte from response timing; they must go through
// crypto/subtle.ConstantTimeCompare instead.
//
// Presence checks against the empty string or nil are allowed: they
// reveal only whether a secret is configured, not its contents.
var Ctcompare = &Analyzer{
	Name: "ctcompare",
	Doc:  "secrets and tokens must be compared with crypto/subtle, not == or bytes.Equal",
	Run:  runCtcompare,
}

var secretName = regexp.MustCompile(`(?i)(token|secret|passwd|password|credential)`)

func runCtcompare(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				var hit ast.Expr
				switch {
				case p.isSecretOperand(n.X):
					hit = n.X
				case p.isSecretOperand(n.Y):
					hit = n.Y
				default:
					return true
				}
				other := n.Y
				if hit == n.Y {
					other = n.X
				}
				if isPresenceCheck(other) {
					return true
				}
				p.Reportf(n.OpPos, "%q is compared with %s; use crypto/subtle.ConstantTimeCompare for secret material",
					types.ExprString(hit), n.Op)
			case *ast.CallExpr:
				if !isPkgFuncCall(p.Info, n, "bytes", "Equal") || len(n.Args) != 2 {
					return true
				}
				for _, arg := range n.Args {
					if p.isSecretOperand(arg) {
						p.Reportf(n.Pos(), "%q is compared with bytes.Equal; use crypto/subtle.ConstantTimeCompare for secret material",
							types.ExprString(arg))
						break
					}
				}
			}
			return true
		})
	}
	return nil
}

// isSecretOperand reports whether e names a string- or byte-typed value
// whose identifier looks like secret material.
func (p *Pass) isSecretOperand(e ast.Expr) bool {
	e = ast.Unparen(e)
	var name string
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	case *ast.CallExpr:
		// A conversion keeps the underlying name: []byte(tok).
		if len(e.Args) == 1 {
			if tv, ok := p.Info.Types[e.Fun]; ok && tv.IsType() {
				return p.isSecretOperand(e.Args[0])
			}
		}
		return false
	default:
		return false
	}
	if !secretName.MatchString(name) {
		return false
	}
	tv, ok := p.Info.Types[e]
	if !ok {
		return false
	}
	return isStringOrBytes(tv.Type)
}

func isStringOrBytes(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Slice:
		b, ok := u.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	}
	return false
}

// isPresenceCheck reports whether e is the empty string or nil — a
// configured/unset check, not a content comparison.
func isPresenceCheck(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return e.Kind == token.STRING && (e.Value == `""` || e.Value == "``")
	case *ast.Ident:
		return e.Name == "nil"
	}
	return false
}

// isPkgFuncCall matches a call pkg.Fun(...) where pkg is the named
// package (by import path base).
func isPkgFuncCall(info *types.Info, call *ast.CallExpr, pkg, fun string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fun {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Name() == pkg
}
