package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	a := New(2, 3, 4)
	if a.Numel() != 24 || a.Dim(1) != 3 {
		t.Fatalf("shape bookkeeping wrong: %v", a.Shape)
	}
	b := a.Reshape(6, 4)
	b.Data[0] = 7
	if a.Data[0] != 7 {
		t.Fatal("reshape should share data")
	}
	c := a.Clone()
	c.Data[0] = 9
	if a.Data[0] == 9 {
		t.Fatal("clone should copy data")
	}
}

func TestFromSliceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched shape")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("matmul[%d] = %g want %g", i, c.Data[i], want[i])
		}
	}
}

func TestMatMulTransVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 5)
	b := New(5, 3)
	a.FillRandN(rng, 1)
	b.FillRandN(rng, 1)
	ref := MatMul(a, b)

	// aT stored transposed: at[k,m] with at[p,i] = a[i,p].
	at := New(5, 4)
	for i := 0; i < 4; i++ {
		for p := 0; p < 5; p++ {
			at.Data[p*4+i] = a.Data[i*5+p]
		}
	}
	got := MatMulTransA(at, b)
	for i := range ref.Data {
		if math.Abs(got.Data[i]-ref.Data[i]) > 1e-12 {
			t.Fatal("MatMulTransA disagrees with MatMul")
		}
	}

	bt := New(3, 5)
	for p := 0; p < 5; p++ {
		for j := 0; j < 3; j++ {
			bt.Data[j*5+p] = b.Data[p*3+j]
		}
	}
	got2 := MatMulTransB(a, bt)
	for i := range ref.Data {
		if math.Abs(got2.Data[i]-ref.Data[i]) > 1e-12 {
			t.Fatal("MatMulTransB disagrees with MatMul")
		}
	}
}

func TestMaxAbs(t *testing.T) {
	a := FromSlice([]float64{0.5, -2.25, 1}, 3)
	if a.MaxAbs() != 2.25 {
		t.Fatalf("MaxAbs = %g", a.MaxAbs())
	}
}

func TestGeometry(t *testing.T) {
	g := Geometry(3, 32, 32, 3, 1, 1)
	if g.OutH != 32 || g.OutW != 32 {
		t.Fatalf("same-pad geometry wrong: %+v", g)
	}
	g = Geometry(3, 32, 32, 2, 2, 0)
	if g.OutH != 16 || g.OutW != 16 {
		t.Fatalf("pool geometry wrong: %+v", g)
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1: columns are exactly the pixels.
	x := New(1, 2, 3, 3)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	g := Geometry(2, 3, 3, 1, 1, 0)
	cols := Im2Col(x, g)
	if cols.Shape[0] != 9 || cols.Shape[1] != 2 {
		t.Fatalf("cols shape %v", cols.Shape)
	}
	for pix := 0; pix < 9; pix++ {
		if cols.Data[pix*2] != float64(pix) || cols.Data[pix*2+1] != float64(9+pix) {
			t.Fatalf("pixel %d mis-gathered", pix)
		}
	}
}

func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> — the defining adjoint property that
	// conv backward relies on.
	rng := rand.New(rand.NewSource(2))
	cfg := &quick.Config{MaxCount: 20, Rand: rng}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := Geometry(2, 5, 5, 3, 2, 1)
		x := New(2, 2, 5, 5)
		x.FillRandN(r, 1)
		cols := Im2Col(x, g)
		y := New(cols.Shape[0], cols.Shape[1])
		y.FillRandN(r, 1)
		var lhs float64
		for i := range y.Data {
			lhs += cols.Data[i] * y.Data[i]
		}
		back := Col2Im(y, 2, g)
		var rhs float64
		for i := range x.Data {
			rhs += x.Data[i] * back.Data[i]
		}
		return math.Abs(lhs-rhs) < 1e-9*(1+math.Abs(lhs))
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
