// Package tensor provides the minimal dense float64 tensor used by the
// from-scratch neural-network framework in internal/nn: row-major storage,
// NCHW convention for image batches, matrix multiplication and the
// im2col/col2im transforms that back convolution.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float64 array with an explicit shape.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in %v", s, shape))
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data with a shape; the slice is not copied.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: %d elements cannot have shape %v", len(data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Numel returns the number of elements.
func (t *Tensor) Numel() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	return &Tensor{Shape: append([]int(nil), t.Shape...), Data: append([]float64(nil), t.Data...)}
}

// Reshape returns a view with a new shape (same data).
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.Shape, shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// Zero clears all elements in place.
func (t *Tensor) Zero() { clear(t.Data) }

// AddInPlace adds other element-wise.
func (t *Tensor) AddInPlace(other *Tensor) {
	for i := range t.Data {
		t.Data[i] += other.Data[i]
	}
}

// ScaleInPlace multiplies all elements by s.
func (t *Tensor) ScaleInPlace(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// MaxAbs returns max |x| over all elements (0 for empty).
func (t *Tensor) MaxAbs() float64 {
	var m float64
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// FillRandN fills with N(0, std²) values from rng.
func (t *Tensor) FillRandN(rng *rand.Rand, std float64) {
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
}

// MatMul computes a[m,k] × b[k,n] into a fresh [m,n] tensor (ikj order).
func MatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: matmul shapes %v × %v", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulTransA computes aᵀ[k,m]ᵀ × b ... specifically out = aᵀ·b where
// a is [k,m] and b is [k,n], producing [m,n].
func MatMulTransA(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[0] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: matmulTransA shapes %v × %v", a.Shape, b.Shape))
	}
	k, m, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.Data[p*m : (p+1)*m]
		brow := b.Data[p*n : (p+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulTransB computes a[m,k] × bᵀ where b is [n,k], producing [m,n].
func MatMulTransB(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: matmulTransB shapes %v × %v", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[0]
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s float64
			for p := 0; p < k; p++ {
				s += arow[p] * brow[p]
			}
			orow[j] = s
		}
	}
	return out
}

// ConvGeom describes a convolution/pooling geometry.
type ConvGeom struct {
	InC, InH, InW       int
	Kernel, Stride, Pad int
	OutH, OutW          int
}

// Geometry computes output sizes for the given input and kernel parameters.
func Geometry(inC, inH, inW, kernel, stride, pad int) ConvGeom {
	outH := (inH+2*pad-kernel)/stride + 1
	outW := (inW+2*pad-kernel)/stride + 1
	return ConvGeom{InC: inC, InH: inH, InW: inW, Kernel: kernel, Stride: stride, Pad: pad, OutH: outH, OutW: outW}
}

// Im2Col expands x [N,C,H,W] into [N*outH*outW, C*k*k] patches.
func Im2Col(x *Tensor, g ConvGeom) *Tensor {
	n := x.Shape[0]
	cols := New(n*g.OutH*g.OutW, g.InC*g.Kernel*g.Kernel)
	colW := g.InC * g.Kernel * g.Kernel
	for b := 0; b < n; b++ {
		for oh := 0; oh < g.OutH; oh++ {
			for ow := 0; ow < g.OutW; ow++ {
				row := ((b*g.OutH+oh)*g.OutW + ow) * colW
				for c := 0; c < g.InC; c++ {
					base := (b*g.InC + c) * g.InH * g.InW
					for kh := 0; kh < g.Kernel; kh++ {
						ih := oh*g.Stride + kh - g.Pad
						for kw := 0; kw < g.Kernel; kw++ {
							iw := ow*g.Stride + kw - g.Pad
							idx := row + (c*g.Kernel+kh)*g.Kernel + kw
							if ih >= 0 && ih < g.InH && iw >= 0 && iw < g.InW {
								cols.Data[idx] = x.Data[base+ih*g.InW+iw]
							}
						}
					}
				}
			}
		}
	}
	return cols
}

// Col2Im scatters column gradients back to the input layout, accumulating
// overlapping patches (the adjoint of Im2Col).
func Col2Im(cols *Tensor, n int, g ConvGeom) *Tensor {
	x := New(n, g.InC, g.InH, g.InW)
	colW := g.InC * g.Kernel * g.Kernel
	for b := 0; b < n; b++ {
		for oh := 0; oh < g.OutH; oh++ {
			for ow := 0; ow < g.OutW; ow++ {
				row := ((b*g.OutH+oh)*g.OutW + ow) * colW
				for c := 0; c < g.InC; c++ {
					base := (b*g.InC + c) * g.InH * g.InW
					for kh := 0; kh < g.Kernel; kh++ {
						ih := oh*g.Stride + kh - g.Pad
						if ih < 0 || ih >= g.InH {
							continue
						}
						for kw := 0; kw < g.Kernel; kw++ {
							iw := ow*g.Stride + kw - g.Pad
							if iw < 0 || iw >= g.InW {
								continue
							}
							x.Data[base+ih*g.InW+iw] += cols.Data[row+(c*g.Kernel+kh)*g.Kernel+kw]
						}
					}
				}
			}
		}
	}
	return x
}
