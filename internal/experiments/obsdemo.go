package experiments

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/efficientfhe/smartpaf/internal/registry"
	"github.com/efficientfhe/smartpaf/internal/server"
)

func init() {
	register("obsdemo", ObservabilityDemo)
}

// ObservabilityDemo exercises the serving telemetry plane end to end: it
// drives a burst of encrypted inferences through one server, pulls a request
// trace by the id the X-Henn-Trace header returned, and prints the
// stage-level latency breakdown the /v1/traces endpoint serves — where one
// request's wall time actually goes (queue wait, dispatch, then the CKKS
// primitive stages inside the unit). It finishes with the /v1/stats
// quantiles and a /metrics excerpt, the two aggregate views of the same
// instruments.
func ObservabilityDemo(opt Options) error {
	logN, burst := 9, 8
	if !opt.Fast {
		logN, burst = 11, 24
	}
	workers := opt.Parallel
	if workers == 0 {
		workers = 2 // small budget: the burst builds real queue wait
	}

	model, err := registry.DemoModel(opt.Seed, logN)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Options{MaxBatch: 4, Workers: workers}, model)
	if err != nil {
		return err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	go func() { _ = http.Serve(ln, srv.Handler()) }()

	ctx := context.Background()
	client := server.NewClient("http://"+ln.Addr().String(), nil)
	sess, err := client.NewSession(ctx, opt.Seed^0x0b5)
	if err != nil {
		return err
	}
	x := make([]float64, model.InputDim)
	for i := range x {
		x[i] = float64(i%5)/5.0 - 0.4
	}
	if _, err := sess.Infer(ctx, x); err != nil { // warm caches before timing
		return err
	}

	var wg sync.WaitGroup
	errs := make(chan error, burst)
	for g := 0; g < burst; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sess.Infer(ctx, x); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return err
	}

	// Every burst request was traced; read the newest completed one.
	traces, err := client.Traces(ctx)
	if err != nil {
		return err
	}
	if len(traces) == 0 {
		return fmt.Errorf("obsdemo: server retained no traces")
	}
	snap := traces[0]

	spans := newTable(fmt.Sprintf("One traced request (%s), N=%d, %d workers", snap.ID, 1<<logN, workers),
		"span", "start", "duration", "attrs")
	var unitUs int64
	for _, sp := range snap.Spans {
		if sp.Name == "unit" {
			unitUs = sp.DurUs
		}
		attrs := make([]string, 0, len(sp.Attrs))
		for k, v := range sp.Attrs {
			attrs = append(attrs, k+"="+v)
		}
		spans.addRowf("%s|+%s|%s|%s", sp.Name, us(sp.StartUs), us(sp.DurUs), strings.Join(attrs, " "))
	}
	spans.write(opt.W)

	stages := newTable("CKKS stage breakdown inside the unit", "stage", "calls", "total", "share of unit")
	var stageTotalUs int64
	for _, st := range snap.Stages {
		stageTotalUs += st.TotalUs
	}
	for _, st := range snap.Stages {
		share := 0.0
		if unitUs > 0 {
			share = float64(st.TotalUs) / float64(unitUs)
		}
		stages.addRowf("%s|%d|%s|%s", st.Name, st.Count, us(st.TotalUs), pct(share))
	}
	stages.write(opt.W)
	if unitUs > 0 {
		fmt.Fprintf(opt.W, "\nstages cover %s of the %s unit span (%s); the remainder is\n",
			us(stageTotalUs), us(unitUs), pct(float64(stageTotalUs)/float64(unitUs)))
		fmt.Fprintln(opt.W, "unobserved glue (additions, scheduling seams between instrumented stages).")
	}

	st, err := client.Stats(ctx)
	if err != nil {
		return err
	}
	agg := newTable("Aggregate view: /v1/stats per-model quantiles", "model", "units", "unit p50", "unit p99", "queue p50", "queue p99")
	for _, ms := range st.Models {
		agg.addRowf("%s@%d|%d|%.1fms|%.1fms|%.1fms|%.1fms",
			ms.Name, ms.Version, ms.UnitsRun, ms.UnitP50Ms, ms.UnitP99Ms, ms.QueueP50Ms, ms.QueueP99Ms)
	}
	agg.write(opt.W)
	fmt.Fprintf(opt.W, "\nruntime: uptime %.1fs, %d goroutines, %.1f MiB heap, peak in-flight %d/%d\n",
		st.UptimeSeconds, st.Goroutines, float64(st.HeapBytes)/(1<<20), st.PeakInFlight, st.Workers)

	body, err := client.Metrics(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintln(opt.W, "\n/metrics excerpt (Prometheus text exposition):")
	for _, line := range strings.Split(body, "\n") {
		for _, prefix := range []string{"henn_units_run_total", "henn_unit_seconds_count", "henn_unit_seconds_sum",
			"henn_queue_wait_seconds_count", "henn_ckks_stage_seconds_count"} {
			if strings.HasPrefix(line, prefix) {
				fmt.Fprintln(opt.W, "  "+line)
			}
		}
	}
	return nil
}

// us renders a microsecond count as a human duration.
func us(v int64) string {
	return (time.Duration(v) * time.Microsecond).Round(10 * time.Microsecond).String()
}
