package experiments

import (
	"fmt"

	"github.com/efficientfhe/smartpaf/internal/paf"
	"github.com/efficientfhe/smartpaf/internal/smartpaf"
)

func init() {
	register("fig7", Fig7)
	register("fig8", Fig8)
	register("fig9", Fig9)
	register("tab3", Table3)
	register("sensitivity", Sensitivity)
}

// replaceAllEval replaces the selected slots (optionally with CT) on a fresh
// model, evaluates validation accuracy without any fine-tuning, and reports
// it — the Fig. 7 measurement.
func replaceAllEval(tb *testbed, form string, ct, includeMaxPool bool, opt Options) (float64, error) {
	m := tb.fresh()
	profiles := smartpaf.ProfileSlots(m, tb.train, 32, 4, 64)
	slots := m.Slots()
	if !includeMaxPool {
		slots = m.ReLUSlots()
	}
	for _, s := range slots {
		c, err := paf.New(form)
		if err != nil {
			return 0, err
		}
		if ct {
			c = smartpaf.CoefficientTuning(c, profiles[s.Index], smartpaf.DefaultCTOptions())
		}
		s.ReplaceWithPAF(c)
	}
	return accuracy(m, tb.val), nil
}

// Fig7 regenerates Figure 7: post-replacement validation accuracy without
// fine-tuning, Coefficient Tuning vs. baseline, on ResNet-18/imagenet-like.
// Top: ReLU-only replacement; bottom: ReLU + MaxPooling.
func Fig7(opt Options) error {
	tb := resnetBed(opt)
	fmt.Fprintf(opt.W, "\nResNet-18 (imagenet-like), original accuracy %s\n", pct(tb.origAcc))
	for _, includeMaxPool := range []bool{false, true} {
		scope := "replace ReLU only"
		if includeMaxPool {
			scope = "replace ReLU + MaxPooling"
		}
		t := newTable(fmt.Sprintf("Figure 7 (%s) — CT vs baseline, no fine-tuning", scope),
			"form", "baseline acc", "CT acc", "improvement")
		for _, form := range formsFor(opt) {
			base, err := replaceAllEval(tb, form, false, includeMaxPool, opt)
			if err != nil {
				return err
			}
			ct, err := replaceAllEval(tb, form, true, includeMaxPool, opt)
			if err != nil {
				return err
			}
			ratio := "-"
			if base > 0 {
				ratio = fmt.Sprintf("%.2fx", ct/base)
			}
			t.addRow(form, pct(base), pct(ct), ratio)
		}
		t.write(opt.W)
	}
	return nil
}

// fig8Strategy names one bar group of Figure 8.
type fig8Strategy struct {
	name string
	mut  func(*smartpaf.Config)
}

// Fig8 regenerates Figure 8: post-fine-tuning accuracy of the three
// replacement/training strategies, ReLU-only on ResNet-18/imagenet-like.
func Fig8(opt Options) error {
	strategies := []fig8Strategy{
		{"direct replacement + direct training", func(c *smartpaf.Config) {
			c.PA = false
		}},
		{"direct replacement + progressive training", func(c *smartpaf.Config) {
			c.PA = false
			c.DirectProgressiveTraining = true
		}},
		{"progressive replacement + progressive training (PA)", func(c *smartpaf.Config) {
			c.PA = true
		}},
	}
	tb := resnetBed(opt)
	fmt.Fprintf(opt.W, "\nResNet-18 (imagenet-like), original accuracy %s\n", pct(tb.origAcc))
	t := newTable("Figure 8 — Progressive Approximation vs baselines (post-fine-tune, ReLU only)",
		append([]string{"form"}, "direct+direct", "direct+progressive", "PA")...)
	for _, form := range formsFor(opt) {
		row := []string{form}
		for _, st := range strategies {
			cfg := pipelineConfig(form, opt)
			cfg.CT = false
			cfg.AT = false
			cfg.ReplaceMaxPool = false
			st.mut(&cfg)
			p, err := smartpaf.NewPipeline(tb.fresh(), tb.train, tb.val, cfg)
			if err != nil {
				return err
			}
			res, err := p.Run()
			if err != nil {
				return err
			}
			row = append(row, pct(res.FinalAccDS))
		}
		t.addRow(row...)
	}
	t.write(opt.W)
	return nil
}

// table3Row is one technique combination of the ablation.
type table3Row struct {
	label      string
	noFineTune bool
	ct, pa, at bool
	reportSS   bool // also report the Static-Scaling (FHE-deployable) value
}

// Table3 regenerates the ablation study: technique combinations × PAF forms
// on (a) ResNet-18/imagenet-like ReLU-only, (b) ResNet-18/imagenet-like all
// non-polynomial, (c) VGG-19/cifar-like all non-polynomial.
func Table3(opt Options) error {
	rows := []table3Row{
		{label: "baseline + DS w/o fine tune", noFineTune: true},
		{label: "baseline + CT + DS w/o fine tune", noFineTune: true, ct: true},
		{label: "baseline + DS (and + SS, prior work)", reportSS: true},
		{label: "baseline + AT + DS", at: true},
		{label: "baseline + PA + DS", pa: true},
		{label: "baseline + CT + PA + DS", ct: true, pa: true},
		{label: "SMART-PAF: CT + PA + AT (DS and SS)", ct: true, pa: true, at: true, reportSS: true},
	}
	if opt.Fast {
		rows = []table3Row{
			rows[0], rows[1], rows[2], rows[6],
		}
	}

	type section struct {
		name           string
		tb             *testbed
		includeMaxPool bool
	}
	resnet := resnetBed(opt)
	sections := []section{
		{"Replace ReLU only — ResNet-18 (imagenet-like)", resnet, false},
		{"Replace all non-polynomial — ResNet-18 (imagenet-like)", resnet, true},
	}
	if !opt.Fast {
		sections = append(sections, section{"Replace all non-polynomial — VGG-19 (cifar-like)", vggBed(opt), true})
	}

	for _, sec := range sections {
		t := newTable(fmt.Sprintf("Table 3 — %s (original accuracy %s)", sec.name, pct(sec.tb.origAcc)),
			append([]string{"technique setup"}, formsFor(opt)...)...)
		for _, row := range rows {
			cells := []string{row.label}
			for _, form := range formsFor(opt) {
				v, err := table3Cell(sec.tb, form, row, sec.includeMaxPool, opt)
				if err != nil {
					return err
				}
				cells = append(cells, v)
			}
			t.addRow(cells...)
		}
		t.write(opt.W)
	}
	return nil
}

func table3Cell(tb *testbed, form string, row table3Row, includeMaxPool bool, opt Options) (string, error) {
	if row.noFineTune {
		acc, err := replaceAllEval(tb, form, row.ct, includeMaxPool, opt)
		if err != nil {
			return "", err
		}
		return pct(acc), nil
	}
	cfg := pipelineConfig(form, opt)
	cfg.CT, cfg.PA, cfg.AT = row.ct, row.pa, row.at
	cfg.ReplaceMaxPool = includeMaxPool
	p, err := smartpaf.NewPipeline(tb.fresh(), tb.train, tb.val, cfg)
	if err != nil {
		return "", err
	}
	res, err := p.Run()
	if err != nil {
		return "", err
	}
	if row.reportSS {
		return fmt.Sprintf("%s / SS %s", pct(res.FinalAccDS), pct(res.FinalAccSS)), nil
	}
	return pct(res.FinalAccDS), nil
}

// Fig9 regenerates Figure 9: epoch-by-epoch validation accuracy of the
// baseline strategy vs SMART-PAF for the f1²∘g1² PAF with scheduler event
// markers.
func Fig9(opt Options) error {
	tb := resnetBed(opt)
	form := paf.FormF1F1G1G1

	runCurve := func(name string, mut func(*smartpaf.Config)) (*smartpaf.Result, error) {
		cfg := pipelineConfig(form, opt)
		cfg.ReplaceMaxPool = true
		mut(&cfg)
		p, err := smartpaf.NewPipeline(tb.fresh(), tb.train, tb.val, cfg)
		if err != nil {
			return nil, err
		}
		return p.Run()
	}

	baseline, err := runCurve("baseline", func(c *smartpaf.Config) { c.CT, c.PA, c.AT = false, false, false })
	if err != nil {
		return err
	}
	smart, err := runCurve("smartpaf", func(c *smartpaf.Config) { c.CT, c.PA, c.AT = true, true, true })
	if err != nil {
		return err
	}

	fmt.Fprintf(opt.W, "\n== Figure 9 — training curves, %s on ResNet-18 (imagenet-like), original %s ==\n",
		form, pct(tb.origAcc))
	fmt.Fprintf(opt.W, "baseline:  initial (post-replacement) %s, final DS %s\n", pct(baseline.InitialAcc), pct(baseline.FinalAccDS))
	fmt.Fprintf(opt.W, "SMART-PAF: initial (post-replacement) %s, final DS %s\n", pct(smart.InitialAcc), pct(smart.FinalAccDS))

	t := newTable("per-epoch validation accuracy", "epoch", "baseline", "smartpaf")
	n := max(len(baseline.Curve), len(smart.Curve))
	for i := 0; i < n; i++ {
		b, s := "", ""
		if i < len(baseline.Curve) {
			b = pct(baseline.Curve[i].ValAcc)
		}
		if i < len(smart.Curve) {
			s = pct(smart.Curve[i].ValAcc)
		}
		t.addRow(fmt.Sprint(i+1), b, s)
	}
	t.write(opt.W)

	fmt.Fprintln(opt.W, "\nSMART-PAF scheduler events:")
	for _, e := range smart.Events {
		fmt.Fprintf(opt.W, "  epoch %3d  %-8s %s\n", e.Epoch, e.Kind, e.Label)
	}
	return nil
}

// Sensitivity regenerates the §5.4.3 observation: MaxPooling is more
// sensitive to PAF replacement than ReLU, because each pooling window nests
// k²-1 PAF max calls whose approximation errors compound. For every form it
// reports the no-fine-tune accuracy of ReLU-only replacement, of replacing
// everything, and the attributable MaxPool cost.
func Sensitivity(opt Options) error {
	tb := resnetBed(opt)
	t := newTable(fmt.Sprintf("§5.4.3 — MaxPooling sensitivity (ResNet-18 imagenet-like, original %s)", pct(tb.origAcc)),
		"form", "ReLU-only acc", "ReLU+MaxPool acc", "MaxPool cost")
	for _, form := range formsFor(opt) {
		reluOnly, err := replaceAllEval(tb, form, true, false, opt)
		if err != nil {
			return err
		}
		all, err := replaceAllEval(tb, form, true, true, opt)
		if err != nil {
			return err
		}
		t.addRow(form, pct(reluOnly), pct(all), fmt.Sprintf("%+.1f pts", (all-reluOnly)*100))
	}
	t.write(opt.W)
	fmt.Fprintln(opt.W, "\nNote: ResNet-18 has a single 3×3 MaxPool (8 nested PAF max calls per window);")
	fmt.Fprintln(opt.W, "VGG-19's five pools amplify the effect (run tab3 -full).")
	return nil
}
