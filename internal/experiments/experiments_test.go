package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"github.com/efficientfhe/smartpaf/internal/hepoly"
	"github.com/efficientfhe/smartpaf/internal/paf"
)

func TestRegistryComplete(t *testing.T) {
	// Every paper artifact must have a registered experiment.
	want := []string{"tab2", "tab3", "tab4", "tab5", "tab8", "fig1", "fig7", "fig8", "fig9", "appendixB"}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if err := Run("nope", Options{W: io.Discard}); err == nil {
		t.Fatal("expected unknown-id error")
	}
	if err := Run("tab2", Options{}); err == nil {
		t.Fatal("expected missing-writer error")
	}
}

func TestStaticExperimentsOutput(t *testing.T) {
	cases := map[string][]string{
		"tab2":      {"alpha10", "f1_g2", "27", "10"},
		"tab5":      {"Adam", "0.0001", "1e-05"},
		"tab8":      {"f1∘g2", "depth", "total sign depth: 5"},
		"appendixB": {"f1f1_g1g1", "17"},
	}
	for id, wants := range cases {
		var buf bytes.Buffer
		if err := Run(id, Options{Fast: true, Seed: 1, W: &buf}); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := buf.String()
		for _, w := range wants {
			if !strings.Contains(out, w) {
				t.Errorf("%s output missing %q:\n%s", id, w, out)
			}
		}
	}
}

func TestParamsForPAFSizing(t *testing.T) {
	// Table 2 depth ordering must map to ring sizes monotonically: the
	// 27-degree baseline needs the largest ring, f1∘g2 the smallest.
	lits := map[string]int{}
	for _, form := range paf.AllFormsWithBaseline {
		lit, err := ParamsForPAF(paf.MustNew(form), false)
		if err != nil {
			t.Fatalf("%s: %v", form, err)
		}
		lits[form] = lit.LogN
		// LogQ chain must cover the ReLU + scaling levels.
		c := paf.MustNew(form)
		if got, want := len(lit.LogQ)-1, hepoly.RequiredLevels(c, true); got != want {
			t.Errorf("%s: %d levels in chain, want %d", form, got, want)
		}
	}
	if lits["f1_g2"] >= lits["alpha10"] {
		t.Errorf("f1∘g2 ring (2^%d) should be smaller than alpha10's (2^%d)", lits["f1_g2"], lits["alpha10"])
	}
	// Fast mode shrinks rings uniformly.
	fastLit, err := ParamsForPAF(paf.MustNew(paf.FormF1G2), true)
	if err != nil {
		t.Fatal(err)
	}
	if fastLit.LogN != lits["f1_g2"]-4 {
		t.Errorf("fast ring 2^%d, want 2^%d", fastLit.LogN, lits["f1_g2"]-4)
	}
}

func TestMeasureReLULatencyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("latency measurement in -short mode")
	}
	cheap, _, err := MeasureReLULatency(paf.FormF1G2, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	expensive, _, err := MeasureReLULatency(paf.FormAlpha10, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cheap <= 0 || expensive <= 0 {
		t.Fatal("non-positive latency")
	}
	// Table 4's headline: the 27-degree baseline is several times slower.
	if ratio := float64(expensive) / float64(cheap); ratio < 2 {
		t.Fatalf("alpha10/f1∘g2 latency ratio %.2f, want ≥ 2 (Table 4 shape)", ratio)
	}
}

func TestRenderTable(t *testing.T) {
	var buf bytes.Buffer
	tab := newTable("demo", "a", "bb")
	tab.addRow("1", "2")
	tab.addRowf("x|y")
	tab.write(&buf)
	out := buf.String()
	for _, w := range []string{"== demo ==", "a", "bb", "x", "y"} {
		if !strings.Contains(out, w) {
			t.Errorf("render missing %q in %q", w, out)
		}
	}
	if pct(0.125) != "12.5%" {
		t.Errorf("pct: %s", pct(0.125))
	}
}

// TestFig7FastEndToEnd is a reduced end-to-end run of the most important
// training-free experiment; skipped in -short mode (it pretrains a model).
func TestFig7FastEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("fig7 pretraining in -short mode")
	}
	start := time.Now()
	var buf bytes.Buffer
	if err := Run("fig7", Options{Fast: true, Seed: 42, W: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, w := range []string{"Figure 7", "ReLU only", "MaxPooling", "f1_g2"} {
		if !strings.Contains(out, w) {
			t.Errorf("fig7 output missing %q", w)
		}
	}
	t.Logf("fig7 fast completed in %s", time.Since(start).Round(time.Millisecond))
}

// TestUpgradeRolloutEndToEnd runs the versioned-rollout experiment at fast
// scale: a live v1→v2 supersede under concurrent traffic with zero failed
// requests, drain verification and a restart-from-state-dir check. Skipped
// in -short mode (it serves real encrypted traffic).
func TestUpgradeRolloutEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("upgrade rollout in -short mode")
	}
	start := time.Now()
	var buf bytes.Buffer
	if err := Run("upgrade", Options{Fast: true, Seed: 42, W: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, w := range []string{"v1→v2 rollout", "alpha@1", "alpha@2", "zero failed requests", "restart check"} {
		if !strings.Contains(out, w) {
			t.Errorf("upgrade output missing %q:\n%s", w, out)
		}
	}
	t.Logf("upgrade fast completed in %s", time.Since(start).Round(time.Millisecond))
}
