package experiments

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/efficientfhe/smartpaf/internal/registry"
	"github.com/efficientfhe/smartpaf/internal/server"
)

func init() {
	register("mserve", MultiServeLoad)
}

// MultiServeLoad measures cross-session fairness under uneven load: K=4
// registered sessions share one hennserve instance, session 0 floods a
// burst of concurrent requests while sessions 1-3 send paced single
// requests, and the table reports per-session p50/p99 latency under the
// fair scheduler versus the FIFO baseline (strict arrival order — the
// contention behaviour of uncoordinated per-session batchers). The summary
// lines verify the tentpole property: total server parallelism stays within
// the one configured worker budget no matter how many sessions push.
func MultiServeLoad(opt Options) error {
	logN, floodN, victimN := 9, 12, 4
	if !opt.Fast {
		logN, floodN, victimN = 11, 24, 8
	}
	// Unset knob: a deliberately small budget (2), so the flood saturates it
	// and the scheduling policy — not spare capacity — decides who waits.
	// An explicit -parallel pins a different budget.
	workers := opt.Parallel
	if workers == 0 {
		workers = 2
	}

	t := newTable(fmt.Sprintf("Cross-session fairness, 4 sessions, shared budget (N=%d)", 1<<logN),
		"policy", "session", "role", "reqs", "p50", "p99")
	type victimP99 struct{ fair, fifo time.Duration }
	var vp victimP99
	for _, policy := range []string{server.PolicyFair, server.PolicyFIFO} {
		lats, st, err := runMultiSession(opt, logN, workers, policy, floodN, victimN)
		if err != nil {
			return err
		}
		var victimWorst time.Duration
		for si, sl := range lats {
			role := "victim"
			if si == 0 {
				role = "flood"
			} else if p := percentile(sl, 0.99); p > victimWorst {
				victimWorst = p
			}
			t.addRowf("%s|%d|%s|%d|%s|%s", policy, si, role, len(sl),
				percentile(sl, 0.50).Round(time.Millisecond),
				percentile(sl, 0.99).Round(time.Millisecond))
		}
		if policy == server.PolicyFair {
			vp.fair = victimWorst
		} else {
			vp.fifo = victimWorst
		}
		fmt.Fprintf(opt.W, "%s: peak in-flight %d within budget %d; %d units over %d scheduler turns\n",
			policy, st.PeakInFlight, st.Workers, st.UnitsRun, st.Quanta)
		if st.PeakInFlight > st.Workers {
			return fmt.Errorf("mserve: peak parallelism %d exceeded the %d-worker budget", st.PeakInFlight, st.Workers)
		}
	}
	t.write(opt.W)
	if vp.fair > 0 {
		fmt.Fprintf(opt.W, "\nworst victim p99: fair %s vs fifo %s (%.1fx) — the flood cannot\n",
			vp.fair.Round(time.Millisecond), vp.fifo.Round(time.Millisecond),
			float64(vp.fifo)/float64(vp.fair))
		fmt.Fprintln(opt.W, "degrade a quiet session's tail latency under round-robin quanta.")
	}
	return nil
}

// runMultiSession drives one policy's load run and returns per-session
// latencies plus the server's scheduler stats.
func runMultiSession(opt Options, logN, workers int, policy string, floodN, victimN int) ([][]time.Duration, server.Stats, error) {
	var zero server.Stats
	model, err := registry.DemoModel(opt.Seed, logN)
	if err != nil {
		return nil, zero, err
	}
	srv, err := server.New(server.Options{MaxBatch: 4, Workers: workers, Policy: policy}, model)
	if err != nil {
		return nil, zero, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, zero, err
	}
	defer ln.Close()
	go func() { _ = http.Serve(ln, srv.Handler()) }()

	ctx := context.Background()
	client := server.NewClient("http://"+ln.Addr().String(), nil)
	const sessions = 4
	sess := make([]*server.Session, sessions)
	var reg sync.WaitGroup
	regErr := make([]error, sessions)
	for si := 0; si < sessions; si++ {
		reg.Add(1)
		go func(si int) {
			defer reg.Done()
			sess[si], regErr[si] = client.NewSession(ctx, opt.Seed^int64(0xa11ce+si))
		}(si)
	}
	reg.Wait()
	for _, err := range regErr {
		if err != nil {
			return nil, zero, err
		}
	}

	x := make([]float64, model.InputDim)
	for i := range x {
		x[i] = float64(i%7)/7.0 - 0.5
	}
	if _, err := sess[0].Infer(ctx, x); err != nil { // warm caches before timing
		return nil, zero, err
	}

	lats := make([][]time.Duration, sessions)
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		runErr error
	)
	record := func(si int, d time.Duration, err error) bool {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if runErr == nil {
				runErr = err
			}
			return false
		}
		lats[si] = append(lats[si], d)
		return true
	}
	// Session 0 floods a fully concurrent burst, building a deep backlog at
	// t=0; each victim fires its first request into that standing backlog
	// (after a short delay that lets the burst queue), then paces the rest.
	// Under FIFO the victims' first requests wait out the whole flood;
	// under the fair policy they wait at most a quantum per busy session.
	for g := 0; g < floodN; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			_, err := sess[0].Infer(ctx, x)
			record(0, time.Since(start), err)
		}()
	}
	for si := 1; si < sessions; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			time.Sleep(50 * time.Millisecond)
			for r := 0; r < victimN; r++ {
				start := time.Now()
				_, err := sess[si].Infer(ctx, x)
				if !record(si, time.Since(start), err) {
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(si)
	}
	wg.Wait()
	if runErr != nil {
		return nil, zero, runErr
	}
	return lats, srv.Stats(), nil
}

// percentile returns the p-quantile (0 < p ≤ 1) of the samples.
func percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
