package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"github.com/efficientfhe/smartpaf/internal/ckks"
	"github.com/efficientfhe/smartpaf/internal/hepoly"
	"github.com/efficientfhe/smartpaf/internal/paf"
	"github.com/efficientfhe/smartpaf/internal/parallel"
	"github.com/efficientfhe/smartpaf/internal/ring"
	"github.com/efficientfhe/smartpaf/internal/smartpaf"
)

func init() {
	register("tab4", Table4)
	register("fig1", Fig1)
	register("parlat", ParallelLatency)
}

// heStandardMaxLogQP maps ring degree (LogN) to the maximum total modulus
// bits of the homomorphic encryption security standard at 128-bit security
// (the table SEAL and Lattigo enforce; the paper's N=32768/881-bit setup
// sits exactly at this bound).
var heStandardMaxLogQP = map[int]int{
	12: 109,
	13: 218,
	14: 438,
	15: 881,
}

// ParamsForPAF returns the smallest standard-compliant parameter set that
// can evaluate the PAF's ReLU plus one Static-Scaling multiplication. This
// per-PAF sizing is where most of the paper's latency gap comes from: a
// shallow PAF fits a smaller ring, making every operation cheaper. In fast
// mode the ring degree is uniformly reduced (keeping relative shapes) so the
// measurement completes quickly on one core.
func ParamsForPAF(c *paf.Composite, fast bool) (ckks.ParametersLiteral, error) {
	levels := hepoly.RequiredLevels(c, true)
	logQ := make([]int, levels+1)
	logQ[0] = 60
	for i := 1; i <= levels; i++ {
		logQ[i] = 45
	}
	total := 60 + 45*levels + 60
	logN := 0
	for _, n := range []int{12, 13, 14, 15} {
		if total <= heStandardMaxLogQP[n] {
			logN = n
			break
		}
	}
	if logN == 0 {
		return ckks.ParametersLiteral{}, fmt.Errorf("experiments: %s needs %d modulus bits, beyond N=2^15", c.Name, total)
	}
	if fast {
		logN -= 4 // keep relative ring-size ratios, shrink absolute cost
	}
	return ckks.ParametersLiteral{LogN: logN, LogQ: logQ, LogP: 60, LogScale: 45}, nil
}

// MeasureReLULatency builds a dedicated CKKS context for the PAF and times
// one encrypted ReLU evaluation (averaged over iters).
func MeasureReLULatency(form string, fast bool, iters int) (time.Duration, ckks.ParametersLiteral, error) {
	c, err := paf.New(form)
	if err != nil {
		return 0, ckks.ParametersLiteral{}, err
	}
	lit, err := ParamsForPAF(c, fast)
	if err != nil {
		return 0, lit, err
	}
	params, err := ckks.NewParameters(lit)
	if err != nil {
		return 0, lit, err
	}
	kg := ckks.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewEncryptor(params, pk, 2)
	eval := ckks.NewEvaluator(params, rlk)
	he := hepoly.NewEvaluator(eval)

	vals := make([]float64, params.Slots())
	for i := range vals {
		vals[i] = 0.8 * float64(i%16-8) / 8
	}
	pt, err := enc.EncodeReals(vals, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		return 0, lit, err
	}
	ct := encryptor.Encrypt(pt)

	// One warmup, then timed iterations.
	if _, err := he.ReLU(c, ct); err != nil {
		return 0, lit, err
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := he.ReLU(c, ct); err != nil {
			return 0, lit, err
		}
	}
	return time.Since(start) / time.Duration(iters), lit, nil
}

// Table4 regenerates Table 4: per-form post-SMART-PAF accuracy on
// VGG-19/cifar-like plus measured encrypted ReLU latency and the speedup
// over the 27-degree minimax baseline.
func Table4(opt Options) error {
	iters := 1
	if opt.Fast {
		iters = 2
	}

	// Latency column, including the baseline.
	type lat struct {
		d   time.Duration
		lit ckks.ParametersLiteral
	}
	lats := map[string]lat{}
	for _, form := range append([]string{paf.FormAlpha10}, formsFor(opt)...) {
		d, lit, err := MeasureReLULatency(form, opt.Fast, iters)
		if err != nil {
			return err
		}
		lats[form] = lat{d, lit}
	}
	base := lats[paf.FormAlpha10].d

	// Accuracy column: SMART-PAF (CT+PA+AT) on VGG-19/cifar-like, all
	// non-polynomial operators replaced, reported after SS conversion.
	tb := vggBed(opt)
	fmt.Fprintf(opt.W, "\nVGG-19 (cifar-like), original accuracy %s\n", pct(tb.origAcc))
	t := newTable("Table 4 — SMART-PAF accuracy and encrypted ReLU latency vs the 27-degree baseline",
		"form", "val acc (DS)", "val acc (SS)", "ring", "ReLU latency", "speedup vs 27-degree")
	t.addRow(paf.FormAlpha10, "-", "-",
		fmt.Sprintf("2^%d", lats[paf.FormAlpha10].lit.LogN),
		base.Round(time.Microsecond).String(), "1.00x (baseline)")
	for _, form := range formsFor(opt) {
		cfg := pipelineConfig(form, opt)
		cfg.CT, cfg.PA, cfg.AT = true, true, true
		cfg.ReplaceMaxPool = true
		p, err := smartpaf.NewPipeline(tb.fresh(), tb.train, tb.val, cfg)
		if err != nil {
			return err
		}
		res, err := p.Run()
		if err != nil {
			return err
		}
		l := lats[form]
		t.addRow(form, pct(res.FinalAccDS), pct(res.FinalAccSS),
			fmt.Sprintf("2^%d", l.lit.LogN),
			l.d.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2fx", float64(base)/float64(l.d)))
	}
	t.write(opt.W)
	if opt.Fast {
		fmt.Fprintln(opt.W, "\n(fast mode: ring degrees uniformly reduced by 2^4; speedup ratios preserve the full-scale shape)")
	}
	return nil
}

// paretoPoint is one candidate on the Fig. 1 latency/accuracy plane.
type paretoPoint struct {
	Form    string
	Source  string // "smartpaf" or "prior"
	Latency time.Duration
	Acc     float64
}

// Fig1 regenerates Figure 1: the latency–accuracy Pareto frontier of
// SMART-PAF-trained PAFs vs prior work (untrained baseline + Static
// Scaling) on ResNet-18/imagenet-like.
func Fig1(opt Options) error {
	iters := 1
	if opt.Fast {
		iters = 2
	}
	tb := resnetBed(opt)

	var points []paretoPoint
	for _, form := range formsFor(opt) {
		d, _, err := MeasureReLULatency(form, opt.Fast, iters)
		if err != nil {
			return err
		}
		// SMART-PAF point.
		cfg := pipelineConfig(form, opt)
		cfg.CT, cfg.PA, cfg.AT = true, true, true
		cfg.ReplaceMaxPool = true
		p, err := smartpaf.NewPipeline(tb.fresh(), tb.train, tb.val, cfg)
		if err != nil {
			return err
		}
		res, err := p.Run()
		if err != nil {
			return err
		}
		points = append(points, paretoPoint{form, "smartpaf", d, res.FinalAccSS})

		// Prior-work point: baseline training (no CT/PA/AT) + SS.
		cfgP := pipelineConfig(form, opt)
		cfgP.CT, cfgP.PA, cfgP.AT = false, false, false
		cfgP.ReplaceMaxPool = true
		pp, err := smartpaf.NewPipeline(tb.fresh(), tb.train, tb.val, cfgP)
		if err != nil {
			return err
		}
		resP, err := pp.Run()
		if err != nil {
			return err
		}
		points = append(points, paretoPoint{form, "prior", d, resP.FinalAccSS})
	}
	// 27-degree baseline point (prior): near-original accuracy by
	// construction; measure latency.
	dBase, _, err := MeasureReLULatency(paf.FormAlpha10, opt.Fast, iters)
	if err != nil {
		return err
	}
	accBase, err := replaceAllEval(tb, paf.FormAlpha10, false, true, opt)
	if err != nil {
		return err
	}
	points = append(points, paretoPoint{paf.FormAlpha10, "prior", dBase, accBase})

	sort.Slice(points, func(i, j int) bool { return points[i].Latency < points[j].Latency })
	t := newTable(fmt.Sprintf("Figure 1 — latency–accuracy points, ResNet-18 (imagenet-like, original %s)", pct(tb.origAcc)),
		"form", "source", "ReLU latency", "val acc (SS)", "pareto-optimal")
	for i, pt := range points {
		dominated := false
		for j, other := range points {
			if j == i {
				continue
			}
			if other.Latency <= pt.Latency && other.Acc >= pt.Acc &&
				(other.Latency < pt.Latency || other.Acc > pt.Acc) {
				dominated = true
				break
			}
		}
		mark := "yes"
		if dominated {
			mark = ""
		}
		t.addRow(pt.Form, pt.Source, pt.Latency.Round(time.Microsecond).String(), pct(pt.Acc), mark)
	}
	t.write(opt.W)
	return nil
}

// ParallelLatency reports the serial vs. parallel numbers for the two
// concurrency layers added to the CKKS substrate: RNS-limb fan-out inside a
// single operation (ring worker pool) and batch fan-out of independent
// ciphertexts over one shared evaluator. Results are bit-identical across
// the serial and parallel paths by construction; the table quantifies the
// wall-clock difference on this machine.
func ParallelLatency(opt Options) error {
	workers := parallel.Workers(opt.Parallel)
	if opt.Parallel == 0 {
		// Unset knob: the parallel column defaults to all cores, since a
		// one-worker "parallel" column is just the serial column again.
		// An explicit -parallel 1 is honored (and visible in the header).
		workers = runtime.GOMAXPROCS(0)
	}
	iters := 8
	if opt.Fast {
		iters = 4
	}

	t := newTable(fmt.Sprintf("Parallel substrate latency (GOMAXPROCS=%d, workers=%d)", runtime.GOMAXPROCS(0), workers),
		"operation", "serial", "parallel", "speedup")

	// RNS-limb fan-out: forward+inverse NTT over a full limb chain at
	// N=8192 (the acceptance point of the concurrency PR).
	const logN, limbs = 13, 8
	n := 1 << logN
	primes, err := ring.GenPrimes(45, n, limbs, nil)
	if err != nil {
		return err
	}
	rq, err := ring.NewRing(n, primes)
	if err != nil {
		return err
	}
	poly := ring.NewSampler(rq, opt.Seed).Uniform(limbs - 1)
	nttOnce := func() {
		rq.NTT(poly)
		rq.INTT(poly)
	}
	ring.SetParallelism(1)
	nttOnce() // warmup
	start := time.Now()
	for i := 0; i < iters; i++ {
		nttOnce()
	}
	nttSerial := time.Since(start) / time.Duration(iters)
	ring.SetParallelism(workers)
	nttOnce()
	start = time.Now()
	for i := 0; i < iters; i++ {
		nttOnce()
	}
	nttParallel := time.Since(start) / time.Duration(iters)
	ring.SetParallelism(0)
	t.addRow(fmt.Sprintf("NTT+INTT (N=%d, %d limbs)", n, limbs),
		nttSerial.Round(time.Microsecond).String(),
		nttParallel.Round(time.Microsecond).String(),
		fmt.Sprintf("%.2fx", float64(nttSerial)/float64(nttParallel)))

	// Batch fan-out: B independent encrypted ReLUs over one shared
	// evaluator, serial loop vs. concurrent workers.
	form := paf.FormF1G2
	batch := 2 * workers
	if batch < 4 {
		batch = 4
	}
	serialD, parallelD, err := measureBatchReLU(form, opt, batch, workers)
	if err != nil {
		return err
	}
	t.addRow(fmt.Sprintf("encrypted ReLU ×%d (%s, shared evaluator)", batch, form),
		serialD.Round(time.Microsecond).String(),
		parallelD.Round(time.Microsecond).String(),
		fmt.Sprintf("%.2fx", float64(serialD)/float64(parallelD)))

	t.write(opt.W)
	if runtime.GOMAXPROCS(0) < 2 {
		fmt.Fprintln(opt.W, "\n(single-core machine: parallel paths validated for correctness; speedups require ≥ 2 cores)")
	}
	return nil
}

// measureBatchReLU times `batch` encrypted ReLU evaluations over one shared
// evaluator, first as a serial loop and then fanned across the given number
// of worker goroutines.
func measureBatchReLU(form string, opt Options, batch, workers int) (serialD, parallelD time.Duration, err error) {
	c, err := paf.New(form)
	if err != nil {
		return 0, 0, err
	}
	lit, err := ParamsForPAF(c, opt.Fast)
	if err != nil {
		return 0, 0, err
	}
	params, err := ckks.NewParameters(lit)
	if err != nil {
		return 0, 0, err
	}
	kg := ckks.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewEncryptor(params, pk, 2)
	he := hepoly.NewEvaluator(ckks.NewEvaluator(params, rlk))

	vals := make([]float64, params.Slots())
	for i := range vals {
		vals[i] = 0.8 * float64(i%16-8) / 8
	}
	pt, err := enc.EncodeReals(vals, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		return 0, 0, err
	}
	cts := make([]*ckks.Ciphertext, batch)
	for i := range cts {
		cts[i] = encryptor.Encrypt(pt)
	}

	if _, err := he.ReLU(c, cts[0]); err != nil { // warmup
		return 0, 0, err
	}
	start := time.Now()
	for _, ct := range cts {
		if _, err := he.ReLU(c, ct); err != nil {
			return 0, 0, err
		}
	}
	serialD = time.Since(start)

	start = time.Now()
	err = parallel.For(len(cts), workers, func(i int) error {
		_, err := he.ReLU(c, cts[i])
		return err
	})
	return serialD, time.Since(start), err
}
