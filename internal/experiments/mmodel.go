package experiments

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/efficientfhe/smartpaf/internal/registry"
	"github.com/efficientfhe/smartpaf/internal/server"
)

func init() {
	register("mmodel", MultiModelLoad)
}

// MultiModelLoad measures the multi-model registry under a mixed workload
// and lifecycle churn: a 2-model catalog shares one worker budget while
// model "alpha" floods and model "beta" sends paced requests; mid-run a
// third model ("gamma") is hot-deployed over HTTP and served, then alpha is
// retired mid-traffic — its in-flight requests fail 410 and its stack
// drains. The table reports per-model p50/p99 latency under the shared
// budget; the summary lines verify the tentpole properties: peak parallelism
// stays within the single budget across all models, and retirement never
// panics the server.
func MultiModelLoad(opt Options) error {
	logN, floodersN, pacedN := 9, 6, 8
	if !opt.Fast {
		logN, floodersN, pacedN = 11, 10, 12
	}
	// Unset knob: a deliberately small budget (2), so the flood saturates it
	// and cross-model scheduling — not spare capacity — decides who waits.
	workers := opt.Parallel
	if workers == 0 {
		workers = 2
	}

	newModel := func(name string, seed int64) (*registry.Model, error) {
		m, err := registry.DemoModel(seed, logN)
		if err != nil {
			return nil, err
		}
		m.Name = name
		return m, nil
	}
	alpha, err := newModel("alpha", opt.Seed)
	if err != nil {
		return err
	}
	beta, err := newModel("beta", opt.Seed+1)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Options{MaxBatch: 4, Workers: workers}, alpha, beta)
	if err != nil {
		return err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	go func() { _ = http.Serve(ln, srv.Handler()) }()

	ctx := context.Background()
	client := server.NewClient("http://"+ln.Addr().String(), nil)
	alphaSess, err := client.NewSessionFor(ctx, "alpha", opt.Seed^0xa1fa)
	if err != nil {
		return err
	}
	betaSess, err := client.NewSessionFor(ctx, "beta", opt.Seed^0xbe7a)
	if err != nil {
		return err
	}

	x := make([]float64, alpha.InputDim)
	for i := range x {
		x[i] = float64(i%7)/7.0 - 0.5
	}
	if _, err := alphaSess.Infer(ctx, x); err != nil { // warm caches before timing
		return err
	}
	if _, err := betaSess.Infer(ctx, x); err != nil {
		return err
	}

	type tally struct {
		lats    []time.Duration
		retired int
	}
	results := map[string]*tally{"alpha": {}, "beta": {}, "gamma": {}}
	var (
		mu     sync.Mutex
		wg     sync.WaitGroup
		runErr error
	)
	record := func(model string, d time.Duration, err error) bool {
		mu.Lock()
		defer mu.Unlock()
		t := results[model]
		switch {
		case err == nil:
			t.lats = append(t.lats, d)
			return true
		case strings.Contains(err.Error(), "session closed") ||
			strings.Contains(err.Error(), "unknown session"):
			// Retirement in action: queued jobs 410, post-removal lookups 404.
			t.retired++
			return false
		default:
			if runErr == nil {
				runErr = err
			}
			return false
		}
	}

	// Alpha flooders hammer until retirement cuts them off (bounded so a
	// missed retire cannot spin forever).
	for g := 0; g < floodersN; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 400; r++ {
				start := time.Now()
				_, err := alphaSess.Infer(ctx, x)
				if !record("alpha", time.Since(start), err) {
					return
				}
			}
		}()
	}
	// Beta paces single requests through the flood.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < pacedN; r++ {
			start := time.Now()
			_, err := betaSess.Infer(ctx, x)
			if !record("beta", time.Since(start), err) {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Mid-run lifecycle: hot-deploy gamma over HTTP, serve it, then retire
	// alpha while its flood is standing.
	gamma, err := newModel("gamma", opt.Seed+2)
	if err != nil {
		return err
	}
	time.Sleep(100 * time.Millisecond)
	if _, err := client.Deploy(ctx, gamma); err != nil {
		return err
	}
	gammaSess, err := client.NewSessionFor(ctx, "gamma", opt.Seed^0x9a3a)
	if err != nil {
		return err
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < pacedN; r++ {
			start := time.Now()
			_, err := gammaSess.Infer(ctx, x)
			if !record("gamma", time.Since(start), err) {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	time.Sleep(150 * time.Millisecond)
	if err := client.Retire(ctx, "alpha"); err != nil {
		return err
	}
	wg.Wait()
	if runErr != nil {
		return runErr
	}

	t := newTable(fmt.Sprintf("Multi-model mixed workload, shared budget=%d (N=%d)", workers, 1<<logN),
		"model", "role", "ok", "410s", "p50", "p99")
	for _, row := range []struct{ name, role string }{
		{"alpha", "flood, retired mid-run"},
		{"beta", "paced"},
		{"gamma", "hot-deployed, paced"},
	} {
		res := results[row.name]
		t.addRowf("%s|%s|%d|%d|%s|%s", row.name, row.role, len(res.lats), res.retired,
			percentile(res.lats, 0.50).Round(time.Millisecond),
			percentile(res.lats, 0.99).Round(time.Millisecond))
	}
	t.write(opt.W)

	st := srv.Stats()
	fmt.Fprintf(opt.W, "\npeak in-flight %d within budget %d; %d units over %d scheduler turns\n",
		st.PeakInFlight, st.Workers, st.UnitsRun, st.Quanta)
	if st.PeakInFlight > st.Workers {
		return fmt.Errorf("mmodel: peak parallelism %d exceeded the %d-worker budget", st.PeakInFlight, st.Workers)
	}
	fmt.Fprintf(opt.W, "catalog after churn: %d models (gamma hot-deployed, alpha retired; %d alpha requests saw 410/404)\n",
		srv.Registry().Len(), results["alpha"].retired)
	fmt.Fprintln(opt.W, "one scheduler and one worker budget served every model; retirement drained gracefully.")
	return nil
}
