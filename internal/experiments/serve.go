package experiments

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"github.com/efficientfhe/smartpaf/internal/registry"
	"github.com/efficientfhe/smartpaf/internal/server"
)

func init() {
	register("serve", ServeLoad)
}

// ServeLoad measures the hennserve front end under concurrent encrypted
// traffic: one registered session, increasing numbers of concurrent clients
// firing over real loopback HTTP, with the scheduler fanning queued jobs
// across the shared worker pool. The serial row (1 client, sequential
// requests) is the baseline; the speedup column is parallel throughput over
// that baseline. Fan-out only pays on multi-core hardware — on one core the
// table documents the overhead instead. See mserve for the multi-session
// fairness picture.
func ServeLoad(opt Options) error {
	logN, perClient := 9, 3
	if !opt.Fast {
		logN, perClient = 12, 4
	}

	// Unset knob: batch workers default to all cores, since a one-worker
	// "batched" column is just the serial column again (parlat's rule).
	// An explicit -parallel 1 is honored.
	workers := opt.Parallel
	if workers == 0 {
		workers = -1
	}

	model, err := registry.DemoModel(opt.Seed, logN)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Options{MaxBatch: 16, Workers: workers}, model)
	if err != nil {
		return err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	go func() { _ = http.Serve(ln, srv.Handler()) }()

	ctx := context.Background()
	client := server.NewClient("http://"+ln.Addr().String(), nil)

	regStart := time.Now()
	sess, err := client.NewSession(ctx, opt.Seed^0xc11e47)
	if err != nil {
		return err
	}
	regTime := time.Since(regStart)

	info := sess.Model()
	x := make([]float64, info.InputDim)
	for i := range x {
		x[i] = float64(i%7)/7.0 - 0.5
	}
	if _, err := sess.Infer(ctx, x); err != nil { // warm caches before timing
		return err
	}

	fmt.Fprintf(opt.W, "model %q: N=%d, %d levels, %d rotation keys; session setup %s\n",
		info.Name, 1<<logN, info.Levels, len(info.Rotations), regTime.Round(time.Millisecond))

	t := newTable(fmt.Sprintf("Serving throughput vs concurrent clients (GOMAXPROCS=%d, batch<=16)", runtime.GOMAXPROCS(0)),
		"clients", "requests", "wall", "req/s", "mean latency", "speedup")

	var baseline float64
	for _, clients := range []int{1, 2, 4, 8} {
		total := clients * perClient
		var (
			wg     sync.WaitGroup
			mu     sync.Mutex
			latSum time.Duration
			runErr error
		)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := 0; r < perClient; r++ {
					reqStart := time.Now()
					_, err := sess.Infer(ctx, x)
					mu.Lock()
					latSum += time.Since(reqStart)
					if err != nil && runErr == nil {
						runErr = err
					}
					mu.Unlock()
					if err != nil {
						return
					}
				}
			}()
		}
		wg.Wait()
		if runErr != nil {
			return runErr
		}
		wall := time.Since(start)
		tput := float64(total) / wall.Seconds()
		if clients == 1 {
			baseline = tput
		}
		t.addRowf("%d|%d|%s|%.2f|%s|%.2fx", clients, total,
			wall.Round(time.Millisecond), tput,
			(latSum / time.Duration(total)).Round(time.Millisecond), tput/baseline)
	}
	t.write(opt.W)
	fmt.Fprintln(opt.W, "\nserial row = sequential single-client requests; other rows share the")
	fmt.Fprintln(opt.W, "session, so the server batches whatever queues behind the evaluator.")
	return nil
}
