package experiments

import (
	"fmt"

	"github.com/efficientfhe/smartpaf/internal/paf"
	"github.com/efficientfhe/smartpaf/internal/smartpaf"
)

func init() {
	register("tab1", Table1)
	register("tab2", Table2)
	register("tab5", Table5)
	register("tab8", Table8)
	register("appendixB", AppendixB)
}

// Table2 regenerates the paper's Table 2: PAF forms with their degree and
// multiplication depth, extended with the operation counts our latency model
// uses. (The paper's degree labels for f1²∘g1² and α=7 are internally
// inconsistent; we report the sum of stage degrees — see DESIGN.md.)
func Table2(opt Options) error {
	t := newTable("Table 2 — PAF forms, degree and multiplication depth",
		"form", "label", "degree(sum)", "paper degree", "depth", "ct-mults(ReLU)", "const-mults(ReLU)")
	paperDegrees := map[string]string{
		"alpha10": "27", "f1f1_g1g1": "14", "alpha7": "12", "f2_g3": "12", "f2_g2": "10", "f1_g2": "5",
	}
	for _, name := range paf.AllFormsWithBaseline {
		c, err := paf.New(name)
		if err != nil {
			return err
		}
		ops := c.OpsReLU()
		t.addRow(name, c.Label, fmt.Sprint(c.Degree()), paperDegrees[name],
			fmt.Sprint(c.Depth()), fmt.Sprint(ops.CtMults), fmt.Sprint(ops.ConstMults))
	}
	t.write(opt.W)
	return nil
}

// Table5 echoes the training hyperparameters (paper Appendix A).
func Table5(opt Options) error {
	cfg := smartpaf.DefaultConfig(paf.FormF1F1G1G1)
	t := newTable("Table 5 — baseline training parameters", "configuration", "value")
	t.addRow("Replaced layer", "ReLU & MaxPooling")
	t.addRow("Optimizer", "Adam")
	t.addRow("learning rate for PAF", fmt.Sprint(cfg.LRPAF))
	t.addRow("learning rate for other layers", fmt.Sprint(cfg.LRLinear))
	t.addRow("Weight decay for PAF", fmt.Sprint(cfg.WDPAF))
	t.addRow("Weight decay for other layers", fmt.Sprint(cfg.WDLinear))
	t.addRow("BatchNorm Tracking", "False (batch statistics always)")
	t.addRow("Dropout", "False (enabled by scheduler on overfitting)")
	t.write(opt.W)
	return nil
}

// Table8 regenerates the multiplication-depth walkthrough of f1∘g2
// (paper Table 8 / Fig. 10): the depth at which each intermediate of
// y = f1(x), g2(y) becomes available under exponentiation by squaring with
// folded coefficients.
func Table8(opt Options) error {
	t := newTable("Table 8 / Fig. 10 — f1∘g2 multiplication-depth walkthrough",
		"depth", "intermediates available")
	rows := []struct {
		depth int
		vars  string
	}{
		{0, "x (fresh ciphertext), coefficients c1,c3,d1,d3,d5 (plaintext)"},
		{1, "x² ; c1·x, c3·x (coefficient-folded)"},
		{2, "c3·x³ ; y = f1(x) = c1·x + c3·x³"},
		{3, "y² ; d1·y, d3·y, d5·y"},
		{4, "d3·y³ ; y⁴"},
		{5, "d5·y⁵ ; g2(y) = d1·y + d3·y³ + d5·y⁵"},
	}
	for _, r := range rows {
		t.addRow(fmt.Sprint(r.depth), r.vars)
	}
	t.write(opt.W)

	c := paf.MustNew(paf.FormF1G2)
	fmt.Fprintf(opt.W, "\nstage depths: %v  (f1: ⌈log2(3+1)⌉ = 2, g2: ⌈log2(5+1)⌉ = 3)\n", c.StageDepths())
	fmt.Fprintf(opt.W, "total sign depth: %d   ReLU depth (+1 for x·p(x)): %d\n", c.Depth(), c.DepthReLU())
	return nil
}

// AppendixB validates and summarizes the embedded post-training coefficient
// tables (paper Tables 6, 7, 9, 10, 11): per layer, the sign error of the
// published tuned PAF on the central band.
func AppendixB(opt Options) error {
	forms := []string{paf.FormF1G2, paf.FormF2G2, paf.FormF2G3, paf.FormF1F1G1G1}
	t := newTable("Appendix B — published per-layer tuned coefficients (ResNet-18/ImageNet-1k)",
		"form", "layers", "mean sign err |x|∈[0.3,1]", "max sign err |x|∈[0.3,1]")
	for _, name := range forms {
		layers := paf.PaperTunedLayers(name)
		var sum, worst float64
		for layer := 0; layer < layers; layer++ {
			c, err := paf.PaperTuned(name, layer)
			if err != nil {
				return err
			}
			e := c.SignError(0.3, 200)
			sum += e
			if e > worst {
				worst = e
			}
		}
		t.addRow(name, fmt.Sprint(layers), fmt.Sprintf("%.3f", sum/float64(layers)), fmt.Sprintf("%.3f", worst))
	}
	t.write(opt.W)
	fmt.Fprintf(opt.W, "\nα=7 shared minimax coefficients (Table 7): stage1 %v, stage2 %v\n",
		paf.Alpha7Stage1().Coeffs, paf.Alpha7Stage2().Coeffs)
	return nil
}

// Table1 echoes the paper's qualitative comparison with prior work and maps
// each SMART-PAF checkmark to the measurement in this repository that backs
// it.
func Table1(opt Options) error {
	t := newTable("Table 1 — comparison with prior approaches",
		"approach", "low communication", "low accuracy degradation", "low latency")
	t.addRow("SafeNet, CryptoGCN (partial replacement + hybrid)", "no", "no", "yes")
	t.addRow("CryptoNet, CryptoDL, LoLa, CHE (low-degree PAF)", "no", "no", "yes")
	t.addRow("F1, CraterLake, BTS (27-degree PAF on accelerators)", "yes", "yes", "no")
	t.addRow("HEAX, Delphi, Gazelle, Cheetah (hybrid schemes)", "no", "no", "yes")
	t.addRow("SHE (TFHE)", "yes", "yes", "no")
	t.addRow("SMART-PAF (this work)", "yes", "yes", "yes")
	t.write(opt.W)
	fmt.Fprintln(opt.W, `
Backing measurements in this repository:
  low communication:        the deployed model is pure FHE (nn.CheckFHECompatible;
                            examples/private_mlp never leaves the encrypted domain)
  low accuracy degradation: Table 3 / Fig. 1 (SMART-PAF SS ≈ original accuracy)
  low latency:              Table 4 (3.5x–15x measured speedup over the 27-degree PAF)`)
	return nil
}
