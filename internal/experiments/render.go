package experiments

import (
	"fmt"
	"io"
	"strings"
)

// table is a minimal text table renderer for experiment output.
type table struct {
	title   string
	headers []string
	rows    [][]string
}

func newTable(title string, headers ...string) *table {
	return &table{title: title, headers: headers}
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addRowf(format string, args ...any) {
	t.addRow(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "\n== %s ==\n", t.title)
	var sb strings.Builder
	for i, h := range t.headers {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], h)
	}
	fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	fmt.Fprintln(w, strings.Repeat("-", len(strings.TrimRight(sb.String(), " "))))
	for _, r := range t.rows {
		sb.Reset()
		for i, c := range r {
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			fmt.Fprintf(&sb, "%-*s  ", width, c)
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
