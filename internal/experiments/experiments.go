// Package experiments regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §4 for the experiment index). Each
// experiment is a named runner writing a text rendition of the paper
// artifact; `cmd/experiments` exposes them on the command line and
// bench_test.go wires the cheap ones into testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"github.com/efficientfhe/smartpaf/internal/data"
	"github.com/efficientfhe/smartpaf/internal/nn"
	"github.com/efficientfhe/smartpaf/internal/smartpaf"
)

// Options control experiment scale and output.
type Options struct {
	// Fast shrinks datasets, model widths, training budgets and ring sizes
	// so the full suite completes on a laptop CPU in minutes. Full mode
	// approaches the paper's training budget (hours).
	Fast bool
	Seed int64
	W    io.Writer

	// Parallel is the worker count used by batch-parallel stages (per-slot
	// CT in the pipeline, the batch columns of the parlat tables). 0 or 1
	// runs serially; negative uses all cores. Results are identical either
	// way — only wall-clock changes.
	Parallel int
}

// Runner executes one experiment.
type Runner func(Options) error

var runners = map[string]Runner{}

func register(id string, r Runner) { runners[id] = r }

// IDs lists the registered experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(runners))
	for id := range runners {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given id.
func Run(id string, opt Options) error {
	r, ok := runners[id]
	if !ok {
		return fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
	if opt.W == nil {
		return fmt.Errorf("experiments: no output writer")
	}
	if opt.Seed == 0 {
		opt.Seed = 42
	}
	return r(opt)
}

// archKind names the two evaluation models.
type archKind int

const (
	archResNet archKind = iota
	archVGG
)

// testbed bundles a pretrained model factory with its datasets, so every
// ablation config starts from identical weights without re-pretraining.
type testbed struct {
	arch     archKind
	dcfg     data.Config
	width    int
	seed     int64
	train    *data.Dataset
	val      *data.Dataset
	snap     [][]float64
	origAcc  float64
	buildNew func() *nn.Model
}

// resnetBed builds the "ResNet-18 / imagenet-like" testbed.
func resnetBed(opt Options) *testbed {
	dcfg := data.ImageNetLike()
	width := 4
	pretrain := 25
	if opt.Fast {
		// Calibrated so the pretrained model reaches ~89% validation
		// accuracy in ~25s on one core while untuned low-degree PAF
		// replacement still visibly degrades it (the Fig. 7 premise).
		dcfg.Classes = 8
		dcfg.Size = 12
		dcfg.Train = 800
		dcfg.Val = 200
		dcfg.NoiseStd = 0.15
		dcfg.SharedWeight = 0.4
		dcfg.JitterStd = 0.12
		width = 2
		pretrain = 20
	}
	return newTestbed(archResNet, dcfg, width, pretrain, opt.Seed)
}

// vggBed builds the "VGG-19 / cifar-like" testbed. VGG-19's five pooling
// stages require at least 32×32 inputs.
func vggBed(opt Options) *testbed {
	dcfg := data.CIFARLike()
	dcfg.Size = 32
	// Width 1 keeps the full-mode model below the accuracy ceiling (width 2
	// saturates the cifar-like task at 100%, hiding replacement effects).
	width := 1
	pretrain := 15
	if opt.Fast {
		// Calibrated: ~80% validation accuracy after a ~9s pretrain.
		dcfg.Classes = 6
		dcfg.Train = 500
		dcfg.Val = 120
		width = 1
		pretrain = 12
	}
	return newTestbed(archVGG, dcfg, width, pretrain, opt.Seed)
}

func newTestbed(arch archKind, dcfg data.Config, width, pretrainEpochs int, seed int64) *testbed {
	train, val := data.Generate(dcfg)
	tb := &testbed{arch: arch, dcfg: dcfg, width: width, seed: seed, train: train, val: val}
	tb.buildNew = func() *nn.Model {
		switch arch {
		case archVGG:
			return nn.VGG19(width, dcfg.Classes, dcfg.Channels, dcfg.Size, dcfg.Size, seed)
		default:
			return nn.ResNet18(width, dcfg.Classes, dcfg.Channels, dcfg.Size, dcfg.Size, seed)
		}
	}
	m := tb.buildNew()
	smartpaf.Pretrain(m, train, pretrainEpochs, 32, 1e-3, seed)
	tb.snap = m.Snapshot()
	tb.origAcc = accuracy(m, val)
	return tb
}

// fresh returns a model with the pretrained weights.
func (tb *testbed) fresh() *nn.Model {
	m := tb.buildNew()
	if err := m.Restore(tb.snap); err != nil {
		panic(err)
	}
	return m
}

func accuracy(m *nn.Model, ds *data.Dataset) float64 {
	var batches []nn.Batch
	for _, b := range ds.Batches(32, nil) {
		batches = append(batches, nn.Batch{X: b.X, Y: b.Y})
	}
	return nn.Accuracy(m, batches)
}

// pipelineConfig returns the training config scaled for the mode.
func pipelineConfig(form string, opt Options) smartpaf.Config {
	cfg := smartpaf.DefaultConfig(form)
	if opt.Fast {
		cfg.Epochs = 1
		cfg.MaxGroupsPerStep = 1
		cfg.ProfileBatches = 2
	} else {
		cfg.Epochs = 3
		cfg.MaxGroupsPerStep = 2
	}
	cfg.Seed = opt.Seed
	cfg.Parallel = opt.Parallel
	return cfg
}

// formsFor picks the PAF set: a subset in fast mode, Table 2's full list
// otherwise.
func formsFor(opt Options) []string {
	if opt.Fast {
		return []string{"f1f1_g1g1", "f2_g2", "f1_g2"}
	}
	return []string{"f1f1_g1g1", "alpha7", "f2_g3", "f2_g2", "f1_g2"}
}
