package experiments

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"github.com/efficientfhe/smartpaf/internal/registry"
	"github.com/efficientfhe/smartpaf/internal/server"
)

func init() {
	register("upgrade", UpgradeRollout)
}

// UpgradeRollout drives a live v1→v2 model rollout under concurrent traffic
// and checks the versioned-lifecycle contract end to end: sessions opened
// before the supersede keep serving on the v1 stack (every answer is checked
// against v1's plaintext reference — a crossed wire would answer with v2's
// weights), sessions opened after it bind v2, no request fails at any point,
// the v1 stack's caches free once its last session disconnects (Drained
// fires), and — because the server runs on a state directory — a restart
// rebuilds the identical catalog and still serves. The table reports
// per-version request counts and p50/p99 latency through the rollout.
func UpgradeRollout(opt Options) error {
	logN, oldSessions, newSessions, reqs := 9, 2, 2, 6
	if !opt.Fast {
		logN, oldSessions, newSessions, reqs = 11, 3, 3, 10
	}
	workers := opt.Parallel
	if workers == 0 {
		workers = 2
	}
	const adminToken = "upgrade-demo-token"

	stateDir, err := os.MkdirTemp("", "upgrade-state-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(stateDir)

	newVersion := func(seed int64) (*registry.Model, error) {
		m, err := registry.DemoModel(seed, logN)
		if err != nil {
			return nil, err
		}
		m.Name = "alpha"
		return m, nil
	}
	v1, err := newVersion(opt.Seed)
	if err != nil {
		return err
	}
	v2, err := newVersion(opt.Seed + 1)
	if err != nil {
		return err
	}

	srv, err := server.New(server.Options{
		Workers:    workers,
		StateDir:   stateDir,
		AdminToken: adminToken,
	}, v1)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return err
	}
	go func() { _ = http.Serve(ln, srv.Handler()) }()

	ctx := context.Background()
	client := server.NewClient("http://"+ln.Addr().String(), nil).WithAdminToken(adminToken)
	dep1, ok := srv.Registry().Resolve("alpha@1")
	if !ok {
		srv.Close()
		return fmt.Errorf("upgrade: alpha@1 missing after deploy")
	}

	x := make([]float64, v1.InputDim)
	for i := range x {
		x[i] = float64(i%7)/7.0 - 0.5
	}
	refOut := func(m *registry.Model) []float64 { return m.MLP.InferPlain(x)[:m.OutputDim] }
	matches := func(got, want []float64) bool {
		for i := range want {
			if d := got[i] - want[i]; d > 1e-3 || d < -1e-3 {
				return false
			}
		}
		return true
	}

	var (
		mu     sync.Mutex
		lats   = map[int][]time.Duration{1: nil, 2: nil}
		failed int
		runErr error
	)
	record := func(version int, want []float64, got []float64, d time.Duration, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			failed++
			if runErr == nil {
				runErr = err
			}
			return
		}
		if !matches(got, want) {
			failed++
			if runErr == nil {
				runErr = fmt.Errorf("upgrade: a v%d session's answer diverged from the v%d reference", version, version)
			}
			return
		}
		lats[version] = append(lats[version], d)
	}
	drive := func(wg *sync.WaitGroup, sess *server.Session, version int, want []float64) {
		defer wg.Done()
		for r := 0; r < reqs; r++ {
			start := time.Now()
			got, err := sess.Infer(ctx, x)
			record(version, want, got, time.Since(start), err)
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Old-version sessions start, warm, and keep a standing flow of traffic.
	var oldWG sync.WaitGroup
	oldSess := make([]*server.Session, oldSessions)
	for i := range oldSess {
		if oldSess[i], err = client.NewSessionFor(ctx, "alpha", opt.Seed^int64(0x1000+i)); err != nil {
			srv.Close()
			return err
		}
		if got := oldSess[i].Model().Version; got != 1 {
			srv.Close()
			return fmt.Errorf("upgrade: pre-rollout session bound v%d, want v1", got)
		}
		oldWG.Add(1)
		go drive(&oldWG, oldSess[i], 1, refOut(v1))
	}

	// The rollout lands mid-traffic.
	time.Sleep(50 * time.Millisecond)
	info2, err := client.Supersede(ctx, v2)
	if err != nil {
		srv.Close()
		return err
	}
	if info2.Version != 2 {
		srv.Close()
		return fmt.Errorf("upgrade: supersede published v%d, want v2", info2.Version)
	}

	// New registrations resolve the bare name to v2 and serve v2's weights
	// while v1 traffic is still in flight.
	var newWG sync.WaitGroup
	for i := 0; i < newSessions; i++ {
		sess, err := client.NewSessionFor(ctx, "alpha", opt.Seed^int64(0x2000+i))
		if err != nil {
			srv.Close()
			return err
		}
		if got := sess.Model().Version; got != 2 {
			srv.Close()
			return fmt.Errorf("upgrade: post-rollout session bound v%d, want v2", got)
		}
		newWG.Add(1)
		go drive(&newWG, sess, 2, refOut(v2))
	}
	oldWG.Wait()
	newWG.Wait()
	if runErr != nil {
		srv.Close()
		return runErr
	}

	// The last v1 session disconnecting must free the old stack.
	for _, sess := range oldSess {
		if err := sess.Close(ctx); err != nil {
			srv.Close()
			return err
		}
	}
	select {
	case <-dep1.Drained():
	case <-time.After(10 * time.Second):
		srv.Close()
		return fmt.Errorf("upgrade: v1 stack never drained after its sessions closed")
	}

	t := newTable(fmt.Sprintf("Live v1→v2 rollout, %d workers (N=%d)", workers, 1<<logN),
		"version", "role", "ok", "failed", "p50", "p99")
	for _, row := range []struct {
		version int
		role    string
	}{
		{1, "pre-rollout sessions, drained"},
		{2, "post-rollout sessions"},
	} {
		t.addRowf("alpha@%d|%s|%d|0|%s|%s", row.version, row.role, len(lats[row.version]),
			percentile(lats[row.version], 0.50).Round(time.Millisecond),
			percentile(lats[row.version], 0.99).Round(time.Millisecond))
	}
	t.write(opt.W)
	fmt.Fprintf(opt.W, "\nzero failed requests through the rollout (%d on v1, %d on v2); v1 caches freed on drain\n",
		len(lats[1]), len(lats[2]))

	// Restart: the catalog must rebuild from the state directory alone —
	// same refs, same parameter bytes — and still serve.
	before := srv.Registry().List()
	ln.Close()
	srv.Close()
	srv2, err := server.New(server.Options{Workers: workers, StateDir: stateDir})
	if err != nil {
		return fmt.Errorf("upgrade: restart from %s: %w", stateDir, err)
	}
	defer srv2.Close()
	after := srv2.Registry().List()
	if len(after) != len(before) {
		return fmt.Errorf("upgrade: catalog size changed across restart: %d -> %d", len(before), len(after))
	}
	for i := range before {
		if after[i].Ref() != before[i].Ref() {
			return fmt.Errorf("upgrade: catalog entry changed across restart: %s -> %s", before[i].Ref(), after[i].Ref())
		}
		if string(after[i].ParamBytes()) != string(before[i].ParamBytes()) {
			return fmt.Errorf("upgrade: %s parameter bytes changed across restart", after[i].Ref())
		}
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln2.Close()
	go func() { _ = http.Serve(ln2, srv2.Handler()) }()
	sess, err := server.NewClient("http://"+ln2.Addr().String(), nil).NewSessionFor(ctx, "alpha", opt.Seed^0x3000)
	if err != nil {
		return fmt.Errorf("upgrade: registering after restart: %w", err)
	}
	got, err := sess.Infer(ctx, x)
	if err != nil {
		return fmt.Errorf("upgrade: inference after restart: %w", err)
	}
	if !matches(got, refOut(v2)) {
		return fmt.Errorf("upgrade: restarted alpha@2 diverged from the v2 reference")
	}
	fmt.Fprintf(opt.W, "restart check: %d-entry catalog (alpha@2) rebuilt byte-identically from the state dir and served a fresh session\n",
		len(after))
	return nil
}
