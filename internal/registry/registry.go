package registry

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/efficientfhe/smartpaf/internal/ckks"
	"github.com/efficientfhe/smartpaf/internal/henn"
)

// Sentinel errors callers branch on (the HTTP layer maps them to statuses).
var (
	// ErrExists is returned by Deploy when the name already has a live
	// version (use Supersede to publish a new version behind it).
	ErrExists = errors.New("registry: model already deployed")
	// ErrUnknown is returned by Retire/Resolve misses.
	ErrUnknown = errors.New("registry: unknown model")
	// ErrRetired is returned by Bind once a model version has been retired.
	ErrRetired = errors.New("registry: model retired")
	// ErrDraining is returned by Bind for a version superseded by a newer
	// one: existing sessions keep serving it, new sessions must bind the
	// successor.
	ErrDraining = errors.New("registry: model version draining")
)

// Ref renders the canonical versioned reference for a model version,
// "name@version" (e.g. "alpha@2"). Versions start at 1.
func Ref(name string, version int) string {
	return name + "@" + strconv.Itoa(version)
}

// SplitRef parses a model reference. A bare name ("alpha") returns version 0,
// meaning "the newest live version"; "alpha@2" pins version 2 exactly.
// Version numbers below 1 and malformed suffixes are errors.
func SplitRef(ref string) (name string, version int, err error) {
	name, ver, ok := strings.Cut(ref, "@")
	if !ok {
		return ref, 0, nil
	}
	v, err := strconv.Atoi(ver)
	if err != nil || v < 1 {
		return "", 0, fmt.Errorf("registry: bad version in %q (want name@N with N >= 1)", ref)
	}
	return name, v, nil
}

// Lifecycle states of a deployed version.
const (
	stateLive = iota
	// stateDraining: superseded — no new binds, existing sessions keep
	// serving until they release; the stack frees on the last reference.
	stateDraining
	// stateRetired: removed from the catalog, bound sessions are being
	// closed by the server; frees on the last reference.
	stateRetired
)

// Deployed is one compiled serving stack: a model version plus everything
// derived from it at deploy time — compiled parameters, a shared encoder, the
// canonical parameter-literal bytes sessions must match, the rotation-step
// set (computing it warms every linear layer's diagonal-plan cache), and
// per-model counters. All fields are immutable after Deploy except the
// counters and the lifecycle state, so any number of sessions and workers
// can share one Deployed without locking.
type Deployed struct {
	model      *Model
	version    int
	params     *ckks.Parameters
	enc        *ckks.Encoder
	paramBytes []byte
	levels     int
	rotations  []int
	// compileTime is how long compile spent building the stack (parameter
	// compilation plus diagonal-plan warming); the server's telemetry plane
	// records it per deploy.
	compileTime time.Duration
	// delist removes this version from its registry's catalog once the
	// stack frees; set at publish time, nil for never-published stacks.
	delist func()

	unitsRun atomic.Int64

	mu    sync.Mutex
	refs  int  //hennlint:guarded-by(mu)
	state int  //hennlint:guarded-by(mu)
	freed bool //hennlint:guarded-by(mu)
	// drained is closed when the stack stops serving (drain or retire) and
	// the last reference is released.
	drained chan struct{}
}

// Model returns the deployed artifact (treat as read-only).
func (d *Deployed) Model() *Model { return d.model }

// Name returns the model's base name (no version suffix).
func (d *Deployed) Name() string { return d.model.Name }

// Version returns the registry-assigned version number (>= 1).
func (d *Deployed) Version() int { return d.version }

// Ref returns the canonical versioned reference, e.g. "alpha@2".
func (d *Deployed) Ref() string { return Ref(d.model.Name, d.version) }

// Params returns the compiled CKKS parameters.
func (d *Deployed) Params() *ckks.Parameters { return d.params }

// Encoder returns the shared encoder for the model's parameters.
func (d *Deployed) Encoder() *ckks.Encoder { return d.enc }

// ParamBytes returns the canonical literal encoding sessions must byte-match.
func (d *Deployed) ParamBytes() []byte { return d.paramBytes }

// Levels returns the multiplicative levels one inference consumes.
func (d *Deployed) Levels() int { return d.levels }

// Rotations returns the rotation steps a session's key set must cover.
func (d *Deployed) Rotations() []int { return d.rotations }

// CompileTime reports how long the deploy-time compilation of this stack took.
func (d *Deployed) CompileTime() time.Duration { return d.compileTime }

// AddUnitRun bumps the per-model inference counter.
func (d *Deployed) AddUnitRun() { d.unitsRun.Add(1) }

// UnitsRun reports how many inference units have run against this model.
func (d *Deployed) UnitsRun() int64 { return d.unitsRun.Load() }

// Bind takes a session reference. It fails once the version stops accepting
// new sessions: ErrDraining after a supersede (bind the successor instead),
// ErrRetired after a retire — a registering client racing either gets a
// clean error instead of a stack that is being torn down.
func (d *Deployed) Bind() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch d.state {
	case stateDraining:
		return ErrDraining
	case stateRetired:
		return ErrRetired
	}
	d.refs++
	return nil
}

// Retain takes an additional reference for an in-flight inference unit. The
// caller must already hold a reference (the scheduler retains on behalf of a
// bound session before submitting a unit), so Retain cannot race the final
// drain and never fails — a draining or retired model keeps serving its
// in-flight units.
func (d *Deployed) Retain() {
	d.mu.Lock()
	d.refs++
	d.mu.Unlock()
}

// Release drops one reference. When a draining or retired version's last
// reference goes, the stack is freed: the MLP's diagonal-plan and plaintext
// caches are dropped, Drained is closed and the version leaves the catalog.
// Freeing is idempotent — a scheduler's Retain racing the final session
// Release can briefly resurrect the count after the free, and its own
// Release must not free twice.
func (d *Deployed) Release() {
	d.mu.Lock()
	if d.refs <= 0 {
		d.mu.Unlock()
		panic("registry: Release without a matching Bind/Retain")
	}
	d.refs--
	free := d.claimFreeLocked()
	d.mu.Unlock()
	if free {
		d.free()
	}
}

// claimFreeLocked reports (once) that the stack should be freed now.
//
//hennlint:holds(mu)
func (d *Deployed) claimFreeLocked() bool {
	if d.state != stateLive && d.refs == 0 && !d.freed {
		d.freed = true
		return true
	}
	return false
}

// setState moves the lifecycle forward (never backward: a retire of an
// already-draining version sticks), freeing immediately when nothing is
// bound.
func (d *Deployed) setState(state int) {
	d.mu.Lock()
	if state > d.state {
		d.state = state
	}
	free := d.claimFreeLocked()
	d.mu.Unlock()
	if free {
		d.free()
	}
}

func (d *Deployed) free() {
	d.model.MLP.DropCaches()
	close(d.drained)
	if d.delist != nil {
		d.delist()
	}
}

// Refs reports the current reference count (bound sessions plus in-flight
// units); primarily for tests and stats.
func (d *Deployed) Refs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.refs
}

// Retired reports whether the version has been retired (not merely
// superseded).
func (d *Deployed) Retired() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state == stateRetired
}

// Draining reports whether the version was superseded and is serving only
// its existing sessions until they release.
func (d *Deployed) Draining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state == stateDraining
}

// Drained is closed once a draining or retired version's last reference is
// released and its caches are freed. For a live version the channel never
// closes.
func (d *Deployed) Drained() <-chan struct{} { return d.drained }

// family is one model name's version history: the monotonic version counter
// plus every version still in the catalog (live or draining). The counter
// survives full retirement so version numbers are never reused — a draining
// alpha@1 can never collide with a fresh deploy of "alpha".
type family struct {
	//hennlint:guarded-by(Registry.mu)
	next     int
	versions map[int]*Deployed //hennlint:guarded-by(Registry.mu)
}

// Registry is the concurrency-safe versioned model catalog. An optional
// Store (UseStore) persists every deployed bundle so a restart reloads the
// catalog.
type Registry struct {
	// The catalog lock nests outside the per-stack lock: list/resolve
	// paths hold mu while querying a Deployed's drain state, and
	// Deployed.free deliberately releases d.mu before delisting.
	//hennlint:lock-order(Registry.mu < Deployed.mu)
	mu       sync.RWMutex
	families map[string]*family //hennlint:guarded-by(mu)
	store    *Store             //hennlint:guarded-by(mu)
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: map[string]*family{}}
}

// UseStore attaches a persistent bundle store: every bundle already in the
// store is loaded into the catalog at its recorded version, and every future
// Deploy/Supersede/Retire is mirrored to disk. Corrupt or misnamed files are
// skipped, each contributing a warning — a hostile or truncated state file
// must not block startup. Call before serving traffic, at most once.
func (r *Registry) UseStore(s *Store) (warnings []error) {
	entries, warnings := s.Load()
	for _, e := range entries {
		if _, err := r.deploy(e.Model, e.Version, false); err != nil {
			warnings = append(warnings, fmt.Errorf("%s: %w", Ref(e.Model.Name, e.Version), err))
		}
	}
	r.mu.Lock()
	r.store = s
	// A crash between a supersede's Save(vN+1) and Remove(vN) leaves both
	// files behind, which the load above restored as two live versions of
	// one name. Finish the interrupted rollout: keep only the newest
	// version of each family live, draining the rest (no sessions exist at
	// startup, so they free — and their files go — on the spot).
	var stale []*Deployed
	for _, f := range r.families {
		newest := f.liveLocked()
		for _, d := range f.versions {
			if d != newest {
				stale = append(stale, d)
			}
		}
	}
	r.mu.Unlock()
	for _, d := range stale {
		warnings = append(warnings, fmt.Errorf("%s: superseded by a newer stored version; dropped", d.Ref()))
		d.setState(stateDraining)
		s.Remove(d.Name(), d.version)
	}
	return warnings
}

// compile validates the model and builds its serving stack (expensive:
// parameter compilation and plan warming), outside any catalog lock.
func compile(m *Model) (*Deployed, error) {
	start := time.Now()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	params, err := ckks.NewParameters(m.Params)
	if err != nil {
		return nil, fmt.Errorf("registry: compiling %q parameters: %w", m.Name, err)
	}
	// One inference consumes exactly LevelsRequired levels (input at level L
	// finishes at L−LevelsRequired ≥ 0), so a chain whose MaxLevel equals
	// LevelsRequired is the true minimum.
	need := m.MLP.LevelsRequired()
	if params.MaxLevel() < need {
		return nil, fmt.Errorf("registry: %q parameters support %d levels, model needs %d", m.Name, params.MaxLevel(), need)
	}
	slots := params.Slots()
	for _, l := range m.MLP.Layers {
		if lin, ok := l.(*henn.Linear); ok && (lin.In > slots || lin.Out > slots) {
			return nil, fmt.Errorf("registry: %q layer %dx%d exceeds %d slots", m.Name, lin.Out, lin.In, slots)
		}
	}
	paramBytes, err := m.Params.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return &Deployed{
		model:      m,
		params:     params,
		enc:        ckks.NewEncoder(params),
		paramBytes: paramBytes,
		levels:     need,
		// ServingRotations advertises the step set of the path Unit.Run will
		// take (BSGS with hoisted rotations when it needs fewer keys), so
		// clients generate exactly the keys inference uses. Deriving it also
		// builds (and caches) every linear layer's diagonal plan, so the first
		// inference after a hot deploy does not pay the O(slots·Out) plan
		// derivation.
		rotations:   m.MLP.ServingRotations(slots),
		compileTime: time.Since(start),
		drained:     make(chan struct{}),
	}, nil
}

// publishLocked inserts d into its family at the given version (0 assigns
// the next number) and keeps the counter monotonic past restored versions.
//
//hennlint:holds(mu)
func (r *Registry) publishLocked(d *Deployed, version int) {
	name := d.model.Name
	f := r.families[name]
	if f == nil {
		f = &family{next: 1, versions: map[int]*Deployed{}}
		r.families[name] = f
	}
	if version == 0 {
		version = f.next
	}
	d.version = version
	if version >= f.next {
		f.next = version + 1
	}
	f.versions[version] = d
	d.delist = func() { r.delistVersion(name, version) }
}

// delistVersion drops a freed version from the catalog (no-op if a Retire
// already removed it).
func (r *Registry) delistVersion(name string, version int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		delete(f.versions, version)
	}
}

// liveLocked returns the family's newest live version, nil if none.
//
//hennlint:holds(Registry.mu)
func (f *family) liveLocked() *Deployed {
	var best *Deployed
	for _, d := range f.versions {
		if d.Draining() || d.Retired() {
			continue
		}
		if best == nil || d.version > best.version {
			best = d
		}
	}
	return best
}

// Deploy validates and compiles the model into a serving stack and publishes
// it as the next version of its name. Compilation happens outside the
// catalog lock, so concurrent deploys of different models proceed in
// parallel. A name with a live version returns ErrExists (Supersede is the
// versioned upgrade path); a name whose versions are all draining or gone
// deploys normally, continuing the version sequence.
func (r *Registry) Deploy(m *Model) (*Deployed, error) {
	return r.deploy(m, 0, true)
}

// deploy is the shared publish path: version 0 auto-assigns, persist false
// skips the store write (restoring from the store must not rewrite it).
func (r *Registry) deploy(m *Model, version int, persist bool) (*Deployed, error) {
	d, err := compile(m)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if f := r.families[m.Name]; f != nil {
		if version != 0 {
			if _, dup := f.versions[version]; dup {
				r.mu.Unlock()
				return nil, fmt.Errorf("%w: %q", ErrExists, Ref(m.Name, version))
			}
		} else if live := f.liveLocked(); live != nil {
			r.mu.Unlock()
			return nil, fmt.Errorf("%w: %q is live as %s (supersede to upgrade)", ErrExists, m.Name, live.Ref())
		}
	}
	r.publishLocked(d, version)
	store := r.store
	r.mu.Unlock()
	if persist && store != nil {
		if err := store.Save(m, d.version); err != nil {
			r.unpublish(d)
			return nil, fmt.Errorf("registry: persisting %s: %w", d.Ref(), err)
		}
	}
	return d, nil
}

// unpublish rolls back a publish whose persistence failed: the version
// leaves the catalog and is retired so any session that bound it during the
// window drains it and the warmed stack frees instead of living on
// invisibly.
func (r *Registry) unpublish(d *Deployed) {
	r.delistVersion(d.Name(), d.version)
	d.setState(stateRetired)
}

// Supersede publishes the model as the next version of its name and drains
// every live older version: existing sessions keep serving the old stacks
// until they release (the stack frees on the last reference), while new
// binds land on the new version. Superseding a name with no live version is
// equivalent to Deploy. Returns the new version and the versions set
// draining.
func (r *Registry) Supersede(m *Model) (*Deployed, []*Deployed, error) {
	d, err := compile(m)
	if err != nil {
		return nil, nil, err
	}
	var old []*Deployed
	r.mu.Lock()
	if f := r.families[m.Name]; f != nil {
		for _, prev := range f.versions {
			if !prev.Draining() && !prev.Retired() {
				old = append(old, prev)
			}
		}
	}
	r.publishLocked(d, 0)
	store := r.store
	r.mu.Unlock()
	sort.Slice(old, func(i, j int) bool { return old[i].version < old[j].version })
	if store != nil {
		if err := store.Save(m, d.version); err != nil {
			r.unpublish(d)
			return nil, nil, fmt.Errorf("registry: persisting %s: %w", d.Ref(), err)
		}
	}
	// Drain after the successor is published and persisted, so no window
	// exists in which neither version would survive a restart. A draining
	// version can never serve a new session (or a restart), so its bundle
	// leaves the store at drain start, not drain end.
	for _, prev := range old {
		prev.setState(stateDraining)
		if store != nil {
			store.Remove(prev.Name(), prev.version)
		}
	}
	return d, old, nil
}

// Resolve returns the deployed stack for a reference: "name@N" pins that
// exact version (returned even while draining, so its catalog entry stays
// inspectable; Bind reports the drain), a bare name resolves to the newest
// live version.
func (r *Registry) Resolve(ref string) (*Deployed, bool) {
	name, version, err := SplitRef(ref)
	if err != nil {
		return nil, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	f := r.families[name]
	if f == nil {
		return nil, false
	}
	if version != 0 {
		d, ok := f.versions[version]
		return d, ok
	}
	d := f.liveLocked()
	return d, d != nil
}

// Get is Resolve under the pre-versioning name, kept for callers that treat
// the reference as opaque.
func (r *Registry) Get(ref string) (*Deployed, bool) { return r.Resolve(ref) }

// List returns every cataloged version (live and draining), sorted by name
// then version.
func (r *Registry) List() []*Deployed {
	r.mu.RLock()
	out := make([]*Deployed, 0, len(r.families))
	for _, f := range r.families {
		for _, d := range f.versions {
			out = append(out, d)
		}
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].model.Name != out[j].model.Name {
			return out[i].model.Name < out[j].model.Name
		}
		return out[i].version < out[j].version
	})
	return out
}

// Len reports how many model versions are cataloged.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, f := range r.families {
		n += len(f.versions)
	}
	return n
}

// Retire removes model versions from the catalog — new Bind calls fail from
// this point — and returns their stacks so the caller can close bound
// sessions. "name@N" retires that exact version; a bare name retires every
// cataloged version (draining ones included). Each stack's caches are freed
// once every bound session and in-flight unit has released its reference
// (watch Drained for that moment).
func (r *Registry) Retire(ref string) ([]*Deployed, error) {
	name, version, err := SplitRef(ref)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnknown, err)
	}
	var out []*Deployed
	r.mu.Lock()
	f := r.families[name]
	if f != nil {
		if version != 0 {
			if d, ok := f.versions[version]; ok {
				delete(f.versions, version)
				out = append(out, d)
			}
		} else {
			for v, d := range f.versions {
				delete(f.versions, v)
				out = append(out, d)
			}
		}
	}
	store := r.store
	r.mu.Unlock()
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrUnknown, ref)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].version < out[j].version })
	for _, d := range out {
		d.setState(stateRetired)
		if store != nil {
			store.Remove(d.Name(), d.version)
		}
	}
	return out, nil
}
