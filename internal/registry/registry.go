package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/efficientfhe/smartpaf/internal/ckks"
	"github.com/efficientfhe/smartpaf/internal/henn"
)

// Sentinel errors callers branch on (the HTTP layer maps them to statuses).
var (
	// ErrExists is returned by Deploy when the name is already taken.
	ErrExists = errors.New("registry: model already deployed")
	// ErrUnknown is returned by Retire for a name that is not deployed.
	ErrUnknown = errors.New("registry: unknown model")
	// ErrRetired is returned by Bind once a model has been retired.
	ErrRetired = errors.New("registry: model retired")
)

// Deployed is one compiled serving stack: the model plus everything derived
// from it at deploy time — compiled parameters, a shared encoder, the
// canonical parameter-literal bytes sessions must match, the rotation-step
// set (computing it warms every linear layer's diagonal-plan cache), and
// per-model counters. All fields are immutable after Deploy except the
// counters and the lifecycle state, so any number of sessions and workers
// can share one Deployed without locking.
type Deployed struct {
	model      *Model
	params     *ckks.Parameters
	enc        *ckks.Encoder
	paramBytes []byte
	levels     int
	rotations  []int

	unitsRun atomic.Int64

	mu      sync.Mutex
	refs    int
	retired bool
	freed   bool
	drained chan struct{} // closed when retired and the last ref released
}

// Model returns the deployed artifact (treat as read-only).
func (d *Deployed) Model() *Model { return d.model }

// Params returns the compiled CKKS parameters.
func (d *Deployed) Params() *ckks.Parameters { return d.params }

// Encoder returns the shared encoder for the model's parameters.
func (d *Deployed) Encoder() *ckks.Encoder { return d.enc }

// ParamBytes returns the canonical literal encoding sessions must byte-match.
func (d *Deployed) ParamBytes() []byte { return d.paramBytes }

// Levels returns the multiplicative levels one inference consumes.
func (d *Deployed) Levels() int { return d.levels }

// Rotations returns the rotation steps a session's key set must cover.
func (d *Deployed) Rotations() []int { return d.rotations }

// AddUnitRun bumps the per-model inference counter.
func (d *Deployed) AddUnitRun() { d.unitsRun.Add(1) }

// UnitsRun reports how many inference units have run against this model.
func (d *Deployed) UnitsRun() int64 { return d.unitsRun.Load() }

// Bind takes a session reference, failing once the model is retired — a
// registering client racing a retire gets a clean error instead of a stack
// that is being torn down.
func (d *Deployed) Bind() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.retired {
		return ErrRetired
	}
	d.refs++
	return nil
}

// Retain takes an additional reference for an in-flight inference unit. The
// caller must already hold a reference (the scheduler retains on behalf of a
// bound session before submitting a unit), so Retain cannot race the final
// drain and never fails — a retired model keeps serving its in-flight units.
func (d *Deployed) Retain() {
	d.mu.Lock()
	d.refs++
	d.mu.Unlock()
}

// Release drops one reference. When a retired model's last reference goes,
// the stack is freed: the MLP's diagonal-plan and plaintext caches are
// dropped and Drained is closed. Freeing is idempotent — a scheduler's
// Retain racing the final session Release can briefly resurrect the count
// after the free, and its own Release must not free twice.
func (d *Deployed) Release() {
	d.mu.Lock()
	if d.refs <= 0 {
		d.mu.Unlock()
		panic("registry: Release without a matching Bind/Retain")
	}
	d.refs--
	free := d.claimFreeLocked()
	d.mu.Unlock()
	if free {
		d.free()
	}
}

// claimFreeLocked reports (once) that the stack should be freed now.
func (d *Deployed) claimFreeLocked() bool {
	if d.retired && d.refs == 0 && !d.freed {
		d.freed = true
		return true
	}
	return false
}

// retire flips the lifecycle flag, freeing immediately when nothing is bound.
func (d *Deployed) retire() {
	d.mu.Lock()
	d.retired = true
	free := d.claimFreeLocked()
	d.mu.Unlock()
	if free {
		d.free()
	}
}

func (d *Deployed) free() {
	d.model.MLP.DropCaches()
	close(d.drained)
}

// Refs reports the current reference count (bound sessions plus in-flight
// units); primarily for tests and stats.
func (d *Deployed) Refs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.refs
}

// Retired reports whether the model has been retired.
func (d *Deployed) Retired() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.retired
}

// Drained is closed once a retired model's last reference is released and
// its caches are freed. For a live model the channel never closes.
func (d *Deployed) Drained() <-chan struct{} { return d.drained }

// Registry is the concurrency-safe model catalog.
type Registry struct {
	mu     sync.RWMutex
	models map[string]*Deployed
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{models: map[string]*Deployed{}}
}

// Deploy validates and compiles the model into a serving stack and publishes
// it under its name. Compilation happens outside the catalog lock (parameter
// compilation and plan warming are expensive), so concurrent deploys of
// different models proceed in parallel; a name collision returns ErrExists.
func (r *Registry) Deploy(m *Model) (*Deployed, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	params, err := ckks.NewParameters(m.Params)
	if err != nil {
		return nil, fmt.Errorf("registry: compiling %q parameters: %w", m.Name, err)
	}
	// One inference consumes exactly LevelsRequired levels (input at level L
	// finishes at L−LevelsRequired ≥ 0), so a chain whose MaxLevel equals
	// LevelsRequired is the true minimum.
	need := m.MLP.LevelsRequired()
	if params.MaxLevel() < need {
		return nil, fmt.Errorf("registry: %q parameters support %d levels, model needs %d", m.Name, params.MaxLevel(), need)
	}
	slots := params.Slots()
	for _, l := range m.MLP.Layers {
		if lin, ok := l.(*henn.Linear); ok && (lin.In > slots || lin.Out > slots) {
			return nil, fmt.Errorf("registry: %q layer %dx%d exceeds %d slots", m.Name, lin.Out, lin.In, slots)
		}
	}
	paramBytes, err := m.Params.MarshalBinary()
	if err != nil {
		return nil, err
	}
	d := &Deployed{
		model:      m,
		params:     params,
		enc:        ckks.NewEncoder(params),
		paramBytes: paramBytes,
		levels:     need,
		// RequiredRotations builds (and caches) every linear layer's diagonal
		// plan, so the first inference after a hot deploy does not pay the
		// O(slots·Out) plan derivation.
		rotations: m.MLP.RequiredRotations(slots),
		drained:   make(chan struct{}),
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.models[m.Name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrExists, m.Name)
	}
	r.models[m.Name] = d
	return d, nil
}

// Get returns the deployed stack for the name.
func (r *Registry) Get(name string) (*Deployed, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.models[name]
	return d, ok
}

// List returns the deployed stacks sorted by name.
func (r *Registry) List() []*Deployed {
	r.mu.RLock()
	out := make([]*Deployed, 0, len(r.models))
	for _, d := range r.models {
		out = append(out, d)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].model.Name < out[j].model.Name })
	return out
}

// Len reports how many models are deployed.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}

// Retire removes the model from the catalog — new Bind calls fail from this
// point — and returns its stack so the caller can close bound sessions. The
// stack's caches are freed once every bound session and in-flight unit has
// released its reference (watch Drained for that moment).
func (r *Registry) Retire(name string) (*Deployed, error) {
	r.mu.Lock()
	d, ok := r.models[name]
	if ok {
		delete(r.models, name)
	}
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	d.retire()
	return d, nil
}
