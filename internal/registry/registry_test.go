package registry

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

const testLogN = 8

func testModel(t testing.TB, name string, seed int64) *Model {
	t.Helper()
	m, err := DemoModel(seed, testLogN)
	if err != nil {
		t.Fatal(err)
	}
	m.Name = name
	return m
}

func TestDeployGetListRetire(t *testing.T) {
	r := New()
	alpha, err := r.Deploy(testModel(t, "alpha", 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Deploy(testModel(t, "beta", 2)); err != nil {
		t.Fatal(err)
	}
	if got, ok := r.Get("alpha"); !ok || got != alpha {
		t.Fatal("Get(alpha) did not return the deployed stack")
	}
	names := []string{}
	for _, d := range r.List() {
		names = append(names, d.Model().Name)
	}
	if !reflect.DeepEqual(names, []string{"alpha", "beta"}) {
		t.Fatalf("List order %v, want [alpha beta]", names)
	}
	if r.Len() != 2 {
		t.Fatalf("Len %d, want 2", r.Len())
	}

	if _, err := r.Deploy(testModel(t, "alpha", 3)); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate deploy: got %v, want ErrExists", err)
	}

	if _, err := r.Retire("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("alpha"); ok {
		t.Fatal("retired model still in the catalog")
	}
	if _, err := r.Retire("alpha"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("double retire: got %v, want ErrUnknown", err)
	}
}

// TestDeployWarmsAndPrescribes: a deployed stack carries everything a
// session needs, and the rotation set matches the model's own derivation.
func TestDeployWarmsAndPrescribes(t *testing.T) {
	r := New()
	m := testModel(t, "alpha", 4)
	d, err := r.Deploy(m)
	if err != nil {
		t.Fatal(err)
	}
	if d.Params() == nil || d.Encoder() == nil || len(d.ParamBytes()) == 0 {
		t.Fatal("deployed stack missing compiled artifacts")
	}
	if d.Levels() != m.MLP.LevelsRequired() {
		t.Fatalf("Levels %d, want %d", d.Levels(), m.MLP.LevelsRequired())
	}
	if want := m.MLP.RequiredRotations(d.Params().Slots()); !reflect.DeepEqual(d.Rotations(), want) {
		t.Fatalf("rotation set %v, want %v", d.Rotations(), want)
	}
}

func TestDeployValidation(t *testing.T) {
	r := New()
	for _, name := range []string{"", "no/slash", "-leading", "x" + string(make([]byte, 200))} {
		m := testModel(t, "ok", 5)
		m.Name = name
		if _, err := r.Deploy(m); err == nil {
			t.Fatalf("name %q deployed", name)
		}
	}
	// Too-shallow chain: the model needs more levels than the literal has.
	m := testModel(t, "shallow", 6)
	m.Params.LogQ = m.Params.LogQ[:2]
	if _, err := r.Deploy(m); err == nil {
		t.Fatal("insufficient-level chain deployed")
	}
	// Declared dims outside the linear envelope.
	m = testModel(t, "dims", 7)
	m.InputDim = 17
	if _, err := r.Deploy(m); err == nil {
		t.Fatal("input dim beyond the envelope deployed")
	}
}

// TestRetireRefcountDrain is the graceful-retirement contract: a retired
// stack is freed only after the last bound session and in-flight unit
// release, and new binds fail from the moment of retirement.
func TestRetireRefcountDrain(t *testing.T) {
	r := New()
	d, err := r.Deploy(testModel(t, "alpha", 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Bind(); err != nil { // a session
		t.Fatal(err)
	}
	d.Retain() // an in-flight unit

	if _, err := r.Retire("alpha"); err != nil {
		t.Fatal(err)
	}
	if err := d.Bind(); !errors.Is(err, ErrRetired) {
		t.Fatalf("bind after retire: got %v, want ErrRetired", err)
	}
	select {
	case <-d.Drained():
		t.Fatal("drained with references outstanding")
	default:
	}
	d.Release() // unit finishes
	select {
	case <-d.Drained():
		t.Fatal("drained with the session still bound")
	default:
	}
	d.Release() // session closes
	select {
	case <-d.Drained():
	case <-time.After(time.Second):
		t.Fatal("stack not freed after the last release")
	}
}

// TestRetainAfterFreeIsIdempotent: a scheduler Retain can race the final
// session Release past the free; the trailing Release must not free (close
// Drained) a second time.
func TestRetainAfterFreeIsIdempotent(t *testing.T) {
	r := New()
	d, err := r.Deploy(testModel(t, "race", 12))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Bind(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Retire("race"); err != nil {
		t.Fatal(err)
	}
	d.Release() // last session ref: frees, closes Drained
	select {
	case <-d.Drained():
	default:
		t.Fatal("not drained after the last release")
	}
	d.Retain() // late in-flight unit resurrects the count
	d.Release()
	select {
	case <-d.Drained(): // still closed exactly once, no panic
	default:
		t.Fatal("drained channel reopened")
	}
}

// TestRetireIdleFreesImmediately: retiring a model nothing is bound to
// drains on the spot.
func TestRetireIdleFreesImmediately(t *testing.T) {
	r := New()
	d, err := r.Deploy(testModel(t, "idle", 9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Retire("idle"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-d.Drained():
	default:
		t.Fatal("idle retire did not free the stack")
	}
}

// TestConcurrentDeployRetire hammers the catalog from many goroutines; run
// under -race this pins the locking discipline.
func TestConcurrentDeployRetire(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("m%d", g)
			for i := 0; i < 10; i++ {
				d, err := r.Deploy(testModel(t, name, int64(g)))
				if err != nil {
					t.Error(err)
					return
				}
				if err := d.Bind(); err != nil {
					t.Error(err)
					return
				}
				r.List()
				r.Get(name)
				if _, err := r.Retire(name); err != nil {
					t.Error(err)
					return
				}
				d.Release()
				select {
				case <-d.Drained():
				case <-time.After(5 * time.Second):
					t.Error("stack never drained")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestBundleRoundTrip: the deploy artifact survives the wire fully validated.
func TestBundleRoundTrip(t *testing.T) {
	m := testModel(t, "bundle", 10)
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got := new(Model)
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.Name != m.Name || got.InputDim != m.InputDim || got.OutputDim != m.OutputDim {
		t.Fatalf("bundle metadata mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Params, m.Params) {
		t.Fatalf("parameter literal mismatch: %+v vs %+v", got.Params, m.Params)
	}
	x := make([]float64, m.InputDim)
	for i := range x {
		x[i] = float64(i%3)/3 - 0.3
	}
	if !reflect.DeepEqual(got.MLP.InferPlain(x), m.MLP.InferPlain(x)) {
		t.Fatal("decoded network computes differently")
	}
	// A round-tripped bundle deploys.
	if _, err := New().Deploy(got); err != nil {
		t.Fatal(err)
	}
}

// TestBundleHostile: truncations and corrupted headers error cleanly.
func TestBundleHostile(t *testing.T) {
	data, err := testModel(t, "bundle", 11).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n += 7 {
		if err := new(Model).UnmarshalBinary(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	bad := append([]byte{}, data...)
	bad[0] ^= 0xff
	if err := new(Model).UnmarshalBinary(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := new(Model).UnmarshalBinary(append(data, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
