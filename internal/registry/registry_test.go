package registry

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"
)

const testLogN = 8

func testModel(t testing.TB, name string, seed int64) *Model {
	t.Helper()
	m, err := DemoModel(seed, testLogN)
	if err != nil {
		t.Fatal(err)
	}
	m.Name = name
	return m
}

func TestDeployGetListRetire(t *testing.T) {
	r := New()
	alpha, err := r.Deploy(testModel(t, "alpha", 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Deploy(testModel(t, "beta", 2)); err != nil {
		t.Fatal(err)
	}
	if got, ok := r.Get("alpha"); !ok || got != alpha {
		t.Fatal("Get(alpha) did not return the deployed stack")
	}
	names := []string{}
	for _, d := range r.List() {
		names = append(names, d.Model().Name)
	}
	if !reflect.DeepEqual(names, []string{"alpha", "beta"}) {
		t.Fatalf("List order %v, want [alpha beta]", names)
	}
	if r.Len() != 2 {
		t.Fatalf("Len %d, want 2", r.Len())
	}

	if _, err := r.Deploy(testModel(t, "alpha", 3)); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate deploy: got %v, want ErrExists", err)
	}

	if _, err := r.Retire("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("alpha"); ok {
		t.Fatal("retired model still in the catalog")
	}
	if _, err := r.Retire("alpha"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("double retire: got %v, want ErrUnknown", err)
	}
}

// TestDeployWarmsAndPrescribes: a deployed stack carries everything a
// session needs, and the rotation set matches the model's own derivation.
func TestDeployWarmsAndPrescribes(t *testing.T) {
	r := New()
	m := testModel(t, "alpha", 4)
	d, err := r.Deploy(m)
	if err != nil {
		t.Fatal(err)
	}
	if d.Params() == nil || d.Encoder() == nil || len(d.ParamBytes()) == 0 {
		t.Fatal("deployed stack missing compiled artifacts")
	}
	if d.Levels() != m.MLP.LevelsRequired() {
		t.Fatalf("Levels %d, want %d", d.Levels(), m.MLP.LevelsRequired())
	}
	if want := m.MLP.ServingRotations(d.Params().Slots()); !reflect.DeepEqual(d.Rotations(), want) {
		t.Fatalf("rotation set %v, want %v", d.Rotations(), want)
	}
	// The demo model is exactly the regime BSGS exists for: the advertised
	// set must be the smaller BSGS one, or sessions pay per-diagonal keys.
	if !m.MLP.PreferBSGS(d.Params().Slots()) {
		t.Fatal("demo model does not prefer BSGS; serving-path coverage lost")
	}
}

func TestDeployValidation(t *testing.T) {
	r := New()
	for _, name := range []string{"", "no/slash", "-leading", "x" + string(make([]byte, 200))} {
		m := testModel(t, "ok", 5)
		m.Name = name
		if _, err := r.Deploy(m); err == nil {
			t.Fatalf("name %q deployed", name)
		}
	}
	// Too-shallow chain: the model needs more levels than the literal has.
	m := testModel(t, "shallow", 6)
	m.Params.LogQ = m.Params.LogQ[:2]
	if _, err := r.Deploy(m); err == nil {
		t.Fatal("insufficient-level chain deployed")
	}
	// Declared dims outside the linear envelope.
	m = testModel(t, "dims", 7)
	m.InputDim = 17
	if _, err := r.Deploy(m); err == nil {
		t.Fatal("input dim beyond the envelope deployed")
	}
}

// TestRetireRefcountDrain is the graceful-retirement contract: a retired
// stack is freed only after the last bound session and in-flight unit
// release, and new binds fail from the moment of retirement.
func TestRetireRefcountDrain(t *testing.T) {
	r := New()
	d, err := r.Deploy(testModel(t, "alpha", 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Bind(); err != nil { // a session
		t.Fatal(err)
	}
	d.Retain() // an in-flight unit

	if _, err := r.Retire("alpha"); err != nil {
		t.Fatal(err)
	}
	if err := d.Bind(); !errors.Is(err, ErrRetired) {
		t.Fatalf("bind after retire: got %v, want ErrRetired", err)
	}
	select {
	case <-d.Drained():
		t.Fatal("drained with references outstanding")
	default:
	}
	d.Release() // unit finishes
	select {
	case <-d.Drained():
		t.Fatal("drained with the session still bound")
	default:
	}
	d.Release() // session closes
	select {
	case <-d.Drained():
	case <-time.After(time.Second):
		t.Fatal("stack not freed after the last release")
	}
}

// TestRetainAfterFreeIsIdempotent: a scheduler Retain can race the final
// session Release past the free; the trailing Release must not free (close
// Drained) a second time.
func TestRetainAfterFreeIsIdempotent(t *testing.T) {
	r := New()
	d, err := r.Deploy(testModel(t, "race", 12))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Bind(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Retire("race"); err != nil {
		t.Fatal(err)
	}
	d.Release() // last session ref: frees, closes Drained
	select {
	case <-d.Drained():
	default:
		t.Fatal("not drained after the last release")
	}
	d.Retain() // late in-flight unit resurrects the count
	d.Release()
	select {
	case <-d.Drained(): // still closed exactly once, no panic
	default:
		t.Fatal("drained channel reopened")
	}
}

// TestRetireIdleFreesImmediately: retiring a model nothing is bound to
// drains on the spot.
func TestRetireIdleFreesImmediately(t *testing.T) {
	r := New()
	d, err := r.Deploy(testModel(t, "idle", 9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Retire("idle"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-d.Drained():
	default:
		t.Fatal("idle retire did not free the stack")
	}
}

// TestConcurrentDeployRetire hammers the catalog from many goroutines; run
// under -race this pins the locking discipline.
func TestConcurrentDeployRetire(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("m%d", g)
			for i := 0; i < 10; i++ {
				d, err := r.Deploy(testModel(t, name, int64(g)))
				if err != nil {
					t.Error(err)
					return
				}
				if err := d.Bind(); err != nil {
					t.Error(err)
					return
				}
				r.List()
				r.Get(name)
				if _, err := r.Retire(name); err != nil {
					t.Error(err)
					return
				}
				d.Release()
				select {
				case <-d.Drained():
				case <-time.After(5 * time.Second):
					t.Error("stack never drained")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestBundleRoundTrip: the deploy artifact survives the wire fully validated.
func TestBundleRoundTrip(t *testing.T) {
	m := testModel(t, "bundle", 10)
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got := new(Model)
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.Name != m.Name || got.InputDim != m.InputDim || got.OutputDim != m.OutputDim {
		t.Fatalf("bundle metadata mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Params, m.Params) {
		t.Fatalf("parameter literal mismatch: %+v vs %+v", got.Params, m.Params)
	}
	x := make([]float64, m.InputDim)
	for i := range x {
		x[i] = float64(i%3)/3 - 0.3
	}
	if !reflect.DeepEqual(got.MLP.InferPlain(x), m.MLP.InferPlain(x)) {
		t.Fatal("decoded network computes differently")
	}
	// A round-tripped bundle deploys.
	if _, err := New().Deploy(got); err != nil {
		t.Fatal(err)
	}
}

// TestBundleHostile: truncations and corrupted headers error cleanly.
func TestBundleHostile(t *testing.T) {
	data, err := testModel(t, "bundle", 11).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n += 7 {
		if err := new(Model).UnmarshalBinary(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	bad := append([]byte{}, data...)
	bad[0] ^= 0xff
	if err := new(Model).UnmarshalBinary(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := new(Model).UnmarshalBinary(append(data, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestSplitRef pins the reference grammar: bare names mean "newest live"
// (version 0), name@N pins a version, malformed suffixes error.
func TestSplitRef(t *testing.T) {
	for _, tc := range []struct {
		ref     string
		name    string
		version int
		ok      bool
	}{
		{"alpha", "alpha", 0, true},
		{"alpha@1", "alpha", 1, true},
		{"a.b-c_2@17", "a.b-c_2", 17, true},
		{"alpha@0", "", 0, false},
		{"alpha@-3", "", 0, false},
		{"alpha@", "", 0, false},
		{"alpha@x", "", 0, false},
		{"alpha@1@2", "", 0, false},
	} {
		name, version, err := SplitRef(tc.ref)
		if tc.ok && (err != nil || name != tc.name || version != tc.version) {
			t.Errorf("SplitRef(%q) = (%q, %d, %v), want (%q, %d)", tc.ref, name, version, err, tc.name, tc.version)
		}
		if !tc.ok && err == nil {
			t.Errorf("SplitRef(%q) accepted", tc.ref)
		}
	}
	if Ref("alpha", 2) != "alpha@2" {
		t.Errorf("Ref: %s", Ref("alpha", 2))
	}
}

// TestVersionedSupersedeLifecycle is the tentpole contract: Supersede
// publishes vN+1 while vN drains — still resolvable by exact reference,
// refusing new binds, serving existing references until the last one
// releases, then leaving the catalog.
func TestVersionedSupersedeLifecycle(t *testing.T) {
	r := New()
	d1, err := r.Deploy(testModel(t, "alpha", 1))
	if err != nil {
		t.Fatal(err)
	}
	if d1.Version() != 1 || d1.Ref() != "alpha@1" {
		t.Fatalf("first deploy is %s, want alpha@1", d1.Ref())
	}
	if err := d1.Bind(); err != nil { // a live session on v1
		t.Fatal(err)
	}

	d2, old, err := r.Supersede(testModel(t, "alpha", 2))
	if err != nil {
		t.Fatal(err)
	}
	if d2.Version() != 2 {
		t.Fatalf("supersede published v%d, want v2", d2.Version())
	}
	if len(old) != 1 || old[0] != d1 {
		t.Fatalf("supersede drained %v, want [alpha@1]", old)
	}
	if !d1.Draining() || d1.Retired() {
		t.Fatal("superseded version not draining")
	}

	// Bare resolution lands on the new version; the old one stays pinned
	// by exact reference but refuses new sessions.
	if got, ok := r.Resolve("alpha"); !ok || got != d2 {
		t.Fatal("bare name did not resolve to the newest live version")
	}
	if got, ok := r.Resolve("alpha@1"); !ok || got != d1 {
		t.Fatal("draining version not resolvable by exact reference")
	}
	if err := d1.Bind(); !errors.Is(err, ErrDraining) {
		t.Fatalf("bind on a draining version: got %v, want ErrDraining", err)
	}
	if err := d2.Bind(); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("catalog has %d versions mid-drain, want 2", r.Len())
	}

	// The old session finishes: the v1 stack frees and leaves the catalog.
	select {
	case <-d1.Drained():
		t.Fatal("drained with the old session still bound")
	default:
	}
	d1.Release()
	select {
	case <-d1.Drained():
	case <-time.After(time.Second):
		t.Fatal("old version not freed after its last release")
	}
	if _, ok := r.Resolve("alpha@1"); ok {
		t.Fatal("fully drained version still in the catalog")
	}
	if r.Len() != 1 {
		t.Fatalf("catalog has %d versions after drain, want 1", r.Len())
	}
	d2.Release()
}

// TestSupersedeIdleDrainsInstantly: superseding a version nothing is bound
// to frees it on the spot.
func TestSupersedeIdleDrainsInstantly(t *testing.T) {
	r := New()
	d1, err := r.Deploy(testModel(t, "idle", 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Supersede(testModel(t, "idle", 4)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-d1.Drained():
	default:
		t.Fatal("idle supersede did not free the old stack")
	}
	if r.Len() != 1 {
		t.Fatalf("catalog has %d versions, want just the successor", r.Len())
	}
}

// TestDeployOverLiveNameConflicts: plain Deploy is not an upgrade path —
// a live name 409s, and retiring never recycles version numbers.
func TestDeployOverLiveNameConflicts(t *testing.T) {
	r := New()
	if _, err := r.Deploy(testModel(t, "alpha", 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Deploy(testModel(t, "alpha", 6)); !errors.Is(err, ErrExists) {
		t.Fatalf("deploy over a live name: got %v, want ErrExists", err)
	}
	if _, err := r.Retire("alpha"); err != nil {
		t.Fatal(err)
	}
	d, err := r.Deploy(testModel(t, "alpha", 7))
	if err != nil {
		t.Fatal(err)
	}
	if d.Version() != 2 {
		t.Fatalf("redeploy after retire got version %d; numbers must never be reused", d.Version())
	}
}

// TestRetireExactVersion: "name@N" retires one version, leaving siblings.
func TestRetireExactVersion(t *testing.T) {
	r := New()
	d1, err := r.Deploy(testModel(t, "alpha", 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Bind(); err != nil {
		t.Fatal(err)
	}
	d2, _, err := r.Supersede(testModel(t, "alpha", 9))
	if err != nil {
		t.Fatal(err)
	}
	deps, err := r.Retire("alpha@2")
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) != 1 || deps[0] != d2 {
		t.Fatalf("Retire(alpha@2) removed %v", deps)
	}
	if !d2.Retired() {
		t.Fatal("exact-version retire did not retire the stack")
	}
	// v1 is still draining and still pinned by its reference.
	if got, ok := r.Resolve("alpha@1"); !ok || got != d1 {
		t.Fatal("sibling version lost by an exact-version retire")
	}
	// No live version remains, so the bare name resolves to nothing.
	if _, ok := r.Resolve("alpha"); ok {
		t.Fatal("bare name resolved with only a draining version left")
	}
	d1.Release()
}

// TestStorePersistReloadRetire is the durability round trip: a second
// registry on the same store reloads the identical catalog (names,
// versions, parameter bytes), supersede swaps the persisted bundle to the
// new version, and retire removes the file.
func TestStorePersistReloadRetire(t *testing.T) {
	dir := t.TempDir()
	open := func() (*Registry, *Store) {
		t.Helper()
		st, err := OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		r := New()
		for _, w := range r.UseStore(st) {
			t.Fatalf("unexpected store warning: %v", w)
		}
		return r, st
	}

	r1, _ := open()
	if _, err := r1.Deploy(testModel(t, "alpha", 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Deploy(testModel(t, "beta", 11)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r1.Supersede(testModel(t, "alpha", 12)); err != nil {
		t.Fatal(err)
	}

	// The state dir now holds exactly the surviving versions, no temp junk.
	files, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{}
	for _, f := range files {
		names = append(names, filepath.Base(f))
	}
	sort.Strings(names)
	if want := []string{"alpha@2.hemodel", "beta@1.hemodel"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("state dir holds %v, want %v", names, want)
	}

	// A fresh registry reloads the identical catalog.
	r2, _ := open()
	want := r1.List()
	got := r2.List()
	if len(got) != len(want) {
		t.Fatalf("reloaded %d versions, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Ref() != want[i].Ref() {
			t.Fatalf("reloaded %s, want %s", got[i].Ref(), want[i].Ref())
		}
		if !reflect.DeepEqual(got[i].ParamBytes(), want[i].ParamBytes()) {
			t.Fatalf("%s parameter bytes changed across reload", got[i].Ref())
		}
	}
	// The version counter survives too: a new alpha deploy must not collide
	// with the retired/drained history.
	if _, err := r2.Retire("alpha"); err != nil {
		t.Fatal(err)
	}
	d, err := r2.Deploy(testModel(t, "alpha", 13))
	if err != nil {
		t.Fatal(err)
	}
	if d.Version() != 3 {
		t.Fatalf("post-reload redeploy got version %d, want 3", d.Version())
	}

	// Retire removes files; a third reload sees only what survived.
	if _, err := r2.Retire("beta"); err != nil {
		t.Fatal(err)
	}
	r3, _ := open()
	if r3.Len() != 1 {
		t.Fatalf("final reload has %d versions, want 1 (alpha@3)", r3.Len())
	}
	if _, ok := r3.Resolve("alpha@3"); !ok {
		t.Fatal("alpha@3 missing after final reload")
	}
}

// TestStoreHostileFilesSkipWithWarning: truncated, corrupt, misnamed and
// stray files in the state directory must produce warnings and be skipped —
// never a failed (or panicking) startup.
func TestStoreHostileFilesSkipWithWarning(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := testModel(t, "good", 14)
	if err := st.Save(good, 1); err != nil {
		t.Fatal(err)
	}
	goodBytes, err := good.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	hostile := map[string][]byte{
		"truncated@1.hemodel":     goodBytes[:len(goodBytes)/2],
		"garbage@2.hemodel":       {0xde, 0xad, 0xbe, 0xef},
		"noversion.hemodel":       goodBytes,
		"bad@0.hemodel":           goodBytes,
		"mismatch@1.hemodel":      goodBytes, // embedded name says "good"
		"straggler@1.hemodel.tmp": goodBytes,
		"README.txt":              []byte("not a bundle"),
	}
	for name, data := range hostile {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	r := New()
	warnings := r.UseStore(st)
	// Every *.hemodel except the good one warns; .tmp and .txt are ignored.
	if len(warnings) != 5 {
		t.Fatalf("got %d warnings (%v), want 5", len(warnings), warnings)
	}
	if r.Len() != 1 {
		t.Fatalf("catalog has %d versions, want only the good one", r.Len())
	}
	d, ok := r.Resolve("good@1")
	if !ok {
		t.Fatal("good bundle not loaded")
	}
	if d.Model().InputDim != good.InputDim {
		t.Fatal("good bundle loaded incorrectly")
	}
}

// TestConcurrentSupersedeChurn hammers supersede/resolve/bind under -race.
func TestConcurrentSupersedeChurn(t *testing.T) {
	r := New()
	if _, err := r.Deploy(testModel(t, "hot", 20)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if g == 0 {
					if _, _, err := r.Supersede(testModel(t, "hot", int64(30+i))); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				if d, ok := r.Resolve("hot"); ok {
					if err := d.Bind(); err == nil {
						d.Release()
					}
				}
				r.List()
			}
		}(g)
	}
	wg.Wait()
	// Exactly one live version survives the churn.
	live := 0
	for _, d := range r.List() {
		if !d.Draining() && !d.Retired() {
			live++
		}
	}
	if live != 1 {
		t.Fatalf("%d live versions after churn, want 1", live)
	}
}

// TestUseStoreFinishesCrashedSupersede: a crash between a supersede's
// Save(vN+1) and Remove(vN) leaves both bundle files; the next load must
// keep only the newest version live and drop (and delete) the stale one —
// not present one logical model as two live versions.
func TestUseStoreFinishesCrashedSupersede(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(testModel(t, "alpha", 40), 1); err != nil { // the un-removed old version
		t.Fatal(err)
	}
	if err := st.Save(testModel(t, "alpha", 41), 2); err != nil {
		t.Fatal(err)
	}

	r := New()
	warnings := r.UseStore(st)
	if len(warnings) != 1 {
		t.Fatalf("got %d warnings (%v), want the stale-version drop", len(warnings), warnings)
	}
	if r.Len() != 1 {
		t.Fatalf("catalog has %d versions, want only alpha@2", r.Len())
	}
	d, ok := r.Resolve("alpha")
	if !ok || d.Version() != 2 {
		t.Fatalf("resolved %v, want alpha@2", d)
	}
	// The stale file is gone: the next restart is clean.
	if _, err := os.Stat(filepath.Join(dir, "alpha@1.hemodel")); !os.IsNotExist(err) {
		t.Fatalf("stale alpha@1.hemodel survived the recovery (stat err: %v)", err)
	}
}

// TestStoreRejectsNonCanonicalFileNames: "alpha@01.hemodel" parses to a
// version whose canonical path differs, so Remove could never delete it and
// a retired model would resurrect every restart — it must be skipped.
func TestStoreRejectsNonCanonicalFileNames(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := testModel(t, "alpha", 42).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alpha@01.hemodel", "alpha@+1.hemodel"} {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	loaded, warnings := st.Load()
	if len(loaded) != 0 {
		t.Fatalf("non-canonical file names loaded: %v", loaded)
	}
	if len(warnings) != 2 {
		t.Fatalf("got %d warnings (%v), want 2", len(warnings), warnings)
	}
}

// TestDeployPersistFailureRetiresStack: when the store write fails, the
// already-published version must not linger live-but-invisible — it is
// delisted and retired so the warmed stack frees.
func TestDeployPersistFailureRetiresStack(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := New()
	if ws := r.UseStore(st); len(ws) != 0 {
		t.Fatalf("unexpected warnings: %v", ws)
	}
	// Delete the directory out from under the store so Save's temp-file
	// write fails (works even as root, which ignores permission bits).
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	_, err = r.Deploy(testModel(t, "alpha", 43))
	if err == nil {
		t.Fatal("deploy succeeded with an unwritable store")
	}
	if r.Len() != 0 {
		t.Fatalf("failed deploy left %d catalog entries", r.Len())
	}
}

// TestParamsExactDepth pins the modulus-chain sizing contract: ParamsForMLP
// allocates exactly LevelsRequired rescaling levels, so compiled parameters
// have no slack above the inference depth. A +1 margin here once masked a
// serving-boundary off-by-one (the class hennlint's levelbudget analyzer now
// flags); keeping the budget exact means any depth drift fails loudly as a
// level-exhaustion error instead of silently consuming the headroom.
func TestParamsExactDepth(t *testing.T) {
	r := New()
	d, err := r.Deploy(testModel(t, "exact", 1))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d.Params().MaxLevel(), d.Levels(); got != want {
		t.Fatalf("compiled MaxLevel %d, want exactly LevelsRequired %d", got, want)
	}
}
