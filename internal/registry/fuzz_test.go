package registry

import "testing"

// FuzzModelBundleUnmarshal throws arbitrary bytes at the deploy-bundle
// decoder — the outermost wire surface an operator-facing endpoint
// accepts. Garbage must error cleanly through every nested layer
// (bundle framing, parameter literal, network), and any accepted bundle
// must survive a re-marshal round trip.
func FuzzModelBundleUnmarshal(f *testing.F) {
	seed, err := testModel(f, "fuzz", 3).MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{})
	corrupt := append([]byte(nil), seed...)
	corrupt[0] ^= 0xFF
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		m := new(Model)
		if err := m.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted bundle fails to re-marshal: %v", err)
		}
		again := new(Model)
		if err := again.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-marshaled bundle rejected: %v", err)
		}
	})
}
