// Package registry is the model-lifecycle subsystem of the serving stack: it
// maps model names to compiled serving stacks — a frozen henn.MLP with warmed
// diagonal-plan caches, the prescribed CKKS parameters, the rotation-step set
// sessions must cover, and per-model counters — with concurrency-safe deploy,
// list and retire. Reference counting makes retirement graceful: a retired
// model disappears from the catalog immediately (new sessions cannot bind),
// bound sessions are closed by the server (their queued jobs fail), and the
// stack's caches are freed once the last bound session and in-flight
// inference unit drain.
//
// The deployable artifact itself has a binary wire format (Model.Marshal/
// UnmarshalBinary, framing henn.MLP's own wire format) so models can be
// hot-deployed over HTTP or loaded from disk.
package registry

import (
	"fmt"
	"math/rand"
	"regexp"

	"github.com/efficientfhe/smartpaf/internal/ckks"
	"github.com/efficientfhe/smartpaf/internal/henn"
	"github.com/efficientfhe/smartpaf/internal/paf"
)

// Model bundles everything needed to serve one deployed network: the frozen
// henn MLP and the CKKS parameter literal sessions must use. It is the unit
// of deployment — what a registry compiles into a serving stack and what the
// wire format in marshal.go carries.
type Model struct {
	Name      string
	MLP       *henn.MLP
	Params    ckks.ParametersLiteral
	InputDim  int
	OutputDim int
}

// nameRE bounds model names to URL-path-safe identifiers: names appear in
// /v1/models/{name} routes and in -models directory filenames.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// Validate checks the model is a deployable artifact: a named, non-empty MLP
// whose declared dimensions fit its linear envelope.
func (m *Model) Validate() error {
	if !nameRE.MatchString(m.Name) {
		return fmt.Errorf("registry: model name %q is not a valid identifier ([A-Za-z0-9._-], leading alphanumeric, max 128)", m.Name)
	}
	if m.MLP == nil || len(m.MLP.Layers) == 0 {
		return fmt.Errorf("registry: model %q has no layers", m.Name)
	}
	in, out, err := Dims(m.MLP)
	if err != nil {
		return fmt.Errorf("registry: model %q: %w", m.Name, err)
	}
	if m.InputDim <= 0 || m.InputDim > in {
		return fmt.Errorf("registry: model %q declares input dim %d, envelope takes %d", m.Name, m.InputDim, in)
	}
	if m.OutputDim <= 0 || m.OutputDim > out {
		return fmt.Errorf("registry: model %q declares output dim %d, envelope yields %d", m.Name, m.OutputDim, out)
	}
	return nil
}

// Dims returns the (input, output) dimensions of an MLP's linear envelope.
func Dims(mlp *henn.MLP) (in, out int, err error) {
	for _, l := range mlp.Layers {
		lin, ok := l.(*henn.Linear)
		if !ok {
			continue
		}
		if in == 0 {
			in = lin.In
		}
		out = lin.Out
	}
	if in == 0 || out == 0 {
		return 0, 0, fmt.Errorf("model has no linear layers")
	}
	return in, out, nil
}

// ParamsForMLP sizes a parameter literal for the model's inference depth at
// the given ring degree: a modulus chain of exactly LevelsRequired rescaling
// levels (45-bit primes) above a 55-bit base prime. The budget is exact by
// construction — inference lands on level 0 — so any drift between the
// model's declared depth and what the evaluator consumes surfaces as a
// level-exhaustion error instead of being masked by slack.
func ParamsForMLP(mlp *henn.MLP, logN int) (ckks.ParametersLiteral, error) {
	if _, _, err := Dims(mlp); err != nil {
		return ckks.ParametersLiteral{}, fmt.Errorf("registry: %w", err)
	}
	slots := 1 << (logN - 1)
	// Every layer (not just the envelope) must fit the slot vector.
	for _, l := range mlp.Layers {
		if lin, ok := l.(*henn.Linear); ok && (lin.In > slots || lin.Out > slots) {
			return ckks.ParametersLiteral{}, fmt.Errorf("registry: layer %dx%d exceeds %d slots at LogN=%d", lin.Out, lin.In, slots, logN)
		}
	}
	levels := mlp.LevelsRequired()
	logQ := make([]int, levels+1)
	logQ[0] = 55
	for i := 1; i <= levels; i++ {
		logQ[i] = 45
	}
	return ckks.ParametersLiteral{LogN: logN, LogQ: logQ, LogP: 55, LogScale: 45}, nil
}

// DemoModel builds a small frozen MLP (16 -> 8 -> 4 with an f1∘g2 PAF
// activation) with seeded random weights, sized for the given ring degree.
// It stands in for a SMART-PAF-trained network in demos, load experiments
// and tests; cmd/hennserve can serve a trained model instead.
func DemoModel(seed int64, logN int) (*Model, error) {
	rng := rand.New(rand.NewSource(seed))
	newLinear := func(in, out int) *henn.Linear {
		l := &henn.Linear{In: in, Out: out, B: make([]float64, out), W: make([][]float64, out)}
		for i := range l.W {
			l.W[i] = make([]float64, in)
			for j := range l.W[i] {
				l.W[i][j] = rng.NormFloat64() * 0.4
			}
			l.B[i] = rng.NormFloat64() * 0.1
		}
		return l
	}
	mlp := &henn.MLP{Layers: []any{
		newLinear(16, 8),
		&henn.Activation{PAF: paf.MustNew(paf.FormF1G2), Scale: 4},
		newLinear(8, 4),
	}}
	lit, err := ParamsForMLP(mlp, logN)
	if err != nil {
		return nil, err
	}
	return &Model{Name: "demo-mlp-16x8x4", MLP: mlp, Params: lit, InputDim: 16, OutputDim: 4}, nil
}
