package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Store persists deployed bundles under a state directory, one
// "<name>@<version>.hemodel" file per cataloged version (the same bytes
// POST /v1/models accepts). Writes go through a temp file and an atomic
// rename, so a crash mid-write can leave at worst a stray *.tmp — never a
// torn bundle that would poison the next startup. A Registry wired through
// UseStore keeps the directory in lockstep with the catalog: Deploy and
// Supersede save, Retire and drain-start remove.
type Store struct {
	dir string
}

// storeExt is the bundle file suffix (shared with hennserve's -models dir).
const storeExt = ".hemodel"

// OpenStore opens (creating if needed) the state directory.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: state dir: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the state directory path.
func (s *Store) Dir() string { return s.dir }

// path is the bundle file for one model version.
func (s *Store) path(name string, version int) string {
	return filepath.Join(s.dir, Ref(name, version)+storeExt)
}

// Save persists the bundle for a model version, atomically replacing any
// previous file: marshal, write "<ref>.hemodel.tmp", fsync-free rename. The
// rename is the commit point — a reader (or a restart) sees either the old
// complete file or the new one.
func (s *Store) Save(m *Model, version int) error {
	data, err := m.MarshalBinary()
	if err != nil {
		return err
	}
	final := s.path(m.Name, version)
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Remove deletes a version's bundle file. A missing file is not an error —
// a superseded version's file is removed at drain start, and a later bare
// Retire of the family sweeps the same versions again.
func (s *Store) Remove(name string, version int) {
	_ = os.Remove(s.path(name, version))
}

// StoredModel is one bundle recovered from the state directory.
type StoredModel struct {
	Model   *Model
	Version int
}

// Load reads every bundle in the state directory, sorted by file name for a
// deterministic catalog. Files that are misnamed, truncated, corrupt, or
// whose embedded model name disagrees with the file name are skipped, each
// contributing a warning — hostile state must never block startup.
func (s *Store) Load() ([]StoredModel, []error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, []error{fmt.Errorf("registry: state dir: %w", err)}
	}
	var (
		out      []StoredModel
		warnings []error
	)
	warnf := func(format string, args ...any) {
		warnings = append(warnings, fmt.Errorf(format, args...))
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), storeExt) {
			continue
		}
		path := filepath.Join(s.dir, e.Name())
		name, version, err := SplitRef(strings.TrimSuffix(e.Name(), storeExt))
		// The file name must round-trip through Ref exactly: a non-canonical
		// spelling like "alpha@01" would parse to a version whose canonical
		// file Remove would later delete at a different path, leaving an
		// undeletable bundle that resurrects on every restart.
		if err != nil || version == 0 || e.Name() != Ref(name, version)+storeExt {
			warnf("%s: file name is not <name>@<version>%s; skipped", path, storeExt)
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			warnf("%s: %v; skipped", path, err)
			continue
		}
		m := new(Model)
		if err := m.UnmarshalBinary(data); err != nil {
			warnf("%s: %v; skipped", path, err)
			continue
		}
		if m.Name != name {
			warnf("%s: bundle is for model %q, file name says %q; skipped", path, m.Name, name)
			continue
		}
		out = append(out, StoredModel{Model: m, Version: version})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Model.Name != out[j].Model.Name {
			return out[i].Model.Name < out[j].Model.Name
		}
		return out[i].Version < out[j].Version
	})
	return out, warnings
}
