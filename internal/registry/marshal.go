package registry

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/efficientfhe/smartpaf/internal/henn"
)

// Binary wire format for the deployed-model artifact: what POST /v1/models
// accepts and what a -models directory holds on disk (one .hemodel file per
// model). It frames the henn.MLP wire format together with the prescribed
// parameter literal and the declared I/O dimensions, with the same magic and
// bounds-hardening discipline as internal/ckks — a hostile deploy payload
// must fail at the boundary.
//
// Layout (little-endian):
//
//	u32 magic | u32 nameLen | name | u32 inputDim | u32 outputDim |
//	u32 paramsLen | params literal bytes | u32 mlpLen | henn.MLP bytes

const (
	bundleMagic = uint32(0x5AF7CC08)

	maxBundleName  = 128
	maxParamsBytes = 1 << 12
	maxMLPBytes    = 1 << 30
	maxBundleDim   = 1 << 16
)

func writeU32(w io.Writer, v uint32) error { return binary.Write(w, binary.LittleEndian, v) }
func readU32(r io.Reader) (uint32, error) {
	var v uint32
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

func writeBytes(w io.Writer, b []byte) error {
	if err := writeU32(w, uint32(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readBytes(r io.Reader, limit int, what string) ([]byte, error) {
	n, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if int(n) > limit {
		return nil, fmt.Errorf("registry: implausible %s length %d (max %d)", what, n, limit)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *Model) MarshalBinary() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	mlpBytes, err := m.MLP.MarshalBinary()
	if err != nil {
		return nil, err
	}
	paramBytes, err := m.Params.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := writeU32(&buf, bundleMagic); err != nil {
		return nil, err
	}
	if err := writeBytes(&buf, []byte(m.Name)); err != nil {
		return nil, err
	}
	for _, v := range []uint32{uint32(m.InputDim), uint32(m.OutputDim)} {
		if err := writeU32(&buf, v); err != nil {
			return nil, err
		}
	}
	if err := writeBytes(&buf, paramBytes); err != nil {
		return nil, err
	}
	if err := writeBytes(&buf, mlpBytes); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The decoded model is
// fully validated (name charset, dimension envelope, finite weights via the
// henn unmarshaler) — a successful decode is deployable as-is.
func (m *Model) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	magic, err := readU32(r)
	if err != nil {
		return err
	}
	if magic != bundleMagic {
		return fmt.Errorf("registry: bad model-bundle magic %#x", magic)
	}
	name, err := readBytes(r, maxBundleName, "model name")
	if err != nil {
		return err
	}
	var dims [2]uint32
	for i := range dims {
		if dims[i], err = readU32(r); err != nil {
			return err
		}
	}
	if dims[0] == 0 || dims[0] > maxBundleDim || dims[1] == 0 || dims[1] > maxBundleDim {
		return fmt.Errorf("registry: implausible model dimensions %dx%d", dims[0], dims[1])
	}
	paramBytes, err := readBytes(r, maxParamsBytes, "parameter literal")
	if err != nil {
		return err
	}
	mlpBytes, err := readBytes(r, maxMLPBytes, "MLP payload")
	if err != nil {
		return err
	}
	if r.Len() != 0 {
		return fmt.Errorf("registry: %d trailing bytes after model bundle", r.Len())
	}
	out := Model{Name: string(name), InputDim: int(dims[0]), OutputDim: int(dims[1])}
	if err := out.Params.UnmarshalBinary(paramBytes); err != nil {
		return fmt.Errorf("registry: model %q parameters: %w", out.Name, err)
	}
	out.MLP = new(henn.MLP)
	if err := out.MLP.UnmarshalBinary(mlpBytes); err != nil {
		return fmt.Errorf("registry: model %q network: %w", out.Name, err)
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*m = out
	return nil
}
