package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"github.com/efficientfhe/smartpaf/internal/ckks"
	"github.com/efficientfhe/smartpaf/internal/registry"
	"github.com/efficientfhe/smartpaf/internal/telemetry"
)

// Client talks to a hennserve instance. It is safe for concurrent use.
type Client struct {
	base  string
	hc    *http.Client
	admin string
}

// NewClient wraps the base URL (e.g. "http://127.0.0.1:8555"). A nil
// http.Client uses http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// WithAdminToken returns a copy of the client that authenticates admin
// mutations (Deploy, Supersede, Retire) with the bearer token; servers
// started with -admin-token reject them otherwise.
func (c *Client) WithAdminToken(token string) *Client {
	cc := *c
	cc.admin = token
	return &cc
}

// authorize attaches the admin bearer token when one is configured.
func (c *Client) authorize(req *http.Request) {
	if c.admin != "" {
		req.Header.Set("Authorization", "Bearer "+c.admin)
	}
}

// apiError surfaces the server's JSON error body.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("server: %s (%s)", e.Error, resp.Status)
	}
	return fmt.Errorf("server: %s", resp.Status)
}

// getJSON fetches path and decodes the JSON response into out.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("decoding %s response: %w", path, err)
	}
	return nil
}

// Model fetches the served model's description. It only succeeds while the
// server has exactly one model deployed; use Models/ModelNamed otherwise.
func (c *Client) Model(ctx context.Context) (*ModelInfo, error) {
	info := new(ModelInfo)
	if err := c.getJSON(ctx, "/v1/model", info); err != nil {
		return nil, err
	}
	return info, nil
}

// Models fetches the full model catalog, sorted by name.
func (c *Client) Models(ctx context.Context) ([]ModelInfo, error) {
	var infos []ModelInfo
	if err := c.getJSON(ctx, "/v1/models", &infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// ModelNamed fetches one model's description by registry name.
func (c *Client) ModelNamed(ctx context.Context, name string) (*ModelInfo, error) {
	info := new(ModelInfo)
	if err := c.getJSON(ctx, "/v1/models/"+url.PathEscape(name), info); err != nil {
		return nil, err
	}
	return info, nil
}

// Stats fetches the server's scheduler and per-model counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	st := new(Stats)
	if err := c.getJSON(ctx, "/v1/stats", st); err != nil {
		return nil, err
	}
	return st, nil
}

// Traces fetches the server's retained request traces, newest first. Each
// snapshot carries the request's spans (queue wait, dispatch, unit) and the
// per-stage CKKS timing breakdown aggregated by the unit.
func (c *Client) Traces(ctx context.Context) ([]telemetry.TraceSnapshot, error) {
	var snaps []telemetry.TraceSnapshot
	if err := c.getJSON(ctx, "/v1/traces", &snaps); err != nil {
		return nil, err
	}
	return snaps, nil
}

// Trace fetches one retained trace by the id the X-Henn-Trace response
// header carried (see Session.InferCiphertextTraced).
func (c *Client) Trace(ctx context.Context, id string) (*telemetry.TraceSnapshot, error) {
	snap := new(telemetry.TraceSnapshot)
	if err := c.getJSON(ctx, "/v1/traces/"+url.PathEscape(id), snap); err != nil {
		return nil, err
	}
	return snap, nil
}

// Metrics fetches the server's Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", apiError(resp)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// Deploy hot-deploys a model (admin): the bundle crosses the wire in the
// registry binary format and is serving sessions when the call returns, as
// the next version of its name. Deploying over a live name fails 409 — use
// Supersede to roll the version.
func (c *Client) Deploy(ctx context.Context, m *registry.Model) (*ModelInfo, error) {
	return c.post(ctx, "/v1/models", m)
}

// Supersede publishes the model as the next version of its name (admin):
// new registrations bind the new version while live older versions drain —
// their existing sessions keep serving until they disconnect.
func (c *Client) Supersede(ctx context.Context, m *registry.Model) (*ModelInfo, error) {
	return c.post(ctx, "/v1/models?supersede=true", m)
}

func (c *Client) post(ctx context.Context, path string, m *registry.Model) (*ModelInfo, error) {
	data, err := m.MarshalBinary()
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	c.authorize(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, apiError(resp)
	}
	info := new(ModelInfo)
	if err := json.NewDecoder(resp.Body).Decode(info); err != nil {
		return nil, fmt.Errorf("decoding deploy response: %w", err)
	}
	return info, nil
}

// Retire removes a model from the server's catalog (admin): a bare name
// retires every version, "name@N" just one. Bound sessions' pending
// requests fail 410 and each stack is freed once drained.
func (c *Client) Retire(ctx context.Context, name string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/models/"+url.PathEscape(name), nil)
	if err != nil {
		return err
	}
	c.authorize(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return apiError(resp)
	}
	return nil
}

// Session is a registered client session. The secret key never leaves it:
// encryption and decryption happen locally, only ciphertexts and public
// evaluation keys cross the wire. Safe for concurrent Infer calls.
type Session struct {
	c      *Client
	id     string
	info   *ModelInfo
	params *ckks.Parameters
	enc    *ckks.Encoder
	encr   *ckks.Encryptor
	decr   *ckks.Decryptor
}

// NewSession registers against the server's sole deployed model: it fetches
// the model info, generates a key set under the prescribed parameters and
// registers the public half. The seed drives the deterministic key
// generation (each client should pick its own). On a multi-model server use
// NewSessionFor.
func (c *Client) NewSession(ctx context.Context, seed int64) (*Session, error) {
	return c.newSession(ctx, "", seed)
}

// NewSessionFor registers a session bound to the named model.
func (c *Client) NewSessionFor(ctx context.Context, model string, seed int64) (*Session, error) {
	if model == "" {
		return nil, fmt.Errorf("server: NewSessionFor needs a model name")
	}
	return c.newSession(ctx, model, seed)
}

func (c *Client) newSession(ctx context.Context, model string, seed int64) (*Session, error) {
	var info *ModelInfo
	var err error
	if model == "" {
		info, err = c.Model(ctx)
	} else {
		info, err = c.ModelNamed(ctx, model)
	}
	if err != nil {
		return nil, err
	}
	var lit ckks.ParametersLiteral
	if err := lit.UnmarshalBinary(info.Params); err != nil {
		return nil, fmt.Errorf("prescribed parameters: %w", err)
	}
	params, err := ckks.NewParameters(lit)
	if err != nil {
		return nil, fmt.Errorf("compiling prescribed parameters: %w", err)
	}

	kg := ckks.NewKeyGenerator(params, seed)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	rks := kg.GenRotationKeys(sk, info.Rotations, false)

	pkBytes, err := pk.MarshalBinary()
	if err != nil {
		return nil, err
	}
	rlkBytes, err := rlk.MarshalBinary()
	if err != nil {
		return nil, err
	}
	rksBytes, err := rks.MarshalBinary()
	if err != nil {
		return nil, err
	}
	// Pin the exact version the info (and the keys derived from it)
	// describe: a supersede landing between the info fetch and this
	// registration must 410 cleanly instead of silently binding the new
	// version under the old version's parameters.
	payload, err := json.Marshal(registerRequest{
		Model:        info.Ref(),
		Params:       info.Params,
		PublicKey:    pkBytes,
		RelinKey:     rlkBytes,
		RotationKeys: rksBytes,
	})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/sessions", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var reg registerResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		return nil, fmt.Errorf("decoding registration: %w", err)
	}
	return &Session{
		c:      c,
		id:     reg.SessionID,
		info:   info,
		params: params,
		enc:    ckks.NewEncoder(params),
		encr:   ckks.NewEncryptor(params, pk, seed^0x7e57),
		decr:   ckks.NewDecryptor(params, sk),
	}, nil
}

// ID returns the server-assigned session id.
func (s *Session) ID() string { return s.id }

// Close deletes the session server-side, releasing its key material and
// batcher. The session's local keys stay usable (e.g. to decrypt responses
// already in flight).
func (s *Session) Close(ctx context.Context) error {
	url := fmt.Sprintf("%s/v1/sessions/%s", s.c.base, s.id)
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, url, nil)
	if err != nil {
		return err
	}
	resp, err := s.c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return apiError(resp)
	}
	return nil
}

// Model returns the info the session was built against.
func (s *Session) Model() *ModelInfo { return s.info }

// InferCiphertext round-trips one already-encrypted input through the
// server and returns the encrypted result.
func (s *Session) InferCiphertext(ctx context.Context, ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	out, _, err := s.InferCiphertextTraced(ctx, ct)
	return out, err
}

// InferCiphertextTraced is InferCiphertext plus the server-assigned trace
// id from the X-Henn-Trace response header; fetch the stage-level breakdown
// with Client.Trace once the response has been written (the server retains
// a bounded ring of completed traces).
func (s *Session) InferCiphertextTraced(ctx context.Context, ct *ckks.Ciphertext) (*ckks.Ciphertext, string, error) {
	data, err := ct.MarshalBinary()
	if err != nil {
		return nil, "", err
	}
	url := fmt.Sprintf("%s/v1/sessions/%s/infer", s.c.base, s.id)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return nil, "", err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := s.c.hc.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	traceID := resp.Header.Get("X-Henn-Trace")
	if resp.StatusCode != http.StatusOK {
		return nil, traceID, apiError(resp)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, traceID, err
	}
	out := new(ckks.Ciphertext)
	if err := out.UnmarshalBinary(body); err != nil {
		return nil, traceID, fmt.Errorf("decoding result ciphertext: %w", err)
	}
	return out, traceID, nil
}

// Infer encrypts the input vector, runs it through the server and returns
// the decrypted output logits (OutputDim values).
func (s *Session) Infer(ctx context.Context, x []float64) ([]float64, error) {
	if len(x) > s.info.InputDim {
		return nil, fmt.Errorf("input has %d features, model takes %d", len(x), s.info.InputDim)
	}
	vec := make([]float64, s.params.Slots())
	copy(vec, x)
	pt, err := s.enc.EncodeReals(vec, s.params.MaxLevel(), s.params.DefaultScale())
	if err != nil {
		return nil, err
	}
	out, err := s.InferCiphertext(ctx, s.encr.Encrypt(pt))
	if err != nil {
		return nil, err
	}
	logits := s.enc.DecodeReals(s.decr.Decrypt(out))
	return logits[:s.info.OutputDim], nil
}
