package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/efficientfhe/smartpaf/internal/henn"
	"github.com/efficientfhe/smartpaf/internal/paf"
	"github.com/efficientfhe/smartpaf/internal/registry"
)

// shapedModel builds a frozen MLP with an arbitrary in→hidden→out shape so
// multi-model tests can serve structurally different networks side by side
// (a crossed wire between models of different shapes fails loudly).
func shapedModel(t testing.TB, name string, seed int64, in, hidden, out int) *registry.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	newLinear := func(in, out int) *henn.Linear {
		l := &henn.Linear{In: in, Out: out, B: make([]float64, out), W: make([][]float64, out)}
		for i := range l.W {
			l.W[i] = make([]float64, in)
			for j := range l.W[i] {
				l.W[i][j] = rng.NormFloat64() * 0.4
			}
			l.B[i] = rng.NormFloat64() * 0.1
		}
		return l
	}
	mlp := &henn.MLP{Layers: []any{
		newLinear(in, hidden),
		&henn.Activation{PAF: paf.MustNew(paf.FormF1G2), Scale: 4},
		newLinear(hidden, out),
	}}
	lit, err := registry.ParamsForMLP(mlp, testLogN)
	if err != nil {
		t.Fatal(err)
	}
	return &registry.Model{Name: name, MLP: mlp, Params: lit, InputDim: in, OutputDim: out}
}

// inferAndCheck runs one encrypted inference and compares against the
// model's plaintext reference.
func inferAndCheck(t testing.TB, ctx context.Context, sess *Session, m *registry.Model, seed int64) error {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, m.InputDim)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	got, err := sess.Infer(ctx, x)
	if err != nil {
		return err
	}
	want := m.MLP.InferPlain(x)[:m.OutputDim]
	if len(got) != len(want) {
		t.Errorf("model %q: got %d logits, want %d", m.Name, len(got), len(want))
		return nil
	}
	for i := range want {
		if d := got[i] - want[i]; d > 1e-3 || d < -1e-3 {
			t.Errorf("model %q logit %d: encrypted %g vs plain %g", m.Name, i, got[i], want[i])
			return nil
		}
	}
	return nil
}

// TestMultiModelEndToEnd is the tentpole's core property: one server and one
// worker budget serving two structurally different models, with interleaved
// sessions each getting results that match their own model's reference.
func TestMultiModelEndToEnd(t *testing.T) {
	alpha := shapedModel(t, "alpha", 21, 16, 8, 4)
	beta := shapedModel(t, "beta", 22, 12, 6, 3)
	srv, err := New(Options{MaxBatch: 4, Workers: 2}, alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, srv)
	ctx := context.Background()
	client := NewClient(ts, nil)

	infos, err := client.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Name != "alpha" || infos[1].Name != "beta" {
		t.Fatalf("catalog %+v, want [alpha beta]", infos)
	}

	models := []*registry.Model{alpha, beta}
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for si := 0; si < 4; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			m := models[si%2]
			sess, err := client.NewSessionFor(ctx, m.Name, int64(3000+si))
			if err != nil {
				errCh <- err
				return
			}
			for r := 0; r < 3; r++ {
				if err := inferAndCheck(t, ctx, sess, m, int64(si*10+r)); err != nil {
					errCh <- fmt.Errorf("session %d (%s): %w", si, m.Name, err)
					return
				}
			}
		}(si)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	st := srv.Stats()
	if st.PeakInFlight > 2 {
		t.Fatalf("peak parallelism %d exceeded the shared 2-worker budget", st.PeakInFlight)
	}
	if len(st.Models) != 2 {
		t.Fatalf("stats cover %d models, want 2", len(st.Models))
	}
	for _, ms := range st.Models {
		if ms.UnitsRun != 6 {
			t.Fatalf("model %q ran %d units, want 6", ms.Name, ms.UnitsRun)
		}
	}
}

// newHTTPServer wires a Server into httptest with cleanup.
func newHTTPServer(t testing.TB, srv *Server) string {
	t.Helper()
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return hs.URL
}

// TestModelSelectionRules pins the registration-routing contract.
func TestModelSelectionRules(t *testing.T) {
	alpha := shapedModel(t, "alpha", 31, 16, 8, 4)
	beta := shapedModel(t, "beta", 32, 12, 6, 3)
	srv, err := New(Options{}, alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, srv)
	ctx := context.Background()
	client := NewClient(ts, nil)

	// GET /v1/model is ambiguous with two models deployed.
	if _, err := client.Model(ctx); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("ambiguous /v1/model: got %v, want 409", err)
	}
	// Unknown model name 404s at info fetch.
	if _, err := client.NewSessionFor(ctx, "gamma", 1); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown model: got %v, want 404", err)
	}
	// Registering without a model name is rejected while several are
	// deployed: post a syntactically valid registration with no model.
	resp, err := http.Post(ts+"/v1/sessions", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("nameless registration with 2 models: got %s, want 400", resp.Status)
	}
	// Named registration works for both.
	if _, err := client.NewSessionFor(ctx, "alpha", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := client.NewSessionFor(ctx, "beta", 3); err != nil {
		t.Fatal(err)
	}
}

// TestHotDeployAndRetireMidTraffic is the lifecycle acceptance test: a third
// model is deployed over HTTP while traffic flows, a model is retired mid-
// backlog — its queued jobs fail 410, later requests 404, re-deploying the
// name works, and the retired stack drains (frees) without a panic.
func TestHotDeployAndRetireMidTraffic(t *testing.T) {
	alpha := shapedModel(t, "alpha", 41, 16, 8, 4)
	beta := shapedModel(t, "beta", 42, 12, 6, 3)
	srv, err := New(Options{MaxBatch: 4, Workers: 1, QueueDepth: 64}, alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, srv)
	ctx := context.Background()
	client := NewClient(ts, nil)

	alphaSess, err := client.NewSessionFor(ctx, "alpha", 51)
	if err != nil {
		t.Fatal(err)
	}
	betaSess, err := client.NewSessionFor(ctx, "beta", 52)
	if err != nil {
		t.Fatal(err)
	}

	// Build a standing alpha backlog behind the single worker.
	x := make([]float64, alpha.InputDim)
	const flood = 10
	var wg sync.WaitGroup
	var gone, ran atomic.Int64
	for r := 0; r < flood; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := alphaSess.Infer(ctx, x); err != nil {
				if strings.Contains(err.Error(), "session closed") {
					gone.Add(1)
				} else {
					t.Error(err)
				}
				return
			}
			ran.Add(1)
		}()
	}
	pollStats(t, srv, func(st Stats) bool { return st.Backlog >= flood/2 }, "alpha backlog")

	// Hot-deploy gamma over HTTP while the flood queues...
	gamma := shapedModel(t, "gamma", 43, 10, 5, 2)
	info, err := client.Deploy(ctx, gamma)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "gamma" || srv.Registry().Len() != 3 {
		t.Fatalf("deploy response %+v, registry size %d", info, srv.Registry().Len())
	}
	// ...and duplicate deploys conflict.
	if _, err := client.Deploy(ctx, gamma); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("duplicate deploy: got %v, want 409", err)
	}

	// The hot-deployed model serves immediately.
	gammaSess, err := client.NewSessionFor(ctx, "gamma", 53)
	if err != nil {
		t.Fatal(err)
	}
	if err := inferAndCheck(t, ctx, gammaSess, gamma, 1); err != nil {
		t.Fatal(err)
	}

	// Session registration and inference on gamma may have given the single
	// worker time to drain the first flood; queue a fresh alpha burst so the
	// retire lands on a standing backlog.
	for r := 0; r < flood; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := alphaSess.Infer(ctx, x); err != nil {
				if strings.Contains(err.Error(), "session closed") {
					gone.Add(1)
				} else {
					t.Error(err)
				}
				return
			}
			ran.Add(1)
		}()
	}
	pollStats(t, srv, func(st Stats) bool { return st.Backlog >= flood/2 }, "standing alpha backlog")

	// Retire alpha mid-backlog: queued jobs must fail 410 now.
	dep, _ := srv.Registry().Get("alpha")
	if err := client.Retire(ctx, "alpha"); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if gone.Load() == 0 {
		t.Fatal("no alpha request observed the 410 session-closed failure")
	}
	// Later requests on the dead session are 404 (session is gone), and new
	// registrations against the retired name 404 too.
	if _, err := alphaSess.Infer(ctx, x); err == nil {
		t.Fatal("inference on a retired model's session succeeded")
	}
	if _, err := client.NewSessionFor(ctx, "alpha", 54); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("registration against a retired model: got %v, want 404", err)
	}
	// The stack drains and frees once its in-flight unit (if any) finishes.
	select {
	case <-dep.Drained():
	case <-time.After(10 * time.Second):
		t.Fatal("retired alpha stack never drained")
	}
	// Retiring an unknown name is 404.
	if err := client.Retire(ctx, "alpha"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("double retire: got %v, want 404", err)
	}

	// The name can be redeployed and serves again.
	if _, err := client.Deploy(ctx, shapedModel(t, "alpha", 44, 16, 8, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.NewSessionFor(ctx, "alpha", 55); err != nil {
		t.Fatal(err)
	}
	// Beta traffic was never disturbed.
	if err := inferAndCheck(t, ctx, betaSess, beta, 2); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentModelChurn exercises deploy/retire/register/infer races
// across models under -race: churn goroutines cycle short-lived models while
// steady sessions on two stable models keep inferring correctly.
func TestConcurrentModelChurn(t *testing.T) {
	alpha := shapedModel(t, "alpha", 61, 16, 8, 4)
	beta := shapedModel(t, "beta", 62, 12, 6, 3)
	srv, err := New(Options{MaxBatch: 2, Workers: 2, QueueDepth: 64}, alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, srv)
	ctx := context.Background()
	client := NewClient(ts, nil)

	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	for g := 0; g < 2; g++ {
		churnWG.Add(1)
		go func(g int) {
			defer churnWG.Done()
			m := shapedModel(t, fmt.Sprintf("churn-%d", g), int64(70+g), 8, 4, 2)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := client.Deploy(ctx, m); err != nil {
					t.Error(err)
					return
				}
				// Every other cycle binds a session and runs one inference
				// before the model dies, covering the retire-with-traffic
				// path; the other cycles retire a bound-but-idle model.
				sess, err := client.NewSessionFor(ctx, m.Name, int64(i))
				if err != nil {
					t.Error(err)
					return
				}
				if i%2 == 0 {
					if err := inferAndCheck(t, ctx, sess, m, int64(i)); err != nil {
						t.Error(err)
						return
					}
				}
				if err := client.Retire(ctx, m.Name); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}

	models := []*registry.Model{alpha, beta}
	var wg sync.WaitGroup
	for si := 0; si < 2; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			m := models[si]
			sess, err := client.NewSessionFor(ctx, m.Name, int64(80+si))
			if err != nil {
				t.Error(err)
				return
			}
			for r := 0; r < 4; r++ {
				if err := inferAndCheck(t, ctx, sess, m, int64(r)); err != nil {
					t.Error(err)
					return
				}
			}
		}(si)
	}
	wg.Wait()
	close(stop)
	churnWG.Wait()

	if st := srv.Stats(); st.PeakInFlight > st.Workers {
		t.Fatalf("peak parallelism %d exceeded the %d-worker budget", st.PeakInFlight, st.Workers)
	}
}

// TestStatsEndpoint covers GET /v1/stats: the JSON snapshot carries the
// scheduler counters and the per-model breakdown.
func TestStatsEndpoint(t *testing.T) {
	alpha := shapedModel(t, "alpha", 91, 16, 8, 4)
	beta := shapedModel(t, "beta", 92, 12, 6, 3)
	srv, err := New(Options{Workers: 2}, alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, srv)
	ctx := context.Background()
	client := NewClient(ts, nil)

	sess, err := client.NewSessionFor(ctx, "alpha", 93)
	if err != nil {
		t.Fatal(err)
	}
	if err := inferAndCheck(t, ctx, sess, alpha, 1); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats endpoint: got %s, want 200", resp.Status)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Workers != 2 {
		t.Fatalf("stats workers %d, want 2", st.Workers)
	}
	if st.UnitsRun < 1 {
		t.Fatalf("stats unitsRun %d, want >= 1", st.UnitsRun)
	}
	if len(st.Models) != 2 {
		t.Fatalf("stats cover %d models, want 2", len(st.Models))
	}
	byName := map[string]ModelStats{}
	for _, ms := range st.Models {
		byName[ms.Name] = ms
	}
	if a := byName["alpha"]; a.Sessions != 1 || a.UnitsRun != 1 {
		t.Fatalf("alpha stats %+v, want 1 session and 1 unit", a)
	}
	if b := byName["beta"]; b.Sessions != 0 || b.UnitsRun != 0 {
		t.Fatalf("beta stats %+v, want no activity", b)
	}

	// The client helper decodes the same payload.
	cst, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cst.Workers != 2 || len(cst.Models) != 2 {
		t.Fatalf("client stats %+v", cst)
	}
}

// weightHeaderRT tags every request with a QoS weight header, standing in
// for the authenticating proxy a deployment would use.
type weightHeaderRT struct{ weight string }

func (rt weightHeaderRT) RoundTrip(req *http.Request) (*http.Response, error) {
	req.Header.Set("X-Qos-Weight", rt.weight)
	return http.DefaultTransport.RoundTrip(req)
}

func weightFromHeader(r *http.Request) int {
	n, _ := strconv.Atoi(r.Header.Get("X-Qos-Weight"))
	return n
}

// TestWeightHookClamped: hook results are clamped to [1, 64] and echoed in
// the session state.
func TestWeightHookClamped(t *testing.T) {
	model, err := registry.DemoModel(11, testLogN)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{Weight: weightFromHeader}, model)
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, srv)
	ctx := context.Background()
	for _, tc := range []struct {
		header string
		want   int
	}{
		{"", 1},                    // missing header -> weight 1
		{"0", 1},                   // sub-1 clamps up
		{"4", 4},                   // in range
		{"9999", maxSessionWeight}, // clamps down
	} {
		hc := &http.Client{Transport: weightHeaderRT{tc.header}}
		sess, err := NewClient(ts, hc).NewSession(ctx, 7)
		if err != nil {
			t.Fatal(err)
		}
		srv.mu.RLock()
		got := srv.sessions[sess.ID()].weight
		srv.mu.RUnlock()
		if got != tc.want {
			t.Fatalf("header %q: session weight %d, want %d", tc.header, got, tc.want)
		}
	}
}

// TestWeightedFairNoStarvation is the QoS starvation regression: a weighted
// flood gets a proportionally bigger quantum, but round-robin turns still
// bound how long a weight-1 victim waits — it must overtake the flood's
// backlog rather than wait it out.
func TestWeightedFairNoStarvation(t *testing.T) {
	model, err := registry.DemoModel(11, testLogN)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{MaxBatch: 2, Workers: 1, QueueDepth: 64, Weight: weightFromHeader}, model)
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, srv)
	ctx := context.Background()

	// Flood at weight 2 (quantum 4), victim at weight 1 (quantum 2).
	flood, err := NewClient(ts, &http.Client{Transport: weightHeaderRT{"2"}}).NewSession(ctx, 95)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := NewClient(ts, nil).NewSession(ctx, 96)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, model.InputDim)
	for i := range x {
		x[i] = float64(i%5)/5 - 0.4
	}
	const floodN = 12
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		floodLast time.Time
	)
	for r := 0; r < floodN; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := flood.Infer(ctx, x); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			if now := time.Now(); now.After(floodLast) {
				floodLast = now
			}
			mu.Unlock()
		}()
	}
	pollStats(t, srv, func(st Stats) bool { return st.Backlog >= floodN/2 }, "weighted flood backlog")
	if _, err := victim.Infer(ctx, x); err != nil {
		t.Fatal(err)
	}
	victimDone := time.Now()
	wg.Wait()
	if victimDone.After(floodLast) {
		t.Fatal("weight-1 victim starved behind a weighted flood; round-robin must still serve it a quantum")
	}
}
