package server

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestSupersedeDrainEndToEnd is the versioned-rollout acceptance path over
// HTTP: superseding a model under a live session publishes v2 for new
// registrations while the v1 session keeps serving the old stack (its
// results still match the v1 reference — a crossed wire would answer with
// v2's weights), exact v1 registrations 410, the catalog reports the drain,
// and the v1 stack frees once its last session closes.
func TestSupersedeDrainEndToEnd(t *testing.T) {
	v1 := shapedModel(t, "alpha", 101, 16, 8, 4)
	v2 := shapedModel(t, "alpha", 102, 16, 8, 4) // same shape, different weights
	srv, err := New(Options{Workers: 2}, v1)
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, srv)
	ctx := context.Background()
	client := NewClient(ts, nil)

	oldSess, err := client.NewSessionFor(ctx, "alpha", 111)
	if err != nil {
		t.Fatal(err)
	}
	if got := oldSess.Model().Version; got != 1 {
		t.Fatalf("first deploy served version %d, want 1", got)
	}
	if err := inferAndCheck(t, ctx, oldSess, v1, 1); err != nil {
		t.Fatal(err)
	}

	dep1, ok := srv.Registry().Resolve("alpha@1")
	if !ok {
		t.Fatal("alpha@1 not resolvable before the supersede")
	}
	info2, err := client.Supersede(ctx, v2)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Version != 2 {
		t.Fatalf("supersede published version %d, want 2", info2.Version)
	}

	// The old session keeps serving — on the v1 stack.
	if err := inferAndCheck(t, ctx, oldSess, v1, 2); err != nil {
		t.Fatalf("v1 session after supersede: %v", err)
	}
	// New registrations on the bare name land on v2 and answer with v2's
	// weights.
	newSess, err := client.NewSessionFor(ctx, "alpha", 112)
	if err != nil {
		t.Fatal(err)
	}
	if got := newSess.Model().Version; got != 2 {
		t.Fatalf("post-supersede registration bound version %d, want 2", got)
	}
	if err := inferAndCheck(t, ctx, newSess, v2, 3); err != nil {
		t.Fatal(err)
	}
	// Pinning the draining version is a clean 410, not a silent rebind.
	if _, err := client.NewSessionFor(ctx, "alpha@1", 113); err == nil || !strings.Contains(err.Error(), "410") {
		t.Fatalf("registration against the draining version: got %v, want 410", err)
	}

	// The catalog reports both versions, the old one draining; the
	// single-model convenience route still resolves (one live model).
	infos, err := client.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || !infos[0].Draining || infos[0].Version != 1 || infos[1].Draining {
		t.Fatalf("catalog mid-drain: %+v", infos)
	}
	if _, err := client.Model(ctx); err != nil {
		t.Fatalf("GET /v1/model with one live + one draining version: %v", err)
	}
	st := srv.Stats()
	if len(st.Models) != 2 || !st.Models[0].Draining || st.Models[0].Sessions != 1 {
		t.Fatalf("stats mid-drain: %+v", st.Models)
	}

	// The old session disconnects: the v1 stack drains, frees and leaves
	// the catalog; the v2 session is undisturbed.
	if err := oldSess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case <-dep1.Drained():
	case <-time.After(10 * time.Second):
		t.Fatal("v1 stack never drained after its last session closed")
	}
	if infos, err = client.Models(ctx); err != nil || len(infos) != 1 || infos[0].Version != 2 {
		t.Fatalf("catalog after drain: %+v (err %v)", infos, err)
	}
	if err := inferAndCheck(t, ctx, newSess, v2, 4); err != nil {
		t.Fatal(err)
	}
}

// TestAdminAuth pins the authn contract on the admin mutations: without a
// bearer token they 401 (with a challenge), with a wrong one they 403, with
// the right one they work — and the read/serving endpoints stay open.
func TestAdminAuth(t *testing.T) {
	alpha := shapedModel(t, "alpha", 121, 16, 8, 4)
	srv, err := New(Options{AdminToken: "s3cret"}, alpha)
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, srv)
	ctx := context.Background()
	anon := NewClient(ts, nil)
	admin := anon.WithAdminToken("s3cret")
	wrong := anon.WithAdminToken("guess")

	beta := shapedModel(t, "beta", 122, 12, 6, 3)
	if _, err := anon.Deploy(ctx, beta); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("tokenless deploy: got %v, want 401", err)
	}
	if _, err := wrong.Deploy(ctx, beta); err == nil || !strings.Contains(err.Error(), "403") {
		t.Fatalf("wrong-token deploy: got %v, want 403", err)
	}
	if err := anon.Retire(ctx, "alpha"); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("tokenless retire: got %v, want 401", err)
	}
	if _, err := anon.Supersede(ctx, alpha); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("tokenless supersede: got %v, want 401", err)
	}
	// The 401 carries the WWW-Authenticate challenge.
	req, _ := http.NewRequest(http.MethodDelete, ts+"/v1/models/alpha", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized || resp.Header.Get("WWW-Authenticate") == "" {
		t.Fatalf("challenge missing: status %s, WWW-Authenticate %q", resp.Status, resp.Header.Get("WWW-Authenticate"))
	}

	// Reads and session traffic need no token.
	if _, err := anon.Models(ctx); err != nil {
		t.Fatal(err)
	}
	sess, err := anon.NewSessionFor(ctx, "alpha", 123)
	if err != nil {
		t.Fatal(err)
	}
	if err := inferAndCheck(t, ctx, sess, alpha, 1); err != nil {
		t.Fatal(err)
	}

	// The real token passes every mutation.
	if _, err := admin.Deploy(ctx, beta); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Supersede(ctx, shapedModel(t, "beta", 124, 12, 6, 3)); err != nil {
		t.Fatal(err)
	}
	if err := admin.Retire(ctx, "beta"); err != nil {
		t.Fatal(err)
	}
}

// TestPerModelSessionQuota: one model cannot monopolize the session table —
// registrations beyond Options.MaxSessionsPerModel 429 while other models
// (and the same model after a session closes) still register.
func TestPerModelSessionQuota(t *testing.T) {
	alpha := shapedModel(t, "alpha", 131, 16, 8, 4)
	beta := shapedModel(t, "beta", 132, 12, 6, 3)
	srv, err := New(Options{MaxSessionsPerModel: 1}, alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, srv)
	ctx := context.Background()
	client := NewClient(ts, nil)

	first, err := client.NewSessionFor(ctx, "alpha", 141)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.NewSessionFor(ctx, "alpha", 142); err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("over-quota registration: got %v, want 429", err)
	}
	// Another model has its own quota.
	if _, err := client.NewSessionFor(ctx, "beta", 143); err != nil {
		t.Fatalf("beta blocked by alpha's quota: %v", err)
	}
	// Freeing the slot reopens the model.
	if err := first.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := client.NewSessionFor(ctx, "alpha", 144); err != nil {
		t.Fatalf("registration after the quota freed: %v", err)
	}
}

// TestRestartRoundTrip is the persistence acceptance test: a server with a
// state directory accumulates a catalog (startup deploy, hot deploy over
// HTTP, supersede), stops, and a rebuilt server on the same directory comes
// back with the identical catalog — names, versions, parameter bytes — and
// a working register→infer→decrypt path. Hostile files dropped into the
// state directory are skipped, never a crashed startup.
func TestRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	alpha := shapedModel(t, "alpha", 151, 16, 8, 4)
	alphaV2 := shapedModel(t, "alpha", 152, 16, 8, 4)
	beta := shapedModel(t, "beta", 153, 12, 6, 3)

	srv1, err := New(Options{StateDir: dir, Workers: 2}, alpha)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := newHTTPServer(t, srv1)
	ctx := context.Background()
	client1 := NewClient(ts1, nil)
	if _, err := client1.Deploy(ctx, beta); err != nil { // hot deploy over HTTP
		t.Fatal(err)
	}
	if _, err := client1.Supersede(ctx, alphaV2); err != nil { // roll alpha to v2
		t.Fatal(err)
	}
	before, err := client1.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 2 { // alpha@1 drained instantly (no sessions)
		t.Fatalf("catalog before restart: %+v", before)
	}
	sess1, err := client1.NewSessionFor(ctx, "alpha", 161)
	if err != nil {
		t.Fatal(err)
	}
	if err := inferAndCheck(t, ctx, sess1, alphaV2, 1); err != nil {
		t.Fatal(err)
	}

	// Stop the world; rebuild from the state directory alone.
	srv1.Close()
	srv2, err := New(Options{StateDir: dir, Workers: 2})
	if err != nil {
		t.Fatalf("rebuild from state dir: %v", err)
	}
	ts2 := newHTTPServer(t, srv2)
	client2 := NewClient(ts2, nil)
	after, err := client2.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("catalog size changed across restart: %d -> %d", len(before), len(after))
	}
	for i := range before {
		if after[i].Name != before[i].Name || after[i].Version != before[i].Version {
			t.Fatalf("catalog entry %d changed: %s@%d -> %s@%d",
				i, before[i].Name, before[i].Version, after[i].Name, after[i].Version)
		}
		if string(after[i].Params) != string(before[i].Params) {
			t.Fatalf("%s parameter bytes changed across restart", after[i].Ref())
		}
	}
	// The reloaded catalog serves: full register→infer→decrypt on both
	// models, against the original weights.
	sess2, err := client2.NewSessionFor(ctx, "alpha", 162)
	if err != nil {
		t.Fatal(err)
	}
	if got := sess2.Model().Version; got != 2 {
		t.Fatalf("restarted alpha is version %d, want 2", got)
	}
	if err := inferAndCheck(t, ctx, sess2, alphaV2, 2); err != nil {
		t.Fatalf("alpha after restart: %v", err)
	}
	sessBeta, err := client2.NewSessionFor(ctx, "beta", 163)
	if err != nil {
		t.Fatal(err)
	}
	if err := inferAndCheck(t, ctx, sessBeta, beta, 3); err != nil {
		t.Fatalf("beta after restart: %v", err)
	}
	srv2.Close()

	// Hostile state: truncated and corrupt bundles beside the good ones
	// must be skipped with a warning, not crash (or fail) the startup.
	goodBytes, err := os.ReadFile(filepath.Join(dir, "alpha@2.hemodel"))
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"trunc@1.hemodel":   goodBytes[:len(goodBytes)/3],
		"junk@1.hemodel":    {1, 2, 3, 4, 5},
		"beta@9.hemodel":    goodBytes, // embedded name disagrees with the file
		"noversion.hemodel": goodBytes,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	srv3, err := New(Options{StateDir: dir})
	if err != nil {
		t.Fatalf("startup with hostile state files: %v", err)
	}
	defer srv3.Close()
	if got := srv3.Registry().Len(); got != 2 {
		t.Fatalf("hostile files changed the catalog: %d versions, want 2", got)
	}
}

// TestRestartSkipsDuplicateStartupModels: restarting with the same model
// flags as the previous run must not conflict with the reloaded catalog —
// the durable state wins and the duplicate startup model is skipped.
func TestRestartSkipsDuplicateStartupModels(t *testing.T) {
	dir := t.TempDir()
	alpha := shapedModel(t, "alpha", 171, 16, 8, 4)
	srv1, err := New(Options{StateDir: dir}, alpha)
	if err != nil {
		t.Fatal(err)
	}
	srv1.Close()
	srv2, err := New(Options{StateDir: dir}, alpha)
	if err != nil {
		t.Fatalf("restart with the same startup model: %v", err)
	}
	defer srv2.Close()
	d, ok := srv2.Registry().Resolve("alpha")
	if !ok || d.Version() != 1 {
		t.Fatalf("restarted catalog: %v, want alpha@1 from the state dir", d)
	}
	if srv2.Registry().Len() != 1 {
		t.Fatalf("duplicate startup model doubled the catalog: %d entries", srv2.Registry().Len())
	}
}

// TestSupersedeRacingRegistration: a client that fetched v1's info but
// registers after the supersede must get a clean 410 (the client pins the
// exact version), never a session silently bound to different weights.
func TestSupersedeRacingRegistration(t *testing.T) {
	v1 := shapedModel(t, "alpha", 181, 16, 8, 4)
	srv, err := New(Options{}, v1)
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, srv)
	ctx := context.Background()
	client := NewClient(ts, nil)

	info, err := client.ModelNamed(ctx, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if info.Ref() != "alpha@1" {
		t.Fatalf("info ref %s, want alpha@1", info.Ref())
	}
	// A session holds v1 so the supersede leaves it draining (an idle v1
	// would free and delist on the spot, turning the miss into a 404 —
	// also clean, but not the race under test).
	holder, err := client.NewSessionFor(ctx, "alpha", 184)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Registry().Supersede(shapedModel(t, "alpha", 182, 16, 8, 4)); err != nil {
		t.Fatal(err)
	}
	// NewSessionFor re-fetches; simulate the stale client by registering
	// against the pinned v1 reference directly.
	if _, err := client.NewSessionFor(ctx, "alpha@1", 183); err == nil || !strings.Contains(err.Error(), "410") {
		t.Fatalf("stale-version registration: got %v, want 410", err)
	}
	if err := holder.Close(ctx); err != nil {
		t.Fatal(err)
	}
}
