package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/efficientfhe/smartpaf/internal/ckks"
	"github.com/efficientfhe/smartpaf/internal/henn"
)

// Options tune the serving front end. The zero value is usable.
type Options struct {
	// MaxBatch is the fair-scheduling quantum: how many queued jobs one
	// scheduler turn claims from a session before the next session is
	// served. Default 16.
	MaxBatch int
	// Workers is the server-wide inference worker budget shared by every
	// session, following the repo-wide convention: 0 or 1 runs one worker,
	// negative uses all cores. The number of concurrently executing
	// inference units is bounded by this one budget no matter how many
	// sessions are active (serving deployments want -1; cmd/hennserve
	// defaults to it). Within a unit, the ring substrate's limb fan-out
	// still follows the process-wide GOMAXPROCS/ring.SetParallelism
	// setting — Workers counts units, not goroutines.
	Workers int
	// BatchWindow is how long a newly active session waits before its first
	// scheduler turn, letting a quantum fill (a full quantum, session
	// deletion, or shutdown cuts the wait short). 0 dispatches immediately.
	// Only the fair policy windows; PolicyFIFO dispatches in arrival order
	// regardless. Default 0.
	BatchWindow time.Duration
	// Policy picks the cross-session scheduling policy: PolicyFair
	// (default) or PolicyFIFO (the no-fairness baseline).
	Policy string
	// MaxSessions caps live sessions. Default 64.
	MaxSessions int
	// SessionTTL evicts sessions idle for longer than this, so abandoned
	// registrations cannot pin key material (or lock out new sessions)
	// forever. Negative disables eviction. Default 30 minutes.
	SessionTTL time.Duration
	// MaxBodyBytes caps request bodies (rotation-key sets dominate).
	// Default 1 GiB.
	MaxBodyBytes int64
	// QueueDepth is the per-session request queue. Default 1024.
	QueueDepth int
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 16
	}
	if o.Policy == "" {
		o.Policy = PolicyFair
	}
	if o.MaxSessions <= 0 {
		o.MaxSessions = 64
	}
	if o.SessionTTL == 0 {
		o.SessionTTL = 30 * time.Minute
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 30
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	return o
}

// Server multiplexes encrypted-inference sessions onto one shared model.
// The henn/ckks stack is safe for concurrent use, so every session shares
// the server's compiled parameters and encoder; each session owns only the
// evaluator bound to its client's evaluation keys. All sessions' jobs flow
// through one scheduler and one bounded worker pool (see scheduler.go).
type Server struct {
	model      *Model
	params     *ckks.Parameters
	enc        *ckks.Encoder
	info       ModelInfo
	paramBytes []byte // canonical literal encoding sessions must match
	opts       Options
	sched      *scheduler

	mu       sync.RWMutex
	sessions map[string]*session
	closed   chan struct{}
	wg       sync.WaitGroup
}

type session struct {
	id string
	// ctx carries the evaluator bound to this client's evaluation keys.
	ctx  *henn.Context
	jobs chan *inferJob
	// done is closed when the session is deleted or evicted; the scheduler
	// fails its queued jobs and waiting handlers turn it into a 410.
	done chan struct{}
	// lastUsed is the unix-nano timestamp of the latest request, read by
	// the TTL janitor.
	lastUsed atomic.Int64

	// Scheduler turn state, guarded by the scheduler's mutex.
	inRing      bool
	dispatching bool
	windowAt    time.Time
}

func (sess *session) touch() { sess.lastUsed.Store(time.Now().UnixNano()) }

type inferJob struct {
	ct   *ckks.Ciphertext
	done chan inferResult
}

type inferResult struct {
	ct  *ckks.Ciphertext
	err error
}

// New compiles the model's parameters and returns a ready server.
func New(model *Model, opts Options) (*Server, error) {
	params, err := ckks.NewParameters(model.Params)
	if err != nil {
		return nil, fmt.Errorf("server: compiling model parameters: %w", err)
	}
	// One inference consumes exactly LevelsRequired levels (input at level
	// L finishes at L−LevelsRequired ≥ 0), so a chain whose MaxLevel equals
	// LevelsRequired is the true minimum — demanding more rejects viable
	// parameter sets.
	if need := model.MLP.LevelsRequired(); params.MaxLevel() < need {
		return nil, fmt.Errorf("server: parameters support %d levels, model needs %d", params.MaxLevel(), need)
	}
	paramBytes, err := model.Params.MarshalBinary()
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if opts.Policy != PolicyFair && opts.Policy != PolicyFIFO {
		return nil, fmt.Errorf("server: unknown scheduling policy %q (want %q or %q)", opts.Policy, PolicyFair, PolicyFIFO)
	}
	s := &Server{
		model:      model,
		params:     params,
		enc:        ckks.NewEncoder(params),
		paramBytes: paramBytes,
		opts:       opts,
		sessions:   map[string]*session{},
		closed:     make(chan struct{}),
	}
	s.info = ModelInfo{
		Name:      model.Name,
		InputDim:  model.InputDim,
		OutputDim: model.OutputDim,
		Levels:    model.MLP.LevelsRequired(),
		Slots:     params.Slots(),
		Params:    paramBytes,
		Rotations: model.MLP.RequiredRotations(params.Slots()),
	}
	s.sched = newScheduler(s)
	s.wg.Add(1)
	go s.sched.run()
	if s.opts.SessionTTL > 0 {
		s.wg.Add(1)
		go s.janitor()
	}
	return s, nil
}

// janitor evicts sessions whose last request is older than SessionTTL.
func (s *Server) janitor() {
	defer s.wg.Done()
	tick := time.NewTicker(s.opts.SessionTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-tick.C:
		}
		cutoff := time.Now().Add(-s.opts.SessionTTL).UnixNano()
		var evicted []*session
		s.mu.Lock()
		for id, sess := range s.sessions {
			if sess.lastUsed.Load() < cutoff {
				delete(s.sessions, id)
				close(sess.done)
				evicted = append(evicted, sess)
			}
		}
		s.mu.Unlock()
		for _, sess := range evicted {
			s.sched.sessionClosed(sess)
		}
	}
}

// removeSession deletes a session by id, reporting whether it existed.
func (s *Server) removeSession(id string) bool {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
		close(sess.done)
	}
	s.mu.Unlock()
	if ok {
		s.sched.sessionClosed(sess)
	}
	return ok
}

// Info returns the model description served at /v1/model.
func (s *Server) Info() ModelInfo { return s.info }

// Close stops the scheduler, fails queued requests and drains the worker
// pool.
func (s *Server) Close() {
	s.mu.Lock()
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.sched.pool.Close()
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/model", s.handleModel)
	mux.HandleFunc("POST /v1/sessions", s.handleRegister)
	mux.HandleFunc("POST /v1/sessions/{id}/infer", s.handleInfer)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	return mux
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.removeSession(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleModel(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.info)
}

// registerRequest carries the public key material of a new session over the
// internal/ckks binary wire format.
type registerRequest struct {
	Params       []byte `json:"params"`
	PublicKey    []byte `json:"publicKey"`
	RelinKey     []byte `json:"relinKey"`
	RotationKeys []byte `json:"rotationKeys"`
}

type registerResponse struct {
	SessionID string `json:"sessionID"`
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "registration exceeds the %d-byte body limit", mbe.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "decoding registration: %v", err)
		return
	}
	if string(req.Params) != string(s.paramBytes) {
		writeError(w, http.StatusBadRequest,
			"session parameters do not match the model's prescribed literal; fetch GET /v1/model")
		return
	}
	// The public key is part of the registration payload (future server-side
	// uses like result re-randomization encrypt under it); today it is only
	// validated, not retained.
	pk := new(ckks.PublicKey)
	if err := pk.UnmarshalBinary(req.PublicKey); err != nil {
		writeError(w, http.StatusBadRequest, "public key: %v", err)
		return
	}
	if pk.B.Level() != s.params.MaxLevel() || len(pk.B.Coeffs[0]) != s.params.N() {
		writeError(w, http.StatusBadRequest, "public key was built for different parameters")
		return
	}
	rlk := new(ckks.RelinearizationKey)
	if err := rlk.UnmarshalBinary(req.RelinKey); err != nil {
		writeError(w, http.StatusBadRequest, "relinearization key: %v", err)
		return
	}
	if err := s.checkDigits(rlk.Digits); err != nil {
		writeError(w, http.StatusBadRequest, "relinearization key: %v", err)
		return
	}
	rks := new(ckks.RotationKeySet)
	if err := rks.UnmarshalBinary(req.RotationKeys); err != nil {
		writeError(w, http.StatusBadRequest, "rotation keys: %v", err)
		return
	}
	// The server prescribes the rotation-step set exactly: every uploaded
	// key must be one the model uses (a session may not pin arbitrary extra
	// key material), and every key that could reach the key-switch loop
	// must be shaped for the model's parameters, or a hostile upload
	// becomes a panic at inference time instead of a 400 here.
	required := map[int]bool{}
	for _, step := range s.info.Rotations {
		required[step] = true
	}
	have := map[int]bool{}
	for _, step := range rks.Steps() {
		if !required[step] {
			writeError(w, http.StatusBadRequest, "rotation key for step %d is not in the model's required set", step)
			return
		}
		key, _ := rks.Key(step)
		if err := s.checkDigits(key.Digits); err != nil {
			writeError(w, http.StatusBadRequest, "rotation key for step %d: %v", step, err)
			return
		}
		have[step] = true
	}
	if rks.HasConjugation() {
		writeError(w, http.StatusBadRequest, "the model does not use conjugation; drop the conjugation key")
		return
	}
	for _, step := range s.info.Rotations {
		if !have[step] {
			writeError(w, http.StatusBadRequest, "rotation keys missing required step %d", step)
			return
		}
	}

	eval := ckks.NewEvaluator(s.params, rlk).WithRotationKeys(rks)
	sess := &session{
		ctx:  henn.NewContext(s.params, s.enc, eval),
		jobs: make(chan *inferJob, s.opts.QueueDepth),
		done: make(chan struct{}),
	}
	sess.touch()
	idBytes := make([]byte, 16)
	if _, err := rand.Read(idBytes); err != nil {
		writeError(w, http.StatusInternalServerError, "session id: %v", err)
		return
	}
	sess.id = hex.EncodeToString(idBytes)

	s.mu.Lock()
	select {
	case <-s.closed:
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	default:
	}
	if len(s.sessions) >= s.opts.MaxSessions {
		s.mu.Unlock()
		writeError(w, http.StatusTooManyRequests, "session limit (%d) reached", s.opts.MaxSessions)
		return
	}
	s.sessions[sess.id] = sess
	s.mu.Unlock()

	writeJSON(w, http.StatusOK, registerResponse{SessionID: sess.id})
}

// checkDigits rejects key material that deserialized cleanly but was built
// for different parameters than the model prescribes.
func (s *Server) checkDigits(digits []ckks.EvaluationKeyDigit) error {
	if got, want := len(digits), s.params.MaxLevel()+1; got != want {
		return fmt.Errorf("%d gadget digits, parameters need %d", got, want)
	}
	for i := range digits {
		d := &digits[i]
		if d.BQ.Level() != s.params.MaxLevel() || d.BP.Level() != 0 {
			return fmt.Errorf("digit %d has %d/%d limbs, want %d/1", i, d.BQ.Level()+1, d.BP.Level()+1, s.params.MaxLevel()+1)
		}
		if n := len(d.BQ.Coeffs[0]); n != s.params.N() {
			return fmt.Errorf("digit %d has ring degree %d, parameters use %d", i, n, s.params.N())
		}
	}
	return nil
}

func (s *Server) lookup(id string) *session {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sessions[id]
}

// maxCiphertextBytes is the exact wire size of a ciphertext under the
// server's parameters (header + two full-chain polys) with slack for the
// poly headers. The infer endpoint caps bodies here rather than at the
// key-upload limit, so a hostile client cannot pin a key-sized buffer per
// request.
func (s *Server) maxCiphertextBytes() int64 {
	polyBytes := int64(8) + int64(s.params.MaxLevel()+1)*int64(s.params.N())*8
	return 64 + 2*polyBytes
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, min(s.maxCiphertextBytes(), s.opts.MaxBodyBytes)))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "ciphertext exceeds the %d-byte body limit", mbe.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "reading ciphertext: %v", err)
		return
	}
	ct := new(ckks.Ciphertext)
	if err := ct.UnmarshalBinary(data); err != nil {
		writeError(w, http.StatusBadRequest, "ciphertext: %v", err)
		return
	}
	if n := len(ct.C0.Coeffs[0]); n != s.params.N() {
		writeError(w, http.StatusBadRequest, "ciphertext ring degree %d, parameters use %d", n, s.params.N())
		return
	}
	if ct.Level > s.params.MaxLevel() {
		writeError(w, http.StatusBadRequest, "ciphertext level %d exceeds max %d", ct.Level, s.params.MaxLevel())
		return
	}
	if ct.Level < s.info.Levels {
		writeError(w, http.StatusBadRequest, "ciphertext level %d below the %d the model consumes", ct.Level, s.info.Levels)
		return
	}

	sess.touch()
	job := &inferJob{ct: ct, done: make(chan inferResult, 1)}
	select {
	case sess.jobs <- job:
	case <-sess.done:
		writeError(w, http.StatusGone, "session closed")
		return
	case <-s.closed:
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	default:
		writeError(w, http.StatusTooManyRequests, "session queue full")
		return
	}
	s.sched.notify(sess)

	respond := func(res inferResult) {
		switch {
		case errors.Is(res.err, errSessionClosed):
			writeError(w, http.StatusGone, "session closed")
			return
		case errors.Is(res.err, errShuttingDown):
			writeError(w, http.StatusServiceUnavailable, "server shutting down")
			return
		case res.err != nil:
			writeError(w, http.StatusUnprocessableEntity, "inference: %v", res.err)
			return
		}
		out, err := res.ct.MarshalBinary()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "encoding result: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(out)
	}
	// A completed result outranks a concurrently-closing session/server:
	// the select below picks randomly among ready cases, so each shutdown
	// branch re-drains job.done before discarding paid-for work.
	select {
	case res := <-job.done:
		respond(res)
	case <-sess.done:
		select {
		case res := <-job.done:
			respond(res)
		default:
			writeError(w, http.StatusGone, "session closed")
		}
	case <-s.closed:
		select {
		case res := <-job.done:
			respond(res)
		default:
			writeError(w, http.StatusServiceUnavailable, "server shutting down")
		}
	case <-r.Context().Done():
		// Client gone; the worker's send still lands in the buffered done
		// channel and is dropped with the job.
	}
}
