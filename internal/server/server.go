package server

import (
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/efficientfhe/smartpaf/internal/ckks"
	"github.com/efficientfhe/smartpaf/internal/henn"
	"github.com/efficientfhe/smartpaf/internal/registry"
	"github.com/efficientfhe/smartpaf/internal/telemetry"
)

// maxSessionWeight caps the QoS weight a single session can carry, so a
// misconfigured Weight hook cannot hand one session an effectively unbounded
// quantum.
const maxSessionWeight = 64

// Options tune the serving front end. The zero value is usable.
type Options struct {
	// MaxBatch is the fair-scheduling quantum: how many queued jobs one
	// scheduler turn claims from a weight-1 session before the next session
	// is served (a weight-w session claims up to w×MaxBatch). Default 16.
	MaxBatch int
	// Workers is the server-wide inference worker budget shared by every
	// session of every model, following the repo-wide convention: 0 or 1
	// runs one worker, negative uses all cores. The number of concurrently
	// executing inference units is bounded by this one budget no matter how
	// many sessions or models are active (serving deployments want -1;
	// cmd/hennserve defaults to it). Within a unit, the ring substrate's
	// limb fan-out still follows the process-wide GOMAXPROCS/
	// ring.SetParallelism setting — Workers counts units, not goroutines.
	Workers int
	// BatchWindow is how long a newly active session waits before its first
	// scheduler turn, letting a quantum fill (a full quantum, session
	// deletion, or shutdown cuts the wait short). 0 dispatches immediately.
	// Only the fair policy windows; PolicyFIFO dispatches in arrival order
	// regardless. Default 0.
	BatchWindow time.Duration
	// Policy picks the cross-session scheduling policy: PolicyFair
	// (default) or PolicyFIFO (the no-fairness baseline).
	Policy string
	// Weight assigns a QoS weight to a newly registered session, called
	// with the registration request so deployments can key off a header or
	// client identity. The fair policy's quantum scales with the weight: a
	// weight-w session claims up to w×MaxBatch jobs per turn, so paying
	// tiers drain backlogs proportionally faster while round-robin turns
	// still guarantee every weight-1 session a quantum per cycle (no
	// starvation). Results are clamped to [1, 64]; nil gives every session
	// weight 1. PolicyFIFO ignores weights.
	Weight func(r *http.Request) int
	// MaxSessions caps live sessions across all models. Default 64.
	MaxSessions int
	// MaxSessionsPerModel caps live sessions bound to any one model name
	// (all of its versions together, so a mid-rollout model cannot double
	// its share), stopping one popular model from monopolizing the global
	// session table. 0 disables the per-model cap.
	MaxSessionsPerModel int
	// StateDir persists every deployed bundle as <name>@<version>.hemodel
	// so a restarted server reloads its catalog: hot deploys and supersedes
	// are saved on publish, retired and superseded versions are removed.
	// Corrupt or truncated files in the directory are skipped with a logged
	// warning, never a failed startup. Empty disables persistence.
	StateDir string
	// AdminToken guards the admin mutations (POST /v1/models and DELETE
	// /v1/models/{name}): when set, requests must carry
	// "Authorization: Bearer <token>" — 401 without a token, 403 with a
	// wrong one. Empty leaves the admin endpoints open (trusted network).
	AdminToken string
	// SessionTTL evicts sessions idle for longer than this, so abandoned
	// registrations cannot pin key material (or lock out new sessions)
	// forever. Negative disables eviction. Default 30 minutes.
	SessionTTL time.Duration
	// MaxBodyBytes caps request bodies (rotation-key sets and model-deploy
	// bundles dominate). Default 1 GiB.
	MaxBodyBytes int64
	// QueueDepth is the per-session request queue. Default 1024.
	QueueDepth int
	// AccessLog, when set, receives one structured record per HTTP request
	// (method, path, session, model, status, bytes, duration, trace id).
	// Nil disables access logging; cmd/hennserve wires -log-requests here.
	AccessLog *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 16
	}
	if o.Policy == "" {
		o.Policy = PolicyFair
	}
	if o.MaxSessions <= 0 {
		o.MaxSessions = 64
	}
	if o.SessionTTL == 0 {
		o.SessionTTL = 30 * time.Minute
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 30
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	return o
}

// Server multiplexes encrypted-inference sessions onto the deployed models
// of a registry. The henn/ckks stack is safe for concurrent use, so every
// session of a model shares that model's compiled parameters and encoder;
// each session owns only the evaluator bound to its client's evaluation
// keys. All sessions' jobs — across every model — flow through one scheduler
// and one bounded worker pool (see scheduler.go): the unit of work carries
// its session's context, so a single worker budget serves the whole catalog.
type Server struct {
	reg   *registry.Registry
	opts  Options
	sched *scheduler

	// Telemetry plane (see telemetry.go): built once in New, immutable
	// after. The scheduler and handlers record into these lock-cheaply;
	// GET /metrics renders the registry, GET /v1/traces reads the ring.
	start      time.Time
	metrics    *telemetry.Registry
	traces     *telemetry.TraceRing
	httpReqs   *telemetry.CounterVec
	httpLat    *telemetry.HistogramVec
	unitLat    *telemetry.HistogramVec
	queueWait  *telemetry.HistogramVec
	poolWait   *telemetry.Histogram
	poolRun    *telemetry.Histogram
	compileLat *telemetry.Histogram
	stageLat   *telemetry.HistogramVec

	mu sync.RWMutex
	// sessions is the live session table, guarded by mu. closed is not:
	// it is created once and only ever closed under the lock, while
	// readers select on it lock-free.
	sessions map[string]*session
	closed   chan struct{}
	wg       sync.WaitGroup
}

type session struct {
	id string
	// dep is the model stack this session is bound to; the session holds
	// one registry reference from registration until removal.
	dep *registry.Deployed
	// ctx carries the evaluator bound to this client's evaluation keys.
	ctx *henn.Context
	// weight scales the fair policy's quantum for this session.
	weight int
	jobs   chan *inferJob
	// done is closed when the session is deleted, evicted, or its model is
	// retired; the scheduler fails its queued jobs and waiting handlers
	// turn it into a 410.
	done chan struct{}
	// lastUsed is the unix-nano timestamp of the latest request, read by
	// the TTL janitor.
	lastUsed atomic.Int64
	// claimed counts jobs the dispatcher pulled off the queue but has not
	// yet handed to the worker pool (the zero-depth Submit rendezvous can
	// hold a claimed quantum for a while); Stats adds it to the backlog.
	claimed atomic.Int64

	// unitLat and queueWait are this session's model-labeled latency
	// series, resolved once at registration so the dispatch hot path
	// records without a label lookup. Immutable after registration.
	unitLat   *telemetry.Histogram
	queueWait *telemetry.Histogram

	// Scheduler turn state, owned by the dispatcher: whether the session
	// sits in the fair ring, is being served a turn, and when its batch
	// window expires.
	//hennlint:guarded-by(scheduler.mu)
	inRing      bool
	dispatching bool      //hennlint:guarded-by(scheduler.mu)
	windowAt    time.Time //hennlint:guarded-by(scheduler.mu)
}

func (sess *session) touch() { sess.lastUsed.Store(time.Now().UnixNano()) }

type inferJob struct {
	ct   *ckks.Ciphertext
	done chan inferResult
	// enqueuedAt timestamps the accept, for queue-wait accounting; trace is
	// the request's trace, threaded through the scheduler into the unit
	// (nil on untraced submissions).
	enqueuedAt time.Time
	trace      *telemetry.Trace
}

type inferResult struct {
	ct  *ckks.Ciphertext
	err error
}

// New builds a server and deploys the given models into its registry. A
// server may start with no models and have them hot-deployed over HTTP.
// With Options.StateDir set, bundles persisted by an earlier run are
// reloaded first and an initial model whose name is already live in the
// reloaded catalog is skipped — restarting with the same flags is
// idempotent, the durable catalog wins.
func New(opts Options, models ...*registry.Model) (*Server, error) {
	opts = opts.withDefaults()
	if opts.Policy != PolicyFair && opts.Policy != PolicyFIFO {
		return nil, fmt.Errorf("server: unknown scheduling policy %q (want %q or %q)", opts.Policy, PolicyFair, PolicyFIFO)
	}
	s := &Server{
		reg:      registry.New(),
		opts:     opts,
		sessions: map[string]*session{},
		closed:   make(chan struct{}),
	}
	s.initTelemetry()
	if opts.StateDir != "" {
		store, err := registry.OpenStore(opts.StateDir)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		for _, w := range s.reg.UseStore(store) {
			log.Printf("server: state: %v", w)
		}
	}
	for _, m := range models {
		d, err := s.reg.Deploy(m)
		if err != nil {
			// With a state dir, the durable catalog wins: a startup model
			// whose name it already holds is skipped, so restarting with
			// the same flags is idempotent. Without one, a duplicate
			// startup model is an operator error and fails loudly.
			if opts.StateDir != "" && errors.Is(err, registry.ErrExists) {
				continue
			}
			return nil, fmt.Errorf("server: %w", err)
		}
		s.compileLat.Record(d.CompileTime())
	}
	s.sched = newScheduler(s)
	s.installObservers()
	s.wg.Add(1)
	go s.sched.run()
	if s.opts.SessionTTL > 0 {
		s.wg.Add(1)
		go s.janitor()
	}
	return s, nil
}

// Registry exposes the model catalog (deploy/retire programmatically, read
// counters). cmd/hennserve and tests use it; HTTP clients go through the
// /v1/models endpoints.
func (s *Server) Registry() *registry.Registry { return s.reg }

// janitor evicts sessions whose last request is older than SessionTTL.
func (s *Server) janitor() {
	defer s.wg.Done()
	tick := time.NewTicker(s.opts.SessionTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-tick.C:
		}
		cutoff := time.Now().Add(-s.opts.SessionTTL).UnixNano()
		var evicted []*session
		s.mu.Lock()
		for id, sess := range s.sessions {
			if sess.lastUsed.Load() < cutoff {
				delete(s.sessions, id)
				close(sess.done)
				evicted = append(evicted, sess)
			}
		}
		s.mu.Unlock()
		for _, sess := range evicted {
			s.sched.sessionClosed(sess)
			sess.dep.Release()
		}
	}
}

// removeSession deletes a session by id, reporting whether it existed.
func (s *Server) removeSession(id string) bool {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
		close(sess.done)
	}
	s.mu.Unlock()
	if ok {
		s.sched.sessionClosed(sess)
		sess.dep.Release()
	}
	return ok
}

// retireModel removes model versions from the catalog ("name" retires every
// version, "name@N" just one) and closes every session bound to them: queued
// jobs fail 410, in-flight units finish, and each stack is freed once its
// last reference drains.
func (s *Server) retireModel(ref string) error {
	deps, err := s.reg.Retire(ref)
	if err != nil {
		return err
	}
	retired := make(map[*registry.Deployed]bool, len(deps))
	for _, d := range deps {
		retired[d] = true
	}
	var bound []*session
	s.mu.Lock()
	for id, sess := range s.sessions {
		if retired[sess.dep] {
			delete(s.sessions, id)
			close(sess.done)
			bound = append(bound, sess)
		}
	}
	s.mu.Unlock()
	for _, sess := range bound {
		s.sched.sessionClosed(sess)
		sess.dep.Release()
	}
	return nil
}

// Close stops the scheduler, fails queued requests and drains the worker
// pool.
func (s *Server) Close() {
	s.mu.Lock()
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.sched.pool.Close()
}

// Handler returns the HTTP API, wrapped in the telemetry middleware (see
// instrument in telemetry.go): every route is counted and timed, and infer
// requests are traced end to end.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/model", s.handleModel)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("GET /v1/models/{name}", s.handleModelNamed)
	mux.HandleFunc("POST /v1/models", s.admin(s.handleDeploy))
	mux.HandleFunc("DELETE /v1/models/{name}", s.admin(s.handleRetire))
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	mux.HandleFunc("GET /v1/traces/{id}", s.handleTraceByID)
	mux.HandleFunc("POST /v1/sessions", s.handleRegister)
	mux.HandleFunc(routeInfer, s.handleInfer)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.Handle("GET /metrics", s.MetricsHandler())
	return s.instrument(mux)
}

// admin guards a mutation handler with the bearer token when Options.
// AdminToken is set: 401 (with a WWW-Authenticate challenge) when the
// request carries no bearer token, 403 when it carries the wrong one. The
// comparison is constant-time so the token cannot be guessed byte by byte.
func (s *Server) admin(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.opts.AdminToken != "" {
			tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
			if !ok || tok == "" {
				w.Header().Set("WWW-Authenticate", `Bearer realm="hennserve admin"`)
				writeError(w, http.StatusUnauthorized, "admin endpoint: bearer token required")
				return
			}
			if subtle.ConstantTimeCompare([]byte(tok), []byte(s.opts.AdminToken)) != 1 {
				writeError(w, http.StatusForbidden, "admin endpoint: invalid token")
				return
			}
		}
		next(w, r)
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.removeSession(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	//hennlint:err-ok the status line is already on the wire; an Encode failure here means the client hung up and there is nothing left to signal
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// live returns the catalog without draining versions — what a new session
// can still bind to.
func (s *Server) live() []*registry.Deployed {
	list := s.reg.List()
	out := list[:0]
	for _, d := range list {
		if !d.Draining() {
			out = append(out, d)
		}
	}
	return out
}

// handleModel is the single-model convenience route: useful while exactly
// one model is live, a pointer to /v1/models otherwise. Draining versions
// do not count — during an upgrade rollout the sole live version still
// resolves here.
func (s *Server) handleModel(w http.ResponseWriter, _ *http.Request) {
	live := s.live()
	switch len(live) {
	case 0:
		writeError(w, http.StatusNotFound, "no models deployed")
	case 1:
		writeJSON(w, http.StatusOK, infoFor(live[0]))
	default:
		writeError(w, http.StatusConflict,
			"%d models deployed; list them at GET /v1/models and name one", len(live))
	}
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	list := s.reg.List()
	infos := make([]ModelInfo, len(list))
	for i, d := range list {
		infos[i] = infoFor(d)
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleModelNamed(w http.ResponseWriter, r *http.Request) {
	d, ok := s.reg.Get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown model %q", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, infoFor(d))
}

// handleDeploy hot-deploys a marshaled registry.Model bundle. With
// ?supersede=true the bundle is published as the next version of its name
// and every live older version drains gracefully: existing sessions keep
// serving the old stack until they disconnect or TTL out, new registrations
// bind the new version.
func (s *Server) handleDeploy(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "model bundle exceeds the %d-byte body limit", mbe.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "reading model bundle: %v", err)
		return
	}
	m := new(registry.Model)
	if err := m.UnmarshalBinary(data); err != nil {
		writeError(w, http.StatusBadRequest, "model bundle: %v", err)
		return
	}
	var d *registry.Deployed
	if r.URL.Query().Get("supersede") == "true" {
		d, _, err = s.reg.Supersede(m)
	} else {
		d, err = s.reg.Deploy(m)
	}
	if err != nil {
		if errors.Is(err, registry.ErrExists) {
			writeError(w, http.StatusConflict, "%v (POST /v1/models?supersede=true to roll the version)", err)
			return
		}
		writeError(w, http.StatusBadRequest, "deploy: %v", err)
		return
	}
	s.compileLat.Record(d.CompileTime())
	writeJSON(w, http.StatusCreated, infoFor(d))
}

func (s *Server) handleRetire(w http.ResponseWriter, r *http.Request) {
	if err := s.retireModel(r.PathValue("name")); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

//hennlint:read-path
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// registerRequest carries the public key material of a new session over the
// internal/ckks binary wire format, plus the name of the model to bind to.
type registerRequest struct {
	Model        string `json:"model"`
	Params       []byte `json:"params"`
	PublicKey    []byte `json:"publicKey"`
	RelinKey     []byte `json:"relinKey"`
	RotationKeys []byte `json:"rotationKeys"`
}

type registerResponse struct {
	SessionID string `json:"sessionID"`
	Model     string `json:"model"`
	Weight    int    `json:"weight"`
}

// resolveModel picks the deployment a registration binds to. Names may be
// versioned ("alpha@2") or bare ("alpha" — the newest live version); an
// empty name is allowed only while exactly one model is live.
func (s *Server) resolveModel(name string) (*registry.Deployed, int, string) {
	if name == "" {
		live := s.live()
		switch len(live) {
		case 0:
			return nil, http.StatusNotFound, "no models deployed"
		case 1:
			return live[0], 0, ""
		default:
			return nil, http.StatusBadRequest,
				fmt.Sprintf("%d models deployed; name one (GET /v1/models)", len(live))
		}
	}
	d, ok := s.reg.Resolve(name)
	if !ok {
		return nil, http.StatusNotFound, fmt.Sprintf("unknown model %q", name)
	}
	return d, 0, ""
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "registration exceeds the %d-byte body limit", mbe.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "decoding registration: %v", err)
		return
	}
	dep, status, msg := s.resolveModel(req.Model)
	if dep == nil {
		writeError(w, status, "%s", msg)
		return
	}
	params := dep.Params()
	if string(req.Params) != string(dep.ParamBytes()) {
		writeError(w, http.StatusBadRequest,
			"session parameters do not match model %q's prescribed literal; fetch GET /v1/models/%s",
			dep.Model().Name, dep.Model().Name)
		return
	}
	// The public key is part of the registration payload (future server-side
	// uses like result re-randomization encrypt under it); today it is only
	// validated, not retained.
	pk := new(ckks.PublicKey)
	if err := pk.UnmarshalBinary(req.PublicKey); err != nil {
		writeError(w, http.StatusBadRequest, "public key: %v", err)
		return
	}
	if pk.B.Level() != params.MaxLevel() || len(pk.B.Coeffs[0]) != params.N() {
		writeError(w, http.StatusBadRequest, "public key was built for different parameters")
		return
	}
	rlk := new(ckks.RelinearizationKey)
	if err := rlk.UnmarshalBinary(req.RelinKey); err != nil {
		writeError(w, http.StatusBadRequest, "relinearization key: %v", err)
		return
	}
	if err := checkDigits(params, rlk.Digits); err != nil {
		writeError(w, http.StatusBadRequest, "relinearization key: %v", err)
		return
	}
	rks := new(ckks.RotationKeySet)
	if err := rks.UnmarshalBinary(req.RotationKeys); err != nil {
		writeError(w, http.StatusBadRequest, "rotation keys: %v", err)
		return
	}
	// The server prescribes the rotation-step set exactly: every uploaded
	// key must be one the model uses (a session may not pin arbitrary extra
	// key material), and every key that could reach the key-switch loop
	// must be shaped for the model's parameters, or a hostile upload
	// becomes a panic at inference time instead of a 400 here.
	required := map[int]bool{}
	for _, step := range dep.Rotations() {
		required[step] = true
	}
	have := map[int]bool{}
	for _, step := range rks.Steps() {
		if !required[step] {
			writeError(w, http.StatusBadRequest, "rotation key for step %d is not in the model's required set", step)
			return
		}
		key, _ := rks.Key(step)
		if err := checkDigits(params, key.Digits); err != nil {
			writeError(w, http.StatusBadRequest, "rotation key for step %d: %v", step, err)
			return
		}
		have[step] = true
	}
	if rks.HasConjugation() {
		writeError(w, http.StatusBadRequest, "the model does not use conjugation; drop the conjugation key")
		return
	}
	for _, step := range dep.Rotations() {
		if !have[step] {
			writeError(w, http.StatusBadRequest, "rotation keys missing required step %d", step)
			return
		}
	}

	weight := 1
	if s.opts.Weight != nil {
		weight = min(max(s.opts.Weight(r), 1), maxSessionWeight)
	}
	// Bind after all validation: a racing retire or supersede fails here
	// with a clean 410 instead of binding a session to a stack being torn
	// down (or drained behind a newer version).
	if err := dep.Bind(); err != nil {
		if errors.Is(err, registry.ErrDraining) {
			writeError(w, http.StatusGone,
				"model version %s is draining; register against %q for the newest version",
				dep.Ref(), dep.Name())
			return
		}
		writeError(w, http.StatusGone, "model %q retired", dep.Model().Name)
		return
	}
	eval := ckks.NewEvaluator(params, rlk).WithRotationKeys(rks)
	sess := &session{
		dep:       dep,
		ctx:       henn.NewContext(params, dep.Encoder(), eval),
		weight:    weight,
		jobs:      make(chan *inferJob, s.opts.QueueDepth),
		done:      make(chan struct{}),
		unitLat:   s.unitLat.With(dep.Ref()),
		queueWait: s.queueWait.With(dep.Ref()),
	}
	sess.touch()
	idBytes := make([]byte, 16)
	if _, err := rand.Read(idBytes); err != nil {
		dep.Release()
		writeError(w, http.StatusInternalServerError, "session id: %v", err)
		return
	}
	sess.id = hex.EncodeToString(idBytes)

	s.mu.Lock()
	select {
	case <-s.closed:
		s.mu.Unlock()
		dep.Release()
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	default:
	}
	if len(s.sessions) >= s.opts.MaxSessions {
		s.mu.Unlock()
		dep.Release()
		writeError(w, http.StatusTooManyRequests, "session limit (%d) reached", s.opts.MaxSessions)
		return
	}
	if s.opts.MaxSessionsPerModel > 0 {
		// The quota spans every version of the name: a model mid-rollout
		// (old sessions draining on vN, new ones binding vN+1) gets one
		// share of the table, not two.
		n := 0
		for _, other := range s.sessions {
			if other.dep.Name() == dep.Name() {
				n++
			}
		}
		if n >= s.opts.MaxSessionsPerModel {
			s.mu.Unlock()
			dep.Release()
			writeError(w, http.StatusTooManyRequests,
				"model %q session limit (%d) reached", dep.Name(), s.opts.MaxSessionsPerModel)
			return
		}
	}
	s.sessions[sess.id] = sess
	s.mu.Unlock()

	// A retire can land between Bind and the insert above: its session
	// sweep snapshots s.sessions and misses this one, which would leave a
	// live session serving a retired model forever. Re-checking after the
	// insert closes the window — either the sweep saw the session (then
	// removeSession finds it already gone), or we tear it down here; the
	// map removal makes the close/release exactly-once either way.
	if dep.Retired() {
		s.removeSession(sess.id)
		writeError(w, http.StatusGone, "model %q retired", dep.Model().Name)
		return
	}

	writeJSON(w, http.StatusOK, registerResponse{SessionID: sess.id, Model: dep.Ref(), Weight: weight})
}

// checkDigits rejects key material that deserialized cleanly but was built
// for different parameters than the model prescribes.
func checkDigits(params *ckks.Parameters, digits []ckks.EvaluationKeyDigit) error {
	if got, want := len(digits), params.MaxLevel()+1; got != want {
		return fmt.Errorf("%d gadget digits, parameters need %d", got, want)
	}
	for i := range digits {
		d := &digits[i]
		if d.BQ.Level() != params.MaxLevel() || d.BP.Level() != 0 {
			return fmt.Errorf("digit %d has %d/%d limbs, want %d/1", i, d.BQ.Level()+1, d.BP.Level()+1, params.MaxLevel()+1)
		}
		if n := len(d.BQ.Coeffs[0]); n != params.N() {
			return fmt.Errorf("digit %d has ring degree %d, parameters use %d", i, n, params.N())
		}
	}
	return nil
}

func (s *Server) lookup(id string) *session {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sessions[id]
}

// maxCiphertextBytes is the exact wire size of a ciphertext under the
// model's parameters (header + two full-chain polys) with slack for the
// poly headers. The infer endpoint caps bodies here rather than at the
// key-upload limit, so a hostile client cannot pin a key-sized buffer per
// request.
func maxCiphertextBytes(params *ckks.Parameters) int64 {
	polyBytes := int64(8) + int64(params.MaxLevel()+1)*int64(params.N())*8
	return 64 + 2*polyBytes
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	params := sess.dep.Params()
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, min(maxCiphertextBytes(params), s.opts.MaxBodyBytes)))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "ciphertext exceeds the %d-byte body limit", mbe.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "reading ciphertext: %v", err)
		return
	}
	ct := new(ckks.Ciphertext)
	if err := ct.UnmarshalBinary(data); err != nil {
		writeError(w, http.StatusBadRequest, "ciphertext: %v", err)
		return
	}
	if n := len(ct.C0.Coeffs[0]); n != params.N() {
		writeError(w, http.StatusBadRequest, "ciphertext ring degree %d, parameters use %d", n, params.N())
		return
	}
	if ct.Level > params.MaxLevel() {
		writeError(w, http.StatusBadRequest, "ciphertext level %d exceeds max %d", ct.Level, params.MaxLevel())
		return
	}
	if ct.Level < sess.dep.Levels() {
		writeError(w, http.StatusBadRequest, "ciphertext level %d below the %d the model consumes", ct.Level, sess.dep.Levels())
		return
	}

	sess.touch()
	job := &inferJob{
		ct:         ct,
		done:       make(chan inferResult, 1),
		enqueuedAt: time.Now(),
		trace:      telemetry.FromContext(r.Context()),
	}
	select {
	case sess.jobs <- job:
	case <-sess.done:
		writeError(w, http.StatusGone, "session closed")
		return
	case <-s.closed:
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	default:
		writeError(w, http.StatusTooManyRequests, "session queue full")
		return
	}
	s.sched.notify(sess)

	respond := func(res inferResult) {
		switch {
		case errors.Is(res.err, errSessionClosed):
			writeError(w, http.StatusGone, "session closed")
			return
		case errors.Is(res.err, errShuttingDown):
			writeError(w, http.StatusServiceUnavailable, "server shutting down")
			return
		case res.err != nil:
			writeError(w, http.StatusUnprocessableEntity, "inference: %v", res.err)
			return
		}
		out, err := res.ct.MarshalBinary()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "encoding result: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(out)
	}
	// A completed result outranks a concurrently-closing session/server:
	// the select below picks randomly among ready cases, so each shutdown
	// branch re-drains job.done before discarding paid-for work.
	select {
	case res := <-job.done:
		respond(res)
	case <-sess.done:
		select {
		case res := <-job.done:
			respond(res)
		default:
			writeError(w, http.StatusGone, "session closed")
		}
	case <-s.closed:
		select {
		case res := <-job.done:
			respond(res)
		default:
			writeError(w, http.StatusServiceUnavailable, "server shutting down")
		}
	case <-r.Context().Done():
		// Client gone; the worker's send still lands in the buffered done
		// channel and is dropped with the job.
	}
}
