package server

import (
	"context"
	"encoding/json"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"github.com/efficientfhe/smartpaf/internal/registry"
	"github.com/efficientfhe/smartpaf/internal/telemetry"
)

// inferOnce registers a session against the test server and runs one traced
// inference, returning the client, session and trace id.
func inferOnce(t *testing.T, ts *httptest.Server, model *registry.Model) (*Client, *Session, string) {
	t.Helper()
	ctx := context.Background()
	c := NewClient(ts.URL, nil)
	sess, err := c.NewSession(ctx, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, model.InputDim)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	vec := make([]float64, sess.params.Slots())
	copy(vec, x)
	pt, err := sess.enc.EncodeReals(vec, sess.params.MaxLevel(), sess.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	_, traceID, err := sess.InferCiphertextTraced(ctx, sess.encr.Encrypt(pt))
	if err != nil {
		t.Fatal(err)
	}
	if traceID == "" {
		t.Fatal("infer response carried no X-Henn-Trace header")
	}
	return c, sess, traceID
}

// metricLine is the shape every non-comment Prometheus text line must take.
// The label block is matched greedily: label values may contain spaces and
// braces (route patterns like "POST /v1/sessions/{id}/infer").
var metricLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? \S+$`)

// TestMetricsEndpoint: after one inference, GET /metrics serves parseable
// Prometheus text exposition with the per-model histograms and runtime
// gauges the issue promises.
func TestMetricsEndpoint(t *testing.T) {
	model, _, ts := newTestServer(t)
	c, _, _ := inferOnce(t, ts, model)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); !strings.HasPrefix(got, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", got)
	}
	body, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Every line is either a HELP/TYPE comment or name{labels} value.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !metricLine.MatchString(line) {
			t.Errorf("unparseable exposition line: %q", line)
		}
	}

	ref := "demo-mlp-16x8x4@1"
	for _, want := range []string{
		`henn_unit_seconds_bucket{model="` + ref + `",le="+Inf"} 1`,
		`henn_unit_seconds_count{model="` + ref + `"} 1`,
		`henn_queue_wait_seconds_count{model="` + ref + `"} 1`,
		`henn_http_requests_total{route="POST /v1/sessions/{id}/infer",code="200"} 1`,
		"# TYPE henn_unit_seconds histogram",
		"# TYPE henn_units_run_total counter",
		"henn_units_run_total 1",
		"henn_uptime_seconds ",
		"henn_goroutines ",
		"henn_heap_bytes ",
		"henn_ckks_stage_seconds_count{stage=",
		"henn_pool_wait_seconds_count 1",
		"henn_model_compile_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestInferTraceBreakdown: the trace born at ingress must show the request's
// journey — queue wait, dispatch, unit — plus at least three CKKS stages
// whose total accounts for the bulk of (and never exceeds) the unit span.
func TestInferTraceBreakdown(t *testing.T) {
	model, _, ts := newTestServer(t)
	c, _, traceID := inferOnce(t, ts, model)
	ctx := context.Background()

	snap, err := c.Trace(ctx, traceID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID != traceID {
		t.Fatalf("trace id = %q, want %q", snap.ID, traceID)
	}
	spans := map[string]telemetry.SpanSnapshot{}
	for _, sp := range snap.Spans {
		spans[sp.Name] = sp
	}
	for _, want := range []string{"request", "queue_wait", "dispatch", "unit"} {
		if _, ok := spans[want]; !ok {
			t.Fatalf("trace missing span %q; got %+v", want, snap.Spans)
		}
	}
	unit := spans["unit"]
	if unit.DurUs > spans["request"].DurUs {
		t.Errorf("unit span %dµs exceeds request span %dµs", unit.DurUs, spans["request"].DurUs)
	}
	if len(snap.Stages) < 3 {
		t.Fatalf("trace has %d CKKS stages, want >= 3: %+v", len(snap.Stages), snap.Stages)
	}
	var stageTotalUs int64
	for _, st := range snap.Stages {
		stageTotalUs += st.TotalUs
	}
	if stageTotalUs > unit.DurUs {
		t.Errorf("stage total %dµs exceeds unit span %dµs", stageTotalUs, unit.DurUs)
	}
	if stageTotalUs*2 < unit.DurUs {
		t.Errorf("stage total %dµs covers under half of unit span %dµs — instrumentation gap", stageTotalUs, unit.DurUs)
	}

	// The ring listing serves the same trace, newest first.
	snaps, err := c.Traces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 || snaps[0].ID != traceID {
		t.Errorf("trace listing does not lead with %q: %+v", traceID, snaps)
	}
}

// TestTraceNotFound: an unknown id is a 404, not an empty snapshot.
func TestTraceNotFound(t *testing.T) {
	_, _, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/traces/deadbeefdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// TestStatsRuntimeAndQuantiles: /v1/stats now reports process runtime fields
// and per-model latency quantiles, and the client round-trips them.
func TestStatsRuntimeAndQuantiles(t *testing.T) {
	model, _, ts := newTestServer(t)
	c, _, _ := inferOnce(t, ts, model)

	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %g, want > 0", st.UptimeSeconds)
	}
	if st.Goroutines <= 0 {
		t.Errorf("goroutines = %d, want > 0", st.Goroutines)
	}
	if st.HeapBytes == 0 {
		t.Error("heap_bytes = 0, want > 0")
	}
	if len(st.Models) != 1 {
		t.Fatalf("models = %+v, want one", st.Models)
	}
	ms := st.Models[0]
	if ms.UnitP50Ms <= 0 || ms.UnitP99Ms < ms.UnitP50Ms {
		t.Errorf("unit quantiles p50=%g p99=%g, want 0 < p50 <= p99", ms.UnitP50Ms, ms.UnitP99Ms)
	}
	if ms.UnitP95Ms < ms.UnitP50Ms {
		t.Errorf("unit p95 %g below p50 %g", ms.UnitP95Ms, ms.UnitP50Ms)
	}
	if ms.QueueP50Ms < 0 || ms.QueueP99Ms < ms.QueueP50Ms {
		t.Errorf("queue quantiles p50=%g p99=%g out of order", ms.QueueP50Ms, ms.QueueP99Ms)
	}

	// The wire names are the issue-specified snake_case fields.
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"uptime_seconds"`, `"goroutines"`, `"heap_bytes"`, `"unitP50Ms"`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("stats JSON missing %s: %s", key, raw)
		}
	}
}

// syncBuffer serializes concurrent handler writes to one log buffer.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder //hennlint:guarded-by(mu)
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) String() string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.String()
}

// TestAccessLog: with Options.AccessLog set, every request emits one
// structured record carrying the fields the issue lists; the infer record is
// attributed to its session, model and trace.
func TestAccessLog(t *testing.T) {
	model, err := registry.DemoModel(11, testLogN)
	if err != nil {
		t.Fatal(err)
	}
	buf := new(syncBuffer)
	srv, err := New(Options{
		Workers:   -1,
		AccessLog: slog.New(slog.NewJSONHandler(buf, nil)),
	}, model)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	_, sess, traceID := inferOnce(t, ts, model)

	type record struct {
		Msg     string `json:"msg"`
		Method  string `json:"method"`
		Path    string `json:"path"`
		Session string `json:"session"`
		Model   string `json:"model"`
		Status  int    `json:"status"`
		Bytes   int64  `json:"bytes"`
		Trace   string `json:"trace"`
	}
	var infer *record
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	for _, line := range lines {
		var rec record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable access-log line %q: %v", line, err)
		}
		if rec.Msg != "request" {
			t.Errorf("msg = %q, want \"request\"", rec.Msg)
		}
		if strings.HasSuffix(rec.Path, "/infer") {
			infer = &rec
		}
	}
	if len(lines) < 3 { // model fetch, registration, infer at minimum
		t.Fatalf("access log has %d records, want one per request:\n%s", len(lines), buf.String())
	}
	if infer == nil {
		t.Fatalf("no infer record in access log:\n%s", buf.String())
	}
	if infer.Method != http.MethodPost || infer.Status != http.StatusOK {
		t.Errorf("infer record %+v, want POST / 200", infer)
	}
	if infer.Session != sess.ID() || infer.Model != "demo-mlp-16x8x4@1" {
		t.Errorf("infer attribution session=%q model=%q, want %q / demo-mlp-16x8x4@1", infer.Session, infer.Model, sess.ID())
	}
	if infer.Trace != traceID {
		t.Errorf("infer record trace %q, want %q", infer.Trace, traceID)
	}
	if infer.Bytes == 0 {
		t.Error("infer record reports zero response bytes")
	}
}
