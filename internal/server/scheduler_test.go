package server

import (
	"bytes"
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/efficientfhe/smartpaf/internal/ckks"
	"github.com/efficientfhe/smartpaf/internal/registry"
)

// newSchedServer builds a server with explicit scheduler options.
func newSchedServer(t testing.TB, opts Options) (*registry.Model, *Server, *httptest.Server) {
	t.Helper()
	model, err := registry.DemoModel(11, testLogN)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(opts, model)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return model, srv, ts
}

// pollStats waits until cond holds on the server's stats (bounded).
func pollStats(t *testing.T, srv *Server, cond func(Stats) bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond(srv.Stats()) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s (stats %+v)", what, srv.Stats())
}

// TestMultiSessionSharedBudget is the tentpole's concurrency test: K
// sessions flooded unevenly through one scheduler must all complete with
// correct per-session results (each session has its own keys — a crossed
// wire would decrypt to garbage), and observed parallelism must stay within
// the one shared worker budget.
func TestMultiSessionSharedBudget(t *testing.T) {
	const budget = 2
	model, srv, ts := newSchedServer(t, Options{MaxBatch: 4, Workers: budget, QueueDepth: 64})
	ctx := context.Background()

	const sessions = 4
	loads := [sessions]int{8, 2, 2, 2} // session 0 floods
	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	for si := 0; si < sessions; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			sess, err := NewClient(ts.URL, nil).NewSession(ctx, int64(1000+si))
			if err != nil {
				errCh <- err
				return
			}
			var inner sync.WaitGroup
			for r := 0; r < loads[si]; r++ {
				inner.Add(1)
				go func(r int) {
					defer inner.Done()
					rng := rand.New(rand.NewSource(int64(si*100 + r)))
					x := make([]float64, model.InputDim)
					for i := range x {
						x[i] = rng.Float64()*2 - 1
					}
					got, err := sess.Infer(ctx, x)
					if err != nil {
						errCh <- err
						return
					}
					want := model.MLP.InferPlain(x)[:model.OutputDim]
					for i := range want {
						if d := got[i] - want[i]; d > 1e-3 || d < -1e-3 {
							t.Errorf("session %d req %d logit %d: %g vs %g", si, r, i, got[i], want[i])
							return
						}
					}
				}(r)
			}
			inner.Wait()
		}(si)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Workers != budget {
		t.Fatalf("resolved budget %d, want %d", st.Workers, budget)
	}
	if st.PeakInFlight > budget {
		t.Fatalf("peak parallelism %d exceeded the %d-worker budget", st.PeakInFlight, budget)
	}
	total := int64(0)
	for _, l := range loads {
		total += int64(l)
	}
	if st.UnitsRun != total {
		t.Fatalf("ran %d units, want %d", st.UnitsRun, total)
	}
	if st.Backlog != 0 {
		t.Fatalf("backlog %d after completion", st.Backlog)
	}
}

// floodThenVictim queues a burst on session A, then (once the backlog is
// deep) one request on session B, and returns B's completion time relative
// to A's last completion (negative: B finished first). Workers=1 makes unit
// execution strictly sequential, so the sign reflects dispatch order, not
// timing luck.
func floodThenVictim(t *testing.T, policy string) time.Duration {
	t.Helper()
	model, srv, ts := newSchedServer(t, Options{MaxBatch: 2, Workers: 1, Policy: policy, QueueDepth: 64})
	ctx := context.Background()
	a, err := NewClient(ts.URL, nil).NewSession(ctx, 21)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewClient(ts.URL, nil).NewSession(ctx, 22)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, model.InputDim)
	for i := range x {
		x[i] = float64(i%5)/5 - 0.4
	}
	// Deep enough that half the flood is still queued when the victim's
	// request (poll round-trip + client-side encryption) lands.
	const flood = 16
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		aLastDone time.Time
	)
	for r := 0; r < flood; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := a.Infer(ctx, x); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			if now := time.Now(); now.After(aLastDone) {
				aLastDone = now
			}
			mu.Unlock()
		}()
	}
	// Wait until a deep backlog is queued behind the single worker (the
	// dispatcher holds a claimed quantum out of the queue, so the visible
	// backlog tops out below the flood size).
	pollStats(t, srv, func(st Stats) bool { return st.Backlog >= flood/2 }, "flood backlog")
	if _, err := b.Infer(ctx, x); err != nil {
		t.Fatal(err)
	}
	bDone := time.Now()
	wg.Wait()
	return bDone.Sub(aLastDone)
}

// The two policy tests compare client-side completion timestamps, which
// carry goroutine-wakeup jitter: the last flood goroutine can record its
// mark tens of microseconds after (or before) the victim's even when the
// server's dispatch order was unambiguous. A genuine policy inversion is
// separated by whole unit executions — many milliseconds with Workers=1 —
// so both tests tolerate jitter up to policyJitter and only fail on a
// margin no scheduling artifact can produce.
const policyJitter = 10 * time.Millisecond

// TestFairPolicyServesVictimEarly: under the fair policy a single request
// from a quiet session overtakes a flooding session's backlog (it waits at
// most one quantum), so it completes well before the flood drains.
func TestFairPolicyServesVictimEarly(t *testing.T) {
	if d := floodThenVictim(t, PolicyFair); d > policyJitter {
		t.Fatalf("victim finished %s after the flood; fair scheduling should serve it first", d)
	}
}

// TestFIFOPolicyStarvesVictim pins the baseline the fair policy exists to
// fix: strict arrival order makes the victim wait out the entire flood.
func TestFIFOPolicyStarvesVictim(t *testing.T) {
	if d := floodThenVictim(t, PolicyFIFO); d < -policyJitter {
		t.Fatalf("victim finished %s before the flood under FIFO; expected to be served last", -d)
	}
}

// TestDeadSessionJobsNeverRun is the batch-window lifecycle regression: a
// session deleted while its jobs wait out BatchWindow must fail those jobs
// immediately — the old per-session batcher lingered the full window and
// then ran paid inference for the dead session.
func TestDeadSessionJobsNeverRun(t *testing.T) {
	model, srv, ts := newSchedServer(t, Options{BatchWindow: time.Minute, Workers: 1})
	ctx := context.Background()
	sess, err := NewClient(ts.URL, nil).NewSession(ctx, 77)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, model.InputDim)
	start := time.Now()
	inferErr := make(chan error, 1)
	go func() {
		_, err := sess.Infer(ctx, x)
		inferErr <- err
	}()
	pollStats(t, srv, func(st Stats) bool { return st.Backlog == 1 }, "queued job")
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-inferErr:
		if err == nil {
			t.Fatal("inference on a deleted session succeeded")
		}
		if !strings.Contains(err.Error(), "session closed") {
			t.Fatalf("want a session-closed failure, got: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("queued job still pending long after session deletion")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("job failed only after %s; must not wait out the batch window", elapsed)
	}
	pollStats(t, srv, func(st Stats) bool { return st.UnitsAborted == 1 }, "aborted unit")
	if st := srv.Stats(); st.UnitsRun != 0 {
		t.Fatalf("ran %d inference units for a dead session", st.UnitsRun)
	}
}

// TestInferLevelBoundary pins the true minimum ciphertext level: exactly
// ModelInfo.Levels succeeds end-to-end (one inference consumes exactly that
// many levels), one below is rejected at the boundary.
func TestInferLevelBoundary(t *testing.T) {
	model, _, ts := newSchedServer(t, Options{})
	ctx := context.Background()
	sess, err := NewClient(ts.URL, nil).NewSession(ctx, 31)
	if err != nil {
		t.Fatal(err)
	}
	info := sess.Model()
	x := make([]float64, info.InputDim)
	for i := range x {
		x[i] = float64(i%3)/3 - 0.3
	}
	want := model.MLP.InferPlain(x)[:info.OutputDim]

	encryptAt := func(level int) *ckks.Ciphertext {
		vec := make([]float64, sess.params.Slots())
		copy(vec, x)
		pt, err := sess.enc.EncodeReals(vec, level, sess.params.DefaultScale())
		if err != nil {
			t.Fatal(err)
		}
		return sess.encr.Encrypt(pt)
	}

	out, err := sess.InferCiphertext(ctx, encryptAt(info.Levels))
	if err != nil {
		t.Fatalf("inference at exactly %d levels must succeed: %v", info.Levels, err)
	}
	got := sess.enc.DecodeReals(sess.decr.Decrypt(out))
	for i := range want {
		if d := got[i] - want[i]; d > 1e-3 || d < -1e-3 {
			t.Fatalf("boundary-level logit %d: %g vs %g", i, got[i], want[i])
		}
	}

	if _, err := sess.InferCiphertext(ctx, encryptAt(info.Levels-1)); err == nil {
		t.Fatalf("inference at %d levels (one below the minimum) must be rejected", info.Levels-1)
	} else if !strings.Contains(err.Error(), "below") {
		t.Fatalf("want a level-boundary rejection, got: %v", err)
	}
}

// TestServerAcceptsMinimumChain: a parameter chain whose MaxLevel equals
// LevelsRequired is viable — clients encrypt at MaxLevel and land exactly
// at level 0 — and server.New must accept it (regression: it demanded one
// spare level and rejected such models).
func TestServerAcceptsMinimumChain(t *testing.T) {
	model, err := registry.DemoModel(11, testLogN)
	if err != nil {
		t.Fatal(err)
	}
	need := model.MLP.LevelsRequired()
	model.Params.LogQ = model.Params.LogQ[:need+1] // MaxLevel == need exactly
	srv, err := New(Options{}, model)
	if err != nil {
		t.Fatalf("minimum viable chain rejected: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()
	ctx := context.Background()
	sess, err := NewClient(ts.URL, nil).NewSession(ctx, 41)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, model.InputDim)
	for i := range x {
		x[i] = float64(i%4)/4 - 0.4
	}
	got, err := sess.Infer(ctx, x)
	if err != nil {
		t.Fatalf("end-to-end inference on the minimum chain: %v", err)
	}
	want := model.MLP.InferPlain(x)[:model.OutputDim]
	for i := range want {
		if d := got[i] - want[i]; d > 1e-3 || d < -1e-3 {
			t.Fatalf("minimum-chain logit %d: %g vs %g", i, got[i], want[i])
		}
	}
}

// TestOversizedBodies413: blowing the body cap is 413 Request Entity Too
// Large on both the infer and register endpoints, not a generic 400.
func TestOversizedBodies413(t *testing.T) {
	_, srv, ts := newSchedServer(t, Options{})
	ctx := context.Background()
	sess, err := NewClient(ts.URL, nil).NewSession(ctx, 61)
	if err != nil {
		t.Fatal(err)
	}
	huge := make([]byte, maxCiphertextBytes(srv.reg.List()[0].Params())+1024)
	resp, err := http.Post(ts.URL+"/v1/sessions/"+sess.ID()+"/infer", "application/octet-stream", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ciphertext: got %s, want 413", resp.Status)
	}

	// Valid JSON that only blows the limit mid-stream, so the 413 cannot be
	// shadowed by a syntax 400.
	_, _, tsSmall := newSchedServer(t, Options{MaxBodyBytes: 1 << 16})
	big := []byte(`{"params":"` + strings.Repeat("A", 1<<17) + `"}`)
	resp, err = http.Post(tsSmall.URL+"/v1/sessions", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized registration: got %s, want 413", resp.Status)
	}
}

// TestUnknownPolicyRejected: Options.Policy is validated at construction.
func TestUnknownPolicyRejected(t *testing.T) {
	model, err := registry.DemoModel(11, testLogN)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Policy: "lifo"}, model); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestSessionDeletedMidBatch: deleting a session after the scheduler has
// already claimed a quantum must stop the remaining claimed jobs from
// running — the dispatcher re-checks liveness before every submit, not
// just once per turn (regression: a dead session's whole claimed batch ran
// as paid inference while Submit blocked on the rendezvous pool).
func TestSessionDeletedMidBatch(t *testing.T) {
	model, err := registry.DemoModel(11, 9) // logN 9: ~100ms units, a wide delete window
	if err != nil {
		t.Fatal(err)
	}
	// The batch window lets the whole burst enqueue before the first turn
	// claims it, so the delete reliably lands mid-quantum: without it, a
	// slow-to-arrive burst can straggle in after the delete (404, nothing
	// claimed, nothing to abort) and the test flakes.
	srv, err := New(Options{MaxBatch: 16, Workers: 1, QueueDepth: 16, BatchWindow: 2 * time.Second}, model)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()
	ctx := context.Background()
	sess, err := NewClient(ts.URL, nil).NewSession(ctx, 87)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, model.InputDim)
	const burst = 8
	var wg sync.WaitGroup
	var closedErrs, lateErrs atomic.Int64
	for r := 0; r < burst; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sess.Infer(ctx, x); err != nil {
				switch {
				case strings.Contains(err.Error(), "session closed"):
					closedErrs.Add(1)
				case strings.Contains(err.Error(), "unknown session"):
					// Sent after the delete removed the session: 404, never
					// enqueued, so it cannot settle as run or aborted.
					lateErrs.Add(1)
				default:
					t.Error(err)
				}
			}
		}()
	}
	// Wait for the full burst to queue (the batch window holds the first
	// turn), then delete as soon as the first unit starts: the rest of the
	// claimed quantum is still queued behind the single worker.
	pollStats(t, srv, func(st Stats) bool { return st.Backlog == burst }, "queued burst")
	pollStats(t, srv, func(st Stats) bool { return st.UnitsRun >= 1 }, "first unit")
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// Handlers answer 410 off sess.done before the dispatcher finishes
	// aborting its claimed batch; wait for every enqueued job to be
	// accounted for (late requests 404ed and never enqueued).
	enqueued := burst - int(lateErrs.Load())
	pollStats(t, srv, func(st Stats) bool { return int(st.UnitsRun+st.UnitsAborted) == enqueued }, "job settlement")
	st := srv.Stats()
	// At most the unit already running plus the one submit in flight may
	// still execute; the rest of the claimed quantum must be aborted.
	if st.UnitsRun >= burst {
		t.Fatalf("all %d units ran for a session deleted mid-batch", st.UnitsRun)
	}
	if st.UnitsAborted == 0 {
		t.Fatal("no claimed job was aborted after the mid-batch delete")
	}
	if closedErrs.Load() == 0 {
		t.Fatal("no request observed the session-closed failure")
	}
}

// TestFIFODeadSessionFailsFast is the FIFO lifecycle regression: under
// PolicyFIFO a deleted session's queued jobs used to fail only when their
// arrival entries reached the head of the queue — a dead session behind a
// flood waited out the whole backlog for its 410. sessionClosed must fail
// them immediately now, well before the flood drains.
func TestFIFODeadSessionFailsFast(t *testing.T) {
	model, err := registry.DemoModel(11, 9) // logN 9: ~100ms units, a deep time backlog
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{Policy: PolicyFIFO, Workers: 1, QueueDepth: 64}, model)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()
	ctx := context.Background()
	flood, err := NewClient(ts.URL, nil).NewSession(ctx, 71)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := NewClient(ts.URL, nil).NewSession(ctx, 72)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, model.InputDim)
	const floodN = 6
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		floodLast time.Time
	)
	for r := 0; r < floodN; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := flood.Infer(ctx, x); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			if now := time.Now(); now.After(floodLast) {
				floodLast = now
			}
			mu.Unlock()
		}()
	}
	// Queue the victim's job behind the standing flood, then kill the
	// session while most of the flood is still pending.
	pollStats(t, srv, func(st Stats) bool { return st.Backlog >= floodN/2 }, "fifo flood backlog")
	victimErr := make(chan error, 1)
	go func() {
		_, err := victim.Infer(ctx, x)
		victimErr <- err
	}()
	// Every enqueued job is either pending (Backlog) or started (UnitsRun),
	// so floodN+1 accounted jobs means the victim's job is queued — only
	// then is the close guaranteed to hit a queued job, not the handler.
	pollStats(t, srv, func(st Stats) bool { return st.Backlog+int(st.UnitsRun) >= floodN+1 }, "victim job queued")
	if err := victim.Close(ctx); err != nil {
		t.Fatal(err)
	}
	var gotErr error
	var failedAt time.Time
	select {
	case gotErr = <-victimErr:
		failedAt = time.Now()
	case <-time.After(15 * time.Second):
		t.Fatal("dead FIFO session's queued job still pending")
	}
	if gotErr == nil || !strings.Contains(gotErr.Error(), "session closed") {
		t.Fatalf("want a session-closed failure, got: %v", gotErr)
	}
	wg.Wait()
	// The 410 must have landed while the flood was still draining — not
	// after the dead session's entry crawled to the head of the backlog.
	mu.Lock()
	defer mu.Unlock()
	if !failedAt.Before(floodLast) {
		t.Fatalf("dead session failed %s after the flood drained; FIFO must fail it immediately",
			failedAt.Sub(floodLast))
	}
}

// TestWeightedSessionFillsQuantum is the weighted-window regression: a
// weight-w session's quantum is w×MaxBatch, but eligibility used to cut the
// batch window short at a 1× backlog — the session dispatched early and
// never filled the quantum it pays for. With the weight-aware threshold the
// whole burst must go out in one scheduler turn.
func TestWeightedSessionFillsQuantum(t *testing.T) {
	model, err := registry.DemoModel(11, testLogN)
	if err != nil {
		t.Fatal(err)
	}
	const window = 3 * time.Second
	srv, err := New(Options{
		MaxBatch:    2,
		Workers:     1,
		QueueDepth:  64,
		BatchWindow: window,
		Weight:      func(*http.Request) int { return 2 }, // quantum 4
	}, model)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()
	ctx := context.Background()
	sess, err := NewClient(ts.URL, nil).NewSession(ctx, 73)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, model.InputDim)
	start := time.Now()
	var wg sync.WaitGroup
	infer := func(n int) {
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := sess.Infer(ctx, x); err != nil {
					t.Error(err)
				}
			}()
		}
	}
	// Two jobs first — a 1× backlog, which must NOT cut the window short —
	// then the rest of the quantum a beat later.
	infer(2)
	pollStats(t, srv, func(st Stats) bool { return st.Backlog == 2 }, "half quantum queued")
	if st := srv.Stats(); st.Quanta != 0 {
		t.Fatalf("scheduler took a turn on a half-filled weighted quantum (%d quanta)", st.Quanta)
	}
	infer(2)
	wg.Wait()
	elapsed := time.Since(start)
	st := srv.Stats()
	if st.Quanta != 1 {
		t.Fatalf("weighted burst took %d scheduler turns, want 1 full-quantum turn", st.Quanta)
	}
	if st.UnitsRun != 4 {
		t.Fatalf("ran %d units, want 4", st.UnitsRun)
	}
	// The full quantum arriving is what ended the wait — not the window.
	if elapsed >= window {
		t.Fatalf("burst took %s; a full quantum must cut the %s window short", elapsed, window)
	}
}

// TestBacklogCountsClaimedJobs is the stats regression: jobs the dispatcher
// has claimed off the session queue but not yet pushed through the
// zero-depth pool rendezvous were invisible to Stats.Backlog, so /v1/stats
// could report 0 with a whole quantum still waiting for workers.
func TestBacklogCountsClaimedJobs(t *testing.T) {
	model, err := registry.DemoModel(11, 9) // logN 9: ~100ms units hold the worker
	if err != nil {
		t.Fatal(err)
	}
	// One worker, a quantum larger than the burst (so only the window — not
	// a full quantum — starts the turn, and the burst reliably queues in
	// whole before the single turn claims it all).
	const burst = 8
	srv, err := New(Options{MaxBatch: 2 * burst, Workers: 1, QueueDepth: 16, BatchWindow: 2 * time.Second}, model)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()
	ctx := context.Background()
	sess, err := NewClient(ts.URL, nil).NewSession(ctx, 74)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, model.InputDim)
	var wg sync.WaitGroup
	for r := 0; r < burst; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sess.Infer(ctx, x); err != nil {
				t.Error(err)
			}
		}()
	}
	pollStats(t, srv, func(st Stats) bool { return st.Backlog == burst }, "queued burst")
	// Once the first unit runs, the dispatcher has claimed the entire
	// quantum: the session queue is empty, yet most of the burst has not
	// reached a worker. The snapshot must still show it pending.
	pollStats(t, srv, func(st Stats) bool { return st.UnitsRun >= 1 }, "first unit")
	st := srv.Stats()
	if int(st.UnitsRun) >= burst {
		t.Skip("units drained before a snapshot could observe the claimed quantum")
	}
	if st.Backlog == 0 {
		t.Fatal("backlog reports 0 while claimed jobs wait for the saturated worker")
	}
	if len(st.Models) != 1 || st.Models[0].Backlog != st.Backlog {
		t.Fatalf("per-model backlog %+v disagrees with total %d", st.Models, st.Backlog)
	}
	wg.Wait()
	pollStats(t, srv, func(st Stats) bool { return st.Backlog == 0 }, "drained backlog")
}
