package server

import (
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/efficientfhe/smartpaf/internal/ckks"
	"github.com/efficientfhe/smartpaf/internal/telemetry"
)

// traceRingDepth bounds how many completed request traces the server retains
// for GET /v1/traces; older traces are evicted FIFO.
const traceRingDepth = 256

// routeInfer is the one route that gets a per-request trace: a trace is
// born at ingress, rides the request context into the scheduler and unit,
// and lands in the ring when the response is written.
const routeInfer = "POST /v1/sessions/{id}/infer"

// initTelemetry builds the server's metric registry, trace ring and the
// instrument series the scheduler and handlers record into. Called once from
// New, before the scheduler starts (gauge closures that read s.sched only
// run at scrape time, after New returns).
func (s *Server) initTelemetry() {
	s.start = time.Now()
	s.metrics = telemetry.NewRegistry()
	s.traces = telemetry.NewTraceRing(traceRingDepth)

	m := s.metrics
	s.httpReqs = m.NewCounterVec("henn_http_requests_total",
		"HTTP requests served, by route pattern and status code.", "route", "code")
	s.httpLat = m.NewHistogramVec("henn_http_request_seconds",
		"HTTP request latency, by route pattern.", "route")
	s.unitLat = m.NewHistogramVec("henn_unit_seconds",
		"Inference unit execution latency, by model version.", "model")
	s.queueWait = m.NewHistogramVec("henn_queue_wait_seconds",
		"Time from request enqueue to dispatcher hand-off, by model version.", "model")
	s.poolWait = m.NewHistogram("henn_pool_wait_seconds",
		"Time a dispatched job waits in the pool rendezvous for a free worker.")
	s.poolRun = m.NewHistogram("henn_pool_task_seconds",
		"Worker-pool task execution time (unit run plus completion bookkeeping).")
	s.compileLat = m.NewHistogram("henn_model_compile_seconds",
		"Deploy-time model compilation latency (parameter compilation and plan warming).")
	s.stageLat = m.NewHistogramVec("henn_ckks_stage_seconds",
		"Time spent inside CKKS primitive stages, summed across all units.", "stage")

	m.NewGaugeFunc("henn_uptime_seconds",
		"Seconds since the server was built.",
		func() float64 { return time.Since(s.start).Seconds() })
	m.NewGaugeFunc("henn_goroutines",
		"Live goroutines in the serving process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	m.NewGaugeFunc("henn_heap_bytes",
		"Heap bytes in use (runtime.MemStats.HeapAlloc).",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	m.NewGaugeFunc("henn_sessions",
		"Live registered sessions.",
		func() float64 {
			s.mu.RLock()
			n := len(s.sessions)
			s.mu.RUnlock()
			return float64(n)
		})
	m.NewGaugeFunc("henn_backlog",
		"Accepted jobs awaiting a worker: queued in sessions plus claimed by the dispatcher.",
		func() float64 {
			n := 0
			s.mu.RLock()
			for _, sess := range s.sessions {
				n += len(sess.jobs) + int(sess.claimed.Load())
			}
			s.mu.RUnlock()
			return float64(n)
		})
	m.NewGaugeFunc("henn_workers",
		"Resolved server-wide inference worker budget.",
		func() float64 { return float64(s.sched.pool.Workers()) })
	m.NewGaugeFunc("henn_peak_in_flight",
		"High-water mark of concurrently executing units.",
		func() float64 { return float64(s.sched.pool.Peak()) })
	m.NewCounterFunc("henn_units_run_total",
		"Inference units handed to the worker pool.",
		func() float64 { return float64(s.sched.unitsRun.Load()) })
	m.NewCounterFunc("henn_units_aborted_total",
		"Jobs failed without running (session deleted, model retired, shutdown).",
		func() float64 { return float64(s.sched.unitsAborted.Load()) })
	m.NewCounterFunc("henn_quanta_total",
		"Scheduler turns that claimed at least one job.",
		func() float64 { return float64(s.sched.quanta.Load()) })
}

// installObservers points the process-global CKKS stage observer and the
// worker pool's task observer at this server's histograms. The CKKS observer
// is process-global: when several servers live in one process (tests), the
// most recently built one owns the stage stream; closing a server does not
// uninstall it, because a later server may have replaced it already.
func (s *Server) installObservers() {
	ckks.SetStageObserver(func(stage string, d time.Duration) {
		s.stageLat.With(stage).Record(d)
	})
	s.sched.pool.SetTaskObserver(func(wait, run time.Duration) {
		s.poolWait.Record(wait)
		s.poolRun.Record(run)
	})
}

// MetricsHandler serves the Prometheus text exposition of the server's
// registry. Handler mounts it at GET /metrics; cmd/hennserve also mounts it
// on the separate -metrics-addr debug mux alongside pprof.
func (s *Server) MetricsHandler() http.Handler { return s.metrics.Handler() }

// handleTraces lists the retained request traces, newest first.
func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	trs := s.traces.Recent(traceRingDepth)
	snaps := make([]telemetry.TraceSnapshot, len(trs))
	for i, tr := range trs {
		snaps[i] = tr.Snapshot()
	}
	writeJSON(w, http.StatusOK, snaps)
}

// handleTraceByID serves one retained trace by the id the X-Henn-Trace
// response header carried.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	tr := s.traces.Get(r.PathValue("id"))
	if tr == nil {
		writeError(w, http.StatusNotFound, "unknown trace %q (the ring retains the last %d)", r.PathValue("id"), traceRingDepth)
		return
	}
	writeJSON(w, http.StatusOK, tr.Snapshot())
}

// statusRecorder captures the status code and body size a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(b)
	sr.bytes += int64(n)
	return n, err
}

// pathSession extracts the session id from a /v1/sessions/{id}/... path and
// resolves the model it is bound to, for access-log attribution. The
// instrument middleware wraps the whole mux, so it cannot use PathValue —
// pattern matching has not happened yet when the trace must be born.
func (s *Server) pathSession(path string) (id, model string) {
	rest, ok := strings.CutPrefix(path, "/v1/sessions/")
	if !ok || rest == "" {
		return "", ""
	}
	id, _, _ = strings.Cut(rest, "/")
	if sess := s.lookup(id); sess != nil {
		return id, sess.dep.Ref()
	}
	return id, ""
}

// instrument wraps the API mux with the telemetry plane: per-route request
// counters and latency histograms, a per-request trace for the infer route
// (id returned in X-Henn-Trace, completed trace retained in the ring), and
// the optional structured access log.
func (s *Server) instrument(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, route := mux.Handler(r)
		if route == "" {
			route = "unmatched"
		}
		rec := &statusRecorder{ResponseWriter: w}
		var tr *telemetry.Trace
		if route == routeInfer {
			tr = telemetry.NewTrace(telemetry.NewTraceID())
			w.Header().Set("X-Henn-Trace", tr.ID())
			r = r.WithContext(telemetry.WithTrace(r.Context(), tr))
		}
		// The timestamp follows trace creation, so every span offset in the
		// snapshot (including the request span's) is non-negative.
		start := time.Now()
		mux.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		dur := time.Since(start)
		s.httpReqs.With(route, strconv.Itoa(rec.status)).Inc()
		s.httpLat.With(route).Record(dur)
		traceID := ""
		if tr != nil {
			traceID = tr.ID()
			tr.AddSpan("request", start, time.Now(),
				[2]string{"route", route}, [2]string{"code", strconv.Itoa(rec.status)})
			s.traces.Put(tr)
		}
		if lg := s.opts.AccessLog; lg != nil {
			id, model := s.pathSession(r.URL.Path)
			lg.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("session", id),
				slog.String("model", model),
				slog.Int("status", rec.status),
				slog.Int64("bytes", rec.bytes),
				slog.Duration("duration", dur),
				slog.String("trace", traceID),
			)
		}
	})
}
