// Package server is the encrypted-inference serving front end: an HTTP
// service that multiplexes many client sessions onto the deployed models of
// an internal/registry catalog — one shared henn/ckks evaluation stack per
// model, one cross-model scheduler and worker budget for the whole server.
//
// The deployment story follows the marshal layer's framing: the client owns
// the secret key and ships only public material — the parameters literal,
// public key, relinearization key and rotation-key set — when registering a
// session, then POSTs marshaled ciphertexts to the inference endpoint and
// decrypts the returned result locally. The server never sees a plaintext.
// Models themselves are artifacts on the same wire: an admin hot-deploys a
// marshaled registry.Model bundle and retires models by name, without
// restarting the server.
//
// Model identity is versioned: every deploy of a name gets the next version
// number (alpha@1, alpha@2, ...), a bare name resolves to the newest live
// version, and a supersede publishes vN+1 while vN drains — existing
// sessions keep serving the old stack until they disconnect, new
// registrations bind the new one. With Options.StateDir set, every deployed
// bundle persists as <name>@<version>.hemodel and the catalog reloads on
// restart. When Options.AdminToken is set, the admin mutations require
// "Authorization: Bearer <token>" (401 without a token, 403 with a wrong
// one).
//
// Protocol (all binary payloads use the internal/ckks and internal/henn wire
// formats; JSON []byte fields are base64 per encoding/json):
//
//	GET  /v1/models
//	    -> [{name, version, draining, inputDim, outputDim, levels, slots,
//	         params, rotations}]
//	    The catalog, live and draining versions alike. Each model
//	    prescribes its parameter literal; prime derivation is
//	    deterministic, so both sides compile identical chains.
//
//	GET  /v1/models/{name}
//	    -> one catalog entry, 404 for unknown names. "alpha@2" pins a
//	    version (still served while draining), bare "alpha" resolves to
//	    the newest live version.
//
//	GET  /v1/model
//	    Single-model convenience: the sole live model, 409 when several
//	    are live (name one instead), 404 when none is.
//
//	POST /v1/models[?supersede=true]          (admin)
//	    raw marshaled registry.Model bundle -> catalog entry (201)
//	    Hot deploy: the model is validated, compiled and warmed, then
//	    serves sessions immediately as the next version of its name.
//	    Deploying over a live name is 409 unless supersede=true, which
//	    publishes vN+1 and gracefully drains vN: old sessions finish on
//	    the old stack, whose caches free on its last reference.
//
//	DELETE /v1/models/{name}                  (admin)
//	    Retire: "name" removes every version, "name@N" one version. The
//	    catalog entry goes at once, bound sessions are closed (queued jobs
//	    fail 410), in-flight units finish, and the stack's caches are
//	    freed once drained. 204 on success.
//
//	POST /v1/sessions
//	    {model, params, publicKey, relinKey, rotationKeys} -> {sessionID, model, weight}
//	    Binds the session to a deployed model; the response model is the
//	    versioned reference ("alpha@2"). model may be a bare or versioned
//	    name, and may be empty only while exactly one model is live;
//	    params must byte-match that model's prescribed literal and
//	    rotationKeys must cover exactly its rotation set. Registering
//	    against a retired or draining version returns 410.
//
//	POST /v1/sessions/{id}/infer
//	    raw marshaled ciphertext -> raw marshaled ciphertext
//	    All sessions' requests — across every model — flow through one
//	    scheduler: weighted round-robin quanta over per-session queues
//	    feeding a shared bounded worker pool, so one worker budget serves
//	    the whole catalog. The input ciphertext must arrive at level >= the
//	    model's advertised levels (one inference consumes exactly that
//	    many). Requests on a session whose model was retired return 410.
//
//	GET  /v1/stats
//	    -> scheduler counters plus per-model-version sessions/backlog/
//	    units and draining state.
//
// Errors are JSON {"error": "..."} with a 4xx/5xx status.
package server

import "github.com/efficientfhe/smartpaf/internal/registry"

// ModelInfo is the public description a client fetches before key
// generation: the prescribed parameters and the rotation steps its key set
// must cover, plus the version identity (register against Ref() to pin the
// exact version the info describes).
type ModelInfo struct {
	Name      string `json:"name"`
	Version   int    `json:"version"`
	Draining  bool   `json:"draining,omitempty"`
	InputDim  int    `json:"inputDim"`
	OutputDim int    `json:"outputDim"`
	Levels    int    `json:"levels"`
	Slots     int    `json:"slots"`
	Params    []byte `json:"params"`
	Rotations []int  `json:"rotations"`
}

// Ref returns the versioned reference ("name@version") this info describes.
func (mi *ModelInfo) Ref() string { return registry.Ref(mi.Name, mi.Version) }

// infoFor projects a deployed stack into its public description.
func infoFor(d *registry.Deployed) ModelInfo {
	m := d.Model()
	return ModelInfo{
		Name:      m.Name,
		Version:   d.Version(),
		Draining:  d.Draining(),
		InputDim:  m.InputDim,
		OutputDim: m.OutputDim,
		Levels:    d.Levels(),
		Slots:     d.Params().Slots(),
		Params:    d.ParamBytes(),
		Rotations: d.Rotations(),
	}
}
