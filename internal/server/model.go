// Package server is the encrypted-inference serving front end: an HTTP
// service that multiplexes many client sessions onto one shared
// henn/ckks evaluation stack per model.
//
// The deployment story follows the marshal layer's framing: the client owns
// the secret key and ships only public material — the parameters literal,
// public key, relinearization key and rotation-key set — when registering a
// session, then POSTs marshaled ciphertexts to the inference endpoint and
// decrypts the returned result locally. The server never sees a plaintext.
//
// Protocol (all binary payloads use the internal/ckks wire format;
// JSON []byte fields are base64 per encoding/json):
//
//	GET  /v1/model
//	    -> {name, inputDim, outputDim, levels, slots, params, rotations}
//	    The server prescribes the parameter literal; prime derivation is
//	    deterministic, so both sides compile identical chains.
//
//	POST /v1/sessions
//	    {params, publicKey, relinKey, rotationKeys} -> {sessionID}
//	    params must byte-match the prescribed literal; rotationKeys must
//	    cover every step in the model's rotations list.
//
//	POST /v1/sessions/{id}/infer
//	    raw marshaled ciphertext -> raw marshaled ciphertext
//	    All sessions' requests flow through one cross-session scheduler:
//	    round-robin quanta over per-session queues feeding a shared
//	    bounded worker pool, so a flooding session cannot starve the
//	    others and total parallelism is one server-wide budget. The input
//	    ciphertext must arrive at level >= the model's advertised levels
//	    (one inference consumes exactly that many).
//
// Errors are JSON {"error": "..."} with a 4xx/5xx status.
package server

import (
	"fmt"
	"math/rand"

	"github.com/efficientfhe/smartpaf/internal/ckks"
	"github.com/efficientfhe/smartpaf/internal/henn"
	"github.com/efficientfhe/smartpaf/internal/paf"
)

// Model bundles everything the server needs to serve one deployed network:
// the frozen henn MLP and the CKKS parameter literal sessions must use.
type Model struct {
	Name      string
	MLP       *henn.MLP
	Params    ckks.ParametersLiteral
	InputDim  int
	OutputDim int
}

// ModelInfo is the public description a client fetches before key
// generation: the prescribed parameters and the rotation steps its key set
// must cover.
type ModelInfo struct {
	Name      string `json:"name"`
	InputDim  int    `json:"inputDim"`
	OutputDim int    `json:"outputDim"`
	Levels    int    `json:"levels"`
	Slots     int    `json:"slots"`
	Params    []byte `json:"params"`
	Rotations []int  `json:"rotations"`
}

// Dims returns the (input, output) dimensions of an MLP's linear envelope.
func Dims(mlp *henn.MLP) (in, out int, err error) {
	for _, l := range mlp.Layers {
		lin, ok := l.(*henn.Linear)
		if !ok {
			continue
		}
		if in == 0 {
			in = lin.In
		}
		out = lin.Out
	}
	if in == 0 || out == 0 {
		return 0, 0, fmt.Errorf("server: model has no linear layers")
	}
	return in, out, nil
}

// ParamsForMLP sizes a parameter literal for the model's inference depth at
// the given ring degree, mirroring the repo's example sizing: one level of
// headroom above LevelsRequired, a 55-bit base prime and 45-bit rescaling
// primes.
func ParamsForMLP(mlp *henn.MLP, logN int) (ckks.ParametersLiteral, error) {
	if _, _, err := Dims(mlp); err != nil {
		return ckks.ParametersLiteral{}, err
	}
	slots := 1 << (logN - 1)
	// Every layer (not just the envelope) must fit the slot vector.
	for _, l := range mlp.Layers {
		if lin, ok := l.(*henn.Linear); ok && (lin.In > slots || lin.Out > slots) {
			return ckks.ParametersLiteral{}, fmt.Errorf("server: layer %dx%d exceeds %d slots at LogN=%d", lin.Out, lin.In, slots, logN)
		}
	}
	levels := mlp.LevelsRequired() + 1
	logQ := make([]int, levels+1)
	logQ[0] = 55
	for i := 1; i <= levels; i++ {
		logQ[i] = 45
	}
	return ckks.ParametersLiteral{LogN: logN, LogQ: logQ, LogP: 55, LogScale: 45}, nil
}

// DemoModel builds a small frozen MLP (16 -> 8 -> 4 with an f1∘g2 PAF
// activation) with seeded random weights, sized for the given ring degree.
// It stands in for a SMART-PAF-trained network in demos, load experiments
// and tests; cmd/hennserve can serve a trained model instead.
func DemoModel(seed int64, logN int) (*Model, error) {
	rng := rand.New(rand.NewSource(seed))
	newLinear := func(in, out int) *henn.Linear {
		l := &henn.Linear{In: in, Out: out, B: make([]float64, out), W: make([][]float64, out)}
		for i := range l.W {
			l.W[i] = make([]float64, in)
			for j := range l.W[i] {
				l.W[i][j] = rng.NormFloat64() * 0.4
			}
			l.B[i] = rng.NormFloat64() * 0.1
		}
		return l
	}
	mlp := &henn.MLP{Layers: []any{
		newLinear(16, 8),
		&henn.Activation{PAF: paf.MustNew(paf.FormF1G2), Scale: 4},
		newLinear(8, 4),
	}}
	lit, err := ParamsForMLP(mlp, logN)
	if err != nil {
		return nil, err
	}
	return &Model{Name: "demo-mlp-16x8x4", MLP: mlp, Params: lit, InputDim: 16, OutputDim: 4}, nil
}
