package server

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/efficientfhe/smartpaf/internal/henn"
	"github.com/efficientfhe/smartpaf/internal/parallel"
	"github.com/efficientfhe/smartpaf/internal/registry"
)

// Scheduling policies for Options.Policy.
const (
	// PolicyFair serves sessions round-robin: the dispatcher claims up to
	// MaxBatch jobs per session turn, so one chatty session cannot starve
	// the others. This is the default.
	PolicyFair = "fair"
	// PolicyFIFO dispatches jobs in strict arrival order with no fairness —
	// the contention baseline the mserve experiment measures against: a
	// flooding session's backlog runs ahead of everyone else's requests.
	PolicyFIFO = "fifo"
)

// Sentinel job-failure causes, mapped to HTTP statuses by handleInfer.
var (
	errSessionClosed = errors.New("session closed")
	errShuttingDown  = errors.New("server shutting down")
)

// scheduler replaces the per-session batcher goroutines of the first
// serving cut. Sessions enqueue jobs into their own bounded queues; one
// dispatcher goroutine claims work across sessions (round-robin quanta
// under PolicyFair, arrival order under PolicyFIFO) and hands every job to
// a shared bounded worker pool as a henn.Unit. The unit carries its
// session's Context, so one pool serves any number of key sets and total
// server parallelism is bounded by a single budget — Options.Workers —
// instead of sessions × workers.
type scheduler struct {
	srv  *Server
	pool *parallel.Pool
	wake chan struct{}

	// The session-table lock nests outside the queue lock: enqueue paths
	// may resolve a session under Server.mu before queueing here, and
	// nothing queue-side ever calls back into the session table.
	//hennlint:lock-order(Server.mu < scheduler.mu)
	mu   sync.Mutex
	ring []*session // PolicyFair: sessions with queued jobs, round-robin order, guarded by mu
	fifo []*session // PolicyFIFO: one entry per enqueued job, arrival order, guarded by mu

	unitsRun     atomic.Int64
	unitsAborted atomic.Int64
	quanta       atomic.Int64
}

func newScheduler(srv *Server) *scheduler {
	return &scheduler{
		srv: srv,
		// A zero-depth submission buffer makes every dispatch rendezvous
		// with a free worker: claimed jobs never pile up ahead of the
		// budget, and fairness decisions happen as late as possible.
		pool: parallel.NewPool(srv.opts.Workers, 0),
		wake: make(chan struct{}, 1),
	}
}

// notify tells the scheduler sess has one more queued job. Handlers call it
// after every successful enqueue.
func (d *scheduler) notify(sess *session) {
	d.mu.Lock()
	if d.srv.opts.Policy == PolicyFIFO {
		d.fifo = append(d.fifo, sess)
	} else if !sess.inRing && !sess.dispatching {
		sess.inRing = true
		sess.windowAt = time.Time{}
		if d.srv.opts.BatchWindow > 0 {
			sess.windowAt = time.Now().Add(d.srv.opts.BatchWindow)
		}
		d.ring = append(d.ring, sess)
	}
	d.mu.Unlock()
	d.kick()
}

// sessionClosed makes a deleted or evicted session's queued jobs fail now —
// not after BatchWindow, and never by running paid inference for a dead
// session. Under the fair policy the session is made immediately
// dispatchable; under FIFO its queued jobs are failed on the spot (and its
// arrival entries dropped), because a FIFO entry otherwise only surfaces
// when it reaches the head of the arrival queue — a dead session behind a
// flood would wait out the whole backlog for its 410.
func (d *scheduler) sessionClosed(sess *session) {
	fifo := d.srv.opts.Policy == PolicyFIFO
	d.mu.Lock()
	sess.windowAt = time.Time{}
	if fifo {
		kept := d.fifo[:0]
		for _, s := range d.fifo {
			if s != sess {
				kept = append(kept, s)
			}
		}
		for i := len(kept); i < len(d.fifo); i++ {
			d.fifo[i] = nil // let the dead session's entries be collected
		}
		d.fifo = kept
	} else if !sess.inRing && !sess.dispatching && len(sess.jobs) > 0 {
		sess.inRing = true
		d.ring = append(d.ring, sess)
	}
	d.mu.Unlock()
	if fifo {
		// sess.done is already closed, so a racing handler's enqueue (or a
		// dispatch that claimed jobs before the sweep above) still fails its
		// jobs through the dispatcher's own liveness checks.
		d.failQueued(sess, errSessionClosed)
	}
	d.kick()
}

func (d *scheduler) kick() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// run is the dispatcher loop. It exits when the server closes, after
// failing every still-queued job.
func (d *scheduler) run() {
	defer d.srv.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		sess, wait := d.next()
		if sess != nil {
			d.dispatch(sess)
			continue
		}
		if wait > 0 {
			resetTimer(timer, wait)
			select {
			case <-timer.C:
			case <-d.wake:
			case <-d.srv.closed:
				d.shutdown()
				return
			}
			continue
		}
		select {
		case <-d.wake:
		case <-d.srv.closed:
			d.shutdown()
			return
		}
	}
}

func resetTimer(t *time.Timer, wait time.Duration) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	t.Reset(wait)
}

// next picks the session to serve. A nil session with wait > 0 means the
// earliest BatchWindow deadline is that far away; nil with wait 0 means
// idle.
func (d *scheduler) next() (*session, time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.srv.opts.Policy == PolicyFIFO {
		if len(d.fifo) == 0 {
			return nil, 0
		}
		sess := d.fifo[0]
		d.fifo = d.fifo[1:]
		return sess, 0
	}
	if len(d.ring) == 0 {
		return nil, 0
	}
	now := time.Now()
	var minWait time.Duration
	for i, sess := range d.ring {
		if eligible(sess, now, d.srv.opts.MaxBatch*sess.weight) {
			d.ring = append(d.ring[:i], d.ring[i+1:]...)
			sess.inRing = false
			sess.dispatching = true
			return sess, 0
		}
		if w := sess.windowAt.Sub(now); minWait == 0 || w < minWait {
			minWait = w
		}
	}
	return nil, max(minWait, time.Millisecond)
}

// eligible reports whether the session's turn can start: its batch window
// elapsed, a full quantum is already queued, or the session died (its jobs
// must fail now). quantum is the session's own full quantum — weight ×
// MaxBatch — not the 1× base: a weighted session's window is only cut short
// once the whole quantum it is entitled to has queued.
//
//hennlint:holds(scheduler.mu) — called only from next, under the dispatcher's lock.
func eligible(sess *session, now time.Time, quantum int) bool {
	if sess.windowAt.IsZero() || !now.Before(sess.windowAt) || len(sess.jobs) >= quantum {
		return true
	}
	select {
	case <-sess.done:
		return true
	default:
		return false
	}
}

// dispatch serves one scheduler turn for sess: claim jobs, then hand each
// to the shared pool as a henn.Unit (or fail them all if the session died).
// The quantum scales with the session's QoS weight under the fair policy.
func (d *scheduler) dispatch(sess *session) {
	quantum := d.srv.opts.MaxBatch * sess.weight
	if d.srv.opts.Policy == PolicyFIFO {
		quantum = 1 // one fifo entry exists per enqueued job
	}
	var batch []*inferJob
claim:
	for len(batch) < quantum {
		select {
		case job := <-sess.jobs:
			batch = append(batch, job)
		default:
			break claim
		}
	}
	// Claimed jobs left the session queue but have not reached the pool yet
	// (Submit's zero-depth rendezvous can hold them a long time); count them
	// so a Stats snapshot cannot report an empty backlog while the claimed
	// quantum waits for workers.
	sess.claimed.Add(int64(len(batch)))
	select {
	case <-sess.done:
		d.abort(batch, errSessionClosed)
		sess.claimed.Add(-int64(len(batch)))
		d.failQueued(sess, errSessionClosed)
		d.finish(sess)
		return
	default:
	}
	if len(batch) > 0 {
		d.quanta.Add(1)
	}
	for i, job := range batch {
		// Submit can block a long time waiting for a free worker
		// (zero-depth rendezvous), so the session may die mid-batch;
		// re-checking here keeps a deleted session's remaining claimed
		// jobs from running as paid inference.
		select {
		case <-sess.done:
			d.abort(batch[i:], errSessionClosed)
			sess.claimed.Add(-int64(len(batch) - i))
			d.failQueued(sess, errSessionClosed)
			d.finish(sess)
			return
		default:
		}
		job := job
		// The unit retains the model stack so a retire that lands while it
		// executes cannot free the caches under it; the session's own bind
		// reference does not cover the unit, because the session may be
		// removed (releasing that reference) while the unit is in flight.
		sess.dep.Retain()
		// Queue wait ends here: the job leaves the dispatcher's hands for
		// the pool rendezvous, which the trace's dispatch span covers.
		submitted := time.Now()
		sess.queueWait.Record(submitted.Sub(job.enqueuedAt))
		job.trace.AddSpan("queue_wait", job.enqueuedAt, submitted)
		ok := d.pool.Submit(func() {
			defer sess.dep.Release()
			runStart := time.Now()
			job.trace.AddSpan("dispatch", submitted, runStart,
				[2]string{"model", sess.dep.Ref()})
			out, err := henn.Unit{Ctx: sess.ctx, MLP: sess.dep.Model().MLP, CT: job.ct, Trace: job.trace}.Run()
			end := time.Now()
			sess.unitLat.Record(end.Sub(runStart))
			if err != nil {
				job.trace.AddSpan("unit", runStart, end, [2]string{"error", err.Error()})
			} else {
				job.trace.AddSpan("unit", runStart, end)
			}
			job.done <- inferResult{ct: out, err: err}
		})
		// Count the unit here, after the claimed decrement, not inside the
		// worker: the worker incremented UnitsRun concurrently with the
		// claimed decrement above, so a Stats snapshot could see one job in
		// both Backlog (still claimed) and UnitsRun. Submit's rendezvous
		// means ok implies a worker has the unit, so the count is accurate;
		// the ordering now only ever undercounts transiently.
		sess.claimed.Add(-1) // handed to a worker, or about to be aborted
		if !ok {
			sess.dep.Release()
			d.abort([]*inferJob{job}, errShuttingDown)
		} else {
			d.unitsRun.Add(1)
			sess.dep.AddUnitRun()
		}
	}
	d.finish(sess)
}

// finish ends a fair-mode turn: the session goes back to the ring tail if
// jobs arrived while it was being served (already past their window wait).
func (d *scheduler) finish(sess *session) {
	if d.srv.opts.Policy == PolicyFIFO {
		return
	}
	d.mu.Lock()
	sess.dispatching = false
	if len(sess.jobs) > 0 && !sess.inRing {
		sess.inRing = true
		sess.windowAt = time.Time{}
		d.ring = append(d.ring, sess)
	}
	d.mu.Unlock()
}

// abort fails claimed jobs without running them.
func (d *scheduler) abort(batch []*inferJob, cause error) {
	for _, job := range batch {
		job.done <- inferResult{err: cause}
		d.unitsAborted.Add(1)
	}
}

// failQueued drains and fails everything still queued on sess.
func (d *scheduler) failQueued(sess *session, cause error) {
	for {
		select {
		case job := <-sess.jobs:
			d.abort([]*inferJob{job}, cause)
		default:
			return
		}
	}
}

// shutdown fails every queued job across all sessions; in-flight units
// finish in the pool (Server.Close drains it after the dispatcher exits).
func (d *scheduler) shutdown() {
	d.mu.Lock()
	d.ring = nil
	d.fifo = nil
	d.mu.Unlock()
	d.srv.mu.RLock()
	sessions := make([]*session, 0, len(d.srv.sessions))
	for _, sess := range d.srv.sessions {
		sessions = append(sessions, sess)
	}
	d.srv.mu.RUnlock()
	for _, sess := range sessions {
		d.failQueued(sess, errShuttingDown)
	}
}

// ModelStats is the per-model-version slice of a Stats snapshot, fed by the
// registry counters and the live session table.
type ModelStats struct {
	// Name is the model's base registry name.
	Name string `json:"name"`
	// Version is the registry-assigned version number.
	Version int `json:"version"`
	// Draining reports a superseded version still serving its existing
	// sessions; it leaves the snapshot once the last one releases.
	Draining bool `json:"draining,omitempty"`
	// Sessions is how many live sessions are bound to the version.
	Sessions int `json:"sessions"`
	// Backlog is how many of the version's jobs await a worker (queued in
	// sessions plus claimed by the dispatcher but not yet submitted).
	Backlog int `json:"backlog"`
	// UnitsRun counts inference units executed against the version.
	UnitsRun int64 `json:"unitsRun"`
	// Unit-latency and queue-wait quantiles in milliseconds, read from the
	// server's log-bucketed histograms (~±50% bucket resolution). Omitted
	// until the version has executed at least one unit.
	UnitP50Ms  float64 `json:"unitP50Ms,omitempty"`
	UnitP95Ms  float64 `json:"unitP95Ms,omitempty"`
	UnitP99Ms  float64 `json:"unitP99Ms,omitempty"`
	QueueP50Ms float64 `json:"queueP50Ms,omitempty"`
	QueueP99Ms float64 `json:"queueP99Ms,omitempty"`
}

// Stats is a point-in-time snapshot of scheduler counters, served at
// GET /v1/stats.
type Stats struct {
	// Workers is the resolved server-wide worker budget.
	Workers int `json:"workers"`
	// Backlog is how many accepted jobs still await a worker: queued in
	// per-session queues plus claimed by the dispatcher but blocked in the
	// zero-depth pool rendezvous. Jobs already executing do not count.
	Backlog int `json:"backlog"`
	// UnitsRun counts inference units the pool started executing.
	UnitsRun int64 `json:"unitsRun"`
	// UnitsAborted counts jobs failed without running (session deleted,
	// model retired, or server shutting down).
	UnitsAborted int64 `json:"unitsAborted"`
	// Quanta counts scheduler turns that claimed at least one job.
	Quanta int64 `json:"quanta"`
	// PeakInFlight is the high-water mark of concurrently executing units;
	// it never exceeds Workers.
	PeakInFlight int `json:"peakInFlight"`
	// UptimeSeconds is how long ago the server was built.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Goroutines is the live goroutine count of the serving process.
	Goroutines int `json:"goroutines"`
	// HeapBytes is the in-use heap (runtime.MemStats.HeapAlloc).
	HeapBytes uint64 `json:"heap_bytes"`
	// Models breaks sessions, backlog and executed units down per deployed
	// model version, sorted by name then version. Retired versions drop out
	// of the snapshot; draining ones stay until their last session releases.
	Models []ModelStats `json:"models"`
}

// Stats reports scheduler counters (the mserve/mmodel/upgrade experiments
// and the regression suite read these). It is a pure read of the
// telemetry plane: it must never mint new series.
//
//hennlint:read-path
func (s *Server) Stats() Stats {
	deployed := s.reg.List()
	perModel := make([]ModelStats, len(deployed))
	index := make(map[*registry.Deployed]*ModelStats, len(deployed))
	for i, d := range deployed {
		perModel[i] = ModelStats{
			Name:     d.Name(),
			Version:  d.Version(),
			Draining: d.Draining(),
			UnitsRun: d.UnitsRun(),
		}
		// Find (not With): a version no session ever ran units for has no
		// series, and a stats scrape must not create one.
		if h := s.unitLat.Find(d.Ref()); h.Count() > 0 {
			perModel[i].UnitP50Ms = h.Quantile(0.50) * 1e3
			perModel[i].UnitP95Ms = h.Quantile(0.95) * 1e3
			perModel[i].UnitP99Ms = h.Quantile(0.99) * 1e3
		}
		if h := s.queueWait.Find(d.Ref()); h.Count() > 0 {
			perModel[i].QueueP50Ms = h.Quantile(0.50) * 1e3
			perModel[i].QueueP99Ms = h.Quantile(0.99) * 1e3
		}
		index[d] = &perModel[i]
	}
	backlog := 0
	s.mu.RLock()
	for _, sess := range s.sessions {
		pending := len(sess.jobs) + int(sess.claimed.Load())
		backlog += pending
		if ms := index[sess.dep]; ms != nil {
			ms.Sessions++
			ms.Backlog += pending
		}
	}
	s.mu.RUnlock()
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	return Stats{
		Workers:       s.sched.pool.Workers(),
		Backlog:       backlog,
		UnitsRun:      s.sched.unitsRun.Load(),
		UnitsAborted:  s.sched.unitsAborted.Load(),
		Quanta:        s.sched.quanta.Load(),
		PeakInFlight:  s.sched.pool.Peak(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Goroutines:    runtime.NumGoroutine(),
		HeapBytes:     mem.HeapAlloc,
		Models:        perModel,
	}
}
