package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/efficientfhe/smartpaf/internal/ckks"
	"github.com/efficientfhe/smartpaf/internal/registry"
)

// testLogN keeps the ring small (insecure but structurally identical) so the
// register -> infer round trip stays fast under the race detector.
const testLogN = 8

func newTestServer(t testing.TB) (*registry.Model, *Server, *httptest.Server) {
	t.Helper()
	model, err := registry.DemoModel(11, testLogN)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{MaxBatch: 8, Workers: -1}, model)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return model, srv, ts
}

func argmax(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// TestRegisterInferDecrypt is the end-to-end protocol test: the client
// generates keys under the prescribed parameters, registers over HTTP,
// ships an encrypted input and decrypts a prediction that matches the
// plaintext reference inference.
func TestRegisterInferDecrypt(t *testing.T) {
	model, _, ts := newTestServer(t)
	ctx := context.Background()

	sess, err := NewClient(ts.URL, nil).NewSession(ctx, 99)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 3; trial++ {
		x := make([]float64, model.InputDim)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		got, err := sess.Infer(ctx, x)
		if err != nil {
			t.Fatal(err)
		}
		want := model.MLP.InferPlain(x)[:model.OutputDim]
		if len(got) != len(want) {
			t.Fatalf("got %d logits, want %d", len(got), len(want))
		}
		for i := range want {
			if d := got[i] - want[i]; d > 1e-3 || d < -1e-3 {
				t.Fatalf("trial %d logit %d: encrypted %g vs plain %g", trial, i, got[i], want[i])
			}
		}
		if argmax(got) != argmax(want) {
			t.Fatalf("trial %d: encrypted argmax %d != plain argmax %d", trial, argmax(got), argmax(want))
		}
	}
}

// TestConcurrentClientsBatch hammers one session from many goroutines —
// the batcher must coalesce requests and every client must get its own
// correct result back (results are order-sensitive: each input is distinct).
func TestConcurrentClientsBatch(t *testing.T) {
	model, _, ts := newTestServer(t)
	ctx := context.Background()

	sess, err := NewClient(ts.URL, nil).NewSession(ctx, 1234)
	if err != nil {
		t.Fatal(err)
	}
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			x := make([]float64, model.InputDim)
			for i := range x {
				x[i] = rng.Float64()*2 - 1
			}
			got, err := sess.Infer(ctx, x)
			if err != nil {
				errs <- err
				return
			}
			want := model.MLP.InferPlain(x)[:model.OutputDim]
			for i := range want {
				if d := got[i] - want[i]; d > 1e-3 || d < -1e-3 {
					t.Errorf("client %d logit %d: encrypted %g vs plain %g", c, i, got[i], want[i])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRegisterRejectsBadMaterial covers the wire-hardening paths: wrong
// parameters, truncated keys and missing rotation steps must all 400.
func TestRegisterRejectsBadMaterial(t *testing.T) {
	_, _, ts := newTestServer(t)
	post := func(req registerRequest) *http.Response {
		payload, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := post(registerRequest{Params: []byte{1, 2, 3}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched params: got %s, want 400", resp.Status)
	}

	info, err := NewClient(ts.URL, nil).Model(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resp := post(registerRequest{Params: info.Params, PublicKey: []byte{9}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated public key: got %s, want 400", resp.Status)
	}

	// Keys that deserialize cleanly but were built for smaller parameters
	// must be rejected at registration, not panic the key-switch loop at
	// inference time. Build a full key set under a shallower chain.
	var lit ckks.ParametersLiteral
	if err := lit.UnmarshalBinary(info.Params); err != nil {
		t.Fatal(err)
	}
	lit.LogQ = lit.LogQ[:3]
	small, err := ckks.NewParameters(lit)
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(small, 3)
	sk := kg.GenSecretKey()
	pkBytes, err := kg.GenPublicKey(sk).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	rlkBytes, err := kg.GenRelinearizationKey(sk).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	rksBytes, err := kg.GenRotationKeys(sk, info.Rotations, false).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	wrong := registerRequest{Params: info.Params, PublicKey: pkBytes, RelinKey: rlkBytes, RotationKeys: rksBytes}
	if resp := post(wrong); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-parameter key set: got %s, want 400", resp.Status)
	}
}

// TestRegisterRejectsExtraRotationKeys: the server prescribes the step set
// exactly; sessions may not pin key material the model never uses.
func TestRegisterRejectsExtraRotationKeys(t *testing.T) {
	_, srv, ts := newTestServer(t)
	info := infoFor(srv.reg.List()[0])
	var lit ckks.ParametersLiteral
	if err := lit.UnmarshalBinary(info.Params); err != nil {
		t.Fatal(err)
	}
	params, err := ckks.NewParameters(lit)
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params, 4)
	sk := kg.GenSecretKey()
	pkBytes, err := kg.GenPublicKey(sk).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	rlkBytes, err := kg.GenRelinearizationKey(sk).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	extra := append(append([]int{}, info.Rotations...), 31) // 31 is not required by the 16x8x4 demo model
	rksBytes, err := kg.GenRotationKeys(sk, extra, false).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(registerRequest{Params: info.Params, PublicKey: pkBytes, RelinKey: rlkBytes, RotationKeys: rksBytes})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("extra rotation step: got %s, want 400", resp.Status)
	}
}

// TestSessionDelete covers the lifecycle endpoint: a closed session 404s
// further inference and can be re-registered.
func TestSessionDelete(t *testing.T) {
	model, _, ts := newTestServer(t)
	ctx := context.Background()
	sess, err := NewClient(ts.URL, nil).NewSession(ctx, 55)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(ctx); err == nil {
		t.Fatal("double delete should fail")
	}
	x := make([]float64, model.InputDim)
	if _, err := sess.Infer(ctx, x); err == nil {
		t.Fatal("inference on a deleted session should fail")
	}
	if _, err := NewClient(ts.URL, nil).NewSession(ctx, 56); err != nil {
		t.Fatalf("re-registering after delete: %v", err)
	}
}

// TestInferUnknownSessionAndHostileCiphertext covers the infer-path guards.
func TestInferUnknownSessionAndHostileCiphertext(t *testing.T) {
	_, _, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/sessions/nope/infer", "application/octet-stream", bytes.NewReader([]byte{1}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: got %s, want 404", resp.Status)
	}

	sess, err := NewClient(ts.URL, nil).NewSession(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/sessions/"+sess.ID()+"/infer", "application/octet-stream", bytes.NewReader([]byte{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("hostile ciphertext: got %s, want 400", resp.Status)
	}
}
