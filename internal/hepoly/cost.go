package hepoly

import (
	"fmt"
	"time"

	"github.com/efficientfhe/smartpaf/internal/ckks"
	"github.com/efficientfhe/smartpaf/internal/paf"
)

// CostModel estimates PAF latency analytically from per-operation costs.
// The paper's latency claim (Table 4, Fig. 1) is that PAF latency is
// dominated by the number and depth of FHE multiplications; the model makes
// the "who wins by what factor" shape reproducible without paper-scale
// hardware.
type CostModel struct {
	CtMult    time.Duration // ciphertext×ciphertext multiply + relinearize + rescale
	ConstMult time.Duration // constant multiply + rescale
	Add       time.Duration
}

// EstimateSign returns the modeled latency of evaluating the sign
// approximation.
func (cm CostModel) EstimateSign(c *paf.Composite) time.Duration {
	oc := c.Ops()
	return cm.estimate(oc)
}

// EstimateReLU returns the modeled latency of the full PAF ReLU.
func (cm CostModel) EstimateReLU(c *paf.Composite) time.Duration {
	return cm.estimate(c.OpsReLU())
}

func (cm CostModel) estimate(oc paf.OpCount) time.Duration {
	return time.Duration(oc.CtMults)*cm.CtMult +
		time.Duration(oc.ConstMults)*cm.ConstMult +
		time.Duration(oc.Adds)*cm.Add
}

// Calibrate measures the per-operation costs on the given context by timing
// a handful of operations at the top level. iters controls averaging.
func Calibrate(ev *ckks.Evaluator, enc *ckks.Encoder, encryptor *ckks.Encryptor, iters int) (CostModel, error) {
	if iters < 1 {
		iters = 1
	}
	params := ev.Params()
	vals := make([]float64, params.Slots())
	for i := range vals {
		vals[i] = 0.5
	}
	pt, err := enc.EncodeReals(vals, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		return CostModel{}, err
	}
	ct := encryptor.Encrypt(pt)

	var cm CostModel
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := ev.MulRelinRescale(ct, ct); err != nil {
			return CostModel{}, err
		}
	}
	cm.CtMult = time.Since(start) / time.Duration(iters)

	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, err := ev.MulConstTargetScale(ct, 0.5, params.DefaultScale()); err != nil {
			return CostModel{}, err
		}
	}
	cm.ConstMult = time.Since(start) / time.Duration(iters)

	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, err := ev.Add(ct, ct); err != nil {
			return CostModel{}, err
		}
	}
	cm.Add = time.Since(start) / time.Duration(iters)
	return cm, nil
}

// EstimateReLUAtLevel returns a level-weighted latency estimate: each
// operation's cost is scaled by the number of active RNS limbs (level+1) at
// the point it executes, normalized by the starting limb count. This mirrors
// how leveled RNS-CKKS actually spends time: early (high-level) operations
// touch more limbs. The operation schedule replayed here matches
// Evaluator.ReLU exactly.
func (cm CostModel) EstimateReLUAtLevel(c *paf.Composite, startLevel int) time.Duration {
	var total float64
	norm := float64(startLevel + 1)
	weight := func(level int, d time.Duration) {
		total += float64(d) * float64(level+1) / norm
	}

	level := startLevel
	for _, stage := range c.Stages {
		deg := stage.Degree()
		// Even ladder: squaring i runs at level-i.
		ladderLevels := make([]int, ladderSize(deg))
		cur := level
		for i := range ladderLevels {
			weight(cur, cm.CtMult)
			cur--
			ladderLevels[i] = cur
		}
		// Terms.
		minLevel := level
		for k := range stage.Coeffs {
			if stage.Coeffs[k] == 0 {
				continue
			}
			weight(level, cm.ConstMult)
			termLevel := level - 1
			for bit := 0; (1 << bit) <= k; bit++ {
				if k&(1<<bit) == 0 {
					continue
				}
				at := min(termLevel, ladderLevels[bit])
				weight(at, cm.CtMult)
				termLevel = at - 1
			}
			if termLevel < minLevel {
				minLevel = termLevel
			}
			weight(termLevel, cm.Add)
		}
		level = minLevel
	}
	// ReLU tail: x·p/2 product, x/2 constant, final add.
	weight(level, cm.CtMult)
	weight(startLevel, cm.ConstMult)
	weight(level-1, cm.Add)
	return time.Duration(total)
}

// RequiredLevels returns the number of levels a ReLU with this PAF consumes,
// including the scaling multiplication used by Static Scaling deployment
// (one constant multiply to scale the input into [-1,1]).
func RequiredLevels(c *paf.Composite, withScaling bool) int {
	levels := c.DepthReLU()
	if withScaling {
		levels++
	}
	return levels
}

// CheckFits verifies a parameter set can evaluate the PAF's ReLU.
func CheckFits(params *ckks.Parameters, c *paf.Composite, withScaling bool) error {
	need := RequiredLevels(c, withScaling)
	if params.MaxLevel() < need {
		return fmt.Errorf("hepoly: %s ReLU needs %d levels, parameters provide %d",
			c.Name, need, params.MaxLevel())
	}
	return nil
}
