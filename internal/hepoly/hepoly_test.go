package hepoly

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/efficientfhe/smartpaf/internal/ckks"
	"github.com/efficientfhe/smartpaf/internal/paf"
)

type heContext struct {
	params *ckks.Parameters
	enc    *ckks.Encoder
	encr   *ckks.Encryptor
	decr   *ckks.Decryptor
	eval   *ckks.Evaluator
	he     *Evaluator
}

// newHEContext builds a small insecure-but-structurally-identical context
// with enough levels for the deepest PAF ReLU (alpha10: 10+1 = 11 levels,
// +1 margin).
func newHEContext(t testing.TB) *heContext {
	t.Helper()
	lit := ckks.ParametersLiteral{
		LogN:     8,
		LogQ:     []int{55, 45, 45, 45, 45, 45, 45, 45, 45, 45, 45, 45, 45},
		LogP:     55,
		LogScale: 45,
	}
	params, err := ckks.NewParameters(lit)
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params, 99)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	eval := ckks.NewEvaluator(params, rlk)
	return &heContext{
		params: params,
		enc:    ckks.NewEncoder(params),
		encr:   ckks.NewEncryptor(params, pk, 5),
		decr:   ckks.NewDecryptor(params, sk),
		eval:   eval,
		he:     NewEvaluator(eval),
	}
}

func (hc *heContext) encryptReals(t testing.TB, vals []float64) *ckks.Ciphertext {
	t.Helper()
	pt, err := hc.enc.EncodeReals(vals, hc.params.MaxLevel(), hc.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	return hc.encr.Encrypt(pt)
}

func (hc *heContext) decryptReals(ct *ckks.Ciphertext) []float64 {
	return hc.enc.DecodeReals(hc.decr.Decrypt(ct))
}

func testVector(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()*2 - 1
	}
	return out
}

func maxAbsDiff(a, b []float64) float64 {
	var worst float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestEvalOddMatchesPlaintext(t *testing.T) {
	hc := newHEContext(t)
	vals := testVector(hc.params.Slots(), 1)
	ct := hc.encryptReals(t, vals)

	p := paf.NewOddPoly([]float64{1.5, -0.5, 0.25, -0.03}) // degree 7
	out, err := hc.he.EvalOdd(p, ct)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(vals))
	for i, v := range vals {
		want[i] = p.Eval(v)
	}
	if d := maxAbsDiff(want, hc.decryptReals(out)); d > 1e-4 {
		t.Fatalf("EvalOdd error %g", d)
	}
	// Depth: degree 7 must consume exactly 3 levels.
	if got, want := hc.params.MaxLevel()-out.Level, 3; got != want {
		t.Fatalf("levels consumed = %d want %d", got, want)
	}
	// Scale restored to input scale exactly.
	if out.Scale != ct.Scale {
		t.Fatalf("scale %g != input %g", out.Scale, ct.Scale)
	}
}

func TestEvalOddDegreeOne(t *testing.T) {
	hc := newHEContext(t)
	vals := testVector(hc.params.Slots(), 2)
	ct := hc.encryptReals(t, vals)
	p := paf.NewOddPoly([]float64{-2.5})
	out, err := hc.he.EvalOdd(p, ct)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(vals))
	for i, v := range vals {
		want[i] = -2.5 * v
	}
	if d := maxAbsDiff(want, hc.decryptReals(out)); d > 1e-5 {
		t.Fatalf("degree-1 error %g", d)
	}
	if hc.params.MaxLevel()-out.Level != 1 {
		t.Fatal("degree-1 should consume exactly 1 level")
	}
}

func TestEvalOddAllDegreesConsumeAnalyticDepth(t *testing.T) {
	hc := newHEContext(t)
	vals := testVector(hc.params.Slots(), 3)
	for _, nc := range []int{1, 2, 3, 4, 5, 6, 7} {
		coeffs := make([]float64, nc)
		for i := range coeffs {
			coeffs[i] = 0.3 / float64(i+1)
			if i%2 == 1 {
				coeffs[i] = -coeffs[i]
			}
		}
		p := paf.NewOddPoly(coeffs)
		ct := hc.encryptReals(t, vals)
		out, err := hc.he.EvalOdd(p, ct)
		if err != nil {
			t.Fatalf("degree %d: %v", p.Degree(), err)
		}
		want := paf.DepthOfDegree(p.Degree())
		if got := hc.params.MaxLevel() - out.Level; got != want {
			t.Fatalf("degree %d: consumed %d levels, analytic %d", p.Degree(), got, want)
		}
		ref := make([]float64, len(vals))
		for i, v := range vals {
			ref[i] = p.Eval(v)
		}
		if d := maxAbsDiff(ref, hc.decryptReals(out)); d > 1e-4 {
			t.Fatalf("degree %d: error %g", p.Degree(), d)
		}
	}
}

func TestEvalCompositeMatchesPlaintextForAllForms(t *testing.T) {
	hc := newHEContext(t)
	vals := testVector(hc.params.Slots(), 4)
	for _, name := range paf.AllFormsWithBaseline {
		c := paf.MustNew(name)
		ct := hc.encryptReals(t, vals)
		out, err := hc.he.EvalComposite(c, ct)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := hc.params.MaxLevel() - out.Level; got != c.Depth() {
			t.Errorf("%s: consumed %d levels, Table 2 depth %d", name, got, c.Depth())
		}
		want := make([]float64, len(vals))
		for i, v := range vals {
			want[i] = c.Eval(v)
		}
		if d := maxAbsDiff(want, hc.decryptReals(out)); d > 1e-2 {
			t.Errorf("%s: encrypted vs plaintext error %g", name, d)
		}
	}
}

func TestReLUEncrypted(t *testing.T) {
	hc := newHEContext(t)
	vals := testVector(hc.params.Slots(), 5)
	c := paf.MustNew(paf.FormAlpha7)
	ct := hc.encryptReals(t, vals)
	out, err := hc.he.ReLU(c, ct)
	if err != nil {
		t.Fatal(err)
	}
	// Against the PAF's own plaintext ReLU (tight tolerance: same math).
	wantPAF := make([]float64, len(vals))
	for i, v := range vals {
		wantPAF[i] = c.ReLU(v)
	}
	if d := maxAbsDiff(wantPAF, hc.decryptReals(out)); d > 1e-2 {
		t.Fatalf("encrypted vs plaintext PAF ReLU differ by %g", d)
	}
	if got := hc.params.MaxLevel() - out.Level; got != c.DepthReLU() {
		t.Fatalf("ReLU consumed %d levels, want %d", got, c.DepthReLU())
	}
}

func TestMaxEncrypted(t *testing.T) {
	hc := newHEContext(t)
	// PAF max requires |a-b| ≤ 1: exactly the invariant Static Scaling
	// maintains in deployment. Use half-range inputs.
	a := testVector(hc.params.Slots(), 6)
	b := testVector(hc.params.Slots(), 7)
	for i := range a {
		a[i] *= 0.5
		b[i] *= 0.5
	}
	c := paf.MustNew(paf.FormAlpha7)
	cta := hc.encryptReals(t, a)
	ctb := hc.encryptReals(t, b)
	out, err := hc.he.Max(c, cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(a))
	for i := range a {
		want[i] = c.Max(a[i], b[i])
	}
	if d := maxAbsDiff(want, hc.decryptReals(out)); d > 1e-2 {
		t.Fatalf("encrypted max error %g", d)
	}
}

func TestEvalOddInsufficientLevels(t *testing.T) {
	hc := newHEContext(t)
	vals := testVector(hc.params.Slots(), 8)
	ct := hc.encryptReals(t, vals)
	low := hc.eval.DropLevel(ct, 1)
	p := paf.NewOddPoly([]float64{1, -0.5, 0.25}) // degree 5, needs 3
	if _, err := hc.he.EvalOdd(p, low); err == nil {
		t.Fatal("expected insufficient-level error")
	}
}

func TestEvalOddRejectsZeroPolynomial(t *testing.T) {
	hc := newHEContext(t)
	ct := hc.encryptReals(t, testVector(hc.params.Slots(), 9))
	if _, err := hc.he.EvalOdd(paf.NewOddPoly([]float64{0, 0}), ct); err == nil {
		t.Fatal("expected error for all-zero polynomial")
	}
}

func TestLadderSize(t *testing.T) {
	cases := map[int]int{1: 0, 3: 1, 5: 2, 7: 2, 9: 3, 13: 3, 15: 3, 27: 4}
	for deg, want := range cases {
		if got := ladderSize(deg); got != want {
			t.Errorf("ladderSize(%d) = %d want %d", deg, got, want)
		}
	}
}

func TestCostModelOrdering(t *testing.T) {
	cm := CostModel{CtMult: 100, ConstMult: 10, Add: 1}
	// Table 4's headline shape: the 27-degree baseline is the most expensive
	// PAF by a wide margin and f1∘g2 the cheapest.
	base := cm.EstimateReLU(paf.MustNew(paf.FormAlpha10))
	cheapest := cm.EstimateReLU(paf.MustNew(paf.FormF1G2))
	for _, name := range paf.AllForms {
		est := cm.EstimateReLU(paf.MustNew(name))
		if est >= base {
			t.Fatalf("%s: estimate %v not below the 27-degree baseline %v", name, est, base)
		}
		if est < cheapest {
			t.Fatalf("%s: estimate %v below f1∘g2 %v", name, est, cheapest)
		}
	}
	if float64(base)/float64(cheapest) < 2 {
		t.Fatalf("baseline/f1∘g2 ratio %.2f too small", float64(base)/float64(cheapest))
	}
}

func TestLevelWeightedCost(t *testing.T) {
	cm := CostModel{CtMult: 100, ConstMult: 10, Add: 1}
	const start = 12
	base := cm.EstimateReLUAtLevel(paf.MustNew(paf.FormAlpha10), start)
	for _, name := range paf.AllForms {
		c := paf.MustNew(name)
		lw := cm.EstimateReLUAtLevel(c, start)
		flat := cm.EstimateReLU(c)
		if lw <= 0 {
			t.Fatalf("%s: non-positive level-weighted estimate", name)
		}
		if lw >= base {
			t.Fatalf("%s: level-weighted %v not below baseline %v", name, lw, base)
		}
		// Level weighting scales costs by limb count ≤ start+1.
		if lw > flat*time.Duration(start+1) {
			t.Fatalf("%s: level-weighted estimate %v exceeds flat bound", name, lw)
		}
	}
}

func TestRequiredLevelsAndCheckFits(t *testing.T) {
	c := paf.MustNew(paf.FormF1G2)
	if RequiredLevels(c, false) != 6 {
		t.Fatalf("f1∘g2 ReLU levels = %d want 6", RequiredLevels(c, false))
	}
	if RequiredLevels(c, true) != 7 {
		t.Fatal("scaling should add one level")
	}
	small, err := ckks.NewParameters(ckks.ParametersLiteral{LogN: 6, LogQ: []int{50, 40, 40}, LogP: 50, LogScale: 40})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFits(small, c, false); err == nil {
		t.Fatal("expected CheckFits failure on 2-level parameters")
	}
}

func TestCalibrate(t *testing.T) {
	hc := newHEContext(t)
	cm, err := Calibrate(hc.eval, hc.enc, hc.encr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cm.CtMult <= 0 || cm.ConstMult <= 0 || cm.Add <= 0 {
		t.Fatalf("non-positive calibrated costs: %+v", cm)
	}
	if cm.CtMult <= cm.Add {
		t.Fatalf("ct mult (%v) should dominate add (%v)", cm.CtMult, cm.Add)
	}
}

func TestReLUScaledFoldsConstant(t *testing.T) {
	hc := newHEContext(t)
	vals := testVector(hc.params.Slots(), 10)
	c := paf.MustNew(paf.FormF1G2)
	const gamma = 3.25
	ct := hc.encryptReals(t, vals)
	out, err := hc.he.ReLUScaled(c, ct, gamma)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(vals))
	for i, v := range vals {
		want[i] = gamma * c.ReLU(v)
	}
	if d := maxAbsDiff(want, hc.decryptReals(out)); d > 1e-2 {
		t.Fatalf("scaled relu error %g", d)
	}
	// Folding must not cost an extra level vs plain ReLU.
	plain, err := hc.he.ReLU(c, hc.encryptReals(t, vals))
	if err != nil {
		t.Fatal(err)
	}
	if out.Level != plain.Level {
		t.Fatalf("ReLUScaled consumed %d levels vs ReLU's %d", hc.params.MaxLevel()-out.Level, hc.params.MaxLevel()-plain.Level)
	}
}
