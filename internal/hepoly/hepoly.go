// Package hepoly evaluates PAFs (composite odd polynomials) on CKKS
// ciphertexts using the depth-optimal strategy of the paper's Appendix C:
// exponentiation by squaring over an even-power ladder with the scalar
// coefficient folded into the first multiplication of each term, so a
// degree-n stage consumes exactly ⌈log2(n+1)⌉ levels.
//
// Scale management is exact: a per-term planner solves for the constant
// encoding scale that makes every term land at the caller's scale, so all
// additions are between identically-scaled ciphertexts.
package hepoly

import (
	"fmt"

	"github.com/efficientfhe/smartpaf/internal/ckks"
	"github.com/efficientfhe/smartpaf/internal/paf"
)

// Evaluator evaluates odd polynomials, composite PAFs, and the derived
// ReLU/Max operators on ciphertexts.
type Evaluator struct {
	ev *ckks.Evaluator
}

// NewEvaluator wraps a CKKS evaluator (which must hold a relinearization
// key).
func NewEvaluator(ev *ckks.Evaluator) *Evaluator {
	return &Evaluator{ev: ev}
}

// evenLadder computes x^2, x^4, ..., x^(2^count) with one squaring each.
func (he *Evaluator) evenLadder(ct *ckks.Ciphertext, count int) ([]*ckks.Ciphertext, error) {
	ladder := make([]*ckks.Ciphertext, count)
	cur := ct
	for i := 0; i < count; i++ {
		sq, err := he.ev.MulRelinRescale(cur, cur)
		if err != nil {
			return nil, fmt.Errorf("hepoly: even ladder step %d: %w", i, err)
		}
		ladder[i] = sq
		cur = sq
	}
	return ladder, nil
}

// ladderSize returns how many squarings the even-power ladder needs for an
// odd polynomial of the given degree: enough to cover (degree-1)/2 in binary.
func ladderSize(degree int) int {
	m := (degree - 1) / 2
	count := 0
	for 1<<count <= m && m > 0 {
		count++
	}
	if m == 0 {
		return 0
	}
	// highest bit index of m, plus one to index the ladder
	count = 0
	for bit := 0; (1 << bit) <= m; bit++ {
		count = bit + 1
	}
	return count
}

// EvalOdd evaluates the odd polynomial p on ct. The result lands at the same
// scale as ct, ⌈log2(deg+1)⌉ levels below it.
func (he *Evaluator) EvalOdd(p *paf.OddPoly, ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	deg := p.Degree()
	need := paf.DepthOfDegree(deg)
	if ct.Level < need {
		return nil, fmt.Errorf("hepoly: degree-%d stage needs %d levels, ciphertext has %d", deg, need, ct.Level)
	}
	ladder, err := he.evenLadder(ct, ladderSize(deg))
	if err != nil {
		return nil, err
	}

	targetScale := ct.Scale
	q := he.ev.Params().Q()

	var sum *ckks.Ciphertext
	for k, c := range p.Coeffs {
		if c == 0 {
			continue
		}
		m := k // term degree 2k+1, even-power multiplier exponent sum = 2k = x^2 bits of m... m encodes ladder picks
		// Plan the chain to solve for the constant target scale.
		level := ct.Level - 1 // after the constant multiplication
		mult := 1.0           // ∏ s_e / ∏ q_used relative factor
		for bit := 0; (1 << bit) <= m; bit++ {
			if m&(1<<bit) == 0 {
				continue
			}
			e := ladder[bit]
			newLevel := min(level, e.Level) - 1
			mult *= e.Scale / float64(q[min(level, e.Level)])
			level = newLevel
		}
		constTarget := targetScale / mult

		term, err := he.ev.MulConstTargetScale(ct, c, constTarget)
		if err != nil {
			return nil, fmt.Errorf("hepoly: term degree %d: %w", 2*k+1, err)
		}
		for bit := 0; (1 << bit) <= m; bit++ {
			if m&(1<<bit) == 0 {
				continue
			}
			term, err = he.ev.MulRelinRescale(term, ladder[bit])
			if err != nil {
				return nil, fmt.Errorf("hepoly: term degree %d power 2^%d: %w", 2*k+1, bit+1, err)
			}
		}
		// Pin the exactly-planned scale to suppress float bookkeeping dust.
		term.Scale = targetScale
		if sum == nil {
			sum = term
			continue
		}
		level = min(sum.Level, term.Level)
		sum, err = he.ev.Add(he.ev.DropLevel(sum, level), he.ev.DropLevel(term, level))
		if err != nil {
			return nil, fmt.Errorf("hepoly: accumulating degree %d: %w", 2*k+1, err)
		}
	}
	if sum == nil {
		return nil, fmt.Errorf("hepoly: polynomial has no nonzero coefficients")
	}
	return sum, nil
}

// EvalComposite applies the stages of a composite PAF in order; the result
// approximates sign(message) at the input's scale, Depth() levels below.
func (he *Evaluator) EvalComposite(c *paf.Composite, ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	cur := ct
	for i, stage := range c.Stages {
		var err error
		cur, err = he.EvalOdd(stage, cur)
		if err != nil {
			return nil, fmt.Errorf("hepoly: stage %d of %s: %w", i, c.Name, err)
		}
	}
	return cur, nil
}

// scaledLastStage clones c with the final stage's coefficients multiplied by
// factor, folding a constant into the sign approximation for free.
func scaledLastStage(c *paf.Composite, factor float64) *paf.Composite {
	cc := c.Clone()
	last := cc.Stages[len(cc.Stages)-1]
	for i := range last.Coeffs {
		last.Coeffs[i] *= factor
	}
	return cc
}

// ReLU evaluates relu(x) ≈ (x + x·p(x))/2 on the ciphertext, consuming
// Depth()+1 levels.
func (he *Evaluator) ReLU(c *paf.Composite, ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	return he.ReLUScaled(c, ct, 1)
}

// ReLUScaled evaluates γ·relu(x) ≈ (γ·x + γ·x·p(x))/2 with the constant γ
// folded into the existing coefficient multiplications, so it costs no
// extra level. This is how Static Scaling's output rescaling (s·relu(x/s))
// deploys for free.
func (he *Evaluator) ReLUScaled(c *paf.Composite, ct *ckks.Ciphertext, gamma float64) (*ckks.Ciphertext, error) {
	half, err := he.EvalComposite(scaledLastStage(c, gamma/2), ct) // γ·p(x)/2
	if err != nil {
		return nil, err
	}
	prod, err := he.ev.MulRelinRescale(ct, half) // γ·x·p(x)/2
	if err != nil {
		return nil, err
	}
	xh, err := he.ev.MulConstTargetScale(ct, gamma/2, prod.Scale)
	if err != nil {
		return nil, err
	}
	xh = he.ev.DropLevel(xh, prod.Level)
	return he.ev.Add(prod, xh)
}

// Max evaluates max(a,b) ≈ ((a+b) + (a-b)·p(a-b))/2.
func (he *Evaluator) Max(c *paf.Composite, a, b *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	d, err := he.ev.Sub(a, b)
	if err != nil {
		return nil, err
	}
	half, err := he.EvalComposite(scaledLastStage(c, 0.5), d)
	if err != nil {
		return nil, err
	}
	prod, err := he.ev.MulRelinRescale(d, half)
	if err != nil {
		return nil, err
	}
	sum, err := he.ev.Add(a, b)
	if err != nil {
		return nil, err
	}
	sumh, err := he.ev.MulConstTargetScale(sum, 0.5, prod.Scale)
	if err != nil {
		return nil, err
	}
	sumh = he.ev.DropLevel(sumh, prod.Level)
	return he.ev.Add(prod, sumh)
}
