// Package paf implements Polynomial Approximated Functions: the composite
// odd polynomials that replace sign(x) — and through it ReLU and MaxPooling —
// in FHE-friendly models (paper §2.2, Table 2, Appendix B/C).
//
// A PAF is a chain of odd polynomials applied in sequence. Following the
// paper's notation (Appendix C and Eq. 7), "f∘g" applies the f stages FIRST:
// f1∘g2 ≡ g2(f1(x)). ReLU and Max are reconstructed from the sign
// approximation p as
//
//	relu(x) = (x + x·p(x)) / 2
//	max(x,y) = ((x+y) + (x-y)·p(x-y)) / 2
//
// Every evaluation has a gradient-carrying variant so PAF coefficients can be
// fine-tuned by SGD/Adam (the heart of SMART-PAF's training techniques).
package paf

import (
	"fmt"
	"math"
	"math/bits"
)

// OddPoly is a polynomial with only odd-degree terms: Coeffs[k] multiplies
// x^(2k+1). Odd parity is what makes a polynomial a sign(x) candidate.
type OddPoly struct {
	Coeffs []float64
}

// NewOddPoly copies the coefficient slice into a fresh polynomial.
func NewOddPoly(coeffs []float64) *OddPoly {
	return &OddPoly{Coeffs: append([]float64(nil), coeffs...)}
}

// Degree returns the formal degree 2·len(Coeffs)-1.
func (p *OddPoly) Degree() int { return 2*len(p.Coeffs) - 1 }

// Eval computes p(x) by Horner's rule on the x² ladder.
func (p *OddPoly) Eval(x float64) float64 {
	x2 := x * x
	acc := 0.0
	for k := len(p.Coeffs) - 1; k >= 0; k-- {
		acc = acc*x2 + p.Coeffs[k]
	}
	return acc * x
}

// Deriv computes dp/dx = Σ (2k+1)·c_k·x^(2k).
func (p *OddPoly) Deriv(x float64) float64 {
	x2 := x * x
	acc := 0.0
	pw := 1.0
	for k := 0; k < len(p.Coeffs); k++ {
		acc += float64(2*k+1) * p.Coeffs[k] * pw
		pw *= x2
	}
	return acc
}

// GradCoeffs fills grad with ∂p(x)/∂c_k = x^(2k+1).
func (p *OddPoly) GradCoeffs(x float64, grad []float64) {
	pw := x
	for k := range p.Coeffs {
		grad[k] = pw
		pw *= x * x
	}
}

// Clone deep-copies the polynomial.
func (p *OddPoly) Clone() *OddPoly { return NewOddPoly(p.Coeffs) }

// Composite is a PAF: odd polynomial stages applied first-to-last to
// approximate sign(x).
type Composite struct {
	// Name is the canonical identifier, e.g. "f2_g3".
	Name string
	// Label is the paper's display label, e.g. "f2∘g3 (12-degree)".
	Label string
	// Stages are applied in order: Stages[len-1](...Stages[0](x)).
	Stages []*OddPoly
}

// Clone deep-copies the composite (coefficients included).
func (c *Composite) Clone() *Composite {
	out := &Composite{Name: c.Name, Label: c.Label, Stages: make([]*OddPoly, len(c.Stages))}
	for i, s := range c.Stages {
		out.Stages[i] = s.Clone()
	}
	return out
}

// Eval computes the sign approximation.
func (c *Composite) Eval(x float64) float64 {
	for _, s := range c.Stages {
		x = s.Eval(x)
	}
	return x
}

// Degree returns the sum of stage degrees. Note: the paper's Table 2 labels
// f1²∘g1² as "14-degree" while its four cubic stages sum to 12; we report
// the sum and keep the paper's label in Label (see DESIGN.md).
func (c *Composite) Degree() int {
	total := 0
	for _, s := range c.Stages {
		total += s.Degree()
	}
	return total
}

// StageDepths returns ⌈log2(deg+1)⌉ per stage: the multiplicative depth each
// stage consumes under the exponentiation-by-squaring evaluation of
// Appendix C.
func (c *Composite) StageDepths() []int {
	out := make([]int, len(c.Stages))
	for i, s := range c.Stages {
		out[i] = DepthOfDegree(s.Degree())
	}
	return out
}

// Depth returns the total multiplicative depth of the sign approximation
// (the sum of stage depths; Table 2's "Multiplication Depth" row).
func (c *Composite) Depth() int {
	total := 0
	for _, d := range c.StageDepths() {
		total += d
	}
	return total
}

// DepthReLU is Depth plus the final x·p(x) product of the ReLU construction.
func (c *Composite) DepthReLU() int { return c.Depth() + 1 }

// DepthOfDegree returns ⌈log2(n+1)⌉, the depth of evaluating a degree-n
// polynomial with exponentiation by squaring (paper Appendix C).
func DepthOfDegree(n int) int {
	if n <= 0 {
		return 0
	}
	m := uint(n + 1)
	l := bits.Len(m)
	if m&(m-1) == 0 {
		return l - 1 // n+1 is an exact power of two
	}
	return l
}

// EvalWithGrad computes y = p(x), dy/dx, and the per-stage coefficient
// gradients dy/dc[stage][k]. Used by the PAF training layers.
func (c *Composite) EvalWithGrad(x float64) (y, dx float64, dc [][]float64) {
	nStages := len(c.Stages)
	// Forward pass, recording each stage input.
	inputs := make([]float64, nStages)
	v := x
	for i, s := range c.Stages {
		inputs[i] = v
		v = s.Eval(v)
	}
	y = v

	// Suffix products of stage derivatives: chain[i] = ∏_{t>i} p_t'(u_t).
	chain := make([]float64, nStages)
	prod := 1.0
	for i := nStages - 1; i >= 0; i-- {
		chain[i] = prod
		prod *= c.Stages[i].Deriv(inputs[i])
	}
	dx = prod

	dc = make([][]float64, nStages)
	for i, s := range c.Stages {
		dc[i] = make([]float64, len(s.Coeffs))
		s.GradCoeffs(inputs[i], dc[i])
		for k := range dc[i] {
			dc[i][k] *= chain[i]
		}
	}
	return y, dx, dc
}

// ReLU evaluates the PAF-approximated ReLU (x + x·p(x))/2.
func (c *Composite) ReLU(x float64) float64 {
	return (x + x*c.Eval(x)) / 2
}

// ReLUWithGrad returns relu value, d/dx and per-stage coefficient grads.
func (c *Composite) ReLUWithGrad(x float64) (y, dx float64, dc [][]float64) {
	p, dp, pdc := c.EvalWithGrad(x)
	y = (x + x*p) / 2
	dx = (1 + p + x*dp) / 2
	for i := range pdc {
		for k := range pdc[i] {
			pdc[i][k] *= x / 2
		}
	}
	return y, dx, pdc
}

// Max evaluates the PAF-approximated max ((x+y) + (x-y)·p(x-y))/2.
func (c *Composite) Max(x, y float64) float64 {
	d := x - y
	return ((x + y) + d*c.Eval(d)) / 2
}

// MaxWithGrad returns the approximated max along with ∂/∂x, ∂/∂y and the
// coefficient gradients.
func (c *Composite) MaxWithGrad(x, y float64) (m, dx, dy float64, dc [][]float64) {
	d := x - y
	p, dp, pdc := c.EvalWithGrad(d)
	m = ((x + y) + d*p) / 2
	common := (p + d*dp) / 2
	dx = 0.5 + common
	dy = 0.5 - common
	for i := range pdc {
		for k := range pdc[i] {
			pdc[i][k] *= d / 2
		}
	}
	return m, dx, dy, pdc
}

// SignError returns the maximum |p(x) - sign(x)| over |x| ∈ [eps, 1] sampled
// on a grid; a quality metric used by tests and Coefficient Tuning reports.
func (c *Composite) SignError(eps float64, grid int) float64 {
	var worst float64
	for i := 0; i <= grid; i++ {
		x := eps + (1-eps)*float64(i)/float64(grid)
		if d := math.Abs(c.Eval(x) - 1); d > worst {
			worst = d
		}
		if d := math.Abs(c.Eval(-x) + 1); d > worst {
			worst = d
		}
	}
	return worst
}

// OpCount tallies the homomorphic operations of the Appendix C evaluation
// strategy, used by the analytic latency model in internal/hepoly.
type OpCount struct {
	CtMults    int // ciphertext × ciphertext multiplications (with relin)
	ConstMults int // ciphertext × scalar multiplications (with rescale)
	Adds       int
}

// opCountOdd counts operations to evaluate one odd stage of degree d:
// the even-power ladder x², x⁴, ..., plus per-term binary products.
func opCountOdd(nCoeffs int) OpCount {
	d := 2*nCoeffs - 1
	var oc OpCount
	if d >= 3 {
		// Even powers e_{2^j}, j = 0.. such that 2^(j+1) ≤ d-1.
		for pw := 2; pw <= d-1; pw <<= 1 {
			oc.CtMults++
		}
	}
	for k := 0; k < nCoeffs; k++ {
		deg := 2*k + 1
		oc.ConstMults++
		oc.CtMults += bits.OnesCount(uint((deg - 1) / 2))
		if k > 0 {
			oc.Adds++
		}
	}
	return oc
}

// Ops returns the operation counts for the sign approximation.
func (c *Composite) Ops() OpCount {
	var total OpCount
	for _, s := range c.Stages {
		oc := opCountOdd(len(s.Coeffs))
		total.CtMults += oc.CtMults
		total.ConstMults += oc.ConstMults
		total.Adds += oc.Adds
	}
	return total
}

// OpsReLU adds the ReLU construction on top of Ops: one ct-ct product
// (x · p̃(x)), one constant multiplication (x/2) and one addition.
func (c *Composite) OpsReLU() OpCount {
	oc := c.Ops()
	oc.CtMults++
	oc.ConstMults++
	oc.Adds++
	return oc
}

// String implements fmt.Stringer.
func (c *Composite) String() string {
	return fmt.Sprintf("%s (degree %d, depth %d)", c.Name, c.Degree(), c.Depth())
}
