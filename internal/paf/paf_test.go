package paf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOddPolyEvalMatchesDirect(t *testing.T) {
	p := NewOddPoly([]float64{1.5, -0.5, 0.25})
	for _, x := range []float64{-2, -0.7, 0, 0.3, 1.9} {
		want := 1.5*x - 0.5*x*x*x + 0.25*math.Pow(x, 5)
		if got := p.Eval(x); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Eval(%g) = %g want %g", x, got, want)
		}
	}
	if p.Degree() != 5 {
		t.Fatalf("Degree = %d", p.Degree())
	}
}

func TestOddPolyDerivNumerical(t *testing.T) {
	p := NewOddPoly([]float64{2.1, -1.3, 0.4, -0.05})
	const h = 1e-6
	for _, x := range []float64{-1.1, -0.2, 0.5, 1.3} {
		num := (p.Eval(x+h) - p.Eval(x-h)) / (2 * h)
		if got := p.Deriv(x); math.Abs(got-num) > 1e-5*(1+math.Abs(num)) {
			t.Fatalf("Deriv(%g) = %g, numerical %g", x, got, num)
		}
	}
}

func TestOddPolyIsOddProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(func(c1, c3 float64, x float64) bool {
		c1 = math.Mod(c1, 10)
		c3 = math.Mod(c3, 10)
		x = math.Mod(x, 3)
		p := NewOddPoly([]float64{c1, c3})
		return math.Abs(p.Eval(-x)+p.Eval(x)) < 1e-9*(1+math.Abs(p.Eval(x)))
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestDepthOfDegree(t *testing.T) {
	cases := map[int]int{1: 1, 3: 2, 5: 3, 7: 3, 9: 4, 13: 4, 15: 4, 27: 5, 31: 5}
	for deg, want := range cases {
		if got := DepthOfDegree(deg); got != want {
			t.Errorf("DepthOfDegree(%d) = %d want %d", deg, got, want)
		}
	}
	if DepthOfDegree(0) != 0 {
		t.Error("DepthOfDegree(0) != 0")
	}
}

// TestTable2Depths pins the multiplication-depth row of the paper's Table 2.
func TestTable2Depths(t *testing.T) {
	want := map[string]int{
		FormAlpha10:  10,
		FormF1F1G1G1: 8,
		FormAlpha7:   6,
		FormF2G3:     6,
		FormF2G2:     6,
		FormF1G2:     5,
	}
	for name, depth := range want {
		c := MustNew(name)
		if got := c.Depth(); got != depth {
			t.Errorf("%s: depth %d want %d (Table 2)", name, got, depth)
		}
	}
}

// TestTable2Degrees pins the degree bookkeeping (sum of stage degrees; see
// DESIGN.md for the two rows where the paper's labels are internally
// inconsistent).
func TestTable2Degrees(t *testing.T) {
	want := map[string]int{
		FormAlpha10:  27,
		FormF1F1G1G1: 12, // paper labels this 14-degree
		FormAlpha7:   14, // paper table says 12, appendix Eq. 5 gives 7+7
		FormF2G3:     12,
		FormF2G2:     10,
		FormF1G2:     8,
	}
	for name, deg := range want {
		if got := MustNew(name).Degree(); got != deg {
			t.Errorf("%s: degree %d want %d", name, got, deg)
		}
	}
}

func TestUntunedFormsApproximateSign(t *testing.T) {
	// Untuned forms are coarse at low |x| but must be sign-like on the bulk
	// of the range; higher-precision forms must be strictly better.
	errs := map[string]float64{}
	for _, name := range AllFormsWithBaseline {
		c := MustNew(name)
		errs[name] = c.SignError(0.3, 500)
		if errs[name] > 0.75 {
			t.Errorf("%s: sign error %g on |x|∈[0.3,1] too large", name, errs[name])
		}
	}
	if errs[FormAlpha10] >= errs[FormF1G2] {
		t.Errorf("27-degree baseline (%g) should beat f1∘g2 (%g)", errs[FormAlpha10], errs[FormF1G2])
	}
}

func TestAlpha10HighPrecision(t *testing.T) {
	c := MustNew(FormAlpha10)
	if e := c.SignError(0.02, 2000); e > 1e-3 {
		t.Fatalf("α=10 sign error %g on |x|∈[0.02,1]", e)
	}
	if len(c.Stages) != 3 {
		t.Fatalf("α=10 should have 3 stages")
	}
}

func TestNewUnknownForm(t *testing.T) {
	if _, err := New("nope"); err == nil {
		t.Fatal("expected error for unknown form")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := MustNew(FormF1G2)
	b := a.Clone()
	b.Stages[0].Coeffs[0] = 99
	if a.Stages[0].Coeffs[0] == 99 {
		t.Fatal("clone shares coefficient storage")
	}
}

func TestReLUApproximation(t *testing.T) {
	c := MustNew(FormAlpha7)
	for _, x := range []float64{-1, -0.5, -0.2, 0.2, 0.5, 1} {
		want := math.Max(0, x)
		if got := c.ReLU(x); math.Abs(got-want) > 0.07 {
			t.Errorf("ReLU(%g) = %g want ≈%g", x, got, want)
		}
	}
}

func TestMaxApproximation(t *testing.T) {
	c := MustNew(FormAlpha7)
	cases := [][2]float64{{0.9, 0.1}, {-0.5, 0.5}, {0.3, 0.31}, {-0.9, -0.2}}
	for _, xy := range cases {
		want := math.Max(xy[0], xy[1])
		if got := c.Max(xy[0], xy[1]); math.Abs(got-want) > 0.08 {
			t.Errorf("Max(%g,%g) = %g want ≈%g", xy[0], xy[1], got, want)
		}
	}
}

func TestEvalWithGradNumerical(t *testing.T) {
	c := MustNew(FormF2G2)
	const h = 1e-6
	for _, x := range []float64{-0.8, -0.3, 0.4, 0.9} {
		y, dx, dc := c.EvalWithGrad(x)
		if math.Abs(y-c.Eval(x)) > 1e-12 {
			t.Fatalf("value mismatch at %g", x)
		}
		num := (c.Eval(x+h) - c.Eval(x-h)) / (2 * h)
		if math.Abs(dx-num) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("dx at %g: got %g num %g", x, dx, num)
		}
		// Coefficient gradients vs finite differences.
		for si, stage := range c.Stages {
			for k := range stage.Coeffs {
				cc := c.Clone()
				cc.Stages[si].Coeffs[k] += h
				num := (cc.Eval(x) - y) / h
				if math.Abs(dc[si][k]-num) > 1e-3*(1+math.Abs(num)) {
					t.Fatalf("dc[%d][%d] at x=%g: got %g num %g", si, k, x, dc[si][k], num)
				}
			}
		}
	}
}

func TestReLUWithGradNumerical(t *testing.T) {
	c := MustNew(FormF1G2)
	const h = 1e-6
	for _, x := range []float64{-0.7, 0.2, 0.8} {
		y, dx, dc := c.ReLUWithGrad(x)
		if math.Abs(y-c.ReLU(x)) > 1e-12 {
			t.Fatal("relu value mismatch")
		}
		num := (c.ReLU(x+h) - c.ReLU(x-h)) / (2 * h)
		if math.Abs(dx-num) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("relu dx at %g: got %g num %g", x, dx, num)
		}
		cc := c.Clone()
		cc.Stages[1].Coeffs[0] += h
		numc := (cc.ReLU(x) - y) / h
		if math.Abs(dc[1][0]-numc) > 1e-3*(1+math.Abs(numc)) {
			t.Fatalf("relu dc at %g: got %g num %g", x, dc[1][0], numc)
		}
	}
}

func TestMaxWithGradNumerical(t *testing.T) {
	c := MustNew(FormF1G2)
	const h = 1e-6
	x, y := 0.4, -0.2
	m, dx, dy, dc := c.MaxWithGrad(x, y)
	if math.Abs(m-c.Max(x, y)) > 1e-12 {
		t.Fatal("max value mismatch")
	}
	numx := (c.Max(x+h, y) - c.Max(x-h, y)) / (2 * h)
	numy := (c.Max(x, y+h) - c.Max(x, y-h)) / (2 * h)
	if math.Abs(dx-numx) > 1e-4 || math.Abs(dy-numy) > 1e-4 {
		t.Fatalf("max grads: got (%g,%g) num (%g,%g)", dx, dy, numx, numy)
	}
	cc := c.Clone()
	cc.Stages[0].Coeffs[1] += h
	numc := (cc.Max(x, y) - m) / h
	if math.Abs(dc[0][1]-numc) > 1e-3 {
		t.Fatalf("max coeff grad: got %g num %g", dc[0][1], numc)
	}
}

func TestPaperTunedTablesComplete(t *testing.T) {
	for _, name := range []string{FormF1G2, FormF2G2, FormF2G3, FormF1F1G1G1} {
		if n := PaperTunedLayers(name); n != 17 {
			t.Errorf("%s: %d published layers, want 17 (ResNet-18 ReLU count)", name, n)
		}
	}
	if PaperTunedLayers(FormAlpha10) != 0 {
		t.Error("alpha10 should have no published table")
	}
}

// TestPaperTunedCoefficientsAreSignLike validates every published layer's
// tuned PAF: on the post-CT high-probability range it must behave as a sign
// approximation (this is the property Coefficient Tuning optimizes for).
func TestPaperTunedCoefficientsAreSignLike(t *testing.T) {
	for _, name := range []string{FormF1G2, FormF2G2, FormF2G3, FormF1F1G1G1} {
		for layer := 0; layer < PaperTunedLayers(name); layer++ {
			c, err := PaperTuned(name, layer)
			if err != nil {
				t.Fatalf("%s layer %d: %v", name, layer, err)
			}
			// Tuned PAFs concentrate accuracy on the profiled range; check
			// sign-like behaviour on the central band.
			for _, x := range []float64{0.3, 0.5, 0.7} {
				if v := c.Eval(x); v < 0.5 || v > 1.5 {
					t.Errorf("%s layer %d: p(%g) = %g not sign-like", name, layer, x, v)
				}
				if v := c.Eval(-x); v > -0.5 || v < -1.5 {
					t.Errorf("%s layer %d: p(-%g) = %g not sign-like", name, layer, x, v)
				}
			}
		}
	}
}

func TestPaperTunedFallbacks(t *testing.T) {
	// alpha7 has a single shared table-less composite: falls back untuned.
	c, err := PaperTuned(FormAlpha7, 3)
	if err != nil {
		t.Fatal(err)
	}
	base := MustNew(FormAlpha7)
	if c.Stages[0].Coeffs[0] != base.Stages[0].Coeffs[0] {
		t.Fatal("expected untuned fallback")
	}
	// Out-of-range layer falls back too.
	if _, err := PaperTuned(FormF1G2, 99); err != nil {
		t.Fatal(err)
	}
}

func TestOpsCounts(t *testing.T) {
	// f1: degree 3 = {x²:1 ctmult} + term x (1 const) + term x³ (1 const, 1 ct).
	f1 := &Composite{Name: "f1", Stages: []*OddPoly{F1()}}
	oc := f1.Ops()
	if oc.CtMults != 2 || oc.ConstMults != 2 {
		t.Fatalf("f1 ops = %+v", oc)
	}
	// ReLU adds one ct mult and one const mult.
	ocr := f1.OpsReLU()
	if ocr.CtMults != oc.CtMults+1 || ocr.ConstMults != oc.ConstMults+1 {
		t.Fatalf("relu ops = %+v", ocr)
	}
	// Higher degree forms must cost strictly more ct mults.
	if MustNew(FormAlpha10).Ops().CtMults <= MustNew(FormF1G2).Ops().CtMults {
		t.Fatal("27-degree should cost more ct mults than f1∘g2")
	}
}

func TestStageDepths(t *testing.T) {
	c := MustNew(FormF1G2)
	d := c.StageDepths()
	if len(d) != 2 || d[0] != 2 || d[1] != 3 {
		t.Fatalf("f1∘g2 stage depths = %v want [2 3] (paper Table 8)", d)
	}
	if c.DepthReLU() != 6 {
		t.Fatalf("f1∘g2 ReLU depth = %d want 6", c.DepthReLU())
	}
}
