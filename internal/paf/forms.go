package paf

import (
	"fmt"
	"sort"
	"sync"

	"github.com/efficientfhe/smartpaf/internal/minimax"
)

// Base polynomials of Cheon et al. 2020 ("Efficient homomorphic comparison
// methods with optimal complexity"). The g-family constants are the
// published 2^-10-denominator values; they appear verbatim as the untuned
// initializations in the paper's Appendix B (e.g. f2 = 1.875x - 1.25x³ +
// 0.375x⁵ at layer 6 of Table 10).

// F1 returns f1(x) = (3/2)x - (1/2)x³.
func F1() *OddPoly { return NewOddPoly([]float64{1.5, -0.5}) }

// F2 returns f2(x) = (15/8)x - (10/8)x³ + (3/8)x⁵.
func F2() *OddPoly { return NewOddPoly([]float64{15.0 / 8, -10.0 / 8, 3.0 / 8}) }

// G1 returns g1(x) = (2126x - 1359x³)/2^10.
func G1() *OddPoly { return NewOddPoly([]float64{2126.0 / 1024, -1359.0 / 1024}) }

// G2 returns g2(x) = (3334x - 6108x³ + 3796x⁵)/2^10.
func G2() *OddPoly { return NewOddPoly([]float64{3334.0 / 1024, -6108.0 / 1024, 3796.0 / 1024}) }

// G3 returns g3(x) = (4589x - 16577x³ + 25614x⁵ - 12860x⁷)/2^10.
func G3() *OddPoly {
	return NewOddPoly([]float64{4589.0 / 1024, -16577.0 / 1024, 25614.0 / 1024, -12860.0 / 1024})
}

// Alpha7Stage1 and Alpha7Stage2 are the minimax composite p7 = p7,2 ∘ p7,1
// of Lee et al. 2021 with the published coefficients (paper Table 7,
// odd-degree entries only per Appendix B.1).
func Alpha7Stage1() *OddPoly {
	return NewOddPoly([]float64{7.304451, -34.68258667, 59.85965347, -31.87552261})
}

// Alpha7Stage2 is the outer refinement stage of the α=7 composite.
func Alpha7Stage2() *OddPoly {
	return NewOddPoly([]float64{2.400856, -2.631254435, 1.549126744, -0.331172943})
}

// Form names used throughout the repository (Table 2 columns).
const (
	FormAlpha10  = "alpha10"   // 27-degree minimax baseline (Lee et al.)
	FormF1F1G1G1 = "f1f1_g1g1" // f1²∘g1², the paper's 14-degree sweet spot
	FormAlpha7   = "alpha7"    // α=7 minimax composite
	FormF2G3     = "f2_g3"
	FormF2G2     = "f2_g2"
	FormF1G2     = "f1_g2"
)

// AllForms lists the PAF forms of Table 2 in descending degree order
// (the order used by every experiment table in the paper).
var AllForms = []string{FormF1F1G1G1, FormAlpha7, FormF2G3, FormF2G2, FormF1G2}

// AllFormsWithBaseline prepends the 27-degree α=10 baseline.
var AllFormsWithBaseline = append([]string{FormAlpha10}, AllForms...)

var (
	alpha10Once   sync.Once
	alpha10Stages [][]float64
	alpha10Err    error
)

// alpha10StagesCompute generates the 27-degree minimax composite with
// component degrees (13,7,7): depth 4+3+3 = 10 and summed degree 27,
// matching Table 2's α=10 row. The paper takes this polynomial from Lee et
// al. 2021; we regenerate it with our own Remez implementation
// (internal/minimax). The greedy stage-wise composition converges sharply
// for eps ≥ 0.02, where it reaches error below 2^-12 on |x| ∈ [0.02, 1] —
// comfortably exceeding the α=10 precision target on the range that matters
// after Dynamic Scaling normalizes PAF inputs into [-1, 1]. (Empirically the
// paper's own published α=7 composite has max error 0.86 near its lower
// domain edge, so a precise tail at |x| < 0.02 is not what distinguishes the
// baseline; see EXPERIMENTS.md.)
func alpha10StagesCompute() {
	alpha10Stages, _, alpha10Err = minimax.CompositeSign([]int{13, 7, 7}, 0.02)
}

// New builds a fresh Composite for the named form with its canonical
// (untuned) initialization.
func New(name string) (*Composite, error) {
	switch name {
	case FormF1G2:
		return &Composite{Name: name, Label: "f1∘g2 (8-degree, depth 5)", Stages: []*OddPoly{F1(), G2()}}, nil
	case FormF2G2:
		return &Composite{Name: name, Label: "f2∘g2 (10-degree, depth 6)", Stages: []*OddPoly{F2(), G2()}}, nil
	case FormF2G3:
		return &Composite{Name: name, Label: "f2∘g3 (12-degree, depth 6)", Stages: []*OddPoly{F2(), G3()}}, nil
	case FormAlpha7:
		return &Composite{Name: name, Label: "α=7 (14-degree, depth 6)", Stages: []*OddPoly{Alpha7Stage1(), Alpha7Stage2()}}, nil
	case FormF1F1G1G1:
		return &Composite{Name: name, Label: "f1²∘g1² (paper: 14-degree, depth 8)", Stages: []*OddPoly{F1(), F1(), G1(), G1()}}, nil
	case FormAlpha10:
		alpha10Once.Do(alpha10StagesCompute)
		if alpha10Err != nil {
			return nil, fmt.Errorf("paf: generating α=10 composite: %w", alpha10Err)
		}
		stages := make([]*OddPoly, len(alpha10Stages))
		for i, c := range alpha10Stages {
			stages[i] = NewOddPoly(c)
		}
		return &Composite{Name: name, Label: "α=10 (27-degree, depth 10)", Stages: stages}, nil
	default:
		return nil, fmt.Errorf("paf: unknown form %q (known: %v)", name, AllFormsWithBaseline)
	}
}

// MustNew is New for static form names; it panics on unknown names.
func MustNew(name string) *Composite {
	c, err := New(name)
	if err != nil {
		panic(err)
	}
	return c
}

// PaperTuned returns the post-training per-layer composite for the given
// form and ReLU layer index (0..16 for ResNet-18), built from the published
// Appendix B tables. Forms without a published table (alpha10) or layer
// indices outside the table fall back to the untuned composite.
func PaperTuned(name string, layer int) (*Composite, error) {
	base, err := New(name)
	if err != nil {
		return nil, err
	}
	table, ok := paperTunedTables[name]
	if !ok {
		return base, nil
	}
	if layer < 0 || layer >= len(table) {
		return base, nil
	}
	stages := table[layer]
	if len(stages) != len(base.Stages) {
		return nil, fmt.Errorf("paf: table for %q layer %d has %d stages, form has %d",
			name, layer, len(stages), len(base.Stages))
	}
	for i, sc := range stages {
		if len(sc) != len(base.Stages[i].Coeffs) {
			return nil, fmt.Errorf("paf: table for %q layer %d stage %d has %d coeffs, want %d",
				name, layer, i, len(sc), len(base.Stages[i].Coeffs))
		}
		base.Stages[i] = NewOddPoly(sc)
	}
	return base, nil
}

// PaperTunedLayers returns how many per-layer coefficient rows the paper
// publishes for the form (0 if none).
func PaperTunedLayers(name string) int { return len(paperTunedTables[name]) }

// FormNamesSorted returns all known form names sorted, for diagnostics.
func FormNamesSorted() []string {
	out := append([]string(nil), AllFormsWithBaseline...)
	sort.Strings(out)
	return out
}
