package ckks

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"github.com/efficientfhe/smartpaf/internal/ring"
)

// The tests in this file hammer one shared Evaluator/Encoder/Encryptor from
// many goroutines and assert the results are bit-identical to the serial
// path. Run them under `go test -race` (the Makefile's default) to turn
// every latent data race in the scheme's hot path into a failure.

// ctEqual reports whether two ciphertexts are bit-identical.
func ctEqual(a, b *Ciphertext) bool {
	return a.Level == b.Level && a.Scale == b.Scale &&
		a.C0.Equal(b.C0) && a.C1.Equal(b.C1)
}

// opSequence runs the mixed workload one worker applies to its ciphertext:
// Add, MulRelinRescale, Rotate and AddConst on independent inputs. Every
// step is deterministic, so two runs over the same input must agree bitwise.
func opSequence(t testing.TB, ev *Evaluator, ct *Ciphertext) []*Ciphertext {
	sum, err := ev.Add(ct, ct)
	if err != nil {
		t.Errorf("Add: %v", err)
		return nil
	}
	prod, err := ev.MulRelinRescale(ct, ct)
	if err != nil {
		t.Errorf("MulRelinRescale: %v", err)
		return nil
	}
	rot, err := ev.Rotate(ct, 1)
	if err != nil {
		t.Errorf("Rotate: %v", err)
		return nil
	}
	shifted, err := ev.AddConst(prod, 0.25)
	if err != nil {
		t.Errorf("AddConst: %v", err)
		return nil
	}
	resc, err := ev.Rescale(sum)
	if err != nil {
		t.Errorf("Rescale: %v", err)
		return nil
	}
	return []*Ciphertext{sum, prod, rot, shifted, resc}
}

// TestEvaluatorConcurrentSharedUse checks the tentpole property of the
// concurrency PR: one evaluator shared by many goroutines, operating on
// independent ciphertexts, produces bit-identical results to the serial
// path — with the limb worker pool both disabled and forced on.
func TestEvaluatorConcurrentSharedUse(t *testing.T) {
	tc := newTestContext(t, testLit)
	rks := tc.kg.GenRotationKeys(tc.sk, []int{1}, false)
	tc.eval.WithRotationKeys(rks)

	rng := rand.New(rand.NewSource(9))
	const nCts = 8
	cts := make([]*Ciphertext, nCts)
	for i := range cts {
		pt, err := tc.enc.Encode(randomComplex(rng, tc.params.Slots(), 0.5),
			tc.params.MaxLevel(), tc.params.DefaultScale())
		if err != nil {
			t.Fatal(err)
		}
		cts[i] = tc.encr.Encrypt(pt)
	}

	// Serial reference.
	want := make([][]*Ciphertext, nCts)
	for i, ct := range cts {
		want[i] = opSequence(t, tc.eval, ct)
		if t.Failed() {
			t.Fatalf("serial reference failed")
		}
	}

	for _, fanOut := range []int{1, 4} {
		ring.SetParallelism(fanOut)
		const rounds = 4
		var wg sync.WaitGroup
		for g := 0; g < 2*nCts; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				i := g % nCts
				for r := 0; r < rounds; r++ {
					got := opSequence(t, tc.eval, cts[i])
					if got == nil {
						return
					}
					for k := range got {
						if !ctEqual(got[k], want[i][k]) {
							t.Errorf("fanOut=%d ct %d op %d: concurrent result differs from serial", fanOut, i, k)
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
	}
	ring.SetParallelism(0)
	if t.Failed() {
		t.FailNow()
	}
}

// TestEncoderConcurrent shares one Encoder across goroutines encoding and
// decoding distinct vectors, checking bit-identical plaintexts vs serial.
func TestEncoderConcurrent(t *testing.T) {
	tc := newTestContext(t, testLit)
	rng := rand.New(rand.NewSource(31))
	const nVecs = 8
	vecs := make([][]complex128, nVecs)
	want := make([]*Plaintext, nVecs)
	for i := range vecs {
		vecs[i] = randomComplex(rng, tc.params.Slots(), 1)
		pt, err := tc.enc.Encode(vecs[i], tc.params.MaxLevel(), tc.params.DefaultScale())
		if err != nil {
			t.Fatal(err)
		}
		want[i] = pt
	}
	var wg sync.WaitGroup
	for g := 0; g < 4*nVecs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g % nVecs
			pt, err := tc.enc.Encode(vecs[i], tc.params.MaxLevel(), tc.params.DefaultScale())
			if err != nil {
				t.Errorf("Encode: %v", err)
				return
			}
			if !pt.Value.Equal(want[i].Value) {
				t.Errorf("vec %d: concurrent encode differs from serial", i)
				return
			}
			dec := tc.enc.Decode(pt)
			if maxErr(dec, vecs[i]) > 1e-6 {
				t.Errorf("vec %d: decode error %g", i, maxErr(dec, vecs[i]))
			}
		}(g)
	}
	wg.Wait()
}

// TestEncryptorConcurrent shares one Encryptor (whose sampler is the only
// mutable state in the scheme's front-end) across goroutines. Sampler draws
// interleave nondeterministically, so results are checked semantically:
// every ciphertext must decrypt back to its plaintext within CKKS noise.
func TestEncryptorConcurrent(t *testing.T) {
	tc := newTestContext(t, testLit)
	rng := rand.New(rand.NewSource(47))
	vals := randomComplex(rng, tc.params.Slots(), 0.5)
	pt, err := tc.enc.Encode(vals, tc.params.MaxLevel(), tc.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ct := tc.encr.Encrypt(pt)
			dec := tc.enc.Decode(tc.decr.Decrypt(ct))
			if e := maxErr(dec, vals); e > 1e-4 {
				t.Errorf("concurrent encrypt round-trip error %g", e)
			}
		}()
	}
	wg.Wait()
}

// TestEvaluatorConcurrentMixedWithEncode drives the full front-end —
// encode, encrypt, evaluate, decrypt, decode — concurrently over every
// shared object at once, the shape a batch-serving deployment has.
func TestEvaluatorConcurrentMixedWithEncode(t *testing.T) {
	tc := newTestContext(t, testLit)
	workers := 2 * runtime.GOMAXPROCS(0)
	if workers < 8 {
		workers = 8
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			vals := randomComplex(rng, tc.params.Slots(), 0.4)
			pt, err := tc.enc.Encode(vals, tc.params.MaxLevel(), tc.params.DefaultScale())
			if err != nil {
				t.Errorf("Encode: %v", err)
				return
			}
			ct := tc.encr.Encrypt(pt)
			sq, err := tc.eval.MulRelinRescale(ct, ct)
			if err != nil {
				t.Errorf("MulRelinRescale: %v", err)
				return
			}
			dec := tc.enc.Decode(tc.decr.Decrypt(sq))
			for i := range vals {
				want := vals[i] * vals[i]
				if d := dec[i] - want; real(d)*real(d)+imag(d)*imag(d) > 1e-6 {
					t.Errorf("worker %d slot %d: square mismatch", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
