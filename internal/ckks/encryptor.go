package ckks

import (
	"github.com/efficientfhe/smartpaf/internal/ring"
)

// Encryptor encrypts plaintexts under a public key.
type Encryptor struct {
	params  *Parameters
	pk      *PublicKey
	sampler *ring.Sampler
}

// NewEncryptor returns a deterministic (seeded) encryptor.
func NewEncryptor(params *Parameters, pk *PublicKey, seed int64) *Encryptor {
	return &Encryptor{params: params, pk: pk, sampler: ring.NewSampler(params.RingQ(), seed)}
}

// Encrypt produces (v·b + e0 + m, v·a + e1) at the plaintext's level.
func (enc *Encryptor) Encrypt(pt *Plaintext) *Ciphertext {
	rq := enc.params.RingQ()
	level := pt.Level

	v := enc.params.RingQ().SetSignedCoeffs(enc.sampler.TernarySigned(0.5), level)
	rq.NTT(v)
	e0 := enc.sampler.Gaussian(level)
	e1 := enc.sampler.Gaussian(level)
	rq.NTT(e0)
	rq.NTT(e1)

	c0 := rq.NewPoly(level)
	c1 := rq.NewPoly(level)
	rq.MulCoeffs(v, enc.pk.B.Truncate(level), c0)
	rq.Add(c0, e0, c0)
	rq.Add(c0, pt.Value, c0)
	rq.MulCoeffs(v, enc.pk.A.Truncate(level), c1)
	rq.Add(c1, e1, c1)

	return &Ciphertext{C0: c0, C1: c1, Scale: pt.Scale, Level: level}
}

// Decryptor recovers plaintexts with the secret key.
type Decryptor struct {
	params *Parameters
	sk     *SecretKey
}

// NewDecryptor returns a decryptor for sk.
func NewDecryptor(params *Parameters, sk *SecretKey) *Decryptor {
	return &Decryptor{params: params, sk: sk}
}

// Decrypt computes c0 + c1·s at the ciphertext level.
func (dec *Decryptor) Decrypt(ct *Ciphertext) *Plaintext {
	rq := dec.params.RingQ()
	m := rq.NewPoly(ct.Level)
	rq.MulCoeffs(ct.C1, dec.sk.Q.Truncate(ct.Level), m)
	rq.Add(m, ct.C0, m)
	return &Plaintext{Value: m, Scale: ct.Scale, Level: ct.Level}
}
