package ckks

import (
	"sync"

	"github.com/efficientfhe/smartpaf/internal/ring"
)

// Encryptor encrypts plaintexts under a public key. It is safe for
// concurrent use: the only mutable state is the deterministic sampler, whose
// draws are serialized under a mutex (so concurrent callers interleave the
// random stream but each still obtains a valid, fresh encryption; serial
// callers get the exact seeded sequence).
type Encryptor struct {
	params *Parameters
	pk     *PublicKey

	mu      sync.Mutex
	sampler *ring.Sampler //hennlint:guarded-by(mu)
}

// NewEncryptor returns a deterministic (seeded) encryptor.
func NewEncryptor(params *Parameters, pk *PublicKey, seed int64) *Encryptor {
	return &Encryptor{params: params, pk: pk, sampler: ring.NewSampler(params.RingQ(), seed)}
}

// Encrypt produces (v·b + e0 + m, v·a + e1) at the plaintext's level.
func (enc *Encryptor) Encrypt(pt *Plaintext) *Ciphertext {
	rq := enc.params.RingQ()
	level := pt.Level

	// Draw all randomness under the lock, in the same order as the original
	// serial path; the (deterministic) arithmetic happens outside it.
	enc.mu.Lock()
	vSigned := enc.sampler.TernarySigned(0.5)
	e0Signed := enc.sampler.GaussianSigned()
	e1Signed := enc.sampler.GaussianSigned()
	enc.mu.Unlock()

	v := rq.SetSignedCoeffs(vSigned, level)
	rq.NTT(v)
	e0 := rq.SetSignedCoeffs(e0Signed, level)
	e1 := rq.SetSignedCoeffs(e1Signed, level)
	rq.NTT(e0)
	rq.NTT(e1)

	c0 := rq.NewPoly(level)
	c1 := rq.NewPoly(level)
	rq.MulCoeffs(v, enc.pk.B.Truncate(level), c0)
	rq.Add(c0, e0, c0)
	rq.Add(c0, pt.Value, c0)
	rq.MulCoeffs(v, enc.pk.A.Truncate(level), c1)
	rq.Add(c1, e1, c1)

	return &Ciphertext{C0: c0, C1: c1, Scale: pt.Scale, Level: level}
}

// Decryptor recovers plaintexts with the secret key. It is stateless apart
// from the key and safe for concurrent use.
type Decryptor struct {
	params *Parameters
	sk     *SecretKey
}

// NewDecryptor returns a decryptor for sk.
func NewDecryptor(params *Parameters, sk *SecretKey) *Decryptor {
	return &Decryptor{params: params, sk: sk}
}

// Decrypt computes c0 + c1·s at the ciphertext level.
func (dec *Decryptor) Decrypt(ct *Ciphertext) *Plaintext {
	rq := dec.params.RingQ()
	m := rq.NewPoly(ct.Level)
	rq.MulCoeffs(ct.C1, dec.sk.Q.Truncate(ct.Level), m)
	rq.Add(m, ct.C0, m)
	return &Plaintext{Value: m, Scale: ct.Scale, Level: ct.Level}
}
