package ckks

import (
	"fmt"
	"sort"

	"github.com/efficientfhe/smartpaf/internal/parallel"
	"github.com/efficientfhe/smartpaf/internal/ring"
)

// SwitchingKey re-encrypts a ciphertext component from some source key to
// the canonical secret s, using the same per-prime gadget as
// relinearization: digit i holds (-a_i·s + e_i + P·g_i·source, a_i).
type SwitchingKey struct {
	Digits []EvaluationKeyDigit
}

// RotationKeySet holds switching keys for slot rotations (by step) and
// complex conjugation.
type RotationKeySet struct {
	keys        map[int]*SwitchingKey // step -> key for φ_{5^step}(s)
	conjugation *SwitchingKey
}

// Steps lists the normalized rotation steps the set has keys for, sorted.
func (rks *RotationKeySet) Steps() []int {
	out := make([]int, 0, len(rks.keys))
	for step := range rks.keys {
		out = append(out, step)
	}
	sort.Ints(out)
	return out
}

// HasConjugation reports whether the set carries a conjugation key.
func (rks *RotationKeySet) HasConjugation() bool { return rks.conjugation != nil }

// Key returns the switching key for a normalized step, if present. Servers
// use it to validate untrusted key material before first use.
func (rks *RotationKeySet) Key(step int) (*SwitchingKey, bool) {
	k, ok := rks.keys[step]
	return k, ok
}

// ConjugationKey returns the conjugation switching key, or nil.
func (rks *RotationKeySet) ConjugationKey() *SwitchingKey { return rks.conjugation }

// galoisElement returns the Galois exponent k of X→X^k implementing a left
// rotation of the slot vector by step positions: k = 5^step mod 2N, by
// square-and-multiply — Rotate computes this per call, so the O(step) naive
// power loop was hot-path work at large ring sizes.
func (p *Parameters) galoisElement(step int) int {
	m := 2 * p.N()
	step = ((step % (m / 4)) + m/4) % (m / 4) // rotations are mod N/2 slots
	return int(ring.PowMod(5, uint64(step), uint64(m)))
}

// applyAutomorphism computes out(X) = in(X^k) in coefficient domain, per
// limb: coefficient i maps to index i·k mod 2N, negated when it crosses N.
// The map is a bijection on [0, N), so every coefficient of out is written;
// out may come from GetPolyRaw. out must not alias in.
func applyAutomorphism(r *ring.Ring, in *ring.Poly, k int, out *ring.Poly) {
	n := r.N
	m := 2 * n
	for limb := range in.Coeffs {
		q := r.Moduli[limb].Q
		src := in.Coeffs[limb]
		dst := out.Coeffs[limb]
		for i := 0; i < n; i++ {
			j := i * k % m
			if j < n {
				dst[j] = src[i]
			} else {
				dst[j-n] = ring.NegMod(src[i], q)
			}
		}
	}
}

// genSwitchingKey builds a switching key from sourceQ (NTT domain, the key
// being switched *from*) to the canonical secret. Only the Q embedding of
// the source is needed: the gadget term P·g_i·source vanishes mod P.
func (kg *KeyGenerator) genSwitchingKey(sk *SecretKey, sourceQ *ring.Poly) *SwitchingKey {
	L := kg.params.MaxLevel()
	rq := kg.params.RingQ()
	rp := kg.params.RingP()
	swk := &SwitchingKey{Digits: make([]EvaluationKeyDigit, L+1)}
	for i := 0; i <= L; i++ {
		aQ := kg.samplerQ.Uniform(L)
		aP := kg.samplerP.Uniform(0)
		eSigned := kg.samplerQ.GaussianSigned()
		eQ := rq.SetSignedCoeffs(eSigned, L)
		eP := rp.SetSignedCoeffs(eSigned, 0)
		rq.NTT(eQ)
		rp.NTT(eP)

		bQ := rq.NewPoly(L)
		rq.MulCoeffs(aQ, sk.Q, bQ)
		rq.Neg(bQ, bQ)
		rq.Add(bQ, eQ, bQ)
		qi := kg.params.Q()[i]
		pModQi := kg.params.pModQ[i]
		srcLimb := sourceQ.Coeffs[i]
		bLimb := bQ.Coeffs[i]
		for j := range bLimb {
			bLimb[j] = ring.AddMod(bLimb[j], ring.MulMod(srcLimb[j], pModQi, qi), qi)
		}

		bP := rp.NewPoly(0)
		rp.MulCoeffs(aP, sk.P, bP)
		rp.Neg(bP, bP)
		rp.Add(bP, eP, bP)
		swk.Digits[i] = EvaluationKeyDigit{BQ: bQ, AQ: aQ, BP: bP, AP: aP}
	}
	return swk
}

// deriveSeed mixes the generator seed with a per-key tag (splitmix64 finisher)
// so every switching key draws from an independent deterministic stream — the
// set is reproducible regardless of generation order or worker count.
func deriveSeed(seed, tag int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(tag)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// GenRotationKeys builds switching keys for the given rotation steps
// (positive = rotate slot vector left) and, when conjugation is true, for
// complex conjugation. Keys are independent, so generation fans across all
// cores (rotation-key sets dominate serving-session setup otherwise); each
// key's randomness is derived from the generator seed and its Galois element,
// keeping the result deterministic under any schedule.
func (kg *KeyGenerator) GenRotationKeys(sk *SecretKey, steps []int, conjugation bool) *RotationKeySet {
	uniq := make([]int, 0, len(steps))
	seen := map[int]bool{}
	for _, step := range steps {
		norm := normalizeStep(step, kg.params.Slots())
		if norm == 0 || seen[norm] {
			continue
		}
		seen[norm] = true
		uniq = append(uniq, norm)
	}

	jobs := len(uniq)
	if conjugation {
		jobs++
	}
	// The coefficient-domain secret is the same for every key: compute it
	// once and share it read-only across the jobs (applyAutomorphism only
	// reads its source). The P embedding is never needed — the gadget term
	// P·g_i·source vanishes mod P.
	rq := kg.params.RingQ()
	skCoeff := sk.Q.CopyNew()
	rq.INTT(skCoeff)

	generated := make([]*SwitchingKey, jobs)
	// The error func is vestigial here (key generation cannot fail); parallel.For
	// is the repo-wide index fan.
	_ = parallel.For(jobs, parallel.Workers(-1), func(i int) error {
		k := 2*kg.params.N() - 1 // conjugation element, used by the extra job
		if i < len(uniq) {
			k = kg.params.galoisElement(uniq[i])
		}
		sub := &KeyGenerator{
			params:   kg.params,
			samplerQ: ring.NewSampler(kg.params.RingQ(), deriveSeed(kg.seed, int64(k))),
			samplerP: ring.NewSampler(kg.params.RingP(), deriveSeed(kg.seed, int64(k))^0x5eed),
		}
		// Source secret φ_k(s) in NTT domain over Q.
		srcQ := rq.NewPoly(skCoeff.Level())
		applyAutomorphism(rq, skCoeff, k, srcQ)
		rq.NTT(srcQ)
		generated[i] = sub.genSwitchingKey(sk, srcQ)
		return nil
	})

	rks := &RotationKeySet{keys: make(map[int]*SwitchingKey, len(uniq))}
	for i, norm := range uniq {
		rks.keys[norm] = generated[i]
	}
	if conjugation {
		rks.conjugation = generated[len(uniq)]
	}
	return rks
}

func normalizeStep(step, slots int) int {
	return ((step % slots) + slots) % slots
}

// WithRotationKeys attaches rotation keys to the evaluator. It mutates the
// evaluator and must be called during setup, before the evaluator is shared
// across goroutines.
func (ev *Evaluator) WithRotationKeys(rks *RotationKeySet) *Evaluator {
	ev.rks = rks
	return ev
}

// Rotate rotates the slot vector left by step positions (z_i ← z_{i+step}).
// Negative steps rotate right. Requires a rotation key for the normalized
// step.
func (ev *Evaluator) Rotate(ct *Ciphertext, step int) (*Ciphertext, error) {
	norm := normalizeStep(step, ev.params.Slots())
	if norm == 0 {
		return ct.CopyNew(), nil
	}
	if ev.rks == nil {
		return nil, fmt.Errorf("ckks: evaluator has no rotation keys")
	}
	swk, ok := ev.rks.keys[norm]
	if !ok {
		return nil, fmt.Errorf("ckks: no rotation key for step %d", norm)
	}
	return ev.applyGalois(ct, ev.params.galoisElement(norm), swk)
}

// Conjugate applies complex conjugation to all slots.
func (ev *Evaluator) Conjugate(ct *Ciphertext) (*Ciphertext, error) {
	if ev.rks == nil || ev.rks.conjugation == nil {
		return nil, fmt.Errorf("ckks: evaluator has no conjugation key")
	}
	return ev.applyGalois(ct, 2*ev.params.N()-1, ev.rks.conjugation)
}

// applyGalois maps (c0, c1) to (φ(c0) + KS(φ(c1)), KS(φ(c1))) under the
// switching key for φ(s). All temporaries come from the ring pool: one
// coefficient-domain scratch serves both components, the automorphism
// destinations are fully overwritten (so raw pool polys suffice), and the
// two polys that survive into the result are simply never returned.
func (ev *Evaluator) applyGalois(ct *Ciphertext, k int, swk *SwitchingKey) (*Ciphertext, error) {
	mark := stageClock()
	rq := ev.params.RingQ()
	level := ct.Level

	tmp := rq.GetPolyRaw(level)
	copyLimbs(tmp, ct.C1, level)
	rq.INTT(tmp)
	c1 := rq.GetPolyRaw(level)
	applyAutomorphism(rq, tmp, k, c1)
	rq.NTT(c1)

	ks0, ks1 := ev.keySwitch(c1, swk.Digits, level)
	rq.PutPoly(c1)

	copyLimbs(tmp, ct.C0, level)
	rq.INTT(tmp)
	c0 := rq.GetPolyRaw(level)
	applyAutomorphism(rq, tmp, k, c0)
	rq.NTT(c0)
	rq.PutPoly(tmp)

	out := &Ciphertext{C0: c0, C1: ks1, Scale: ct.Scale, Level: level}
	rq.Add(c0, ks0, out.C0)
	rq.PutPoly(ks0)
	stageDone("rotate", mark)
	return out, nil
}

// copyLimbs copies limbs 0..level of src into dst.
func copyLimbs(dst, src *ring.Poly, level int) {
	for i := 0; i <= level; i++ {
		copy(dst.Coeffs[i], src.Coeffs[i])
	}
}
