package ckks

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestStageObserver: an installed observer sees the primitive stages a
// rotation pipeline executes, with plausible durations, and uninstalling
// it stops the reports. The observer is process-global, so the test
// restores the disabled state before returning.
func TestStageObserver(t *testing.T) {
	tc, _ := newRotationContext(t, []int{1}, false)
	rng := rand.New(rand.NewSource(31))
	values := randomComplex(rng, tc.params.Slots(), 1)
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encr.Encrypt(pt)

	var mu sync.Mutex
	seen := map[string]time.Duration{}
	SetStageObserver(func(stage string, d time.Duration) {
		if d < 0 {
			t.Errorf("stage %s reported negative duration %v", stage, d)
		}
		mu.Lock()
		seen[stage] += d
		mu.Unlock()
	})
	defer SetStageObserver(nil)

	if _, err := tc.eval.Rotate(ct, 1); err != nil {
		t.Fatal(err)
	}
	dec := tc.eval.DecomposeHoisted(ct)
	if _, err := tc.eval.RotateHoisted(dec, 1); err != nil {
		t.Fatal(err)
	}
	dec.Release()
	prod := tc.eval.MulPlain(ct, pt)
	if _, err := tc.eval.Rescale(prod); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale()); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	for _, stage := range []string{"rotate", "key_switch", "decompose_hoisted", "rotate_hoisted", "rescale", "encode"} {
		if _, ok := seen[stage]; !ok {
			t.Errorf("stage %q never observed; saw %v", stage, seen)
		}
	}

	// Uninstall and confirm silence.
	SetStageObserver(nil)
	before := len(seen)
	if _, err := tc.eval.Rotate(ct, 1); err != nil {
		t.Fatal(err)
	}
	if len(seen) != before {
		t.Fatal("observer fired after uninstall")
	}
}
