package ckks

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/efficientfhe/smartpaf/internal/ring"
)

// Binary serialization for the objects that cross the network in a private
// inference deployment: the client ships an encrypted input and the public
// evaluation keys; the server returns an encrypted result. Parameters
// serialize as their literal — prime generation is deterministic, so both
// sides derive identical chains.

const marshalMagic = uint32(0x5AF7CC05)

// Per-object magics: every wire format leads with its own constant so a
// mis-routed or corrupted payload is rejected at the front door instead
// of deep inside a length-prefixed structure (enforced by hennlint's
// wiremagic analyzer). 0x5AF7CC06 is rotationKeyMagic below; 07 and 08
// belong to the henn and registry packages.
const (
	ciphertextMagic   = uint32(0x5AF7CC09)
	publicKeyMagic    = uint32(0x5AF7CC0A)
	relinKeyMagic     = uint32(0x5AF7CC0B)
	switchingKeyMagic = uint32(0x5AF7CC0C)
)

// readMagic consumes and checks a leading magic constant.
func readMagic(r io.Reader, want uint32, what string) error {
	magic, err := readU32(r)
	if err != nil {
		return err
	}
	if magic != want {
		return fmt.Errorf("ckks: bad %s magic %#x", what, magic)
	}
	return nil
}

func writeU32(w io.Writer, v uint32) error { return binary.Write(w, binary.LittleEndian, v) }
func writeU64(w io.Writer, v uint64) error { return binary.Write(w, binary.LittleEndian, v) }
func readU32(r io.Reader) (uint32, error) {
	var v uint32
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}
func readU64(r io.Reader) (uint64, error) {
	var v uint64
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

func writePoly(w io.Writer, p *ring.Poly) error {
	if err := writeU32(w, uint32(len(p.Coeffs))); err != nil {
		return err
	}
	if err := writeU32(w, uint32(len(p.Coeffs[0]))); err != nil {
		return err
	}
	for _, limb := range p.Coeffs {
		if err := binary.Write(w, binary.LittleEndian, limb); err != nil {
			return err
		}
	}
	return nil
}

func readPoly(r io.Reader) (*ring.Poly, error) {
	limbs, err := readU32(r)
	if err != nil {
		return nil, err
	}
	n, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if limbs == 0 || limbs > 64 || n == 0 || n > 1<<20 {
		return nil, fmt.Errorf("ckks: implausible poly header (%d limbs, N=%d)", limbs, n)
	}
	p := &ring.Poly{Coeffs: make([][]uint64, limbs)}
	for i := range p.Coeffs {
		p.Coeffs[i] = make([]uint64, n)
		if err := binary.Read(r, binary.LittleEndian, p.Coeffs[i]); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// checkSameDegree rejects deserialized structures whose component polynomials
// disagree on the ring degree N. readPoly validates each poly in isolation;
// without this cross-check a hostile payload can pair components from
// different rings and corrupt later arithmetic instead of erroring at the
// boundary.
func checkSameDegree(ps ...*ring.Poly) error {
	n := len(ps[0].Coeffs[0])
	for _, p := range ps[1:] {
		if len(p.Coeffs[0]) != n {
			return fmt.Errorf("ckks: component ring degrees disagree (%d vs %d)", n, len(p.Coeffs[0]))
		}
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (lit ParametersLiteral) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := writeU32(&buf, marshalMagic); err != nil {
		return nil, err
	}
	for _, v := range []uint32{uint32(lit.LogN), uint32(lit.LogP), uint32(lit.LogScale), uint32(len(lit.LogQ))} {
		if err := writeU32(&buf, v); err != nil {
			return nil, err
		}
	}
	for _, q := range lit.LogQ {
		if err := writeU32(&buf, uint32(q)); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (lit *ParametersLiteral) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	magic, err := readU32(r)
	if err != nil {
		return err
	}
	if magic != marshalMagic {
		return fmt.Errorf("ckks: bad magic %#x", magic)
	}
	var hdr [4]uint32
	for i := range hdr {
		if hdr[i], err = readU32(r); err != nil {
			return err
		}
	}
	lit.LogN, lit.LogP, lit.LogScale = int(hdr[0]), int(hdr[1]), int(hdr[2])
	nq := int(hdr[3])
	if nq <= 0 || nq > 64 {
		return fmt.Errorf("ckks: implausible chain length %d", nq)
	}
	lit.LogQ = make([]int, nq)
	for i := range lit.LogQ {
		v, err := readU32(r)
		if err != nil {
			return err
		}
		lit.LogQ[i] = int(v)
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (ct *Ciphertext) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := writeU32(&buf, ciphertextMagic); err != nil {
		return nil, err
	}
	if err := writeU32(&buf, uint32(ct.Level)); err != nil {
		return nil, err
	}
	if err := writeU64(&buf, uint64(floatBits(ct.Scale))); err != nil {
		return nil, err
	}
	if err := writePoly(&buf, ct.C0); err != nil {
		return nil, err
	}
	if err := writePoly(&buf, ct.C1); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (ct *Ciphertext) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	if err := readMagic(r, ciphertextMagic, "ciphertext"); err != nil {
		return err
	}
	lvl, err := readU32(r)
	if err != nil {
		return err
	}
	bits, err := readU64(r)
	if err != nil {
		return err
	}
	if ct.C0, err = readPoly(r); err != nil {
		return err
	}
	if ct.C1, err = readPoly(r); err != nil {
		return err
	}
	ct.Level = int(lvl)
	ct.Scale = floatFromBits(bits)
	if math.IsNaN(ct.Scale) || math.IsInf(ct.Scale, 0) || ct.Scale <= 0 {
		return fmt.Errorf("ckks: implausible ciphertext scale %g", ct.Scale)
	}
	if ct.C0.Level() != ct.Level || ct.C1.Level() != ct.Level {
		return fmt.Errorf("ckks: ciphertext level %d does not match %d/%d limbs",
			ct.Level, ct.C0.Level(), ct.C1.Level())
	}
	return checkSameDegree(ct.C0, ct.C1)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (pk *PublicKey) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := writeU32(&buf, publicKeyMagic); err != nil {
		return nil, err
	}
	if err := writePoly(&buf, pk.B); err != nil {
		return nil, err
	}
	if err := writePoly(&buf, pk.A); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (pk *PublicKey) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	if err := readMagic(r, publicKeyMagic, "public-key"); err != nil {
		return err
	}
	var err error
	if pk.B, err = readPoly(r); err != nil {
		return err
	}
	if pk.A, err = readPoly(r); err != nil {
		return err
	}
	if pk.B.Level() != pk.A.Level() {
		return fmt.Errorf("ckks: public key components have %d/%d limbs", pk.B.Level()+1, pk.A.Level()+1)
	}
	return checkSameDegree(pk.B, pk.A)
}

// writeDigits serializes a gadget digit list (shared by relinearization and
// switching keys, which have identical wire layouts).
func writeDigits(w io.Writer, digits []EvaluationKeyDigit) error {
	if err := writeU32(w, uint32(len(digits))); err != nil {
		return err
	}
	for i := range digits {
		d := &digits[i]
		for _, p := range []*ring.Poly{d.BQ, d.AQ, d.BP, d.AP} {
			if err := writePoly(w, p); err != nil {
				return err
			}
		}
	}
	return nil
}

// readDigits deserializes a gadget digit list, enforcing one ring degree
// across every component of every digit.
func readDigits(r io.Reader) ([]EvaluationKeyDigit, error) {
	n, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if n == 0 || n > 64 {
		return nil, fmt.Errorf("ckks: implausible digit count %d", n)
	}
	digits := make([]EvaluationKeyDigit, n)
	for i := range digits {
		d := &digits[i]
		for _, dst := range []**ring.Poly{&d.BQ, &d.AQ, &d.BP, &d.AP} {
			if *dst, err = readPoly(r); err != nil {
				return nil, err
			}
		}
		if err := checkSameDegree(d.BQ, d.AQ, d.BP, d.AP); err != nil {
			return nil, err
		}
		if err := checkSameDegree(digits[0].BQ, d.BQ); err != nil {
			return nil, err
		}
		// The key-switch loop indexes all four components in lockstep, so
		// limb counts must agree within a digit and across the digit list.
		if d.BQ.Level() != d.AQ.Level() || d.BP.Level() != d.AP.Level() ||
			d.BQ.Level() != digits[0].BQ.Level() || d.BP.Level() != digits[0].BP.Level() {
			return nil, fmt.Errorf("ckks: digit %d limb counts disagree (%d/%d Q, %d/%d P)",
				i, d.BQ.Level()+1, d.AQ.Level()+1, d.BP.Level()+1, d.AP.Level()+1)
		}
	}
	return digits, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (rlk *RelinearizationKey) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := writeU32(&buf, relinKeyMagic); err != nil {
		return nil, err
	}
	if err := writeDigits(&buf, rlk.Digits); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (rlk *RelinearizationKey) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	if err := readMagic(r, relinKeyMagic, "relinearization-key"); err != nil {
		return err
	}
	digits, err := readDigits(r)
	if err != nil {
		return err
	}
	rlk.Digits = digits
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (swk *SwitchingKey) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := writeU32(&buf, switchingKeyMagic); err != nil {
		return nil, err
	}
	if err := writeDigits(&buf, swk.Digits); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
// The magic applies to a standalone switching key; RotationKeySet frames
// its members itself (the set-level magic covers them) and writes digit
// lists directly.
func (swk *SwitchingKey) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	if err := readMagic(r, switchingKeyMagic, "switching-key"); err != nil {
		return err
	}
	digits, err := readDigits(r)
	if err != nil {
		return err
	}
	swk.Digits = digits
	return nil
}

// rotationKeyMagic distinguishes a rotation-key-set payload; the set is the
// largest object a client uploads, so a cheap front check beats failing deep
// inside a digit list.
const rotationKeyMagic = uint32(0x5AF7CC06)

// MarshalBinary implements encoding.BinaryMarshaler. Steps are written in
// sorted order so equal sets serialize identically.
func (rks *RotationKeySet) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := writeU32(&buf, rotationKeyMagic); err != nil {
		return nil, err
	}
	steps := rks.Steps()
	if err := writeU32(&buf, uint32(len(steps))); err != nil {
		return nil, err
	}
	for _, step := range steps {
		if err := writeU32(&buf, uint32(step)); err != nil {
			return nil, err
		}
		if err := writeDigits(&buf, rks.keys[step].Digits); err != nil {
			return nil, err
		}
	}
	conj := uint32(0)
	if rks.conjugation != nil {
		conj = 1
	}
	if err := writeU32(&buf, conj); err != nil {
		return nil, err
	}
	if rks.conjugation != nil {
		if err := writeDigits(&buf, rks.conjugation.Digits); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (rks *RotationKeySet) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	magic, err := readU32(r)
	if err != nil {
		return err
	}
	if magic != rotationKeyMagic {
		return fmt.Errorf("ckks: bad rotation-key magic %#x", magic)
	}
	n, err := readU32(r)
	if err != nil {
		return err
	}
	if n > 1<<16 {
		return fmt.Errorf("ckks: implausible rotation-key count %d", n)
	}
	// Keys must agree on one shape across the whole set (readDigits only
	// checks within a key) — a set mixing ring degrees or chain lengths
	// would panic the key-switch loop instead of erroring here.
	var ref []EvaluationKeyDigit
	checkShape := func(digits []EvaluationKeyDigit) error {
		if ref == nil {
			ref = digits
			return nil
		}
		if len(digits) != len(ref) {
			return fmt.Errorf("ckks: rotation keys disagree on digit count (%d vs %d)", len(digits), len(ref))
		}
		if digits[0].BQ.Level() != ref[0].BQ.Level() || digits[0].BP.Level() != ref[0].BP.Level() {
			return fmt.Errorf("ckks: rotation keys disagree on limb counts")
		}
		return checkSameDegree(ref[0].BQ, digits[0].BQ)
	}
	keys := make(map[int]*SwitchingKey, n)
	for i := uint32(0); i < n; i++ {
		step, err := readU32(r)
		if err != nil {
			return err
		}
		if step == 0 || step > 1<<20 {
			return fmt.Errorf("ckks: implausible rotation step %d", step)
		}
		if _, dup := keys[int(step)]; dup {
			return fmt.Errorf("ckks: duplicate rotation step %d", step)
		}
		digits, err := readDigits(r)
		if err != nil {
			return err
		}
		if err := checkShape(digits); err != nil {
			return err
		}
		keys[int(step)] = &SwitchingKey{Digits: digits}
	}
	conj, err := readU32(r)
	if err != nil {
		return err
	}
	var conjKey *SwitchingKey
	switch conj {
	case 0:
	case 1:
		digits, err := readDigits(r)
		if err != nil {
			return err
		}
		if err := checkShape(digits); err != nil {
			return err
		}
		conjKey = &SwitchingKey{Digits: digits}
	default:
		return fmt.Errorf("ckks: implausible conjugation flag %d", conj)
	}
	rks.keys = keys
	rks.conjugation = conjKey
	return nil
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
