package ckks

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/efficientfhe/smartpaf/internal/ring"
)

// Binary serialization for the objects that cross the network in a private
// inference deployment: the client ships an encrypted input and the public
// evaluation keys; the server returns an encrypted result. Parameters
// serialize as their literal — prime generation is deterministic, so both
// sides derive identical chains.

const marshalMagic = uint32(0x5AF7CC05)

func writeU32(w io.Writer, v uint32) error { return binary.Write(w, binary.LittleEndian, v) }
func writeU64(w io.Writer, v uint64) error { return binary.Write(w, binary.LittleEndian, v) }
func readU32(r io.Reader) (uint32, error) {
	var v uint32
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}
func readU64(r io.Reader) (uint64, error) {
	var v uint64
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

func writePoly(w io.Writer, p *ring.Poly) error {
	if err := writeU32(w, uint32(len(p.Coeffs))); err != nil {
		return err
	}
	if err := writeU32(w, uint32(len(p.Coeffs[0]))); err != nil {
		return err
	}
	for _, limb := range p.Coeffs {
		if err := binary.Write(w, binary.LittleEndian, limb); err != nil {
			return err
		}
	}
	return nil
}

func readPoly(r io.Reader) (*ring.Poly, error) {
	limbs, err := readU32(r)
	if err != nil {
		return nil, err
	}
	n, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if limbs == 0 || limbs > 64 || n == 0 || n > 1<<20 {
		return nil, fmt.Errorf("ckks: implausible poly header (%d limbs, N=%d)", limbs, n)
	}
	p := &ring.Poly{Coeffs: make([][]uint64, limbs)}
	for i := range p.Coeffs {
		p.Coeffs[i] = make([]uint64, n)
		if err := binary.Read(r, binary.LittleEndian, p.Coeffs[i]); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (lit ParametersLiteral) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := writeU32(&buf, marshalMagic); err != nil {
		return nil, err
	}
	for _, v := range []uint32{uint32(lit.LogN), uint32(lit.LogP), uint32(lit.LogScale), uint32(len(lit.LogQ))} {
		if err := writeU32(&buf, v); err != nil {
			return nil, err
		}
	}
	for _, q := range lit.LogQ {
		if err := writeU32(&buf, uint32(q)); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (lit *ParametersLiteral) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	magic, err := readU32(r)
	if err != nil {
		return err
	}
	if magic != marshalMagic {
		return fmt.Errorf("ckks: bad magic %#x", magic)
	}
	var hdr [4]uint32
	for i := range hdr {
		if hdr[i], err = readU32(r); err != nil {
			return err
		}
	}
	lit.LogN, lit.LogP, lit.LogScale = int(hdr[0]), int(hdr[1]), int(hdr[2])
	nq := int(hdr[3])
	if nq <= 0 || nq > 64 {
		return fmt.Errorf("ckks: implausible chain length %d", nq)
	}
	lit.LogQ = make([]int, nq)
	for i := range lit.LogQ {
		v, err := readU32(r)
		if err != nil {
			return err
		}
		lit.LogQ[i] = int(v)
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (ct *Ciphertext) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := writeU32(&buf, uint32(ct.Level)); err != nil {
		return nil, err
	}
	if err := writeU64(&buf, uint64(floatBits(ct.Scale))); err != nil {
		return nil, err
	}
	if err := writePoly(&buf, ct.C0); err != nil {
		return nil, err
	}
	if err := writePoly(&buf, ct.C1); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (ct *Ciphertext) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	lvl, err := readU32(r)
	if err != nil {
		return err
	}
	bits, err := readU64(r)
	if err != nil {
		return err
	}
	if ct.C0, err = readPoly(r); err != nil {
		return err
	}
	if ct.C1, err = readPoly(r); err != nil {
		return err
	}
	ct.Level = int(lvl)
	ct.Scale = floatFromBits(bits)
	if ct.C0.Level() != ct.Level || ct.C1.Level() != ct.Level {
		return fmt.Errorf("ckks: ciphertext level %d does not match %d/%d limbs",
			ct.Level, ct.C0.Level(), ct.C1.Level())
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (pk *PublicKey) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := writePoly(&buf, pk.B); err != nil {
		return nil, err
	}
	if err := writePoly(&buf, pk.A); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (pk *PublicKey) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	var err error
	if pk.B, err = readPoly(r); err != nil {
		return err
	}
	pk.A, err = readPoly(r)
	return err
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (rlk *RelinearizationKey) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := writeU32(&buf, uint32(len(rlk.Digits))); err != nil {
		return nil, err
	}
	for i := range rlk.Digits {
		d := &rlk.Digits[i]
		for _, p := range []*ring.Poly{d.BQ, d.AQ, d.BP, d.AP} {
			if err := writePoly(&buf, p); err != nil {
				return nil, err
			}
		}
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (rlk *RelinearizationKey) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	n, err := readU32(r)
	if err != nil {
		return err
	}
	if n == 0 || n > 64 {
		return fmt.Errorf("ckks: implausible digit count %d", n)
	}
	rlk.Digits = make([]EvaluationKeyDigit, n)
	for i := range rlk.Digits {
		d := &rlk.Digits[i]
		for _, dst := range []**ring.Poly{&d.BQ, &d.AQ, &d.BP, &d.AP} {
			if *dst, err = readPoly(r); err != nil {
				return err
			}
		}
	}
	return nil
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
