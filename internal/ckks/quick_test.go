package ckks

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests on the homomorphic invariants: for random plaintext
// vectors, the scheme must commute with the corresponding slot-wise
// arithmetic within noise tolerance.

func quickVectors(seed int64, n int, bound float64) ([]complex128, []complex128) {
	rng := rand.New(rand.NewSource(seed))
	a := make([]complex128, n)
	b := make([]complex128, n)
	for i := range a {
		a[i] = complex((rng.Float64()*2-1)*bound, (rng.Float64()*2-1)*bound)
		b[i] = complex((rng.Float64()*2-1)*bound, (rng.Float64()*2-1)*bound)
	}
	return a, b
}

func TestQuickHomomorphicAddition(t *testing.T) {
	tc := newTestContext(t, testLit)
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(1))}
	err := quick.Check(func(seed int64) bool {
		a, b := quickVectors(seed, tc.params.Slots(), 1)
		pa, _ := tc.enc.Encode(a, 2, tc.params.DefaultScale())
		pb, _ := tc.enc.Encode(b, 2, tc.params.DefaultScale())
		sum, err := tc.eval.Add(tc.encr.Encrypt(pa), tc.encr.Encrypt(pb))
		if err != nil {
			return false
		}
		got := tc.enc.Decode(tc.decr.Decrypt(sum))
		for i := range a {
			if cmplx.Abs(got[i]-(a[i]+b[i])) > 1e-5 {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestQuickHomomorphicMultiplication(t *testing.T) {
	tc := newTestContext(t, testLit)
	cfg := &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(2))}
	err := quick.Check(func(seed int64) bool {
		a, b := quickVectors(seed, tc.params.Slots(), 1)
		pa, _ := tc.enc.Encode(a, tc.params.MaxLevel(), tc.params.DefaultScale())
		pb, _ := tc.enc.Encode(b, tc.params.MaxLevel(), tc.params.DefaultScale())
		prod, err := tc.eval.MulRelinRescale(tc.encr.Encrypt(pa), tc.encr.Encrypt(pb))
		if err != nil {
			return false
		}
		got := tc.enc.Decode(tc.decr.Decrypt(prod))
		for i := range a {
			if cmplx.Abs(got[i]-a[i]*b[i]) > 1e-4 {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestQuickScalarDistributivity(t *testing.T) {
	// c·(a + b) == c·a + c·b through the encrypted path.
	tc := newTestContext(t, testLit)
	cfg := &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(3))}
	err := quick.Check(func(seed int64, craw int8) bool {
		c := float64(craw)/32 + 0.25
		a, b := quickVectors(seed, tc.params.Slots(), 1)
		pa, _ := tc.enc.Encode(a, tc.params.MaxLevel(), tc.params.DefaultScale())
		pb, _ := tc.enc.Encode(b, tc.params.MaxLevel(), tc.params.DefaultScale())
		ca := tc.encr.Encrypt(pa)
		cb := tc.encr.Encrypt(pb)

		sum, err := tc.eval.Add(ca, cb)
		if err != nil {
			return false
		}
		lhs, err := tc.eval.MulConstTargetScale(sum, c, sum.Scale)
		if err != nil {
			return false
		}
		ta, err := tc.eval.MulConstTargetScale(ca, c, ca.Scale)
		if err != nil {
			return false
		}
		tb, err := tc.eval.MulConstTargetScale(cb, c, cb.Scale)
		if err != nil {
			return false
		}
		rhs, err := tc.eval.Add(ta, tb)
		if err != nil {
			return false
		}
		gl := tc.enc.Decode(tc.decr.Decrypt(lhs))
		gr := tc.enc.Decode(tc.decr.Decrypt(rhs))
		for i := range gl {
			if cmplx.Abs(gl[i]-gr[i]) > 1e-5 {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestPrecisionStats(t *testing.T) {
	want := []complex128{1, 2, 3}
	got := []complex128{1 + 0.001i, 2, 3.002}
	s := Precision(want, got)
	if s.Slots != 3 {
		t.Fatalf("slots %d", s.Slots)
	}
	if math.Abs(s.MaxErr-0.002) > 1e-12 {
		t.Fatalf("max err %g", s.MaxErr)
	}
	if s.MinLog2Prec < 8 || s.MinLog2Prec > 10 {
		t.Fatalf("min precision %g bits", s.MinLog2Prec)
	}
	exact := Precision(want, want)
	if !math.IsInf(exact.MinLog2Prec, 1) {
		t.Fatal("exact match should have infinite precision")
	}
	r := PrecisionReals([]float64{1, 2}, []float64{1, 2.5})
	if math.Abs(r.MaxErr-0.5) > 1e-12 {
		t.Fatalf("real max err %g", r.MaxErr)
	}
	if r.String() == "" {
		t.Fatal("empty string rendering")
	}
}
