// Package ckks implements a from-scratch RNS-CKKS approximate homomorphic
// encryption scheme (Cheon–Kim–Kim–Song) on top of internal/ring.
//
// It supports the full leveled workflow needed to evaluate polynomial
// approximated functions (PAFs) on encrypted tensors: canonical-embedding
// encoding into N/2 complex slots, public-key encryption,
// addition, ciphertext and plaintext multiplication, relinearization via a
// per-prime gadget with one special prime, rescaling, and exact scale
// management for constant multiplication.
//
// The implementation favours clarity and reproducibility over raw speed and
// deterministic math/rand sampling over cryptographic randomness; see
// DESIGN.md for the substitution rationale.
//
// All scheme objects (Encoder, Encryptor, Decryptor, Evaluator) are safe
// for concurrent use after construction: one set of keys and one evaluator
// serve any number of goroutines, and independent RNS-limb work inside each
// operation is additionally fanned across the internal/ring worker pool.
package ckks

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"github.com/efficientfhe/smartpaf/internal/ring"
)

// ParametersLiteral describes a CKKS parameter set by bit sizes.
// LogQ[0] is the "base" prime consumed by decryption headroom; the remaining
// entries are the rescaling primes (one per multiplicative level). LogP is
// the special prime used only during key switching.
type ParametersLiteral struct {
	LogN     int   // ring degree N = 1 << LogN
	LogQ     []int // bit sizes of the ciphertext modulus chain q_0..q_L
	LogP     int   // bit size of the key-switching special prime
	LogScale int   // default encoding scale Δ = 2^LogScale
}

// Parameters is a compiled parameter set: concrete primes, rings and the
// precomputed constants shared by all scheme objects.
type Parameters struct {
	logN     int
	logScale int
	qi       []uint64 // ciphertext primes q_0..q_L
	p        uint64   // special prime
	ringQ    *ring.Ring
	ringP    *ring.Ring // degree-N ring with the single special prime

	// qInvMod[l][j] = q_l^{-1} mod q_j (defined for j < l), used by Rescale.
	qInvMod [][]uint64
	// pInvModQ[j] = P^{-1} mod q_j; pModQ[j] = P mod q_j.
	pInvModQ []uint64
	pModQ    []uint64

	// galoisIdx caches the NTT-domain slot permutation of each Galois
	// automorphism (k -> []int32), built lazily on first use. Read-mostly, so
	// a sync.Map keeps Parameters shareable across goroutines.
	galoisIdx sync.Map
}

// NewParameters compiles a literal into concrete primes and rings.
func NewParameters(lit ParametersLiteral) (*Parameters, error) {
	if lit.LogN < 4 || lit.LogN > 17 {
		return nil, fmt.Errorf("ckks: LogN=%d out of supported range [4,17]", lit.LogN)
	}
	if len(lit.LogQ) == 0 {
		return nil, fmt.Errorf("ckks: empty modulus chain")
	}
	if lit.LogScale < 20 || lit.LogScale > 60 {
		return nil, fmt.Errorf("ckks: LogScale=%d out of range [20,60]", lit.LogScale)
	}
	n := 1 << lit.LogN
	avoid := map[uint64]bool{}

	// Group requested sizes so equal-size primes are drawn from one
	// alternating sequence (keeps products near the power of two).
	qi := make([]uint64, len(lit.LogQ))
	bySize := map[int][]int{}
	for i, b := range lit.LogQ {
		bySize[b] = append(bySize[b], i)
	}
	for b, idxs := range bySize {
		ps, err := ring.GenPrimes(b, n, len(idxs), avoid)
		if err != nil {
			return nil, err
		}
		for k, idx := range idxs {
			qi[idx] = ps[k]
		}
	}
	p, err := ring.GenPrime(lit.LogP, n, avoid)
	if err != nil {
		return nil, err
	}

	ringQ, err := ring.NewRing(n, qi)
	if err != nil {
		return nil, err
	}
	ringP, err := ring.NewRing(n, []uint64{p})
	if err != nil {
		return nil, err
	}

	par := &Parameters{
		logN:     lit.LogN,
		logScale: lit.LogScale,
		qi:       qi,
		p:        p,
		ringQ:    ringQ,
		ringP:    ringP,
	}
	par.precompute()
	return par, nil
}

func (p *Parameters) precompute() {
	L := len(p.qi)
	p.qInvMod = make([][]uint64, L)
	p.pInvModQ = make([]uint64, L)
	p.pModQ = make([]uint64, L)
	for l := 0; l < L; l++ {
		p.qInvMod[l] = make([]uint64, l)
		for j := 0; j < l; j++ {
			p.qInvMod[l][j] = ring.InvMod(p.qi[l]%p.qi[j], p.qi[j])
		}
		p.pModQ[l] = p.p % p.qi[l]
		p.pInvModQ[l] = ring.InvMod(p.pModQ[l], p.qi[l])
	}
}

// galoisNTTIndex returns the permutation table applying the automorphism
// X→X^k directly in the NTT domain: out[t] = in[tab[t]] per limb. The
// bit-reversed negacyclic NTT stores at slot t the evaluation at
// ψ^(2·bitrev(t)+1); the automorphism moves to that slot the evaluation at
// exponent k·(2·bitrev(t)+1) mod 2N, which is again odd (k is odd), so the
// permutation needs no sign fix-ups — the coefficient-domain negations are
// absorbed by the evaluation-point relabeling. Tables are built once per
// Galois element and cached.
func (p *Parameters) galoisNTTIndex(k int) []int32 {
	if v, ok := p.galoisIdx.Load(k); ok {
		return v.([]int32)
	}
	n := p.N()
	logN := p.logN
	mask := 2*n - 1
	tab := make([]int32, n)
	for t := 0; t < n; t++ {
		e := 2*int(bitRev(uint64(t), logN)) + 1
		src := (e * k) & mask
		tab[t] = int32(bitRev(uint64((src-1)>>1), logN))
	}
	v, _ := p.galoisIdx.LoadOrStore(k, tab)
	return v.([]int32)
}

// bitRev reverses the lowest nbits bits of v.
func bitRev(v uint64, nbits int) uint64 {
	return bits.Reverse64(v) >> (64 - nbits)
}

// N returns the ring degree.
func (p *Parameters) N() int { return 1 << p.logN }

// LogN returns log2 of the ring degree.
func (p *Parameters) LogN() int { return p.logN }

// Slots returns the number of complex plaintext slots (N/2).
func (p *Parameters) Slots() int { return 1 << (p.logN - 1) }

// MaxLevel returns the index of the highest usable level (L).
func (p *Parameters) MaxLevel() int { return len(p.qi) - 1 }

// Q returns the ciphertext prime chain.
func (p *Parameters) Q() []uint64 { return p.qi }

// P returns the key-switching special prime.
func (p *Parameters) P() uint64 { return p.p }

// DefaultScale returns the default encoding scale Δ.
func (p *Parameters) DefaultScale() float64 { return math.Exp2(float64(p.logScale)) }

// RingQ returns the ciphertext-modulus ring.
func (p *Parameters) RingQ() *ring.Ring { return p.ringQ }

// RingP returns the single-prime special ring.
func (p *Parameters) RingP() *ring.Ring { return p.ringP }

// TotalLogQP returns the summed bit size of the full modulus (chain + P),
// the figure quoted as "modulus bitwidth" in the paper's evaluation setup.
func (p *Parameters) TotalLogQP() float64 {
	total := math.Log2(float64(p.p))
	for _, q := range p.qi {
		total += math.Log2(float64(q))
	}
	return total
}

// Preset parameter sets. PN11–PN13 are development/test sets sized for a
// laptop-class CPU; PN15Paper mirrors the evaluation setup of the paper
// (SEAL CKKS with N=32768 and ≈881-bit modulus).
var (
	// PN11 supports depth 2; used by fast unit tests.
	PN11 = ParametersLiteral{LogN: 11, LogQ: []int{50, 40, 40}, LogP: 55, LogScale: 40}
	// PN12 supports depth 6; enough for the shallow PAFs (f1∘g2).
	PN12 = ParametersLiteral{LogN: 12, LogQ: []int{55, 45, 45, 45, 45, 45, 45}, LogP: 55, LogScale: 45}
	// PN13 supports depth 12; enough for every PAF in Table 2 including the
	// 27-degree minimax baseline plus the ReLU construction and one scaling
	// multiplication.
	PN13 = ParametersLiteral{LogN: 13, LogQ: []int{60, 45, 45, 45, 45, 45, 45, 45, 45, 45, 45, 45, 45}, LogP: 60, LogScale: 45}
	// PN14 is PN13 with a larger ring (closer to a secure configuration).
	PN14 = ParametersLiteral{LogN: 14, LogQ: []int{60, 45, 45, 45, 45, 45, 45, 45, 45, 45, 45, 45, 45}, LogP: 60, LogScale: 45}
	// PN15Paper mirrors the paper's latency setup: N=32768 with a ≈881-bit
	// modulus (60 + 14×54 + 60 = 876 bits; the remaining 5 bits of the
	// paper's 881 come from SEAL's slightly larger special primes).
	PN15Paper = ParametersLiteral{
		LogN: 15,
		LogQ: []int{60, 54, 54, 54, 54, 54, 54, 54, 54, 54, 54, 54, 54, 54, 54},
		LogP: 60, LogScale: 54,
	}
)
