package ckks

import (
	"fmt"
	"math"

	"github.com/efficientfhe/smartpaf/internal/ring"
)

// scaleTol is the accepted relative mismatch between operand scales in
// additions. Exact scale management (MulConstTargetScale) keeps true
// mismatches below this bound; anything larger is a programming error.
const scaleTol = 1e-6

// Evaluator performs homomorphic arithmetic. It is safe for concurrent use:
// one evaluator can be shared by any number of goroutines operating on
// distinct ciphertexts. It holds no mutable state — parameters and keys are
// read-only after construction, and all scratch is drawn from the ring's
// sync.Pools. The only caveat is setup: attach rotation keys (via
// WithRotationKeys) before the evaluator is shared, not while other
// goroutines are using it.
//
// Independent RNS-limb work inside each operation (NTT batches, key-switch
// digit accumulation, rescale base extension) is additionally fanned across
// the internal/ring worker pool, so a single call also exploits multicore;
// see ring.SetParallelism.
type Evaluator struct {
	params *Parameters
	rlk    *RelinearizationKey
	rks    *RotationKeySet
}

// NewEvaluator returns an evaluator bound to the relinearization key (which
// may be nil if no ciphertext-ciphertext multiplications are performed).
func NewEvaluator(params *Parameters, rlk *RelinearizationKey) *Evaluator {
	return &Evaluator{params: params, rlk: rlk}
}

// Params returns the evaluator's parameter set.
func (ev *Evaluator) Params() *Parameters { return ev.params }

func (ev *Evaluator) checkScales(a, b float64) error {
	if math.Abs(a-b) > scaleTol*math.Abs(a) {
		return fmt.Errorf("ckks: scale mismatch %g vs %g", a, b)
	}
	return nil
}

// DropLevel returns a view of ct truncated to the given level. Dropping RNS
// limbs is exact and noise-free.
func (ev *Evaluator) DropLevel(ct *Ciphertext, level int) *Ciphertext {
	if level > ct.Level {
		panic("ckks: DropLevel cannot raise level")
	}
	return &Ciphertext{C0: ct.C0.Truncate(level), C1: ct.C1.Truncate(level), Scale: ct.Scale, Level: level}
}

// alignLevels returns views of a and b at their common (minimum) level.
func (ev *Evaluator) alignLevels(a, b *Ciphertext) (*Ciphertext, *Ciphertext, int) {
	level := min(a.Level, b.Level)
	return ev.DropLevel(a, level), ev.DropLevel(b, level), level
}

// Add returns a + b (scales must match; result at the common level).
func (ev *Evaluator) Add(a, b *Ciphertext) (*Ciphertext, error) {
	if err := ev.checkScales(a.Scale, b.Scale); err != nil {
		return nil, err
	}
	a, b, level := ev.alignLevels(a, b)
	rq := ev.params.RingQ()
	out := &Ciphertext{C0: rq.NewPoly(level), C1: rq.NewPoly(level), Scale: a.Scale, Level: level}
	rq.Add(a.C0, b.C0, out.C0)
	rq.Add(a.C1, b.C1, out.C1)
	return out, nil
}

// Sub returns a - b.
func (ev *Evaluator) Sub(a, b *Ciphertext) (*Ciphertext, error) {
	if err := ev.checkScales(a.Scale, b.Scale); err != nil {
		return nil, err
	}
	a, b, level := ev.alignLevels(a, b)
	rq := ev.params.RingQ()
	out := &Ciphertext{C0: rq.NewPoly(level), C1: rq.NewPoly(level), Scale: a.Scale, Level: level}
	rq.Sub(a.C0, b.C0, out.C0)
	rq.Sub(a.C1, b.C1, out.C1)
	return out, nil
}

// Neg returns -a.
func (ev *Evaluator) Neg(a *Ciphertext) *Ciphertext {
	rq := ev.params.RingQ()
	out := &Ciphertext{C0: rq.NewPoly(a.Level), C1: rq.NewPoly(a.Level), Scale: a.Scale, Level: a.Level}
	rq.Neg(a.C0, out.C0)
	rq.Neg(a.C1, out.C1)
	return out
}

// AddPlain returns ct + pt (scales must match).
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	if err := ev.checkScales(ct.Scale, pt.Scale); err != nil {
		return nil, err
	}
	level := min(ct.Level, pt.Level)
	rq := ev.params.RingQ()
	out := &Ciphertext{C0: rq.NewPoly(level), C1: ct.C1.Truncate(level).CopyNew(), Scale: ct.Scale, Level: level}
	rq.Add(ct.C0.Truncate(level), pt.Value.Truncate(level), out.C0)
	return out, nil
}

// MulPlain returns ct ⊙ pt; the result scale is the product of scales and the
// caller normally rescales afterwards.
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	level := min(ct.Level, pt.Level)
	rq := ev.params.RingQ()
	out := &Ciphertext{C0: rq.NewPoly(level), C1: rq.NewPoly(level), Scale: ct.Scale * pt.Scale, Level: level}
	rq.MulCoeffs(ct.C0.Truncate(level), pt.Value.Truncate(level), out.C0)
	rq.MulCoeffs(ct.C1.Truncate(level), pt.Value.Truncate(level), out.C1)
	return out
}

// MulRelin multiplies two ciphertexts and relinearizes the degree-2 term.
// The result scale is the product of the operand scales; callers normally
// Rescale next.
func (ev *Evaluator) MulRelin(a, b *Ciphertext) (*Ciphertext, error) {
	if ev.rlk == nil {
		return nil, fmt.Errorf("ckks: evaluator has no relinearization key")
	}
	a, b, level := ev.alignLevels(a, b)
	rq := ev.params.RingQ()

	d0 := rq.NewPoly(level)
	d1 := rq.NewPoly(level)
	d2 := rq.GetPolyRaw(level) // fully overwritten by MulCoeffs below
	rq.MulCoeffs(a.C0, b.C0, d0)
	rq.MulCoeffs(a.C0, b.C1, d1)
	rq.MulCoeffsThenAdd(a.C1, b.C0, d1)
	rq.MulCoeffs(a.C1, b.C1, d2)

	e0, e1 := ev.keySwitch(d2, ev.rlk.Digits, level)
	rq.Add(d0, e0, d0)
	rq.Add(d1, e1, d1)
	rq.PutPoly(d2)
	rq.PutPoly(e0)
	rq.PutPoly(e1)
	return &Ciphertext{C0: d0, C1: d1, Scale: a.Scale * b.Scale, Level: level}, nil
}

// ksAcc is one worker's key-switch accumulator set: the (c0, c1) partial
// sums over Q and over the special prime P.
type ksAcc struct {
	q0, q1 *ring.Poly
	p0, p1 *ring.Poly
}

// newKSAccs draws zeroed accumulator sets for `workers` workers.
func (ev *Evaluator) newKSAccs(workers, level int) []ksAcc {
	rq := ev.params.RingQ()
	rp := ev.params.RingP()
	accs := make([]ksAcc, workers)
	for w := range accs {
		accs[w] = ksAcc{
			q0: rq.GetPoly(level), q1: rq.GetPoly(level),
			p0: rp.GetPoly(0), p1: rp.GetPoly(0),
		}
	}
	return accs
}

// mergeKSAccs folds all partial sums into accs[0] and recycles the rest.
// Modular addition is exact and commutative, so the merged result does not
// depend on the digit-to-worker schedule — key-switch output stays
// bit-deterministic under any fan-out width.
func (ev *Evaluator) mergeKSAccs(accs []ksAcc) ksAcc {
	rq := ev.params.RingQ()
	rp := ev.params.RingP()
	acc := accs[0]
	for _, a := range accs[1:] {
		rq.Add(acc.q0, a.q0, acc.q0)
		rq.Add(acc.q1, a.q1, acc.q1)
		rp.Add(acc.p0, a.p0, acc.p0)
		rp.Add(acc.p1, a.p1, acc.p1)
		rq.PutPoly(a.q0)
		rq.PutPoly(a.q1)
		rp.PutPoly(a.p0)
		rp.PutPoly(a.p1)
	}
	return acc
}

// keySwitch applies a gadget key (relinearization or rotation) to an
// NTT-domain ciphertext component d2 at the given level, returning the
// (c0, c1) correction over Q.
//
// Algorithm: decompose d2 into per-prime RNS digits u_i = [d2]_{q_i}
// (coefficient domain, single-limb integers), extend each digit to every
// limb of Q_level and to P, and accumulate Σ u_i ⊙ evk_i over Q and P.
// Because the gadget g_i ≡ δ_ij (mod q_j), Σ u_i·g_i ≡ d2 (mod Q_level),
// and the accumulated value equals P·d2·s² + small error over QP. Dividing
// by P (exact centered mod-down, P is a single prime) yields d2·s² + tiny
// error over Q.
//
// Digits are independent, so the INTT/extend/NTT/multiply-accumulate chain
// fans across them with per-worker accumulators merged at the end — the
// serial digit walk was the longest dependency chain left in a rotation.
// The digit fan holds the ring's fan-out gate, so per-limb work inside each
// worker runs serially instead of double-fanning; when the digit fan itself
// falls back to serial (one digit, or another fan already in flight), the
// inner loop is the plain single-worker path.
//
//hennlint:transfers-ownership both returned polys are pooled; the caller must PutPoly them
func (ev *Evaluator) keySwitch(d2 *ring.Poly, digits []EvaluationKeyDigit, level int) (*ring.Poly, *ring.Poly) {
	mark := stageClock()
	rq := ev.params.RingQ()
	rp := ev.params.RingP()
	n := ev.params.N()
	p := ev.params.P()

	var accs []ksAcc
	ring.ForEachWorker(level+1, (level+2)*n, func(workers int) {
		accs = ev.newKSAccs(workers, level)
	}, func(w, i int) {
		acc := &accs[w]
		digit := rq.GetScratch()
		defer rq.PutScratch(digit)
		ext := rq.GetScratch()
		defer rq.PutScratch(ext)
		copy(digit, d2.Coeffs[i])
		rq.Moduli[i].INTT(digit)
		evk := &digits[i]
		qi := ev.params.Q()[i]

		for j := 0; j <= level; j++ {
			qj := rq.Moduli[j].Q
			if qi <= qj {
				copy(ext, digit)
			} else {
				for k := 0; k < n; k++ {
					ext[k] = digit[k] % qj
				}
			}
			rq.Moduli[j].NTT(ext)
			b := evk.BQ.Coeffs[j]
			a := evk.AQ.Coeffs[j]
			o0 := acc.q0.Coeffs[j]
			o1 := acc.q1.Coeffs[j]
			for k := 0; k < n; k++ {
				o0[k] = ring.AddMod(o0[k], ring.MulMod(ext[k], b[k], qj), qj)
				o1[k] = ring.AddMod(o1[k], ring.MulMod(ext[k], a[k], qj), qj)
			}
		}
		if qi <= p {
			copy(ext, digit)
		} else {
			for k := 0; k < n; k++ {
				ext[k] = digit[k] % p
			}
		}
		rp.Moduli[0].NTT(ext)
		bP := evk.BP.Coeffs[0]
		aP := evk.AP.Coeffs[0]
		o0 := acc.p0.Coeffs[0]
		o1 := acc.p1.Coeffs[0]
		for k := 0; k < n; k++ {
			o0[k] = ring.AddMod(o0[k], ring.MulMod(ext[k], bP[k], p), p)
			o1[k] = ring.AddMod(o1[k], ring.MulMod(ext[k], aP[k], p), p)
		}
	})
	acc := ev.mergeKSAccs(accs)

	ev.modDownByP(acc.q0, acc.p0, level)
	ev.modDownByP(acc.q1, acc.p1, level)
	rp.PutPoly(acc.p0)
	rp.PutPoly(acc.p1)
	stageDone("key_switch", mark)
	return acc.q0, acc.q1
}

// modDownByP divides accQ (NTT domain over Q_level) by P in place, consuming
// accP (NTT domain over P): accQ <- (accQ - lift([acc]_P)) / P per limb.
func (ev *Evaluator) modDownByP(accQ, accP *ring.Poly, level int) {
	rq := ev.params.RingQ()
	rp := ev.params.RingP()
	n := ev.params.N()
	p := ev.params.P()
	half := p >> 1

	lift := rq.GetScratch()
	copy(lift, accP.Coeffs[0])
	rp.Moduli[0].INTT(lift)

	ring.ForEachLimb(level+1, n, func(j int) {
		ext := rq.GetScratch()
		defer rq.PutScratch(ext)
		qj := rq.Moduli[j].Q
		for k := 0; k < n; k++ {
			c := lift[k]
			if c > half {
				// centered: c - p (negative) ≡ qj - (p - c) mod qj
				ext[k] = qj - (p-c)%qj
				if ext[k] == qj {
					ext[k] = 0
				}
			} else {
				ext[k] = c % qj
			}
		}
		rq.Moduli[j].NTT(ext)
		pinv := ev.params.pInvModQ[j]
		limb := accQ.Coeffs[j]
		for k := 0; k < n; k++ {
			limb[k] = ring.MulMod(ring.SubMod(limb[k], ext[k], qj), pinv, qj)
		}
	})
	rq.PutScratch(lift)
}

// Rescale divides the ciphertext by its top prime q_level, dropping one
// level and dividing the scale accordingly. This is the CKKS "modulus
// switching" that keeps scales near Δ after multiplications.
func (ev *Evaluator) Rescale(ct *Ciphertext) (*Ciphertext, error) {
	level := ct.Level
	if level == 0 {
		return nil, fmt.Errorf("ckks: cannot rescale below level 0")
	}
	mark := stageClock()
	rq := ev.params.RingQ()
	ql := ev.params.Q()[level]
	out := &Ciphertext{
		C0:    rq.NewPoly(level - 1),
		C1:    rq.NewPoly(level - 1),
		Scale: ct.Scale / float64(ql),
		Level: level - 1,
	}
	ev.divideByTopPrime(ct.C0, out.C0, level)
	ev.divideByTopPrime(ct.C1, out.C1, level)
	stageDone("rescale", mark)
	return out, nil
}

func (ev *Evaluator) divideByTopPrime(in, out *ring.Poly, level int) {
	rq := ev.params.RingQ()
	n := ev.params.N()
	ql := ev.params.Q()[level]
	half := ql >> 1

	lift := rq.GetScratch()
	copy(lift, in.Coeffs[level])
	rq.Moduli[level].INTT(lift)

	ring.ForEachLimb(level, n, func(j int) {
		ext := rq.GetScratch()
		defer rq.PutScratch(ext)
		qj := rq.Moduli[j].Q
		for k := 0; k < n; k++ {
			c := lift[k]
			if c > half {
				ext[k] = qj - (ql-c)%qj
				if ext[k] == qj {
					ext[k] = 0
				}
			} else {
				ext[k] = c % qj
			}
		}
		rq.Moduli[j].NTT(ext)
		qinv := ev.params.qInvMod[level][j]
		src := in.Coeffs[j]
		dst := out.Coeffs[j]
		for k := 0; k < n; k++ {
			dst[k] = ring.MulMod(ring.SubMod(src[k], ext[k], qj), qinv, qj)
		}
	})
	rq.PutScratch(lift)
}

// MulRelinRescale is the common fused sequence multiply → relinearize →
// rescale.
func (ev *Evaluator) MulRelinRescale(a, b *Ciphertext) (*Ciphertext, error) {
	ct, err := ev.MulRelin(a, b)
	if err != nil {
		return nil, err
	}
	return ev.Rescale(ct)
}

// scalarRNS encodes round(c*scale) as per-limb residues.
func (ev *Evaluator) scalarRNS(c, scale float64, level int) ([]uint64, error) {
	v := c * scale
	if math.Abs(v) >= math.Exp2(62) {
		return nil, fmt.Errorf("ckks: constant %g at scale %g exceeds 2^62", c, scale)
	}
	k := int64(math.Round(v))
	out := make([]uint64, level+1)
	for j := 0; j <= level; j++ {
		q := ev.params.Q()[j]
		if k >= 0 {
			out[j] = uint64(k) % q
		} else {
			out[j] = q - uint64(-k)%q
		}
	}
	return out, nil
}

// MulConst multiplies by a real constant encoded at constScale; the result
// scale is ct.Scale * constScale (no rescale).
func (ev *Evaluator) MulConst(ct *Ciphertext, c, constScale float64) (*Ciphertext, error) {
	scal, err := ev.scalarRNS(c, constScale, ct.Level)
	if err != nil {
		return nil, err
	}
	rq := ev.params.RingQ()
	out := &Ciphertext{C0: rq.NewPoly(ct.Level), C1: rq.NewPoly(ct.Level), Scale: ct.Scale * constScale, Level: ct.Level}
	rq.MulScalar(ct.C0, scal, out.C0)
	rq.MulScalar(ct.C1, scal, out.C1)
	return out, nil
}

// MulConstTargetScale multiplies ct by constant c and rescales once so that
// the result lands *exactly* at targetScale one level below. This is the
// primitive that keeps every addition in a polynomial evaluation at
// identical scales: constScale = targetScale·q_level / ct.Scale.
func (ev *Evaluator) MulConstTargetScale(ct *Ciphertext, c, targetScale float64) (*Ciphertext, error) {
	if ct.Level == 0 {
		return nil, fmt.Errorf("ckks: no level left for MulConstTargetScale")
	}
	ql := float64(ev.params.Q()[ct.Level])
	constScale := targetScale * ql / ct.Scale
	if constScale < math.Exp2(18) {
		return nil, fmt.Errorf("ckks: required constant scale %g too small for accurate encoding", constScale)
	}
	out, err := ev.MulConst(ct, c, constScale)
	if err != nil {
		return nil, err
	}
	out, err = ev.Rescale(out)
	if err != nil {
		return nil, err
	}
	// The float bookkeeping above is exact by construction; pin it to avoid
	// drift accumulating across deep circuits.
	out.Scale = targetScale
	return out, nil
}

// AddConst adds a real constant (encoded at the ciphertext's own scale).
func (ev *Evaluator) AddConst(ct *Ciphertext, c float64) (*Ciphertext, error) {
	scal, err := ev.scalarRNS(c, ct.Scale, ct.Level)
	if err != nil {
		return nil, err
	}
	rq := ev.params.RingQ()
	out := &Ciphertext{C0: rq.NewPoly(ct.Level), C1: ct.C1.CopyNew(), Scale: ct.Scale, Level: ct.Level}
	rq.AddScalar(ct.C0, scal, out.C0)
	return out, nil
}
