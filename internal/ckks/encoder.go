package ckks

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// Encoder maps vectors of complex numbers into ring plaintexts via the CKKS
// canonical embedding. The fast path is the special FFT over the orbit of 5
// modulo 2N (the same algorithm as HEAAN/SEAL/Lattigo); EncodeNaive/
// DecodeNaive evaluate the embedding directly in O(n^2) and serve as a test
// oracle for the fast path.
//
// An Encoder is safe for concurrent use: the twiddle tables are read-only
// after NewEncoder and per-call scratch is drawn from sync.Pools.
type Encoder struct {
	params   *Parameters
	m        int          // 2N
	rotGroup []int        // 5^i mod 2N, i < N/2
	ksiPows  []complex128 // exp(2πi j / 2N), j ≤ 2N

	slotPool  sync.Pool // []complex128 of length Slots()
	coeffPool sync.Pool // []int64 of length N
}

// getSlots returns a zeroed slot-sized scratch vector from the pool.
func (e *Encoder) getSlots() []complex128 {
	if v := e.slotPool.Get(); v != nil {
		w := v.([]complex128)
		clear(w)
		return w
	}
	return make([]complex128, e.params.Slots())
}

func (e *Encoder) putSlots(w []complex128) { e.slotPool.Put(w) } //nolint:staticcheck

// NewEncoder builds an encoder for the given parameters.
func NewEncoder(params *Parameters) *Encoder {
	n := params.N()
	m := 2 * n
	slots := n / 2
	e := &Encoder{
		params:   params,
		m:        m,
		rotGroup: make([]int, slots),
		ksiPows:  make([]complex128, m+1),
	}
	fivePow := 1
	for i := 0; i < slots; i++ {
		e.rotGroup[i] = fivePow
		fivePow = fivePow * 5 % m
	}
	for j := 0; j <= m; j++ {
		angle := 2 * math.Pi * float64(j) / float64(m)
		e.ksiPows[j] = cmplx.Rect(1, angle)
	}
	return e
}

// emb evaluates the special FFT in place: coefficients -> slot values.
func (e *Encoder) emb(vals []complex128) {
	size := len(vals)
	bitReverseArray(vals)
	for length := 2; length <= size; length <<= 1 {
		lenh := length >> 1
		lenq := length << 2
		gap := e.m / lenq
		for i := 0; i < size; i += length {
			for j := 0; j < lenh; j++ {
				idx := (e.rotGroup[j] % lenq) * gap
				u := vals[i+j]
				v := vals[i+j+lenh] * e.ksiPows[idx]
				vals[i+j] = u + v
				vals[i+j+lenh] = u - v
			}
		}
	}
}

// embInv evaluates the inverse special FFT in place: slot values ->
// coefficients (already divided by the size).
func (e *Encoder) embInv(vals []complex128) {
	size := len(vals)
	for length := size; length >= 2; length >>= 1 {
		lenh := length >> 1
		lenq := length << 2
		gap := e.m / lenq
		for i := 0; i < size; i += length {
			for j := 0; j < lenh; j++ {
				idx := (lenq - (e.rotGroup[j] % lenq)) * gap
				u := vals[i+j] + vals[i+j+lenh]
				v := (vals[i+j] - vals[i+j+lenh]) * e.ksiPows[idx]
				vals[i+j] = u
				vals[i+j+lenh] = v
			}
		}
	}
	bitReverseArray(vals)
	inv := complex(1/float64(size), 0)
	for i := range vals {
		vals[i] *= inv
	}
}

func bitReverseArray(vals []complex128) {
	n := len(vals)
	logN := bits.Len(uint(n)) - 1
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> (64 - logN))
		if i < j {
			vals[i], vals[j] = vals[j], vals[i]
		}
	}
}

// Encode packs up to N/2 complex values into a plaintext at the given level
// and scale. Fewer values are zero-padded.
func (e *Encoder) Encode(values []complex128, level int, scale float64) (*Plaintext, error) {
	slots := e.params.Slots()
	if len(values) > slots {
		return nil, fmt.Errorf("ckks: %d values exceed %d slots", len(values), slots)
	}
	mark := stageClock()
	w := e.getSlots()
	defer e.putSlots(w)
	copy(w, values)
	e.embInv(w)
	pt, err := e.coeffsToPlaintext(w, level, scale)
	stageDone("encode", mark)
	return pt, err
}

// EncodeReals packs real values (imaginary parts zero).
func (e *Encoder) EncodeReals(values []float64, level int, scale float64) (*Plaintext, error) {
	cv := make([]complex128, len(values))
	for i, v := range values {
		cv[i] = complex(v, 0)
	}
	return e.Encode(cv, level, scale)
}

func (e *Encoder) coeffsToPlaintext(w []complex128, level int, scale float64) (*Plaintext, error) {
	n := e.params.N()
	slots := e.params.Slots()
	var coeffs []int64
	if v := e.coeffPool.Get(); v != nil {
		coeffs = v.([]int64)
		clear(coeffs)
	} else {
		coeffs = make([]int64, n)
	}
	defer e.coeffPool.Put(coeffs) //nolint:staticcheck
	maxMag := math.Exp2(62)
	for j := 0; j < slots; j++ {
		re := real(w[j]) * scale
		im := imag(w[j]) * scale
		if math.Abs(re) >= maxMag || math.Abs(im) >= maxMag {
			return nil, fmt.Errorf("ckks: encoded coefficient magnitude exceeds 2^62 (scale too large)")
		}
		coeffs[j] = int64(math.Round(re))
		coeffs[j+slots] = int64(math.Round(im))
	}
	poly := e.params.RingQ().SetSignedCoeffs(coeffs, level)
	e.params.RingQ().NTT(poly)
	return &Plaintext{Value: poly, Scale: scale, Level: level}, nil
}

// Decode recovers the slot values of a plaintext. Correctness requires the
// underlying (message+noise) coefficients to stay below q_0/2 in magnitude,
// which is the standard CKKS invariant maintained by rescaling.
func (e *Encoder) Decode(pt *Plaintext) []complex128 {
	n := e.params.N()
	slots := e.params.Slots()
	limb0 := append([]uint64(nil), pt.Value.Coeffs[0]...)
	e.params.RingQ().Moduli[0].INTT(limb0)
	q := e.params.RingQ().Moduli[0].Q
	half := q >> 1
	w := make([]complex128, slots)
	for j := 0; j < slots; j++ {
		w[j] = complex(centered(limb0[j], q, half)/pt.Scale, centered(limb0[j+slots], q, half)/pt.Scale)
	}
	_ = n
	e.emb(w)
	return w
}

// DecodeReals returns the real parts of Decode.
func (e *Encoder) DecodeReals(pt *Plaintext) []float64 {
	cv := e.Decode(pt)
	out := make([]float64, len(cv))
	for i, v := range cv {
		out[i] = real(v)
	}
	return out
}

func centered(c, q, half uint64) float64 {
	if c > half {
		return -float64(q - c)
	}
	return float64(c)
}

// EncodeNaive computes the embedding coefficients by the defining formula
// w_j = (1/slots) Σ_k z_k conj(ζ^{5^k j}); O(slots^2), used as a test oracle.
func (e *Encoder) EncodeNaive(values []complex128, level int, scale float64) (*Plaintext, error) {
	slots := e.params.Slots()
	if len(values) > slots {
		return nil, fmt.Errorf("ckks: %d values exceed %d slots", len(values), slots)
	}
	z := make([]complex128, slots)
	copy(z, values)
	w := make([]complex128, slots)
	for j := 0; j < slots; j++ {
		var acc complex128
		for k := 0; k < slots; k++ {
			idx := (e.rotGroup[k] * j) % e.m
			acc += z[k] * cmplx.Conj(e.ksiPows[idx])
		}
		w[j] = acc / complex(float64(slots), 0)
	}
	return e.coeffsToPlaintext(w, level, scale)
}

// DecodeNaive evaluates z_k = w(ζ^{5^k}) directly; O(slots^2) test oracle.
func (e *Encoder) DecodeNaive(pt *Plaintext) []complex128 {
	slots := e.params.Slots()
	limb0 := append([]uint64(nil), pt.Value.Coeffs[0]...)
	e.params.RingQ().Moduli[0].INTT(limb0)
	q := e.params.RingQ().Moduli[0].Q
	half := q >> 1
	w := make([]complex128, slots)
	for j := 0; j < slots; j++ {
		w[j] = complex(centered(limb0[j], q, half)/pt.Scale, centered(limb0[j+slots], q, half)/pt.Scale)
	}
	z := make([]complex128, slots)
	for k := 0; k < slots; k++ {
		var acc complex128
		for j := 0; j < slots; j++ {
			idx := (e.rotGroup[k] * j) % e.m
			acc += w[j] * e.ksiPows[idx]
		}
		z[k] = acc
	}
	return z
}
