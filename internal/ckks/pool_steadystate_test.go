package ckks

import "testing"

// TestRotatePoolSteadyState pins the pooled-scratch discipline on the
// rotation hot path (the polypool analyzer's target invariant, checked
// dynamically): once the ring pools are warm and the caller returns the
// result components, repeated rotations draw every polynomial from the
// pools instead of the heap. A leak anywhere on the applyGalois /
// keySwitch path shows up here as a per-op allocation of poly limbs,
// far above the bound.
func TestRotatePoolSteadyState(t *testing.T) {
	tc := newTestContext(t, testLit)
	eval := NewEvaluator(tc.params, tc.rlk).
		WithRotationKeys(tc.kg.GenRotationKeys(tc.sk, []int{1}, false))
	rq := tc.params.RingQ()

	pt, err := tc.enc.Encode(make([]complex128, tc.params.Slots()), tc.params.MaxLevel(), tc.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct := tc.encr.Encrypt(pt)

	rotateOnce := func() {
		out, err := eval.Rotate(ct, 1)
		if err != nil {
			t.Fatal(err)
		}
		// The result components are pool polys the rotation hands to the
		// caller; putting them back is what closes the cycle.
		rq.PutPoly(out.C0)
		rq.PutPoly(out.C1)
	}
	for i := 0; i < 8; i++ {
		rotateOnce() // warm the per-level pools
	}
	allocs := testing.AllocsPerRun(50, rotateOnce)
	t.Logf("allocs per rotation at steady state: %.1f", allocs)

	// Measured steady state is a stable 33 allocations per op (the
	// ciphertext struct plus the key-switch fan's per-call closures);
	// race instrumentation adds a constant ~10. One leaked full-chain
	// poly costs (level+2) ≈ 12 more — each bound sits below its
	// steady state plus one poly, so even a single leaked poly per op
	// fails, with slack for runtime/scheduler jitter.
	maxSteadyStateAllocs := 42.0
	if raceEnabled {
		maxSteadyStateAllocs = 52
	}
	if allocs > maxSteadyStateAllocs {
		t.Fatalf("rotation allocates %.1f objects per op at steady state (bound %.0f): a pooled poly is leaking",
			allocs, maxSteadyStateAllocs)
	}
}
