package ckks

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/efficientfhe/smartpaf/internal/ring"
)

// TestGaloisNTTIndexMatchesCoefficientAutomorphism pins the NTT-domain
// permutation tables against the definitional coefficient-domain
// automorphism: for random polynomials and every Galois element the hoisted
// path uses, permuting NTT(a) must equal NTT(φ_k(a)) bit-exactly.
func TestGaloisNTTIndexMatchesCoefficientAutomorphism(t *testing.T) {
	tc := newTestContext(t, testLit)
	rq := tc.params.RingQ()
	n := tc.params.N()
	level := tc.params.MaxLevel()
	rng := rand.New(rand.NewSource(51))

	elements := []int{tc.params.galoisElement(1), tc.params.galoisElement(3),
		tc.params.galoisElement(tc.params.Slots() - 2), 2*n - 1}
	for _, k := range elements {
		a := rq.NewPoly(level)
		for i := range a.Coeffs {
			q := rq.Moduli[i].Q
			for j := 0; j < n; j++ {
				a.Coeffs[i][j] = rng.Uint64() % q
			}
		}
		// Reference: automorphism in coefficient domain, then NTT.
		want := rq.NewPoly(level)
		applyAutomorphism(rq, a, k, want)
		rq.NTT(want)
		// Hoisted path: NTT first, then the slot permutation.
		ntt := a.CopyNew()
		rq.NTT(ntt)
		idx := tc.params.galoisNTTIndex(k)
		got := rq.NewPoly(level)
		for i := range got.Coeffs {
			for j := 0; j < n; j++ {
				got.Coeffs[i][j] = ntt.Coeffs[i][idx[j]]
			}
		}
		if !got.Equal(want) {
			t.Fatalf("k=%d: NTT-domain permutation differs from coefficient automorphism", k)
		}
	}
}

// TestRotateHoistedMatchesRotate checks the hoisted rotation against the
// plain path and the expected plaintext shift for a full rotation set,
// including negative and wrapped steps, all sharing one decomposition.
func TestRotateHoistedMatchesRotate(t *testing.T) {
	slots := 64 // testLit has LogN 7
	steps := []int{1, 3, 7, 13, 31, slots - 1, -2, -slots + 5, slots + 5}
	tc, _ := newRotationContext(t, steps, false)
	rng := rand.New(rand.NewSource(52))
	values := randomComplex(rng, slots, 1)
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encr.Encrypt(pt)

	dec := tc.eval.DecomposeHoisted(ct)
	defer dec.Release()
	for _, step := range steps {
		hoisted, err := tc.eval.RotateHoisted(dec, step)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		plain, err := tc.eval.Rotate(ct, step)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if hoisted.Level != plain.Level || hoisted.Scale != plain.Scale {
			t.Fatalf("step %d: hoisted (level %d, scale %g) vs plain (level %d, scale %g)",
				step, hoisted.Level, hoisted.Scale, plain.Level, plain.Scale)
		}
		want := make([]complex128, slots)
		for i := range want {
			want[i] = values[((i+step)%slots+slots)%slots]
		}
		gh := tc.enc.Decode(tc.decr.Decrypt(hoisted))
		gp := tc.enc.Decode(tc.decr.Decrypt(plain))
		if e := maxErr(want, gh); e > 1e-4 {
			t.Fatalf("step %d: hoisted rotation error %g", step, e)
		}
		if e := maxErr(gp, gh); e > 1e-4 {
			t.Fatalf("step %d: hoisted differs from plain by %g", step, e)
		}
	}
}

// TestRotateHoistedZeroAndErrors covers the degenerate paths: step 0 copies,
// missing keys error exactly like the plain path.
func TestRotateHoistedZeroAndErrors(t *testing.T) {
	tc, _ := newRotationContext(t, []int{1}, false)
	pt, _ := tc.enc.Encode(make([]complex128, tc.params.Slots()), 1, tc.params.DefaultScale())
	ct := tc.encr.Encrypt(pt)
	dec := tc.eval.DecomposeHoisted(ct)
	defer dec.Release()

	zero, err := tc.eval.RotateHoisted(dec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ctEqual(zero, ct) {
		t.Fatal("zero-step hoisted rotation is not an exact copy")
	}
	if _, err := tc.eval.RotateHoisted(dec, 5); err == nil {
		t.Fatal("expected missing-key error")
	}
	bare := NewEvaluator(tc.params, tc.rlk)
	bareDec := bare.DecomposeHoisted(ct)
	defer bareDec.Release()
	if _, err := bare.RotateHoisted(bareDec, 1); err == nil {
		t.Fatal("expected no-keys error")
	}
	if _, err := bare.ConjugateHoisted(bareDec); err == nil {
		t.Fatal("expected no-conjugation-key error")
	}
}

// TestConjugateHoistedMatchesConjugate checks hoisted conjugation against
// the plain path.
func TestConjugateHoistedMatchesConjugate(t *testing.T) {
	tc, _ := newRotationContext(t, nil, true)
	rng := rand.New(rand.NewSource(53))
	values := randomComplex(rng, tc.params.Slots(), 1)
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encr.Encrypt(pt)

	dec := tc.eval.DecomposeHoisted(ct)
	defer dec.Release()
	hoisted, err := tc.eval.ConjugateHoisted(dec)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := tc.eval.Conjugate(ct)
	if err != nil {
		t.Fatal(err)
	}
	gh := tc.enc.Decode(tc.decr.Decrypt(hoisted))
	gp := tc.enc.Decode(tc.decr.Decrypt(plain))
	if e := maxErr(gp, gh); e > 1e-4 {
		t.Fatalf("hoisted conjugation differs from plain by %g", e)
	}
}

// TestRotateHoistedAtLowerLevel exercises a decomposition built from a
// rescaled (lower-level) ciphertext — the state BSGS hits after the first
// layer of a deep model.
func TestRotateHoistedAtLowerLevel(t *testing.T) {
	tc, _ := newRotationContext(t, []int{2}, false)
	rng := rand.New(rand.NewSource(54))
	values := randomComplex(rng, tc.params.Slots(), 0.5)
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encr.Encrypt(pt)
	sq, err := tc.eval.MulRelinRescale(ct, ct)
	if err != nil {
		t.Fatal(err)
	}

	dec := tc.eval.DecomposeHoisted(sq)
	defer dec.Release()
	hoisted, err := tc.eval.RotateHoisted(dec, 2)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := tc.eval.Rotate(sq, 2)
	if err != nil {
		t.Fatal(err)
	}
	gh := tc.enc.Decode(tc.decr.Decrypt(hoisted))
	gp := tc.enc.Decode(tc.decr.Decrypt(plain))
	if e := maxErr(gp, gh); e > 1e-4 {
		t.Fatalf("lower-level hoisted rotation differs from plain by %g", e)
	}
}

// TestRotateHoistedConcurrentSharedEvaluator drives hoisted rotations from
// many goroutines over one shared evaluator — each worker with its own
// per-call decomposition, plus one read-only decomposition shared by all —
// under the race detector via `make test`. Results must be bit-identical to
// the serial reference (the digit fan's modular merge is order-independent).
func TestRotateHoistedConcurrentSharedEvaluator(t *testing.T) {
	steps := []int{1, 3, 7, -2}
	tc, _ := newRotationContext(t, steps, false)
	rng := rand.New(rand.NewSource(55))
	values := randomComplex(rng, tc.params.Slots(), 1)
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encr.Encrypt(pt)

	shared := tc.eval.DecomposeHoisted(ct)
	defer shared.Release()
	want := make(map[int]*Ciphertext, len(steps))
	for _, s := range steps {
		r, err := tc.eval.RotateHoisted(shared, s)
		if err != nil {
			t.Fatal(err)
		}
		want[s] = r
	}

	for _, fanOut := range []int{1, 4} {
		ring.SetParallelism(fanOut)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				own := tc.eval.DecomposeHoisted(ct)
				defer own.Release()
				for r := 0; r < 3; r++ {
					for _, s := range steps {
						dec := shared
						if g%2 == 0 {
							dec = own
						}
						got, err := tc.eval.RotateHoisted(dec, s)
						if err != nil {
							t.Errorf("step %d: %v", s, err)
							return
						}
						if !ctEqual(got, want[s]) {
							t.Errorf("fanOut=%d step %d: concurrent hoisted rotation differs from serial", fanOut, s)
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
	}
	ring.SetParallelism(0)
	if t.Failed() {
		t.FailNow()
	}
}
