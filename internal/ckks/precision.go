package ckks

import (
	"fmt"
	"math"
	"math/cmplx"
)

// PrecisionStats summarizes how faithfully a decrypted vector matches its
// reference: the standard report of HE libraries.
type PrecisionStats struct {
	MaxErr  float64
	MeanErr float64
	// MinLog2Prec is the worst-slot precision: -log2(MaxErr).
	MinLog2Prec float64
	// MeanLog2Prec is -log2(MeanErr).
	MeanLog2Prec float64
	Slots        int
}

// Precision compares want against got slot-wise.
func Precision(want, got []complex128) PrecisionStats {
	n := min(len(want), len(got))
	var worst, sum float64
	for i := 0; i < n; i++ {
		d := cmplx.Abs(want[i] - got[i])
		sum += d
		if d > worst {
			worst = d
		}
	}
	stats := PrecisionStats{MaxErr: worst, MeanErr: sum / float64(max(n, 1)), Slots: n}
	if worst > 0 {
		stats.MinLog2Prec = -math.Log2(worst)
	} else {
		stats.MinLog2Prec = math.Inf(1)
	}
	if stats.MeanErr > 0 {
		stats.MeanLog2Prec = -math.Log2(stats.MeanErr)
	} else {
		stats.MeanLog2Prec = math.Inf(1)
	}
	return stats
}

// PrecisionReals compares real vectors.
func PrecisionReals(want, got []float64) PrecisionStats {
	cw := make([]complex128, len(want))
	cg := make([]complex128, len(got))
	for i := range want {
		cw[i] = complex(want[i], 0)
	}
	for i := range got {
		cg[i] = complex(got[i], 0)
	}
	return Precision(cw, cg)
}

// String implements fmt.Stringer.
func (s PrecisionStats) String() string {
	return fmt.Sprintf("max err %.2e (%.1f bits), mean err %.2e (%.1f bits) over %d slots",
		s.MaxErr, s.MinLog2Prec, s.MeanErr, s.MeanLog2Prec, s.Slots)
}
