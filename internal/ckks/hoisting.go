package ckks

import (
	"fmt"

	"github.com/efficientfhe/smartpaf/internal/ring"
)

// Hoisted rotations (Halevi–Shoup). A plain rotation pays, per call, the
// full RNS digit decomposition of c1: one INTT per digit, a base extension
// of every digit to every limb of Q and to P, and one NTT per extended
// limb — O(L²) transforms that dominate the key switch. The decomposition
// depends only on the input ciphertext, not on the rotation step, so a set
// of rotations of one ciphertext (the baby-step block of a BSGS linear
// layer) can hoist it: decompose once, then apply each step's Galois
// automorphism to the precomputed digits as an NTT-domain slot permutation
// (pure data movement, no transforms) followed by the multiply-accumulate
// against that step's switching key.
//
// Soundness of permuting the extended digits: the automorphism φ_k is a
// ring homomorphism mod every q_j, so Σ φ_k(u_i)·g_i ≡ φ_k(Σ u_i·g_i) ≡
// φ_k(c1) (mod Q_level) — the permuted digits are valid (signed) digits of
// φ_k(c1) with the same magnitude bound |u_i| < q_i, giving the same noise
// growth as the plain path. The outputs are not bit-identical to plain
// Rotate (the digit lifts differ by multiples of q_i on sign-flipped
// coefficients) but agree within standard key-switch noise; the equivalence
// tests pin this with the decode-and-compare harness.

// HoistedDecomposition is the reusable, step-independent part of a rotation:
// the digit decomposition of a ciphertext's c1 extended to the full Q·P
// basis and returned to NTT domain. It is bound to the ciphertext it was
// built from and is strictly per-call state — callers create it, rotate
// against it (concurrently if they wish; it is read-only once built), and
// Release it. It must never be stored on the Evaluator, which stays
// stateless and shareable.
type HoistedDecomposition struct {
	ct    *Ciphertext
	level int
	rq    *ring.Ring
	rp    *ring.Ring
	decQ  []*ring.Poly // decQ[i]: digit i over limbs 0..level, NTT domain
	decP  []*ring.Poly // decP[i]: digit i over the special prime, NTT domain
}

// DecomposeHoisted performs the digit decomposition of ct's c1 once, for
// reuse by any number of RotateHoisted calls. It costs about as much as the
// decomposition inside one plain rotation.
func (ev *Evaluator) DecomposeHoisted(ct *Ciphertext) *HoistedDecomposition {
	mark := stageClock()
	rq := ev.params.RingQ()
	rp := ev.params.RingP()
	n := ev.params.N()
	p := ev.params.P()
	level := ct.Level

	dec := &HoistedDecomposition{
		ct: ct, level: level, rq: rq, rp: rp,
		decQ: make([]*ring.Poly, level+1),
		decP: make([]*ring.Poly, level+1),
	}
	for i := range dec.decQ {
		// Every limb is fully overwritten below, so raw pool polys suffice.
		dec.decQ[i] = rq.GetPolyRaw(level)
		dec.decP[i] = rp.GetPolyRaw(0)
	}

	// Stage 1: extract digit u_i = [c1]_{q_i} into coefficient domain.
	digits := make([][]uint64, level+1)
	for i := range digits {
		digits[i] = rq.GetScratch()
	}
	ring.ForEachLimb(level+1, n, func(i int) {
		copy(digits[i], ct.C1.Coeffs[i])
		rq.Moduli[i].INTT(digits[i])
	})

	// Stage 2: extend each digit to every limb of Q and to P, NTT in place.
	// The (digit, target-limb) pairs are independent, so they fan flat.
	ring.ForEachLimb((level+1)*(level+2), n, func(job int) {
		i, j := job/(level+2), job%(level+2)
		digit := digits[i]
		qi := ev.params.Q()[i]
		if j <= level {
			dst := dec.decQ[i].Coeffs[j]
			qj := rq.Moduli[j].Q
			if qi <= qj {
				copy(dst, digit)
			} else {
				for k := 0; k < n; k++ {
					dst[k] = digit[k] % qj
				}
			}
			rq.Moduli[j].NTT(dst)
			return
		}
		dst := dec.decP[i].Coeffs[0]
		if qi <= p {
			copy(dst, digit)
		} else {
			for k := 0; k < n; k++ {
				dst[k] = digit[k] % p
			}
		}
		rp.Moduli[0].NTT(dst)
	})
	for i := range digits {
		rq.PutScratch(digits[i])
	}
	stageDone("decompose_hoisted", mark)
	return dec
}

// Release returns the decomposition's polynomials to the ring pools. The
// decomposition must not be used afterwards.
func (dec *HoistedDecomposition) Release() {
	for i := range dec.decQ {
		dec.rq.PutPoly(dec.decQ[i])
		dec.rp.PutPoly(dec.decP[i])
	}
	dec.decQ = nil
	dec.decP = nil
}

// RotateHoisted rotates the decomposed ciphertext left by step positions,
// exactly like Rotate on the ciphertext dec was built from, but reusing the
// hoisted decomposition: per call it performs only the automorphism
// permutations, the key multiply-accumulate and the final mod-down — no
// digit extraction, base extension or forward transforms.
func (ev *Evaluator) RotateHoisted(dec *HoistedDecomposition, step int) (*Ciphertext, error) {
	norm := normalizeStep(step, ev.params.Slots())
	if norm == 0 {
		return dec.ct.CopyNew(), nil
	}
	if ev.rks == nil {
		return nil, fmt.Errorf("ckks: evaluator has no rotation keys")
	}
	swk, ok := ev.rks.keys[norm]
	if !ok {
		return nil, fmt.Errorf("ckks: no rotation key for step %d", norm)
	}
	return ev.applyGaloisHoisted(dec, ev.params.galoisElement(norm), swk)
}

// ConjugateHoisted applies complex conjugation against the decomposition.
func (ev *Evaluator) ConjugateHoisted(dec *HoistedDecomposition) (*Ciphertext, error) {
	if ev.rks == nil || ev.rks.conjugation == nil {
		return nil, fmt.Errorf("ckks: evaluator has no conjugation key")
	}
	return ev.applyGaloisHoisted(dec, 2*ev.params.N()-1, ev.rks.conjugation)
}

// applyGaloisHoisted computes (φ(c0) + KS(φ(c1)), KS(φ(c1))) where φ is
// applied to the precomputed digits and to c0 as an NTT-domain slot
// permutation fused into the consuming loops.
func (ev *Evaluator) applyGaloisHoisted(dec *HoistedDecomposition, k int, swk *SwitchingKey) (*Ciphertext, error) {
	mark := stageClock()
	ct := dec.ct
	rq := ev.params.RingQ()
	rp := ev.params.RingP()
	n := ev.params.N()
	p := ev.params.P()
	level := dec.level
	idx := ev.params.galoisNTTIndex(k)

	// Per-digit multiply-accumulate against the switching key, gathering the
	// permuted digit on the fly; fans across digits like keySwitch.
	var accs []ksAcc
	ring.ForEachWorker(level+1, (level+2)*n, func(workers int) {
		accs = ev.newKSAccs(workers, level)
	}, func(w, i int) {
		acc := &accs[w]
		evk := &swk.Digits[i]
		for j := 0; j <= level; j++ {
			qj := rq.Moduli[j].Q
			src := dec.decQ[i].Coeffs[j]
			b := evk.BQ.Coeffs[j]
			a := evk.AQ.Coeffs[j]
			o0 := acc.q0.Coeffs[j]
			o1 := acc.q1.Coeffs[j]
			for t := 0; t < n; t++ {
				v := src[idx[t]]
				o0[t] = ring.AddMod(o0[t], ring.MulMod(v, b[t], qj), qj)
				o1[t] = ring.AddMod(o1[t], ring.MulMod(v, a[t], qj), qj)
			}
		}
		srcP := dec.decP[i].Coeffs[0]
		bP := evk.BP.Coeffs[0]
		aP := evk.AP.Coeffs[0]
		o0 := acc.p0.Coeffs[0]
		o1 := acc.p1.Coeffs[0]
		for t := 0; t < n; t++ {
			v := srcP[idx[t]]
			o0[t] = ring.AddMod(o0[t], ring.MulMod(v, bP[t], p), p)
			o1[t] = ring.AddMod(o1[t], ring.MulMod(v, aP[t], p), p)
		}
	})
	acc := ev.mergeKSAccs(accs)

	ev.modDownByP(acc.q0, acc.p0, level)
	ev.modDownByP(acc.q1, acc.p1, level)
	rp.PutPoly(acc.p0)
	rp.PutPoly(acc.p1)

	// out.C0 = φ(c0) + ks0, with φ(c0) gathered in NTT domain.
	out := &Ciphertext{C0: rq.GetPolyRaw(level), C1: acc.q1, Scale: ct.Scale, Level: level}
	ring.ForEachLimb(level+1, n, func(j int) {
		qj := rq.Moduli[j].Q
		src := ct.C0.Coeffs[j]
		ks := acc.q0.Coeffs[j]
		o := out.C0.Coeffs[j]
		for t := 0; t < n; t++ {
			o[t] = ring.AddMod(src[idx[t]], ks[t], qj)
		}
	})
	rq.PutPoly(acc.q0)
	stageDone("rotate_hoisted", mark)
	return out, nil
}
