package ckks

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"github.com/efficientfhe/smartpaf/internal/ring"
)

func TestParametersLiteralRoundtrip(t *testing.T) {
	lit := PN12
	data, err := lit.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got ParametersLiteral
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.LogN != lit.LogN || got.LogP != lit.LogP || got.LogScale != lit.LogScale || len(got.LogQ) != len(lit.LogQ) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, lit)
	}
	// Deterministic derivation: both sides build identical parameters.
	p1, err := NewParameters(lit)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewParameters(got)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Q() {
		if p1.Q()[i] != p2.Q()[i] {
			t.Fatal("prime chains differ after roundtrip")
		}
	}
	if p1.P() != p2.P() {
		t.Fatal("special primes differ")
	}
}

func TestParametersLiteralBadInput(t *testing.T) {
	var lit ParametersLiteral
	if err := lit.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected error on truncated input")
	}
	good, _ := PN11.MarshalBinary()
	good[0] ^= 0xFF
	if err := lit.UnmarshalBinary(good); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestCiphertextRoundtripDecrypts(t *testing.T) {
	tc := newTestContext(t, testLit)
	rng := rand.New(rand.NewSource(77))
	values := randomComplex(rng, tc.params.Slots(), 1)
	pt, _ := tc.enc.Encode(values, 2, tc.params.DefaultScale())
	ct := tc.encr.Encrypt(pt)

	data, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Ciphertext
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.Level != ct.Level || got.Scale != ct.Scale {
		t.Fatalf("metadata mismatch: (%d, %g) vs (%d, %g)", got.Level, got.Scale, ct.Level, ct.Scale)
	}
	dec := tc.enc.Decode(tc.decr.Decrypt(&got))
	if e := maxErr(values, dec); e > 1e-6 {
		t.Fatalf("roundtripped ciphertext decrypts with error %g", e)
	}
}

func TestCiphertextBadInput(t *testing.T) {
	var ct Ciphertext
	if err := ct.UnmarshalBinary([]byte{0}); err == nil {
		t.Fatal("expected error on truncated ciphertext")
	}
}

// mutateScale rewrites the scale field (bytes 8..16, after magic and
// level) of a marshaled ciphertext in place.
func mutateScale(data []byte, scale float64) {
	binary.LittleEndian.PutUint64(data[8:], math.Float64bits(scale))
}

// TestCiphertextRejectsHostileScale is the regression test for the wire bug
// where a NaN/Inf/zero/negative scale round-tripped silently and corrupted
// later arithmetic instead of erroring at the boundary.
func TestCiphertextRejectsHostileScale(t *testing.T) {
	tc := newTestContext(t, testLit)
	pt, _ := tc.enc.Encode(make([]complex128, tc.params.Slots()), 2, tc.params.DefaultScale())
	data, err := tc.encr.Encrypt(pt).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for _, scale := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -tc.params.DefaultScale()} {
		hostile := append([]byte(nil), data...)
		mutateScale(hostile, scale)
		var ct Ciphertext
		if err := ct.UnmarshalBinary(hostile); err == nil {
			t.Errorf("scale %g unmarshaled without error", scale)
		}
	}
	// The untouched payload still round-trips.
	var ct Ciphertext
	if err := ct.UnmarshalBinary(data); err != nil {
		t.Fatalf("valid ciphertext rejected: %v", err)
	}
}

// TestCiphertextRejectsDegreeMismatch is the regression test for the wire
// bug where C0 and C1 could deserialize with different ring degrees N (only
// limb counts were checked).
func TestCiphertextRejectsDegreeMismatch(t *testing.T) {
	tc := newTestContext(t, testLit)
	pt, _ := tc.enc.Encode(make([]complex128, tc.params.Slots()), 1, tc.params.DefaultScale())
	ct := tc.encr.Encrypt(pt)

	// Re-marshal by hand with C1 at half the ring degree but identical limb
	// count: header (level, scale), full C0, shrunken C1.
	var buf bytes.Buffer
	if err := writeU32(&buf, ciphertextMagic); err != nil {
		t.Fatal(err)
	}
	if err := writeU32(&buf, uint32(ct.Level)); err != nil {
		t.Fatal(err)
	}
	if err := writeU64(&buf, floatBits(ct.Scale)); err != nil {
		t.Fatal(err)
	}
	if err := writePoly(&buf, ct.C0); err != nil {
		t.Fatal(err)
	}
	shrunk := &ring.Poly{Coeffs: make([][]uint64, len(ct.C1.Coeffs))}
	for i := range shrunk.Coeffs {
		shrunk.Coeffs[i] = ct.C1.Coeffs[i][:tc.params.N()/2]
	}
	if err := writePoly(&buf, shrunk); err != nil {
		t.Fatal(err)
	}
	var got Ciphertext
	if err := got.UnmarshalBinary(buf.Bytes()); err == nil {
		t.Fatal("C0/C1 ring-degree mismatch unmarshaled without error")
	}
}

func TestPublicKeyRejectsDegreeMismatch(t *testing.T) {
	tc := newTestContext(t, testLit)
	var buf bytes.Buffer
	if err := writeU32(&buf, publicKeyMagic); err != nil {
		t.Fatal(err)
	}
	if err := writePoly(&buf, tc.pk.B); err != nil {
		t.Fatal(err)
	}
	shrunk := &ring.Poly{Coeffs: make([][]uint64, len(tc.pk.A.Coeffs))}
	for i := range shrunk.Coeffs {
		shrunk.Coeffs[i] = tc.pk.A.Coeffs[i][:tc.params.N()/2]
	}
	if err := writePoly(&buf, shrunk); err != nil {
		t.Fatal(err)
	}
	var pk PublicKey
	if err := pk.UnmarshalBinary(buf.Bytes()); err == nil {
		t.Fatal("B/A ring-degree mismatch unmarshaled without error")
	}
}

func TestPublicKeyRoundtripEncrypts(t *testing.T) {
	tc := newTestContext(t, testLit)
	data, err := tc.pk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var pk PublicKey
	if err := pk.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	encryptor := NewEncryptor(tc.params, &pk, 555)
	values := make([]complex128, tc.params.Slots())
	values[3] = complex(0.5, -0.25)
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := encryptor.Encrypt(pt)
	dec := tc.enc.Decode(tc.decr.Decrypt(ct))
	if e := maxErr(values, dec); e > 1e-6 {
		t.Fatalf("encryption under roundtripped pk fails: %g", e)
	}
}

func TestRelinearizationKeyRoundtripMultiplies(t *testing.T) {
	tc := newTestContext(t, testLit)
	data, err := tc.rlk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var rlk RelinearizationKey
	if err := rlk.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	eval := NewEvaluator(tc.params, &rlk)
	rng := rand.New(rand.NewSource(78))
	a := randomComplex(rng, tc.params.Slots(), 1)
	pa, _ := tc.enc.Encode(a, tc.params.MaxLevel(), tc.params.DefaultScale())
	ca := tc.encr.Encrypt(pa)
	prod, err := eval.MulRelinRescale(ca, ca)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(a))
	for i := range a {
		want[i] = a[i] * a[i]
	}
	if e := maxErr(want, tc.enc.Decode(tc.decr.Decrypt(prod))); e > 1e-4 {
		t.Fatalf("multiplication under roundtripped rlk fails: %g", e)
	}
}

// TestSwitchingKeyRoundtripRotates proves a switching key survives the wire:
// a rotation under the roundtripped key set must still decrypt correctly.
func TestSwitchingKeyRoundtripRotates(t *testing.T) {
	tc := newTestContext(t, testLit)
	rks := tc.kg.GenRotationKeys(tc.sk, []int{3}, false)

	data, err := rks.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got RotationKeySet
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	eval := NewEvaluator(tc.params, tc.rlk).WithRotationKeys(&got)

	rng := rand.New(rand.NewSource(91))
	values := randomComplex(rng, tc.params.Slots(), 1)
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	rot, err := eval.Rotate(tc.encr.Encrypt(pt), 3)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(values))
	for i := range values {
		want[i] = values[(i+3)%len(values)]
	}
	if e := maxErr(want, tc.enc.Decode(tc.decr.Decrypt(rot))); e > 1e-5 {
		t.Fatalf("rotation under roundtripped key fails: %g", e)
	}
}

// TestRotationKeySetRoundtrip checks the container metadata: step set and
// conjugation flag survive, and equal sets serialize identically.
func TestRotationKeySetRoundtrip(t *testing.T) {
	tc := newTestContext(t, testLit)
	rks := tc.kg.GenRotationKeys(tc.sk, []int{1, 5, 2, 5, -1}, true)

	data, err := rks.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got RotationKeySet
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	wantSteps := rks.Steps()
	gotSteps := got.Steps()
	if len(gotSteps) != len(wantSteps) {
		t.Fatalf("step count %d after roundtrip, want %d", len(gotSteps), len(wantSteps))
	}
	for i := range wantSteps {
		if gotSteps[i] != wantSteps[i] {
			t.Fatalf("steps %v after roundtrip, want %v", gotSteps, wantSteps)
		}
	}
	if !got.HasConjugation() {
		t.Fatal("conjugation key lost in roundtrip")
	}
	data2, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("re-marshaling a roundtripped set changed the bytes")
	}

	// Conjugation still works under the roundtripped set.
	eval := NewEvaluator(tc.params, tc.rlk).WithRotationKeys(&got)
	rng := rand.New(rand.NewSource(92))
	values := randomComplex(rng, tc.params.Slots(), 1)
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	conj, err := eval.Conjugate(tc.encr.Encrypt(pt))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(values))
	for i := range values {
		want[i] = complex(real(values[i]), -imag(values[i]))
	}
	if e := maxErr(want, tc.enc.Decode(tc.decr.Decrypt(conj))); e > 1e-5 {
		t.Fatalf("conjugation under roundtripped key fails: %g", e)
	}
}

func TestRotationKeySetBadInput(t *testing.T) {
	var rks RotationKeySet
	if err := rks.UnmarshalBinary([]byte{1, 2}); err == nil {
		t.Fatal("expected error on truncated set")
	}
	tc := newTestContext(t, testLit)
	good, err := tc.kg.GenRotationKeys(tc.sk, []int{1}, false).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if err := rks.UnmarshalBinary(bad); err == nil {
		t.Fatal("expected bad-magic error")
	}
	if err := rks.UnmarshalBinary(good[:len(good)-5]); err == nil {
		t.Fatal("expected error on truncated digits")
	}
}

// TestRotationKeySetRejectsMixedShapes: keys inside one set must share a
// ring degree/chain, or the spliced set would panic key-switching later.
func TestRotationKeySetRejectsMixedShapes(t *testing.T) {
	tc := newTestContext(t, testLit)
	small := testLit
	small.LogN = testLit.LogN - 1
	tcSmall := newTestContext(t, small)

	keyA, _ := tc.kg.GenRotationKeys(tc.sk, []int{1}, false).Key(1)
	keyB, _ := tcSmall.kg.GenRotationKeys(tcSmall.sk, []int{3}, false).Key(3)

	var buf bytes.Buffer
	for _, v := range []uint32{rotationKeyMagic, 2, 1} {
		if err := writeU32(&buf, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := writeDigits(&buf, keyA.Digits); err != nil {
		t.Fatal(err)
	}
	if err := writeU32(&buf, 3); err != nil {
		t.Fatal(err)
	}
	if err := writeDigits(&buf, keyB.Digits); err != nil {
		t.Fatal(err)
	}
	if err := writeU32(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var rks RotationKeySet
	if err := rks.UnmarshalBinary(buf.Bytes()); err == nil {
		t.Fatal("mixed-degree rotation-key set unmarshaled without error")
	}
}
