package ckks

import (
	"math/rand"
	"testing"
)

func TestParametersLiteralRoundtrip(t *testing.T) {
	lit := PN12
	data, err := lit.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got ParametersLiteral
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.LogN != lit.LogN || got.LogP != lit.LogP || got.LogScale != lit.LogScale || len(got.LogQ) != len(lit.LogQ) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, lit)
	}
	// Deterministic derivation: both sides build identical parameters.
	p1, err := NewParameters(lit)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewParameters(got)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Q() {
		if p1.Q()[i] != p2.Q()[i] {
			t.Fatal("prime chains differ after roundtrip")
		}
	}
	if p1.P() != p2.P() {
		t.Fatal("special primes differ")
	}
}

func TestParametersLiteralBadInput(t *testing.T) {
	var lit ParametersLiteral
	if err := lit.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected error on truncated input")
	}
	good, _ := PN11.MarshalBinary()
	good[0] ^= 0xFF
	if err := lit.UnmarshalBinary(good); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestCiphertextRoundtripDecrypts(t *testing.T) {
	tc := newTestContext(t, testLit)
	rng := rand.New(rand.NewSource(77))
	values := randomComplex(rng, tc.params.Slots(), 1)
	pt, _ := tc.enc.Encode(values, 2, tc.params.DefaultScale())
	ct := tc.encr.Encrypt(pt)

	data, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Ciphertext
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.Level != ct.Level || got.Scale != ct.Scale {
		t.Fatalf("metadata mismatch: (%d, %g) vs (%d, %g)", got.Level, got.Scale, ct.Level, ct.Scale)
	}
	dec := tc.enc.Decode(tc.decr.Decrypt(&got))
	if e := maxErr(values, dec); e > 1e-6 {
		t.Fatalf("roundtripped ciphertext decrypts with error %g", e)
	}
}

func TestCiphertextBadInput(t *testing.T) {
	var ct Ciphertext
	if err := ct.UnmarshalBinary([]byte{0}); err == nil {
		t.Fatal("expected error on truncated ciphertext")
	}
}

func TestPublicKeyRoundtripEncrypts(t *testing.T) {
	tc := newTestContext(t, testLit)
	data, err := tc.pk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var pk PublicKey
	if err := pk.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	encryptor := NewEncryptor(tc.params, &pk, 555)
	values := make([]complex128, tc.params.Slots())
	values[3] = complex(0.5, -0.25)
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := encryptor.Encrypt(pt)
	dec := tc.enc.Decode(tc.decr.Decrypt(ct))
	if e := maxErr(values, dec); e > 1e-6 {
		t.Fatalf("encryption under roundtripped pk fails: %g", e)
	}
}

func TestRelinearizationKeyRoundtripMultiplies(t *testing.T) {
	tc := newTestContext(t, testLit)
	data, err := tc.rlk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var rlk RelinearizationKey
	if err := rlk.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	eval := NewEvaluator(tc.params, &rlk)
	rng := rand.New(rand.NewSource(78))
	a := randomComplex(rng, tc.params.Slots(), 1)
	pa, _ := tc.enc.Encode(a, tc.params.MaxLevel(), tc.params.DefaultScale())
	ca := tc.encr.Encrypt(pa)
	prod, err := eval.MulRelinRescale(ca, ca)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(a))
	for i := range a {
		want[i] = a[i] * a[i]
	}
	if e := maxErr(want, tc.enc.Decode(tc.decr.Decrypt(prod))); e > 1e-4 {
		t.Fatalf("multiplication under roundtripped rlk fails: %g", e)
	}
}
