//go:build race

package ckks

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation adds a constant ~10 allocations per rotation that the
// steady-state bound must absorb.
const raceEnabled = true
