package ckks

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

func newRotationContext(t *testing.T, steps []int, conj bool) (*testContext, *RotationKeySet) {
	t.Helper()
	tc := newTestContext(t, testLit)
	rks := tc.kg.GenRotationKeys(tc.sk, steps, conj)
	tc.eval.WithRotationKeys(rks)
	return tc, rks
}

func TestRotateMatchesPlaintextShift(t *testing.T) {
	tc, _ := newRotationContext(t, []int{1, 3, 7}, false)
	rng := rand.New(rand.NewSource(21))
	values := randomComplex(rng, tc.params.Slots(), 1)
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encr.Encrypt(pt)

	for _, step := range []int{1, 3, 7} {
		rot, err := tc.eval.Rotate(ct, step)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		got := tc.enc.Decode(tc.decr.Decrypt(rot))
		slots := tc.params.Slots()
		want := make([]complex128, slots)
		for i := range want {
			want[i] = values[(i+step)%slots]
		}
		if e := maxErr(want, got); e > 1e-4 {
			t.Fatalf("step %d: rotation error %g", step, e)
		}
		if rot.Level != ct.Level {
			t.Fatalf("rotation changed level: %d -> %d", ct.Level, rot.Level)
		}
		if rot.Scale != ct.Scale {
			t.Fatalf("rotation changed scale")
		}
	}
}

func TestRotateNegativeAndWraparound(t *testing.T) {
	slots := 64 // testLit has LogN 7
	tc, _ := newRotationContext(t, []int{-2, slots + 5}, false)
	rng := rand.New(rand.NewSource(22))
	values := randomComplex(rng, slots, 1)
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encr.Encrypt(pt)

	for _, step := range []int{-2, slots + 5} {
		rot, err := tc.eval.Rotate(ct, step)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		got := tc.enc.Decode(tc.decr.Decrypt(rot))
		want := make([]complex128, slots)
		for i := range want {
			want[i] = values[((i+step)%slots+slots)%slots]
		}
		if e := maxErr(want, got); e > 1e-4 {
			t.Fatalf("step %d: error %g", step, e)
		}
	}
}

func TestRotateZeroIsIdentity(t *testing.T) {
	tc, _ := newRotationContext(t, []int{1}, false)
	values := make([]complex128, tc.params.Slots())
	values[0] = 1
	pt, _ := tc.enc.Encode(values, 1, tc.params.DefaultScale())
	ct := tc.encr.Encrypt(pt)
	rot, err := tc.eval.Rotate(ct, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(values, tc.enc.Decode(tc.decr.Decrypt(rot))); e > 1e-5 {
		t.Fatalf("zero rotation error %g", e)
	}
}

func TestRotateMissingKey(t *testing.T) {
	tc, _ := newRotationContext(t, []int{1}, false)
	pt, _ := tc.enc.Encode(make([]complex128, tc.params.Slots()), 1, tc.params.DefaultScale())
	ct := tc.encr.Encrypt(pt)
	if _, err := tc.eval.Rotate(ct, 5); err == nil {
		t.Fatal("expected missing-key error")
	}
	bare := NewEvaluator(tc.params, tc.rlk)
	if _, err := bare.Rotate(ct, 1); err == nil {
		t.Fatal("expected no-keys error")
	}
}

func TestConjugate(t *testing.T) {
	tc, _ := newRotationContext(t, nil, true)
	rng := rand.New(rand.NewSource(23))
	values := randomComplex(rng, tc.params.Slots(), 1)
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encr.Encrypt(pt)
	conj, err := tc.eval.Conjugate(ct)
	if err != nil {
		t.Fatal(err)
	}
	got := tc.enc.Decode(tc.decr.Decrypt(conj))
	want := make([]complex128, len(values))
	for i, v := range values {
		want[i] = cmplx.Conj(v)
	}
	if e := maxErr(want, got); e > 1e-4 {
		t.Fatalf("conjugation error %g", e)
	}
}

func TestRotateComposesWithArithmetic(t *testing.T) {
	// rot(a) + rot(b) == rot(a+b): rotation must commute with addition.
	tc, _ := newRotationContext(t, []int{4}, false)
	rng := rand.New(rand.NewSource(24))
	a := randomComplex(rng, tc.params.Slots(), 1)
	b := randomComplex(rng, tc.params.Slots(), 1)
	pa, _ := tc.enc.Encode(a, tc.params.MaxLevel(), tc.params.DefaultScale())
	pb, _ := tc.enc.Encode(b, tc.params.MaxLevel(), tc.params.DefaultScale())
	ca := tc.encr.Encrypt(pa)
	cb := tc.encr.Encrypt(pb)

	ra, err := tc.eval.Rotate(ca, 4)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := tc.eval.Rotate(cb, 4)
	if err != nil {
		t.Fatal(err)
	}
	lhs, err := tc.eval.Add(ra, rb)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := tc.eval.Add(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	rhs, err := tc.eval.Rotate(sum, 4)
	if err != nil {
		t.Fatal(err)
	}
	gl := tc.enc.Decode(tc.decr.Decrypt(lhs))
	gr := tc.enc.Decode(tc.decr.Decrypt(rhs))
	if e := maxErr(gl, gr); e > 1e-4 {
		t.Fatalf("rotation does not commute with addition: %g", e)
	}
}

// TestGaloisElementMatchesNaivePowerLoop pins the square-and-multiply
// galoisElement against the definitional O(step) power loop for every step
// in [0, slots) at several ring sizes (plus negative and wrapped steps).
func TestGaloisElementMatchesNaivePowerLoop(t *testing.T) {
	naive := func(p *Parameters, step int) int {
		m := 2 * p.N()
		step = ((step % (m / 4)) + m/4) % (m / 4)
		k := 1
		for i := 0; i < step; i++ {
			k = k * 5 % m
		}
		return k
	}
	for _, logN := range []int{5, 7, 10} {
		params, err := NewParameters(ParametersLiteral{
			LogN: logN, LogQ: []int{50, 40}, LogP: 55, LogScale: 40})
		if err != nil {
			t.Fatal(err)
		}
		slots := params.Slots()
		for step := 0; step < slots; step++ {
			if got, want := params.galoisElement(step), naive(params, step); got != want {
				t.Fatalf("logN=%d step=%d: galoisElement=%d naive=%d", logN, step, got, want)
			}
		}
		for _, step := range []int{-1, -slots + 3, slots, 3*slots + 5} {
			if got, want := params.galoisElement(step), naive(params, step); got != want {
				t.Fatalf("logN=%d step=%d: galoisElement=%d naive=%d", logN, step, got, want)
			}
		}
	}
}

// TestGenRotationKeysDeterministic pins the parallel key generation design:
// every switching key draws from a stream derived from (seed, Galois
// element), so the set is bit-identical across runs, step orderings and
// worker schedules.
func TestGenRotationKeysDeterministic(t *testing.T) {
	tc := newTestContext(t, testLit)
	a := tc.kg.GenRotationKeys(tc.sk, []int{1, 2, 9}, true)
	b := NewKeyGenerator(tc.params, 12345).GenRotationKeys(tc.sk, []int{9, 1, 2, 1}, true)
	ab, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(ab) != string(bb) {
		t.Fatal("rotation key sets differ across orderings/runs")
	}
}
