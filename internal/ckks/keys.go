package ckks

import (
	"github.com/efficientfhe/smartpaf/internal/ring"
)

// Plaintext is an encoded message: an NTT-domain ring element plus the scale
// and level bookkeeping shared with ciphertexts.
type Plaintext struct {
	Value *ring.Poly
	Scale float64
	Level int
}

// Ciphertext is a standard two-component CKKS ciphertext (c0, c1) in NTT
// domain, decryptable as c0 + c1·s.
type Ciphertext struct {
	C0, C1 *ring.Poly
	Scale  float64
	Level  int
}

// CopyNew deep-copies the ciphertext.
func (ct *Ciphertext) CopyNew() *Ciphertext {
	return &Ciphertext{C0: ct.C0.CopyNew(), C1: ct.C1.CopyNew(), Scale: ct.Scale, Level: ct.Level}
}

// SecretKey holds s in NTT domain. QP carries limbs [q_0..q_L, P] (the P limb
// is needed during key switching); Q is a view of the q limbs only.
type SecretKey struct {
	Q *ring.Poly // limbs q_0..q_L
	P *ring.Poly // single P limb
}

// PublicKey is a standard RLWE encryption key (b, a) with b = -a·s + e.
type PublicKey struct {
	B, A *ring.Poly // NTT domain, limbs q_0..q_L
}

// EvaluationKeyDigit is one gadget digit of a key-switching key: a pair
// (b_i, a_i) over Q (limbs q_0..q_L) plus the P limb of each component.
type EvaluationKeyDigit struct {
	BQ, AQ *ring.Poly // limbs q_0..q_L
	BP, AP *ring.Poly // single P limb
}

// RelinearizationKey switches s^2 back to s. Digit i handles the RNS digit
// [d2]_{q_i}: b_i = -a_i·s + e_i + P·g_i·s^2 where the gadget g_i ≡ δ_ij
// (mod q_j) for every j, which holds at every level, so one key set serves
// the entire modulus chain.
type RelinearizationKey struct {
	Digits []EvaluationKeyDigit
}

// KeyGenerator produces the key material. Deterministic given the seed.
type KeyGenerator struct {
	params   *Parameters
	samplerQ *ring.Sampler
	samplerP *ring.Sampler
	seed     int64
}

// NewKeyGenerator returns a generator seeded deterministically.
func NewKeyGenerator(params *Parameters, seed int64) *KeyGenerator {
	return &KeyGenerator{
		params:   params,
		samplerQ: ring.NewSampler(params.RingQ(), seed),
		samplerP: ring.NewSampler(params.RingP(), seed^0x5eed),
		seed:     seed,
	}
}

// GenSecretKey samples a uniform ternary secret (density 2/3) and stores it
// in NTT domain over both Q and P.
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	L := kg.params.MaxLevel()
	// Sample the signed coefficients once, then embed into both rings so the
	// Q and P views are the same secret.
	signed := kg.samplerQ.TernarySigned(2.0 / 3.0)
	skQ := kg.params.RingQ().SetSignedCoeffs(signed, L)
	skP := kg.params.RingP().SetSignedCoeffs(signed, 0)
	kg.params.RingQ().NTT(skQ)
	kg.params.RingP().NTT(skP)
	return &SecretKey{Q: skQ, P: skP}
}

// GenPublicKey returns (b, a) with b = -a·s + e over the full chain.
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	L := kg.params.MaxLevel()
	rq := kg.params.RingQ()
	a := kg.samplerQ.Uniform(L)
	e := kg.samplerQ.Gaussian(L)
	rq.NTT(e)
	b := rq.NewPoly(L)
	rq.MulCoeffs(a, sk.Q, b)
	rq.Neg(b, b)
	rq.Add(b, e, b)
	return &PublicKey{B: b, A: a}
}

// GenRelinearizationKey builds the per-prime gadget relinearization key.
func (kg *KeyGenerator) GenRelinearizationKey(sk *SecretKey) *RelinearizationKey {
	L := kg.params.MaxLevel()
	rq := kg.params.RingQ()
	rp := kg.params.RingP()

	s2Q := rq.NewPoly(L)
	rq.MulCoeffs(sk.Q, sk.Q, s2Q)

	rlk := &RelinearizationKey{Digits: make([]EvaluationKeyDigit, L+1)}
	for i := 0; i <= L; i++ {
		// a_i is a uniform element of R_QP: independent uniform residues per
		// prime are exactly a CRT-uniform element. The error e_i, however,
		// must be one small integer polynomial, so it is sampled signed once
		// and embedded into both rings.
		aQ := kg.samplerQ.Uniform(L)
		aP := kg.samplerP.Uniform(0)
		eSigned := kg.samplerQ.GaussianSigned()
		eQ := rq.SetSignedCoeffs(eSigned, L)
		eP := rp.SetSignedCoeffs(eSigned, 0)
		rq.NTT(eQ)
		rp.NTT(eP)

		bQ := rq.NewPoly(L)
		rq.MulCoeffs(aQ, sk.Q, bQ)
		rq.Neg(bQ, bQ)
		rq.Add(bQ, eQ, bQ)
		// Add P·g_i·s^2: the gadget term lives only on limb i, where it is
		// (P mod q_i)·s^2.
		qi := kg.params.Q()[i]
		pModQi := kg.params.pModQ[i]
		s2Limb := s2Q.Coeffs[i]
		bLimb := bQ.Coeffs[i]
		for j := range bLimb {
			bLimb[j] = ring.AddMod(bLimb[j], ring.MulMod(s2Limb[j], pModQi, qi), qi)
		}

		bP := rp.NewPoly(0)
		rp.MulCoeffs(aP, sk.P, bP)
		rp.Neg(bP, bP)
		rp.Add(bP, eP, bP)

		rlk.Digits[i] = EvaluationKeyDigit{BQ: bQ, AQ: aQ, BP: bP, AP: aP}
	}
	return rlk
}
