package ckks

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"github.com/efficientfhe/smartpaf/internal/ring"
)

// testContext bundles everything needed by scheme tests.
type testContext struct {
	params *Parameters
	enc    *Encoder
	kg     *KeyGenerator
	sk     *SecretKey
	pk     *PublicKey
	rlk    *RelinearizationKey
	encr   *Encryptor
	decr   *Decryptor
	eval   *Evaluator
}

func newTestContext(t testing.TB, lit ParametersLiteral) *testContext {
	t.Helper()
	params, err := NewParameters(lit)
	if err != nil {
		t.Fatalf("NewParameters: %v", err)
	}
	kg := NewKeyGenerator(params, 12345)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	return &testContext{
		params: params,
		enc:    NewEncoder(params),
		kg:     kg,
		sk:     sk,
		pk:     pk,
		rlk:    rlk,
		encr:   NewEncryptor(params, pk, 777),
		decr:   NewDecryptor(params, sk),
		eval:   NewEvaluator(params, rlk),
	}
}

// tiny parameter set for fast tests; LogN=7 is insecure but exercises every
// code path identically.
var testLit = ParametersLiteral{LogN: 7, LogQ: []int{50, 40, 40, 40, 40}, LogP: 55, LogScale: 40}

func randomComplex(rng *rand.Rand, n int, bound float64) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex((rng.Float64()*2-1)*bound, (rng.Float64()*2-1)*bound)
	}
	return out
}

func maxErr(a, b []complex128) float64 {
	var worst float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestParametersAccessors(t *testing.T) {
	params, err := NewParameters(testLit)
	if err != nil {
		t.Fatal(err)
	}
	if params.N() != 128 || params.Slots() != 64 {
		t.Fatalf("N=%d slots=%d", params.N(), params.Slots())
	}
	if params.MaxLevel() != 4 {
		t.Fatalf("MaxLevel=%d want 4", params.MaxLevel())
	}
	if got := params.DefaultScale(); got != math.Exp2(40) {
		t.Fatalf("DefaultScale=%g", got)
	}
	total := params.TotalLogQP()
	if total < 260 || total > 270 {
		t.Fatalf("TotalLogQP=%.1f outside expected range", total)
	}
	for l := 1; l <= params.MaxLevel(); l++ {
		for j := 0; j < l; j++ {
			inv := params.qInvMod[l][j]
			if ring.MulMod(params.Q()[l]%params.Q()[j], inv, params.Q()[j]) != 1 {
				t.Fatalf("qInvMod[%d][%d] wrong", l, j)
			}
		}
	}
}

func TestParameterValidation(t *testing.T) {
	cases := []ParametersLiteral{
		{LogN: 2, LogQ: []int{40}, LogP: 40, LogScale: 30},
		{LogN: 10, LogQ: nil, LogP: 40, LogScale: 30},
		{LogN: 10, LogQ: []int{40}, LogP: 40, LogScale: 10},
	}
	for i, lit := range cases {
		if _, err := NewParameters(lit); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestEncoderRoundtrip(t *testing.T) {
	tc := newTestContext(t, testLit)
	rng := rand.New(rand.NewSource(1))
	values := randomComplex(rng, tc.params.Slots(), 1)
	pt, err := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	got := tc.enc.Decode(pt)
	if e := maxErr(values, got); e > 1e-8 {
		t.Fatalf("roundtrip error %g too large", e)
	}
}

func TestEncoderFastMatchesNaive(t *testing.T) {
	tc := newTestContext(t, testLit)
	rng := rand.New(rand.NewSource(2))
	values := randomComplex(rng, tc.params.Slots(), 1)

	fast, err := tc.enc.Encode(values, 1, tc.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	naive, err := tc.enc.EncodeNaive(values, 1, tc.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	// Compare decoded values of both paths and cross-decode.
	dFast := tc.enc.Decode(fast)
	dNaiveDec := tc.enc.DecodeNaive(fast)
	dNaive := tc.enc.Decode(naive)
	if e := maxErr(dFast, dNaive); e > 1e-7 {
		t.Fatalf("fast vs naive encode disagree: %g", e)
	}
	if e := maxErr(dFast, dNaiveDec); e > 1e-7 {
		t.Fatalf("fast vs naive decode disagree: %g", e)
	}
}

func TestEncodeRejectsOversizedInput(t *testing.T) {
	tc := newTestContext(t, testLit)
	too := make([]complex128, tc.params.Slots()+1)
	if _, err := tc.enc.Encode(too, 1, tc.params.DefaultScale()); err == nil {
		t.Fatal("expected error for too many values")
	}
}

func TestEncryptDecrypt(t *testing.T) {
	tc := newTestContext(t, testLit)
	rng := rand.New(rand.NewSource(3))
	values := randomComplex(rng, tc.params.Slots(), 1)
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encr.Encrypt(pt)
	got := tc.enc.Decode(tc.decr.Decrypt(ct))
	if e := maxErr(values, got); e > 1e-6 {
		t.Fatalf("encrypt/decrypt error %g too large", e)
	}
}

func TestHomomorphicAddSubNeg(t *testing.T) {
	tc := newTestContext(t, testLit)
	rng := rand.New(rand.NewSource(4))
	a := randomComplex(rng, tc.params.Slots(), 1)
	b := randomComplex(rng, tc.params.Slots(), 1)
	pa, _ := tc.enc.Encode(a, tc.params.MaxLevel(), tc.params.DefaultScale())
	pb, _ := tc.enc.Encode(b, tc.params.MaxLevel(), tc.params.DefaultScale())
	ca := tc.encr.Encrypt(pa)
	cb := tc.encr.Encrypt(pb)

	sum, err := tc.eval.Add(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(a))
	for i := range want {
		want[i] = a[i] + b[i]
	}
	if e := maxErr(want, tc.enc.Decode(tc.decr.Decrypt(sum))); e > 1e-6 {
		t.Fatalf("add error %g", e)
	}

	diff, err := tc.eval.Sub(sum, cb)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(a, tc.enc.Decode(tc.decr.Decrypt(diff))); e > 1e-6 {
		t.Fatalf("sub error %g", e)
	}

	neg := tc.eval.Neg(ca)
	wantNeg := make([]complex128, len(a))
	for i := range wantNeg {
		wantNeg[i] = -a[i]
	}
	if e := maxErr(wantNeg, tc.enc.Decode(tc.decr.Decrypt(neg))); e > 1e-6 {
		t.Fatalf("neg error %g", e)
	}
}

func TestAddScaleMismatchRejected(t *testing.T) {
	tc := newTestContext(t, testLit)
	values := make([]complex128, tc.params.Slots())
	p1, _ := tc.enc.Encode(values, 1, tc.params.DefaultScale())
	p2, _ := tc.enc.Encode(values, 1, tc.params.DefaultScale()*2)
	c1 := tc.encr.Encrypt(p1)
	c2 := tc.encr.Encrypt(p2)
	if _, err := tc.eval.Add(c1, c2); err == nil {
		t.Fatal("expected scale mismatch error")
	}
}

func TestMulPlainRescale(t *testing.T) {
	tc := newTestContext(t, testLit)
	rng := rand.New(rand.NewSource(5))
	a := randomComplex(rng, tc.params.Slots(), 1)
	b := randomComplex(rng, tc.params.Slots(), 1)
	pa, _ := tc.enc.Encode(a, tc.params.MaxLevel(), tc.params.DefaultScale())
	pb, _ := tc.enc.Encode(b, tc.params.MaxLevel(), tc.params.DefaultScale())
	ca := tc.encr.Encrypt(pa)

	prod := tc.eval.MulPlain(ca, pb)
	prod, err := tc.eval.Rescale(prod)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(a))
	for i := range want {
		want[i] = a[i] * b[i]
	}
	if e := maxErr(want, tc.enc.Decode(tc.decr.Decrypt(prod))); e > 1e-5 {
		t.Fatalf("plain mul error %g", e)
	}
	if prod.Level != tc.params.MaxLevel()-1 {
		t.Fatalf("level after rescale = %d", prod.Level)
	}
}

func TestMulRelinRescale(t *testing.T) {
	tc := newTestContext(t, testLit)
	rng := rand.New(rand.NewSource(6))
	a := randomComplex(rng, tc.params.Slots(), 1)
	b := randomComplex(rng, tc.params.Slots(), 1)
	pa, _ := tc.enc.Encode(a, tc.params.MaxLevel(), tc.params.DefaultScale())
	pb, _ := tc.enc.Encode(b, tc.params.MaxLevel(), tc.params.DefaultScale())
	ca := tc.encr.Encrypt(pa)
	cb := tc.encr.Encrypt(pb)

	prod, err := tc.eval.MulRelinRescale(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(a))
	for i := range want {
		want[i] = a[i] * b[i]
	}
	if e := maxErr(want, tc.enc.Decode(tc.decr.Decrypt(prod))); e > 1e-4 {
		t.Fatalf("ct-ct mul error %g", e)
	}
}

func TestDeepMultiplicationChain(t *testing.T) {
	// Squaring chain x -> x^2 -> x^4 -> ... down the whole modulus chain
	// verifies noise control and scale management at depth.
	tc := newTestContext(t, testLit)
	slots := tc.params.Slots()
	values := make([]complex128, slots)
	for i := range values {
		values[i] = complex(0.9*math.Cos(float64(i)), 0)
	}
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encr.Encrypt(pt)

	want := append([]complex128(nil), values...)
	for depth := 0; depth < tc.params.MaxLevel(); depth++ {
		var err error
		ct, err = tc.eval.MulRelinRescale(ct, ct)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		for i := range want {
			want[i] *= want[i]
		}
		got := tc.enc.Decode(tc.decr.Decrypt(ct))
		if e := maxErr(want, got); e > 1e-2 {
			t.Fatalf("depth %d: error %g too large", depth+1, e)
		}
	}
	if ct.Level != 0 {
		t.Fatalf("expected level 0 at end, got %d", ct.Level)
	}
}

func TestMulConstTargetScale(t *testing.T) {
	tc := newTestContext(t, testLit)
	rng := rand.New(rand.NewSource(7))
	a := randomComplex(rng, tc.params.Slots(), 1)
	pa, _ := tc.enc.Encode(a, tc.params.MaxLevel(), tc.params.DefaultScale())
	ca := tc.encr.Encrypt(pa)

	target := tc.params.DefaultScale()
	out, err := tc.eval.MulConstTargetScale(ca, -3.25, target)
	if err != nil {
		t.Fatal(err)
	}
	if out.Scale != target {
		t.Fatalf("scale %g != target %g", out.Scale, target)
	}
	if out.Level != ca.Level-1 {
		t.Fatalf("level %d, want %d", out.Level, ca.Level-1)
	}
	want := make([]complex128, len(a))
	for i := range want {
		want[i] = a[i] * complex(-3.25, 0)
	}
	if e := maxErr(want, tc.enc.Decode(tc.decr.Decrypt(out))); e > 1e-5 {
		t.Fatalf("const mul error %g", e)
	}
}

func TestAddConst(t *testing.T) {
	tc := newTestContext(t, testLit)
	rng := rand.New(rand.NewSource(8))
	a := randomComplex(rng, tc.params.Slots(), 1)
	pa, _ := tc.enc.Encode(a, 2, tc.params.DefaultScale())
	ca := tc.encr.Encrypt(pa)
	out, err := tc.eval.AddConst(ca, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(a))
	for i := range want {
		want[i] = a[i] + 0.75
	}
	if e := maxErr(want, tc.enc.Decode(tc.decr.Decrypt(out))); e > 1e-6 {
		t.Fatalf("add const error %g", e)
	}
}

func TestDropLevelAndAddAcrossLevels(t *testing.T) {
	tc := newTestContext(t, testLit)
	rng := rand.New(rand.NewSource(9))
	a := randomComplex(rng, tc.params.Slots(), 1)
	pa, _ := tc.enc.Encode(a, tc.params.MaxLevel(), tc.params.DefaultScale())
	ca := tc.encr.Encrypt(pa)
	low := tc.eval.DropLevel(ca, 1)
	if low.Level != 1 {
		t.Fatalf("DropLevel level=%d", low.Level)
	}
	sum, err := tc.eval.Add(ca, low)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Level != 1 {
		t.Fatalf("cross-level add level=%d", sum.Level)
	}
	want := make([]complex128, len(a))
	for i := range want {
		want[i] = 2 * a[i]
	}
	if e := maxErr(want, tc.enc.Decode(tc.decr.Decrypt(sum))); e > 1e-6 {
		t.Fatalf("cross-level add error %g", e)
	}
}

func TestRescaleAtLevelZeroFails(t *testing.T) {
	tc := newTestContext(t, testLit)
	pt, _ := tc.enc.Encode(make([]complex128, tc.params.Slots()), 0, tc.params.DefaultScale())
	ct := tc.encr.Encrypt(pt)
	if _, err := tc.eval.Rescale(ct); err == nil {
		t.Fatal("expected rescale failure at level 0")
	}
}
