package ckks

import (
	"sync/atomic"
	"time"
)

// StageObserver receives the duration of one completed CKKS primitive
// stage. The serving layer installs one that feeds per-stage latency
// histograms; nothing is installed by default and the disabled cost is a
// single atomic pointer load per stage.
//
// Stage names: "key_switch", "rescale", "decompose_hoisted",
// "rotate_hoisted", "rotate", "encode". Stages overlap where primitives
// nest — "rotate" and "rotate_hoisted" both include the "key_switch" (or
// hoisted multiply-accumulate) work they perform — so totals are per-stage
// views, not a partition of wall time.
//
// Observers must be fast and must not call back into the evaluator; they
// run inline on the hot path, possibly from many goroutines at once.
type StageObserver func(stage string, d time.Duration)

var stageObs atomic.Pointer[StageObserver]

// SetStageObserver installs the process-wide stage observer; nil removes
// it. Intended to be called once at server start-up.
func SetStageObserver(f StageObserver) {
	if f == nil {
		stageObs.Store(nil)
		return
	}
	stageObs.Store(&f)
}

// stageClock returns a start mark, or the zero Time when no observer is
// installed — so disabled instrumentation never reads the clock.
func stageClock() time.Time {
	if stageObs.Load() == nil {
		return time.Time{}
	}
	return time.Now()
}

// stageDone reports the stage to the observer, if one was installed when
// the stage started.
func stageDone(stage string, start time.Time) {
	if start.IsZero() {
		return
	}
	if f := stageObs.Load(); f != nil {
		(*f)(stage, time.Since(start))
	}
}
