package ckks

import "testing"

// FuzzCiphertextUnmarshal throws arbitrary bytes at the ciphertext wire
// decoder: it must reject garbage with an error (never panic or
// over-allocate — wiremagic's bounds are what keep a hostile length
// field from becoming a multi-gigabyte make), and anything it accepts
// must survive a re-marshal round trip.
func FuzzCiphertextUnmarshal(f *testing.F) {
	tc := newTestContext(f, testLit)
	pt, _ := tc.enc.Encode(make([]complex128, tc.params.Slots()), 2, tc.params.DefaultScale())
	seed, err := tc.encr.Encrypt(pt).MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{})
	corrupt := append([]byte(nil), seed...)
	corrupt[0] ^= 0xFF
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		var ct Ciphertext
		if err := ct.UnmarshalBinary(data); err != nil {
			return // rejected cleanly: that is the contract
		}
		out, err := ct.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted ciphertext fails to re-marshal: %v", err)
		}
		var again Ciphertext
		if err := again.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-marshaled ciphertext rejected: %v", err)
		}
	})
}
