// Package minimax provides the polynomial-fitting machinery SMART-PAF builds
// on: a Remez exchange algorithm producing minimax odd-polynomial
// approximations of sign(x) (the initialization used by Lee et al. 2021 and
// Cheon et al. 2020), composite sign approximations of prescribed precision,
// and weighted least-squares fitting (the workhorse of Coefficient Tuning).
package minimax

import (
	"fmt"
	"math"
)

// SolveLinear solves A·x = b in place by Gaussian elimination with partial
// pivoting. A is row-major n×n; A and b are clobbered.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("minimax: matrix row %d has %d entries, want %d", i, len(a[i]), n)
		}
	}
	if len(b) != n {
		return nil, fmt.Errorf("minimax: rhs has %d entries, want %d", len(b), n)
	}
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-300 {
			return nil, fmt.Errorf("minimax: singular system at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate below.
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			a[r][col] = 0
			for c := col + 1; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

// evalOdd evaluates Σ c[k]·x^(2k+1).
func evalOdd(coeffs []float64, x float64) float64 {
	x2 := x * x
	// Horner on the odd basis: x·(c0 + x²·(c1 + x²·(...))).
	acc := 0.0
	for k := len(coeffs) - 1; k >= 0; k-- {
		acc = acc*x2 + coeffs[k]
	}
	return acc * x
}
