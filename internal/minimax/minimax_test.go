package minimax

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveLinearKnownSystem(t *testing.T) {
	a := [][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}}
	b := []float64{8, -11, -3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("x[%d]=%g want %g", i, x[i], want[i])
		}
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := SolveLinear(a, b); err == nil {
		t.Fatal("expected singular-system error")
	}
}

func TestSolveLinearRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		a := make([][]float64, n)
		orig := make([][]float64, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = make([]float64, n)
			orig[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				a[i][j] = r.NormFloat64()
				orig[i][j] = a[i][j]
			}
			a[i][i] += float64(n) // diagonally dominant => well conditioned
			orig[i][i] = a[i][i]
			var s float64
			for j := 0; j < n; j++ {
				s += orig[i][j] * x[j]
			}
			b[i] = s
		}
		got, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-8 {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestApproxSignOddEquioscillation(t *testing.T) {
	coeffs, e, err := ApproxSignOdd(7, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(coeffs) != 4 {
		t.Fatalf("expected 4 odd coefficients, got %d", len(coeffs))
	}
	if e <= 0 || e >= 1 {
		t.Fatalf("suspicious minimax error %g", e)
	}
	// Max error on a fine grid should match the reported error closely and
	// hold over the whole domain.
	var worst float64
	for i := 0; i <= 10000; i++ {
		x := 0.05 + 0.95*float64(i)/10000
		d := math.Abs(EvalOdd(coeffs, x) - 1)
		if d > worst {
			worst = d
		}
	}
	if math.Abs(worst-e) > 1e-6 {
		t.Fatalf("reported error %g but grid error %g", e, worst)
	}
	// Odd symmetry: p(-x) = -p(x).
	for _, x := range []float64{0.1, 0.33, 0.9} {
		if math.Abs(EvalOdd(coeffs, -x)+EvalOdd(coeffs, x)) > 1e-12 {
			t.Fatal("polynomial not odd")
		}
	}
}

func TestApproxSignOddErrorDecreasesWithDegree(t *testing.T) {
	var prev float64 = math.Inf(1)
	for _, d := range []int{3, 5, 7, 9, 13} {
		_, e, err := ApproxSignOdd(d, 0.1, 1)
		if err != nil {
			t.Fatalf("degree %d: %v", d, err)
		}
		if e >= prev {
			t.Fatalf("minimax error did not decrease: deg %d err %g (prev %g)", d, e, prev)
		}
		prev = e
	}
}

func TestApproxSignOddValidation(t *testing.T) {
	if _, _, err := ApproxSignOdd(4, 0.1, 1); err == nil {
		t.Fatal("even degree should fail")
	}
	if _, _, err := ApproxSignOdd(3, 0, 1); err == nil {
		t.Fatal("a=0 should fail")
	}
	if _, _, err := ApproxSignOdd(3, 1, 0.5); err == nil {
		t.Fatal("a>b should fail")
	}
}

func TestCompositeSignPrecision(t *testing.T) {
	stages, e, err := CompositeSign([]int{7, 7, 13}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 3 {
		t.Fatalf("expected 3 stages")
	}
	if e > 2e-2 {
		t.Fatalf("final stage error %g too large", e)
	}
	// End-to-end: |composite(x) - sign(x)| small for |x| in [eps, 1].
	evalComposite := func(x float64) float64 {
		for _, s := range stages {
			x = EvalOdd(s, x)
		}
		return x
	}
	for i := 0; i <= 2000; i++ {
		x := 0.01 + 0.99*float64(i)/2000
		if d := math.Abs(evalComposite(x) - 1); d > 2e-2 {
			t.Fatalf("composite error %g at x=%g", d, x)
		}
		if d := math.Abs(evalComposite(-x) + 1); d > 2e-2 {
			t.Fatalf("composite error %g at x=-%g", d, x)
		}
	}
}

func TestFitWeightedOddLSRecoversPolynomial(t *testing.T) {
	// Fitting samples generated from an odd cubic must recover it.
	truth := []float64{1.5, -0.5}
	xs := make([]float64, 101)
	ws := make([]float64, 101)
	for i := range xs {
		xs[i] = -1 + 2*float64(i)/100
		ws[i] = 1
	}
	got, err := FitWeightedOddLS(3, xs, ws, func(x float64) float64 { return EvalOdd(truth, x) })
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(got[i]-truth[i]) > 1e-8 {
			t.Fatalf("coefficient %d: got %g want %g", i, got[i], truth[i])
		}
	}
}

func TestFitWeightedOddLSRespectsWeights(t *testing.T) {
	// Weight mass concentrated near 0.2 should fit sign better there than a
	// uniform fit does.
	xs := make([]float64, 401)
	wNarrow := make([]float64, 401)
	wWide := make([]float64, 401)
	for i := range xs {
		x := -1 + 2*float64(i)/400
		xs[i] = x
		wWide[i] = 1
		wNarrow[i] = math.Exp(-((math.Abs(x) - 0.2) * (math.Abs(x) - 0.2)) / 0.005)
	}
	sign := func(x float64) float64 {
		if x > 0 {
			return 1
		}
		if x < 0 {
			return -1
		}
		return 0
	}
	cNarrow, err := FitWeightedOddLS(7, xs, wNarrow, sign)
	if err != nil {
		t.Fatal(err)
	}
	cWide, err := FitWeightedOddLS(7, xs, wWide, sign)
	if err != nil {
		t.Fatal(err)
	}
	// Compare weighted error around 0.2.
	errAt := func(c []float64) float64 {
		var s float64
		for _, x := range []float64{0.15, 0.2, 0.25} {
			s += math.Abs(EvalOdd(c, x) - 1)
		}
		return s
	}
	if errAt(cNarrow) >= errAt(cWide) {
		t.Fatalf("narrow-weighted fit not better near 0.2: %g vs %g", errAt(cNarrow), errAt(cWide))
	}
}

func TestFitWeightedOddLSValidation(t *testing.T) {
	if _, err := FitWeightedOddLS(2, []float64{1}, []float64{1}, math.Abs); err == nil {
		t.Fatal("even degree should fail")
	}
	if _, err := FitWeightedOddLS(3, []float64{1, 2}, []float64{1}, math.Abs); err == nil {
		t.Fatal("length mismatch should fail")
	}
}
