package minimax

import (
	"fmt"
	"math"
)

// ApproxSignOdd computes the minimax odd polynomial of the given odd degree
// approximating sign(x) on [-b,-a] ∪ [a,b] via the Remez exchange algorithm.
// By odd symmetry this reduces to approximating the constant 1 on [a,b] with
// the basis {x, x³, ..., x^degree}. It returns the coefficients (odd basis)
// and the achieved minimax error.
func ApproxSignOdd(degree int, a, b float64) ([]float64, float64, error) {
	if degree < 1 || degree%2 == 0 {
		return nil, 0, fmt.Errorf("minimax: degree must be odd and ≥1, got %d", degree)
	}
	if !(0 < a && a < b) {
		return nil, 0, fmt.Errorf("minimax: need 0 < a < b, got [%g,%g]", a, b)
	}
	nc := (degree + 1) / 2 // number of odd coefficients
	m := nc + 1            // equioscillation points

	// Initial reference: Chebyshev nodes on [a,b].
	ref := make([]float64, m)
	for i := 0; i < m; i++ {
		theta := math.Pi * float64(i) / float64(m-1)
		ref[i] = (a+b)/2 + (b-a)/2*math.Cos(theta)
	}

	var coeffs []float64
	var lastE float64
	for iter := 0; iter < 60; iter++ {
		// Solve p(x_i) + (-1)^i E = 1 for the nc coefficients and E.
		mat := make([][]float64, m)
		rhs := make([]float64, m)
		for i := 0; i < m; i++ {
			row := make([]float64, m)
			x := ref[i]
			pw := x
			for k := 0; k < nc; k++ {
				row[k] = pw
				pw *= x * x
			}
			if i%2 == 0 {
				row[nc] = 1
			} else {
				row[nc] = -1
			}
			mat[i] = row
			rhs[i] = 1
		}
		sol, err := SolveLinear(mat, rhs)
		if err != nil {
			return nil, 0, err
		}
		coeffs = sol[:nc]
		e := math.Abs(sol[nc])

		// Exchange: locate the alternating extrema of the error on a grid.
		newRef, maxErr := alternatingExtrema(coeffs, a, b, m)
		if len(newRef) == m {
			ref = newRef
		}
		if maxErr-e < 1e-12*math.Max(1, maxErr) || math.Abs(maxErr-lastE) < 1e-14 {
			return coeffs, maxErr, nil
		}
		lastE = maxErr
	}
	_, maxErr := alternatingExtrema(coeffs, a, b, m)
	return coeffs, maxErr, nil
}

// alternatingExtrema samples err(x) = p(x)-1 on [a,b] and returns up to m
// sign-alternating local extrema (always including the global max error).
func alternatingExtrema(coeffs []float64, a, b float64, m int) ([]float64, float64) {
	const grid = 4000
	xs := make([]float64, grid+1)
	es := make([]float64, grid+1)
	var maxAbs float64
	for i := 0; i <= grid; i++ {
		x := a + (b-a)*float64(i)/grid
		xs[i] = x
		es[i] = evalOdd(coeffs, x) - 1
		if v := math.Abs(es[i]); v > maxAbs {
			maxAbs = v
		}
	}
	// Collect local extrema (including endpoints).
	type ext struct {
		x, e float64
	}
	var cands []ext
	cands = append(cands, ext{xs[0], es[0]})
	for i := 1; i < grid; i++ {
		if (es[i]-es[i-1])*(es[i+1]-es[i]) <= 0 {
			cands = append(cands, ext{xs[i], es[i]})
		}
	}
	cands = append(cands, ext{xs[grid], es[grid]})

	// Greedy alternating selection keeping the largest magnitudes.
	var sel []ext
	for _, c := range cands {
		if len(sel) == 0 {
			sel = append(sel, c)
			continue
		}
		last := &sel[len(sel)-1]
		if (c.e >= 0) == (last.e >= 0) {
			if math.Abs(c.e) > math.Abs(last.e) {
				*last = c
			}
		} else {
			sel = append(sel, c)
		}
	}
	// Trim to m points keeping the largest |e| run.
	for len(sel) > m {
		// Drop the smaller of the two endpoints.
		if math.Abs(sel[0].e) < math.Abs(sel[len(sel)-1].e) {
			sel = sel[1:]
		} else {
			sel = sel[:len(sel)-1]
		}
	}
	out := make([]float64, len(sel))
	for i, s := range sel {
		out[i] = s.x
	}
	return out, maxAbs
}

// CompositeSign builds a composite minimax sign approximation in the style
// of Lee et al. 2021: successive minimax stages, each refining the image
// interval of the previous one, so that the final output is within finalErr
// of sign(x) for all |x| ∈ [eps, 1]. stageDegrees lists the component
// degrees applied first-to-last. It returns the per-stage odd coefficients.
func CompositeSign(stageDegrees []int, eps float64) ([][]float64, float64, error) {
	if len(stageDegrees) == 0 {
		return nil, 0, fmt.Errorf("minimax: no stages")
	}
	stages := make([][]float64, len(stageDegrees))
	lo, hi := eps, 1.0
	var err float64
	for i, deg := range stageDegrees {
		c, e, rerr := ApproxSignOdd(deg, lo, hi)
		if rerr != nil {
			return nil, 0, rerr
		}
		stages[i] = c
		// The stage maps ±[lo,hi] into ±[1-e, 1+e].
		lo, hi = 1-e, 1+e
		err = e
	}
	return stages, err, nil
}

// FitWeightedOddLS fits an odd polynomial of the given degree to target(x)
// by weighted least squares over the sample points: minimize
// Σ w_i (p(x_i) - target(x_i))². This is the "traditional regression"
// initialization of the paper and the inner solver of Coefficient Tuning.
func FitWeightedOddLS(degree int, xs, ws []float64, target func(float64) float64) ([]float64, error) {
	if degree < 1 || degree%2 == 0 {
		return nil, fmt.Errorf("minimax: degree must be odd, got %d", degree)
	}
	if len(xs) != len(ws) {
		return nil, fmt.Errorf("minimax: %d points but %d weights", len(xs), len(ws))
	}
	nc := (degree + 1) / 2
	// Normal equations: (BᵀWB)c = BᵀWy with B_{ik} = x_i^{2k+1}.
	ata := make([][]float64, nc)
	for i := range ata {
		ata[i] = make([]float64, nc)
	}
	atb := make([]float64, nc)
	basis := make([]float64, nc)
	for i, x := range xs {
		w := ws[i]
		if w == 0 {
			continue
		}
		pw := x
		for k := 0; k < nc; k++ {
			basis[k] = pw
			pw *= x * x
		}
		y := target(x)
		for r := 0; r < nc; r++ {
			for c := r; c < nc; c++ {
				ata[r][c] += w * basis[r] * basis[c]
			}
			atb[r] += w * basis[r] * y
		}
	}
	for r := 0; r < nc; r++ {
		for c := 0; c < r; c++ {
			ata[r][c] = ata[c][r]
		}
		// Tikhonov damping keeps near-singular systems (narrow
		// distributions) solvable without visibly biasing the fit.
		ata[r][r] += 1e-12
	}
	return SolveLinear(ata, atb)
}

// EvalOdd exposes odd-basis evaluation for callers of this package.
func EvalOdd(coeffs []float64, x float64) float64 { return evalOdd(coeffs, x) }
