package smartpaf

import (
	"fmt"

	"github.com/efficientfhe/smartpaf/internal/data"
	"github.com/efficientfhe/smartpaf/internal/nn"
	"github.com/efficientfhe/smartpaf/internal/paf"
)

// EventKind tags points on the training curve (the Fig. 9 markers).
type EventKind string

// Event kinds mirroring Fig. 9's legend.
const (
	EventReplace EventKind = "replace" // a slot was replaced with a PAF
	EventSWA     EventKind = "swa"     // SWA average adopted
	EventAT      EventKind = "at"      // alternate-training target swap
	EventDropout EventKind = "dropout" // dropout enabled on overfitting
	EventBest    EventKind = "best"    // new best model adopted
)

// Event is one scheduler action, indexed by the global epoch counter.
type Event struct {
	Epoch int
	Kind  EventKind
	Label string
}

// CurvePoint is one epoch of the Fig. 9 validation-accuracy trace.
type CurvePoint struct {
	Epoch    int
	TrainAcc float64
	ValAcc   float64
}

// Result aggregates everything the evaluation tables need from one run.
type Result struct {
	Config Config

	// OriginalAcc is the exact-operator model's validation accuracy.
	OriginalAcc float64
	// InitialAcc is the post-replacement accuracy without fine-tuning
	// (the Fig. 7 metric), under dynamic scaling.
	InitialAcc float64
	// FinalAccDS is the best fine-tuned accuracy with Dynamic Scaling.
	FinalAccDS float64
	// FinalAccSS is the FHE-deployable accuracy after Static Scaling
	// conversion (the grey columns of Table 3).
	FinalAccSS float64

	Curve  []CurvePoint
	Events []Event
}

// Pipeline drives SMART-PAF (or a baseline ablation) over a model.
type Pipeline struct {
	Model *nn.Model
	Train *data.Dataset
	Val   *data.Dataset
	Cfg   Config

	epoch    int
	curve    []CurvePoint
	events   []Event
	valCache []data.Batch
	trCache  []data.Batch

	// restrictPAF, when set, limits trainable PAF coefficients to one slot
	// (the DirectProgressiveTraining mode).
	restrictPAF *nn.Slot
}

// NewPipeline wires a pipeline; the model should already be pretrained with
// exact operators.
func NewPipeline(m *nn.Model, train, val *data.Dataset, cfg Config) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Pipeline{
		Model: m, Train: train, Val: val, Cfg: cfg,
		valCache: val.Batches(cfg.BatchSize, nil),
		trCache:  train.Batches(cfg.BatchSize, nil),
	}, nil
}

func (p *Pipeline) valAcc() float64 { return accuracyOf(p.Model, p.valCache) }

func (p *Pipeline) trainAcc() float64 { return accuracyOf(p.Model, p.trCache) }

func accuracyOf(m *nn.Model, batches []data.Batch) float64 {
	nb := make([]nn.Batch, len(batches))
	for i, b := range batches {
		nb[i] = nn.Batch{X: b.X, Y: b.Y}
	}
	return nn.Accuracy(m, nb)
}

func (p *Pipeline) event(kind EventKind, label string) {
	p.events = append(p.events, Event{Epoch: p.epoch, Kind: kind, Label: label})
}

// targetSlots returns the slots to replace under the config.
func (p *Pipeline) targetSlots() []*nn.Slot {
	if p.Cfg.ReplaceMaxPool {
		return p.Model.Slots()
	}
	return p.Model.ReLUSlots()
}

// buildPAF constructs the replacement composite for a slot, applying CT when
// enabled.
func (p *Pipeline) buildPAF(slotIndex int, profiles []*Profile) (*paf.Composite, error) {
	c, err := paf.New(p.Cfg.Form)
	if err != nil {
		return nil, err
	}
	if p.Cfg.CT && profiles != nil && slotIndex < len(profiles) {
		c = CoefficientTuning(c, profiles[slotIndex], DefaultCTOptions())
	}
	return c, nil
}

// trainEpoch runs one epoch over the training set with per-group optimizers
// honouring frozen flags, then records the curve point.
func (p *Pipeline) trainEpoch(optPAF, optLinear nn.Optimizer) {
	perm := p.Train.Shuffle(p.Cfg.Seed + int64(p.epoch))
	for _, b := range p.Train.Batches(p.Cfg.BatchSize, perm) {
		nn.TrainStep(p.Model, nn.Batch{X: b.X, Y: b.Y}, optPAF, optLinear)
	}
	p.epoch++
	p.curve = append(p.curve, CurvePoint{Epoch: p.epoch, TrainAcc: p.trainAcc(), ValAcc: p.valAcc()})
}

// runStep executes one Fig. 6 step: training groups with SWA, improvement
// detection, dropout-on-overfit, and (optionally) alternate training.
func (p *Pipeline) runStep(label string) {
	cfg := p.Cfg
	best := p.valAcc()
	bestSnap := p.Model.Snapshot()
	applyAT := false // false: train PAF coefficients; true: train linear layers
	dropoutOn := false

	optPAF := nn.NewAdam(cfg.LRPAF, cfg.WDPAF)
	optLinear := nn.NewAdam(cfg.LRLinear, cfg.WDLinear)

	for group := 0; group < cfg.MaxGroupsPerStep; group++ {
		// Select training targets.
		pafFrozen := cfg.AT && applyAT
		if cfg.AT {
			p.Model.SetGroupFrozen(nn.GroupPAF, applyAT)
			p.Model.SetGroupFrozen(nn.GroupLinear, !applyAT)
		} else {
			p.Model.SetGroupFrozen(nn.GroupPAF, false)
			p.Model.SetGroupFrozen(nn.GroupLinear, false)
		}
		if p.restrictPAF != nil && !pafFrozen {
			p.Model.SetGroupFrozen(nn.GroupPAF, true)
			if h := p.restrictPAF.PAFLayer(); h != nil {
				for _, prm := range h.Params() {
					prm.Frozen = false
				}
			}
		}

		swa := nn.NewSWA()
		groupBest := -1.0
		var groupBestSnap [][]float64
		for e := 0; e < cfg.Epochs; e++ {
			p.trainEpoch(optPAF, optLinear)
			swa.Accumulate(p.Model)
			if acc := p.curve[len(p.curve)-1].ValAcc; acc > groupBest {
				groupBest = acc
				groupBestSnap = p.Model.Snapshot()
			}
		}
		// Try the SWA average; keep whichever of {per-epoch best, SWA} wins.
		cur := p.Model.Snapshot()
		if avg := swa.Average(); avg != nil {
			if err := p.Model.Restore(avg); err == nil {
				if acc := p.valAcc(); acc > groupBest {
					groupBest = acc
					groupBestSnap = avg
					p.event(EventSWA, label)
				} else if err := p.Model.Restore(cur); err != nil {
					panic(err)
				}
			}
		}
		if groupBestSnap != nil {
			if err := p.Model.Restore(groupBestSnap); err != nil {
				panic(err)
			}
		}

		improved := groupBest > best+cfg.MinDelta
		if improved {
			best = groupBest
			bestSnap = p.Model.Snapshot()
			p.event(EventBest, label)
			applyAT = false
			continue
		}
		if p.overfitting() && !dropoutOn {
			dropoutOn = true
			p.Model.SetDropoutEnabled(true)
			p.event(EventDropout, label)
			continue
		}
		if cfg.AT && !applyAT {
			applyAT = true
			p.event(EventAT, label)
			continue
		}
		break
	}
	if err := p.Model.Restore(bestSnap); err != nil {
		panic(err)
	}
	p.Model.SetDropoutEnabled(false)
	p.Model.SetGroupFrozen(nn.GroupPAF, false)
	p.Model.SetGroupFrozen(nn.GroupLinear, false)
}

// overfitting applies the paper's empirical condition:
// training accuracy > validation accuracy + 10%.
func (p *Pipeline) overfitting() bool {
	if len(p.curve) == 0 {
		return false
	}
	last := p.curve[len(p.curve)-1]
	return last.TrainAcc > last.ValAcc+0.10
}

// Run executes the configured strategy and reports the Table 3 metrics.
func (p *Pipeline) Run() (*Result, error) {
	cfg := p.Cfg
	res := &Result{Config: cfg}
	res.OriginalAcc = p.valAcc()

	// Profile the exact-operator model (Fig. 3 step 2). Needed by CT and by
	// InitialAcc bookkeeping regardless, cheap enough to always run.
	profiles := ProfileSlots(p.Model, p.Train, cfg.BatchSize, cfg.ProfileBatches, cfg.ProfileBins)

	slots := p.targetSlots()

	// Build every slot's tuned composite once, batch-parallel across slots
	// when cfg.Parallel asks for it; each replacement site below clones it,
	// so the three uses stay independent exactly as when built one by one.
	comps, err := p.buildAllPAFs(slots, profiles)
	if err != nil {
		return nil, err
	}

	// Post-replacement accuracy without fine-tuning (Fig. 7): replace all
	// targets, measure, then restore the exact operators.
	for i, s := range slots {
		s.ReplaceWithPAF(comps[i].Clone())
	}
	res.InitialAcc = p.valAcc()
	for _, s := range slots {
		s.RestoreExact()
	}

	// Replacement + fine-tuning.
	if cfg.PA {
		for i, s := range slots {
			s.ReplaceWithPAF(comps[i].Clone())
			p.event(EventReplace, fmt.Sprintf("%s %d", s.Kind, s.Index))
			p.seedRunningMax(s, profiles)
			p.runStep(fmt.Sprintf("slot%d", s.Index))
		}
	} else {
		for i, s := range slots {
			s.ReplaceWithPAF(comps[i].Clone())
			p.seedRunningMax(s, profiles)
		}
		p.event(EventReplace, "all")
		// Same training budget as PA would get, in one direct phase.
		for i := 0; i < len(slots); i++ {
			if cfg.DirectProgressiveTraining {
				p.restrictPAF = slots[i]
			}
			p.runStep(fmt.Sprintf("direct%d", i))
		}
		p.restrictPAF = nil
	}

	res.FinalAccDS = p.valAcc()

	// Static Scaling conversion: freeze scales to running maxima and measure
	// the FHE-deployable accuracy.
	if err := p.Model.Deploy(); err != nil {
		return nil, err
	}
	if cfg.ReplaceMaxPool {
		// ReLU-only runs keep exact MaxPool, so full FHE compatibility holds
		// only when every slot was replaced.
		if err := p.Model.CheckFHECompatible(); err != nil {
			return nil, fmt.Errorf("smartpaf: deployed model not FHE-compatible: %w", err)
		}
	}
	res.FinalAccSS = p.valAcc()
	// Return to dynamic mode so callers can keep fine-tuning if desired.
	p.Model.SetScaleMode(nn.ScaleDynamic)

	res.Curve = p.curve
	res.Events = p.events
	return res, nil
}

// seedRunningMax initializes the slot's running max from the profile so SS
// conversion works even if training never raises it.
func (p *Pipeline) seedRunningMax(s *nn.Slot, profiles []*Profile) {
	if s.Index >= len(profiles) || profiles[s.Index] == nil {
		return
	}
	max := profiles[s.Index].Max
	switch impl := s.PAFLayer().(type) {
	case *nn.PAFAct:
		if impl.RunningMax < max {
			impl.RunningMax = max
		}
	case *nn.PAFMaxPool:
		if impl.RunningMax < max {
			impl.RunningMax = max
		}
	}
}

// Pretrain trains the exact-operator model for the given number of epochs
// (producing the "Original Accuracy" reference row).
func Pretrain(m *nn.Model, train *data.Dataset, epochs, batchSize int, lr float64, seed int64) {
	opt := nn.NewAdam(lr, 1e-4)
	for e := 0; e < epochs; e++ {
		perm := train.Shuffle(seed + int64(e))
		for _, b := range train.Batches(batchSize, perm) {
			nn.TrainStep(m, nn.Batch{X: b.X, Y: b.Y}, nil, opt)
		}
	}
}
