package smartpaf

import (
	"github.com/efficientfhe/smartpaf/internal/nn"
	"github.com/efficientfhe/smartpaf/internal/paf"
	"github.com/efficientfhe/smartpaf/internal/parallel"
)

// buildAllPAFs constructs the replacement composite for every target slot,
// fanning the (independent, deterministic) Coefficient Tuning fits across
// cfg.Parallel goroutines (0/1 serial, negative all cores). Results are
// positional: out[i] belongs to slots[i]. Parallel and serial execution
// produce identical composites, so the knob only changes wall-clock time,
// never accuracy.
func (p *Pipeline) buildAllPAFs(slots []*nn.Slot, profiles []*Profile) ([]*paf.Composite, error) {
	out := make([]*paf.Composite, len(slots))
	err := parallel.For(len(slots), parallel.Workers(p.Cfg.Parallel), func(i int) error {
		c, err := p.buildPAF(slots[i].Index, profiles)
		if err != nil {
			return err
		}
		out[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
