// Package smartpaf implements the paper's contribution: the four SMART-PAF
// training techniques — Coefficient Tuning (CT), Progressive Approximation
// (PA), Alternate Training (AT) and Dynamic/Static Scaling (DS/SS) — plus
// the scheduling framework of Fig. 6 that composes them, and the baseline
// training strategies of prior work used throughout the evaluation section.
package smartpaf

import (
	"math"

	"github.com/efficientfhe/smartpaf/internal/data"
	"github.com/efficientfhe/smartpaf/internal/nn"
	"github.com/efficientfhe/smartpaf/internal/tensor"
)

// Profile is the input distribution observed at one non-polynomial slot:
// a histogram over the scale-normalized range [-1, 1] plus the running max
// used for that normalization. CT fits PAF coefficients against it, and
// Static Scaling freezes its Max at deployment.
type Profile struct {
	Bins []float64 // probability mass per bin over [-1, 1]
	Max  float64   // running max |x| observed
	N    int       // samples observed
}

// BinCenter returns the center of bin i in normalized coordinates.
func (p *Profile) BinCenter(i int) float64 {
	return -1 + (float64(i)+0.5)*2/float64(len(p.Bins))
}

// Weights returns normalized histogram masses (summing to 1).
func (p *Profile) Weights() []float64 {
	total := 0.0
	for _, b := range p.Bins {
		total += b
	}
	out := make([]float64, len(p.Bins))
	if total == 0 {
		return out
	}
	for i, b := range p.Bins {
		out[i] = b / total
	}
	return out
}

// ProfileSlots runs the model over up to maxBatches of the dataset and
// records the input distribution at every slot (Fig. 3 step 2). Inputs are
// normalized by the per-slot running max before binning, matching the view
// a dynamically scaled PAF sees.
func ProfileSlots(m *nn.Model, ds *data.Dataset, batchSize, maxBatches, bins int) []*Profile {
	slots := m.Slots()
	profiles := make([]*Profile, len(slots))
	raw := make([][]float64, len(slots)) // raw samples (subsampled)
	for i := range profiles {
		profiles[i] = &Profile{Bins: make([]float64, bins)}
	}
	restores := make([]func(), len(slots))
	for i, s := range slots {
		i := i
		kind := s.Kind
		restores[i] = s.Probe(func(x *tensor.Tensor) {
			p := profiles[i]
			// Both PAF layer kinds scale by the max input magnitude.
			if mx := x.MaxAbs(); mx > p.Max {
				p.Max = mx
			}
			stride := 1 + len(x.Data)/4096 // subsample to bound memory
			if kind == nn.SlotMaxPool {
				// A max-pool PAF applies its sign composite to pairwise
				// *differences* within windows, so CT must see the
				// difference distribution, approximated here by adjacent
				// elements.
				for j := 0; j+1 < len(x.Data); j += stride {
					raw[i] = append(raw[i], x.Data[j]-x.Data[j+1])
				}
			} else {
				for j := 0; j < len(x.Data); j += stride {
					raw[i] = append(raw[i], x.Data[j])
				}
			}
			p.N += len(x.Data)
		})
	}
	batches := ds.Batches(batchSize, nil)
	if len(batches) > maxBatches {
		batches = batches[:maxBatches]
	}
	for _, b := range batches {
		m.Forward(b.X, false)
	}
	for _, r := range restores {
		r()
	}
	// Bin the raw samples normalized by each slot's max.
	for i, p := range profiles {
		if p.Max == 0 {
			p.Max = 1
		}
		for _, v := range raw[i] {
			u := v / p.Max
			if u < -1 || u > 1 || math.IsNaN(u) {
				continue
			}
			bin := int((u + 1) / 2 * float64(bins))
			if bin >= bins {
				bin = bins - 1
			}
			p.Bins[bin]++
		}
	}
	return profiles
}
