package smartpaf

import (
	"math"
	"testing"

	"github.com/efficientfhe/smartpaf/internal/data"
	"github.com/efficientfhe/smartpaf/internal/nn"
	"github.com/efficientfhe/smartpaf/internal/paf"
)

// tinySetup pretrains a small CNN on the tiny synthetic task.
func tinySetup(t testing.TB, pretrainEpochs int) (*nn.Model, *data.Dataset, *data.Dataset) {
	t.Helper()
	cfg := data.Tiny()
	train, val := data.Generate(cfg)
	m := nn.CNN7(2, cfg.Classes, cfg.Channels, cfg.Size, cfg.Size, 7)
	Pretrain(m, train, pretrainEpochs, 32, 3e-3, 1)
	return m, train, val
}

func testConfig(form string) Config {
	cfg := DefaultConfig(form)
	cfg.Epochs = 1
	cfg.MaxGroupsPerStep = 1
	cfg.BatchSize = 32
	cfg.ProfileBatches = 2
	cfg.ProfileBins = 32
	return cfg
}

func TestProfileSlots(t *testing.T) {
	m, train, _ := tinySetup(t, 1)
	profiles := ProfileSlots(m, train, 32, 2, 32)
	if len(profiles) != len(m.Slots()) {
		t.Fatalf("%d profiles for %d slots", len(profiles), len(m.Slots()))
	}
	for i, p := range profiles {
		if p.N == 0 {
			t.Fatalf("profile %d saw no data", i)
		}
		if p.Max <= 0 {
			t.Fatalf("profile %d has non-positive max", i)
		}
		var mass float64
		for _, b := range p.Bins {
			mass += b
		}
		if mass == 0 {
			t.Fatalf("profile %d histogram empty", i)
		}
		w := p.Weights()
		var sum float64
		for _, v := range w {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("profile %d weights sum to %g", i, sum)
		}
	}
	// Probes must be removed: a second forward shouldn't change N.
	n0 := profiles[0].N
	b := train.Batches(32, nil)[0]
	m.Forward(b.X, false)
	if profiles[0].N != n0 {
		t.Fatal("probe not removed after profiling")
	}
}

func TestProfileBinCenters(t *testing.T) {
	p := &Profile{Bins: make([]float64, 4)}
	want := []float64{-0.75, -0.25, 0.25, 0.75}
	for i, w := range want {
		if got := p.BinCenter(i); math.Abs(got-w) > 1e-12 {
			t.Fatalf("BinCenter(%d) = %g want %g", i, got, w)
		}
	}
}

// TestCoefficientTuningImprovesWeightedError is the core CT claim: tuning on
// a profiled distribution reduces the weighted sign error (Fig. 3/Fig. 7).
func TestCoefficientTuningImprovesWeightedError(t *testing.T) {
	// A narrow distribution concentrated around ±0.3.
	prof := &Profile{Bins: make([]float64, 64), Max: 1}
	for i := range prof.Bins {
		x := prof.BinCenter(i)
		prof.Bins[i] = math.Exp(-(math.Abs(x)-0.3)*(math.Abs(x)-0.3)/0.02) + 0.01
	}
	for _, form := range []string{paf.FormF1G2, paf.FormF2G2, paf.FormF1F1G1G1} {
		c := paf.MustNew(form)
		before := WeightedReLUError(c, prof)
		tuned := CoefficientTuning(c, prof, DefaultCTOptions())
		after := WeightedReLUError(tuned, prof)
		if after >= before {
			t.Errorf("%s: CT did not reduce weighted error: %g -> %g", form, before, after)
		}
		// The input composite must be untouched.
		if c.Stages[0].Coeffs[0] != paf.MustNew(form).Stages[0].Coeffs[0] {
			t.Errorf("%s: CT mutated its input", form)
		}
	}
}

// TestCTBenefitLargerForLowDegree pins the Fig. 7 trend: CT helps low-degree
// PAFs (f1∘g2) more than high-degree ones (α=7) in relative terms.
func TestCTBenefitLargerForLowDegree(t *testing.T) {
	prof := &Profile{Bins: make([]float64, 64), Max: 1}
	for i := range prof.Bins {
		x := prof.BinCenter(i)
		prof.Bins[i] = math.Exp(-x*x/0.08) + 0.005
	}
	ratio := func(form string) float64 {
		c := paf.MustNew(form)
		before := WeightedReLUError(c, prof)
		after := WeightedReLUError(CoefficientTuning(c, prof, DefaultCTOptions()), prof)
		if after == 0 {
			after = 1e-12
		}
		return before / after
	}
	low := ratio(paf.FormF1G2)
	high := ratio(paf.FormAlpha7)
	if low <= high {
		t.Fatalf("expected larger CT gain for f1∘g2 (%gx) than α=7 (%gx)", low, high)
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig("nonsense")
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected invalid form error")
	}
	cfg = DefaultConfig(paf.FormF1G2)
	cfg.Epochs = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected invalid epochs error")
	}
}

func TestTechniquesLabel(t *testing.T) {
	cfg := Config{CT: true, AT: true}
	if got := cfg.TechniquesLabel(); got != "baseline + CT + AT" {
		t.Fatalf("label %q", got)
	}
	if got := (Config{}).TechniquesLabel(); got != "baseline" {
		t.Fatalf("label %q", got)
	}
}

func TestPipelineSmartPAFRun(t *testing.T) {
	m, train, val := tinySetup(t, 2)
	cfg := testConfig(paf.FormF1G2)
	p, err := NewPipeline(m, train, val, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.OriginalAcc <= 0 {
		t.Fatal("no original accuracy")
	}
	if len(res.Curve) == 0 {
		t.Fatal("no training curve")
	}
	// Every slot must be replaced and statically scalable afterwards.
	for _, s := range m.Slots() {
		if !s.IsReplaced() {
			t.Fatalf("slot %d not replaced", s.Index)
		}
	}
	// Replace events: one per slot under PA.
	replaceEvents := 0
	for _, e := range res.Events {
		if e.Kind == EventReplace {
			replaceEvents++
		}
	}
	if replaceEvents != len(m.Slots()) {
		t.Fatalf("%d replace events for %d slots", replaceEvents, len(m.Slots()))
	}
	if res.FinalAccSS < 0 || res.FinalAccSS > 1 || res.FinalAccDS < 0 || res.FinalAccDS > 1 {
		t.Fatal("accuracies out of range")
	}
}

func TestPipelineDirectBaselineRun(t *testing.T) {
	m, train, val := tinySetup(t, 2)
	cfg := testConfig(paf.FormF1G2)
	cfg.CT, cfg.PA, cfg.AT = false, false, false
	p, err := NewPipeline(m, train, val, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Direct replacement: exactly one replace event.
	replaceEvents := 0
	for _, e := range res.Events {
		if e.Kind == EventReplace {
			replaceEvents++
		}
	}
	if replaceEvents != 1 {
		t.Fatalf("%d replace events, want 1 for direct replacement", replaceEvents)
	}
}

func TestPipelineReLUOnly(t *testing.T) {
	m, train, val := tinySetup(t, 1)
	cfg := testConfig(paf.FormF1G2)
	cfg.ReplaceMaxPool = false
	p, err := NewPipeline(m, train, val, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	for _, s := range m.Slots() {
		if s.Kind == nn.SlotMaxPool && s.IsReplaced() {
			t.Fatal("maxpool should not be replaced in ReLU-only mode")
		}
		if s.Kind == nn.SlotReLU && !s.IsReplaced() {
			t.Fatal("relu slot not replaced")
		}
	}
}

// TestCTImprovesInitialAccuracyDeepModel is the Fig. 7 shape: on a deep
// model (ResNet-18: 17 cascaded ReLUs where approximation errors compound),
// replacing every non-polynomial operator with an untuned low-degree PAF
// costs accuracy, and Coefficient Tuning recovers a good part of it without
// any fine-tuning. Shallow models do not exhibit the effect (errors do not
// compound), which is exactly the paper's motivation for evaluating on
// deep networks.
func TestCTImprovesInitialAccuracyDeepModel(t *testing.T) {
	if testing.Short() {
		t.Skip("deep-model pretraining in -short mode")
	}
	dcfg := data.Tiny()
	dcfg.Classes = 6
	dcfg.Train = 300
	train, val := data.Generate(dcfg)
	m := nn.ResNet18(2, dcfg.Classes, dcfg.Channels, dcfg.Size, dcfg.Size, 7)
	Pretrain(m, train, 12, 32, 3e-3, 1)
	var valBatches []nn.Batch
	for _, b := range val.Batches(32, nil) {
		valBatches = append(valBatches, nn.Batch{X: b.X, Y: b.Y})
	}
	orig := nn.Accuracy(m, valBatches)
	profiles := ProfileSlots(m, train, 32, 2, 32)
	replaceAll := func(ct bool) float64 {
		for _, s := range m.Slots() {
			c := paf.MustNew(paf.FormF1G2)
			if ct {
				c = CoefficientTuning(c, profiles[s.Index], DefaultCTOptions())
			}
			s.ReplaceWithPAF(c)
		}
		a := nn.Accuracy(m, valBatches)
		for _, s := range m.Slots() {
			s.RestoreExact()
		}
		return a
	}
	untuned := replaceAll(false)
	tuned := replaceAll(true)
	if untuned >= orig {
		t.Logf("note: untuned replacement did not degrade (orig %.3f, untuned %.3f)", orig, untuned)
	}
	if tuned+0.03 < untuned {
		t.Fatalf("CT reduced initial accuracy: %.3f (CT) vs %.3f (no CT), orig %.3f", tuned, untuned, orig)
	}
}

// TestCTGuardProtectsHighDegreeBaseline pins the accept-if-better guard: CT
// must never make the near-perfect 27-degree baseline dramatically worse.
func TestCTGuardProtectsHighDegreeBaseline(t *testing.T) {
	prof := &Profile{Bins: make([]float64, 64), Max: 1}
	for i := range prof.Bins {
		x := prof.BinCenter(i)
		prof.Bins[i] = math.Exp(-x*x/0.02) + 0.001
	}
	c := paf.MustNew(paf.FormAlpha10)
	before := WeightedReLUError(c, prof)
	tuned := CoefficientTuning(c, prof, DefaultCTOptions())
	after := WeightedReLUError(tuned, prof)
	if after > before*2+1e-6 {
		t.Fatalf("CT degraded alpha10: %g -> %g", before, after)
	}
}

func TestPipelineRejectsBadConfig(t *testing.T) {
	m, train, val := tinySetup(t, 0)
	cfg := testConfig("bogus")
	if _, err := NewPipeline(m, train, val, cfg); err == nil {
		t.Fatal("expected config error")
	}
}

func TestWeightedSignErrorZeroForPerfectSign(t *testing.T) {
	// alpha10 is near-perfect on |x| ≥ 0.02; with mass only on large |x| the
	// weighted error must be tiny.
	prof := &Profile{Bins: make([]float64, 64), Max: 1}
	for i := range prof.Bins {
		if x := prof.BinCenter(i); math.Abs(x) > 0.4 {
			prof.Bins[i] = 1
		}
	}
	if e := WeightedSignError(paf.MustNew(paf.FormAlpha10), prof); e > 1e-4 {
		t.Fatalf("weighted error %g for near-perfect baseline", e)
	}
}

func TestDirectProgressiveTrainingMode(t *testing.T) {
	m, train, val := tinySetup(t, 2)
	cfg := testConfig(paf.FormF1G2)
	cfg.CT, cfg.PA, cfg.AT = false, false, false
	cfg.DirectProgressiveTraining = true
	p, err := NewPipeline(m, train, val, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	// All slots replaced at once (one replace event), training split across
	// one step per slot.
	replaceEvents := 0
	for _, e := range res.Events {
		if e.Kind == EventReplace {
			replaceEvents++
		}
	}
	if replaceEvents != 1 {
		t.Fatalf("%d replace events, want 1", replaceEvents)
	}
	// After the run no parameter should remain frozen.
	for _, prm := range m.Params() {
		if prm.Frozen {
			t.Fatalf("parameter %s left frozen", prm.Name)
		}
	}
}

func TestPipelineSSAccuracyPopulated(t *testing.T) {
	// The SS conversion path must produce a usable FHE-compatible model with
	// the running maxima captured during training.
	m, train, val := tinySetup(t, 2)
	cfg := testConfig(paf.FormF1F1G1G1)
	p, err := NewPipeline(m, train, val, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccSS <= 0 {
		t.Fatalf("SS accuracy %.3f should be positive on the tiny task", res.FinalAccSS)
	}
	// Deploy again (idempotent) and verify static scales exist everywhere.
	if err := m.Deploy(); err != nil {
		t.Fatal(err)
	}
	m.SetScaleMode(nn.ScaleStatic)
	if err := m.CheckFHECompatible(); err != nil {
		t.Fatal(err)
	}
}
