package smartpaf

import (
	"math"

	"github.com/efficientfhe/smartpaf/internal/paf"
)

// CTOptions controls Coefficient Tuning.
type CTOptions struct {
	Iterations int     // Adam iterations on the weighted objective
	LR         float64 // Adam learning rate
	FloorMass  float64 // minimum weight per bin, keeps tails from collapsing
}

// DefaultCTOptions matches the settings used throughout the experiments.
func DefaultCTOptions() CTOptions {
	return CTOptions{Iterations: 400, LR: 0.02, FloorMass: 1e-3}
}

// CoefficientTuning (paper §4.2, Fig. 3) refines a PAF's stage coefficients
// so the *operator it reconstructs* is most accurate where the profiled
// input distribution has mass. It minimizes the weighted ReLU error
//
//	J(c) = Σ_b w_b · (relu_p(x_b) - max(0, x_b))²
//
// over the histogram bin centers x_b with Adam, starting from the
// traditional-regression initialization already inside c. Fitting the ReLU
// rather than sign directly is important: near zero the sign discontinuity
// is unfittable but contributes nothing to the operator error (the
// construction multiplies by x/2), so a sign-weighted fit would waste
// capacity exactly where it cannot help. The tuned composite is returned as
// a new value; the input is unchanged.
func CoefficientTuning(c *paf.Composite, prof *Profile, opt CTOptions) *paf.Composite {
	tuned := c.Clone()
	weights := prof.Weights()
	// Floor the weights so regions with zero observed mass still anchor the
	// polynomial (prevents wild extrapolation between bins).
	for i := range weights {
		if weights[i] < opt.FloorMass {
			weights[i] = opt.FloorMass
		}
	}

	// Per-stage Adam state.
	mState := make([][]float64, len(tuned.Stages))
	vState := make([][]float64, len(tuned.Stages))
	for i, s := range tuned.Stages {
		mState[i] = make([]float64, len(s.Coeffs))
		vState[i] = make([]float64, len(s.Coeffs))
	}
	const beta1, beta2, eps = 0.9, 0.999, 1e-8

	grad := make([][]float64, len(tuned.Stages))
	for i, s := range tuned.Stages {
		grad[i] = make([]float64, len(s.Coeffs))
	}

	before := fineGridReLUError(tuned, prof)

	for t := 1; t <= opt.Iterations; t++ {
		for i := range grad {
			clear(grad[i])
		}
		for b, w := range weights {
			if w == 0 {
				continue
			}
			x := prof.BinCenter(b)
			target := 0.0
			if x > 0 {
				target = x
			}
			y, _, dc := tuned.ReLUWithGrad(x)
			diff := 2 * w * (y - target)
			for si := range dc {
				for k, g := range dc[si] {
					grad[si][k] += diff * g
				}
			}
		}
		bc1 := 1 - math.Pow(beta1, float64(t))
		bc2 := 1 - math.Pow(beta2, float64(t))
		for si, s := range tuned.Stages {
			for k := range s.Coeffs {
				g := grad[si][k]
				mState[si][k] = beta1*mState[si][k] + (1-beta1)*g
				vState[si][k] = beta2*vState[si][k] + (1-beta2)*g*g
				mh := mState[si][k] / bc1
				vh := vState[si][k] / bc2
				s.Coeffs[k] -= opt.LR * mh / (math.Sqrt(vh) + eps)
			}
		}
	}
	// Accept-if-better guard: a very high-degree composite can overfit the
	// histogram bin centers while oscillating between them. Validate on a 4×
	// finer grid (weights interpolated); if tuning degraded it, keep the
	// original coefficients.
	if fineGridReLUError(tuned, prof) > before {
		return c.Clone()
	}
	return tuned
}

// fineGridReLUError evaluates the CT objective on a grid 4× denser than the
// histogram, interpolating bin weights, to detect between-bin oscillation.
func fineGridReLUError(c *paf.Composite, prof *Profile) float64 {
	weights := prof.Weights()
	bins := len(weights)
	fine := bins * 4
	var j float64
	for i := 0; i < fine; i++ {
		x := -1 + (float64(i)+0.5)*2/float64(fine)
		// Nearest-bin weight (floored like the optimizer's view).
		bin := int((x + 1) / 2 * float64(bins))
		if bin >= bins {
			bin = bins - 1
		}
		w := weights[bin]
		if w == 0 {
			w = 1e-3
		}
		target := 0.0
		if x > 0 {
			target = x
		}
		d := c.ReLU(x) - target
		j += w * d * d
	}
	return j / 4 // normalize to the histogram-grid magnitude
}

// WeightedReLUError evaluates Σ w_b (relu_p(x_b) - max(0,x_b))², the CT
// objective, for reporting.
func WeightedReLUError(c *paf.Composite, prof *Profile) float64 {
	var j float64
	weights := prof.Weights()
	for b, w := range weights {
		if w == 0 {
			continue
		}
		x := prof.BinCenter(b)
		target := 0.0
		if x > 0 {
			target = x
		}
		d := c.ReLU(x) - target
		j += w * d * d
	}
	return j
}

// WeightedSignError evaluates Σ w_b (p(x_b) - sign(x_b))² for diagnostics.
func WeightedSignError(c *paf.Composite, prof *Profile) float64 {
	var j float64
	weights := prof.Weights()
	for b, w := range weights {
		if w == 0 {
			continue
		}
		x := prof.BinCenter(b)
		d := c.Eval(x) - sign(x)
		j += w * d * d
	}
	return j
}

func sign(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}
