package smartpaf

import (
	"fmt"

	"github.com/efficientfhe/smartpaf/internal/paf"
)

// Config selects the PAF form and which SMART-PAF techniques are active —
// the axes of the Table 3 ablation.
type Config struct {
	// Form names the PAF (see internal/paf.AllFormsWithBaseline).
	Form string

	// CT enables Coefficient Tuning initialization (paper §4.2).
	CT bool
	// PA enables Progressive Approximation: one slot per step (paper §4.3).
	// When false, all slots are replaced at once (the baseline's "direct
	// replacement").
	PA bool
	// AT enables Alternate Training: training groups alternate between PAF
	// coefficients and linear-layer parameters (paper §4.4). When false,
	// both groups train jointly ("direct training").
	AT bool

	// ReplaceMaxPool selects the "replace all non-polynomial" rows of
	// Table 3 (vs. ReLU-only when false).
	ReplaceMaxPool bool

	// DirectProgressiveTraining emulates Fig. 8's worst-performing ablation
	// ("direct replacement + progressive training"): all slots are replaced
	// upfront, but each training step may only adjust one slot's PAF
	// coefficients, in inference order. Only meaningful with PA=false.
	DirectProgressiveTraining bool

	// Training-group shape (Fig. 6): E epochs per group, with SWA across the
	// group, bounded by MaxGroupsPerStep for CPU budgets.
	Epochs           int
	MaxGroupsPerStep int
	BatchSize        int

	// Table 5 hyperparameters.
	LRPAF, WDPAF       float64
	LRLinear, WDLinear float64

	// Profiling for CT and the running max.
	ProfileBatches int
	ProfileBins    int

	// MinDelta is the accuracy-improvement threshold of the Fig. 6 detector.
	MinDelta float64

	// Parallel is the number of goroutines batch-parallel stages (per-slot
	// Coefficient Tuning) fan across. 0 or 1 runs serially; negative uses
	// runtime.GOMAXPROCS(0). CT is deterministic per slot, so the knob never
	// changes results — only wall-clock time.
	Parallel int

	Seed int64
}

// DefaultConfig returns the paper's Table 5 training hyperparameters with a
// CPU-scale training-group shape.
func DefaultConfig(form string) Config {
	return Config{
		Form:             form,
		CT:               true,
		PA:               true,
		AT:               true,
		ReplaceMaxPool:   true,
		Epochs:           3, // the paper uses E=20; scaled for CPU budgets
		MaxGroupsPerStep: 2,
		BatchSize:        32,
		LRPAF:            1e-4, WDPAF: 0.01,
		LRLinear: 1e-5, WDLinear: 0.1,
		ProfileBatches: 4,
		ProfileBins:    64,
		MinDelta:       1e-4,
		Seed:           42,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if _, err := paf.New(c.Form); err != nil {
		return err
	}
	if c.Epochs < 1 || c.MaxGroupsPerStep < 1 || c.BatchSize < 1 {
		return fmt.Errorf("smartpaf: non-positive training-group shape %+v", c)
	}
	return nil
}

// TechniquesLabel renders the active techniques in the Table 3 row style.
func (c Config) TechniquesLabel() string {
	label := "baseline"
	if c.CT {
		label += " + CT"
	}
	if c.PA {
		label += " + PA"
	}
	if c.AT {
		label += " + AT"
	}
	return label
}
