package smartpaf

import (
	"testing"

	"github.com/efficientfhe/smartpaf/internal/paf"
)

// TestBuildAllPAFsParallelMatchesSerial pins the documented contract of the
// Parallel knob: per-slot Coefficient Tuning fanned across goroutines
// produces composites bit-identical to the serial path, in slot order.
func TestBuildAllPAFsParallelMatchesSerial(t *testing.T) {
	m, train, val := tinySetup(t, 1)
	cfg := testConfig(paf.FormF1G2)
	p, err := NewPipeline(m, train, val, cfg)
	if err != nil {
		t.Fatal(err)
	}
	profiles := ProfileSlots(m, train, cfg.BatchSize, cfg.ProfileBatches, cfg.ProfileBins)
	slots := p.targetSlots()
	if len(slots) < 2 {
		t.Fatalf("want ≥ 2 slots to exercise the fan-out, got %d", len(slots))
	}

	p.Cfg.Parallel = 0
	serial, err := p.buildAllPAFs(slots, profiles)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, -1} {
		p.Cfg.Parallel = workers
		parallel, err := p.buildAllPAFs(slots, profiles)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			a, b := serial[i], parallel[i]
			if len(a.Stages) != len(b.Stages) {
				t.Fatalf("workers=%d slot %d: stage count differs", workers, i)
			}
			for si := range a.Stages {
				ca, cb := a.Stages[si].Coeffs, b.Stages[si].Coeffs
				if len(ca) != len(cb) {
					t.Fatalf("workers=%d slot %d stage %d: coeff count differs", workers, i, si)
				}
				for k := range ca {
					if ca[k] != cb[k] {
						t.Fatalf("workers=%d slot %d stage %d coeff %d: %v != %v",
							workers, i, si, k, ca[k], cb[k])
					}
				}
			}
		}
	}
}
