// Package nn is a from-scratch neural-network framework with manual
// backpropagation, sized for CPU-scale reproduction of the paper's training
// experiments. It provides the layers of VGG-19 and ResNet-18, trainable PAF
// activation layers with Dynamic/Static Scaling, parameter groups (PAF
// coefficients vs. everything else, per the paper's Table 5), Adam/SGD
// optimizers, stochastic weight averaging and dropout.
package nn

import (
	"math"
	"math/rand"

	"github.com/efficientfhe/smartpaf/internal/tensor"
)

// Parameter groups used by Alternate Training and per-group hyperparameters.
const (
	GroupPAF    = "paf"    // PAF stage coefficients
	GroupLinear = "linear" // convolution, linear, batchnorm parameters
)

// Param is one trainable parameter vector. Data may alias external storage
// (PAF layers alias their stage coefficient slices so updates apply
// directly).
type Param struct {
	Name   string
	Group  string
	Data   []float64
	Grad   []float64
	Frozen bool
}

// newParam allocates a parameter with a matching gradient buffer.
func newParam(name, group string, data []float64) *Param {
	return &Param{Name: name, Group: group, Data: data, Grad: make([]float64, len(data))}
}

// Layer is a differentiable module. Forward must retain whatever state
// Backward needs; Backward receives d(loss)/d(output) and returns
// d(loss)/d(input), accumulating parameter gradients into Params().Grad.
type Layer interface {
	Name() string
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(grad *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// ReLU is the exact rectifier (the operator PAFs replace).
type ReLU struct {
	mask []bool
}

// NewReLU returns an exact ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	if cap(r.mask) < len(out.Data) {
		r.mask = make([]bool, len(out.Data))
	}
	r.mask = r.mask[:len(out.Data)]
	for i, v := range out.Data {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			out.Data[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	for i := range out.Data {
		if !r.mask[i] {
			out.Data[i] = 0
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Linear is a fully connected layer y = xW + b with x [N, in].
type Linear struct {
	In, Out int
	W, B    *Param
	x       *tensor.Tensor
	label   string
}

// NewLinear builds a fully connected layer with He initialization.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	l := &Linear{In: in, Out: out, label: name}
	w := make([]float64, in*out)
	std := math.Sqrt(2.0 / float64(in))
	for i := range w {
		w[i] = rng.NormFloat64() * std
	}
	l.W = newParam(name+".w", GroupLinear, w)
	l.B = newParam(name+".b", GroupLinear, make([]float64, out))
	return l
}

// Name implements Layer.
func (l *Linear) Name() string { return l.label }

// Forward implements Layer.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.x = x
	n := x.Shape[0]
	w := tensor.FromSlice(l.W.Data, l.In, l.Out)
	out := tensor.MatMul(x.Reshape(n, l.In), w)
	for i := 0; i < n; i++ {
		row := out.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			row[j] += l.B.Data[j]
		}
	}
	return out
}

// Backward implements Layer.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Shape[0]
	x2 := l.x.Reshape(n, l.In)
	// dW = xᵀ · grad
	dw := tensor.MatMulTransA(x2, grad)
	for i, v := range dw.Data {
		l.W.Grad[i] += v
	}
	for i := 0; i < n; i++ {
		row := grad.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			l.B.Grad[j] += row[j]
		}
	}
	// dX = grad · Wᵀ (MatMulTransB transposes its second operand).
	w := tensor.FromSlice(l.W.Data, l.In, l.Out)
	return tensor.MatMulTransB(grad, w)
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// Flatten reshapes [N, ...] to [N, rest].
type Flatten struct {
	shape []int
}

// NewFlatten returns a flattening layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.shape = append([]int(nil), x.Shape...)
	return x.Reshape(x.Shape[0], x.Numel()/x.Shape[0])
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.shape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Dropout is inverted dropout; active only in training mode and only when
// Enabled (the SMART-PAF scheduler toggles it on overfitting, Fig. 6).
type Dropout struct {
	P       float64
	Enabled bool
	rng     *rand.Rand
	mask    []float64
}

// NewDropout builds a dropout layer with drop probability p (disabled until
// the scheduler enables it, matching Table 5's "Dropout: False" default).
func NewDropout(p float64, rng *rand.Rand) *Dropout {
	return &Dropout{P: p, rng: rng}
}

// Name implements Layer.
func (d *Dropout) Name() string { return "dropout" }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || !d.Enabled || d.P <= 0 {
		d.mask = nil
		return x
	}
	out := x.Clone()
	if cap(d.mask) < len(out.Data) {
		d.mask = make([]float64, len(out.Data))
	}
	d.mask = d.mask[:len(out.Data)]
	keep := 1 - d.P
	inv := 1 / keep
	for i := range out.Data {
		if d.rng.Float64() < keep {
			d.mask[i] = inv
			out.Data[i] *= inv
		} else {
			d.mask[i] = 0
			out.Data[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return grad
	}
	out := grad.Clone()
	for i := range out.Data {
		out.Data[i] *= d.mask[i]
	}
	return out
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }
