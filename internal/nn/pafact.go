package nn

import (
	"fmt"

	"github.com/efficientfhe/smartpaf/internal/paf"
	"github.com/efficientfhe/smartpaf/internal/tensor"
)

// ScaleMode selects the input-scaling strategy of a PAF layer (paper §4.5).
type ScaleMode int

const (
	// ScaleDynamic normalizes every batch by its own max |x| — training only
	// (FHE has no value-dependent operators).
	ScaleDynamic ScaleMode = iota
	// ScaleStatic uses a frozen scale (the running max captured during
	// training), the FHE-deployable mode.
	ScaleStatic
)

// String implements fmt.Stringer.
func (m ScaleMode) String() string {
	if m == ScaleDynamic {
		return "dynamic"
	}
	return "static"
}

// PAFAct replaces a ReLU with a trainable PAF: out = s·relu_p(x/s) where s
// is the dynamic batch max or the static frozen scale. ReLU's positive
// homogeneity makes the rescaling exact for the true operator, so the PAF
// only has to be accurate on [-1, 1].
type PAFAct struct {
	PAF   *paf.Composite
	Mode  ScaleMode
	Scale float64 // static scale (frozen running max)

	// RunningMax tracks the max |input| seen during training; Static Scaling
	// freezes Scale to this value at deployment (paper §4.5).
	RunningMax float64

	params []*Param
	label  string

	// cached forward state; gradients are recomputed in Backward from x and
	// s rather than stored per element.
	x *tensor.Tensor
	s float64
}

// NewPAFAct wraps a composite PAF as an activation layer. The layer's
// parameters alias the PAF stage coefficients, so optimizer steps mutate the
// composite in place.
func NewPAFAct(name string, c *paf.Composite) *PAFAct {
	a := &PAFAct{PAF: c, Mode: ScaleDynamic, Scale: 1, label: name}
	for i, stage := range c.Stages {
		p := newParam(fmt.Sprintf("%s.stage%d", name, i), GroupPAF, stage.Coeffs)
		a.params = append(a.params, p)
	}
	return a
}

// Name implements Layer.
func (a *PAFAct) Name() string { return a.label }

// currentScale returns the scale for this batch and updates the running max.
func (a *PAFAct) currentScale(x *tensor.Tensor, train bool) float64 {
	batchMax := x.MaxAbs()
	if train {
		if batchMax > a.RunningMax {
			a.RunningMax = batchMax
		}
	}
	switch a.Mode {
	case ScaleDynamic:
		if batchMax == 0 {
			return 1
		}
		return batchMax
	default:
		if a.Scale == 0 {
			return 1
		}
		return a.Scale
	}
}

// Forward implements Layer.
func (a *PAFAct) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	a.x = x
	a.s = a.currentScale(x, train)
	out := tensor.New(x.Shape...)
	for i, v := range x.Data {
		out.Data[i] = a.s * a.PAF.ReLU(v/a.s)
	}
	return out
}

// Backward implements Layer.
func (a *PAFAct) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	// Recompute per-element coefficient gradients with the upstream signal;
	// this avoids storing one gradient row per element in Forward.
	for i, v := range a.x.Data {
		u := v / a.s
		_, du, dc := a.PAF.ReLUWithGrad(u)
		g := grad.Data[i]
		out.Data[i] = g * du
		for si := range dc {
			prow := a.params[si].Grad
			for k := range dc[si] {
				prow[k] += g * a.s * dc[si][k]
			}
		}
	}
	return out
}

// Params implements Layer.
func (a *PAFAct) Params() []*Param { return a.params }

// Deploy freezes the layer for FHE: switches to Static Scaling with the
// running max. Returns an error if no running max was ever observed.
func (a *PAFAct) Deploy() error {
	if a.RunningMax == 0 {
		return fmt.Errorf("nn: %s has no recorded running max; train before deploying", a.label)
	}
	a.Mode = ScaleStatic
	a.Scale = a.RunningMax
	return nil
}

// PAFMaxPool replaces max pooling with a pairwise PAF max tree over each
// window, sharing one trainable PAF across the layer. Inputs are scaled like
// PAFAct (max is positively homogeneous too).
type PAFMaxPool struct {
	PAF                 *paf.Composite
	Kernel, Stride, Pad int
	Mode                ScaleMode
	Scale               float64
	RunningMax          float64

	params  []*Param
	label   string
	x       *tensor.Tensor
	s       float64
	windows [][]int // input indices per output element
	inShape []int
	geom    tensor.ConvGeom
}

// NewPAFMaxPool builds a PAF max pooling layer.
func NewPAFMaxPool(name string, c *paf.Composite, kernel, stride, pad int) *PAFMaxPool {
	p := &PAFMaxPool{PAF: c, Kernel: kernel, Stride: stride, Pad: pad, Mode: ScaleDynamic, Scale: 1, label: name}
	for i, stage := range c.Stages {
		p.params = append(p.params, newParam(fmt.Sprintf("%s.stage%d", name, i), GroupPAF, stage.Coeffs))
	}
	return p
}

// Name implements Layer.
func (p *PAFMaxPool) Name() string { return p.label }

// Forward implements Layer.
func (p *PAFMaxPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	p.x = x
	p.inShape = append([]int(nil), x.Shape...)
	p.geom = tensor.Geometry(c, h, w, p.Kernel, p.Stride, p.Pad)

	batchMax := x.MaxAbs()
	if train && batchMax > p.RunningMax {
		p.RunningMax = batchMax
	}
	switch p.Mode {
	case ScaleDynamic:
		p.s = batchMax
	default:
		p.s = p.Scale
	}
	if p.s == 0 {
		p.s = 1
	}

	out := tensor.New(n, c, p.geom.OutH, p.geom.OutW)
	p.windows = make([][]int, out.Numel())
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			inBase := (b*c + ch) * h * w
			outBase := (b*c + ch) * p.geom.OutH * p.geom.OutW
			for oh := 0; oh < p.geom.OutH; oh++ {
				for ow := 0; ow < p.geom.OutW; ow++ {
					var win []int
					for kh := 0; kh < p.Kernel; kh++ {
						ih := oh*p.Stride + kh - p.Pad
						if ih < 0 || ih >= h {
							continue
						}
						for kw := 0; kw < p.Kernel; kw++ {
							iw := ow*p.Stride + kw - p.Pad
							if iw < 0 || iw >= w {
								continue
							}
							win = append(win, inBase+ih*w+iw)
						}
					}
					oidx := outBase + oh*p.geom.OutW + ow
					p.windows[oidx] = win
					out.Data[oidx] = p.s * p.treeMax(win, nil, 0)
				}
			}
		}
	}
	return out
}

// treeMax reduces the window with pairwise PAF max on scaled values. When
// grads is non-nil it also accumulates d(out)/d(input_i) into grads (same
// indexing as win) and coefficient gradients scaled by upstream into the
// layer parameter grads (weighted by coefWeight).
func (p *PAFMaxPool) treeMax(win []int, grads []float64, coefWeight float64) float64 {
	vals := make([]float64, len(win))
	for i, idx := range win {
		vals[i] = p.x.Data[idx] / p.s
	}
	if grads == nil {
		for len(vals) > 1 {
			next := vals[:0]
			for i := 0; i < len(vals); i += 2 {
				if i+1 == len(vals) {
					next = append(next, vals[i])
					continue
				}
				next = append(next, p.PAF.Max(vals[i], vals[i+1]))
			}
			vals = next
		}
		return vals[0]
	}

	// Gradient-carrying reduction: track d(current)/d(original input j).
	jac := make([][]float64, len(vals))
	for i := range jac {
		jac[i] = make([]float64, len(win))
		jac[i][i] = 1
	}
	cur := vals
	for len(cur) > 1 {
		var next []float64
		var nextJac [][]float64
		for i := 0; i < len(cur); i += 2 {
			if i+1 == len(cur) {
				next = append(next, cur[i])
				nextJac = append(nextJac, jac[i])
				continue
			}
			m, dx, dy, dc := p.PAF.MaxWithGrad(cur[i], cur[i+1])
			next = append(next, m)
			row := make([]float64, len(win))
			for j := range row {
				row[j] = dx*jac[i][j] + dy*jac[i+1][j]
			}
			nextJac = append(nextJac, row)
			// Coefficient grads: upstream weight times ∂m/∂c, chained
			// through the remaining reductions — approximated by direct
			// accumulation (exact for the last reduction, first-order for
			// inner ones; sufficient for SGD fine-tuning).
			for si := range dc {
				prow := p.params[si].Grad
				for k := range dc[si] {
					prow[k] += coefWeight * dc[si][k]
				}
			}
		}
		cur, jac = next, nextJac
	}
	copy(grads, jac[0])
	return cur[0]
}

// Backward implements Layer.
func (p *PAFMaxPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(p.inShape...)
	for oidx, win := range p.windows {
		if len(win) == 0 {
			continue
		}
		g := grad.Data[oidx]
		grads := make([]float64, len(win))
		p.treeMax(win, grads, g*p.s)
		for i, idx := range win {
			// d(s·tree(x/s))/dx = tree'(u).
			out.Data[idx] += g * grads[i]
		}
	}
	return out
}

// Params implements Layer.
func (p *PAFMaxPool) Params() []*Param { return p.params }

// Deploy freezes the layer for FHE (Static Scaling with the running max).
func (p *PAFMaxPool) Deploy() error {
	if p.RunningMax == 0 {
		return fmt.Errorf("nn: %s has no recorded running max; train before deploying", p.label)
	}
	p.Mode = ScaleStatic
	p.Scale = p.RunningMax
	return nil
}
