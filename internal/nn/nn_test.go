package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/efficientfhe/smartpaf/internal/paf"
	"github.com/efficientfhe/smartpaf/internal/tensor"
)

// gradCheck verifies d(sum of outputs·weights)/d(input) against central
// finite differences for an arbitrary layer.
func gradCheck(t *testing.T, l Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	out := l.Forward(x, true)
	w := make([]float64, out.Numel())
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	upstream := tensor.FromSlice(append([]float64(nil), w...), out.Shape...)
	gin := l.Backward(upstream)

	loss := func() float64 {
		o := l.Forward(x, true)
		var s float64
		for i, v := range o.Data {
			s += w[i] * v
		}
		return s
	}
	const h = 1e-5
	// Probe a subset of input coordinates.
	idxs := rng.Perm(x.Numel())
	if len(idxs) > 12 {
		idxs = idxs[:12]
	}
	for _, i := range idxs {
		orig := x.Data[i]
		x.Data[i] = orig + h
		up := loss()
		x.Data[i] = orig - h
		down := loss()
		x.Data[i] = orig
		num := (up - down) / (2 * h)
		if math.Abs(gin.Data[i]-num) > tol*(1+math.Abs(num)) {
			t.Fatalf("%s: input grad[%d] = %g, numerical %g", l.Name(), i, gin.Data[i], num)
		}
	}
	// Probe parameter gradients.
	for _, p := range l.Params() {
		// Re-run forward+backward to populate grads cleanly.
		clear(p.Grad)
	}
	l.Forward(x, true)
	l.Backward(upstream)
	for _, p := range l.Params() {
		pidxs := rng.Perm(len(p.Data))
		if len(pidxs) > 6 {
			pidxs = pidxs[:6]
		}
		for _, i := range pidxs {
			orig := p.Data[i]
			p.Data[i] = orig + h
			up := loss()
			p.Data[i] = orig - h
			down := loss()
			p.Data[i] = orig
			num := (up - down) / (2 * h)
			if math.Abs(p.Grad[i]-num) > tol*(1+math.Abs(num)) {
				t.Fatalf("%s param %s grad[%d] = %g, numerical %g", l.Name(), p.Name, i, p.Grad[i], num)
			}
		}
	}
}

func randInput(shape ...int) *tensor.Tensor {
	rng := rand.New(rand.NewSource(3))
	x := tensor.New(shape...)
	x.FillRandN(rng, 1)
	return x
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gradCheck(t, NewLinear("fc", 6, 4, rng), randInput(3, 6), 1e-4)
}

func TestConvGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	gradCheck(t, NewConv2D("conv", 2, 3, 3, 1, 1, rng), randInput(2, 2, 5, 5), 1e-4)
}

func TestConvStrideGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	gradCheck(t, NewConv2D("conv", 2, 2, 3, 2, 1, rng), randInput(1, 2, 7, 7), 1e-4)
}

func TestBatchNormGradients(t *testing.T) {
	gradCheck(t, NewBatchNorm2D("bn", 3), randInput(4, 3, 4, 4), 1e-3)
}

func TestReLUGradients(t *testing.T) {
	gradCheck(t, NewReLU(), randInput(2, 3, 4, 4), 1e-4)
}

func TestMaxPoolGradients(t *testing.T) {
	gradCheck(t, NewMaxPool2D(2, 2, 0), randInput(2, 2, 6, 6), 1e-4)
}

func TestAvgPoolGradients(t *testing.T) {
	gradCheck(t, NewAvgPool2DGlobal(), randInput(2, 3, 4, 4), 1e-4)
}

func TestPAFActGradients(t *testing.T) {
	c := paf.MustNew(paf.FormF1G2)
	a := NewPAFAct("pafact", c)
	a.Mode = ScaleStatic
	a.Scale = 2.0
	gradCheck(t, a, randInput(2, 2, 3, 3), 1e-3)
}

func TestPAFMaxPoolInputGradients(t *testing.T) {
	c := paf.MustNew(paf.FormF1G2)
	p := NewPAFMaxPool("pafpool", c, 2, 2, 0)
	p.Mode = ScaleStatic
	p.Scale = 2.5
	// Only input gradients are exact for the pool (coefficient grads are
	// first-order approximations through the tree; checked separately).
	x := randInput(1, 2, 4, 4)
	out := p.Forward(x, true)
	rng := rand.New(rand.NewSource(9))
	w := make([]float64, out.Numel())
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	up := tensor.FromSlice(append([]float64(nil), w...), out.Shape...)
	gin := p.Backward(up)
	loss := func() float64 {
		o := p.Forward(x, true)
		var s float64
		for i, v := range o.Data {
			s += w[i] * v
		}
		return s
	}
	const h = 1e-5
	for _, i := range []int{0, 5, 11, 17, 23, 31} {
		orig := x.Data[i]
		x.Data[i] = orig + h
		upv := loss()
		x.Data[i] = orig - h
		down := loss()
		x.Data[i] = orig
		num := (upv - down) / (2 * h)
		if math.Abs(gin.Data[i]-num) > 1e-3*(1+math.Abs(num)) {
			t.Fatalf("pafpool input grad[%d] = %g num %g", i, gin.Data[i], num)
		}
	}
}

func TestPAFMaxPoolApproximatesMaxPool(t *testing.T) {
	exact := NewMaxPool2D(2, 2, 0)
	c := paf.MustNew(paf.FormAlpha10)
	approx := NewPAFMaxPool("pafpool", c, 2, 2, 0)
	x := randInput(2, 3, 8, 8)
	// Bound inputs into a range the PAF handles after scaling.
	got := approx.Forward(x, false)
	want := exact.Forward(x, false)
	var worst float64
	for i := range got.Data {
		if d := math.Abs(got.Data[i] - want.Data[i]); d > worst {
			worst = d
		}
	}
	if worst > 0.25*x.MaxAbs() {
		t.Fatalf("PAF maxpool deviates %g from exact (max input %g)", worst, x.MaxAbs())
	}
}

func TestPAFActDynamicVsStatic(t *testing.T) {
	c := paf.MustNew(paf.FormAlpha7)
	a := NewPAFAct("act", c)
	x := randInput(1, 1, 4, 4)
	// Dynamic: scale = batch max; running max recorded in training mode.
	a.Forward(x, true)
	if a.RunningMax != x.MaxAbs() {
		t.Fatalf("running max %g want %g", a.RunningMax, x.MaxAbs())
	}
	// Deploy freezes to static.
	if err := a.Deploy(); err != nil {
		t.Fatal(err)
	}
	if a.Mode != ScaleStatic || a.Scale != a.RunningMax {
		t.Fatal("deploy did not freeze the scale")
	}
	// Undeployed layer with no data refuses to deploy.
	b := NewPAFAct("b", c.Clone())
	if err := b.Deploy(); err == nil {
		t.Fatal("expected deploy error without running max")
	}
}

func TestDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewDropout(0.5, rng)
	x := randInput(1, 1, 8, 8)
	// Disabled: identity.
	out := d.Forward(x, true)
	for i := range out.Data {
		if out.Data[i] != x.Data[i] {
			t.Fatal("disabled dropout should be identity")
		}
	}
	d.Enabled = true
	out = d.Forward(x, true)
	zeros := 0
	for i := range out.Data {
		if out.Data[i] == 0 && x.Data[i] != 0 {
			zeros++
		}
	}
	if zeros == 0 || zeros == len(out.Data) {
		t.Fatalf("suspicious dropout pattern: %d/%d zeroed", zeros, len(out.Data))
	}
	// Eval mode: identity even when enabled.
	out = d.Forward(x, false)
	for i := range out.Data {
		if out.Data[i] != x.Data[i] {
			t.Fatal("eval dropout should be identity")
		}
	}
}

func TestModelCensus(t *testing.T) {
	// The paper's operator census: VGG-19 has 18 ReLU + 5 MaxPool;
	// ResNet-18 has 17 ReLU + 1 MaxPool.
	vgg := VGG19(2, 10, 3, 32, 32, 1)
	relus, pools := 0, 0
	for _, s := range vgg.Slots() {
		if s.Kind == SlotReLU {
			relus++
		} else {
			pools++
		}
	}
	if relus != 18 || pools != 5 {
		t.Fatalf("VGG-19 census %d ReLU + %d MaxPool, want 18 + 5", relus, pools)
	}
	res := ResNet18(2, 10, 3, 32, 32, 1)
	relus, pools = 0, 0
	for _, s := range res.Slots() {
		if s.Kind == SlotReLU {
			relus++
		} else {
			pools++
		}
	}
	if relus != 17 || pools != 1 {
		t.Fatalf("ResNet-18 census %d ReLU + %d MaxPool, want 17 + 1", relus, pools)
	}
}

func TestModelForwardShapes(t *testing.T) {
	for _, tc := range []struct {
		name  string
		model *Model
	}{
		{"vgg19", VGG19(1, 10, 3, 32, 32, 1)},
		{"resnet18", ResNet18(1, 10, 3, 32, 32, 1)},
		{"cnn7", CNN7(2, 10, 3, 16, 16, 1)},
		{"mlp", MLP([]int{12, 8, 10}, 1)},
	} {
		var x *tensor.Tensor
		switch tc.name {
		case "cnn7":
			x = randInput(2, 3, 16, 16)
		case "mlp":
			x = randInput(2, 12, 1, 1)
		default:
			x = randInput(2, 3, 32, 32)
		}
		out := tc.model.Forward(x, false)
		if out.Shape[0] != 2 || out.Shape[1] != 10 {
			t.Fatalf("%s: output shape %v", tc.name, out.Shape)
		}
	}
}

func TestSlotReplacement(t *testing.T) {
	m := CNN7(1, 4, 1, 8, 8, 1)
	slots := m.Slots()
	if slots[0].IsReplaced() {
		t.Fatal("fresh slot should not be replaced")
	}
	before := len(m.Params())
	slots[0].ReplaceWithPAF(paf.MustNew(paf.FormF1G2))
	if !slots[0].IsReplaced() {
		t.Fatal("slot should be replaced")
	}
	if len(m.Params()) <= before {
		t.Fatal("replacement should add PAF parameters")
	}
	// Forward still works.
	out := m.Forward(randInput(2, 1, 8, 8), false)
	if out.Shape[1] != 4 {
		t.Fatalf("bad output shape %v", out.Shape)
	}
	slots[0].RestoreExact()
	if slots[0].IsReplaced() {
		t.Fatal("restore failed")
	}
	// MaxPool slot replacement keeps geometry.
	var poolSlot *Slot
	for _, s := range slots {
		if s.Kind == SlotMaxPool {
			poolSlot = s
			break
		}
	}
	poolSlot.ReplaceWithPAF(paf.MustNew(paf.FormF1G2))
	pl := poolSlot.PAFLayer().(*PAFMaxPool)
	if pl.Kernel != 2 || pl.Stride != 2 {
		t.Fatalf("replacement lost geometry: k=%d s=%d", pl.Kernel, pl.Stride)
	}
}

func TestSnapshotRestore(t *testing.T) {
	m := MLP([]int{6, 5, 3}, 2)
	snap := m.Snapshot()
	params := m.Params()
	params[0].Data[0] += 42
	if err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if params[0].Data[0] == snap[0][0]+42 {
		t.Fatal("restore did not overwrite")
	}
	// Structure change invalidates snapshots.
	m.Slots()[0].ReplaceWithPAF(paf.MustNew(paf.FormF1G2))
	if err := m.Restore(snap); err == nil {
		t.Fatal("expected restore error after structure change")
	}
}

func TestGroupFreezing(t *testing.T) {
	m := MLP([]int{4, 4, 2}, 3)
	m.Slots()[0].ReplaceWithPAF(paf.MustNew(paf.FormF1G2))
	m.SetGroupFrozen(GroupLinear, true)
	for _, p := range m.Params() {
		if p.Group == GroupLinear && !p.Frozen {
			t.Fatal("linear params should be frozen")
		}
		if p.Group == GroupPAF && p.Frozen {
			t.Fatal("paf params should not be frozen")
		}
	}
	// Frozen params must not move under Adam.
	opt := NewAdam(0.1, 0)
	params := m.Params()
	for _, p := range params {
		for i := range p.Grad {
			p.Grad[i] = 1
		}
	}
	var frozenBefore []float64
	for _, p := range params {
		if p.Group == GroupLinear {
			frozenBefore = append([]float64(nil), p.Data...)
			break
		}
	}
	opt.Step(params)
	for _, p := range params {
		if p.Group == GroupLinear {
			for i := range frozenBefore {
				if p.Data[i] != frozenBefore[i] {
					t.Fatal("frozen parameter moved")
				}
			}
			break
		}
	}
}

func TestAdamReducesLoss(t *testing.T) {
	// A tiny regression-like task: Adam should reduce cross-entropy.
	m := MLP([]int{8, 16, 3}, 5)
	rng := rand.New(rand.NewSource(6))
	x := tensor.New(12, 8, 1, 1)
	x.FillRandN(rng, 1)
	y := make([]int, 12)
	for i := range y {
		y[i] = i % 3
	}
	opt := NewAdam(0.01, 0)
	first := TrainStep(m, Batch{X: x, Y: y}, nil, opt)
	var last float64
	for i := 0; i < 60; i++ {
		last = TrainStep(m, Batch{X: x, Y: y}, nil, opt)
	}
	if last >= first*0.7 {
		t.Fatalf("Adam did not reduce loss: first %g last %g", first, last)
	}
}

func TestSGDReducesLoss(t *testing.T) {
	m := MLP([]int{8, 16, 3}, 5)
	rng := rand.New(rand.NewSource(6))
	x := tensor.New(12, 8, 1, 1)
	x.FillRandN(rng, 1)
	y := make([]int, 12)
	for i := range y {
		y[i] = i % 3
	}
	opt := NewSGD(0.05, 0.9, 0)
	m.ZeroGrad()
	logits := m.Forward(x, true)
	first, grad := SoftmaxCrossEntropy(logits, y)
	m.Backward(grad)
	opt.Step(m.Params())
	var last float64
	for i := 0; i < 60; i++ {
		m.ZeroGrad()
		logits := m.Forward(x, true)
		var g *tensor.Tensor
		last, g = SoftmaxCrossEntropy(logits, y)
		m.Backward(g)
		opt.Step(m.Params())
	}
	if last >= first*0.7 {
		t.Fatalf("SGD did not reduce loss: first %g last %g", first, last)
	}
}

func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	logits := randInput(3, 4).Reshape(3, 4)
	labels := []int{1, 3, 0}
	loss, grad := SoftmaxCrossEntropy(logits, labels)
	if loss <= 0 {
		t.Fatalf("loss %g", loss)
	}
	const h = 1e-6
	for _, i := range []int{0, 3, 5, 11} {
		orig := logits.Data[i]
		logits.Data[i] = orig + h
		up, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig - h
		down, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig
		num := (up - down) / (2 * h)
		if math.Abs(grad.Data[i]-num) > 1e-5 {
			t.Fatalf("CE grad[%d] = %g num %g", i, grad.Data[i], num)
		}
	}
}

func TestSWA(t *testing.T) {
	m := MLP([]int{3, 2}, 7)
	swa := NewSWA()
	p := m.Params()[0]
	orig := append([]float64(nil), p.Data...)
	swa.Accumulate(m)
	for i := range p.Data {
		p.Data[i] += 2
	}
	swa.Accumulate(m)
	avg := swa.Average()
	if swa.Count() != 2 {
		t.Fatalf("count %d", swa.Count())
	}
	// Find which averaged tensor corresponds to p (first param after Flatten).
	for i := range avg[0] {
		want := orig[i] + 1
		if math.Abs(avg[0][i]-want) > 1e-12 {
			t.Fatalf("avg[%d] = %g want %g", i, avg[0][i], want)
		}
	}
	swa.Reset()
	if swa.Average() != nil {
		t.Fatal("reset should clear")
	}
}

func TestBasicBlockGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewModel("tmp")
	b := NewBasicBlock(m, "blk", 2, 3, 2, rng)
	gradCheck(t, b, randInput(2, 2, 6, 6), 5e-3)
}

func TestDeployAndFHECompatibility(t *testing.T) {
	m := CNN7(1, 4, 1, 8, 8, 1)
	// Not all slots replaced → incompatible.
	if err := m.CheckFHECompatible(); err == nil {
		t.Fatal("expected incompatibility with exact operators")
	}
	for _, s := range m.Slots() {
		s.ReplaceWithPAF(paf.MustNew(paf.FormF1G2))
	}
	// Dynamic scaling → still incompatible.
	if err := m.CheckFHECompatible(); err == nil {
		t.Fatal("expected incompatibility with dynamic scaling")
	}
	// Train one batch so running maxes exist, then deploy.
	x := randInput(2, 1, 8, 8)
	m.Forward(x, true)
	if err := m.Deploy(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckFHECompatible(); err != nil {
		t.Fatalf("deployed model should be FHE compatible: %v", err)
	}
}

func TestAccuracyHelper(t *testing.T) {
	m := MLP([]int{4, 4, 2}, 9)
	x := randInput(6, 4, 1, 1)
	y := []int{0, 1, 0, 1, 0, 1}
	acc := Accuracy(m, []Batch{{X: x, Y: y}})
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %g out of range", acc)
	}
	if Accuracy(m, nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

// TestWholeModelGradientCheck differentiates a complete model (linear +
// PAF activation layers) against finite differences through the
// cross-entropy loss — the integration test behind every fine-tuning run.
func TestWholeModelGradientCheck(t *testing.T) {
	m := MLP([]int{5, 4, 3}, 11)
	for _, s := range m.Slots() {
		s.ReplaceWithPAF(paf.MustNew(paf.FormF1G2))
		a := s.PAFLayer().(*PAFAct)
		a.Mode = ScaleStatic
		a.Scale = 2
	}
	rng := rand.New(rand.NewSource(12))
	x := tensor.New(4, 5, 1, 1)
	x.FillRandN(rng, 1)
	y := []int{0, 1, 2, 0}

	loss := func() float64 {
		l, _ := SoftmaxCrossEntropy(m.Forward(x, true), y)
		return l
	}
	m.ZeroGrad()
	logits := m.Forward(x, true)
	_, grad := SoftmaxCrossEntropy(logits, y)
	m.Backward(grad)

	const h = 1e-6
	for _, p := range m.Params() {
		idxs := rng.Perm(len(p.Data))
		if len(idxs) > 4 {
			idxs = idxs[:4]
		}
		for _, i := range idxs {
			orig := p.Data[i]
			p.Data[i] = orig + h
			up := loss()
			p.Data[i] = orig - h
			down := loss()
			p.Data[i] = orig
			num := (up - down) / (2 * h)
			if math.Abs(p.Grad[i]-num) > 1e-3*(1+math.Abs(num)) {
				t.Fatalf("param %s grad[%d] = %g, numerical %g", p.Name, i, p.Grad[i], num)
			}
		}
	}
}
