package nn

import (
	"fmt"
	"math/rand"
)

// randSource aliases the PRNG used for initialization.
type randSource = *rand.Rand

// VGG19 builds a width-scaled VGG-19 for inH×inW images: 16 conv layers +
// 3 fully connected, with the paper's operator census — 18 ReLU and
// 5 MaxPool non-polynomial slots. width is the base channel count (the
// original uses 64).
func VGG19(width, classes, inC, inH, inW int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel("vgg19")
	w1, w2, w4, w8 := width, 2*width, 4*width, 8*width
	// (channels, convs-per-stage) per VGG-19: 2,2,4,4,4.
	stages := []struct{ ch, n int }{{w1, 2}, {w2, 2}, {w4, 4}, {w8, 4}, {w8, 4}}
	in := inC
	h, wd := inH, inW
	conv := 0
	for si, st := range stages {
		for i := 0; i < st.n; i++ {
			conv++
			m.AddLayer(NewConv2D(fmt.Sprintf("conv%d", conv), in, st.ch, 3, 1, 1, rng))
			m.AddLayer(NewBatchNorm2D(fmt.Sprintf("bn%d", conv), st.ch))
			act := &Act{Impl: NewReLU()}
			m.AddLayer(act)
			m.registerSlot(SlotReLU, act, 0, 0, 0)
			in = st.ch
		}
		pool := &Act{Impl: NewMaxPool2D(2, 2, 0)}
		m.AddLayer(pool)
		m.registerSlot(SlotMaxPool, pool, 2, 2, 0)
		h, wd = h/2, wd/2
		_ = si
	}
	m.AddLayer(NewFlatten())
	d1 := NewDropout(0.5, rng)
	m.AddLayer(d1)
	m.registerDropout(d1)
	m.AddLayer(NewLinear("fc1", in*h*wd, w8, rng))
	act17 := &Act{Impl: NewReLU()}
	m.AddLayer(act17)
	m.registerSlot(SlotReLU, act17, 0, 0, 0)
	d2 := NewDropout(0.5, rng)
	m.AddLayer(d2)
	m.registerDropout(d2)
	m.AddLayer(NewLinear("fc2", w8, w8, rng))
	act18 := &Act{Impl: NewReLU()}
	m.AddLayer(act18)
	m.registerSlot(SlotReLU, act18, 0, 0, 0)
	m.AddLayer(NewLinear("fc3", w8, classes, rng))
	return m
}

// ResNet18 builds a width-scaled ResNet-18 (CIFAR-style stem with a stem
// max-pool, as in the paper's census): 17 ReLU + 1 MaxPool slots.
// width is the stem channel count (the original uses 64).
func ResNet18(width, classes, inC, inH, inW int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel("resnet18")
	m.AddLayer(NewConv2D("stem.conv", inC, width, 3, 1, 1, rng))
	m.AddLayer(NewBatchNorm2D("stem.bn", width))
	stemAct := &Act{Impl: NewReLU()}
	m.AddLayer(stemAct)
	m.registerSlot(SlotReLU, stemAct, 0, 0, 0)
	stemPool := &Act{Impl: NewMaxPool2D(3, 2, 1)}
	m.AddLayer(stemPool)
	m.registerSlot(SlotMaxPool, stemPool, 3, 2, 1)

	chans := []int{width, 2 * width, 4 * width, 8 * width}
	in := width
	for stage := 0; stage < 4; stage++ {
		stride := 1
		if stage > 0 {
			stride = 2
		}
		for blk := 0; blk < 2; blk++ {
			s := 1
			if blk == 0 {
				s = stride
			}
			b := NewBasicBlock(m, fmt.Sprintf("layer%d.block%d", stage+1, blk), in, chans[stage], s, rng)
			m.AddLayer(b)
			in = chans[stage]
		}
	}
	m.AddLayer(NewAvgPool2DGlobal())
	m.AddLayer(NewFlatten())
	drop := NewDropout(0.3, rng)
	m.AddLayer(drop)
	m.registerDropout(drop)
	m.AddLayer(NewLinear("fc", in, classes, rng))
	return m
}

// CNN7 is the 7-layer CNN used by SAFENet-style prior work for CIFAR-scale
// tasks: 4 conv + 2 pool + 2 fc, with 5 ReLU and 2 MaxPool slots. It is the
// cheap model used by fast unit tests.
func CNN7(width, classes, inC, inH, inW int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel("cnn7")
	in := inC
	h, w := inH, inW
	for i, ch := range []int{width, 2 * width} {
		m.AddLayer(NewConv2D(fmt.Sprintf("conv%da", i+1), in, ch, 3, 1, 1, rng))
		m.AddLayer(NewBatchNorm2D(fmt.Sprintf("bn%da", i+1), ch))
		act := &Act{Impl: NewReLU()}
		m.AddLayer(act)
		m.registerSlot(SlotReLU, act, 0, 0, 0)
		m.AddLayer(NewConv2D(fmt.Sprintf("conv%db", i+1), ch, ch, 3, 1, 1, rng))
		m.AddLayer(NewBatchNorm2D(fmt.Sprintf("bn%db", i+1), ch))
		act2 := &Act{Impl: NewReLU()}
		m.AddLayer(act2)
		m.registerSlot(SlotReLU, act2, 0, 0, 0)
		pool := &Act{Impl: NewMaxPool2D(2, 2, 0)}
		m.AddLayer(pool)
		m.registerSlot(SlotMaxPool, pool, 2, 2, 0)
		in = ch
		h, w = h/2, w/2
	}
	m.AddLayer(NewFlatten())
	m.AddLayer(NewLinear("fc1", in*h*w, 4*width, rng))
	act := &Act{Impl: NewReLU()}
	m.AddLayer(act)
	m.registerSlot(SlotReLU, act, 0, 0, 0)
	drop := NewDropout(0.5, rng)
	m.AddLayer(drop)
	m.registerDropout(drop)
	m.AddLayer(NewLinear("fc2", 4*width, classes, rng))
	return m
}

// MLP builds a small multilayer perceptron with ReLU slots; handy for
// 1-D toy tasks and the quickstart example.
func MLP(dims []int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel("mlp")
	m.AddLayer(NewFlatten())
	for i := 0; i < len(dims)-1; i++ {
		m.AddLayer(NewLinear(fmt.Sprintf("fc%d", i+1), dims[i], dims[i+1], rng))
		if i < len(dims)-2 {
			act := &Act{Impl: NewReLU()}
			m.AddLayer(act)
			m.registerSlot(SlotReLU, act, 0, 0, 0)
		}
	}
	return m
}
