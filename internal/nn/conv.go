package nn

import (
	"math"
	"math/rand"

	"github.com/efficientfhe/smartpaf/internal/tensor"
)

// Conv2D is a standard 2D convolution (NCHW, square kernel) implemented via
// im2col + matrix multiplication.
type Conv2D struct {
	InC, OutC, Kernel, Stride, Pad int

	W, B  *Param // W laid out [InC*K*K, OutC]
	label string

	cols *tensor.Tensor
	geom tensor.ConvGeom
	n    int
}

// NewConv2D builds a conv layer with He initialization.
func NewConv2D(name string, inC, outC, kernel, stride, pad int, rng *rand.Rand) *Conv2D {
	c := &Conv2D{InC: inC, OutC: outC, Kernel: kernel, Stride: stride, Pad: pad, label: name}
	fanIn := inC * kernel * kernel
	w := make([]float64, fanIn*outC)
	std := math.Sqrt(2.0 / float64(fanIn))
	for i := range w {
		w[i] = rng.NormFloat64() * std
	}
	c.W = newParam(name+".w", GroupLinear, w)
	c.B = newParam(name+".b", GroupLinear, make([]float64, outC))
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.label }

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	c.n = x.Shape[0]
	c.geom = tensor.Geometry(c.InC, x.Shape[2], x.Shape[3], c.Kernel, c.Stride, c.Pad)
	c.cols = tensor.Im2Col(x, c.geom)
	w := tensor.FromSlice(c.W.Data, c.InC*c.Kernel*c.Kernel, c.OutC)
	// [N*oh*ow, fanIn] × [fanIn, OutC]
	prod := tensor.MatMul(c.cols, w)
	// Rearrange [N*oh*ow, OutC] -> [N, OutC, oh, ow] and add bias.
	out := tensor.New(c.n, c.OutC, c.geom.OutH, c.geom.OutW)
	hw := c.geom.OutH * c.geom.OutW
	for b := 0; b < c.n; b++ {
		for pix := 0; pix < hw; pix++ {
			src := (b*hw + pix) * c.OutC
			for oc := 0; oc < c.OutC; oc++ {
				out.Data[(b*c.OutC+oc)*hw+pix] = prod.Data[src+oc] + c.B.Data[oc]
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	hw := c.geom.OutH * c.geom.OutW
	// Rearrange grad [N, OutC, oh, ow] -> [N*oh*ow, OutC].
	g2 := tensor.New(c.n*hw, c.OutC)
	for b := 0; b < c.n; b++ {
		for oc := 0; oc < c.OutC; oc++ {
			base := (b*c.OutC + oc) * hw
			for pix := 0; pix < hw; pix++ {
				g2.Data[(b*hw+pix)*c.OutC+oc] = grad.Data[base+pix]
			}
		}
	}
	// dW = colsᵀ · g2 ; dB = column sums of g2.
	dw := tensor.MatMulTransA(c.cols, g2)
	for i, v := range dw.Data {
		c.W.Grad[i] += v
	}
	for r := 0; r < g2.Shape[0]; r++ {
		row := g2.Data[r*c.OutC : (r+1)*c.OutC]
		for oc := 0; oc < c.OutC; oc++ {
			c.B.Grad[oc] += row[oc]
		}
	}
	// dCols = g2 · Wᵀ (MatMulTransB transposes its second operand).
	w := tensor.FromSlice(c.W.Data, c.InC*c.Kernel*c.Kernel, c.OutC)
	dcols := tensor.MatMulTransB(g2, w)
	return tensor.Col2Im(dcols, c.n, c.geom)
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// BatchNorm2D normalizes per channel with batch statistics. Matching the
// paper's Table 5 ("BatchNorm Tracking: False"), batch statistics are used
// in both training and evaluation; no running averages are kept.
type BatchNorm2D struct {
	C     int
	Gamma *Param
	Beta  *Param
	Eps   float64
	label string

	xhat  *tensor.Tensor
	std   []float64
	count int
}

// NewBatchNorm2D builds an affine batch norm over C channels.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	bn := &BatchNorm2D{C: c, Eps: 1e-5, label: name}
	gamma := make([]float64, c)
	for i := range gamma {
		gamma[i] = 1
	}
	bn.Gamma = newParam(name+".gamma", GroupLinear, gamma)
	bn.Beta = newParam(name+".beta", GroupLinear, make([]float64, c))
	return bn
}

// Name implements Layer.
func (bn *BatchNorm2D) Name() string { return bn.label }

// Forward implements Layer.
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, ch, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	hw := h * w
	bn.count = n * hw
	if bn.std == nil || len(bn.std) != ch {
		bn.std = make([]float64, ch)
	}
	out := tensor.New(n, ch, h, w)
	bn.xhat = tensor.New(n, ch, h, w)
	for c := 0; c < ch; c++ {
		var mean float64
		for b := 0; b < n; b++ {
			base := (b*ch + c) * hw
			for i := 0; i < hw; i++ {
				mean += x.Data[base+i]
			}
		}
		mean /= float64(bn.count)
		var variance float64
		for b := 0; b < n; b++ {
			base := (b*ch + c) * hw
			for i := 0; i < hw; i++ {
				d := x.Data[base+i] - mean
				variance += d * d
			}
		}
		variance /= float64(bn.count)
		std := math.Sqrt(variance + bn.Eps)
		bn.std[c] = std
		g, be := bn.Gamma.Data[c], bn.Beta.Data[c]
		for b := 0; b < n; b++ {
			base := (b*ch + c) * hw
			for i := 0; i < hw; i++ {
				xh := (x.Data[base+i] - mean) / std
				bn.xhat.Data[base+i] = xh
				out.Data[base+i] = g*xh + be
			}
		}
	}
	return out
}

// Backward implements Layer.
func (bn *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, ch := grad.Shape[0], grad.Shape[1]
	hw := grad.Shape[2] * grad.Shape[3]
	m := float64(bn.count)
	out := tensor.New(grad.Shape...)
	for c := 0; c < ch; c++ {
		var sumDy, sumDyXhat float64
		for b := 0; b < n; b++ {
			base := (b*ch + c) * hw
			for i := 0; i < hw; i++ {
				dy := grad.Data[base+i]
				sumDy += dy
				sumDyXhat += dy * bn.xhat.Data[base+i]
			}
		}
		bn.Beta.Grad[c] += sumDy
		bn.Gamma.Grad[c] += sumDyXhat
		g := bn.Gamma.Data[c]
		inv := g / (m * bn.std[c])
		for b := 0; b < n; b++ {
			base := (b*ch + c) * hw
			for i := 0; i < hw; i++ {
				dy := grad.Data[base+i]
				xh := bn.xhat.Data[base+i]
				out.Data[base+i] = inv * (m*dy - sumDy - xh*sumDyXhat)
			}
		}
	}
	return out
}

// Params implements Layer.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }
