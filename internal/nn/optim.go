package nn

import (
	"math"
)

// Adam implements the Adam optimizer with decoupled weight decay, applied to
// one parameter group. Table 5's defaults: PAF coefficients (lr 1e-4,
// wd 0.01) and other layers (lr 1e-5, wd 0.1).
type Adam struct {
	LR, Beta1, Beta2, Eps, WeightDecay float64

	t int
	m map[*Param][]float64
	v map[*Param][]float64
}

// NewAdam constructs an Adam optimizer.
func NewAdam(lr, weightDecay float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay,
		m: map[*Param][]float64{}, v: map[*Param][]float64{}}
}

// Step applies one update to every unfrozen parameter in the list.
func (a *Adam) Step(params []*Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		if p.Frozen {
			continue
		}
		m := a.m[p]
		if m == nil {
			m = make([]float64, len(p.Data))
			a.m[p] = m
			a.v[p] = make([]float64, len(p.Data))
		}
		v := a.v[p]
		for i := range p.Data {
			g := p.Grad[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mh := m[i] / bc1
			vh := v[i] / bc2
			p.Data[i] -= a.LR * (mh/(math.Sqrt(vh)+a.Eps) + a.WeightDecay*p.Data[i])
		}
	}
}

// SGD is plain stochastic gradient descent with optional momentum, provided
// as the baseline optimizer for ablations.
type SGD struct {
	LR, Momentum, WeightDecay float64
	vel                       map[*Param][]float64
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay, vel: map[*Param][]float64{}}
}

// Step applies one update to every unfrozen parameter.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		if p.Frozen {
			continue
		}
		vel := s.vel[p]
		if vel == nil {
			vel = make([]float64, len(p.Data))
			s.vel[p] = vel
		}
		for i := range p.Data {
			g := p.Grad[i] + s.WeightDecay*p.Data[i]
			vel[i] = s.Momentum*vel[i] - s.LR*g
			p.Data[i] += vel[i]
		}
	}
}

// Optimizer is the shared stepping interface.
type Optimizer interface {
	Step(params []*Param)
}

// SWA accumulates stochastic weight averages over epochs (used by the
// SMART-PAF training group, Fig. 6) and can write the averaged weights into
// the model.
type SWA struct {
	sum   [][]float64
	count int
}

// NewSWA returns an empty accumulator.
func NewSWA() *SWA { return &SWA{} }

// Accumulate folds the model's current parameters into the running average.
func (s *SWA) Accumulate(m *Model) {
	params := m.Params()
	if s.sum == nil {
		s.sum = make([][]float64, len(params))
		for i, p := range params {
			s.sum[i] = make([]float64, len(p.Data))
		}
	}
	for i, p := range params {
		for j, v := range p.Data {
			s.sum[i][j] += v
		}
	}
	s.count++
}

// Count returns how many snapshots were accumulated.
func (s *SWA) Count() int { return s.count }

// Average returns the averaged snapshot (nil if nothing accumulated).
func (s *SWA) Average() [][]float64 {
	if s.count == 0 {
		return nil
	}
	out := make([][]float64, len(s.sum))
	inv := 1 / float64(s.count)
	for i := range s.sum {
		out[i] = make([]float64, len(s.sum[i]))
		for j, v := range s.sum[i] {
			out[i][j] = v * inv
		}
	}
	return out
}

// Reset clears the accumulator for the next training group.
func (s *SWA) Reset() { s.sum, s.count = nil, 0 }
