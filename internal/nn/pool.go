package nn

import (
	"github.com/efficientfhe/smartpaf/internal/tensor"
)

// MaxPool2D is the exact max pooling operator (the second non-polynomial
// operator PAFs replace).
type MaxPool2D struct {
	Kernel, Stride, Pad int
	argmax              []int
	inShape             []int
	geom                tensor.ConvGeom
}

// NewMaxPool2D builds an exact max-pool layer.
func NewMaxPool2D(kernel, stride, pad int) *MaxPool2D {
	return &MaxPool2D{Kernel: kernel, Stride: stride, Pad: pad}
}

// Name implements Layer.
func (p *MaxPool2D) Name() string { return "maxpool" }

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	p.inShape = append([]int(nil), x.Shape...)
	p.geom = tensor.Geometry(c, h, w, p.Kernel, p.Stride, p.Pad)
	out := tensor.New(n, c, p.geom.OutH, p.geom.OutW)
	p.argmax = make([]int, out.Numel())
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			inBase := (b*c + ch) * h * w
			outBase := (b*c + ch) * p.geom.OutH * p.geom.OutW
			for oh := 0; oh < p.geom.OutH; oh++ {
				for ow := 0; ow < p.geom.OutW; ow++ {
					best := -1
					var bestV float64
					for kh := 0; kh < p.Kernel; kh++ {
						ih := oh*p.Stride + kh - p.Pad
						if ih < 0 || ih >= h {
							continue
						}
						for kw := 0; kw < p.Kernel; kw++ {
							iw := ow*p.Stride + kw - p.Pad
							if iw < 0 || iw >= w {
								continue
							}
							idx := inBase + ih*w + iw
							if best == -1 || x.Data[idx] > bestV {
								best, bestV = idx, x.Data[idx]
							}
						}
					}
					oidx := outBase + oh*p.geom.OutW + ow
					out.Data[oidx] = bestV
					p.argmax[oidx] = best
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(p.inShape...)
	for i, g := range grad.Data {
		if p.argmax[i] >= 0 {
			out.Data[p.argmax[i]] += g
		}
	}
	return out
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*Param { return nil }

// AvgPool2DGlobal averages each channel to a single value, producing
// [N, C, 1, 1].
type AvgPool2DGlobal struct {
	inShape []int
}

// NewAvgPool2DGlobal returns a global average pooling layer.
func NewAvgPool2DGlobal() *AvgPool2DGlobal { return &AvgPool2DGlobal{} }

// Name implements Layer.
func (p *AvgPool2DGlobal) Name() string { return "avgpool" }

// Forward implements Layer.
func (p *AvgPool2DGlobal) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	p.inShape = append([]int(nil), x.Shape...)
	out := tensor.New(n, c, 1, 1)
	hw := float64(h * w)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * h * w
			var s float64
			for i := 0; i < h*w; i++ {
				s += x.Data[base+i]
			}
			out.Data[b*c+ch] = s / hw
		}
	}
	return out
}

// Backward implements Layer.
func (p *AvgPool2DGlobal) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3]
	out := tensor.New(p.inShape...)
	inv := 1 / float64(h*w)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			g := grad.Data[b*c+ch] * inv
			base := (b*c + ch) * h * w
			for i := 0; i < h*w; i++ {
				out.Data[base+i] = g
			}
		}
	}
	return out
}

// Params implements Layer.
func (p *AvgPool2DGlobal) Params() []*Param { return nil }
