package nn

import (
	"fmt"

	"github.com/efficientfhe/smartpaf/internal/paf"
	"github.com/efficientfhe/smartpaf/internal/tensor"
)

// SlotKind distinguishes the two non-polynomial operator types.
type SlotKind int

const (
	// SlotReLU marks a ReLU activation slot.
	SlotReLU SlotKind = iota
	// SlotMaxPool marks a max-pooling slot.
	SlotMaxPool
)

// String implements fmt.Stringer.
func (k SlotKind) String() string {
	if k == SlotReLU {
		return "relu"
	}
	return "maxpool"
}

// Act is a swappable activation holder: it starts as an exact operator and
// can be replaced in place by a PAF layer. Models register every Act/pool
// holder as a Slot in inference order — the list Progressive Approximation
// walks.
type Act struct {
	Impl Layer
}

// Name implements Layer.
func (a *Act) Name() string { return a.Impl.Name() }

// Forward implements Layer.
func (a *Act) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return a.Impl.Forward(x, train)
}

// Backward implements Layer.
func (a *Act) Backward(grad *tensor.Tensor) *tensor.Tensor { return a.Impl.Backward(grad) }

// Params implements Layer.
func (a *Act) Params() []*Param { return a.Impl.Params() }

// Slot is one replaceable non-polynomial operator.
type Slot struct {
	Index int
	Kind  SlotKind
	Label string

	holder *Act
	// pooling geometry, kept for building the PAF replacement
	kernel, stride, pad int
}

// IsReplaced reports whether the slot currently holds a PAF layer.
func (s *Slot) IsReplaced() bool {
	switch s.holder.Impl.(type) {
	case *PAFAct, *PAFMaxPool:
		return true
	}
	return false
}

// ReplaceWithPAF swaps the exact operator for a PAF-based one built around
// the given composite (which the new layer owns and trains in place).
func (s *Slot) ReplaceWithPAF(c *paf.Composite) {
	switch s.Kind {
	case SlotReLU:
		s.holder.Impl = NewPAFAct(s.Label, c)
	case SlotMaxPool:
		s.holder.Impl = NewPAFMaxPool(s.Label, c, s.kernel, s.stride, s.pad)
	}
}

// RestoreExact puts the exact operator back (used by ablations).
func (s *Slot) RestoreExact() {
	switch s.Kind {
	case SlotReLU:
		s.holder.Impl = NewReLU()
	case SlotMaxPool:
		s.holder.Impl = NewMaxPool2D(s.kernel, s.stride, s.pad)
	}
}

// PAFLayer returns the slot's PAF layer, or nil if not replaced.
func (s *Slot) PAFLayer() PAFHolder {
	switch impl := s.holder.Impl.(type) {
	case *PAFAct:
		return impl
	case *PAFMaxPool:
		return impl
	}
	return nil
}

// PAFHolder is the common surface of PAFAct and PAFMaxPool.
type PAFHolder interface {
	Layer
	Deploy() error
}

// Model is a feed-forward network with registered non-polynomial slots.
type Model struct {
	Name     string
	layers   []Layer
	slots    []*Slot
	dropouts []*Dropout
}

// NewModel wraps an ordered layer list.
func NewModel(name string, layers ...Layer) *Model {
	return &Model{Name: name, layers: layers}
}

// AddLayer appends a layer.
func (m *Model) AddLayer(l Layer) { m.layers = append(m.layers, l) }

// registerSlot records a replaceable operator (called by model builders in
// inference order).
func (m *Model) registerSlot(kind SlotKind, holder *Act, kernel, stride, pad int) *Slot {
	s := &Slot{
		Index:  len(m.slots),
		Kind:   kind,
		Label:  fmt.Sprintf("%s.slot%d.%s", m.Name, len(m.slots), kind),
		holder: holder,
		kernel: kernel, stride: stride, pad: pad,
	}
	m.slots = append(m.slots, s)
	return s
}

// registerDropout records a dropout layer for scheduler control.
func (m *Model) registerDropout(d *Dropout) { m.dropouts = append(m.dropouts, d) }

// Slots returns the non-polynomial operators in inference order.
func (m *Model) Slots() []*Slot { return m.slots }

// ReLUSlots returns only the ReLU slots.
func (m *Model) ReLUSlots() []*Slot {
	var out []*Slot
	for _, s := range m.slots {
		if s.Kind == SlotReLU {
			out = append(out, s)
		}
	}
	return out
}

// SetDropoutEnabled toggles all registered dropout layers (Fig. 6's
// overfitting response).
func (m *Model) SetDropoutEnabled(on bool) {
	for _, d := range m.dropouts {
		d.Enabled = on
	}
}

// Forward runs the network.
func (m *Model) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range m.layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the loss gradient, accumulating parameter grads.
func (m *Model) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(m.layers) - 1; i >= 0; i-- {
		grad = m.layers[i].Backward(grad)
	}
	return grad
}

// Params returns all parameters (including PAF coefficients of replaced
// slots).
func (m *Model) Params() []*Param {
	var out []*Param
	for _, l := range m.layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrad clears all gradients.
func (m *Model) ZeroGrad() {
	for _, p := range m.Params() {
		clear(p.Grad)
	}
}

// SetGroupFrozen freezes or unfreezes all parameters of a group — the
// mechanism behind Alternate Training.
func (m *Model) SetGroupFrozen(group string, frozen bool) {
	for _, p := range m.Params() {
		if p.Group == group {
			p.Frozen = frozen
		}
	}
}

// Snapshot copies every parameter vector (valid only while the model
// structure — the set of replaced slots — is unchanged).
func (m *Model) Snapshot() [][]float64 {
	params := m.Params()
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = append([]float64(nil), p.Data...)
	}
	return out
}

// Restore writes a snapshot back into the parameters.
func (m *Model) Restore(snap [][]float64) error {
	params := m.Params()
	if len(snap) != len(params) {
		return fmt.Errorf("nn: snapshot has %d tensors, model has %d (structure changed?)", len(snap), len(params))
	}
	for i, p := range params {
		if len(snap[i]) != len(p.Data) {
			return fmt.Errorf("nn: snapshot tensor %d has %d values, parameter %q has %d",
				i, len(snap[i]), p.Name, len(p.Data))
		}
		copy(p.Data, snap[i])
	}
	return nil
}

// Deploy converts every replaced slot to Static Scaling (FHE-compatible).
// It fails if any replaced slot never saw training data.
func (m *Model) Deploy() error {
	for _, s := range m.slots {
		if h := s.PAFLayer(); h != nil {
			if err := h.Deploy(); err != nil {
				return err
			}
		}
	}
	return nil
}

// CheckFHECompatible verifies all slots are replaced and statically scaled.
func (m *Model) CheckFHECompatible() error {
	for _, s := range m.slots {
		h := s.PAFLayer()
		if h == nil {
			return fmt.Errorf("nn: slot %d (%s) still holds a non-polynomial operator", s.Index, s.Kind)
		}
		switch impl := h.(type) {
		case *PAFAct:
			if impl.Mode != ScaleStatic {
				return fmt.Errorf("nn: slot %d uses dynamic scaling (value-dependent, not FHE-compatible)", s.Index)
			}
		case *PAFMaxPool:
			if impl.Mode != ScaleStatic {
				return fmt.Errorf("nn: slot %d uses dynamic scaling (value-dependent, not FHE-compatible)", s.Index)
			}
		}
	}
	return nil
}

// BasicBlock is the ResNet-18 residual block: two 3×3 conv+bn pairs with a
// projection shortcut when shape changes. Its two activations register as
// model slots.
type BasicBlock struct {
	conv1 *Conv2D
	bn1   *BatchNorm2D
	act1  *Act
	conv2 *Conv2D
	bn2   *BatchNorm2D
	act2  *Act

	scConv *Conv2D
	scBN   *BatchNorm2D

	branchIn *tensor.Tensor
	label    string
}

// NewBasicBlock constructs a residual block and registers its activations as
// slots on m.
func NewBasicBlock(m *Model, name string, inC, outC, stride int, rng randSource) *BasicBlock {
	b := &BasicBlock{label: name}
	b.conv1 = NewConv2D(name+".conv1", inC, outC, 3, stride, 1, rng)
	b.bn1 = NewBatchNorm2D(name+".bn1", outC)
	b.act1 = &Act{Impl: NewReLU()}
	b.conv2 = NewConv2D(name+".conv2", outC, outC, 3, 1, 1, rng)
	b.bn2 = NewBatchNorm2D(name+".bn2", outC)
	b.act2 = &Act{Impl: NewReLU()}
	if stride != 1 || inC != outC {
		b.scConv = NewConv2D(name+".sc", inC, outC, 1, stride, 0, rng)
		b.scBN = NewBatchNorm2D(name+".scbn", outC)
	}
	m.registerSlot(SlotReLU, b.act1, 0, 0, 0)
	m.registerSlot(SlotReLU, b.act2, 0, 0, 0)
	return b
}

// Name implements Layer.
func (b *BasicBlock) Name() string { return b.label }

// Forward implements Layer.
func (b *BasicBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	b.branchIn = x
	h := b.conv1.Forward(x, train)
	h = b.bn1.Forward(h, train)
	h = b.act1.Forward(h, train)
	h = b.conv2.Forward(h, train)
	h = b.bn2.Forward(h, train)

	var sc *tensor.Tensor
	if b.scConv != nil {
		sc = b.scConv.Forward(x, train)
		sc = b.scBN.Forward(sc, train)
	} else {
		sc = x
	}
	h = h.Clone()
	h.AddInPlace(sc)
	return b.act2.Forward(h, train)
}

// Backward implements Layer.
func (b *BasicBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := b.act2.Backward(grad)
	// Branch path.
	gb := b.bn2.Backward(g)
	gb = b.conv2.Backward(gb)
	gb = b.act1.Backward(gb)
	gb = b.bn1.Backward(gb)
	gb = b.conv1.Backward(gb)
	// Shortcut path.
	var gs *tensor.Tensor
	if b.scConv != nil {
		gs = b.scBN.Backward(g)
		gs = b.scConv.Backward(gs)
	} else {
		gs = g
	}
	out := gb.Clone()
	out.AddInPlace(gs)
	return out
}

// Params implements Layer.
func (b *BasicBlock) Params() []*Param {
	out := append([]*Param(nil), b.conv1.Params()...)
	out = append(out, b.bn1.Params()...)
	out = append(out, b.act1.Params()...)
	out = append(out, b.conv2.Params()...)
	out = append(out, b.bn2.Params()...)
	out = append(out, b.act2.Params()...)
	if b.scConv != nil {
		out = append(out, b.scConv.Params()...)
		out = append(out, b.scBN.Params()...)
	}
	return out
}

// probe wraps a layer so fn observes every forward input; used by the
// distribution profiler behind Coefficient Tuning.
type probe struct {
	inner Layer
	fn    func(*tensor.Tensor)
}

// Name implements Layer.
func (p *probe) Name() string { return p.inner.Name() }

// Forward implements Layer.
func (p *probe) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	p.fn(x)
	return p.inner.Forward(x, train)
}

// Backward implements Layer.
func (p *probe) Backward(grad *tensor.Tensor) *tensor.Tensor { return p.inner.Backward(grad) }

// Params implements Layer.
func (p *probe) Params() []*Param { return p.inner.Params() }

// Probe attaches an input observer to the slot's current operator and
// returns a function that removes it.
func (s *Slot) Probe(fn func(*tensor.Tensor)) (restore func()) {
	orig := s.holder.Impl
	s.holder.Impl = &probe{inner: orig, fn: fn}
	return func() { s.holder.Impl = orig }
}

// SetScaleMode switches every replaced slot between Dynamic and Static
// scaling (the DS vs SS evaluation axis of Table 3). Static scales must
// already be populated (via Deploy) before switching to ScaleStatic.
func (m *Model) SetScaleMode(mode ScaleMode) {
	for _, s := range m.slots {
		switch impl := s.holder.Impl.(type) {
		case *PAFAct:
			impl.Mode = mode
		case *PAFMaxPool:
			impl.Mode = mode
		}
	}
}
