package nn

import (
	"math"

	"github.com/efficientfhe/smartpaf/internal/tensor"
)

// SoftmaxCrossEntropy computes mean cross-entropy loss over the batch and
// the gradient with respect to the logits.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor) {
	n, c := logits.Shape[0], logits.Shape[1]
	grad = tensor.New(n, c)
	for b := 0; b < n; b++ {
		row := logits.Data[b*c : (b+1)*c]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(v - maxV)
		}
		logSum := math.Log(sum) + maxV
		loss += logSum - row[labels[b]]
		gRow := grad.Data[b*c : (b+1)*c]
		for j, v := range row {
			p := math.Exp(v - logSum)
			gRow[j] = p / float64(n)
		}
		gRow[labels[b]] -= 1 / float64(n)
	}
	return loss / float64(n), grad
}

// Batch is one minibatch of images and labels.
type Batch struct {
	X *tensor.Tensor
	Y []int
}

// TrainStep runs forward, loss, backward and optimizer steps for one batch,
// returning the loss. Optimizers may be nil (e.g. during Alternate Training
// only one group steps).
func TrainStep(m *Model, b Batch, optPAF, optLinear Optimizer) float64 {
	m.ZeroGrad()
	logits := m.Forward(b.X, true)
	loss, grad := SoftmaxCrossEntropy(logits, b.Y)
	m.Backward(grad)
	params := m.Params()
	if optPAF != nil {
		optPAF.Step(filterGroup(params, GroupPAF))
	}
	if optLinear != nil {
		optLinear.Step(filterGroup(params, GroupLinear))
	}
	return loss
}

func filterGroup(params []*Param, group string) []*Param {
	var out []*Param
	for _, p := range params {
		if p.Group == group {
			out = append(out, p)
		}
	}
	return out
}

// Accuracy evaluates top-1 accuracy over the provided batches.
func Accuracy(m *Model, batches []Batch) float64 {
	var correct, total int
	for _, b := range batches {
		logits := m.Forward(b.X, false)
		n, c := logits.Shape[0], logits.Shape[1]
		for i := 0; i < n; i++ {
			row := logits.Data[i*c : (i+1)*c]
			best := 0
			for j := 1; j < c; j++ {
				if row[j] > row[best] {
					best = j
				}
			}
			if best == b.Y[i] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
