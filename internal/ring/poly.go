package ring

import (
	"fmt"
	"sync"
)

// Ring is a chain of RNS moduli sharing one degree N. Index i of the chain
// corresponds to prime q_i; a polynomial "at level L" carries limbs 0..L.
// All methods are safe for concurrent use: the precomputed tables are
// read-only after NewRing, per-limb work is fanned out via ForEachLimb, and
// scratch recycling goes through sync.Pools (see pool.go).
type Ring struct {
	N      int
	Moduli []*Modulus

	polyPools   []sync.Pool // polyPools[l] recycles *Poly at level l
	scratchPool sync.Pool   // recycles N-length []uint64 buffers
}

// NewRing prepares a ring of degree n over the given primes.
func NewRing(n int, primes []uint64) (*Ring, error) {
	r := &Ring{N: n, Moduli: make([]*Modulus, len(primes))}
	for i, q := range primes {
		m, err := NewModulus(q, n)
		if err != nil {
			return nil, fmt.Errorf("ring: prime %d (index %d): %w", q, i, err)
		}
		r.Moduli[i] = m
	}
	r.initPools()
	return r, nil
}

// Poly is an RNS polynomial: Coeffs[i][j] is the j-th coefficient modulo the
// i-th prime of the owning ring. The number of limbs determines the level
// (level = len(Coeffs)-1). Whether the limbs are in coefficient or NTT
// domain is tracked by the caller (internal/ckks keeps everything in NTT
// domain except during rescaling and key-switch decomposition).
type Poly struct {
	Coeffs [][]uint64

	// view marks polynomials returned by Truncate, whose limbs alias
	// another polynomial's storage; the pool refuses to recycle them.
	view bool
}

// NewPoly allocates a zero polynomial with limbs+0..level inclusive.
func (r *Ring) NewPoly(level int) *Poly {
	p := &Poly{Coeffs: make([][]uint64, level+1)}
	buf := make([]uint64, (level+1)*r.N)
	for i := range p.Coeffs {
		p.Coeffs[i] = buf[i*r.N : (i+1)*r.N : (i+1)*r.N]
	}
	return p
}

// Level returns len(Coeffs)-1.
func (p *Poly) Level() int { return len(p.Coeffs) - 1 }

// CopyNew returns a deep copy of p.
func (p *Poly) CopyNew() *Poly {
	out := &Poly{Coeffs: make([][]uint64, len(p.Coeffs))}
	buf := make([]uint64, len(p.Coeffs)*len(p.Coeffs[0]))
	n := len(p.Coeffs[0])
	for i := range p.Coeffs {
		out.Coeffs[i] = buf[i*n : (i+1)*n : (i+1)*n]
		copy(out.Coeffs[i], p.Coeffs[i])
	}
	return out
}

// Truncate drops limbs above level, returning a view sharing storage.
func (p *Poly) Truncate(level int) *Poly {
	return &Poly{Coeffs: p.Coeffs[:level+1], view: true}
}

// minLevel returns the smallest level among the operands.
func minLevel(ps ...*Poly) int {
	l := ps[0].Level()
	for _, p := range ps[1:] {
		if p.Level() < l {
			l = p.Level()
		}
	}
	return l
}

// Add sets out = a + b limb-wise up to the smallest common level.
func (r *Ring) Add(a, b, out *Poly) {
	level := minLevel(a, b, out)
	r.forLimbs(level, func(i int) {
		q := r.Moduli[i].Q
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = AddMod(ai[j], bi[j], q)
		}
	})
}

// Sub sets out = a - b limb-wise up to the smallest common level.
func (r *Ring) Sub(a, b, out *Poly) {
	level := minLevel(a, b, out)
	r.forLimbs(level, func(i int) {
		q := r.Moduli[i].Q
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = SubMod(ai[j], bi[j], q)
		}
	})
}

// Neg sets out = -a limb-wise.
func (r *Ring) Neg(a, out *Poly) {
	level := minLevel(a, out)
	r.forLimbs(level, func(i int) {
		q := r.Moduli[i].Q
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = NegMod(ai[j], q)
		}
	})
}

// MulCoeffs sets out = a ⊙ b (pointwise product); both operands must be in
// NTT domain, making this a negacyclic polynomial multiplication.
func (r *Ring) MulCoeffs(a, b, out *Poly) {
	level := minLevel(a, b, out)
	r.forLimbs(level, func(i int) {
		q := r.Moduli[i].Q
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = MulMod(ai[j], bi[j], q)
		}
	})
}

// MulCoeffsThenAdd sets out += a ⊙ b (pointwise, NTT domain).
func (r *Ring) MulCoeffsThenAdd(a, b, out *Poly) {
	level := minLevel(a, b, out)
	r.forLimbs(level, func(i int) {
		q := r.Moduli[i].Q
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = AddMod(oi[j], MulMod(ai[j], bi[j], q), q)
		}
	})
}

// MulScalar sets out = a * scalar where scalar is reduced per limb.
func (r *Ring) MulScalar(a *Poly, scalar []uint64, out *Poly) {
	level := minLevel(a, out)
	r.forLimbs(level, func(i int) {
		q := r.Moduli[i].Q
		s := scalar[i] % q
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = MulMod(ai[j], s, q)
		}
	})
}

// AddScalar sets out = a + scalar (scalar given per limb). In NTT domain a
// scalar is a constant polynomial, whose transform is the constant itself in
// every slot, so the same routine serves both domains.
func (r *Ring) AddScalar(a *Poly, scalar []uint64, out *Poly) {
	level := minLevel(a, out)
	r.forLimbs(level, func(i int) {
		q := r.Moduli[i].Q
		s := scalar[i] % q
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = AddMod(ai[j], s, q)
		}
	})
}

// NTT transforms all limbs of p in place to the evaluation domain,
// fanning the per-limb transforms across the worker pool.
func (r *Ring) NTT(p *Poly) {
	r.forLimbs(p.Level(), func(i int) {
		r.Moduli[i].NTT(p.Coeffs[i])
	})
}

// INTT transforms all limbs of p in place back to coefficient domain,
// fanning the per-limb transforms across the worker pool.
func (r *Ring) INTT(p *Poly) {
	r.forLimbs(p.Level(), func(i int) {
		r.Moduli[i].INTT(p.Coeffs[i])
	})
}

// Zero clears all limbs of p.
func (p *Poly) Zero() {
	for i := range p.Coeffs {
		clear(p.Coeffs[i])
	}
}

// Equal reports whether a and b have identical limbs.
func (p *Poly) Equal(other *Poly) bool {
	if len(p.Coeffs) != len(other.Coeffs) {
		return false
	}
	for i := range p.Coeffs {
		for j := range p.Coeffs[i] {
			if p.Coeffs[i][j] != other.Coeffs[i][j] {
				return false
			}
		}
	}
	return true
}
