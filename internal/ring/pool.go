package ring

import "sync"

// Scratch recycling for the hot path. Evaluator-style callers draw
// polynomials and single-limb coefficient buffers from per-ring sync.Pools
// instead of owning them, which is what makes one evaluator shareable by
// concurrent callers: no scratch lives on any long-lived object.

// GetPoly returns a zeroed polynomial at the given level, recycled from the
// ring's pool when possible. It is equivalent to NewPoly for callers; pair
// it with PutPoly when the polynomial no longer escapes.
//
//hennlint:transfers-ownership the caller owns the returned poly and must PutPoly it
func (r *Ring) GetPoly(level int) *Poly {
	p := r.GetPolyRaw(level)
	p.Zero()
	return p
}

// GetPolyRaw is GetPoly without the zeroing: the coefficients are
// unspecified. Use it only for destinations every limb of which is fully
// overwritten before being read (e.g. MulCoeffs outputs).
func (r *Ring) GetPolyRaw(level int) *Poly {
	if v := r.polyPools[level].Get(); v != nil {
		return v.(*Poly)
	}
	return r.NewPoly(level)
}

// PutPoly returns a polynomial obtained from GetPoly (or NewPoly) to the
// pool. The caller must not retain any reference to p or its limbs.
// Truncated views alias another polynomial's storage and are rejected (they
// would let a future GetPoly hand out limbs of a still-live polynomial).
func (r *Ring) PutPoly(p *Poly) {
	if p == nil || p.view {
		return
	}
	level := p.Level()
	if level < 0 || level >= len(r.polyPools) || len(p.Coeffs[0]) != r.N {
		return
	}
	// Second line of defense for hand-built polys: NewPoly's limb-slice
	// headers have cap == len, while a sub-slice view has spare capacity.
	if cap(p.Coeffs) != len(p.Coeffs) {
		return
	}
	r.polyPools[level].Put(p)
}

// GetScratch returns an N-coefficient scratch buffer (contents undefined).
func (r *Ring) GetScratch() []uint64 {
	if v := r.scratchPool.Get(); v != nil {
		return v.([]uint64)
	}
	return make([]uint64, r.N)
}

// PutScratch recycles a buffer obtained from GetScratch.
func (r *Ring) PutScratch(buf []uint64) {
	if len(buf) == r.N {
		r.scratchPool.Put(buf) //nolint:staticcheck // slice header alloc is amortized
	}
}

// initPools wires the per-level polynomial pools; called by NewRing.
func (r *Ring) initPools() {
	r.polyPools = make([]sync.Pool, len(r.Moduli))
}
