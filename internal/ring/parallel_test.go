package ring

import (
	"math/big"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// --- worker pool --------------------------------------------------------------

func TestForEachLimbCoversEveryIndexOnce(t *testing.T) {
	defer SetParallelism(0)
	for _, workers := range []int{1, 2, 4, 16} {
		SetParallelism(workers)
		for _, jobs := range []int{0, 1, 3, 7, 64} {
			counts := make([]atomic.Int32, max(jobs, 1))
			// Large costPerJob forces the parallel path past the threshold.
			ForEachLimb(jobs, MinParallelWork, func(i int) {
				counts[i].Add(1)
			})
			for i := 0; i < jobs; i++ {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d jobs=%d: index %d ran %d times", workers, jobs, i, got)
				}
			}
		}
	}
}

func TestForEachLimbSmallJobsStaySerial(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(8)
	// Below the work threshold the indices must run in order on the calling
	// goroutine; record the order to prove it.
	var order []int
	ForEachLimb(4, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial fallback ran out of order: %v", order)
		}
	}
}

func TestForEachLimbNestedDoesNotDeadlock(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(4)
	var total atomic.Int32
	ForEachLimb(4, MinParallelWork, func(i int) {
		// The nested call must detect the in-flight fan-out and run serially.
		ForEachLimb(4, MinParallelWork, func(j int) {
			total.Add(1)
		})
	})
	if total.Load() != 16 {
		t.Fatalf("nested fan-out ran %d inner jobs, want 16", total.Load())
	}
}

func TestForEachLimbConcurrentCallers(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(4)
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				ForEachLimb(5, MinParallelWork, func(i int) { total.Add(1) })
			}
		}()
	}
	wg.Wait()
	if total.Load() != 8*50*5 {
		t.Fatalf("concurrent callers ran %d jobs, want %d", total.Load(), 8*50*5)
	}
}

func TestForEachWorkerCoversEveryIndexOnce(t *testing.T) {
	defer SetParallelism(0)
	for _, workers := range []int{1, 2, 4, 16} {
		SetParallelism(workers)
		for _, jobs := range []int{1, 3, 7, 64} {
			counts := make([]atomic.Int32, jobs)
			var setupWorkers atomic.Int32
			var setupCalls atomic.Int32
			ForEachWorker(jobs, MinParallelWork, func(w int) {
				setupCalls.Add(1)
				setupWorkers.Store(int32(w))
				if w < 1 || w > min(workers, jobs) {
					t.Errorf("workers=%d jobs=%d: setup got width %d", workers, jobs, w)
				}
			}, func(w, i int) {
				if int32(w) >= setupWorkers.Load() {
					t.Errorf("worker id %d out of announced range %d", w, setupWorkers.Load())
				}
				counts[i].Add(1)
			})
			if setupCalls.Load() != 1 {
				t.Fatalf("setup called %d times, want 1", setupCalls.Load())
			}
			for i := 0; i < jobs; i++ {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d jobs=%d: index %d ran %d times", workers, jobs, i, got)
				}
			}
		}
	}
}

func TestForEachWorkerSerialFallback(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(8)
	// Below the work threshold: one worker, in-order, on the caller.
	var order []int
	ForEachWorker(4, 1, func(w int) {
		if w != 1 {
			t.Fatalf("serial fallback announced %d workers", w)
		}
	}, func(w, i int) {
		if w != 0 {
			t.Fatalf("serial fallback used worker id %d", w)
		}
		order = append(order, i)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial fallback ran out of order: %v", order)
		}
	}
}

func TestForEachWorkerNestedLimbFanStaysSerial(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(4)
	var total atomic.Int32
	ForEachWorker(4, MinParallelWork, func(w int) {}, func(w, i int) {
		// The worker fan holds the gate, so the nested limb fan must run
		// serially rather than spawning a second tier of goroutines.
		ForEachLimb(4, MinParallelWork, func(j int) {
			total.Add(1)
		})
	})
	if total.Load() != 16 {
		t.Fatalf("nested fan ran %d inner jobs, want 16", total.Load())
	}
}

// --- parallel vs serial bit-identity ------------------------------------------

func TestRingOpsParallelMatchSerial(t *testing.T) {
	defer SetParallelism(0)
	primes, err := GenPrimes(45, 512, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(512, primes)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(r, 7)
	a := s.Uniform(5)
	b := s.Uniform(5)
	scalar := make([]uint64, 6)
	for i := range scalar {
		scalar[i] = uint64(3 + i)
	}

	type op struct {
		name string
		run  func(out *Poly)
	}
	ops := []op{
		{"Add", func(out *Poly) { r.Add(a, b, out) }},
		{"Sub", func(out *Poly) { r.Sub(a, b, out) }},
		{"Neg", func(out *Poly) { r.Neg(a, out) }},
		{"MulCoeffs", func(out *Poly) { r.MulCoeffs(a, b, out) }},
		{"MulCoeffsThenAdd", func(out *Poly) { r.MulCoeffsThenAdd(a, b, out) }},
		{"MulScalar", func(out *Poly) { r.MulScalar(a, scalar, out) }},
		{"AddScalar", func(out *Poly) { r.AddScalar(a, scalar, out) }},
	}
	for _, o := range ops {
		SetParallelism(1)
		serial := r.NewPoly(5)
		o.run(serial)
		SetParallelism(8)
		parallel := r.NewPoly(5)
		o.run(parallel)
		if !serial.Equal(parallel) {
			t.Errorf("%s: parallel result differs from serial", o.name)
		}
	}

	// In-place transforms: run NTT∘INTT under both settings on copies.
	SetParallelism(1)
	pSerial := a.CopyNew()
	r.NTT(pSerial)
	r.INTT(pSerial)
	SetParallelism(8)
	pParallel := a.CopyNew()
	r.NTT(pParallel)
	r.INTT(pParallel)
	if !pSerial.Equal(pParallel) || !pSerial.Equal(a) {
		t.Error("NTT/INTT: parallel path differs from serial or round-trip broken")
	}
}

// --- NTT properties across sizes ----------------------------------------------

func TestNTTRoundTripManySizes(t *testing.T) {
	for _, n := range []int{16, 64, 256, 1024, 4096, 8192} {
		q, err := GenPrime(45, n, nil)
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		m, err := NewModulus(q, n)
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		rng := rand.New(rand.NewSource(int64(n)))
		a := make([]uint64, n)
		for i := range a {
			a[i] = rng.Uint64() % q
		}
		orig := append([]uint64(nil), a...)
		m.NTT(a)
		m.INTT(a)
		for i := range a {
			if a[i] != orig[i] {
				t.Fatalf("N=%d: NTT∘INTT not identity at %d", n, i)
			}
		}
	}
}

// --- modular arithmetic vs math/big -------------------------------------------

// bigRef computes the expected value of each primitive with math/big.
func bigRef(op string, a, b, q uint64) uint64 {
	A := new(big.Int).SetUint64(a)
	B := new(big.Int).SetUint64(b)
	Q := new(big.Int).SetUint64(q)
	out := new(big.Int)
	switch op {
	case "add":
		out.Add(A, B)
	case "sub":
		out.Sub(A, B)
	case "mul":
		out.Mul(A, B)
	case "pow":
		return out.Exp(A, B, Q).Uint64()
	default:
		panic("unknown op " + op)
	}
	return out.Mod(out, Q).Uint64()
}

func edgeValues(q uint64) []uint64 {
	return []uint64{0, 1, 2, q >> 1, (q >> 1) + 1, q - 2, q - 1}
}

func TestModArithmeticAgainstBig(t *testing.T) {
	qs := []uint64{}
	for _, bits := range []int{30, 45, 58, 61} {
		q, err := GenPrime(bits, 16, nil)
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q)
	}
	rng := rand.New(rand.NewSource(99))
	for _, q := range qs {
		vals := edgeValues(q)
		for i := 0; i < 32; i++ {
			vals = append(vals, rng.Uint64()%q)
		}
		for _, a := range vals {
			for _, b := range vals {
				if got, want := AddMod(a, b, q), bigRef("add", a, b, q); got != want {
					t.Fatalf("AddMod(%d,%d,%d)=%d want %d", a, b, q, got, want)
				}
				if got, want := SubMod(a, b, q), bigRef("sub", a, b, q); got != want {
					t.Fatalf("SubMod(%d,%d,%d)=%d want %d", a, b, q, got, want)
				}
				if got, want := MulMod(a, b, q), bigRef("mul", a, b, q); got != want {
					t.Fatalf("MulMod(%d,%d,%d)=%d want %d", a, b, q, got, want)
				}
				if got, want := MulModShoup(a, b, shoupPrecomp(b, q), q), bigRef("mul", a, b, q); got != want {
					t.Fatalf("MulModShoup(%d,%d,%d)=%d want %d", a, b, q, got, want)
				}
			}
			// PowMod with a handful of exponents including edge cases.
			for _, e := range []uint64{0, 1, 2, 3, q - 1, q - 2, 1 << 40} {
				if got, want := PowMod(a, e, q), bigRef("pow", a, e, q); got != want {
					t.Fatalf("PowMod(%d,%d,%d)=%d want %d", a, e, q, got, want)
				}
			}
		}
	}
}

// fuzzPrimes is a fixed set of NTT-friendly primes of assorted sizes used to
// reduce arbitrary fuzz inputs into the primitives' contract (a, b < q).
var fuzzPrimes = func() []uint64 {
	out := []uint64{}
	for _, bits := range []int{30, 45, 61} {
		q, err := GenPrime(bits, 16, nil)
		if err != nil {
			panic(err)
		}
		out = append(out, q)
	}
	return out
}()

func FuzzAddSubMod(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint8(0))
	f.Add(^uint64(0), ^uint64(0), uint8(2))
	f.Fuzz(func(t *testing.T, a, b uint64, qi uint8) {
		q := fuzzPrimes[int(qi)%len(fuzzPrimes)]
		a, b = a%q, b%q
		if got, want := AddMod(a, b, q), bigRef("add", a, b, q); got != want {
			t.Fatalf("AddMod(%d,%d,%d)=%d want %d", a, b, q, got, want)
		}
		if got, want := SubMod(a, b, q), bigRef("sub", a, b, q); got != want {
			t.Fatalf("SubMod(%d,%d,%d)=%d want %d", a, b, q, got, want)
		}
	})
}

func FuzzMulModShoup(f *testing.F) {
	f.Add(uint64(1), uint64(1), uint8(0))
	f.Add(^uint64(0), ^uint64(0), uint8(1))
	f.Fuzz(func(t *testing.T, a, w uint64, qi uint8) {
		q := fuzzPrimes[int(qi)%len(fuzzPrimes)]
		a, w = a%q, w%q
		want := bigRef("mul", a, w, q)
		if got := MulMod(a, w, q); got != want {
			t.Fatalf("MulMod(%d,%d,%d)=%d want %d", a, w, q, got, want)
		}
		if got := MulModShoup(a, w, shoupPrecomp(w, q), q); got != want {
			t.Fatalf("MulModShoup(%d,%d,%d)=%d want %d", a, w, q, got, want)
		}
	})
}

func FuzzPowMod(f *testing.F) {
	f.Add(uint64(2), uint64(10), uint8(0))
	f.Fuzz(func(t *testing.T, a, e uint64, qi uint8) {
		q := fuzzPrimes[int(qi)%len(fuzzPrimes)]
		a %= q
		if got, want := PowMod(a, e, q), bigRef("pow", a, e, q); got != want {
			t.Fatalf("PowMod(%d,%d,%d)=%d want %d", a, e, q, got, want)
		}
	})
}

// --- pool ---------------------------------------------------------------------

func TestGetPolyReturnsZeroed(t *testing.T) {
	primes, err := GenPrimes(45, 64, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(64, primes)
	if err != nil {
		t.Fatal(err)
	}
	p := r.GetPoly(2)
	for i := range p.Coeffs {
		p.Coeffs[i][0] = 7
	}
	r.PutPoly(p)
	q := r.GetPoly(2)
	for i := range q.Coeffs {
		for j, c := range q.Coeffs[i] {
			if c != 0 {
				t.Fatalf("recycled poly not zeroed at limb %d coeff %d", i, j)
			}
		}
	}
}

func TestPutPolyIgnoresForeignBuffers(t *testing.T) {
	primes, err := GenPrimes(45, 64, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(64, primes)
	if err != nil {
		t.Fatal(err)
	}
	r.PutPoly(nil) // must be a no-op
	// A poly with the wrong degree must be rejected, not pooled.
	wrong := &Poly{Coeffs: [][]uint64{make([]uint64, 32)}}
	r.PutPoly(wrong)
	got := r.GetPoly(0)
	if len(got.Coeffs[0]) != 64 {
		t.Fatalf("pool handed back a foreign %d-coefficient buffer", len(got.Coeffs[0]))
	}
	// A truncated view aliases live storage and must be rejected: recycling
	// it would let a future GetPoly hand out (and zero) the parent's limbs.
	parent := r.NewPoly(1)
	parent.Coeffs[0][0] = 99
	r.PutPoly(parent.Truncate(0))
	fresh := r.GetPoly(0)
	if &fresh.Coeffs[0][0] == &parent.Coeffs[0][0] {
		t.Fatal("pool recycled a truncated view aliasing a live polynomial")
	}
	if parent.Coeffs[0][0] != 99 {
		t.Fatal("recycling a truncated view corrupted the parent polynomial")
	}
	// Same-level views (cap == len) must be rejected too.
	r.PutPoly(parent.Truncate(1))
	fresh = r.GetPoly(1)
	if &fresh.Coeffs[0][0] == &parent.Coeffs[0][0] {
		t.Fatal("pool recycled a same-level view aliasing a live polynomial")
	}
	// Scratch recycling obeys the same size rule.
	r.PutScratch(make([]uint64, 16))
	if buf := r.GetScratch(); len(buf) != 64 {
		t.Fatalf("scratch pool handed back a %d-length buffer", len(buf))
	}
}
