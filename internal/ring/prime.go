package ring

import (
	"fmt"
	"math/big"
)

// GenPrimes returns count distinct primes of (approximately) the requested
// bit size that are NTT-friendly for ring degree n, i.e. q ≡ 1 (mod 2n).
// Primes are chosen alternating below and above 2^bitSize so that their
// geometric mean stays close to 2^bitSize; this keeps the CKKS scale drift
// after rescaling small. The avoid set excludes primes already in use.
func GenPrimes(bitSize, n, count int, avoid map[uint64]bool) ([]uint64, error) {
	if bitSize < 20 || bitSize > MaxModulusBits {
		return nil, fmt.Errorf("ring: prime bit size %d out of range [20,%d]", bitSize, MaxModulusBits)
	}
	m := uint64(2 * n)
	center := uint64(1) << uint(bitSize)
	// First candidate ≡ 1 mod 2n at or below 2^bitSize.
	lo := (center/m)*m + 1
	hi := lo + m

	primes := make([]uint64, 0, count)
	useLow := true
	for len(primes) < count {
		var cand uint64
		if useLow {
			cand = lo
			lo -= m
		} else {
			cand = hi
			hi += m
		}
		useLow = !useLow
		if cand < 3 || cand>>uint(bitSize+1) != 0 {
			continue
		}
		if avoid != nil && avoid[cand] {
			continue
		}
		if new(big.Int).SetUint64(cand).ProbablyPrime(20) {
			primes = append(primes, cand)
			if avoid != nil {
				avoid[cand] = true
			}
		}
		if lo < m && hi>>uint(bitSize+2) != 0 {
			return nil, fmt.Errorf("ring: exhausted candidates for %d-bit primes with 2N=%d", bitSize, m)
		}
	}
	return primes, nil
}

// GenPrime returns a single NTT-friendly prime (see GenPrimes).
func GenPrime(bitSize, n int, avoid map[uint64]bool) (uint64, error) {
	ps, err := GenPrimes(bitSize, n, 1, avoid)
	if err != nil {
		return 0, err
	}
	return ps[0], nil
}
