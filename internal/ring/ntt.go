package ring

// NTT performs an in-place forward negacyclic number-theoretic transform of a
// modulo m.Q. Input is in standard coefficient order; output is in
// bit-reversed "evaluation" order suitable for pointwise multiplication.
// The transform follows the Cooley–Tukey butterflies with merged powers of
// psi (Longa–Naehrig), so no separate pre-multiplication by psi^i is needed.
func (m *Modulus) NTT(a []uint64) {
	n := m.N
	q := m.Q
	t := n
	for stage := 1; stage < n; stage <<= 1 {
		t >>= 1
		for i := 0; i < stage; i++ {
			w := m.psiFwd[stage+i]
			wShoup := m.psiFwdShoup[stage+i]
			j1 := 2 * i * t
			for j := j1; j < j1+t; j++ {
				u := a[j]
				v := MulModShoup(a[j+t], w, wShoup, q)
				a[j] = AddMod(u, v, q)
				a[j+t] = SubMod(u, v, q)
			}
		}
	}
}

// INTT performs an in-place inverse negacyclic NTT (Gentleman–Sande
// butterflies with merged inverse powers of psi), returning coefficients in
// standard order and already divided by N.
func (m *Modulus) INTT(a []uint64) {
	n := m.N
	q := m.Q
	t := 1
	for stage := n >> 1; stage >= 1; stage >>= 1 {
		j1 := 0
		for i := 0; i < stage; i++ {
			w := m.psiInvRev[stage+i]
			wShoup := m.psiInvShoup[stage+i]
			for j := j1; j < j1+t; j++ {
				u := a[j]
				v := a[j+t]
				a[j] = AddMod(u, v, q)
				a[j+t] = MulModShoup(SubMod(u, v, q), w, wShoup, q)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	for j := 0; j < n; j++ {
		a[j] = MulModShoup(a[j], m.nInv, m.nInvShoup, q)
	}
}
