package ring

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the RNS-limb worker pool: independent per-limb work
// (NTT/INTT across limbs, pointwise limb arithmetic, key-switch digit
// accumulation, rescale base extension) is fanned across up to Parallelism()
// goroutines, with a serial fallback when the job is too small to amortize
// the fan-out or when another fan-out is already in flight.
//
// The design deliberately relies on the Go scheduler as the underlying
// thread pool: workers are plain goroutines pulling limb indices from an
// atomic counter, so nested calls and concurrent evaluators cannot deadlock
// on a fixed-size queue. A single in-flight fan-out gate keeps the total
// goroutine count bounded at Parallelism() even when many callers hit the
// substrate at once — in that regime the callers themselves already provide
// the concurrency, and per-limb fan-out would only add scheduling overhead.

// MinParallelWork is the minimum number of coefficient operations
// (jobs × per-job cost) below which limb fan-out falls back to the serial
// path. One goroutine handoff costs on the order of a microsecond, which a
// limb of ≥ 4096 butterfly operations comfortably amortizes.
const MinParallelWork = 1 << 13

// parallelism is the fan-out width; 0 means "use runtime.GOMAXPROCS(0)".
var parallelism atomic.Int64

// fanOutActive is 1 while a fan-out is in flight. Nested or concurrent
// ForEachLimb calls run serially instead of multiplying goroutines.
var fanOutActive atomic.Int32

// SetParallelism bounds the number of goroutines a single substrate
// operation fans limb work across. n ≤ 0 restores the default
// (runtime.GOMAXPROCS(0)); n == 1 forces the serial path everywhere.
// It is safe to call concurrently with running operations: the setting is
// read once per operation.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int64(n))
}

// Parallelism reports the current fan-out width.
func Parallelism() int {
	if n := parallelism.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// ForEachLimb runs f(i) for every i in [0, jobs), fanning the calls across
// worker goroutines when jobs*costPerJob ≥ MinParallelWork and no other
// fan-out is in flight. f must treat distinct indices as independent: no
// ordering between indices is guaranteed and they may run on different
// goroutines. ForEachLimb returns only after every f(i) has returned.
func ForEachLimb(jobs, costPerJob int, f func(i int)) {
	w := Parallelism()
	if w <= 1 || jobs <= 1 || jobs*costPerJob < MinParallelWork ||
		!fanOutActive.CompareAndSwap(0, 1) {
		for i := 0; i < jobs; i++ {
			f(i)
		}
		return
	}
	defer fanOutActive.Store(0)
	if w > jobs {
		w = jobs
	}
	var next atomic.Int64
	worker := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= jobs {
				return
			}
			f(i)
		}
	}
	// The calling goroutine is worker zero; only w-1 goroutines are spawned.
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for g := 0; g < w-1; g++ {
		go func() {
			defer wg.Done()
			worker()
		}()
	}
	worker()
	wg.Wait()
}

// ForEachWorker runs f(w, i) for every i in [0, jobs) like ForEachLimb, but
// passes the executing worker's identity w so callers can keep per-worker
// state (the key-switch digit fan accumulates into per-worker polynomials
// and merges once at the end). setup is called exactly once, before any f,
// with the number of workers that will run — 1 on the serial path — and
// worker indices passed to f are in [0, workers). Job-to-worker assignment
// is dynamic and unspecified; callers must only depend on the merged result
// (exact modular accumulation is order-independent, so key-switch output
// stays bit-deterministic). The parallel path holds the fan-out gate, so
// ForEachLimb calls nested inside f run serially instead of double-fanning.
func ForEachWorker(jobs, costPerJob int, setup func(workers int), f func(worker, i int)) {
	w := Parallelism()
	if w > jobs {
		w = jobs
	}
	if w <= 1 || jobs*costPerJob < MinParallelWork ||
		!fanOutActive.CompareAndSwap(0, 1) {
		setup(1)
		for i := 0; i < jobs; i++ {
			f(0, i)
		}
		return
	}
	defer fanOutActive.Store(0)
	setup(w)
	var next atomic.Int64
	worker := func(id int) {
		for {
			i := int(next.Add(1)) - 1
			if i >= jobs {
				return
			}
			f(id, i)
		}
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for g := 1; g < w; g++ {
		go func(id int) {
			defer wg.Done()
			worker(id)
		}(g)
	}
	worker(0)
	wg.Wait()
}

// forLimbs fans f over the limbs 0..level of a ring, costing each limb at
// the ring degree. This is the common entry point for limb-wise poly ops.
func (r *Ring) forLimbs(level int, f func(i int)) {
	ForEachLimb(level+1, r.N, f)
}
