package ring

//hennlint:deterministic-sampling seeded math/rand keeps every experiment reproducible; see the NOTE on Sampler
import "math/rand"

// Sampler draws random ring elements. It is deterministic given its seed,
// which keeps every experiment in this repository reproducible.
//
// NOTE: math/rand is NOT a cryptographically secure source. This is a
// research artifact reproducing latency/accuracy results; a production
// deployment must swap in crypto/rand-backed sampling.
type Sampler struct {
	r   *Ring
	rng *rand.Rand
	// Gaussian parameter for error sampling (standard HE default).
	Sigma float64
	// Rejection bound for Gaussian samples, in standard deviations.
	Bound float64
}

// NewSampler creates a sampler over r seeded deterministically.
func NewSampler(r *Ring, seed int64) *Sampler {
	return &Sampler{r: r, rng: rand.New(rand.NewSource(seed)), Sigma: 3.2, Bound: 6}
}

// Uniform fills a fresh polynomial at the given level with independently
// uniform residues per limb (a uniform element of R_{Q_level} by CRT).
func (s *Sampler) Uniform(level int) *Poly {
	p := s.r.NewPoly(level)
	for i := 0; i <= level; i++ {
		q := s.r.Moduli[i].Q
		ci := p.Coeffs[i]
		for j := range ci {
			ci[j] = uniformUint64(s.rng, q)
		}
	}
	return p
}

// uniformUint64 returns a uniform value in [0, q) without modulo bias.
func uniformUint64(rng *rand.Rand, q uint64) uint64 {
	max := ^uint64(0) - ^uint64(0)%q
	for {
		v := rng.Uint64()
		if v < max {
			return v % q
		}
	}
}

// Ternary fills a polynomial with coefficients in {-1, 0, 1}, each nonzero
// with probability density (standard CKKS secret/encryption randomness).
func (s *Sampler) Ternary(level int, density float64) *Poly {
	p := s.r.NewPoly(level)
	n := s.r.N
	signs := make([]int8, n)
	for j := 0; j < n; j++ {
		u := s.rng.Float64()
		switch {
		case u < density/2:
			signs[j] = 1
		case u < density:
			signs[j] = -1
		}
	}
	s.setSigned(p, level, func(j int) int64 { return int64(signs[j]) })
	return p
}

// Gaussian fills a polynomial with rounded Gaussian coefficients of standard
// deviation s.Sigma, truncated at s.Bound standard deviations.
func (s *Sampler) Gaussian(level int) *Poly {
	p := s.r.NewPoly(level)
	n := s.r.N
	vals := make([]int64, n)
	for j := 0; j < n; j++ {
		for {
			v := s.rng.NormFloat64() * s.Sigma
			if v >= -s.Bound*s.Sigma && v <= s.Bound*s.Sigma {
				vals[j] = int64(roundHalfAway(v))
				break
			}
		}
	}
	s.setSigned(p, level, func(j int) int64 { return vals[j] })
	return p
}

func roundHalfAway(v float64) float64 {
	if v >= 0 {
		return float64(int64(v + 0.5))
	}
	return float64(int64(v - 0.5))
}

// setSigned writes signed integer coefficients into all limbs of p,
// reducing negatives as q - |v|.
func (s *Sampler) setSigned(p *Poly, level int, f func(j int) int64) {
	for i := 0; i <= level; i++ {
		q := s.r.Moduli[i].Q
		ci := p.Coeffs[i]
		for j := range ci {
			v := f(j)
			if v >= 0 {
				ci[j] = uint64(v) % q
			} else {
				ci[j] = q - uint64(-v)%q
			}
		}
	}
}

// GaussianSigned returns N signed rounded-Gaussian coefficients. Use this
// when the same small error polynomial must be embedded into several rings
// (e.g. both the Q chain and the special prime P during key generation).
func (s *Sampler) GaussianSigned() []int64 {
	n := s.r.N
	vals := make([]int64, n)
	for j := 0; j < n; j++ {
		for {
			v := s.rng.NormFloat64() * s.Sigma
			if v >= -s.Bound*s.Sigma && v <= s.Bound*s.Sigma {
				vals[j] = int64(roundHalfAway(v))
				break
			}
		}
	}
	return vals
}

// TernarySigned returns N coefficients in {-1,0,1}, nonzero with the given
// density.
func (s *Sampler) TernarySigned(density float64) []int64 {
	n := s.r.N
	vals := make([]int64, n)
	for j := 0; j < n; j++ {
		u := s.rng.Float64()
		switch {
		case u < density/2:
			vals[j] = 1
		case u < density:
			vals[j] = -1
		}
	}
	return vals
}

// SetSignedCoeffs writes the signed coefficient vector into all limbs of a
// fresh polynomial at the given level.
func (r *Ring) SetSignedCoeffs(vals []int64, level int) *Poly {
	p := r.NewPoly(level)
	for i := 0; i <= level; i++ {
		q := r.Moduli[i].Q
		ci := p.Coeffs[i]
		for j := range ci {
			v := vals[j]
			if v >= 0 {
				ci[j] = uint64(v) % q
			} else {
				ci[j] = q - uint64(-v)%q
			}
		}
	}
	return p
}

// CenteredLimb lifts limb i of p (coefficient domain) to centered
// representatives in (-q/2, q/2].
func (r *Ring) CenteredLimb(p *Poly, i int) []int64 {
	q := r.Moduli[i].Q
	half := q >> 1
	out := make([]int64, len(p.Coeffs[i]))
	for j, c := range p.Coeffs[i] {
		if c > half {
			out[j] = -int64(q - c)
		} else {
			out[j] = int64(c)
		}
	}
	return out
}
