package ring

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func testModulus(t *testing.T, n int) *Modulus {
	t.Helper()
	q, err := GenPrime(45, n, nil)
	if err != nil {
		t.Fatalf("GenPrime: %v", err)
	}
	m, err := NewModulus(q, n)
	if err != nil {
		t.Fatalf("NewModulus: %v", err)
	}
	return m
}

func TestGenPrimesProperties(t *testing.T) {
	avoid := map[uint64]bool{}
	primes, err := GenPrimes(40, 1024, 8, avoid)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, q := range primes {
		if seen[q] {
			t.Fatalf("duplicate prime %d", q)
		}
		seen[q] = true
		if q%(2*1024) != 1 {
			t.Fatalf("prime %d not ≡ 1 mod 2N", q)
		}
		if !new(big.Int).SetUint64(q).ProbablyPrime(30) {
			t.Fatalf("%d is not prime", q)
		}
	}
}

func TestGenPrimesAvoid(t *testing.T) {
	avoid := map[uint64]bool{}
	p1, err := GenPrimes(40, 512, 3, avoid)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := GenPrimes(40, 512, 3, avoid)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range p1 {
		for _, b := range p2 {
			if a == b {
				t.Fatalf("avoid set not honoured: %d reused", a)
			}
		}
	}
}

func TestGenPrimesRejectsBadSizes(t *testing.T) {
	if _, err := GenPrimes(10, 512, 1, nil); err == nil {
		t.Fatal("expected error for too-small bit size")
	}
	if _, err := GenPrimes(63, 512, 1, nil); err == nil {
		t.Fatal("expected error for too-large bit size")
	}
}

func TestModularArithmetic(t *testing.T) {
	const q = uint64(0x1fffffffffe00001) // 61-bit prime-shaped value for range checks
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(func(a, b uint64) bool {
		a, b = a%q, b%q
		s := AddMod(a, b, q)
		d := SubMod(s, b, q)
		return d == a && s < q
	}, cfg); err != nil {
		t.Errorf("add/sub roundtrip: %v", err)
	}
	if err := quick.Check(func(a, b uint64) bool {
		a, b = a%q, b%q
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, new(big.Int).SetUint64(q))
		return MulMod(a, b, q) == want.Uint64()
	}, cfg); err != nil {
		t.Errorf("MulMod vs big.Int: %v", err)
	}
}

func TestMulModShoupMatchesMulMod(t *testing.T) {
	q, err := GenPrime(50, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		a := uniformUint64(rng, q)
		w := uniformUint64(rng, q)
		ws := shoupPrecomp(w, q)
		if got, want := MulModShoup(a, w, ws, q), MulMod(a, w, q); got != want {
			t.Fatalf("Shoup mismatch a=%d w=%d: got %d want %d", a, w, got, want)
		}
	}
}

func TestPowInvMod(t *testing.T) {
	q, _ := GenPrime(45, 256, nil)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		a := 1 + uniformUint64(rng, q-1)
		inv := InvMod(a, q)
		if MulMod(a, inv, q) != 1 {
			t.Fatalf("InvMod(%d) incorrect", a)
		}
	}
	if PowMod(3, 0, q) != 1 {
		t.Fatal("a^0 != 1")
	}
}

func TestPrimitiveRootOrder(t *testing.T) {
	for _, n := range []int{64, 256, 1024} {
		m := testModulus(t, n)
		psi := m.Psi()
		if PowMod(psi, uint64(n), m.Q) != m.Q-1 {
			t.Fatalf("psi^N != -1 for n=%d", n)
		}
		if PowMod(psi, uint64(2*n), m.Q) != 1 {
			t.Fatalf("psi^2N != 1 for n=%d", n)
		}
	}
}

func TestNTTRoundtrip(t *testing.T) {
	m := testModulus(t, 512)
	rng := rand.New(rand.NewSource(11))
	a := make([]uint64, m.N)
	for i := range a {
		a[i] = uniformUint64(rng, m.Q)
	}
	orig := append([]uint64(nil), a...)
	m.NTT(a)
	m.INTT(a)
	for i := range a {
		if a[i] != orig[i] {
			t.Fatalf("roundtrip mismatch at %d: got %d want %d", i, a[i], orig[i])
		}
	}
}

// naive negacyclic product c = a*b mod (X^N+1, q)
func negacyclicMul(a, b []uint64, q uint64) []uint64 {
	n := len(a)
	c := make([]uint64, n)
	for i := 0; i < n; i++ {
		if a[i] == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			p := MulMod(a[i], b[j], q)
			k := i + j
			if k < n {
				c[k] = AddMod(c[k], p, q)
			} else {
				c[k-n] = SubMod(c[k-n], p, q)
			}
		}
	}
	return c
}

func TestNTTNegacyclicMultiplication(t *testing.T) {
	m := testModulus(t, 128)
	rng := rand.New(rand.NewSource(5))
	a := make([]uint64, m.N)
	b := make([]uint64, m.N)
	for i := range a {
		a[i] = uniformUint64(rng, m.Q)
		b[i] = uniformUint64(rng, m.Q)
	}
	want := negacyclicMul(a, b, m.Q)

	ahat := append([]uint64(nil), a...)
	bhat := append([]uint64(nil), b...)
	m.NTT(ahat)
	m.NTT(bhat)
	for i := range ahat {
		ahat[i] = MulMod(ahat[i], bhat[i], m.Q)
	}
	m.INTT(ahat)
	for i := range ahat {
		if ahat[i] != want[i] {
			t.Fatalf("negacyclic product mismatch at %d", i)
		}
	}
}

func TestNTTLinearity(t *testing.T) {
	m := testModulus(t, 256)
	rng := rand.New(rand.NewSource(9))
	a := make([]uint64, m.N)
	b := make([]uint64, m.N)
	sum := make([]uint64, m.N)
	for i := range a {
		a[i] = uniformUint64(rng, m.Q)
		b[i] = uniformUint64(rng, m.Q)
		sum[i] = AddMod(a[i], b[i], m.Q)
	}
	m.NTT(a)
	m.NTT(b)
	m.NTT(sum)
	for i := range a {
		if AddMod(a[i], b[i], m.Q) != sum[i] {
			t.Fatalf("NTT not linear at %d", i)
		}
	}
}

func newTestRing(t *testing.T, n, levels int) *Ring {
	t.Helper()
	primes, err := GenPrimes(45, n, levels+1, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(n, primes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestPolyAddSubNeg(t *testing.T) {
	r := newTestRing(t, 64, 2)
	s := NewSampler(r, 42)
	a := s.Uniform(2)
	b := s.Uniform(2)
	sum := r.NewPoly(2)
	r.Add(a, b, sum)
	diff := r.NewPoly(2)
	r.Sub(sum, b, diff)
	if !diff.Equal(a) {
		t.Fatal("(a+b)-b != a")
	}
	neg := r.NewPoly(2)
	r.Neg(a, neg)
	zero := r.NewPoly(2)
	r.Add(a, neg, zero)
	want := r.NewPoly(2)
	if !zero.Equal(want) {
		t.Fatal("a + (-a) != 0")
	}
}

func TestPolyMulCoeffsThenAdd(t *testing.T) {
	r := newTestRing(t, 64, 1)
	s := NewSampler(r, 43)
	a := s.Uniform(1)
	b := s.Uniform(1)
	prod := r.NewPoly(1)
	r.MulCoeffs(a, b, prod)
	acc := r.NewPoly(1)
	r.MulCoeffsThenAdd(a, b, acc)
	r.MulCoeffsThenAdd(a, b, acc)
	double := r.NewPoly(1)
	r.Add(prod, prod, double)
	if !acc.Equal(double) {
		t.Fatal("MulCoeffsThenAdd accumulation incorrect")
	}
}

func TestTernaryAndGaussianRanges(t *testing.T) {
	r := newTestRing(t, 256, 0)
	s := NewSampler(r, 44)
	tern := s.Ternary(0, 0.67)
	q := r.Moduli[0].Q
	nonzero := 0
	for _, c := range tern.Coeffs[0] {
		if c != 0 && c != 1 && c != q-1 {
			t.Fatalf("ternary coefficient %d out of {-1,0,1}", c)
		}
		if c != 0 {
			nonzero++
		}
	}
	if nonzero == 0 || nonzero == r.N {
		t.Fatalf("suspicious ternary density: %d/%d nonzero", nonzero, r.N)
	}
	g := s.Gaussian(0)
	lifted := r.CenteredLimb(g, 0)
	for _, v := range lifted {
		if v > 6*4 || v < -6*4 {
			t.Fatalf("gaussian sample %d outside rejection bound", v)
		}
	}
}

func TestCenteredLimbAndSetSigned(t *testing.T) {
	r := newTestRing(t, 64, 1)
	vals := make([]int64, r.N)
	for i := range vals {
		vals[i] = int64(i - r.N/2)
	}
	p := r.SetSignedCoeffs(vals, 1)
	got := r.CenteredLimb(p, 0)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("centered lift mismatch at %d: got %d want %d", i, got[i], vals[i])
		}
	}
	got1 := r.CenteredLimb(p, 1)
	for i := range vals {
		if got1[i] != vals[i] {
			t.Fatalf("limb-1 centered lift mismatch at %d", i)
		}
	}
}

func TestPolyCopyTruncate(t *testing.T) {
	r := newTestRing(t, 64, 3)
	s := NewSampler(r, 45)
	a := s.Uniform(3)
	cp := a.CopyNew()
	if !cp.Equal(a) {
		t.Fatal("copy differs")
	}
	cp.Coeffs[0][0]++
	if cp.Equal(a) {
		t.Fatal("copy shares storage")
	}
	tr := a.Truncate(1)
	if tr.Level() != 1 {
		t.Fatalf("truncate level = %d, want 1", tr.Level())
	}
	tr.Coeffs[0][1] = 12345 % r.Moduli[0].Q
	if a.Coeffs[0][1] != tr.Coeffs[0][1] {
		t.Fatal("truncate should share storage")
	}
}

func TestUniformNoModuloBias(t *testing.T) {
	// Statistical smoke test: mean of uniform samples should be ~q/2.
	q := uint64(1 << 30)
	rng := rand.New(rand.NewSource(2))
	var sum float64
	const trials = 20000
	for i := 0; i < trials; i++ {
		sum += float64(uniformUint64(rng, q))
	}
	mean := sum / trials
	if mean < float64(q)*0.48 || mean > float64(q)*0.52 {
		t.Fatalf("uniform mean %.0f far from q/2=%.0f", mean, float64(q)/2)
	}
}
