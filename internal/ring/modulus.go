// Package ring implements arithmetic over the negacyclic polynomial rings
// R_q = Z_q[X]/(X^N + 1) used by the RNS-CKKS scheme in internal/ckks.
//
// The package provides:
//
//   - word-sized prime moduli with precomputed NTT twiddle factors,
//   - negacyclic number-theoretic transforms (forward/inverse),
//   - generation of NTT-friendly primes (q ≡ 1 mod 2N),
//   - RNS polynomials (one uint64 limb per prime) and limb-wise arithmetic,
//   - samplers for uniform, ternary and discrete-Gaussian polynomials.
//
// All moduli are required to be below 2^61 so that modular reduction can be
// performed with 128-bit intermediate products (math/bits.Mul64/Div64).
package ring

import (
	"fmt"
	"math/bits"
)

// MaxModulusBits is the largest supported bit size for a single prime.
// Keeping q < 2^61 guarantees that a+b never overflows uint64 and that the
// high word of a 128-bit product is always smaller than q, as required by
// bits.Div64.
const MaxModulusBits = 61

// Modulus bundles a prime q with the precomputed constants needed for fast
// modular arithmetic and negacyclic NTTs of a fixed ring degree N.
type Modulus struct {
	Q uint64 // the prime
	N int    // ring degree this modulus was prepared for

	psi    uint64 // primitive 2N-th root of unity mod q
	psiInv uint64 // psi^-1 mod q
	nInv   uint64 // N^-1 mod q

	// Twiddle tables in bit-reversed order (Longa–Naehrig layout) together
	// with their Shoup precomputations for fast butterfly multiplication.
	psiFwd      []uint64
	psiFwdShoup []uint64
	psiInvRev   []uint64
	psiInvShoup []uint64
	nInvShoup   uint64
}

// NewModulus prepares q for NTTs of degree n (a power of two). q must be
// prime with q ≡ 1 (mod 2n) and q < 2^61.
func NewModulus(q uint64, n int) (*Modulus, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ring: degree %d is not a positive power of two", n)
	}
	if bits.Len64(q) > MaxModulusBits {
		return nil, fmt.Errorf("ring: modulus %d exceeds %d bits", q, MaxModulusBits)
	}
	if q%(2*uint64(n)) != 1 {
		return nil, fmt.Errorf("ring: modulus %d is not congruent to 1 mod 2N=%d", q, 2*n)
	}
	psi, err := primitiveRoot2N(q, n)
	if err != nil {
		return nil, err
	}
	m := &Modulus{Q: q, N: n, psi: psi}
	m.psiInv = InvMod(psi, q)
	m.nInv = InvMod(uint64(n), q)
	m.buildTwiddles()
	return m, nil
}

func (m *Modulus) buildTwiddles() {
	n := m.N
	logN := bits.Len(uint(n)) - 1
	m.psiFwd = make([]uint64, n)
	m.psiFwdShoup = make([]uint64, n)
	m.psiInvRev = make([]uint64, n)
	m.psiInvShoup = make([]uint64, n)

	fwd, inv := uint64(1), uint64(1)
	powsFwd := make([]uint64, n)
	powsInv := make([]uint64, n)
	for i := 0; i < n; i++ {
		powsFwd[i] = fwd
		powsInv[i] = inv
		fwd = MulMod(fwd, m.psi, m.Q)
		inv = MulMod(inv, m.psiInv, m.Q)
	}
	for i := 0; i < n; i++ {
		r := int(bitReverse(uint64(i), logN))
		m.psiFwd[i] = powsFwd[r]
		m.psiInvRev[i] = powsInv[r]
		m.psiFwdShoup[i] = shoupPrecomp(m.psiFwd[i], m.Q)
		m.psiInvShoup[i] = shoupPrecomp(m.psiInvRev[i], m.Q)
	}
	m.nInvShoup = shoupPrecomp(m.nInv, m.Q)
}

// Psi returns the primitive 2N-th root of unity used by this modulus.
func (m *Modulus) Psi() uint64 { return m.psi }

// AddMod returns a+b mod q. Inputs must be < q.
func AddMod(a, b, q uint64) uint64 {
	s := a + b
	if s >= q {
		s -= q
	}
	return s
}

// SubMod returns a-b mod q. Inputs must be < q.
func SubMod(a, b, q uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + q - b
}

// NegMod returns -a mod q. Input must be < q.
func NegMod(a, q uint64) uint64 {
	if a == 0 {
		return 0
	}
	return q - a
}

// MulMod returns a*b mod q using a 128-bit intermediate product.
func MulMod(a, b, q uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi, lo, q)
	return rem
}

// shoupPrecomp returns floor(w * 2^64 / q), the Shoup constant for w.
// Requires w < q, which makes the 128/64 division safe.
func shoupPrecomp(w, q uint64) uint64 {
	quo, _ := bits.Div64(w, 0, q)
	return quo
}

// MulModShoup returns a*w mod q where wShoup = floor(w*2^64/q) was
// precomputed. Result is < q; a must be < q and w < q.
func MulModShoup(a, w, wShoup, q uint64) uint64 {
	hi, _ := bits.Mul64(a, wShoup)
	r := a*w - hi*q
	if r >= q {
		r -= q
	}
	return r
}

// PowMod returns a^e mod q by square-and-multiply.
func PowMod(a, e, q uint64) uint64 {
	result := uint64(1)
	base := a % q
	for e > 0 {
		if e&1 == 1 {
			result = MulMod(result, base, q)
		}
		base = MulMod(base, base, q)
		e >>= 1
	}
	return result
}

// InvMod returns a^-1 mod q for prime q (via Fermat's little theorem).
func InvMod(a, q uint64) uint64 { return PowMod(a, q-2, q) }

// bitReverse reverses the lowest n bits of v.
func bitReverse(v uint64, n int) uint64 {
	return bits.Reverse64(v) >> (64 - n)
}

// primitiveRoot2N finds a primitive 2N-th root of unity modulo q.
func primitiveRoot2N(q uint64, n int) (uint64, error) {
	two := uint64(2 * n)
	exp := (q - 1) / two
	// Deterministic scan keeps key generation reproducible across runs.
	for cand := uint64(2); cand < q && cand < 1<<20; cand++ {
		psi := PowMod(cand, exp, q)
		if psi == 0 || psi == 1 {
			continue
		}
		if PowMod(psi, uint64(n), q) == q-1 {
			return psi, nil
		}
	}
	return 0, fmt.Errorf("ring: no primitive 2N-th root of unity found for q=%d", q)
}
