package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a set of metric families and renders them in Prometheus
// text exposition format. Each Server owns its own Registry (no process
// globals), so tests and multi-server processes never collide on metric
// names. Registration happens once at construction; the per-sample paths
// (Counter.Inc, Histogram.Record) never touch the registry lock.
type Registry struct {
	mu     sync.Mutex
	fams   []*metricFamily          //hennlint:guarded-by(mu)
	byName map[string]*metricFamily //hennlint:guarded-by(mu)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*metricFamily{}}
}

type metricFamily struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	labels []string
	fn     func() float64 // non-nil for a function-backed gauge/counter

	mu     sync.RWMutex
	series map[string]*labeledSeries //hennlint:guarded-by(mu)
	order  []string                  //hennlint:guarded-by(mu)
}

type labeledSeries struct {
	values []string
	ctr    *Counter
	hist   *Histogram
}

// Counter is a monotonically increasing counter. The zero value is ready;
// methods tolerate a nil receiver so disabled call sites need no check.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.n.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct{ fam *metricFamily }

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct{ fam *metricFamily }

func (r *Registry) register(name, help, typ string, labels []string, fn func() float64) *metricFamily {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic("telemetry: duplicate metric registration: " + name)
	}
	f := &metricFamily{
		name:   name,
		help:   help,
		typ:    typ,
		labels: labels,
		fn:     fn,
		series: map[string]*labeledSeries{},
	}
	r.fams = append(r.fams, f)
	r.byName[name] = f
	return f
}

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, "counter", labels, nil)}
}

// NewHistogramVec registers a labeled histogram family.
func (r *Registry) NewHistogramVec(name, help string, labels ...string) *HistogramVec {
	return &HistogramVec{fam: r.register(name, help, "histogram", labels, nil)}
}

// NewCounter registers an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.NewCounterVec(name, help).With()
}

// NewHistogram registers an unlabeled histogram.
func (r *Registry) NewHistogram(name, help string) *Histogram {
	return r.NewHistogramVec(name, help).With()
}

// NewGaugeFunc registers a gauge whose value is sampled at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", nil, fn)
}

// NewCounterFunc registers a counter whose value is sampled at scrape time
// (for totals another subsystem already tracks atomically).
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	r.register(name, help, "counter", nil, fn)
}

func (f *metricFamily) with(values []string) *labeledSeries {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label value(s), got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &labeledSeries{values: append([]string(nil), values...)}
	switch f.typ {
	case "counter":
		s.ctr = &Counter{}
	case "histogram":
		s.hist = &Histogram{}
	}
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

func (f *metricFamily) find(values []string) *labeledSeries {
	key := strings.Join(values, "\x00")
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.series[key]
}

// With returns the counter for the given label values, creating it on
// first use. The value count must match the registered label names.
func (v *CounterVec) With(values ...string) *Counter { return v.fam.with(values).ctr }

// Find returns the counter for the label values, or nil if it was never
// created — a read-only lookup for stats surfaces.
func (v *CounterVec) Find(values ...string) *Counter {
	if s := v.fam.find(values); s != nil {
		return s.ctr
	}
	return nil
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram { return v.fam.with(values).hist }

// Find returns the histogram for the label values, or nil if it was never
// created.
func (v *HistogramVec) Find(values ...string) *Histogram {
	if s := v.fam.find(values); s != nil {
		return s.hist
	}
	return nil
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatLabels renders {k1="v1",k2="v2"}; extra appends one more pair
// (the histogram le label). Returns "" for an unlabeled series.
func formatLabels(names, values []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(extraV)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteText renders every family in Prometheus text exposition format,
// families sorted by name and series by label values, so output is
// deterministic for golden tests and stable for scrape diffing.
//
//hennlint:read-path
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*metricFamily(nil), r.fams...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		if f.fn != nil {
			fmt.Fprintf(&b, "%s %s\n", f.name, formatFloat(f.fn()))
			continue
		}
		f.mu.RLock()
		keys := append([]string(nil), f.order...)
		series := make([]*labeledSeries, len(keys))
		for i, k := range keys {
			series[i] = f.series[k]
		}
		f.mu.RUnlock()
		sort.Slice(series, func(i, j int) bool {
			return strings.Join(series[i].values, "\x00") < strings.Join(series[j].values, "\x00")
		})
		for _, s := range series {
			switch f.typ {
			case "counter":
				fmt.Fprintf(&b, "%s%s %d\n", f.name, formatLabels(f.labels, s.values, "", ""), s.ctr.Value())
			case "histogram":
				snap := s.hist.Snapshot()
				var cum uint64
				for i := 0; i <= numBuckets; i++ {
					cum += snap.Counts[i]
					le := "+Inf"
					if i < numBuckets {
						le = formatFloat(bucketBound(i))
					}
					// Collapse empty interior buckets: only emit a bucket
					// when it holds samples or is the +Inf terminator, so a
					// 37-bucket histogram with 3 occupied buckets costs 4
					// lines, not 37. Cumulative counts stay correct.
					if snap.Counts[i] == 0 && i < numBuckets {
						continue
					}
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, formatLabels(f.labels, s.values, "le", le), cum)
				}
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, formatLabels(f.labels, s.values, "", ""), formatFloat(snap.Sum.Seconds()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, formatLabels(f.labels, s.values, "", ""), snap.Count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns an http.Handler serving the registry in text exposition
// format — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
