package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"time"
)

// maxSpansPerTrace bounds a trace's discrete span list; traffic beyond the
// cap increments a dropped counter instead of growing memory. CKKS stage
// timings do not count against this — they aggregate into fixed-size
// per-stage totals regardless of how many primitive calls a unit makes.
const maxSpansPerTrace = 64

// Trace collects the timing story of one request: discrete spans for the
// coarse pipeline stages (queue wait, dispatch, unit execution) and
// aggregated per-stage totals for the CKKS primitives underneath, which
// fire far too often (hundreds of rotations per unit) to store
// individually. A nil *Trace is the disabled state: every method no-ops,
// so instrumented code never branches on "is tracing on".
type Trace struct {
	id    string
	start time.Time

	mu      sync.Mutex
	spans   []SpanData           //hennlint:guarded-by(mu)
	stages  map[string]*stageAgg //hennlint:guarded-by(mu)
	dropped int                  //hennlint:guarded-by(mu)
}

// SpanData is one completed span.
type SpanData struct {
	Name  string
	Start time.Time
	End   time.Time
	Attrs [][2]string
}

type stageAgg struct {
	count int
	total time.Duration
}

// NewTraceID returns a fresh 64-bit random trace ID in hex.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID beats
		// a panic on the serving path if it somehow does.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// NewTrace starts a trace; the clock starts now.
func NewTrace(id string) *Trace {
	return &Trace{id: id, start: time.Now()}
}

// ID returns the trace ID ("" on a nil trace).
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// AddSpan records a completed span from externally measured endpoints —
// the scheduler path uses this because span start (enqueue) and end
// (claim) happen on different goroutines.
func (tr *Trace) AddSpan(name string, start, end time.Time, attrs ...[2]string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.spans) >= maxSpansPerTrace {
		tr.dropped++
		return
	}
	tr.spans = append(tr.spans, SpanData{Name: name, Start: start, End: end, Attrs: attrs})
}

// Span is an in-progress interval on a trace. A nil Span (from a nil or
// absent trace) no-ops on every method.
type Span struct {
	tr    *Trace
	name  string
	start time.Time

	mu    sync.Mutex
	attrs [][2]string //hennlint:guarded-by(mu)
}

// StartSpan opens a span; close it with End.
func (tr *Trace) StartSpan(name string) *Span {
	if tr == nil {
		return nil
	}
	return &Span{tr: tr, name: name, start: time.Now()}
}

// SetAttr attaches a key/value pair to the span. Attribute values end up
// in trace JSON served over HTTP — never pass secret material (hennlint's
// secretflow analyzer enforces this).
func (sp *Span) SetAttr(k, v string) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	sp.attrs = append(sp.attrs, [2]string{k, v})
	sp.mu.Unlock()
}

// End closes the span and records it on its trace.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	attrs := sp.attrs
	sp.attrs = nil
	sp.mu.Unlock()
	sp.tr.AddSpan(sp.name, sp.start, time.Now(), attrs...)
}

// StageStart returns a start mark for StageEnd, or the zero Time when the
// trace is nil — so the disabled path costs one nil test and no clock
// read.
func (tr *Trace) StageStart() time.Time {
	if tr == nil {
		return time.Time{}
	}
	return time.Now()
}

// StageEnd accumulates time since start into the named stage total. A
// zero start (disabled trace at StageStart time) is dropped.
func (tr *Trace) StageEnd(name string, start time.Time) {
	if tr == nil || start.IsZero() {
		return
	}
	d := time.Since(start)
	tr.mu.Lock()
	if tr.stages == nil {
		tr.stages = map[string]*stageAgg{}
	}
	agg := tr.stages[name]
	if agg == nil {
		agg = &stageAgg{}
		tr.stages[name] = agg
	}
	agg.count++
	agg.total += d
	tr.mu.Unlock()
}

// TraceSnapshot is the JSON shape served at /v1/traces.
type TraceSnapshot struct {
	ID      string          `json:"id"`
	Start   time.Time       `json:"start"`
	Spans   []SpanSnapshot  `json:"spans"`
	Stages  []StageSnapshot `json:"stages,omitempty"`
	Dropped int             `json:"dropped_spans,omitempty"`
}

// SpanSnapshot is one span with times as offsets from the trace start.
type SpanSnapshot struct {
	Name    string            `json:"name"`
	StartUs int64             `json:"start_us"`
	DurUs   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// StageSnapshot is one aggregated CKKS stage total.
type StageSnapshot struct {
	Name    string `json:"name"`
	Count   int    `json:"count"`
	TotalUs int64  `json:"total_us"`
}

// Snapshot renders the trace for serving: spans in completion order,
// stages sorted by name. Safe to call while the trace is still being
// written to.
func (tr *Trace) Snapshot() TraceSnapshot {
	if tr == nil {
		return TraceSnapshot{}
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	snap := TraceSnapshot{ID: tr.id, Start: tr.start, Dropped: tr.dropped}
	snap.Spans = make([]SpanSnapshot, 0, len(tr.spans))
	for _, sp := range tr.spans {
		s := SpanSnapshot{
			Name:    sp.Name,
			StartUs: sp.Start.Sub(tr.start).Microseconds(),
			DurUs:   sp.End.Sub(sp.Start).Microseconds(),
		}
		if len(sp.Attrs) > 0 {
			s.Attrs = make(map[string]string, len(sp.Attrs))
			for _, kv := range sp.Attrs {
				s.Attrs[kv[0]] = kv[1]
			}
		}
		snap.Spans = append(snap.Spans, s)
	}
	for name, agg := range tr.stages {
		snap.Stages = append(snap.Stages, StageSnapshot{Name: name, Count: agg.count, TotalUs: agg.total.Microseconds()})
	}
	sort.Slice(snap.Stages, func(i, j int) bool { return snap.Stages[i].Name < snap.Stages[j].Name })
	return snap
}

type traceCtxKey struct{}

// WithTrace attaches a trace to a context.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tr)
}

// FromContext returns the context's trace, or nil (the disabled trace).
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return tr
}

// StartSpan opens a span on the context's trace; the returned Span is nil
// (and End/SetAttr no-op) when the context carries no trace.
func StartSpan(ctx context.Context, name string) *Span {
	return FromContext(ctx).StartSpan(name)
}

// TraceRing is a bounded ring of recent traces, queryable by ID — the
// backing store for GET /v1/traces. Old traces are overwritten in FIFO
// order once the ring fills.
type TraceRing struct {
	mu   sync.Mutex
	buf  []*Trace //hennlint:guarded-by(mu)
	next int      //hennlint:guarded-by(mu)
}

// NewTraceRing returns a ring holding up to n traces (n < 1 becomes 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{buf: make([]*Trace, n)}
}

// Put stores a trace, evicting the oldest entry once full.
func (r *TraceRing) Put(tr *Trace) {
	if r == nil || tr == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = tr
	r.next = (r.next + 1) % len(r.buf)
	r.mu.Unlock()
}

// Get returns the trace with the given ID, or nil if it has aged out.
func (r *TraceRing) Get(id string) *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, tr := range r.buf {
		if tr != nil && tr.id == id {
			return tr
		}
	}
	return nil
}

// Recent returns up to n traces, newest first.
func (r *TraceRing) Recent(n int) []*Trace {
	if r == nil || n < 1 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, min(n, len(r.buf)))
	for i := 1; i <= len(r.buf) && len(out) < n; i++ {
		tr := r.buf[(r.next-i+len(r.buf))%len(r.buf)]
		if tr == nil {
			break
		}
		out = append(out, tr)
	}
	return out
}
